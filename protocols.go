package specsimp

import (
	"specsimp/internal/coherence"
	"specsimp/internal/directory"
	"specsimp/internal/network"
	"specsimp/internal/snoop"
)

// Protocol-level API: direct access to the coherence protocols for
// fine-grained experiments (the system-level API in specsimp.go is the
// usual entry point).

// NodeID identifies a node; Addr is a block-aligned physical address.
type (
	NodeID = coherence.NodeID
	Addr   = coherence.Addr
)

// AccessType distinguishes loads from stores.
type AccessType = coherence.AccessType

// Access types.
const (
	Load  = coherence.Load
	Store = coherence.Store
)

// BlockBytes is the coherence unit (64-byte blocks, paper Table 2).
const BlockBytes = coherence.BlockBytes

// Directory protocol (paper §3.1).
type (
	// DirectoryProtocol is the MOSI directory protocol instance.
	DirectoryProtocol = directory.Protocol
	// DirectoryConfig parameterizes it.
	DirectoryConfig = directory.Config
	// DirectoryVariant selects Full or Spec.
	DirectoryVariant = directory.Variant
)

// Directory protocol variants.
const (
	DirFull = directory.Full
	DirSpec = directory.Spec
)

// SharerFormat selects how directory entries represent their sharer
// sets: an exact 64-bit bitmap (up to 64 nodes), limited pointers with
// broadcast on overflow (Dir_i_B), or a coarse vector with one bit per
// node cluster. See DESIGN.md "Directory entry formats".
type SharerFormat = directory.SharerFormat

// Sharer-set formats.
const (
	SharersFullBitmap     = directory.FullBitmap
	SharersLimitedPointer = directory.LimitedPointer
	SharersCoarseVector   = directory.CoarseVector
)

// DefaultSharerFormat picks the sharer-set format a node count needs:
// exact bitmaps up to 64 nodes, limited pointers beyond.
func DefaultSharerFormat(nodes int) SharerFormat { return directory.DefaultSharerFormat(nodes) }

// NewDirectoryProtocol builds the directory protocol over a network
// fabric. A nil logger disables checkpoint logging. It panics on an
// invalid configuration; NewDirectoryProtocolChecked returns the error.
func NewDirectoryProtocol(k *Kernel, net *Network, cfg DirectoryConfig) *DirectoryProtocol {
	return directory.New(k, net, cfg, nil)
}

// NewDirectoryProtocolChecked is NewDirectoryProtocol with configuration
// errors (e.g. a node count the sharer-set format cannot represent)
// returned instead of panicking.
func NewDirectoryProtocolChecked(k *Kernel, net *Network, cfg DirectoryConfig) (*DirectoryProtocol, error) {
	return directory.NewChecked(k, net, cfg, nil)
}

// DefaultDirectoryConfig returns paper Table 2 parameters.
func DefaultDirectoryConfig(nodes int, v DirectoryVariant) DirectoryConfig {
	return directory.DefaultConfig(nodes, v)
}

// DirectoryComplexity counts states and specified transitions of a
// variant (the A1 complexity ablation).
func DirectoryComplexity(v DirectoryVariant) directory.Complexity {
	return directory.ComplexityOf(v)
}

// Snooping protocol (paper §3.2).
type (
	// SnoopProtocol is the broadcast snooping protocol instance.
	SnoopProtocol = snoop.Protocol
	// SnoopConfig parameterizes it.
	SnoopConfig = snoop.Config
	// SnoopVariant selects Full or Spec.
	SnoopVariant = snoop.Variant
	// Bus is the totally ordered address network.
	Bus = snoop.Bus
	// BusConfig parameterizes the bus.
	BusConfig = snoop.BusConfig
)

// Snooping protocol variants.
const (
	SnFull = snoop.Full
	SnSpec = snoop.Spec
)

// NewBus builds the ordered address network.
func NewBus(k *Kernel, cfg BusConfig) *Bus { return snoop.NewBus(k, cfg) }

// DefaultBusConfig returns the default bus parameters.
func DefaultBusConfig(nodes int) BusConfig { return snoop.DefaultBusConfig(nodes) }

// NewSnoopProtocol builds the snooping protocol over a bus and a data
// fabric.
func NewSnoopProtocol(k *Kernel, bus *Bus, data *Network, cfg SnoopConfig) *SnoopProtocol {
	return snoop.New(k, bus, data, cfg, nil)
}

// DefaultSnoopConfig returns paper Table 2 parameters.
func DefaultSnoopConfig(nodes int, v SnoopVariant) SnoopConfig {
	return snoop.DefaultConfig(nodes, v)
}

// SnoopComplexity counts states and specified transitions of a variant.
func SnoopComplexity(v SnoopVariant) snoop.Complexity { return snoop.ComplexityOf(v) }

// Network-level types for traffic studies and demos.
type (
	// NetClient consumes messages delivered to a node.
	NetClient = network.Client
	// NetClientFunc adapts a function to NetClient.
	NetClientFunc = network.ClientFunc
	// NetTraceEvent is one step of a message's journey (for demos).
	NetTraceEvent = network.TraceEvent
	// NetNodeID identifies a network endpoint (distinct from the
	// protocol-level NodeID).
	NetNodeID = network.NodeID
)

// PortName renders a switch port for traces.
func PortName(p int) string { return network.PortName(p) }
