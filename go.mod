module specsimp

go 1.24
