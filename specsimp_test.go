package specsimp_test

import (
	"strings"
	"testing"

	"specsimp"
)

// The facade tests double as API documentation: everything a downstream
// user needs is reachable from the root package.

func TestFacadeQuickstart(t *testing.T) {
	cfg := specsimp.DefaultConfig(specsimp.DirectorySpec, specsimp.Uniform)
	res := specsimp.RunOne(cfg, 300_000)
	if res.Instructions == 0 || res.Perf <= 0 {
		t.Fatalf("no progress: %+v", res)
	}
	if res.Workload != "uniform" {
		t.Fatalf("workload %q", res.Workload)
	}
}

func TestFacadeTables(t *testing.T) {
	if !strings.Contains(specsimp.Table1(), "SafetyNet") {
		t.Fatal("Table 1 broken")
	}
	cfg := specsimp.DefaultConfig(specsimp.SnoopSpec, specsimp.OLTP)
	if !strings.Contains(specsimp.Table2(cfg), "torus") {
		t.Fatal("Table 2 broken")
	}
}

func TestFacadeWorkloads(t *testing.T) {
	suite := specsimp.WorkloadSuite()
	if len(suite) != 5 {
		t.Fatalf("suite size %d", len(suite))
	}
	if _, ok := specsimp.WorkloadByName("oltp"); !ok {
		t.Fatal("oltp missing")
	}
}

func TestFacadeNetworkDemo(t *testing.T) {
	// The Figure 1 scenario through the public API.
	k := specsimp.NewKernel()
	net := specsimp.NewNetwork(k, specsimp.AdaptiveNetConfig(4, 4, 1.0))
	var got []uint64
	net.AttachClient(5, specsimp.NetClientFunc(func(m *specsimp.NetMessage) bool {
		got = append(got, m.Seq)
		return true
	}))
	net.Send(&specsimp.NetMessage{Src: 0, Dst: 5, VNet: 1, Size: 2000})
	k.At(1, func() { net.Send(&specsimp.NetMessage{Src: 0, Dst: 5, VNet: 1, Size: 8}) })
	k.Drain(1_000_000)
	if len(got) != 2 || got[0] != 1 {
		t.Fatalf("expected the Figure 1 reorder, got %v", got)
	}
}

func TestFacadeProtocolLevel(t *testing.T) {
	// Protocol-level API: drive the directory protocol directly.
	k := specsimp.NewKernel()
	net := specsimp.NewNetwork(k, specsimp.SafeStaticConfig(4, 4, 0.8))
	p := specsimp.NewDirectoryProtocol(k, net, specsimp.DefaultDirectoryConfig(16, specsimp.DirFull))
	done := false
	p.Access(3, specsimp.Addr(0x1000), specsimp.Store, func() { done = true })
	k.Drain(1_000_000)
	if !done {
		t.Fatal("protocol-level access never completed")
	}
	if v := p.BlockVersion(0x1000); v != 1 {
		t.Fatalf("version=%d", v)
	}
	if err := p.AuditInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeComplexityComparison(t *testing.T) {
	df, ds := specsimp.DirectoryComplexity(specsimp.DirFull), specsimp.DirectoryComplexity(specsimp.DirSpec)
	if ds.CacheTransitions >= df.CacheTransitions {
		t.Fatal("speculation did not simplify the directory protocol")
	}
	sf, ss := specsimp.SnoopComplexity(specsimp.SnFull), specsimp.SnoopComplexity(specsimp.SnSpec)
	if ss.Transitions != sf.Transitions-1 {
		t.Fatal("snooping complexity delta is not exactly the corner case")
	}
}

func TestFacadeSpeculations(t *testing.T) {
	for _, s := range []specsimp.Speculation{specsimp.P2POrdering, specsimp.SnoopCorner, specsimp.NoVCDeadlock} {
		c := s.Characterize()
		if c.Recovery != "SafetyNet" {
			t.Fatalf("%s: recovery %q", s.Name(), c.Recovery)
		}
		if c.Infrequency == "" || c.Detection == "" || c.ForwardProgress == "" {
			t.Fatalf("%s: incomplete characterization", s.Name())
		}
	}
}

func TestFacadePerturbedRuns(t *testing.T) {
	cfg := specsimp.DefaultConfig(specsimp.DirectoryFull, specsimp.Uniform)
	pr := specsimp.RunPerturbed(cfg, 3, 150_000)
	if pr.Perf.N() != 3 || pr.Perf.Mean() <= 0 {
		t.Fatalf("perturbed runs broken: %v", pr.Perf)
	}
}
