package specsimp

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"specsimp/internal/experiments"
)

var updateGolden = flag.Bool("update", false, "rewrite golden table files under testdata/")

// checkGolden compares rendered table output against its committed
// golden file; `go test -run Golden -update .` regenerates the files.
// The inputs below are synthetic fixtures, not simulation outputs, so
// these tests pin the formatters' layout — not the physics — and stay
// stable across performance work on the simulator itself.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run `go test -run Golden -update .`): %v", err)
	}
	if string(want) != got {
		t.Fatalf("%s output changed; rerun with -update if intentional.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func cellAt(mean, std float64) experiments.Cell { return experiments.Cell{Mean: mean, Std: std} }

func TestGoldenTable1(t *testing.T) {
	checkGolden(t, "table1", Table1())
}

func TestGoldenTable2(t *testing.T) {
	checkGolden(t, "table2", Table2(DefaultConfig(DirectorySpec, OLTP)))
}

func TestGoldenFig4Table(t *testing.T) {
	res := []experiments.Fig4Result{
		{
			Workload: "oltp",
			PerfByRate: map[int]experiments.Cell{
				0: cellAt(1, 0), 1: cellAt(0.998, 0.003), 10: cellAt(0.982, 0.004), 100: cellAt(0.861, 0.012),
			},
			Recoveries:   map[int]float64{0: 0, 1: 1, 10: 10, 100: 99},
			MeanLostWork: 7900,
		},
		{
			Workload: "jbb",
			PerfByRate: map[int]experiments.Cell{
				0: cellAt(1, 0), 1: cellAt(0.999, 0.001), 10: cellAt(0.990, 0.002), 100: cellAt(0.903, 0.008),
			},
			Recoveries:   map[int]float64{0: 0, 1: 1, 10: 10, 100: 100},
			MeanLostWork: 8100,
		},
	}
	checkGolden(t, "fig4", Fig4Table(res))
}

func TestGoldenFig5Table(t *testing.T) {
	res := []experiments.Fig5Result{
		{Workload: "oltp", StaticPerf: cellAt(1, 0), AdaptivePerf: cellAt(1.062, 0.011), Recoveries: 0.33, ReorderRate: 0.00012, MeanLinkUtil: 0.21},
		{Workload: "barnes", StaticPerf: cellAt(1, 0), AdaptivePerf: cellAt(1.018, 0.004), Recoveries: 0, ReorderRate: 0, MeanLinkUtil: 0.13},
	}
	checkGolden(t, "fig5", Fig5Table(res))
}

func TestGoldenReorderTable(t *testing.T) {
	res := []experiments.ReorderResult{
		{BandwidthBpc: 0.1, BandwidthMBs: 400, PerVNet: []float64{0, 0.00021, 0.00007, 0}, Total: 0.00009, Recoveries: 0.67, MeanLinkUtil: 0.34},
		{BandwidthBpc: 0.8, BandwidthMBs: 3200, PerVNet: []float64{0, 0.00002, 0, 0}, Total: 0.00001, Recoveries: 0, MeanLinkUtil: 0.08},
	}
	checkGolden(t, "reorder", ReorderTable(res))
}

func TestGoldenSnoopTable(t *testing.T) {
	res := []experiments.SnoopResult{
		{Workload: "oltp", Perf: cellAt(0.997, 0.006), CornerDetected: 0, FullCornerHit: 2.5},
		{Workload: "apache", Perf: cellAt(1.001, 0.004), CornerDetected: 0, FullCornerHit: 1},
	}
	checkGolden(t, "snoop", SnoopTable(res))
}

func TestGoldenBufferTable(t *testing.T) {
	res := []experiments.BufferResult{
		{BufferSize: 0, Perf: cellAt(1, 0), Recoveries: 0, Timeouts: 0},
		{BufferSize: 8, Perf: cellAt(0.988, 0.009), Recoveries: 0, Timeouts: 0},
		{BufferSize: 2, Perf: cellAt(0.471, 0.083), Recoveries: 12.3, Timeouts: 12.3},
	}
	checkGolden(t, "buffers", BufferTable(res))
}

func TestGoldenScaleTable(t *testing.T) {
	// The 4×4/8×8 cells carry the same measurements as before the
	// sharer-set refactor (full-bitmap behavior is bit-identical at ≤64
	// nodes); the 16×16 rows show the wide formats, with the
	// limited-pointer overflow broadcasts visible as extra invalidation
	// traffic. The snooping 256-node point is a real run on the
	// segmented address network, and the 1024-node point (past even that
	// network's ceiling) exercises the unsupported-row rendering.
	res := []experiments.ScaleResult{
		{Kind: "directory-spec", Workload: "oltp", Width: 4, Height: 4, Sharers: "bitmap", Perf: cellAt(0.222, 0.010), PerfVs4x4: cellAt(1, 0.044), Recoveries: 0, MissLatency: 372.0, MeanLinkUtil: 0.109, Invalidations: 118},
		{Kind: "directory-spec", Workload: "oltp", Width: 8, Height: 8, Sharers: "bitmap", Perf: cellAt(0.422, 0.002), PerfVs4x4: cellAt(1.902, 0.010), Recoveries: 0, MissLatency: 629.9, MeanLinkUtil: 0.106, Invalidations: 224},
		{Kind: "directory-spec", Workload: "oltp", Width: 16, Height: 16, Sharers: "limited", Perf: cellAt(0.713, 0.004), PerfVs4x4: cellAt(3.212, 0.018), Recoveries: 0, MissLatency: 1021.4, MeanLinkUtil: 0.094, Invalidations: 10180, InvBroadcasts: 39},
		{Kind: "directory-spec", Workload: "oltp", Width: 16, Height: 16, Sharers: "coarse", Perf: cellAt(0.721, 0.003), PerfVs4x4: cellAt(3.248, 0.014), Recoveries: 0, MissLatency: 1008.7, MeanLinkUtil: 0.093, Invalidations: 1693},
		{Kind: "snoop-spec", Workload: "oltp", Width: 4, Height: 4, Sharers: "-", Perf: cellAt(0.355, 0.011), PerfVs4x4: cellAt(1, 0.032), Recoveries: 0, MissLatency: 331.0, MeanLinkUtil: 0.134},
		{Kind: "snoop-spec", Workload: "oltp", Width: 8, Height: 8, Sharers: "-", Perf: cellAt(0.805, 0.017), PerfVs4x4: cellAt(2.265, 0.048), Recoveries: 0, MissLatency: 554.2, MeanLinkUtil: 0.158},
		{Kind: "snoop-spec", Workload: "oltp", Width: 16, Height: 16, Sharers: "-", Perf: cellAt(1.396, 0.026), PerfVs4x4: cellAt(3.932, 0.073), Recoveries: 0, MissLatency: 1315.7, MeanLinkUtil: 0.118},
		{Kind: "snoop-spec", Workload: "oltp", Width: 32, Height: 32, Sharers: "-",
			Err: "system: snooping systems cap at 256 nodes even on the segmented address network (every ordered request still reaches every node); 1024 nodes needs a directory kind"},
	}
	checkGolden(t, "scale64", ScaleTable(res))
}

// TestGoldenTable2Scales guards the sized variant: the 8×8 Table 2
// parameter block renders the scaled geometry.
func TestGoldenTable2Scaled(t *testing.T) {
	cfg := DefaultConfigSized(SnoopSpec, OLTP, 8, 8)
	checkGolden(t, "table2-8x8", Table2(cfg))
}
