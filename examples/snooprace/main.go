// Command snooprace reproduces the paper's §3.2 scenario: the snooping
// protocol corner case the designers "did not initially consider". A
// cache that has issued a Writeback observes one foreign
// RequestReadWrite (ownership transfers away — first transient), then a
// second one before its own Writeback is ordered.
//
// The full protocol specifies the transition; the speculatively
// simplified protocol leaves it unspecified, detects it as a
// mis-speculation, and relies on recovery plus slow-start — which
// provably prevents a recurrence, because the race needs at least two
// transactions outstanding.
package main

import (
	"fmt"

	"specsimp"
)

const blkA = specsimp.Addr(0)

// stage drives the race: node 1 owns block A in M; nodes 2 and 3 issue
// stores whose GetMs are ordered on the bus ahead of node 1's PutM.
func stage(v specsimp.SnoopVariant) (*specsimp.Kernel, *specsimp.SnoopProtocol, *int) {
	k := specsimp.NewKernel()
	data := specsimp.NewNetwork(k, specsimp.SafeStaticConfig(2, 2, 0.8))
	bus := specsimp.NewBus(k, specsimp.DefaultBusConfig(4))
	p := specsimp.NewSnoopProtocol(k, bus, data, specsimp.DefaultSnoopConfig(4, v))

	done := new(int)
	ownerReady := false
	p.Access(1, blkA, specsimp.Store, func() { ownerReady = true })
	k.Drain(1_000_000)
	if !ownerReady {
		panic("setup failed")
	}
	p.Access(2, blkA, specsimp.Store, func() { *done++ })
	p.Access(3, blkA, specsimp.Store, func() { *done++ })
	k.Run(k.Now() + 1)
	if !p.Flush(1, blkA) { // PutM submitted behind both GetMs
		panic("flush refused")
	}
	fmt.Printf("  node 1 state after issuing Writeback: %s\n", p.CacheState(1, blkA))
	return k, p, done
}

func main() {
	fmt.Println("§3.2 snooping corner case: Writeback racing two RequestReadWrites")
	fmt.Println()

	fmt.Println("full protocol (corner case specified):")
	k, p, done := stage(specsimp.SnFull)
	k.Drain(1_000_000)
	fmt.Printf("  both racing stores completed: %v (completions=%d)\n", *done == 2, *done)
	fmt.Printf("  corner case exercised %d time(s), handled in place\n", p.Stats().CornerHandled.Value())
	fmt.Printf("  final owner: node 3 in %s, block version %d\n\n",
		p.CacheState(3, blkA), p.BlockVersion(blkA))

	fmt.Println("speculative protocol (corner case unspecified -> mis-speculation):")
	k, p, _ = stage(specsimp.SnSpec)
	p.OnMisSpeculation = func(reason string) {
		fmt.Printf("  MIS-SPECULATION detected: %q -> SafetyNet recovery + slow-start\n", reason)
		p.ResetTransients()
		p.Bus().Reset()
	}
	k.Drain(1_000_000)
	fmt.Printf("  detections: %d\n", p.Stats().CornerDetected.Value())
	fmt.Println()
	fmt.Println("With slow-start limiting the system to one outstanding transaction")
	fmt.Println("after recovery, the double race cannot recur (paper §3.2 feature 4).")
}
