// Command faultinject tells the paper's §3.1 story end to end. Natural
// message reorderings are rare — that is the whole premise — so this
// demo amplifies them: ForwardedRequest-class messages are randomly held
// at their source, letting Writeback-Acks overtake the forwards they
// must trail. The speculative directory protocol detects each violation
// as its single invalid transition, SafetyNet rolls the machine back,
// and the forward-progress policy (disable adaptive routing) lets
// re-execution proceed. The full protocol shrugs the same storm off
// with its extra states — at the design-complexity price Table 1 argues
// against.
package main

import (
	"fmt"

	"specsimp"
)

func run(kind specsimp.Kind) specsimp.Results {
	cfg := specsimp.DefaultConfig(kind, specsimp.Hotspot)
	cfg.CheckpointInterval = 5_000
	cfg.ReorderInjectProb = 0.25
	cfg.ReorderInjectDelay = 3_000
	cfg.AdaptiveDisableWindow = 25_000
	cfg.SlowStartWindow = 25_000
	// Tiny caches keep writebacks (and thus the race window) frequent.
	cfg.L2Bytes, cfg.L2Ways = 16*64, 2
	cfg.L1Bytes, cfg.L1Ways = 2*64, 1
	return specsimp.RunOne(cfg, 2_000_000)
}

func main() {
	fmt.Println("§3.1 end to end, with reordering amplified 10,000x over nature:")
	fmt.Println()

	spec := run(specsimp.DirectorySpec)
	fmt.Println("speculatively simplified directory protocol:")
	fmt.Printf("  writeback/forward races hit:  %d\n", spec.WBRaces)
	fmt.Printf("  ordering violations detected: %d\n", spec.OrderViolations)
	fmt.Printf("  recoveries performed:         %d  %v\n", spec.Recoveries, spec.RecoveryReasons)
	fmt.Printf("  mean lost work per recovery:  %.0f cycles\n", spec.MeanLostWork)
	fmt.Printf("  instructions retired:         %d (perf %.4f)\n", spec.Instructions, spec.Perf)
	fmt.Println()

	full := run(specsimp.DirectoryFull)
	fmt.Println("full directory protocol (same storm):")
	fmt.Printf("  writeback/forward races hit:  %d (handled by II_F & friends)\n", full.WBRaces)
	fmt.Printf("  recoveries performed:         %d\n", full.Recoveries)
	fmt.Printf("  instructions retired:         %d (perf %.4f)\n", full.Instructions, full.Perf)
	fmt.Println()
	fmt.Printf("Complexity price of the full protocol: +%d cache states, +%d transitions, +%d message kinds.\n",
		specsimp.DirectoryComplexity(specsimp.DirFull).CacheStates-specsimp.DirectoryComplexity(specsimp.DirSpec).CacheStates,
		specsimp.DirectoryComplexity(specsimp.DirFull).CacheTransitions-specsimp.DirectoryComplexity(specsimp.DirSpec).CacheTransitions,
		specsimp.DirectoryComplexity(specsimp.DirFull).MessageKinds-specsimp.DirectoryComplexity(specsimp.DirSpec).MessageKinds)
	fmt.Println("At natural reorder rates (see EXPERIMENTS.md R1) the speculative")
	fmt.Println("protocol recovers essentially never — speculation buys the")
	fmt.Println("simplicity for free.")
}
