// Command reorder reproduces the paper's Figure 1: a source sends two
// messages to the same destination over the adaptively routed torus;
// congestion on the first message's path lets the second overtake it,
// violating point-to-point ordering. The same scenario under static
// dimension-order routing stays in order.
package main

import (
	"fmt"

	"specsimp"
)

func run(name string, cfg specsimp.NetConfig, disableAdaptive bool) {
	k := specsimp.NewKernel()
	net := specsimp.NewNetwork(k, cfg)
	net.SetAdaptiveDisabled(disableAdaptive)

	fmt.Printf("--- %s ---\n", name)
	net.TraceFn = func(ev specsimp.NetTraceEvent) {
		switch ev.Kind.String() {
		case "inject":
			fmt.Printf("  t=%5d  node %2d injects  M%d\n", ev.At, ev.Node, ev.Msg.Seq+1)
		case "forward":
			fmt.Printf("  t=%5d  node %2d forwards M%d %s\n", ev.At, ev.Node, ev.Msg.Seq+1, specsimp.PortName(ev.Dir))
		default:
			fmt.Printf("  t=%5d  node %2d DELIVERS M%d (sent t=%d)\n", ev.At, ev.Node, ev.Msg.Seq+1, ev.Msg.SentAt)
		}
	}
	var order []uint64
	net.AttachClient(5, specsimp.NetClientFunc(func(m *specsimp.NetMessage) bool {
		order = append(order, m.Seq)
		return true
	}))

	// Figure 1: the NW switch (node 0) sends M1 then M2 to the SE
	// switch (node 5). M1 is large and hogs the eastward link.
	send := func(size int) {
		m := net.AllocMessage()
		m.Src, m.Dst, m.VNet, m.Size = 0, 5, 1, size
		net.Send(m)
	}
	send(2000)
	k.At(1, func() { send(8) })
	k.Drain(1_000_000)

	if len(order) == 2 && order[0] == 1 {
		fmt.Println("  => M2 arrived BEFORE M1: point-to-point order violated")
	} else {
		fmt.Println("  => arrival order preserved")
	}
	fmt.Printf("  reordered messages counted on vnet 1: %d\n\n", net.Stats().Reordered[1].Value())
}

func main() {
	fmt.Println("Figure 1: violating point-to-point order with adaptive routing")
	fmt.Println()
	run("adaptive routing (paper §3.1 network)", specsimp.AdaptiveNetConfig(4, 4, 1.0), false)
	run("static dimension-order routing", specsimp.AdaptiveNetConfig(4, 4, 1.0), true)
	fmt.Println("The §3.1 speculative directory protocol relies on the order that")
	fmt.Println("adaptive routing just violated; it detects the violation as one")
	fmt.Println("invalid controller transition and recovers with SafetyNet.")
}
