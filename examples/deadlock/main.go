// Command deadlock demonstrates the paper's §4 interconnect
// simplification. Part 1 reproduces Figures 2 and 3 at network level: a
// simplified torus (no virtual networks or channels, one tiny shared
// buffer pool per switch) is driven into a standstill. Part 2 runs the
// full system on that network: the coherence transaction timeout
// detects the deadlock, SafetyNet recovers, and slow-start guarantees
// forward progress.
package main

import (
	"fmt"

	"specsimp"
)

func part1() {
	fmt.Println("Part 1 — deadlock without virtual channels (Figures 2 & 3)")
	k := specsimp.NewKernel()
	net := specsimp.NewNetwork(k, specsimp.SimplifiedNetConfig(4, 4, 1.0, 1))
	for i := 0; i < 16; i++ {
		net.AttachClient(specsimp.NetNodeID(i), specsimp.NetClientFunc(func(m *specsimp.NetMessage) bool {
			return true
		}))
	}
	// A dense synchronized all-to-all burst: with one buffer slot per
	// switch, cyclic buffer waits form.
	n := 0
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			if s == d {
				continue
			}
			m := net.AllocMessage()
			m.Src, m.Dst, m.VNet, m.Size = specsimp.NetNodeID(s), specsimp.NetNodeID(d), 0, 72
			net.Send(m)
			n++
		}
	}
	k.Drain(10_000_000)
	stuck := net.InFlight()
	fmt.Printf("  injected %d messages; network quiesced with %d stuck\n", n, stuck)
	if stuck > 0 {
		fmt.Println("  => DEADLOCK: no event can fire, messages hold each other's buffers")
	}
	fmt.Println()
}

func part2() {
	fmt.Println("Part 2 — the system recovers from interconnect deadlock (§4)")
	cfg := specsimp.DefaultConfig(specsimp.DirectorySpec, specsimp.Hotspot)
	cfg.Net = specsimp.SimplifiedNetConfig(4, 4, 0.2, 2) // deadlock-prone
	cfg.CheckpointInterval = 20_000
	cfg.TimeoutCycles = 3 * cfg.CheckpointInterval // paper: 3 intervals
	cfg.SlowStartWindow = 60_000
	r := specsimp.RunOne(cfg, 3_000_000)
	fmt.Printf("  instructions retired: %d (perf %.4f)\n", r.Instructions, r.Perf)
	fmt.Printf("  deadlock timeouts detected: %d\n", r.Timeouts)
	fmt.Printf("  recoveries performed:       %d  %v\n", r.Recoveries, r.RecoveryReasons)
	fmt.Println("  => the run completed: detection by timeout, recovery by")
	fmt.Println("     SafetyNet, forward progress by slow-start — no virtual")
	fmt.Println("     channels anywhere.")
}

func main() {
	part1()
	part2()
}
