// Command quickstart builds the paper's Table 2 target system — 16
// nodes, MOSI directory coherence speculatively relying on
// point-to-point ordering (§3.1), adaptive 2D-torus interconnect,
// SafetyNet checkpoint/recovery — runs the OLTP workload on it, and
// prints the framework characterization and the run's results.
package main

import (
	"fmt"

	"specsimp"
)

func main() {
	fmt.Println("speculation-for-simplicity framework (paper Table 1):")
	fmt.Println(specsimp.Table1())

	cfg := specsimp.DefaultConfig(specsimp.DirectorySpec, specsimp.OLTP)
	fmt.Println("target system (paper Table 2):")
	fmt.Println(specsimp.Table2(cfg))

	const cycles = 1_000_000
	fmt.Printf("running %s on %s for %d cycles...\n\n", cfg.Kind, cfg.Workload.Name, cycles)
	r := specsimp.RunOne(cfg, cycles)

	fmt.Printf("instructions retired:  %d\n", r.Instructions)
	fmt.Printf("performance (IPC):     %.3f aggregate\n", r.Perf)
	fmt.Printf("coherence transactions: %d (%d writebacks, %d racing)\n",
		r.Transactions, r.Writebacks, r.WBRaces)
	fmt.Printf("checkpoints taken:     %d\n", r.Checkpoints)
	fmt.Printf("message reorder rate:  %.5f\n", r.TotalReorderRate)
	fmt.Printf("mis-speculations:      %d  %v\n", r.Recoveries, r.RecoveryReasons)
	fmt.Printf("mean link utilization: %.1f%%\n", 100*r.MeanLinkUtil)
	fmt.Println("\nThe speculative protocol ran on a network that does not")
	fmt.Println("guarantee the ordering it relies on — and recovered from any")
	fmt.Println("violation it detected, exactly as the paper proposes.")
}
