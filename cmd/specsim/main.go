// Command specsim runs one simulated system and reports its results.
//
// Usage:
//
//	specsim -kind directory-spec -workload oltp -cycles 2000000
//	specsim -kind snoop-spec -workload apache -runs 5
//	specsim -kind directory-spec -net simplified -buffers 2 -bw 0.2
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"specsimp"
	"specsimp/internal/sweepcli"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("specsim: ")

	var (
		kindName = flag.String("kind", "directory-spec", "system kind: directory-full, directory-spec, snoop-full, snoop-spec")
		wlName   = flag.String("workload", "oltp", "workload: oltp, jbb, apache, slashcode, barnes, uniform, hotspot, the sharing idioms (migratory, ring, scan, broadcast), or trace:<path> to replay a recorded trace")
		cycles   = flag.Uint64("cycles", 2_000_000, "simulated cycles to run")
		runs     = flag.Int("runs", 1, "perturbed runs (paper §5.2 methodology)")
		seed     = flag.Uint64("seed", 1, "base random seed")
		netKind  = flag.String("net", "", "network override: static, adaptive, simplified")
		bw       = flag.Float64("bw", 0.8, "link bandwidth in bytes/cycle (0.1 = 400 MB/s at 4 GHz)")
		buffers  = flag.Int("buffers", 8, "buffer size for -net simplified")
		inject   = flag.Uint64("inject", 0, "inject a recovery every N cycles (0 = off)")
		interval = flag.Uint64("interval", 0, "checkpoint interval override in cycles")
		shards   = flag.String("shards", "0", "INTRA-run parallelism: partition this run's torus into tiles advancing in conservative lockstep windows (directory kinds on unlimited-buffer networks only). 'N' requests N tiles auto-factored into a near-square RxC grid; 'RxC' (e.g. 2x2) pins the grid shape — rows must divide the torus height, columns its width. Results are bit-identical for every count and shape >= 1 tile. 0 = classic serial path. Note -runs parallelizes ACROSS perturbed runs instead, one kernel each.")
		recTrace = flag.String("record-trace", "", "record the streams this run consumes to the given trace file (single run only; replay with -workload trace:<path>)")
	)
	flag.Parse()

	kind, err := parseKind(*kindName)
	if err != nil {
		log.Fatal(err)
	}
	wl, err := specsimp.ResolveWorkload(*wlName)
	if err != nil {
		log.Fatal(err)
	}
	cfg := specsimp.DefaultConfig(kind, wl)
	cfg.Seed = *seed
	switch *netKind {
	case "":
	case "static":
		cfg.Net = specsimp.SafeStaticConfig(4, 4, *bw)
	case "adaptive":
		cfg.Net = specsimp.AdaptiveNetConfig(4, 4, *bw)
	case "simplified":
		cfg.Net = specsimp.SimplifiedNetConfig(4, 4, *bw, *buffers)
		if cfg.TimeoutCycles == 0 {
			cfg.TimeoutCycles = 3 * cfg.CheckpointInterval
		}
	default:
		log.Fatalf("unknown network %q", *netKind)
	}
	if *interval > 0 {
		cfg.CheckpointInterval = specsimp.Time(*interval)
		if cfg.TimeoutCycles > 0 {
			cfg.TimeoutCycles = 3 * cfg.CheckpointInterval
		}
	}
	cfg.InjectRecoveryEvery = specsimp.Time(*inject)
	if *shards != "0" {
		n, rows, cols, err := sweepcli.ParseShards(*shards)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Shards, cfg.ShardRows, cfg.ShardCols = n, rows, cols
	}
	if err := specsimp.ValidateConfig(cfg); err != nil {
		log.Fatal(err)
	}

	if *recTrace != "" {
		if *runs > 1 {
			log.Fatal("-record-trace records a single run; drop -runs")
		}
		cfg.Recorder = specsimp.NewTraceRecorder(wl.Name, cfg.Nodes)
	}
	if *runs <= 1 {
		r := specsimp.RunOne(cfg, specsimp.Time(*cycles))
		if cfg.Recorder != nil {
			if err := cfg.Recorder.Trace().WriteFile(*recTrace); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("trace:         recorded to %s\n", *recTrace)
		}
		report(r)
		return
	}
	pr := specsimp.RunPerturbed(cfg, *runs, specsimp.Time(*cycles))
	fmt.Printf("%d perturbed runs of %s / %s:\n", *runs, kind, wl.Name)
	fmt.Printf("  performance: %s\n", pr.Perf.String())
	fmt.Printf("  recoveries:  %s\n", pr.Recoveries.String())
	for i, r := range pr.Runs {
		fmt.Printf("  run %d: perf=%.4f recoveries=%d reorder=%.5f\n",
			i, r.Perf, r.Recoveries, r.TotalReorderRate)
	}
}

func parseKind(s string) (specsimp.Kind, error) {
	for _, k := range []specsimp.Kind{
		specsimp.DirectoryFull, specsimp.DirectorySpec,
		specsimp.SnoopFull, specsimp.SnoopSpec,
	} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown kind %q", s)
}

func report(r specsimp.Results) {
	fmt.Printf("system:        %s\n", r.Kind)
	fmt.Printf("workload:      %s\n", r.Workload)
	fmt.Printf("cycles:        %d\n", r.Cycles)
	fmt.Printf("instructions:  %d\n", r.Instructions)
	fmt.Printf("performance:   %.4f IPC aggregate\n", r.Perf)
	fmt.Printf("transactions:  %d (%d writebacks, %d racing forwards)\n", r.Transactions, r.Writebacks, r.WBRaces)
	fmt.Printf("miss latency:  %.0f cycles mean\n", r.MissLatencyMean)
	fmt.Printf("checkpoints:   %d (stall %d cycles, log high water %d bytes)\n",
		r.Checkpoints, r.CheckpointStall, r.LogHighWaterBytes)
	fmt.Printf("link util:     %.1f%%\n", 100*r.MeanLinkUtil)
	fmt.Printf("reorder rate:  %.5f total", r.TotalReorderRate)
	for v, rr := range r.ReorderRatePerVNet {
		fmt.Printf("  vnet%d=%.5f", v, rr)
	}
	fmt.Println()
	fmt.Printf("recoveries:    %d", r.Recoveries)
	if len(r.RecoveryReasons) > 0 {
		reasons := make([]string, 0, len(r.RecoveryReasons))
		for k := range r.RecoveryReasons {
			reasons = append(reasons, k)
		}
		sort.Strings(reasons)
		fmt.Print("  (")
		for i, k := range reasons {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Printf("%s: %d", k, r.RecoveryReasons[k])
		}
		fmt.Print(")")
	}
	fmt.Println()
	if r.Recoveries > 0 {
		fmt.Printf("lost work:     %.0f cycles mean per recovery\n", r.MeanLostWork)
	}
	os.Exit(0)
}
