// Command benchguard gates CI's bench smoke on the recorded benchmark
// trajectory: it parses `go test -bench -benchmem` output and fails
// (exit 1) when a baselined benchmark regressed past the thresholds, or
// disappeared from the output entirely.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | tee bench.out
//	go run ./cmd/benchguard -baseline BENCH_kernel.json -input bench.out
//
// ns/op comparisons across hosts are inherently noisy — the threshold
// is a gross-regression tripwire, while allocs/op is deterministic and
// the hard gate (see BENCH_kernel.json's comment).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"specsimp/internal/benchcheck"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchguard: ")
	var (
		baseline = flag.String("baseline", "BENCH_kernel.json", "benchmark trajectory file to compare against")
		input    = flag.String("input", "-", "bench output to check ('-' = stdin)")
		nsTol    = flag.Float64("ns-threshold", 0.25, "allowed fractional ns/op regression")
		allocTol = flag.Float64("allocs-threshold", 0.25, "allowed fractional allocs/op regression")
	)
	flag.Parse()

	base, err := benchcheck.LoadBaselines(*baseline)
	if err != nil {
		log.Fatal(err)
	}
	var r io.Reader = os.Stdin
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		r = f
	}
	measured, err := benchcheck.ParseBenchOutput(r)
	if err != nil {
		log.Fatal(err)
	}
	lines, failed := benchcheck.Compare(base, measured, benchcheck.Thresholds{NsPerOp: *nsTol, AllocsPerOp: *allocTol})
	for _, l := range lines {
		fmt.Println(l)
	}
	if failed {
		log.Fatalf("benchmark regression beyond thresholds (ns/op +%.0f%%, allocs/op +%.0f%%) vs %s",
			100**nsTol, 100**allocTol, *baseline)
	}
	fmt.Printf("benchguard: %d benchmarks within thresholds of %s\n", len(base), *baseline)
}
