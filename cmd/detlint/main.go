// Command detlint enforces the repository's determinism and allocation
// contracts (internal/lint: walltime, maporder, floatdet, poolalloc,
// edgecontrol) over Go packages. It runs two ways:
//
//	detlint ./...                          # standalone, exit 1 on findings
//	go vet -vettool=$(which detlint) ./... # as a vet tool
//
// Standalone mode loads packages through `go list`, prints findings to
// stderr as "pos: [analyzer] message", and prints a suppression summary
// table (every matched //detlint:allow with its reason, plus
// per-analyzer counts) to stdout. Unused allows are warnings, not
// failures. Vet-tool mode speaks the go command's unitchecker protocol:
// it answers -V=full and -flags probes, then processes one vet.cfg per
// package, type-checking against the export data the go command already
// built. Test files are exempt in both modes — the contracts govern the
// simulator and its artifact paths, not test scaffolding.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"specsimp/internal/lint"
)

func main() {
	args := os.Args[1:]
	// The go command probes vet tools before use: -V=full for a tool
	// identity it can cache on, -flags for the flag set it may forward.
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			// The exact shape matters: the go command parses
			// "<name> version devel ... buildID=<id>" and caches on the id.
			fmt.Printf("%s version devel buildID=detlint1\n", filepath.Base(os.Args[0]))
			return
		case "-flags", "--flags":
			fmt.Println("[]")
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVet(args[0]))
	}
	os.Exit(runStandalone(args))
}

func runStandalone(args []string) int {
	fs := flag.NewFlagSet("detlint", flag.ExitOnError)
	summary := fs.Bool("summary", true, "print the suppression summary table")
	fs.Parse(args)
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		return 1
	}
	rep := lint.Lint(pkgs, lint.All())
	reportFindings(rep)
	if *summary {
		printSummary(os.Stdout, len(pkgs), rep)
	}
	if !rep.Ok() {
		return 1
	}
	return 0
}

func reportFindings(rep *lint.Report) {
	for _, f := range rep.Findings {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", f.Pos, f.Analyzer, f.Message)
	}
	for _, s := range rep.Unused {
		fmt.Fprintf(os.Stderr, "%s: warning: detlint:allow %s matched no diagnostic; remove it\n",
			s.Pos, s.Analyzer)
	}
}

// printSummary writes the suppression accounting: one line per matched
// allow (so every waived contract is visible in CI logs with its
// justification), then per-analyzer totals.
func printSummary(w io.Writer, npkgs int, rep *lint.Report) {
	fmt.Fprintf(w, "detlint: %d package(s), %d finding(s), %d suppression(s), %d unused allow(s)\n",
		npkgs, len(rep.Findings), len(rep.Suppressed), len(rep.Unused))
	if len(rep.Suppressed) == 0 {
		return
	}
	fmt.Fprintln(w, "suppressions:")
	counts := map[string]int{}
	matched := map[string]int{}
	var order []string
	for _, s := range rep.Suppressed {
		if counts[s.Analyzer] == 0 {
			order = append(order, s.Analyzer)
		}
		counts[s.Analyzer]++
		matched[s.Analyzer] += s.Matched
		fmt.Fprintf(w, "  %s: %s (%dx): %s\n", s.Pos, s.Analyzer, s.Matched, s.Reason)
	}
	fmt.Fprintf(w, "%-14s %7s %10s\n", "analyzer", "allows", "suppressed")
	for _, name := range order {
		fmt.Fprintf(w, "%-14s %7d %10d\n", name, counts[name], matched[name])
	}
}

// vetConfig is the subset of the go command's vet.cfg the driver
// consumes (the unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVet analyzes the single package described by a vet.cfg file. Exit
// codes follow the unitchecker convention: 0 clean, 1 tool failure,
// 2 diagnostics reported.
func runVet(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "detlint: parse %s: %v\n", cfgPath, err)
		return 1
	}
	// detlint exports no facts, but the go command expects the vetx
	// output to exist so it can cache the (empty) result.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "detlint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	// Test scaffolding is exempt (mirrors lint.Load): skip the
	// synthesized test-main package and drop _test.go files from the
	// in-package test variant, which leaves exactly the plain package.
	if strings.HasSuffix(cfg.ImportPath, ".test") {
		return 0
	}
	var files []string
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		return 0
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	pkg, err := lint.Check(fset, importer.ForCompiler(fset, compiler, lookup),
		cfg.ImportPath, cfg.Dir, files)
	if err != nil {
		// Export data can be stale or absent outside a full `go vet`
		// build; fall back to type-checking the import graph from
		// source before giving up.
		fset = token.NewFileSet()
		pkg, err = lint.Check(fset, importer.ForCompiler(fset, "source", nil),
			cfg.ImportPath, cfg.Dir, files)
	}
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "detlint:", err)
		return 1
	}
	rep := lint.Lint([]*lint.Package{pkg}, lint.All())
	reportFindings(rep)
	if !rep.Ok() {
		return 2
	}
	return 0
}
