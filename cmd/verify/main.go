// Command verify exhaustively explores message-delivery interleavings
// of the directory protocol for small scenarios and checks every
// outcome — the verification-effort experiment behind the paper's whole
// premise (§1: "engineers must allocate a disproportionate share of
// their effort to ensure that rare corner-case events behave
// correctly").
//
// For the speculative protocol it certifies framework feature (2)
// within the explored bounds: every interleaving either completes with
// intact invariants or stops at the single designated detection.
//
// Usage:
//
//	verify                     # run all scenarios on both variants
//	verify -scenario race      # just the §3.1 writeback race
//	verify -maxpaths 500000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"specsimp/internal/coherence"
	"specsimp/internal/directory"
)

type scenario struct {
	name   string
	script [][]directory.ScriptOp
}

var (
	blkA = coherence.Addr(0)
	blkB = coherence.Addr(4 * 64)
	blkC = coherence.Addr(8 * 64)
)

func scenarios() []scenario {
	return []scenario{
		{
			// The §3.1 writeback/forward race.
			name: "race",
			script: [][]directory.ScriptOp{
				1: {{Addr: blkA, Kind: coherence.Store}, {Addr: blkB, Kind: coherence.Store}, {Addr: blkC, Kind: coherence.Store}},
				2: {{Addr: blkA, Kind: coherence.Store}},
				3: {},
			},
		},
		{
			// Readers invalidated by competing writers.
			name: "share-invalidate",
			script: [][]directory.ScriptOp{
				0: {{Addr: blkA, Kind: coherence.Load}, {Addr: blkA, Kind: coherence.Store}},
				1: {{Addr: blkA, Kind: coherence.Load}},
				2: {{Addr: blkA, Kind: coherence.Store}},
				3: {},
			},
		},
		{
			// Competing upgrades from S.
			name: "upgrade-race",
			script: [][]directory.ScriptOp{
				0: {{Addr: blkA, Kind: coherence.Load}, {Addr: blkA, Kind: coherence.Store}},
				1: {{Addr: blkA, Kind: coherence.Load}, {Addr: blkA, Kind: coherence.Store}},
				2: {},
				3: {},
			},
		},
		{
			// Writeback racing a read.
			name: "race-gets",
			script: [][]directory.ScriptOp{
				1: {{Addr: blkA, Kind: coherence.Store}, {Addr: blkB, Kind: coherence.Store}, {Addr: blkC, Kind: coherence.Store}},
				2: {{Addr: blkA, Kind: coherence.Load}},
				3: {},
			},
		},
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("verify: ")
	var (
		which    = flag.String("scenario", "all", "scenario: race, share-invalidate, upgrade-race, race-gets, all")
		maxPaths = flag.Int("maxpaths", 200_000, "interleaving budget per (scenario, variant)")
	)
	flag.Parse()

	failed := false
	for _, sc := range scenarios() {
		if *which != "all" && *which != sc.name {
			continue
		}
		for _, v := range []directory.Variant{directory.Full, directory.Spec} {
			start := time.Now()
			res := directory.Explore(directory.ExploreConfig{
				Variant:  v,
				Nodes:    4,
				Script:   sc.script,
				MaxPaths: *maxPaths,
			})
			status := "OK"
			if !res.Ok() {
				status = "FAIL"
				failed = true
			}
			trunc := ""
			if res.Truncated {
				trunc = " (budget exhausted)"
			}
			fmt.Printf("%-18s %-5s %-4s %8d interleavings: %d completed, %d detected%s  [%.1fs]\n",
				sc.name, v, status, res.Paths, res.Completed, res.Detected, trunc, time.Since(start).Seconds())
			for i, viol := range res.Violations {
				if i == 3 {
					fmt.Printf("    ... %d more\n", len(res.Violations)-3)
					break
				}
				fmt.Printf("    %s\n", viol)
			}
			if v == directory.Spec && res.Detected == 0 && (sc.name == "race" || sc.name == "race-gets") {
				fmt.Println("    warning: race scenario never triggered detection")
			}
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("\nEvery explored interleaving behaved correctly: the full protocol")
	fmt.Println("never mis-speculates; the speculative protocol either completes or")
	fmt.Println("detects at its single designated invalid transition (feature 2).")
}
