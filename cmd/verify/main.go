// Command verify exhaustively explores message-delivery interleavings
// of both coherence protocols for small scenarios and checks every
// outcome — the verification-effort experiment behind the paper's whole
// premise (§1: "engineers must allocate a disproportionate share of
// their effort to ensure that rare corner-case events behave
// correctly").
//
// For the speculative protocols it certifies framework feature (2)
// within the explored bounds: every interleaving either completes with
// intact invariants or stops at the single designated detection — the
// reordered-forward for the directory protocol (§3.1), the WB_AI corner
// case for the snooping protocol (§3.2).
//
// Usage:
//
//	verify                     # run all scenarios on both protocols and variants
//	verify -protocol snoop     # just the snooping protocol
//	verify -scenario race      # just the §3.1 writeback race
//	verify -maxpaths 500000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"specsimp/internal/coherence"
	"specsimp/internal/directory"
	"specsimp/internal/snoop"
)

type scenario struct {
	name   string
	script [][]directory.ScriptOp
}

var (
	blkA = coherence.Addr(0)
	blkB = coherence.Addr(4 * 64)
	blkC = coherence.Addr(8 * 64)
)

func scenarios() []scenario {
	return []scenario{
		{
			// The §3.1 writeback/forward race.
			name: "race",
			script: [][]directory.ScriptOp{
				1: {{Addr: blkA, Kind: coherence.Store}, {Addr: blkB, Kind: coherence.Store}, {Addr: blkC, Kind: coherence.Store}},
				2: {{Addr: blkA, Kind: coherence.Store}},
				3: {},
			},
		},
		{
			// Readers invalidated by competing writers.
			name: "share-invalidate",
			script: [][]directory.ScriptOp{
				0: {{Addr: blkA, Kind: coherence.Load}, {Addr: blkA, Kind: coherence.Store}},
				1: {{Addr: blkA, Kind: coherence.Load}},
				2: {{Addr: blkA, Kind: coherence.Store}},
				3: {},
			},
		},
		{
			// Competing upgrades from S.
			name: "upgrade-race",
			script: [][]directory.ScriptOp{
				0: {{Addr: blkA, Kind: coherence.Load}, {Addr: blkA, Kind: coherence.Store}},
				1: {{Addr: blkA, Kind: coherence.Load}, {Addr: blkA, Kind: coherence.Store}},
				2: {},
				3: {},
			},
		},
		{
			// Writeback racing a read.
			name: "race-gets",
			script: [][]directory.ScriptOp{
				1: {{Addr: blkA, Kind: coherence.Store}, {Addr: blkB, Kind: coherence.Store}, {Addr: blkC, Kind: coherence.Store}},
				2: {{Addr: blkA, Kind: coherence.Load}},
				3: {},
			},
		},
	}
}

// snoopScenarios are the snooping-protocol counterparts, explored over
// the joint space of address-network arbitration and data delivery.
func snoopScenarios() []struct {
	name   string
	script [][]snoop.SScriptOp
} {
	return []struct {
		name   string
		script [][]snoop.SScriptOp
	}{
		{
			// The §3.2 corner: a writeback in flight while two foreign
			// stores compete for the block.
			name: "corner",
			script: [][]snoop.SScriptOp{
				0: {{Addr: blkA, Kind: coherence.Store}, {Addr: blkB, Kind: coherence.Store}},
				1: {{Addr: blkA, Kind: coherence.Store}},
				2: {{Addr: blkA, Kind: coherence.Store}},
			},
		},
		{
			// Read-share/invalidate without writebacks.
			name: "share-invalidate",
			script: [][]snoop.SScriptOp{
				0: {{Addr: blkA, Kind: coherence.Load}, {Addr: blkA, Kind: coherence.Store}},
				1: {{Addr: blkA, Kind: coherence.Load}},
				2: {{Addr: blkA, Kind: coherence.Store}},
			},
		},
		{
			// Writeback racing a read.
			name: "corner-gets",
			script: [][]snoop.SScriptOp{
				0: {{Addr: blkA, Kind: coherence.Store}, {Addr: blkB, Kind: coherence.Store}},
				1: {{Addr: blkA, Kind: coherence.Load}},
				2: {{Addr: blkA, Kind: coherence.Store}},
			},
		},
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("verify: ")
	var (
		protocol = flag.String("protocol", "all", "protocol: directory, snoop, all")
		which    = flag.String("scenario", "all", "scenario name, or all")
		maxPaths = flag.Int("maxpaths", 200_000, "interleaving budget per (scenario, variant)")
	)
	flag.Parse()

	failed := false
	if *protocol == "all" || *protocol == "directory" {
		for _, sc := range scenarios() {
			if *which != "all" && *which != sc.name {
				continue
			}
			for _, v := range []directory.Variant{directory.Full, directory.Spec} {
				start := time.Now()
				res := directory.Explore(directory.ExploreConfig{
					Variant:  v,
					Nodes:    4,
					Script:   sc.script,
					MaxPaths: *maxPaths,
				})
				report("directory", sc.name, fmt.Sprint(v), res.Paths, res.Completed,
					res.Detected, res.Truncated, res.Violations, start, &failed)
				if v == directory.Spec && res.Detected == 0 && (sc.name == "race" || sc.name == "race-gets") {
					fmt.Println("    warning: race scenario never triggered detection")
				}
			}
		}
	}
	if *protocol == "all" || *protocol == "snoop" {
		for _, sc := range snoopScenarios() {
			if *which != "all" && *which != sc.name {
				continue
			}
			for _, v := range []snoop.Variant{snoop.Full, snoop.Spec} {
				start := time.Now()
				res := snoop.ExploreSnoop(snoop.SExploreConfig{
					Variant:  v,
					Nodes:    3,
					Script:   sc.script,
					MaxPaths: *maxPaths,
				})
				report("snoop", sc.name, fmt.Sprint(v), res.Paths, res.Completed,
					res.Detected, res.Truncated, res.Violations, start, &failed)
				if v == snoop.Spec && res.Detected == 0 && sc.name == "corner" {
					fmt.Println("    warning: corner scenario never triggered detection")
				}
				if v == snoop.Full && res.CornerHandled > 0 {
					fmt.Printf("    corner case absorbed by the specified transition on %d paths\n", res.CornerHandled)
				}
			}
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("\nEvery explored interleaving behaved correctly: the full protocols")
	fmt.Println("never mis-speculate; the speculative protocols either complete or")
	fmt.Println("detect at their single designated invalid transition (feature 2).")
}

func report(proto, name, variant string, paths, completed, detected int, truncated bool,
	violations []string, start time.Time, failed *bool) {
	status := "OK"
	if len(violations) > 0 {
		status = "FAIL"
		*failed = true
	}
	trunc := ""
	if truncated {
		trunc = " (budget exhausted)"
	}
	fmt.Printf("%-10s %-18s %-5s %-4s %8d interleavings: %d completed, %d detected%s  [%.1fs]\n",
		proto, name, variant, status, paths, completed, detected, trunc, time.Since(start).Seconds())
	for i, viol := range violations {
		if i == 3 {
			fmt.Printf("    ... %d more\n", len(violations)-3)
			break
		}
		fmt.Printf("    %s\n", viol)
	}
}
