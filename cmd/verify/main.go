// Command verify model-checks both coherence protocols: it explores
// message-delivery (and, for snooping, bus-arbitration) interleavings
// of small scenarios on the shared exploration engine
// (internal/explore) and checks every outcome — the verification-
// effort experiment behind the paper's whole premise (§1: "engineers
// must allocate a disproportionate share of their effort to ensure
// that rare corner-case events behave correctly").
//
// For the speculative protocols it certifies framework feature (2)
// within the explored bounds: every interleaving either completes with
// intact invariants or stops at the single designated detection — the
// reordered-forward for the directory protocol (§3.1), the WB_AI corner
// case for the snooping protocol (§3.2). Dynamic partial-order
// reduction and canonical state hashing push those proofs to 3-block,
// 4-node scenarios (including the Dir_i_B imprecise-sharer paths) that
// full enumeration cannot finish.
//
// Usage:
//
//	verify                     # all scenarios, both protocols and variants
//	verify -protocol snoop     # just the snooping protocol
//	verify -scenario race      # just the §3.1 writeback race
//	verify -reduce dpor        # pruning mode: sleep (default), dpor, none
//	verify -workers 8          # parallel frontier (results identical at any count)
//	verify -stats              # explored vs pruned interleaving accounting
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"specsimp/internal/coherence"
	"specsimp/internal/directory"
	"specsimp/internal/explore"
	"specsimp/internal/snoop"
)

var (
	blkA = coherence.Addr(0)
	blkB = coherence.Addr(4 * 64)
	blkC = coherence.Addr(8 * 64)
)

type dirScenario struct {
	name   string
	nodes  int
	script [][]directory.ScriptOp
	// sharers/pointers override the directory-entry format (overflow
	// scenarios).
	sharers  directory.SharerFormat
	pointers int
}

func dirScenarios() []dirScenario {
	return []dirScenario{
		{
			// The §3.1 writeback/forward race.
			name:  "race",
			nodes: 4,
			script: [][]directory.ScriptOp{
				1: {{Addr: blkA, Kind: coherence.Store}, {Addr: blkB, Kind: coherence.Store}, {Addr: blkC, Kind: coherence.Store}},
				2: {{Addr: blkA, Kind: coherence.Store}},
				3: {},
			},
		},
		{
			// The scaled proof: 3 blocks, 4 active nodes, overlapping
			// writeback races — detection fires with other transactions
			// mid-flight.
			name:  "race-3x4",
			nodes: 4,
			script: [][]directory.ScriptOp{
				0: {{Addr: blkA, Kind: coherence.Store}, {Addr: blkB, Kind: coherence.Store}, {Addr: blkC, Kind: coherence.Store}},
				1: {{Addr: blkB, Kind: coherence.Store}, {Addr: blkC, Kind: coherence.Store}},
				2: {{Addr: blkA, Kind: coherence.Store}},
				3: {{Addr: blkB, Kind: coherence.Load}},
			},
		},
		{
			// Readers invalidated by competing writers.
			name:  "share-invalidate",
			nodes: 4,
			script: [][]directory.ScriptOp{
				0: {{Addr: blkA, Kind: coherence.Load}, {Addr: blkA, Kind: coherence.Store}},
				1: {{Addr: blkA, Kind: coherence.Load}},
				2: {{Addr: blkA, Kind: coherence.Store}},
				3: {},
			},
		},
		{
			// Competing upgrades from S.
			name:  "upgrade-race",
			nodes: 4,
			script: [][]directory.ScriptOp{
				0: {{Addr: blkA, Kind: coherence.Load}, {Addr: blkA, Kind: coherence.Store}},
				1: {{Addr: blkA, Kind: coherence.Load}, {Addr: blkA, Kind: coherence.Store}},
				2: {},
				3: {},
			},
		},
		{
			// Writeback racing a read.
			name:  "race-gets",
			nodes: 4,
			script: [][]directory.ScriptOp{
				1: {{Addr: blkA, Kind: coherence.Store}, {Addr: blkB, Kind: coherence.Store}, {Addr: blkC, Kind: coherence.Store}},
				2: {{Addr: blkA, Kind: coherence.Load}},
				3: {},
			},
		},
		{
			// Dir_1_B overflow: the second sharer degrades the entry to
			// broadcast, so invalidations are imprecise (PR-3 paths).
			name:  "sharer-overflow",
			nodes: 4,
			script: [][]directory.ScriptOp{
				0: {{Addr: blkA, Kind: coherence.Load}},
				1: {{Addr: blkA, Kind: coherence.Load}},
				2: {{Addr: blkA, Kind: coherence.Load}, {Addr: blkA, Kind: coherence.Store}},
				3: {{Addr: blkA, Kind: coherence.Store}, {Addr: blkB, Kind: coherence.Store}},
			},
			sharers:  directory.LimitedPointer,
			pointers: 1,
		},
	}
}

type snoopScenario struct {
	name   string
	nodes  int
	script [][]snoop.SScriptOp
}

// Blocks that collide in the explorer's single-frame snoop L2.
var (
	sBlkA = coherence.Addr(0x000)
	sBlkB = coherence.Addr(0x400)
	sBlkC = coherence.Addr(0x800)
)

func snoopScenarios() []snoopScenario {
	return []snoopScenario{
		{
			// The §3.2 corner: a writeback in flight while two foreign
			// stores compete for the block.
			name:  "corner",
			nodes: 3,
			script: [][]snoop.SScriptOp{
				0: {{Addr: sBlkA, Kind: coherence.Store}, {Addr: sBlkB, Kind: coherence.Store}},
				1: {{Addr: sBlkA, Kind: coherence.Store}},
				2: {{Addr: sBlkA, Kind: coherence.Store}},
			},
		},
		{
			// The scaled proof: the same corner with a fourth node and a
			// third block mid-flight at detection time.
			name:  "corner-3x4",
			nodes: 4,
			script: [][]snoop.SScriptOp{
				0: {{Addr: sBlkA, Kind: coherence.Store}, {Addr: sBlkB, Kind: coherence.Store}},
				1: {{Addr: sBlkA, Kind: coherence.Store}},
				2: {{Addr: sBlkA, Kind: coherence.Store}},
				3: {{Addr: sBlkC, Kind: coherence.Store}, {Addr: sBlkC, Kind: coherence.Load}},
			},
		},
		{
			// Read-share/invalidate without writebacks.
			name:  "share-invalidate",
			nodes: 4,
			script: [][]snoop.SScriptOp{
				0: {{Addr: sBlkA, Kind: coherence.Load}, {Addr: sBlkA, Kind: coherence.Store}},
				1: {{Addr: sBlkA, Kind: coherence.Load}},
				2: {{Addr: sBlkA, Kind: coherence.Store}},
				3: {{Addr: sBlkC, Kind: coherence.Load}},
			},
		},
		{
			// Writeback racing a read.
			name:  "corner-gets",
			nodes: 3,
			script: [][]snoop.SScriptOp{
				0: {{Addr: sBlkA, Kind: coherence.Store}, {Addr: sBlkB, Kind: coherence.Store}},
				1: {{Addr: sBlkA, Kind: coherence.Load}},
				2: {{Addr: sBlkA, Kind: coherence.Store}},
			},
		},
	}
}

func parseReduce(s string) (explore.Reduction, bool) {
	switch s {
	case "sleep":
		return explore.ReduceSleep, true
	case "dpor":
		return explore.ReduceDPOR, true
	case "none":
		return explore.ReduceNone, true
	}
	return 0, false
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("verify: ")
	var (
		protocol = flag.String("protocol", "all", "protocol: directory, snoop, all")
		which    = flag.String("scenario", "all", "scenario name, or all")
		maxPaths = flag.Int("maxpaths", 200_000, "interleaving budget per exploration subtree task (total may reach budget x tasks)")
		depth    = flag.Int("depth", 0, "max delivery steps per path (0 = engine default)")
		workers  = flag.Int("workers", 1, "parallel frontier width (results identical at any count)")
		reduceS  = flag.String("reduce", "sleep", "pruning: sleep (sleep sets + state hashing), dpor, none")
		stats    = flag.Bool("stats", false, "report explored vs pruned interleaving counts")
	)
	flag.Parse()
	reduce, ok := parseReduce(*reduceS)
	if !ok {
		log.Fatalf("unknown -reduce %q (want sleep, dpor or none)", *reduceS)
	}

	failed := false
	if *protocol == "all" || *protocol == "directory" {
		for _, sc := range dirScenarios() {
			if *which != "all" && *which != sc.name {
				continue
			}
			for _, v := range []directory.Variant{directory.Full, directory.Spec} {
				start := time.Now()
				res := directory.Explore(directory.ExploreConfig{
					Variant:        v,
					Nodes:          sc.nodes,
					Script:         sc.script,
					MaxPaths:       *maxPaths,
					MaxDepth:       *depth,
					Sharers:        sc.sharers,
					SharerPointers: sc.pointers,
					Reduce:         reduce,
					NoDedup:        reduce == explore.ReduceNone,
					Workers:        *workers,
				})
				report("directory", sc.name, fmt.Sprint(v), res.Paths, res.Completed,
					res.Detected, res.Truncated, res.Violations, start, &failed)
				if *stats {
					statline(res.SleepCut, res.VisitedCut, res.Transitions, res.Replayed, res.Tasks)
				}
				if v == directory.Spec && res.Detected == 0 &&
					(sc.name == "race" || sc.name == "race-gets" || sc.name == "race-3x4") {
					fmt.Println("    warning: race scenario never triggered detection")
				}
				if v == directory.Full && res.RacesExercised > 0 && *stats {
					fmt.Printf("    writeback race exercised on %d completed paths\n", res.RacesExercised)
				}
			}
		}
	}
	if *protocol == "all" || *protocol == "snoop" {
		for _, sc := range snoopScenarios() {
			if *which != "all" && *which != sc.name {
				continue
			}
			for _, v := range []snoop.Variant{snoop.Full, snoop.Spec} {
				start := time.Now()
				res := snoop.ExploreSnoop(snoop.SExploreConfig{
					Variant:  v,
					Nodes:    sc.nodes,
					Script:   sc.script,
					MaxPaths: *maxPaths,
					MaxDepth: *depth,
					Reduce:   reduce,
					NoDedup:  reduce == explore.ReduceNone,
					Workers:  *workers,
				})
				report("snoop", sc.name, fmt.Sprint(v), res.Paths, res.Completed,
					res.Detected, res.Truncated, res.Violations, start, &failed)
				if *stats {
					statline(res.SleepCut, res.VisitedCut, res.Transitions, res.Replayed, res.Tasks)
				}
				if v == snoop.Spec && res.Detected == 0 && (sc.name == "corner" || sc.name == "corner-3x4") {
					fmt.Println("    warning: corner scenario never triggered detection")
				}
				if v == snoop.Full && res.CornerHandled > 0 {
					fmt.Printf("    corner case absorbed by the specified transition on %d paths\n", res.CornerHandled)
				}
			}
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("\nEvery explored interleaving behaved correctly: the full protocols")
	fmt.Println("never mis-speculate; the speculative protocols either complete or")
	fmt.Println("detect at their single designated invalid transition (feature 2).")
}

func report(proto, name, variant string, paths, completed, detected int, truncated bool,
	violations []string, start time.Time, failed *bool) {
	status := "OK"
	if len(violations) > 0 {
		status = "FAIL"
		*failed = true
	}
	trunc := ""
	if truncated {
		trunc = " (budget exhausted)"
	}
	fmt.Printf("%-10s %-18s %-5s %-4s %8d interleavings: %d completed, %d detected%s  [%.1fs]\n",
		proto, name, variant, status, paths, completed, detected, trunc, time.Since(start).Seconds())
	for i, viol := range violations {
		if i == 3 {
			fmt.Printf("    ... %d more\n", len(violations)-3)
			break
		}
		fmt.Printf("    %s\n", viol)
	}
}

func statline(sleepCut, visitedCut int, transitions, replayed uint64, tasks int) {
	fmt.Printf("    pruned: %d sleep-cut + %d visited-cut subtrees; %d transitions (+%d replayed) over %d tasks\n",
		sleepCut, visitedCut, transitions, replayed, tasks)
}
