// Command sweep regenerates the paper's evaluation (§5): each -exp
// selects one registered experiment and prints the corresponding
// table. The experiment set, the -exp usage string, and the
// unknown-experiment error are all generated from the registry in
// internal/experiments — run `sweep -h` for the current list.
//
// Usage:
//
//	sweep -exp fig4               # Figure 4: perf vs mis-speculation rate
//	sweep -exp fig5               # Figure 5: static vs adaptive routing
//	sweep -exp reorder            # §5.3 reorder rates vs link bandwidth
//	sweep -exp snoop              # §5.3 snooping recoveries
//	sweep -exp buffers            # §5.3 interconnect buffer sweep
//	sweep -exp scale64            # scaling study: 16 -> 64 -> 256 nodes
//	sweep -exp slowstart          # ablation A2
//	sweep -exp deflection         # ablation A4
//	sweep -exp reenable           # ablation A5
//	sweep -exp checkpoint         # ablation A3
//	sweep -exp availability       # fault regimes x checkpoint cadence
//	sweep -exp all                # every registered experiment, sorted
//	sweep -exp fig5 -quick        # bench-sized parameters
//
// Campaigns and analysis (see EXPERIMENTS.md "Campaigns and
// analysis"): -campaign runs a declarative JSON spec — experiments ×
// axis overrides × repeats × shards × run id — with per-point resume
// keyed on the run directory's progress ledger; a killed campaign
// re-invoked with the same spec and run id skips completed points and
// converges to a byte-identical artifact tree. -analyze regenerates
// summaries, paper tables, and LaTeX tables from a completed run
// directory without re-simulating.
//
//	sweep -campaign campaigns/paper.json          # full -exp all surface
//	sweep -campaign spec.json -run-id night7      # override the spec's run_id
//	sweep -analyze sweep-runs/run-night7          # tables into .../analysis/
//
// Execution and artifacts (see EXPERIMENTS.md "Artifact layout"):
//
//	sweep -exp all -parallel 4 -out /tmp/run1   # bounded pool, persisted CSV+JSON
//	sweep -exp all -out auto                    # timestamped dir under sweep-runs/
//	sweep -exp all -out auto -run-id nightly1   # named dir, reproducible manifest
//	sweep -exp fig4 -json                       # JSON summaries on stdout
//
// Two orthogonal parallelism axes: -parallel bounds how many design
// points simulate concurrently (one kernel each, across runs), while
// -shards splits each shard-capable run's torus into conservative-
// window shards (intra-run; scale64's directory points). Artifacts are
// byte-identical across any setting of either.
//
//	sweep -exp scale64 -parallel 4 -shards 4 -out /tmp/run2
//
// With -out, every run lands as one CSV row (<experiment>.csv), every
// experiment writes a JSON summary (<experiment>.json), and the run is
// described by manifest.json. Identical invocations reproduce the CSVs
// and summaries byte for byte; with -run-id the manifest is
// byte-reproducible too (the run id replaces the wall-clock start
// time), so the entire artifact tree can be diffed across machines and
// reruns. The body lives in internal/sweepcli so tests can drive full
// invocations in-process.
package main

import (
	"flag"
	"log"
	"os"

	"specsimp/internal/sweepcli"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	if err := sweepcli.Run(os.Args[1:], os.Stdout); err != nil {
		if err == flag.ErrHelp {
			os.Exit(0)
		}
		log.Fatal(err)
	}
}
