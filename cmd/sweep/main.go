// Command sweep regenerates the paper's evaluation (§5): each -exp
// selects one figure or result and prints the corresponding table.
//
// Usage:
//
//	sweep -exp fig4               # Figure 4: perf vs mis-speculation rate
//	sweep -exp fig5               # Figure 5: static vs adaptive routing
//	sweep -exp reorder            # §5.3 reorder rates vs link bandwidth
//	sweep -exp snoop              # §5.3 snooping recoveries
//	sweep -exp buffers            # §5.3 interconnect buffer sweep
//	sweep -exp slowstart          # ablation A2
//	sweep -exp deflection         # ablation A4
//	sweep -exp reenable           # ablation A5
//	sweep -exp checkpoint         # ablation A3
//	sweep -exp all
//	sweep -exp fig5 -quick        # bench-sized parameters
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"specsimp"
	"specsimp/internal/experiments"
	"specsimp/internal/sim"
	"specsimp/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	var (
		exp    = flag.String("exp", "all", "experiment: fig4, fig5, reorder, snoop, buffers, slowstart, checkpoint, all")
		quick  = flag.Bool("quick", false, "bench-sized parameters (faster, noisier)")
		wlName = flag.String("workload", "oltp", "workload for reorder/buffers/ablations")
	)
	flag.Parse()

	p := specsimp.StandardParams()
	if *quick {
		p = specsimp.QuickParams()
	}
	wl, ok := specsimp.WorkloadByName(*wlName)
	if !ok {
		log.Fatalf("unknown workload %q", *wlName)
	}

	run := func(name string, fn func()) {
		start := time.Now()
		fmt.Printf("==== %s ====\n", name)
		fn()
		fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
	}

	all := *exp == "all"
	if all || *exp == "fig4" {
		run("Figure 4: normalized performance vs mis-speculation rate", func() {
			fmt.Printf("compressed clock: 1 second = %.0f cycles; projections at true 4 GHz\n\n", p.CyclesPerSecond)
			fmt.Println(specsimp.Fig4Table(specsimp.Fig4(p)))
		})
	}
	if all || *exp == "fig5" {
		run("Figure 5: static vs adaptive routing (400 MB/s links)", func() {
			fmt.Println(specsimp.Fig5Table(specsimp.Fig5(p)))
		})
	}
	if all || *exp == "reorder" {
		run("§5.3: message reorder rates vs link bandwidth ("+wl.Name+")", func() {
			fmt.Println(specsimp.ReorderTable(specsimp.ReorderRates(p, wl)))
		})
	}
	if all || *exp == "snoop" {
		run("§5.3: speculatively simplified snooping protocol", func() {
			fmt.Println(specsimp.SnoopTable(specsimp.SnoopRecoveries(p)))
		})
	}
	if all || *exp == "buffers" {
		run("§5.3: simplified interconnect buffer sweep ("+wl.Name+")", func() {
			fmt.Println(specsimp.BufferTable(specsimp.BufferSweep(p, wl)))
		})
	}
	if all || *exp == "slowstart" {
		run("Ablation A2: slow-start outstanding limit ("+wl.Name+", 2-entry buffers)", func() {
			res := experiments.SlowStartAblation(p, wl, []int{1, 2, 4, 8})
			for _, r := range res {
				fmt.Printf("  limit %d: perf %s, recoveries %.2f\n", r.Limit, r.Perf, r.Recoveries)
			}
		})
	}
	if all || *exp == "deflection" {
		run("Ablation A4: deadlock-recovery vs deflection routing ("+wl.Name+")", func() {
			res := experiments.DeflectionAblation(p, wl)
			for _, r := range res {
				fmt.Printf("  %-16s perf %s, recoveries %.2f, deflections %.0f\n",
					r.Name, r.Perf, r.Recoveries, r.Deflections)
			}
		})
	}
	if all || *exp == "reenable" {
		run("Ablation A5: adaptive-routing re-enable window ("+wl.Name+", amplified reordering)", func() {
			res := experiments.ReenableAblation(p, wl,
				[]sim.Time{0, 2 * p.CheckpointInterval, 10 * p.CheckpointInterval, 50 * p.CheckpointInterval})
			for _, r := range res {
				name := fmt.Sprintf("%d cycles", r.Window)
				if r.Window == 0 {
					name = "never (conservative)"
				}
				fmt.Printf("  re-enable after %-22s perf %s, recoveries %.2f\n", name+":", r.Perf, r.Recoveries)
			}
		})
	}
	if all || *exp == "checkpoint" {
		run("Ablation A3: checkpoint interval vs log occupancy", func() {
			res := experiments.CheckpointAblation(p, workload.Uniform,
				[]sim.Time{2_000, 5_000, 20_000, 50_000})
			for _, r := range res {
				fmt.Printf("  interval %6d: perf %s, log high water %.0f B, ckpt stall %.0f cyc\n",
					r.Interval, r.Perf, r.LogHighWater, r.CheckpointStall)
			}
		})
	}
}
