// Command sweep regenerates the paper's evaluation (§5): each -exp
// selects one figure or result and prints the corresponding table.
//
// Usage:
//
//	sweep -exp fig4               # Figure 4: perf vs mis-speculation rate
//	sweep -exp fig5               # Figure 5: static vs adaptive routing
//	sweep -exp reorder            # §5.3 reorder rates vs link bandwidth
//	sweep -exp snoop              # §5.3 snooping recoveries
//	sweep -exp buffers            # §5.3 interconnect buffer sweep
//	sweep -exp scale64            # scaling study: 16 -> 64 -> 256 nodes
//	sweep -exp slowstart          # ablation A2
//	sweep -exp deflection         # ablation A4
//	sweep -exp reenable           # ablation A5
//	sweep -exp checkpoint         # ablation A3
//	sweep -exp all
//	sweep -exp fig5 -quick        # bench-sized parameters
//
// Execution and artifacts (see EXPERIMENTS.md "Artifact layout"):
//
//	sweep -exp all -parallel 4 -out /tmp/run1   # bounded pool, persisted CSV+JSON
//	sweep -exp all -out auto                    # timestamped dir under sweep-runs/
//	sweep -exp fig4 -json                       # JSON summaries on stdout
//
// Two orthogonal parallelism axes: -parallel bounds how many design
// points simulate concurrently (one kernel each, across runs), while
// -shards splits each shard-capable run's torus into conservative-
// window shards (intra-run; scale64's directory points). Artifacts are
// byte-identical across any setting of either.
//
//	sweep -exp scale64 -parallel 4 -shards 4 -out /tmp/run2
//
// With -out, every run lands as one CSV row (<experiment>.csv), every
// experiment writes a JSON summary (<experiment>.json), and the run is
// described by manifest.json. Identical invocations reproduce the CSVs
// and summaries byte for byte; only the manifest carries wall-clock
// state.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"specsimp"
	"specsimp/internal/experiments"
	"specsimp/internal/runner"
	"specsimp/internal/sim"
	"specsimp/internal/workload"
)

func main() {
	startedAt := time.Now().UTC()
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	var (
		exp      = flag.String("exp", "all", "experiment: fig4, fig5, reorder, snoop, buffers, scale64, slowstart, deflection, reenable, checkpoint, all")
		quick    = flag.Bool("quick", false, "bench-sized parameters (faster, noisier)")
		wlName   = flag.String("workload", "oltp", "workload for reorder/buffers/ablations")
		parallel = flag.Int("parallel", 0, "ACROSS-run parallelism: the worker-pool bound for grid execution — up to N design points simulate concurrently, one kernel each (0 = GOMAXPROCS). Orthogonal to -shards.")
		shards   = flag.Int("shards", 1, "INTRA-run parallelism for shard-capable design points (the scale64 directory machines): each single run partitions its torus into N column-strip shards advancing in conservative lockstep windows. Results and artifacts are byte-identical for every value; per point the count is clamped to the largest divisor of the torus width, and snooping points always simulate serially (ordered bus). Must be >= 1.")
		out      = flag.String("out", "", "artifact directory for CSV+JSON results ('auto' = timestamped dir under sweep-runs/, empty = none)")
		asJSON   = flag.Bool("json", false, "print JSON summaries to stdout instead of tables")
	)
	flag.Parse()

	p := specsimp.StandardParams()
	if *quick {
		p = specsimp.QuickParams()
	}
	if *shards < 1 {
		log.Fatalf("-shards must be at least 1, got %d (intra-run shard counts partition a single simulation; 1 means serial)", *shards)
	}
	p.Shards = *shards
	wl, ok := specsimp.WorkloadByName(*wlName)
	if !ok {
		log.Fatalf("unknown workload %q", *wlName)
	}

	ex := &runner.Runner{Workers: *parallel}
	if *out != "" {
		dir := *out
		if dir == "auto" {
			dir = runner.TimestampedDir("sweep-runs")
		}
		sink, err := runner.NewSink(dir)
		if err != nil {
			log.Fatal(err)
		}
		ex.Sink = sink
	}
	p.Exec = ex

	var ran []string
	run := func(name, title string, fn func() interface{}) {
		ran = append(ran, name)
		start := time.Now()
		if *asJSON {
			res := fn()
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(map[string]interface{}{"experiment": name, "results": res}); err != nil {
				log.Fatal(err)
			}
			return
		}
		fmt.Printf("==== %s ====\n", title)
		fn()
		fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
	}

	all := *exp == "all"
	if all || *exp == "fig4" {
		run("fig4", "Figure 4: normalized performance vs mis-speculation rate", func() interface{} {
			if !*asJSON {
				fmt.Printf("compressed clock: 1 second = %.0f cycles; projections at true 4 GHz\n\n", p.CyclesPerSecond)
			}
			res := specsimp.Fig4(p)
			if !*asJSON {
				fmt.Println(specsimp.Fig4Table(res))
			}
			return res
		})
	}
	if all || *exp == "fig5" {
		run("fig5", "Figure 5: static vs adaptive routing (400 MB/s links)", func() interface{} {
			res := specsimp.Fig5(p)
			if !*asJSON {
				fmt.Println(specsimp.Fig5Table(res))
			}
			return res
		})
	}
	if all || *exp == "reorder" {
		run("reorder", "§5.3: message reorder rates vs link bandwidth ("+wl.Name+")", func() interface{} {
			res := specsimp.ReorderRates(p, wl)
			if !*asJSON {
				fmt.Println(specsimp.ReorderTable(res))
			}
			return res
		})
	}
	if all || *exp == "snoop" {
		run("snoop", "§5.3: speculatively simplified snooping protocol", func() interface{} {
			res := specsimp.SnoopRecoveries(p)
			if !*asJSON {
				fmt.Println(specsimp.SnoopTable(res))
			}
			return res
		})
	}
	if all || *exp == "buffers" {
		run("buffers", "§5.3: simplified interconnect buffer sweep ("+wl.Name+")", func() interface{} {
			res := specsimp.BufferSweep(p, wl)
			if !*asJSON {
				fmt.Println(specsimp.BufferTable(res))
			}
			return res
		})
	}
	if all || *exp == "scale64" {
		run("scale64", "Scaling study: 4x4 -> 8x8 -> 16x16, both Spec protocols (directory-only at 256 nodes)", func() interface{} {
			res := specsimp.ScaleSweep(p)
			if !*asJSON {
				fmt.Println(specsimp.ScaleTable(res))
			}
			return res
		})
	}
	if all || *exp == "slowstart" {
		run("slowstart", "Ablation A2: slow-start outstanding limit ("+wl.Name+", 2-entry buffers)", func() interface{} {
			res := experiments.SlowStartAblation(p, wl, []int{1, 2, 4, 8})
			if !*asJSON {
				for _, r := range res {
					fmt.Printf("  limit %d: perf %s, recoveries %.2f\n", r.Limit, r.Perf, r.Recoveries)
				}
			}
			return res
		})
	}
	if all || *exp == "deflection" {
		run("deflection", "Ablation A4: deadlock-recovery vs deflection routing ("+wl.Name+")", func() interface{} {
			res := experiments.DeflectionAblation(p, wl)
			if !*asJSON {
				for _, r := range res {
					fmt.Printf("  %-16s perf %s, recoveries %.2f, deflections %.0f\n",
						r.Name, r.Perf, r.Recoveries, r.Deflections)
				}
			}
			return res
		})
	}
	if all || *exp == "reenable" {
		run("reenable", "Ablation A5: adaptive-routing re-enable window ("+wl.Name+", amplified reordering)", func() interface{} {
			res := experiments.ReenableAblation(p, wl,
				[]sim.Time{0, 2 * p.CheckpointInterval, 10 * p.CheckpointInterval, 50 * p.CheckpointInterval})
			if !*asJSON {
				for _, r := range res {
					name := fmt.Sprintf("%d cycles", r.Window)
					if r.Window == 0 {
						name = "never (conservative)"
					}
					fmt.Printf("  re-enable after %-22s perf %s, recoveries %.2f\n", name+":", r.Perf, r.Recoveries)
				}
			}
			return res
		})
	}
	if all || *exp == "checkpoint" {
		run("checkpoint", "Ablation A3: checkpoint interval vs log occupancy", func() interface{} {
			res := experiments.CheckpointAblation(p, workload.Uniform,
				[]sim.Time{2_000, 5_000, 20_000, 50_000})
			if !*asJSON {
				for _, r := range res {
					fmt.Printf("  interval %6d: perf %s, log high water %.0f B, ckpt stall %.0f cyc\n",
						r.Interval, r.Perf, r.LogHighWater, r.CheckpointStall)
				}
			}
			return res
		})
	}
	if len(ran) == 0 {
		log.Fatalf("unknown experiment %q", *exp)
	}

	if s := ex.Sink; s != nil {
		s.WriteJSON("manifest", runner.Manifest{
			StartedAt:   startedAt,
			Command:     strings.Join(os.Args, " "),
			Experiments: ran,
			Workers:     ex.WorkerBound(),
			Quick:       *quick,
		})
		if err := s.Err(); err != nil {
			log.Fatalf("artifact write failed: %v", err)
		}
		log.Printf("artifacts written to %s", s.Dir())
	}
}
