// Command tables prints the paper's descriptive tables and the protocol
// complexity comparison.
//
// Usage:
//
//	tables -table 1           # framework characterization (Table 1)
//	tables -table 2           # target system parameters (Table 2)
//	tables -table 3           # workload suite (Table 3)
//	tables -table complexity  # full-vs-spec controller complexity (A1)
//	tables -table all
//	tables -table complexity -json   # machine-readable complexity counts
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"specsimp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tables: ")
	which := flag.String("table", "all", "table to print: 1, 2, 3, complexity, all")
	asJSON := flag.Bool("json", false, "emit the complexity comparison as JSON (tables 1-3 are prose-only)")
	flag.Parse()

	if *asJSON {
		if *which != "complexity" && *which != "all" {
			log.Fatalf("-json covers only -table complexity")
		}
		complexityJSON()
		return
	}

	switch *which {
	case "1":
		table1()
	case "2":
		table2()
	case "3":
		table3()
	case "complexity":
		complexity()
	case "all":
		table1()
		table2()
		table3()
		complexity()
	default:
		log.Fatalf("unknown table %q", *which)
	}
}

func table1() {
	fmt.Println("Table 1. Using the framework to characterize three speculative designs")
	fmt.Println()
	fmt.Println(specsimp.Table1())
}

func table2() {
	fmt.Println("Table 2. Target system parameters")
	fmt.Println()
	cfg := specsimp.DefaultConfig(specsimp.DirectorySpec, specsimp.OLTP)
	fmt.Println(specsimp.Table2(cfg))
}

func table3() {
	fmt.Println("Table 3. Workloads (synthetic substitutes; see DESIGN.md)")
	fmt.Println()
	for _, wl := range specsimp.WorkloadSuite() {
		fmt.Printf("%-10s %s\n", wl.Name+":", wl.Description)
		fmt.Printf("%-10s shared %d blocks (%.0f%% of refs, %.0f%% stores), private %d blocks/node, migratory %.0f%%\n",
			"", wl.SharedBlocks, 100*wl.SharedFrac, 100*wl.StoreFrac, wl.PrivateBlocks, 100*wl.MigratoryFrac)
		fmt.Println()
	}
}

func complexityJSON() {
	doc := map[string]interface{}{
		"directory": map[string]interface{}{
			"full": specsimp.DirectoryComplexity(specsimp.DirFull),
			"spec": specsimp.DirectoryComplexity(specsimp.DirSpec),
		},
		"snooping": map[string]interface{}{
			"full": specsimp.SnoopComplexity(specsimp.SnFull),
			"spec": specsimp.SnoopComplexity(specsimp.SnSpec),
		},
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		log.Fatal(err)
	}
}

func complexity() {
	fmt.Println("Controller complexity: full vs speculatively simplified (ablation A1)")
	fmt.Println()
	df := specsimp.DirectoryComplexity(specsimp.DirFull)
	ds := specsimp.DirectoryComplexity(specsimp.DirSpec)
	fmt.Printf("directory protocol:\n")
	fmt.Printf("  full: %2d cache states, %2d cache transitions, %2d dir transitions, %2d message kinds\n",
		df.CacheStates, df.CacheTransitions, df.DirTransitions, df.MessageKinds)
	fmt.Printf("  spec: %2d cache states, %2d cache transitions, %2d dir transitions, %2d message kinds\n",
		ds.CacheStates, ds.CacheTransitions, ds.DirTransitions, ds.MessageKinds)
	fmt.Printf("  => speculation removes %d states, %d transitions, %d message kinds\n\n",
		df.CacheStates-ds.CacheStates, df.CacheTransitions-ds.CacheTransitions, df.MessageKinds-ds.MessageKinds)

	sf := specsimp.SnoopComplexity(specsimp.SnFull)
	ss := specsimp.SnoopComplexity(specsimp.SnSpec)
	fmt.Printf("snooping protocol:\n")
	fmt.Printf("  full: %2d states, %2d transitions\n", sf.States, sf.Transitions)
	fmt.Printf("  spec: %2d states, %2d transitions\n", ss.States, ss.Transitions)
	fmt.Printf("  => exactly the overlooked corner-case transition differs (paper §3.2)\n")
}
