package campaign

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"

	"specsimp/internal/runner"
)

// Digest returns the canonical design-point digest: a sha256 over the
// point's complete identity — experiment, workload, repeat, seed, and
// sorted axis params. Metrics are a pure function of this identity
// (runner.Point.Run's contract), so a ledger entry under the digest
// substitutes for re-execution exactly.
func Digest(pt runner.Point) string {
	h := sha256.New()
	writeField := func(s string) {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	writeField(pt.Experiment)
	writeField(pt.Workload)
	writeField(strconv.Itoa(pt.Repeat))
	writeField(strconv.FormatUint(pt.Seed, 10))
	keys := make([]string, 0, len(pt.Params))
	for k := range pt.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		writeField(k + "=" + pt.Params[k])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ledgerEntry is one completed point: its digest and its outcome.
// Metrics travel as the same shortest-round-trip strings the CSV
// artifact uses (runner.MetricKeys order), so reloading reproduces the
// exact float64 values — and non-finite values, which encoding/json
// cannot represent as numbers, are no special case.
type ledgerEntry struct {
	Digest  string   `json:"digest"`
	Metrics []string `json:"m"`
	Err     string   `json:"err,omitempty"`
}

func entryOf(pt runner.Point, m runner.Metrics, errText string) ledgerEntry {
	keys := runner.MetricKeys()
	vals := make([]string, len(keys))
	for i, k := range keys {
		vals[i] = strconv.FormatFloat(m.Get(k), 'g', -1, 64)
	}
	return ledgerEntry{Digest: Digest(pt), Metrics: vals, Err: errText}
}

func (e ledgerEntry) metrics() (runner.Metrics, error) {
	keys := runner.MetricKeys()
	var m runner.Metrics
	if len(e.Metrics) != len(keys) {
		return m, fmt.Errorf("ledger entry %s has %d metrics, want %d (run dir from a different schema?)",
			e.Digest, len(e.Metrics), len(keys))
	}
	for i, k := range keys {
		v, err := strconv.ParseFloat(e.Metrics[i], 64)
		if err != nil {
			return m, fmt.Errorf("ledger entry %s: metric %s: %v", e.Digest, k, err)
		}
		m.Set(k, v)
	}
	return m, nil
}

// Ledger is the campaign's per-point completion record and the sweep
// engine's resume cache (runner.PointCache). Completed points append
// to progress/points.jsonl as they finish — in completion order, which
// is scheduling-dependent — and Canonicalize rewrites the file in grid
// order once the campaign completes, so clean and resumed runs end
// with identical bytes. Loading tolerates a truncated final line (the
// footprint of a mid-write kill).
type Ledger struct {
	path string

	mu      sync.Mutex
	f       *os.File
	entries map[string]ledgerEntry
	reused  int
	fresh   int
	// abortAfter > 0 interrupts the campaign once that many fresh
	// points have been stored this invocation — the point-count kill
	// hook the resume tests and the CI campaign-smoke job use.
	abortAfter int
}

// OpenLedger loads (or creates) the run directory's progress ledger.
// Any valid prefix of an interrupted append survives; the file is
// rewritten to that prefix so subsequent appends start from a clean
// line boundary.
func OpenLedger(dir string) (*Ledger, error) {
	path := filepath.Join(dir, "progress", "points.jsonl")
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("campaign: create progress dir: %v", err)
	}
	entries := map[string]ledgerEntry{}
	var valid []ledgerEntry
	if data, err := os.ReadFile(path); err == nil {
		for _, line := range bytes.Split(data, []byte("\n")) {
			if len(bytes.TrimSpace(line)) == 0 {
				continue
			}
			var e ledgerEntry
			if err := json.Unmarshal(line, &e); err != nil {
				// A torn tail from a killed append; everything before it
				// is intact and everything after it never happened.
				break
			}
			if _, err := e.metrics(); err != nil {
				return nil, err
			}
			if _, dup := entries[e.Digest]; !dup {
				valid = append(valid, e)
			}
			entries[e.Digest] = e
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("campaign: read ledger: %v", err)
	}
	if err := writeEntries(path, valid); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: open ledger: %v", err)
	}
	return &Ledger{path: path, f: f, entries: entries}, nil
}

func writeEntries(path string, entries []ledgerEntry) error {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	for _, e := range entries {
		data, err := json.Marshal(e)
		if err != nil {
			return fmt.Errorf("campaign: encode ledger entry: %v", err)
		}
		w.Write(data)
		w.WriteByte('\n')
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("campaign: rewrite ledger: %v", err)
	}
	return nil
}

// Lookup implements runner.PointCache: a completed point's recorded
// outcome substitutes for re-execution.
func (l *Ledger) Lookup(pt runner.Point) (runner.Metrics, string, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e, ok := l.entries[Digest(pt)]
	if !ok {
		return runner.Metrics{}, "", false
	}
	m, err := e.metrics()
	if err != nil {
		// Validated at load; unreachable afterwards.
		panic("campaign: " + err.Error())
	}
	l.reused++
	return m, e.Err, true
}

// Store implements runner.PointCache: a freshly executed point appends
// durably before the campaign moves on.
func (l *Ledger) Store(pt runner.Point, m runner.Metrics, errText string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	e := entryOf(pt, m, errText)
	if _, dup := l.entries[e.Digest]; dup {
		return
	}
	l.entries[e.Digest] = e
	l.fresh++
	if l.f != nil {
		data, err := json.Marshal(e)
		if err == nil {
			_, err = l.f.Write(append(data, '\n'))
		}
		if err != nil {
			// Losing an append costs re-execution on resume, not
			// correctness; the campaign's sink errors cover real disk
			// failure.
			return
		}
	}
}

// Interrupted reports whether the abort-after hook has fired; it is
// the campaign Runner's Interrupt poll.
func (l *Ledger) Interrupted() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.abortAfter > 0 && l.fresh >= l.abortAfter
}

// Reused and Fresh report this invocation's cache-hit and executed
// point counts.
func (l *Ledger) Reused() int { l.mu.Lock(); defer l.mu.Unlock(); return l.reused }
func (l *Ledger) Fresh() int  { l.mu.Lock(); defer l.mu.Unlock(); return l.fresh }

// Canonicalize rewrites the ledger in the plan's grid order — the
// completion-order append log is scheduling-dependent, and a resumed
// campaign's log differs from a clean one; the canonical rewrite is
// what makes the final trees byte-identical. Every plan point must be
// present (the campaign completed).
func (l *Ledger) Canonicalize(plan Plan) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	var ordered []ledgerEntry
	for _, pe := range plan.Experiments {
		for _, pt := range pe.Points {
			e, ok := l.entries[Digest(pt)]
			if !ok {
				return fmt.Errorf("campaign: ledger is missing completed point %s/%s (internal error)",
					pt.Experiment, pt.Workload)
			}
			ordered = append(ordered, e)
		}
	}
	return writeEntries(l.path, ordered)
}

// Close releases the append handle (idempotent).
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}
