package campaign_test

import (
	"bytes"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"specsimp/internal/campaign"
)

// smokeSpec is the test campaign: two experiments, three design
// points, bench-sized parameters — big enough to exercise resume
// across an experiment boundary, small enough to run three times in
// one test.
const smokeSpec = `{
  "run_id": "t1",
  "quick": true,
  "repeats": 1,
  "parallel": 1,
  "experiments": [
    { "name": "slowstart", "axes": { "limit": [1, 2] } },
    { "name": "reorder", "axes": { "bw": 0.1 } }
  ]
}`

func buildPlan(t *testing.T, specJSON string) campaign.Plan {
	t.Helper()
	spec, err := campaign.ParseSpec([]byte(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := campaign.BuildPlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestCampaignResumeByteIdentical is the resume contract's pin: a
// campaign killed mid-run (after one fresh point, via the abort hook)
// and then re-invoked with the same spec and run id must converge to an
// artifact tree byte-identical to an uninterrupted run's — ledger
// included.
func TestCampaignResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the smoke campaign three times; skipped in -short")
	}
	plan := buildPlan(t, smokeSpec)
	if got := plan.Points(); got != 3 {
		t.Fatalf("smoke plan has %d points, want 3", got)
	}

	cleanRoot := t.TempDir()
	rep, err := campaign.Execute(plan, campaign.Options{Root: cleanRoot})
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	if rep.Interrupted || rep.Executed != 3 || rep.Reused != 0 {
		t.Fatalf("clean run report = %+v", rep)
	}

	resumeRoot := t.TempDir()
	rep, err = campaign.Execute(plan, campaign.Options{Root: resumeRoot, AbortAfter: 1})
	if err != nil {
		t.Fatalf("interrupted run: %v", err)
	}
	if !rep.Interrupted {
		t.Fatal("abort hook did not interrupt the campaign")
	}
	if rep.Executed != 1 {
		t.Fatalf("interrupted run executed %d points, want 1", rep.Executed)
	}
	if _, err := os.Stat(filepath.Join(rep.Dir, "manifest.json")); !os.IsNotExist(err) {
		t.Fatal("interrupted run wrote a manifest — the tree must be visibly incomplete")
	}
	if _, err := os.Stat(filepath.Join(rep.Dir, "slowstart.csv")); !os.IsNotExist(err) {
		t.Fatal("interrupted run wrote CSV rows for an incomplete experiment")
	}

	rep, err = campaign.Execute(plan, campaign.Options{Root: resumeRoot})
	if err != nil {
		t.Fatalf("resume run: %v", err)
	}
	if rep.Interrupted || rep.Reused != 1 || rep.Executed != 2 {
		t.Fatalf("resume run report = %+v, want 1 reused + 2 executed", rep)
	}

	clean := readTree(t, filepath.Join(cleanRoot, "run-t1"))
	resumed := readTree(t, filepath.Join(resumeRoot, "run-t1"))
	if a, b := sortedNames(clean), sortedNames(resumed); !equalStrings(a, b) {
		t.Fatalf("trees differ in shape: %v vs %v", a, b)
	}
	for _, name := range sortedNames(clean) {
		if !bytes.Equal(clean[name], resumed[name]) {
			t.Errorf("%s differs between clean and resumed campaigns:\n--- clean ---\n%s\n--- resumed ---\n%s",
				name, clean[name], resumed[name])
		}
	}

	// A third invocation over the completed tree reuses everything.
	rep, err = campaign.Execute(plan, campaign.Options{Root: resumeRoot})
	if err != nil {
		t.Fatalf("rerun over completed tree: %v", err)
	}
	if rep.Executed != 0 || rep.Reused != 3 {
		t.Fatalf("rerun report = %+v, want all 3 points reused", rep)
	}
}

// TestCampaignSpecDriftRefused pins the run-directory ownership check:
// the same run id with a different spec is an error, not a silent
// partial re-simulation.
func TestCampaignSpecDriftRefused(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the smoke campaign; skipped in -short")
	}
	root := t.TempDir()
	if _, err := campaign.Execute(buildPlan(t, smokeSpec), campaign.Options{Root: root}); err != nil {
		t.Fatal(err)
	}
	drifted := buildPlan(t, strings.Replace(smokeSpec, `[1, 2]`, `[1, 4]`, 1))
	_, err := campaign.Execute(drifted, campaign.Options{Root: root})
	if err == nil || !strings.Contains(err.Error(), "different spec") {
		t.Fatalf("drifted spec not refused: %v", err)
	}
}

// TestAnalyzeRegeneratesSummaries runs -analyze over a completed
// campaign directory: the regenerated JSON summary must byte-match the
// one the run itself wrote, and every analysis artifact must exist.
func TestAnalyzeRegeneratesSummaries(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the smoke campaign; skipped in -short")
	}
	root := t.TempDir()
	rep, err := campaign.Execute(buildPlan(t, smokeSpec), campaign.Options{Root: root})
	if err != nil {
		t.Fatal(err)
	}
	arep, err := campaign.Analyze(rep.Dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"slowstart", "reorder"}; !equalStrings(arep.Experiments, want) {
		t.Fatalf("analyzed %v, want %v", arep.Experiments, want)
	}
	if arep.Rows != 3 {
		t.Fatalf("analysis consumed %d rows, want 3", arep.Rows)
	}
	for _, name := range arep.Experiments {
		orig, err := os.ReadFile(filepath.Join(rep.Dir, name+".json"))
		if err != nil {
			t.Fatal(err)
		}
		regen, err := os.ReadFile(filepath.Join(rep.Dir, "analysis", name+".json"))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(orig, regen) {
			t.Errorf("%s.json: analysis regeneration differs from the run's own summary", name)
		}
		for _, suffix := range []string{"-summary.csv", "-table.txt", "-table.tex"} {
			if _, err := os.Stat(filepath.Join(rep.Dir, "analysis", name+suffix)); err != nil {
				t.Errorf("missing analysis artifact %s%s: %v", name, suffix, err)
			}
		}
	}
	// Tampering with a CSV row's identity must be detected, not
	// silently aggregated.
	path := filepath.Join(rep.Dir, "reorder.csv")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, bytes.Replace(data, []byte("reorder,oltp"), []byte("reorder,jbb"), 1), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := campaign.Analyze(rep.Dir); err == nil || !strings.Contains(err.Error(), "does not match the plan's grid") {
		t.Fatalf("tampered CSV not detected: %v", err)
	}
}

// TestBuildPlanValidation pins the spec validation surface: every bad
// spec is a descriptive error, never a panic.
func TestBuildPlanValidation(t *testing.T) {
	cases := []struct {
		name string
		spec string
		want string
	}{
		{"no experiments", `{"run_id": "x", "experiments": []}`, "lists no experiments"},
		{"no run id", `{"experiments": [{"name": "fig5"}]}`, "needs a run id"},
		{"unknown experiment", `{"run_id": "x", "experiments": [{"name": "fig9"}]}`, `unknown experiment "fig9"`},
		{"nameless experiment", `{"run_id": "x", "experiments": [{}]}`, "without a name"},
		{"duplicate experiment", `{"run_id": "x", "experiments": [{"name": "fig5"}, {"name": "fig5"}]}`, "listed twice"},
		{"unknown axis", `{"run_id": "x", "experiments": [{"name": "reorder", "axes": {"bandwidth": [1]}}]}`, "bandwidth"},
		{"bad axis value", `{"run_id": "x", "experiments": [{"name": "slowstart", "axes": {"limit": ["two"]}}]}`, "limit"},
		{"bad shard count", `{"run_id": "x", "shards": "zero", "experiments": [{"name": "fig5"}]}`, "-shards"},
		{"non-dividing shards", `{"run_id": "x", "shards": "3x5", "experiments": [{"name": "fig5"}]}`, "does not divide"},
		{"negative repeats", `{"run_id": "x", "repeats": -1, "experiments": [{"name": "fig5"}]}`, "repeats"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec, err := campaign.ParseSpec([]byte(tc.spec))
			if err != nil {
				t.Fatalf("spec did not parse: %v", err)
			}
			_, err = campaign.BuildPlan(spec)
			if err == nil {
				t.Fatalf("invalid spec accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	if _, err := campaign.ParseSpec([]byte(`{"run_id": "x", "experimnets": []}`)); err == nil {
		t.Fatal("typoed spec key accepted")
	}
	if _, err := campaign.ParseSpec([]byte(`{"experiments": [{"name": "fig5", "axes": {"workloads": [["oltp"]]}}]}`)); err == nil {
		t.Fatal("nested axis value list accepted")
	}
}

// TestDigestIdentity pins what the resume digest covers: every identity
// field changes it, and param order does not exist (maps are sorted).
func TestDigestIdentity(t *testing.T) {
	plan := buildPlan(t, smokeSpec)
	base := plan.Experiments[0].Points[0]
	d0 := campaign.Digest(base)
	if d0 != campaign.Digest(base) {
		t.Fatal("digest is not deterministic")
	}
	mut := base
	mut.Seed++
	if campaign.Digest(mut) == d0 {
		t.Fatal("seed change did not change the digest")
	}
	mut = base
	mut.Repeat++
	if campaign.Digest(mut) == d0 {
		t.Fatal("repeat change did not change the digest")
	}
	mut = base
	mut.Params = map[string]string{}
	for k, v := range base.Params {
		mut.Params[k] = v
	}
	mut.Params["limit"] = "99"
	if campaign.Digest(mut) == d0 {
		t.Fatal("param change did not change the digest")
	}
}

func readTree(t *testing.T, root string) map[string][]byte {
	t.Helper()
	tree := map[string][]byte{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		tree[filepath.ToSlash(rel)] = data
		return nil
	})
	if err != nil {
		t.Fatalf("read artifact tree %s: %v", root, err)
	}
	return tree
}

func sortedNames(tree map[string][]byte) []string {
	names := make([]string, 0, len(tree))
	for name := range tree {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCheckedInSpecsBuild validates every spec under campaigns/ against
// the registry — a spec that rots when an experiment or axis changes
// must fail here, not at a user's 3 a.m. campaign launch.
func TestCheckedInSpecsBuild(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "campaigns", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no campaign specs found under campaigns/")
	}
	for _, path := range paths {
		spec, err := campaign.LoadSpec(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		plan, err := campaign.BuildPlan(spec)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if plan.Points() == 0 {
			t.Errorf("%s: plan has no design points", path)
		}
	}
}
