// Package campaign turns a declarative JSON spec — experiments × axis
// overrides × repeats × shards × run-id — into a validated plan of
// design points and executes it through the sweep engine with
// per-point resume: the run directory's progress ledger records every
// completed point under a canonical digest, so a killed campaign
// re-invoked with the same spec and run id skips finished points and
// still produces an artifact tree byte-identical to an uninterrupted
// run. The package also hosts the analysis stage (Analyze), which
// regenerates summaries and tables from a completed run directory
// without re-simulating.
//
// The package is inside the walltime determinism contract
// (internal/lint): nothing here may read the wall clock — campaigns
// are named by their run id and every artifact byte is a function of
// spec + code.
package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"

	"specsimp/internal/experiments"
	"specsimp/internal/runner"
	"specsimp/internal/sim"
)

// AxisValues is an axis override value list. In the JSON spec values
// may be written as strings or as bare numbers (and a single scalar
// stands for a one-element list); they normalize to strings here and
// are validated against the axis's declared kind by
// experiments.Normalize.
type AxisValues []string

// UnmarshalJSON accepts ["a", 2, 0.4], "a", or 2.
func (a *AxisValues) UnmarshalJSON(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	var raw any
	if err := dec.Decode(&raw); err != nil {
		return err
	}
	vals, err := axisValueList(raw)
	if err != nil {
		return err
	}
	*a = vals
	return nil
}

func axisValueList(raw any) ([]string, error) {
	if list, ok := raw.([]any); ok {
		out := make([]string, 0, len(list))
		for _, e := range list {
			s, err := axisScalar(e)
			if err != nil {
				return nil, err
			}
			out = append(out, s)
		}
		return out, nil
	}
	s, err := axisScalar(raw)
	if err != nil {
		return nil, err
	}
	return []string{s}, nil
}

func axisScalar(raw any) (string, error) {
	switch v := raw.(type) {
	case string:
		return v, nil
	case json.Number:
		return v.String(), nil
	case []any:
		return "", fmt.Errorf("axis values must not nest lists")
	default:
		return "", fmt.Errorf("axis value %v must be a string or number", raw)
	}
}

// ExperimentSpec selects one registered experiment and its overrides.
type ExperimentSpec struct {
	// Name is a registered experiment name (experiments.Names).
	Name string `json:"name"`
	// Axes overrides declared axis values ({"workloads": ["oltp"],
	// "bw": [0.1, 0.4]}); omitted axes keep their registry defaults.
	Axes map[string]AxisValues `json:"axes,omitempty"`
	// Repeats and Cycles override the campaign-level settings for this
	// experiment only (0 = inherit).
	Repeats int    `json:"repeats,omitempty"`
	Cycles  uint64 `json:"cycles,omitempty"`
}

// Spec is a declarative campaign: global parameters plus the ordered
// experiment list. Zero-valued fields inherit the standard (or, with
// Quick, the bench-sized) parameter set.
type Spec struct {
	// RunID names the run directory (sweep-runs/run-<id>) and keys
	// resume; the -run-id flag overrides it. A campaign must have a
	// run id from one of the two — wall-clock-named campaigns would
	// be neither resumable nor byte-reproducible.
	RunID string `json:"run_id,omitempty"`
	// Quick selects the bench-sized base parameters.
	Quick bool `json:"quick,omitempty"`
	// Repeats is the perturbed-run count per design point.
	Repeats int `json:"repeats,omitempty"`
	// Cycles, CyclesPerSecond, CheckpointInterval override the base
	// parameter set (see experiments.Params).
	Cycles             uint64  `json:"cycles,omitempty"`
	CyclesPerSecond    float64 `json:"cycles_per_second,omitempty"`
	CheckpointInterval uint64  `json:"checkpoint_interval,omitempty"`
	// Parallel is the across-run worker bound (0 = GOMAXPROCS).
	Parallel int `json:"parallel,omitempty"`
	// Shards is the intra-run tiling request, "N" or "RxC".
	Shards string `json:"shards,omitempty"`

	Experiments []ExperimentSpec `json:"experiments"`
}

// ParseSpec decodes and validates a campaign spec. Unknown fields are
// errors — a typoed key must not silently become a default.
func ParseSpec(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("campaign spec: %v", err)
	}
	return s, nil
}

// LoadSpec reads and parses a campaign spec file.
func LoadSpec(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("campaign spec: %v", err)
	}
	s, err := ParseSpec(data)
	if err != nil {
		return Spec{}, fmt.Errorf("%s: %v", path, err)
	}
	return s, nil
}

// Canonical returns the spec's canonical JSON encoding — the bytes
// written to the run directory's campaign.json and compared on resume,
// so formatting differences in the source file never read as spec
// drift.
func (s Spec) Canonical() []byte {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		// Spec is plain data; marshaling it cannot fail.
		panic("campaign: marshal spec: " + err.Error())
	}
	return append(data, '\n')
}

// ParseShards parses the -shards request's two forms: "N" requests N
// tiles auto-factored per design point, "RxC" pins the tile grid to
// R rows by C columns. Shared (via sweepcli) by cmd/sweep and
// cmd/specsim.
func ParseShards(s string) (shards, rows, cols int, err error) {
	if r, c, ok := strings.Cut(strings.ToLower(s), "x"); ok {
		rows, rerr := strconv.Atoi(r)
		cols, cerr := strconv.Atoi(c)
		if rerr != nil || cerr != nil || rows < 1 || cols < 1 {
			return 0, 0, 0, fmt.Errorf("-shards %q: a tile-grid shape is RxC with positive rows and columns, e.g. 4x2", s)
		}
		return rows * cols, rows, cols, nil
	}
	n, nerr := strconv.Atoi(s)
	if nerr != nil || n < 1 {
		return 0, 0, 0, fmt.Errorf("-shards %q: want a tile count >= 1 or a tile-grid shape RxC (1 means serial)", s)
	}
	return n, 0, 0, nil
}

// PlanExperiment is one experiment of a validated plan: the registered
// driver, its normalized parameters, and its full design-point grid.
type PlanExperiment struct {
	Exp    experiments.Experiment
	Params experiments.Params
	Points []runner.Point
}

// Plan is a validated campaign: the spec it came from (canonicalized)
// plus every experiment resolved against the registry.
type Plan struct {
	Spec        Spec
	RunID       string
	Parallel    int
	Experiments []PlanExperiment
}

// Points returns the total design-point count across the plan.
func (p Plan) Points() int {
	n := 0
	for _, pe := range p.Experiments {
		n += len(pe.Points)
	}
	return n
}

// BuildPlan validates a spec against the experiment registry and
// materializes every grid. All failures are descriptive errors — an
// unknown experiment, a duplicate experiment (its artifacts would
// share one CSV), a malformed axis value, a shard shape that can never
// tile a machine — never panics.
func BuildPlan(spec Spec) (Plan, error) {
	if len(spec.Experiments) == 0 {
		return Plan{}, fmt.Errorf("campaign spec lists no experiments (registered: %s)",
			strings.Join(experiments.Names(), ", "))
	}
	if spec.RunID == "" {
		return Plan{}, fmt.Errorf("campaign needs a run id (spec run_id or -run-id): resume and byte-reproducibility key on it")
	}
	if spec.Repeats < 0 {
		return Plan{}, fmt.Errorf("campaign spec: repeats must be >= 1 (got %d)", spec.Repeats)
	}
	base := experiments.Standard()
	if spec.Quick {
		base = experiments.Quick()
	}
	if spec.Repeats > 0 {
		base.Runs = spec.Repeats
	}
	if spec.Cycles > 0 {
		base.Cycles = sim.Time(spec.Cycles)
	}
	if spec.CyclesPerSecond > 0 {
		base.CyclesPerSecond = spec.CyclesPerSecond
	}
	if spec.CheckpointInterval > 0 {
		base.CheckpointInterval = sim.Time(spec.CheckpointInterval)
	}
	if spec.Shards != "" {
		n, rows, cols, err := ParseShards(spec.Shards)
		if err != nil {
			return Plan{}, fmt.Errorf("campaign spec: %v", err)
		}
		if rows > 0 && (32%rows != 0 || 32%cols != 0) {
			// Every machine in the registry is a 4/8/16/32-wide torus, so
			// a pinned dimension that does not divide 32 can never tile
			// any design point — reject it instead of silently degrading
			// every point to auto-factoring.
			return Plan{}, fmt.Errorf("campaign spec: shards %s does not divide any machine torus (dimensions are 4, 8, 16, or 32)", spec.Shards)
		}
		base.Shards, base.ShardRows, base.ShardCols = n, rows, cols
	}

	plan := Plan{Spec: spec, RunID: spec.RunID, Parallel: spec.Parallel}
	seen := map[string]bool{}
	for _, es := range spec.Experiments {
		if es.Name == "" {
			return Plan{}, fmt.Errorf("campaign spec: experiment entry without a name")
		}
		e, ok := experiments.ByName(es.Name)
		if !ok {
			return Plan{}, fmt.Errorf("campaign spec: unknown experiment %q (registered: %s)",
				es.Name, strings.Join(experiments.Names(), ", "))
		}
		if seen[es.Name] {
			return Plan{}, fmt.Errorf("campaign spec: experiment %q listed twice — each experiment owns one CSV artifact per run directory", es.Name)
		}
		seen[es.Name] = true
		if es.Repeats < 0 {
			return Plan{}, fmt.Errorf("campaign spec: experiment %q: repeats must be >= 1", es.Name)
		}
		p := base
		if es.Repeats > 0 {
			p.Runs = es.Repeats
		}
		if es.Cycles > 0 {
			p.Cycles = sim.Time(es.Cycles)
		}
		if len(es.Axes) > 0 {
			ax := make(map[string][]string, len(es.Axes))
			for k, v := range es.Axes {
				ax[k] = v
			}
			p.Axes = ax
		}
		np, err := experiments.Normalize(e, p)
		if err != nil {
			return Plan{}, fmt.Errorf("campaign spec: %v", err)
		}
		plan.Experiments = append(plan.Experiments, PlanExperiment{Exp: e, Params: np, Points: e.Grid(np)})
	}
	return plan, nil
}
