package campaign

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"specsimp/internal/experiments"
	"specsimp/internal/runner"
)

// Options tunes one Execute invocation.
type Options struct {
	// Root is the run-directory root (default "sweep-runs"); the
	// campaign lands in Root/run-<run-id>.
	Root string
	// AbortAfter > 0 interrupts the campaign after that many freshly
	// executed points — the simulated-kill hook for resume tests and
	// the CI campaign-smoke job. The interrupted invocation writes no
	// manifest and no artifacts for the incomplete experiment; its
	// ledger keeps the completed points.
	AbortAfter int
	// OnResult, when non-nil, observes each completed experiment (for
	// table printing); it runs after the experiment's artifacts are
	// written.
	OnResult func(pe PlanExperiment, result any)
}

// Report summarizes one Execute invocation.
type Report struct {
	Dir         string
	Experiments []string
	// Executed counts freshly simulated points; Reused counts points
	// skipped via the resume ledger.
	Executed int
	Reused   int
	// Interrupted is set when the abort hook fired before the plan
	// completed; re-running the same spec + run id resumes.
	Interrupted bool
}

// specFile is the canonical spec echo inside the run directory — the
// resume contract's witness. Re-invoking with a different spec under
// the same run id is refused (the ledger's digests would silently
// mismatch and re-simulate, or worse, half-match).
const specFile = "campaign.json"

// Execute runs a validated plan to completion (or to the abort hook),
// with per-point resume against the run directory's ledger. The final
// artifact tree of a resumed campaign is byte-identical to an
// uninterrupted one: every invocation rewrites the CSVs and summaries
// from the full grid (cache hits included), the manifest and the
// canonical ledger are only written at completion, and nothing in the
// tree depends on the wall clock — the run id names the run.
func Execute(plan Plan, opts Options) (Report, error) {
	root := opts.Root
	if root == "" {
		root = "sweep-runs"
	}
	dir := runner.RunDir(root, plan.RunID)
	rep := Report{Dir: dir}

	sink, err := runner.NewSink(dir)
	if err != nil {
		return rep, err
	}
	canon := plan.Spec.Canonical()
	specPath := filepath.Join(dir, specFile)
	if prev, err := os.ReadFile(specPath); err == nil {
		if string(prev) != string(canon) {
			return rep, fmt.Errorf("campaign: run directory %s was produced by a different spec; pick a new run id or restore the original spec (diff %s)", dir, specPath)
		}
	} else if !os.IsNotExist(err) {
		return rep, fmt.Errorf("campaign: read %s: %v", specPath, err)
	} else if err := os.WriteFile(specPath, canon, 0o644); err != nil {
		return rep, fmt.Errorf("campaign: write %s: %v", specPath, err)
	}

	led, err := OpenLedger(dir)
	if err != nil {
		return rep, err
	}
	defer led.Close()
	led.abortAfter = opts.AbortAfter

	workers := 0
	for _, pe := range plan.Experiments {
		ex := &runner.Runner{
			Workers:   plan.Parallel,
			Sink:      sink,
			Cache:     led,
			Interrupt: led.Interrupted,
		}
		workers = ex.WorkerBound()
		p := pe.Params
		p.Exec = ex
		out, err := experiments.RunExperiment(pe.Exp, p)
		if errors.Is(err, experiments.ErrInterrupted) {
			break
		}
		if err != nil {
			return rep, err
		}
		rep.Experiments = append(rep.Experiments, pe.Exp.Name())
		if opts.OnResult != nil {
			opts.OnResult(pe, out)
		}
	}
	rep.Executed, rep.Reused = led.Fresh(), led.Reused()
	if led.Interrupted() {
		rep.Interrupted = true
		// No manifest, no canonical ledger: the tree is visibly
		// incomplete until a resume finishes the plan.
		return rep, sink.Err()
	}

	if err := led.Canonicalize(plan); err != nil {
		return rep, err
	}
	sink.WriteJSON("manifest", runner.Manifest{
		// The canonical command names the campaign by run id, never by
		// the spec file's path or the interrupting flags — resumed and
		// clean invocations must write identical manifests.
		Command:     "sweep -campaign " + plan.RunID,
		RunID:       plan.RunID,
		Experiments: rep.Experiments,
		Workers:     workers,
		Quick:       plan.Spec.Quick,
	})
	if err := sink.Err(); err != nil {
		return rep, fmt.Errorf("campaign: artifact write failed: %v", err)
	}
	return rep, nil
}
