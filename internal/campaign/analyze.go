package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"specsimp/internal/experiments"
	"specsimp/internal/runner"
	"specsimp/internal/workload"
)

// AnalyzeReport summarizes one Analyze invocation.
type AnalyzeReport struct {
	Dir         string
	Experiments []string
	// Rows counts the CSV rows (per-run results) the analysis consumed.
	Rows int
}

// Analyze regenerates the analysis artifacts of a completed run
// directory without re-simulating anything: for each experiment it
// reloads the per-run CSV rows, verifies them against the plan's grid
// row for row, re-runs the aggregation, and writes under
// <dir>/analysis/
//
//	<exp>.json          the JSON summary, byte-identical to <dir>/<exp>.json
//	<exp>-summary.csv   per-design-point means over repeats, all metrics
//	<exp>-table.txt     the paper table as the CLI prints it
//	<exp>-table.tex     a LaTeX tabular of the grouped summary
//
// Campaign directories carry their spec (campaign.json), which rebuilds
// the exact plan; plain sweep directories are reconstructed from the
// manifest's recorded command. Either way every byte written is a pure
// function of the directory's contents plus code — Analyze never reads
// the wall clock.
func Analyze(dir string) (AnalyzeReport, error) {
	rep := AnalyzeReport{Dir: dir}
	plan, err := planOf(dir)
	if err != nil {
		return rep, err
	}
	adir := filepath.Join(dir, "analysis")
	if err := os.MkdirAll(adir, 0o755); err != nil {
		return rep, fmt.Errorf("analyze: create %s: %v", adir, err)
	}
	for _, pe := range plan.Experiments {
		res, paramCols, err := loadResults(dir, pe)
		if err != nil {
			return rep, err
		}
		out := pe.Exp.Aggregate(pe.Params, res)
		if err := writeAnalysis(adir, pe, paramCols, res, out); err != nil {
			return rep, err
		}
		rep.Experiments = append(rep.Experiments, pe.Exp.Name())
		rep.Rows += len(res)
	}
	return rep, nil
}

// planOf rebuilds the run directory's plan: from its campaign spec if
// it is a campaign directory, else from the manifest's recorded
// command line.
func planOf(dir string) (Plan, error) {
	specPath := filepath.Join(dir, specFile)
	if data, err := os.ReadFile(specPath); err == nil {
		spec, err := ParseSpec(data)
		if err != nil {
			return Plan{}, fmt.Errorf("%s: %v", specPath, err)
		}
		return BuildPlan(spec)
	} else if !os.IsNotExist(err) {
		return Plan{}, fmt.Errorf("analyze: read %s: %v", specPath, err)
	}
	return planFromManifest(dir)
}

// planFromManifest reconstructs a plain sweep run's plan from
// manifest.json: the experiment list is recorded outright, and the
// sweep flags that shape grids (-quick via the Quick field, -workload
// from the command tokens) are re-applied. Flags that do not change
// rows (-parallel, -shards, -out, -json) are ignored.
func planFromManifest(dir string) (Plan, error) {
	path := filepath.Join(dir, "manifest.json")
	data, err := os.ReadFile(path)
	if err != nil {
		return Plan{}, fmt.Errorf("analyze: %s has neither %s nor manifest.json — not a sweep run directory (%v)", dir, specFile, err)
	}
	var m runner.Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Plan{}, fmt.Errorf("analyze: %s: %v", path, err)
	}
	base := experiments.Standard()
	if m.Quick {
		base = experiments.Quick()
	}
	if wlName := flagValue(m.Command, "workload"); wlName != "" {
		wl, err := workload.Resolve(wlName)
		if err != nil {
			return Plan{}, fmt.Errorf("analyze: %s: recorded command: %v", path, err)
		}
		base.Workload = wl
	}
	plan := Plan{RunID: m.RunID, Parallel: m.Workers}
	for _, name := range m.Experiments {
		e, ok := experiments.ByName(name)
		if !ok {
			return Plan{}, fmt.Errorf("analyze: %s lists unknown experiment %q (registered: %s)",
				path, name, strings.Join(experiments.Names(), ", "))
		}
		np, err := experiments.Normalize(e, base)
		if err != nil {
			return Plan{}, fmt.Errorf("analyze: %s: %v", path, err)
		}
		plan.Experiments = append(plan.Experiments, PlanExperiment{Exp: e, Params: np, Points: e.Grid(np)})
	}
	if len(plan.Experiments) == 0 {
		return Plan{}, fmt.Errorf("analyze: %s lists no experiments", path)
	}
	return plan, nil
}

// flagValue extracts one flag's value from a recorded command line,
// accepting the -name value, --name value, and -name=value spellings.
func flagValue(command, name string) string {
	toks := strings.Fields(command)
	for i, t := range toks {
		t = strings.TrimPrefix(t, "-")
		t = strings.TrimPrefix(t, "-")
		if t == name && i+1 < len(toks) {
			return toks[i+1]
		}
		if v, ok := strings.CutPrefix(t, name+"="); ok {
			return v
		}
	}
	return ""
}

// loadResults reads <exp>.csv back into the per-run results the
// aggregation consumes, verifying each row against the plan's grid —
// same point, same order. A mismatch means the artifacts were produced
// by different code or flags than the plan reconstructs, and aggregated
// numbers would silently lie; it is an error, never a best effort.
func loadResults(dir string, pe PlanExperiment) ([]runner.Result, []string, error) {
	name := pe.Exp.Name()
	path := filepath.Join(dir, name+".csv")
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("analyze: experiment %s: %v (did the campaign complete?)", name, err)
	}
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	if len(lines) == 0 || lines[0] == "" {
		return nil, nil, fmt.Errorf("analyze: %s is empty", path)
	}
	header := strings.Split(lines[0], ",")
	metricSet := map[string]bool{}
	for _, k := range runner.MetricKeys() {
		metricSet[k] = true
	}
	var paramCols []string
	for _, c := range header {
		switch c {
		case "experiment", "workload", "repeat", "seed", "error":
		default:
			if !metricSet[c] {
				paramCols = append(paramCols, c)
			}
		}
	}
	rows := lines[1:]
	if len(rows) != len(pe.Points) {
		return nil, nil, fmt.Errorf("analyze: %s has %d result rows but the plan's grid has %d points — the artifacts were produced by a different spec or code revision", path, len(rows), len(pe.Points))
	}
	res := make([]runner.Result, len(rows))
	for i, line := range rows {
		fields := strings.Split(line, ",")
		if len(fields) != len(header) {
			return nil, nil, fmt.Errorf("analyze: %s row %d has %d fields, want %d", path, i+1, len(fields), len(header))
		}
		pt := runner.Point{Params: map[string]string{}}
		var m runner.Metrics
		var errText string
		for j, col := range header {
			v := fields[j]
			switch {
			case col == "experiment":
				pt.Experiment = v
			case col == "workload":
				pt.Workload = v
			case col == "repeat":
				pt.Repeat, err = strconv.Atoi(v)
			case col == "seed":
				pt.Seed, err = strconv.ParseUint(v, 10, 64)
			case col == "error":
				errText = v
			case metricSet[col]:
				var f float64
				f, err = strconv.ParseFloat(v, 64)
				m.Set(col, f)
			default:
				pt.Params[col] = v
			}
			if err != nil {
				return nil, nil, fmt.Errorf("analyze: %s row %d, column %s: %v", path, i+1, col, err)
			}
		}
		if diff := pointMismatch(pt, pe.Points[i]); diff != "" {
			return nil, nil, fmt.Errorf("analyze: %s row %d does not match the plan's grid: %s — the artifacts were produced by a different spec or code revision", path, i+1, diff)
		}
		res[i] = runner.Result{Point: pe.Points[i], Metrics: m}
		if errText != "" {
			res[i].Err = errors.New(errText)
		}
	}
	return res, paramCols, nil
}

// pointMismatch describes the first difference between a CSV row's
// identity and the grid point it should be, or "" if they agree.
func pointMismatch(got, want runner.Point) string {
	switch {
	case got.Experiment != want.Experiment:
		return fmt.Sprintf("experiment %q vs %q", got.Experiment, want.Experiment)
	case got.Workload != want.Workload:
		return fmt.Sprintf("workload %q vs %q", got.Workload, want.Workload)
	case got.Repeat != want.Repeat:
		return fmt.Sprintf("repeat %d vs %d", got.Repeat, want.Repeat)
	case got.Seed != want.Seed:
		return fmt.Sprintf("seed %d vs %d", got.Seed, want.Seed)
	case len(got.Params) != len(want.Params):
		return fmt.Sprintf("%d params vs %d", len(got.Params), len(want.Params))
	}
	keys := make([]string, 0, len(want.Params))
	for k := range want.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if got.Params[k] != want.Params[k] {
			return fmt.Sprintf("param %s=%q vs %q", k, got.Params[k], want.Params[k])
		}
	}
	return ""
}

// summaryGroup is one design point of the grouped summary: all repeats
// of one workload × params cell.
type summaryGroup struct {
	workload string
	params   map[string]string
	n        int
	errs     int
	sums     map[string]float64
}

// groupRows folds consecutive per-run rows into design-point groups —
// grids emit repeats consecutively, so consecutive identity-equality is
// exactly the design-point boundary.
func groupRows(res []runner.Result, paramCols []string) []summaryGroup {
	var groups []summaryGroup
	keys := runner.MetricKeys()
	for _, r := range res {
		last := len(groups) - 1
		if last < 0 || !sameCell(groups[last], r, paramCols) {
			groups = append(groups, summaryGroup{
				workload: r.Workload,
				params:   r.Params,
				sums:     map[string]float64{},
			})
			last++
		}
		g := &groups[last]
		g.n++
		if r.Err != nil {
			g.errs++
			continue
		}
		for _, k := range keys {
			g.sums[k] += r.Metrics.Get(k)
		}
	}
	return groups
}

func sameCell(g summaryGroup, r runner.Result, paramCols []string) bool {
	if g.workload != r.Workload {
		return false
	}
	for _, c := range paramCols {
		if g.params[c] != r.Params[c] {
			return false
		}
	}
	return true
}

// mean returns the group's per-valid-run mean of one metric (0 when
// every run errored).
func (g summaryGroup) mean(key string) float64 {
	valid := g.n - g.errs
	if valid == 0 {
		return 0
	}
	return g.sums[key] / float64(valid)
}

// writeAnalysis emits one experiment's four analysis artifacts.
func writeAnalysis(adir string, pe PlanExperiment, paramCols []string, res []runner.Result, out any) error {
	name := pe.Exp.Name()
	emit := func(file, content string) error {
		if err := os.WriteFile(filepath.Join(adir, file), []byte(content), 0o644); err != nil {
			return fmt.Errorf("analyze: write %s: %v", file, err)
		}
		return nil
	}

	// The regenerated JSON summary: the same encoding the sink used, so
	// it byte-matches the run directory's own <exp>.json.
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return fmt.Errorf("analyze: encode %s summary: %v", name, err)
	}
	if err := emit(name+".json", string(data)+"\n"); err != nil {
		return err
	}

	groups := groupRows(res, paramCols)
	keys := runner.MetricKeys()

	var csv strings.Builder
	cols := append([]string{"experiment", "workload"}, paramCols...)
	cols = append(cols, "n", "errors")
	cols = append(cols, keys...)
	csv.WriteString(strings.Join(cols, ",") + "\n")
	for _, g := range groups {
		row := append([]string{name, g.workload}, make([]string, 0, len(cols))...)
		for _, c := range paramCols {
			row = append(row, g.params[c])
		}
		row = append(row, strconv.Itoa(g.n), strconv.Itoa(g.errs))
		for _, k := range keys {
			row = append(row, strconv.FormatFloat(g.mean(k), 'g', -1, 64))
		}
		csv.WriteString(strings.Join(row, ",") + "\n")
	}
	if err := emit(name+"-summary.csv", csv.String()); err != nil {
		return err
	}

	var txt strings.Builder
	fmt.Fprintf(&txt, "==== %s ====\n", pe.Exp.Title(pe.Params))
	if pre, ok := pe.Exp.(experiments.Preambler); ok {
		txt.WriteString(pre.Preamble(pe.Params) + "\n")
	}
	txt.WriteString(pe.Exp.Table(out) + "\n")
	if err := emit(name+"-table.txt", txt.String()); err != nil {
		return err
	}

	return emit(name+"-table.tex", latexTable(name, paramCols, groups))
}

// latexTable renders the grouped summary as a paper-ready tabular:
// workload and axis params identify the row, headline metrics follow.
func latexTable(name string, paramCols []string, groups []summaryGroup) string {
	metrics := []string{"perf", "recoveries"}
	var b strings.Builder
	fmt.Fprintf(&b, "%% %s: generated by sweep -analyze; means over repeats\n", latexEscape(name))
	b.WriteString(`\begin{tabular}{l` + strings.Repeat("l", len(paramCols)) + strings.Repeat("r", len(metrics)) + "}\n")
	head := append([]string{"workload"}, paramCols...)
	head = append(head, metrics...)
	for i, h := range head {
		head[i] = latexEscape(h)
	}
	b.WriteString(strings.Join(head, " & ") + ` \\` + "\n" + `\hline` + "\n")
	for _, g := range groups {
		row := []string{latexEscape(g.workload)}
		for _, c := range paramCols {
			row = append(row, latexEscape(g.params[c]))
		}
		for _, m := range metrics {
			row = append(row, strconv.FormatFloat(g.mean(m), 'g', 4, 64))
		}
		b.WriteString(strings.Join(row, " & ") + ` \\` + "\n")
	}
	b.WriteString(`\end{tabular}` + "\n")
	return b.String()
}

var latexEscaper = strings.NewReplacer(
	"\\", `\textbackslash{}`,
	"_", `\_`, "%", `\%`, "&", `\&`, "#", `\#`, "$", `\$`,
	"{", `\{`, "}", `\}`, "~", `\textasciitilde{}`, "^", `\textasciicircum{}`,
)

func latexEscape(s string) string { return latexEscaper.Replace(s) }
