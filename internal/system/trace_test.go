package system

import (
	"path/filepath"
	"reflect"
	"testing"

	"specsimp/internal/sim"
	"specsimp/internal/workload"
)

// recordTrace runs one system with a recorder attached and writes the
// trace, returning the recording run's Results and the trace path.
func recordTrace(t *testing.T, cfg Config, cycles sim.Time) (Results, string) {
	t.Helper()
	cfg.Recorder = workload.NewTraceRecorder(cfg.Workload.Name, cfg.Nodes)
	res := RunOne(cfg, cycles)
	path := filepath.Join(t.TempDir(), "run.trace")
	if err := cfg.Recorder.Trace().WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return res, path
}

// TestTraceRoundTripResults records a run, replays the trace, and
// demands the replay's Results equal the recording's — the whole
// struct, recoveries and distributions included — modulo the workload
// name. Both protocols, with recovery injection so the recorder's
// rollback rewind is exercised end to end.
func TestTraceRoundTripResults(t *testing.T) {
	for _, kind := range []Kind{DirectorySpec, SnoopSpec} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			t.Parallel()
			cfg := DefaultConfig(kind, workload.OLTP)
			cfg.CheckpointInterval = 2_000
			cfg.SnoopCheckpointRequests = 200
			cfg.TimeoutCycles = 0
			cfg.InjectRecoveryEvery = 9_000
			rec, path := recordTrace(t, cfg, 120_000)
			if rec.Recoveries == 0 {
				t.Fatal("recording run had no recoveries — rollback rewind untested")
			}

			wl, err := workload.FromTrace(path)
			if err != nil {
				t.Fatal(err)
			}
			replayCfg := cfg
			replayCfg.Recorder = nil
			replayCfg.Workload = wl
			rep := RunOne(replayCfg, 120_000)

			rec.Workload, rep.Workload = "", ""
			if !reflect.DeepEqual(rec, rep) {
				t.Fatalf("replay Results diverged from recording:\nrec: %+v\nrep: %+v", rec, rep)
			}
		})
	}
}

// TestTraceReplayShardInvariant replays one recorded trace through the
// windowed tile engine at 1, 2, and 4 shards — all three Results must
// be identical (the CI artifact byte-diff in test form; shards=1 is the
// serial execution of the same windowed schedule).
func TestTraceReplayShardInvariant(t *testing.T) {
	cfg := DefaultConfig(DirectorySpec, workload.Hotspot)
	cfg.CheckpointInterval = 2_000
	cfg.TimeoutCycles = 0
	_, path := recordTrace(t, cfg, 100_000)

	wl, err := workload.FromTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Recorder = nil
	cfg.Workload = wl
	var ref Results
	for i, shards := range []int{1, 2, 4} {
		c := cfg
		c.Shards = shards
		res := RunOne(c, 100_000)
		if i == 0 {
			ref = res
			continue
		}
		if !reflect.DeepEqual(ref, res) {
			t.Fatalf("trace replay at %d shards diverged from 1 shard:\nserial:  %+v\nsharded: %+v", shards, ref, res)
		}
	}
}
