package system

import (
	"strings"
	"testing"

	"specsimp/internal/directory"
	"specsimp/internal/snoop"
	"specsimp/internal/workload"
)

// TestValidateOversizeMachines pins the bugfix: an oversize machine is
// a config error reported before any kernel, network or protocol is
// built — not a panic from deep inside directory.New.
func TestValidateOversizeMachines(t *testing.T) {
	// A 16×16 directory machine on the default (auto-picked) format is
	// legal and builds.
	cfg := DefaultConfigSized(DirectorySpec, workload.Uniform, 16, 16)
	if err := ValidateConfig(cfg); err != nil {
		t.Fatalf("default 16x16 directory config rejected: %v", err)
	}
	if _, err := BuildChecked(cfg); err != nil {
		t.Fatalf("default 16x16 directory build failed: %v", err)
	}

	// Forcing the exact bitmap past its 64-node ceiling is the
	// historical panic; it must now surface as a descriptive error.
	bad := cfg
	bad.Sharers = directory.FullBitmap
	err := ValidateConfig(bad)
	if err == nil || !strings.Contains(err.Error(), "64 nodes") {
		t.Fatalf("bitmap at 256 nodes: got %v, want 64-node-cap error", err)
	}
	if _, berr := BuildChecked(bad); berr == nil {
		t.Fatal("BuildChecked accepted a 256-node bitmap machine")
	}

	// Snooping at 256 nodes rides the segmented address network
	// (ScaledBusConfig) and validates; on a flat bus it still caps at
	// 64 nodes, and past 256 nodes no bus model helps.
	segSnoop := DefaultConfigSized(SnoopSpec, workload.Uniform, 16, 16)
	if err := ValidateConfig(segSnoop); err != nil {
		t.Fatalf("snooping at 256 nodes on the segmented bus rejected: %v", err)
	}
	flat := segSnoop
	flat.Bus = snoop.DefaultBusConfig(256)
	err = ValidateConfig(flat)
	if err == nil || !strings.Contains(err.Error(), "flat snooping bus") {
		t.Fatalf("256-node snooping on a flat bus: got %v, want flat-bus-cap error", err)
	}
	huge := DefaultConfigSized(SnoopSpec, workload.Uniform, 32, 32)
	err = ValidateConfig(huge)
	if err == nil || !strings.Contains(err.Error(), "directory kind") {
		t.Fatalf("snooping at 1024 nodes: got %v, want snoop-cap error", err)
	}

	// Network geometry problems propagate as errors too (historically a
	// panic mid-setup in network.New).
	short := cfg
	short.Net.Width, short.Net.Height = 1, 1
	short.Nodes = 1
	if err := ValidateConfig(short); err == nil {
		t.Fatal("1x1 torus accepted")
	}
	if _, err := BuildChecked(short); err == nil {
		t.Fatal("BuildChecked accepted a 1x1 torus")
	}
}

// TestRunOneCheckedRejectsOversizeSnoop pins the end-to-end error
// path: running a 1024-node snooping machine (past even the segmented
// address network's ceiling) returns the descriptive snoop-cap error —
// no panic, no partial construction — which is what the sweep engine's
// per-design-point error column relies on.
func TestRunOneCheckedRejectsOversizeSnoop(t *testing.T) {
	cfg := DefaultConfigSized(SnoopSpec, workload.Uniform, 32, 32)
	_, err := RunOneChecked(cfg, 10_000)
	if err == nil {
		t.Fatal("RunOneChecked accepted a 1024-node snooping machine")
	}
	for _, want := range []string{"256 nodes", "directory kind"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q not descriptive: missing %q", err, want)
		}
	}
}

// TestTimeoutFollowsCheckpointInterval pins the derived-timeout fix:
// DefaultConfig couples TimeoutCycles to 3× the checkpoint interval, so
// a caller that overrides CheckpointInterval afterwards must get the
// timeout re-derived — not silently keep 3× the *old* interval — while
// an explicitly overridden timeout is respected, and a timeout shorter
// than the interval is rejected outright.
func TestTimeoutFollowsCheckpointInterval(t *testing.T) {
	cfg := DefaultConfig(DirectorySpec, workload.Uniform)
	if cfg.TimeoutCycles != 3*cfg.CheckpointInterval {
		t.Fatalf("DefaultConfig: TimeoutCycles=%d, want 3x interval %d", cfg.TimeoutCycles, cfg.CheckpointInterval)
	}

	// Interval override after DefaultConfig: the derived timeout follows.
	cfg.CheckpointInterval /= 2
	s, err := BuildChecked(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cfg.TimeoutCycles != 3*cfg.CheckpointInterval {
		t.Fatalf("timeout not re-derived: got %d, want %d (3x the overridden interval)",
			s.Cfg.TimeoutCycles, 3*cfg.CheckpointInterval)
	}

	// An explicit timeout override survives a later interval change.
	exp := DefaultConfig(DirectorySpec, workload.Uniform)
	exp.CheckpointInterval = 2_000
	exp.TimeoutCycles = 9_000
	s, err = BuildChecked(exp)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cfg.TimeoutCycles != 9_000 {
		t.Fatalf("explicit timeout overridden: got %d, want 9000", s.Cfg.TimeoutCycles)
	}

	// A timeout inside one checkpoint epoch is a config error for
	// directory kinds, not a latent false-deadlock generator.
	bad := DefaultConfig(DirectorySpec, workload.Uniform)
	bad.TimeoutCycles = bad.CheckpointInterval / 2
	err = ValidateConfig(bad)
	if err == nil || !strings.Contains(err.Error(), "TimeoutCycles") {
		t.Fatalf("sub-interval timeout: got %v, want TimeoutCycles error", err)
	}
	// TimeoutCycles == 0 stays the documented disarm.
	off := DefaultConfig(DirectorySpec, workload.Uniform)
	off.TimeoutCycles = 0
	if err := ValidateConfig(off); err != nil {
		t.Fatalf("disarmed watchdog rejected: %v", err)
	}
}

// TestValidateFaultAndCadenceConfig pins the sustained-fault and
// adaptive-cadence validation: regimes need a positive rate and clock,
// unknown regimes are rejected, and the cadence controller is
// directory-only (snooping checkpoints on a request-count cadence the
// controller cannot steer).
func TestValidateFaultAndCadenceConfig(t *testing.T) {
	cfg := DefaultConfig(DirectorySpec, workload.Uniform)
	cfg.FaultRegime = FaultStorm
	if err := ValidateConfig(cfg); err == nil {
		t.Fatal("storm regime with zero FaultRate validated")
	}
	cfg.FaultRate = 10
	if err := ValidateConfig(cfg); err != nil {
		t.Fatalf("storm regime with a rate rejected: %v", err)
	}
	cfg.CyclesPerSecond = 0
	if err := ValidateConfig(cfg); err == nil {
		t.Fatal("fault regime without CyclesPerSecond validated (the rate is per second)")
	}

	bad := DefaultConfig(DirectorySpec, workload.Uniform)
	bad.FaultRegime = FaultRegime(17)
	if err := ValidateConfig(bad); err == nil {
		t.Fatal("unknown FaultRegime validated")
	}

	snoop := DefaultConfig(SnoopSpec, workload.Uniform)
	snoop.AdaptiveCheckpoint = true
	if err := ValidateConfig(snoop); err == nil {
		t.Fatal("AdaptiveCheckpoint on a snooping kind validated")
	}
	dir := DefaultConfig(DirectorySpec, workload.Uniform)
	dir.AdaptiveCheckpoint = true
	if err := ValidateConfig(dir); err != nil {
		t.Fatalf("AdaptiveCheckpoint on a directory kind rejected: %v", err)
	}
}

// TestBuildPanicsStayForLegacyCallers keeps the documented contract of
// the unchecked constructors: Build panics (with the same descriptive
// error) for callers that treat configuration as a programming error.
func TestBuildPanicsStayForLegacyCallers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Build did not panic on an invalid config")
		}
	}()
	cfg := DefaultConfigSized(DirectorySpec, workload.Uniform, 16, 16)
	cfg.Sharers = directory.FullBitmap
	Build(cfg)
}
