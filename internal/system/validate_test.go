package system

import (
	"strings"
	"testing"

	"specsimp/internal/directory"
	"specsimp/internal/workload"
)

// TestValidateOversizeMachines pins the bugfix: an oversize machine is
// a config error reported before any kernel, network or protocol is
// built — not a panic from deep inside directory.New.
func TestValidateOversizeMachines(t *testing.T) {
	// A 16×16 directory machine on the default (auto-picked) format is
	// legal and builds.
	cfg := DefaultConfigSized(DirectorySpec, workload.Uniform, 16, 16)
	if err := ValidateConfig(cfg); err != nil {
		t.Fatalf("default 16x16 directory config rejected: %v", err)
	}
	if _, err := BuildChecked(cfg); err != nil {
		t.Fatalf("default 16x16 directory build failed: %v", err)
	}

	// Forcing the exact bitmap past its 64-node ceiling is the
	// historical panic; it must now surface as a descriptive error.
	bad := cfg
	bad.Sharers = directory.FullBitmap
	err := ValidateConfig(bad)
	if err == nil || !strings.Contains(err.Error(), "64 nodes") {
		t.Fatalf("bitmap at 256 nodes: got %v, want 64-node-cap error", err)
	}
	if _, berr := BuildChecked(bad); berr == nil {
		t.Fatal("BuildChecked accepted a 256-node bitmap machine")
	}

	// Snooping systems cap at 64 nodes regardless of bus model.
	snoop := DefaultConfigSized(SnoopSpec, workload.Uniform, 16, 16)
	err = ValidateConfig(snoop)
	if err == nil || !strings.Contains(err.Error(), "directory kind") {
		t.Fatalf("snooping at 256 nodes: got %v, want snoop-cap error", err)
	}

	// Network geometry problems propagate as errors too (historically a
	// panic mid-setup in network.New).
	short := cfg
	short.Net.Width, short.Net.Height = 1, 1
	short.Nodes = 1
	if err := ValidateConfig(short); err == nil {
		t.Fatal("1x1 torus accepted")
	}
	if _, err := BuildChecked(short); err == nil {
		t.Fatal("BuildChecked accepted a 1x1 torus")
	}
}

// TestRunOneCheckedRejectsOversizeSnoop pins the end-to-end error
// path: running a 256-node snooping machine returns the descriptive
// snoop-cap error — no panic, no partial construction — which is what
// the sweep engine's per-design-point error column relies on.
func TestRunOneCheckedRejectsOversizeSnoop(t *testing.T) {
	cfg := DefaultConfigSized(SnoopSpec, workload.Uniform, 16, 16)
	_, err := RunOneChecked(cfg, 10_000)
	if err == nil {
		t.Fatal("RunOneChecked accepted a 256-node snooping machine")
	}
	for _, want := range []string{"64 nodes", "directory kind"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q not descriptive: missing %q", err, want)
		}
	}
}

// TestBuildPanicsStayForLegacyCallers keeps the documented contract of
// the unchecked constructors: Build panics (with the same descriptive
// error) for callers that treat configuration as a programming error.
func TestBuildPanicsStayForLegacyCallers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Build did not panic on an invalid config")
		}
	}()
	cfg := DefaultConfigSized(DirectorySpec, workload.Uniform, 16, 16)
	cfg.Sharers = directory.FullBitmap
	Build(cfg)
}
