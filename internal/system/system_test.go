package system

import (
	"testing"

	"specsimp/internal/network"
	"specsimp/internal/workload"
)

func TestDirectoryFullRuns(t *testing.T) {
	cfg := DefaultConfig(DirectoryFull, workload.Uniform)
	r := RunOne(cfg, 400_000)
	if r.Instructions == 0 || r.Perf <= 0 {
		t.Fatalf("no progress: %+v", r)
	}
	if r.Checkpoints < 2 {
		t.Fatalf("checkpoints=%d; cadence broken", r.Checkpoints)
	}
	if r.Recoveries != 0 {
		t.Fatalf("full protocol recovered %d times (reasons %v)", r.Recoveries, r.RecoveryReasons)
	}
}

func TestDirectorySpecRunsOnAdaptive(t *testing.T) {
	cfg := DefaultConfig(DirectorySpec, workload.Hotspot)
	r := RunOne(cfg, 600_000)
	if r.Instructions == 0 {
		t.Fatal("no progress")
	}
	// Mis-speculations are allowed (that is the design); the system
	// must simply keep making progress through them.
	t.Logf("spec directory: perf=%.3f recoveries=%d reorder=%.5f",
		r.Perf, r.Recoveries, r.TotalReorderRate)
}

func TestSnoopFullRuns(t *testing.T) {
	cfg := DefaultConfig(SnoopFull, workload.Uniform)
	r := RunOne(cfg, 400_000)
	if r.Instructions == 0 {
		t.Fatal("no progress")
	}
	if r.Recoveries != 0 {
		t.Fatalf("full snooping recovered %d times", r.Recoveries)
	}
	if r.Checkpoints < 1 {
		t.Fatal("no checkpoints")
	}
}

func TestSnoopSpecRuns(t *testing.T) {
	cfg := DefaultConfig(SnoopSpec, workload.OLTP)
	r := RunOne(cfg, 400_000)
	if r.Instructions == 0 {
		t.Fatal("no progress")
	}
	t.Logf("spec snooping: perf=%.3f corner detections=%d", r.Perf, r.CornerDetected)
}

func TestInjectedRecoveriesSurvived(t *testing.T) {
	// The injection period must exceed the validation window (three
	// checkpoint intervals) or every rollback returns to the initial
	// checkpoint and the system can make no net progress — that is
	// correct SafetyNet behavior, so scale the interval down.
	cfg := DefaultConfig(DirectoryFull, workload.Uniform)
	cfg.CheckpointInterval = 10_000
	cfg.InjectRecoveryEvery = 150_000
	r := RunOne(cfg, 900_000)
	if r.Recoveries < 3 {
		t.Fatalf("recoveries=%d; injector broken", r.Recoveries)
	}
	if r.RecoveryReasons["injected"] != r.Recoveries {
		t.Fatalf("reasons=%v", r.RecoveryReasons)
	}
	if r.Instructions == 0 {
		t.Fatal("system made no progress through injected recoveries")
	}
	if r.MeanLostWork <= 0 {
		t.Fatal("recoveries lost no work?")
	}
}

func TestInjectionDegradesGracefully(t *testing.T) {
	// Figure 4's premise: more recoveries => monotonically-ish lower
	// performance, but never collapse at modest rates.
	baseCfg := DefaultConfig(DirectoryFull, workload.Uniform)
	baseCfg.CheckpointInterval = 10_000
	base := RunOne(baseCfg, 1_000_000)
	inj := baseCfg
	inj.InjectRecoveryEvery = 250_000
	hit := RunOne(inj, 1_000_000)
	if hit.Perf >= base.Perf {
		t.Logf("note: injected run not slower (%.4f vs %.4f) — acceptable at low rates", hit.Perf, base.Perf)
	}
	// Loss per recovery is bounded by the validation window plus one
	// interval plus the recovery latency (~60k cycles); at a 250k
	// period performance should retain well over half.
	if hit.Perf < base.Perf*0.5 {
		t.Fatalf("injected run lost too much: %.4f vs %.4f", hit.Perf, base.Perf)
	}
}

func TestSimplifiedNetworkDeadlockRecovery(t *testing.T) {
	// The §4 experiment: no virtual networks/channels, tiny shared
	// buffers. Deadlocks (or unrecoverable stalls) must be detected by
	// the transaction timeout and recovered from, and the system must
	// still make forward progress (slow-start guarantees it).
	cfg := DefaultConfig(DirectorySpec, workload.Hotspot)
	cfg.Net = network.SimplifiedConfig(4, 4, 0.8, 2)
	cfg.CheckpointInterval = 20_000
	cfg.TimeoutCycles = 3 * cfg.CheckpointInterval
	cfg.SlowStartWindow = 50_000
	r := RunOne(cfg, 2_000_000)
	if r.Instructions == 0 {
		t.Fatal("no progress on the simplified network")
	}
	t.Logf("simplified net: perf=%.3f recoveries=%d timeouts=%d reasons=%v",
		r.Perf, r.Recoveries, r.Timeouts, r.RecoveryReasons)
}

func TestRecoveryDeterminismAfterRollback(t *testing.T) {
	// Two identical runs with injected recoveries must agree exactly:
	// rollback + workload replay is fully deterministic.
	cfg := DefaultConfig(DirectoryFull, workload.Uniform)
	cfg.InjectRecoveryEvery = 170_000
	a := RunOne(cfg, 700_000)
	b := RunOne(cfg, 700_000)
	if a.Instructions != b.Instructions || a.Recoveries != b.Recoveries {
		t.Fatalf("nondeterminism: (%d,%d) vs (%d,%d)",
			a.Instructions, a.Recoveries, b.Instructions, b.Recoveries)
	}
}

func TestCheckpointLogStaysBounded(t *testing.T) {
	cfg := DefaultConfig(DirectoryFull, workload.Uniform)
	r := RunOne(cfg, 800_000)
	if r.LogHighWaterBytes == 0 {
		t.Fatal("nothing was logged — checkpointing not wired")
	}
	if r.LogHighWaterBytes > 8*512*1024 {
		t.Fatalf("log high water %d bytes: commit is not freeing entries", r.LogHighWaterBytes)
	}
}

func TestRunPerturbed(t *testing.T) {
	cfg := DefaultConfig(DirectoryFull, workload.Uniform)
	pr := RunPerturbed(cfg, 4, 250_000)
	if pr.Perf.N() != 4 {
		t.Fatalf("runs=%d", pr.Perf.N())
	}
	if pr.Perf.Mean() <= 0 {
		t.Fatal("no performance measured")
	}
	// Perturbed runs must actually differ (different seeds).
	if pr.Perf.Min() == pr.Perf.Max() {
		t.Log("warning: all perturbed runs identical; seeds may not be wired")
	}
}

func TestAuditAfterSystemRun(t *testing.T) {
	// After a run with recoveries, drain and audit protocol invariants.
	cfg := DefaultConfig(DirectoryFull, workload.Hotspot)
	cfg.InjectRecoveryEvery = 200_000
	s := Build(cfg)
	s.Start()
	s.K.Run(600_000)
	// Stop issuing and drain everything in flight.
	s.Pool.Pause()
	for i := 0; i < 200_000 && s.inFlight() > 0; i++ {
		if !s.K.Step() {
			break
		}
	}
	if s.inFlight() != 0 {
		t.Fatalf("could not drain: %d in flight", s.inFlight())
	}
	if err := s.Dir.AuditInvariants(); err != nil {
		t.Fatalf("invariants violated after recoveries: %v", err)
	}
}

func TestTable2Rendering(t *testing.T) {
	out := Table2(DefaultConfig(DirectoryFull, workload.OLTP))
	for _, want := range []string{"128 KB", "4 MB", "torus", "512 KB", "100 cycles"} {
		if !contains(out, want) {
			t.Errorf("Table 2 missing %q", want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		(len(s) > 0 && indexOf(s, sub) >= 0))
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestKindStrings(t *testing.T) {
	if DirectoryFull.String() != "directory-full" || SnoopSpec.String() != "snoop-spec" {
		t.Fatal("kind names wrong")
	}
	if !DirectorySpec.IsDirectory() || SnoopFull.IsDirectory() {
		t.Fatal("IsDirectory wrong")
	}
}
