package system

import (
	"reflect"
	"testing"

	"specsimp/internal/sim"
	"specsimp/internal/workload"
)

// shardedBase returns a directory system configured to exercise the
// interesting machinery under sharded execution: perturbed forwards
// (mis-speculation detections on Spec), periodic injected recoveries,
// the armed timeout watchdog, checkpoints every few thousand cycles,
// and small caches for writeback pressure.
func shardedBase(kind Kind, wl workload.Profile, w, h int) Config {
	cfg := DefaultConfigSized(kind, wl, w, h)
	cfg.CheckpointInterval = 2_000
	cfg.TimeoutCycles = 3 * cfg.CheckpointInterval
	cfg.SlowStartWindow = 5_000
	cfg.InjectRecoveryEvery = 17_000
	cfg.ReorderInjectProb = 0.3
	cfg.L2Bytes = 8 * 1024
	cfg.L1Bytes = 2 * 1024
	return cfg
}

func runSharded(t *testing.T, cfg Config, shards int, cycles sim.Time) Results {
	t.Helper()
	c := cfg
	c.Shards = shards
	res, err := RunOneChecked(c, cycles)
	if err != nil {
		t.Fatalf("shards=%d: %v", shards, err)
	}
	return res
}

// TestShardedResultsBitIdenticalAcrossCounts is the tentpole property:
// the same run produces deep-equal Results — every counter, histogram-
// derived float and recovery statistic — at 1, 2 and 4 shards, for both
// directory variants, with recoveries, checkpoints, slow-start and the
// watchdog all active.
func TestShardedResultsBitIdenticalAcrossCounts(t *testing.T) {
	for _, kind := range []Kind{DirectorySpec, DirectoryFull} {
		for _, wl := range []workload.Profile{workload.OLTP, workload.Hotspot} {
			cfg := shardedBase(kind, wl, 4, 4)
			ref := runSharded(t, cfg, 1, 60_000)
			if ref.Instructions == 0 {
				t.Fatalf("%s/%s: no forward progress", kind, wl.Name)
			}
			if kind == DirectorySpec && ref.Recoveries == 0 {
				t.Fatalf("%s/%s: expected recoveries under perturbation; the equivalence run is not exercising the recovery path", kind, wl.Name)
			}
			for _, n := range []int{2, 4} {
				got := runSharded(t, cfg, n, 60_000)
				if !reflect.DeepEqual(got, ref) {
					t.Errorf("%s/%s: results at %d shards diverged from serial:\nserial: %+v\nshards: %+v", kind, wl.Name, n, ref, got)
				}
			}
		}
	}
}

// TestShardedResultsBitIdentical8x8 extends the equivalence to the
// 64-node machine that dominates scale64 wall-clock (2 and 4 shards,
// plus 8 — a full column per shard).
func TestShardedResultsBitIdentical8x8(t *testing.T) {
	if testing.Short() {
		t.Skip("8x8 equivalence is slow; covered by the full run and the parallel-determinism CI lane")
	}
	cfg := shardedBase(DirectorySpec, workload.OLTP, 8, 8)
	ref := runSharded(t, cfg, 1, 40_000)
	for _, n := range []int{2, 4, 8} {
		if got := runSharded(t, cfg, n, 40_000); !reflect.DeepEqual(got, ref) {
			t.Errorf("8x8 results at %d shards diverged from serial:\nserial: %+v\nshards: %+v", n, ref, got)
		}
	}
}

// TestShardedRepeatedRunsEquivalent checks chopping Run into uneven
// chunks — which re-anchors the window edges at every chunk boundary —
// behaves identically at different shard counts as long as the call
// pattern matches. (Edge placement is part of the schedule: the
// guarantee is bit-identical results for identical Run sequences at
// any shard count, which is exactly what the sweep engine performs.)
func TestShardedRepeatedRunsEquivalent(t *testing.T) {
	run := func(shards int) Results {
		cfg := shardedBase(DirectorySpec, workload.Uniform, 4, 4)
		cfg.Shards = shards
		s, err := BuildChecked(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.Start()
		s.Run(11_000)
		s.Run(1)
		return s.Run(18_999)
	}
	ref := run(1)
	for _, n := range []int{2, 4} {
		if got := run(n); !reflect.DeepEqual(got, ref) {
			t.Fatalf("chunked runs at %d shards diverged from serial:\nserial: %+v\nshards: %+v", n, ref, got)
		}
	}
}

// TestShardedValidation pins the config errors for illegal sharding
// requests: non-dividing shard counts, snooping kinds, finite buffers.
func TestShardedValidation(t *testing.T) {
	cfg := DefaultConfigSized(DirectorySpec, workload.OLTP, 4, 4)
	cfg.Shards = 3
	if err := ValidateConfig(cfg); err == nil {
		t.Error("3 shards on a 4-wide torus validated; want divisibility error")
	}
	cfg.Shards = 8
	if err := ValidateConfig(cfg); err == nil {
		t.Error("8 shards on a 4-wide torus validated; want divisibility error")
	}

	snoop := DefaultConfigSized(SnoopSpec, workload.OLTP, 4, 4)
	snoop.Shards = 2
	if err := ValidateConfig(snoop); err == nil {
		t.Error("2 shards on a snooping system validated; want serial-only error")
	}
	snoop.Shards = 1
	if err := ValidateConfig(snoop); err != nil {
		t.Errorf("1 shard on a snooping system must mean the classic path, got %v", err)
	}

	finite := DefaultConfigSized(DirectorySpec, workload.OLTP, 4, 4)
	finite.Net.BufferSize = 8
	finite.Shards = 2
	if err := ValidateConfig(finite); err == nil {
		t.Error("finite-buffer network validated for sharding; want lookahead error")
	}
}

// TestShardedSnoopFallsBackToClassic checks a snooping system with
// Shards=1 builds and runs on the classic path (byte-equal to Shards=0
// by construction — it is the same code path).
func TestShardedSnoopFallsBackToClassic(t *testing.T) {
	cfg := DefaultConfigSized(SnoopSpec, workload.OLTP, 4, 4)
	cfg.CheckpointInterval = 2_000
	ref, err := RunOneChecked(cfg, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Shards = 1
	got, err := RunOneChecked(cfg, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Fatal("snoop Shards=1 diverged from Shards=0 (must be the same classic path)")
	}
}
