package system

import (
	"reflect"
	"strings"
	"testing"

	"specsimp/internal/sim"
	"specsimp/internal/workload"
)

// shardedBase returns a directory system configured to exercise the
// interesting machinery under sharded execution: perturbed forwards
// (mis-speculation detections on Spec), periodic injected recoveries,
// the armed timeout watchdog, checkpoints every few thousand cycles,
// and small caches for writeback pressure.
func shardedBase(kind Kind, wl workload.Profile, w, h int) Config {
	cfg := DefaultConfigSized(kind, wl, w, h)
	cfg.CheckpointInterval = 2_000
	cfg.TimeoutCycles = 3 * cfg.CheckpointInterval
	cfg.SlowStartWindow = 5_000
	cfg.InjectRecoveryEvery = 17_000
	cfg.ReorderInjectProb = 0.3
	cfg.L2Bytes = 8 * 1024
	cfg.L1Bytes = 2 * 1024
	return cfg
}

func runSharded(t *testing.T, cfg Config, shards int, cycles sim.Time) Results {
	t.Helper()
	c := cfg
	c.Shards = shards
	res, err := RunOneChecked(c, cycles)
	if err != nil {
		t.Fatalf("shards=%d: %v", shards, err)
	}
	return res
}

// TestShardedResultsBitIdenticalAcrossCounts is the tentpole property:
// the same run produces deep-equal Results — every counter, histogram-
// derived float and recovery statistic — at 1, 2 and 4 shards, for both
// directory variants, with recoveries, checkpoints, slow-start and the
// watchdog all active.
func TestShardedResultsBitIdenticalAcrossCounts(t *testing.T) {
	for _, kind := range []Kind{DirectorySpec, DirectoryFull} {
		for _, wl := range []workload.Profile{workload.OLTP, workload.Hotspot} {
			cfg := shardedBase(kind, wl, 4, 4)
			ref := runSharded(t, cfg, 1, 60_000)
			if ref.Instructions == 0 {
				t.Fatalf("%s/%s: no forward progress", kind, wl.Name)
			}
			if kind == DirectorySpec && ref.Recoveries == 0 {
				t.Fatalf("%s/%s: expected recoveries under perturbation; the equivalence run is not exercising the recovery path", kind, wl.Name)
			}
			for _, n := range []int{2, 4} {
				got := runSharded(t, cfg, n, 60_000)
				if !reflect.DeepEqual(got, ref) {
					t.Errorf("%s/%s: results at %d shards diverged from serial:\nserial: %+v\nshards: %+v", kind, wl.Name, n, ref, got)
				}
			}
		}
	}
}

// TestShardedResultsBitIdentical8x8 extends the equivalence to the
// 64-node machine that dominates scale64 wall-clock (2 and 4 shards,
// plus 8 — a full column per shard).
func TestShardedResultsBitIdentical8x8(t *testing.T) {
	if testing.Short() {
		t.Skip("8x8 equivalence is slow; covered by the full run and the parallel-determinism CI lane")
	}
	cfg := shardedBase(DirectorySpec, workload.OLTP, 8, 8)
	ref := runSharded(t, cfg, 1, 40_000)
	for _, n := range []int{2, 4, 8} {
		if got := runSharded(t, cfg, n, 40_000); !reflect.DeepEqual(got, ref) {
			t.Errorf("8x8 results at %d shards diverged from serial:\nserial: %+v\nshards: %+v", n, ref, got)
		}
	}
}

// TestShardedRepeatedRunsEquivalent checks chopping Run into uneven
// chunks — which re-anchors the window edges at every chunk boundary —
// behaves identically at different shard counts as long as the call
// pattern matches. (Edge placement is part of the schedule: the
// guarantee is bit-identical results for identical Run sequences at
// any shard count, which is exactly what the sweep engine performs.)
func TestShardedRepeatedRunsEquivalent(t *testing.T) {
	run := func(shards int) Results {
		cfg := shardedBase(DirectorySpec, workload.Uniform, 4, 4)
		cfg.Shards = shards
		s, err := BuildChecked(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.Start()
		s.Run(11_000)
		s.Run(1)
		return s.Run(18_999)
	}
	ref := run(1)
	for _, n := range []int{2, 4} {
		if got := run(n); !reflect.DeepEqual(got, ref) {
			t.Fatalf("chunked runs at %d shards diverged from serial:\nserial: %+v\nshards: %+v", n, ref, got)
		}
	}
}

// TestTileGridAndMap pins the tile decomposition over divisor
// geometries: the auto-factorization's shape choices (near-square
// tiles, column strips on ties), equal tile populations, and — the
// property the lookahead table rests on — that every node's four torus
// neighbors live in a tile the lookahead table activates, wrap edges
// and single-row/column degenerates included.
func TestTileGridAndMap(t *testing.T) {
	cases := []struct{ w, h, shards, r, c int }{
		{4, 4, 1, 1, 1},
		{4, 4, 2, 1, 2}, // tie between 1x2 and 2x1: column strips win
		{4, 4, 4, 2, 2},
		{4, 4, 8, 2, 4}, // non-square grid on a square torus
		{4, 4, 16, 4, 4},
		{8, 4, 4, 1, 4}, // tie on a non-square torus: more columns
		{8, 4, 8, 2, 4}, // square 2x2 tiles beat 1x8 strips
		{4, 8, 2, 2, 1}, // row strips when they are squarer
		{2, 8, 4, 4, 1}, // single-column degenerate grid
		{16, 16, 8, 2, 4},
		{32, 32, 16, 4, 4},
	}
	for _, tc := range cases {
		r, c, ok := TileGrid(tc.w, tc.h, tc.shards)
		if !ok {
			t.Errorf("TileGrid(%d,%d,%d): no factorization found", tc.w, tc.h, tc.shards)
			continue
		}
		if r != tc.r || c != tc.c {
			t.Errorf("TileGrid(%d,%d,%d) = %dx%d, want %dx%d", tc.w, tc.h, tc.shards, r, c, tc.r, tc.c)
		}
		of := tileMap(tc.w, tc.h, r, c)
		pop := make([]int, tc.shards)
		for _, s := range of {
			pop[s]++
		}
		for s, p := range pop {
			if want := tc.w * tc.h / tc.shards; p != want {
				t.Errorf("%dx%d/%d tiles: tile %d holds %d nodes, want %d", tc.w, tc.h, tc.shards, s, p, want)
			}
		}
		look := tileLookahead(r, c, 18)
		for n := range of {
			x, y := n%tc.w, n/tc.w
			for _, d := range [4][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
				nx := (x + d[0] + tc.w) % tc.w
				ny := (y + d[1] + tc.h) % tc.h
				m := ny*tc.w + nx
				if look[of[n]][of[m]] == 0 {
					t.Fatalf("%dx%d/%dx%d: neighbor pair %d->%d crosses inactive tile pair %d->%d",
						tc.w, tc.h, r, c, m, n, of[m], of[n])
				}
			}
		}
	}
	if _, _, ok := TileGrid(4, 4, 3); ok {
		t.Error("TileGrid(4,4,3) found a factorization; 3 divides neither side")
	}
	if _, _, ok := TileGrid(4, 4, 32); ok {
		t.Error("TileGrid(4,4,32) found a factorization; 32 tiles exceed any 4x4 grid")
	}
}

// TestShardedResultsBitIdentical16x16 extends the equivalence to the
// 256-node machine the scale1024 curve leans on, at every power-of-two
// tile count through 16 and across tile shapes at equal count, with a
// sustained fault regime and the adaptive checkpoint cadence active on
// top of the usual perturbations.
func TestShardedResultsBitIdentical16x16(t *testing.T) {
	if testing.Short() {
		t.Skip("16x16 equivalence is slow; covered by the parallel-determinism CI lane")
	}
	cfg := shardedBase(DirectorySpec, workload.OLTP, 16, 16)
	cfg.FaultRegime = FaultStorm
	cfg.FaultRate = 50
	cfg.CyclesPerSecond = 2e6
	cfg.AdaptiveCheckpoint = true
	ref := runSharded(t, cfg, 1, 30_000)
	if ref.Instructions == 0 {
		t.Fatal("no forward progress")
	}
	for _, n := range []int{2, 4, 8, 16} {
		if got := runSharded(t, cfg, n, 30_000); !reflect.DeepEqual(got, ref) {
			t.Errorf("16x16 results at %d tiles diverged from serial:\nserial: %+v\ntiles: %+v", n, ref, got)
		}
	}
	// Shape invariance at a fixed count: the auto grid for 4 tiles is
	// 2x2; pin 4x1 and 1x4 explicitly and demand the same bits.
	for _, grid := range [][2]int{{4, 1}, {1, 4}} {
		c := cfg
		c.Shards, c.ShardRows, c.ShardCols = 4, grid[0], grid[1]
		got, err := RunOneChecked(c, 30_000)
		if err != nil {
			t.Fatalf("grid %dx%d: %v", grid[0], grid[1], err)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("16x16 results on a %dx%d grid diverged from serial", grid[0], grid[1])
		}
	}
}

// TestShardedValidation pins the config errors for illegal sharding
// requests: counts with no tile factorization, bad explicit grids,
// snooping kinds, finite buffers — and that the errors name the legal
// factorizations.
func TestShardedValidation(t *testing.T) {
	cfg := DefaultConfigSized(DirectorySpec, workload.OLTP, 4, 4)
	cfg.Shards = 3
	if err := ValidateConfig(cfg); err == nil {
		t.Error("3 shards on a 4x4 torus validated; want no-factorization error")
	} else if !strings.Contains(err.Error(), "2 (1x2 2x1)") {
		t.Errorf("no-factorization error does not list legal counts: %v", err)
	}
	// 8 was illegal under column strips (8 > width 4); as a 2x4 or 4x2
	// tile grid it now divides the torus.
	cfg.Shards = 8
	if err := ValidateConfig(cfg); err != nil {
		t.Errorf("8 shards on a 4x4 torus must tile as 2x4/4x2, got %v", err)
	}
	cfg.Shards = 32
	if err := ValidateConfig(cfg); err == nil {
		t.Error("32 shards on a 4x4 torus validated; want no-factorization error")
	}

	// Explicit grids: shape/count mismatch, non-dividing shape, and a
	// half-set pair are each their own descriptive error.
	bad := DefaultConfigSized(DirectorySpec, workload.OLTP, 4, 4)
	bad.Shards, bad.ShardRows, bad.ShardCols = 4, 2, 1
	if err := ValidateConfig(bad); err == nil || !strings.Contains(err.Error(), "2 tiles but Shards is 4") {
		t.Errorf("2x1 grid with Shards=4: got %v, want mismatch error", err)
	}
	bad.Shards, bad.ShardRows, bad.ShardCols = 6, 3, 2
	if err := ValidateConfig(bad); err == nil || !strings.Contains(err.Error(), "does not divide") {
		t.Errorf("3x2 grid on 4x4: got %v, want divisibility error", err)
	}
	bad.Shards, bad.ShardRows, bad.ShardCols = 4, 2, 0
	if err := ValidateConfig(bad); err == nil || !strings.Contains(err.Error(), "set together") {
		t.Errorf("half-set grid: got %v, want set-together error", err)
	}
	// A legal explicit grid derives Shards when it is left zero.
	derive := DefaultConfigSized(DirectorySpec, workload.OLTP, 4, 4)
	derive.ShardRows, derive.ShardCols = 4, 2
	if err := ValidateConfig(derive); err != nil {
		t.Errorf("explicit 4x2 grid with derived Shards rejected: %v", err)
	}

	snoopCfg := DefaultConfigSized(SnoopSpec, workload.OLTP, 4, 4)
	snoopCfg.Shards = 2
	if err := ValidateConfig(snoopCfg); err == nil {
		t.Error("2 shards on a snooping system validated; want serial-only error")
	}
	snoopCfg.Shards = 1
	if err := ValidateConfig(snoopCfg); err != nil {
		t.Errorf("1 shard on a snooping system must mean the classic path, got %v", err)
	}

	finite := DefaultConfigSized(DirectorySpec, workload.OLTP, 4, 4)
	finite.Net.BufferSize = 8
	finite.Shards = 2
	if err := ValidateConfig(finite); err == nil {
		t.Error("finite-buffer network validated for sharding; want lookahead error")
	}
}

// TestShardedSnoopFallsBackToClassic checks a snooping system with
// Shards=1 builds and runs on the classic path (byte-equal to Shards=0
// by construction — it is the same code path).
func TestShardedSnoopFallsBackToClassic(t *testing.T) {
	cfg := DefaultConfigSized(SnoopSpec, workload.OLTP, 4, 4)
	cfg.CheckpointInterval = 2_000
	ref, err := RunOneChecked(cfg, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Shards = 1
	got, err := RunOneChecked(cfg, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Fatal("snoop Shards=1 diverged from Shards=0 (must be the same classic path)")
	}
}
