// Sustained-fault regimes: the availability layer drives recoveries
// through deterministic fault processes instead of (or alongside) the
// single periodic injector of the Figure 4 methodology. Every regime
// runs on the same scheduling surface on both execution paths — kernel
// events classically, window-edge control when sharded — so fault
// arrival times, deferrals and the resulting recovery schedule are
// bit-identical at every shard count.
//
// Faults that land while a recovery is already in progress are the
// interesting case (the paper's availability argument must hold under
// them): they are *deferred* to the resume point, never dropped, and
// faults queued behind the same recovery coalesce into one delivery
// carrying the earliest nominal time — a single rollback disposes of
// them all, exactly like the sharded edge-deferral of protocol
// detections (shard.go). Before this layer, InjectRecoveryEvery ticks
// that hit an in-progress recovery vanished silently.
package system

import (
	"specsimp/internal/sim"
)

// FaultRegime selects the sustained-fault scheduler (Config.FaultRegime).
type FaultRegime uint8

const (
	// FaultNone disables the regime scheduler. The legacy periodic
	// injector (Config.InjectRecoveryEvery) runs independently.
	FaultNone FaultRegime = iota
	// FaultStorm is a Poisson fault storm: every node carries an
	// independent geometric (discretized Poisson) fault process on its
	// own seeded RNG stream; the aggregate rate is Config.FaultRate.
	FaultStorm
	// FaultRegional models correlated regional faults: a global Poisson
	// burst process picks one torus quadrant per burst and faults every
	// node in it inside a short jitter window, so most of a burst lands
	// while the first fault's recovery is already in progress.
	FaultRegional
	// FaultRepeat models repeat faults: a Poisson base process whose
	// every delivered fault is followed by an aftershock aimed at the
	// midpoint of the recovery it triggered — the worst case for the
	// fault-during-recovery path.
	FaultRepeat
)

func (f FaultRegime) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultStorm:
		return "storm"
	case FaultRegional:
		return "regional"
	default:
		return "repeat"
	}
}

// faultSched is the scheduling surface a fault injector needs. Both
// *sim.Kernel (classic path) and *sim.Shards (window-edge control)
// satisfy it; in sharded mode every fault delivery is thereby quantized
// to a window edge, exactly like deferred protocol detections.
type faultSched interface {
	Now() sim.Time
	After(d sim.Time, fn func())
}

// faultInjector delivers the faults of one configured source (the
// legacy periodic injector, or one regime) to the coordinator. Each
// source gets its own injector so their deferral slots stay
// independent.
type faultInjector struct {
	s     *System
	sched faultSched

	// Deferral slot: a fault arriving while Coord.InRecovery() parks
	// here; later arrivals behind the same recovery coalesce into it,
	// keeping the earliest nominal time.
	pending    bool
	pendAt     sim.Time
	pendReason string

	rngs []*sim.RNG // per-node streams (storm)
	next []sim.Time // per-node next arrival (storm)
	rng  *sim.RNG   // global stream (regional, repeat)
}

// startFaults wires the legacy periodic injector and the configured
// fault regime onto sched. Called once from Start/startSharded.
func (s *System) startFaults(sched faultSched) {
	if d := s.Cfg.InjectRecoveryEvery; d > 0 {
		in := &faultInjector{s: s, sched: sched}
		in.startPeriodic(d)
	}
	in := &faultInjector{s: s, sched: sched}
	switch s.Cfg.FaultRegime {
	case FaultStorm:
		in.startStorm()
	case FaultRegional:
		in.startRegional()
	case FaultRepeat:
		in.startRepeat()
	}
}

// at schedules fn at absolute time t, or as soon as possible if t has
// already passed (a deferred delivery whose nominal time is behind the
// clock). Sharded mode rounds up to the next window edge.
func (f *faultInjector) at(t sim.Time, fn func()) {
	now := f.sched.Now()
	if t <= now {
		f.sched.After(1, fn)
		return
	}
	f.sched.After(t-now, fn)
}

// deliver routes one fault with nominal time t to the coordinator,
// deferring (not dropping) it when a recovery is in progress.
func (f *faultInjector) deliver(t sim.Time, reason string) {
	c := f.s.Coord
	if !c.InRecovery() {
		c.TriggerMisSpeculationAt(reason, t)
		return
	}
	if f.pending {
		if t < f.pendAt {
			f.pendAt = t
		}
		return
	}
	f.pending = true
	f.pendAt = t
	f.pendReason = reason
	f.redeliver()
}

// redeliver retries the parked fault just after the blocking recovery's
// resume point, re-arming if yet another recovery got there first.
func (f *faultInjector) redeliver() {
	f.at(f.s.Coord.ResumeAt()+1, func() {
		if f.s.Coord.InRecovery() {
			f.redeliver()
			return
		}
		f.pending = false
		f.s.Coord.TriggerMisSpeculationAt(f.pendReason, f.pendAt)
	})
}

// startPeriodic drives the legacy InjectRecoveryEvery cadence through
// the deferral path. Nominal fault times stay on the k*d grid whether
// or not a delivery had to wait out a recovery, so the recovery-latency
// distribution charges the wait honestly.
func (f *faultInjector) startPeriodic(d sim.Time) {
	nominal := f.sched.Now() + d
	var fire func()
	fire = func() {
		t := nominal
		nominal += d
		f.deliver(t, "injected")
		f.at(nominal, fire)
	}
	f.at(nominal, fire)
}

// gapCycles converts a rate in events per second into the mean
// inter-arrival gap in cycles of the compressed clock.
func gapCycles(cfg Config, perSecond float64) float64 {
	return cfg.CyclesPerSecond / perSecond
}

// startStorm seeds one RNG stream and one next-arrival slot per node.
// Per-node streams (the ReorderInjectProb idiom from shard.go) keep the
// draw sequence independent of execution interleaving; the scheduling
// itself runs centrally — one timer tracking the earliest arrival — so
// classic and sharded paths walk the identical schedule.
func (f *faultInjector) startStorm() {
	cfg := f.s.Cfg
	f.rngs = make([]*sim.RNG, cfg.Nodes)
	f.next = make([]sim.Time, cfg.Nodes)
	gap := gapCycles(cfg, cfg.FaultRate/float64(cfg.Nodes))
	now := f.sched.Now()
	for i := range f.rngs {
		f.rngs[i] = sim.NewRNG(cfg.Seed ^ 0x5702a11 ^ uint64(i)*0x9e3779b97f4a7c15)
		f.next[i] = now + sim.Time(f.rngs[i].Geometric(gap))
	}
	f.armStorm(gap)
}

// armStorm schedules the earliest pending arrival across nodes (ties
// break to the lowest node id — the canonical order determinism needs).
func (f *faultInjector) armStorm(gap float64) {
	best := 0
	for i, t := range f.next {
		if t < f.next[best] {
			best = i
		}
	}
	t := f.next[best]
	f.at(t, func() {
		f.deliver(t, "storm")
		f.next[best] = t + sim.Time(f.rngs[best].Geometric(gap))
		f.armStorm(gap)
	})
}

// startRegional arms the global burst process.
func (f *faultInjector) startRegional() {
	f.rng = sim.NewRNG(f.s.Cfg.Seed ^ 0x4e61b0b0)
	f.armRegional(gapCycles(f.s.Cfg, f.s.Cfg.FaultRate))
}

// armRegional schedules the next burst: pick a quadrant, then fault
// every node in it at a jittered offset within two recovery latencies —
// so the burst's first fault triggers a recovery and most of the rest
// land inside it and exercise the deferral path. SafetyNet recovery is
// global, so which quadrant was hit is immaterial to the rollback; what
// the regime contributes is the burst's arrival structure (one rollback,
// then typically one coalesced follow-up after resume).
func (f *faultInjector) armRegional(gap float64) {
	now := f.sched.Now()
	t := now + sim.Time(f.rng.Geometric(gap))
	f.at(t, func() {
		quad := int(f.rng.Uint64n(4))
		jitter := uint64(2 * f.s.Mgr.Config().RecoveryLatency)
		if jitter == 0 {
			jitter = 1
		}
		n := quadrantSize(f.s.Cfg.Net.Width, f.s.Cfg.Net.Height, quad)
		for i := 0; i < n; i++ {
			ti := t + sim.Time(f.rng.Uint64n(jitter))
			f.at(ti, func() { f.deliver(ti, "regional") })
		}
		f.armRegional(gap)
	})
}

// quadrantSize is the node count of torus quadrant q (bit 0: right
// half, bit 1: bottom half; odd dimensions put the extra column/row in
// the low half).
func quadrantSize(w, h, q int) int {
	wx := w - w/2
	if q&1 == 1 {
		wx = w / 2
	}
	hy := h - h/2
	if q&2 == 2 {
		hy = h / 2
	}
	return wx * hy
}

// startRepeat arms the base process.
func (f *faultInjector) startRepeat() {
	f.rng = sim.NewRNG(f.s.Cfg.Seed ^ 0x4e9e47)
	f.armRepeat(gapCycles(f.s.Cfg, f.s.Cfg.FaultRate))
}

// armRepeat schedules the next base fault; if its delivery engaged a
// recovery (rather than parking behind one), an aftershock is aimed at
// that recovery's midpoint, guaranteeing a fault that lands while
// InRecovery and must defer to the resume point. Aftershocks do not
// spawn further aftershocks.
func (f *faultInjector) armRepeat(gap float64) {
	now := f.sched.Now()
	t := now + sim.Time(f.rng.Geometric(gap))
	f.at(t, func() {
		f.deliver(t, "repeat")
		if c := f.s.Coord; !f.pending && c.InRecovery() {
			mid := f.sched.Now() + (c.ResumeAt()-f.sched.Now())/2
			f.at(mid, func() { f.deliver(mid, "repeat") })
		}
		f.armRepeat(gap)
	})
}
