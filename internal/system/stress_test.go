package system

import (
	"fmt"
	"testing"

	"specsimp/internal/directory"
	"specsimp/internal/sim"
	"specsimp/internal/workload"
)

// stressSeeds are the pseudo-random replay seeds for the cross-protocol
// stress suite. The list is fixed so CI is deterministic; a failure
// message carries the exact seed (and configuration) that reproduces it
// — rerun with that seed to replay the violation bit for bit.
var stressSeeds = []uint64{0x5eed0001, 0xbadc0ffe}

// stressCases add geometry and fault-injection variety on top of the
// kind × workload grid: the plain 4×4 machine, a recovery-hammered 4×4
// machine (rollback is when invariants are easiest to break), the
// 64-node scaling geometry, and the 256-node machine under both wide
// directory sharer-set formats (snooping kinds skip it: unsupported).
type stressCase struct {
	name          string
	width, height int
	injectEvery   sim.Time // recovery injection period in cycles (0 = off)
	cycles        sim.Time
	sharers       directory.SharerFormat // 0 = DefaultConfigSized's pick
}

var stressCases = []stressCase{
	{name: "4x4", width: 4, height: 4, cycles: 120_000},
	{name: "4x4-inject", width: 4, height: 4, injectEvery: 7_000, cycles: 120_000},
	{name: "8x8", width: 8, height: 8, cycles: 60_000},
	{name: "16x16-limited", width: 16, height: 16, cycles: 50_000, sharers: directory.LimitedPointer},
	{name: "16x16-coarse", width: 16, height: 16, cycles: 50_000, sharers: directory.CoarseVector},
}

// stressStreams is the workload axis of the stress matrix: the
// five-workload evaluation suite, the four sharing idioms, and a
// Zipf-skewed phase-shifting variant of OLTP — every stream shape the
// generator can produce gets its invariants audited.
func stressStreams() []workload.Profile {
	streams := append([]workload.Profile{}, workload.Suite...)
	streams = append(streams, workload.Idioms...)
	zipf := workload.OLTP
	zipf.Name = "oltp-zipf"
	zipf.ZipfSkew = 1.1
	zipf.PhaseLen = 2_048
	return append(streams, zipf)
}

// TestCrossKindInvariantStress runs randomized-workload simulations over
// all four system Kinds × the stress streams (evaluation suite, sharing
// idioms, Zipf/phase variant) and calls AuditInvariants at every
// SafetyNet checkpoint (the system is quiesced there by construction).
// Any violation reports the replay seed.
func TestCrossKindInvariantStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress suite skipped in -short mode")
	}
	kinds := []Kind{DirectoryFull, DirectorySpec, SnoopFull, SnoopSpec}
	for _, sc := range stressCases {
		for _, kind := range kinds {
			for _, wl := range stressStreams() {
				sc, kind, wl := sc, kind, wl
				t.Run(sc.name+"/"+kind.String()+"/"+wl.Name, func(t *testing.T) {
					t.Parallel()
					for _, seed := range stressSeeds {
						runStressCase(t, sc, kind, wl, seed)
					}
				})
			}
		}
	}
}

// TestShardedInvariantStress is the sharded variant of the cross-kind
// stress: directory systems at 4×4 and 8×8 run under 2 and 4 intra-run
// shards — fault injection and recovery included — with invariants
// audited at every checkpoint, and the whole Results struct asserted
// bit-identical to the 1-shard (serial windowed) run of the same replay
// seed. A violation or divergence reports the seed to replay.
func TestShardedInvariantStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress suite skipped in -short mode")
	}
	cases := []stressCase{
		{name: "4x4", width: 4, height: 4, cycles: 120_000},
		{name: "4x4-inject", width: 4, height: 4, injectEvery: 7_000, cycles: 120_000},
		{name: "8x8", width: 8, height: 8, cycles: 60_000},
		{name: "8x8-inject", width: 8, height: 8, injectEvery: 9_000, cycles: 60_000},
	}
	for _, sc := range cases {
		for _, kind := range []Kind{DirectoryFull, DirectorySpec} {
			sc, kind := sc, kind
			t.Run(sc.name+"/"+kind.String(), func(t *testing.T) {
				t.Parallel()
				for _, seed := range stressSeeds {
					ref := runShardedStressCase(t, sc, kind, seed, 1)
					for _, shards := range []int{2, 4} {
						got := runShardedStressCase(t, sc, kind, seed, shards)
						if got != ref {
							t.Fatalf("results at %d shards diverged from serial (replay: kind=%s geom=%s seed=%#x):\nserial: %s\nshards: %s",
								shards, kind, sc.name, seed, ref, got)
						}
					}
				}
			})
		}
	}
}

func runShardedStressCase(t *testing.T, sc stressCase, kind Kind, seed uint64, shards int) string {
	t.Helper()
	cfg := DefaultConfigSized(kind, workload.Hotspot, sc.width, sc.height)
	cfg.Seed = seed
	cfg.Shards = shards
	cfg.CheckpointInterval = 2_000
	cfg.TimeoutCycles = 3 * cfg.CheckpointInterval // watchdog armed at edges
	cfg.InjectRecoveryEvery = sc.injectEvery
	cfg.ReorderInjectProb = 0.25
	cfg.L2Bytes = 8 * 1024
	cfg.L1Bytes = 2 * 1024
	replay := fmt.Sprintf("replay: kind=%s geom=%s seed=%#x shards=%d", kind, sc.name, seed, shards)
	s, err := BuildChecked(cfg)
	if err != nil {
		t.Fatalf("build failed (%s): %v", replay, err)
	}
	audits := 0
	s.OnCheckpoint = func() {
		audits++
		if err := s.AuditInvariants(); err != nil {
			t.Fatalf("invariant violation at checkpoint %d (%s): %v", audits, replay, err)
		}
	}
	s.Start()
	res := s.Run(sc.cycles)
	if res.Instructions == 0 {
		t.Fatalf("no forward progress (%s)", replay)
	}
	if audits < 5 {
		t.Fatalf("only %d checkpoints audited — the stress proves nothing (%s)", audits, replay)
	}
	if sc.injectEvery > 0 && res.Recoveries == 0 {
		t.Fatalf("injection produced no recoveries (%s)", replay)
	}
	// Rendered for exact comparison across shard counts (fmt prints
	// every field, maps in sorted key order).
	return fmt.Sprintf("%+v", res)
}

func runStressCase(t *testing.T, sc stressCase, kind Kind, wl workload.Profile, seed uint64) {
	t.Helper()
	cfg := DefaultConfigSized(kind, wl, sc.width, sc.height)
	cfg.Seed = seed
	cfg.CheckpointInterval = 2_000
	cfg.SnoopCheckpointRequests = 200
	cfg.TimeoutCycles = 0 // deadlock-free fabrics; the audit is the detector here
	cfg.InjectRecoveryEvery = sc.injectEvery
	if sc.sharers != 0 && kind.IsDirectory() {
		cfg.Sharers = sc.sharers
	}
	// Streams with machine-wide hot blocks (Zipf skew, single-writer
	// broadcast) quiesce slowly on 256-node machines — the drained
	// checkpoint takes ~20k cycles, so the 50k budget completes too few
	// checkpoints to audit. Scale the budget, not the audit floor.
	cycles := sc.cycles
	if cfg.Nodes >= 256 && (wl.ZipfSkew > 0 || wl.Idiom == workload.IdiomBroadcast) {
		cycles *= 5
	}
	replay := fmt.Sprintf("replay: kind=%s workload=%s geom=%s seed=%#x",
		kind, wl.Name, sc.name, seed)
	s, err := BuildChecked(cfg)
	if err != nil {
		if !kind.IsDirectory() && cfg.Nodes > MaxSnoopNodes {
			t.Skipf("unsupported geometry for %s: %v", kind, err)
		}
		t.Fatalf("build failed (%s): %v", replay, err)
	}
	audits := 0
	s.OnCheckpoint = func() {
		audits++
		if err := s.AuditInvariants(); err != nil {
			t.Fatalf("invariant violation at checkpoint %d (%s): %v", audits, replay, err)
		}
	}
	s.Start()
	res := s.Run(cycles)
	if res.Instructions == 0 {
		t.Fatalf("no forward progress (%s)", replay)
	}
	if audits < 5 {
		t.Fatalf("only %d checkpoints audited — the stress proves nothing (%s)", audits, replay)
	}
	if sc.injectEvery > 0 && res.Recoveries == 0 {
		t.Fatalf("injection produced no recoveries (%s)", replay)
	}
}
