package system

import (
	"testing"

	"specsimp/internal/workload"
)

// TestSnoopLogicalCheckpoints: the snooping system checkpoints on its
// logical time base — every N ordered bus requests (paper Table 2:
// 3,000) — not on wall-clock cycles.
func TestSnoopLogicalCheckpoints(t *testing.T) {
	cfg := DefaultConfig(SnoopFull, workload.Uniform)
	cfg.SnoopCheckpointRequests = 200
	s := Build(cfg)
	s.Start()
	s.K.Run(600_000)
	ordered := s.Bus.Ordered()
	r := s.Results()
	if ordered < 400 {
		t.Fatalf("only %d requests ordered; run too small", ordered)
	}
	// One initial checkpoint plus roughly ordered/200 more (drain time
	// between trigger and cut loses a little cadence).
	minWant := uint64(1 + int(ordered)/200/2)
	if r.Checkpoints < minWant {
		t.Fatalf("checkpoints=%d for %d ordered requests (want >= %d)", r.Checkpoints, ordered, minWant)
	}
}

// TestSnoopSystemInjectedRecovery: the snooping system also rolls back
// and replays deterministically under injected recoveries.
func TestSnoopSystemInjectedRecovery(t *testing.T) {
	cfg := DefaultConfig(SnoopFull, workload.Uniform)
	cfg.SnoopCheckpointRequests = 150
	cfg.CheckpointInterval = 5_000 // scales validation window + recovery latency
	cfg.InjectRecoveryEvery = 120_000
	a := RunOne(cfg, 700_000)
	if a.Recoveries < 3 {
		t.Fatalf("recoveries=%d; injector broken for snooping", a.Recoveries)
	}
	if a.Instructions == 0 {
		t.Fatal("no progress through snooping recoveries")
	}
	b := RunOne(cfg, 700_000)
	if a.Instructions != b.Instructions || a.Recoveries != b.Recoveries {
		t.Fatalf("snooping rollback nondeterministic: (%d,%d) vs (%d,%d)",
			a.Instructions, a.Recoveries, b.Instructions, b.Recoveries)
	}
}

// TestSnoopSystemAuditAfterRecoveries drains a recovery-heavy snooping
// run and audits invariants.
func TestSnoopSystemAuditAfterRecoveries(t *testing.T) {
	cfg := DefaultConfig(SnoopSpec, workload.Hotspot)
	cfg.SnoopCheckpointRequests = 150
	cfg.CheckpointInterval = 5_000
	cfg.InjectRecoveryEvery = 100_000
	s := Build(cfg)
	s.Start()
	s.K.Run(600_000)
	if s.Coord.Recoveries() == 0 {
		t.Fatal("no recoveries injected")
	}
	s.Pool.Pause()
	for i := 0; i < 400_000 && s.inFlight() > 0; i++ {
		if !s.K.Step() {
			break
		}
	}
	if s.inFlight() != 0 {
		t.Fatalf("drain failed: %d in flight", s.inFlight())
	}
	if err := s.Snoop.AuditInvariants(); err != nil {
		t.Fatalf("invariants broken after %d snooping recoveries: %v", s.Coord.Recoveries(), err)
	}
}

// TestDeflectionSystemEndToEnd: the full system runs on the deflection
// network with zero deadlock recoveries where the simplified network
// needs many.
func TestDeflectionSystemEndToEnd(t *testing.T) {
	base := DefaultConfig(DirectorySpec, workload.OLTP)
	base.CheckpointInterval = 5_000
	base.TimeoutCycles = 15_000
	base.SlowStartWindow = 25_000

	simp := base
	simp.Net = simplifiedNet(2)
	rs := RunOne(simp, 1_000_000)

	defl := base
	defl.Net = deflectionNet()
	rd := RunOne(defl, 1_000_000)

	if rs.Recoveries == 0 {
		t.Skip("baseline produced no deadlocks this seed")
	}
	if rd.RecoveryReasons["deadlock-timeout"] > rs.RecoveryReasons["deadlock-timeout"]/4 {
		t.Fatalf("deflection timeouts %v vs simplified %v; no improvement",
			rd.RecoveryReasons, rs.RecoveryReasons)
	}
	if rd.Deflections == 0 {
		t.Fatal("no deflections recorded")
	}
	t.Logf("simplified: perf=%.4f recov=%d; deflection: perf=%.4f recov=%d deflections=%d",
		rs.Perf, rs.Recoveries, rd.Perf, rd.Recoveries, rd.Deflections)
}
