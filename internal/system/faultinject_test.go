package system

import (
	"testing"

	"specsimp/internal/workload"
)

// TestReorderInjectionTriggersDetection is the end-to-end §3.1 story:
// amplify ForwardedRequest-class reordering until the speculative
// directory protocol's ordering assumption breaks, and verify the
// framework detects it as "p2p-ordering", recovers, applies the
// forward-progress policy, and keeps executing.
func TestReorderInjectionTriggersDetection(t *testing.T) {
	cfg := DefaultConfig(DirectorySpec, workload.Hotspot)
	cfg.CheckpointInterval = 5_000
	cfg.TimeoutCycles = 0 // isolate ordering-violation detection
	cfg.ReorderInjectProb = 0.3
	cfg.ReorderInjectDelay = 3_000
	cfg.AdaptiveDisableWindow = 20_000
	cfg.SlowStartWindow = 20_000
	// Tiny caches: constant writebacks, many WBAck/forward races.
	cfg.L2Bytes, cfg.L2Ways = 16*64, 2
	cfg.L1Bytes, cfg.L1Ways = 2*64, 1

	r := RunOne(cfg, 2_000_000)
	if r.OrderViolations == 0 {
		t.Fatal("fault injection produced no ordering violations; detection path untested")
	}
	if r.RecoveryReasons["p2p-ordering"] == 0 {
		t.Fatalf("violations detected but not recovered: %v", r.RecoveryReasons)
	}
	if r.Instructions == 0 {
		t.Fatal("no forward progress through recoveries")
	}
	t.Logf("violations=%d recoveries=%v instructions=%d perf=%.4f",
		r.OrderViolations, r.RecoveryReasons, r.Instructions, r.Perf)
}

// TestFullProtocolImmuneToInjectedReorders: the Full variant must ride
// out the same amplified reordering with zero recoveries — its extra
// states exist precisely for this.
func TestFullProtocolImmuneToInjectedReorders(t *testing.T) {
	cfg := DefaultConfig(DirectoryFull, workload.Hotspot)
	cfg.CheckpointInterval = 5_000
	cfg.ReorderInjectProb = 0.3
	cfg.ReorderInjectDelay = 3_000
	cfg.L2Bytes, cfg.L2Ways = 16*64, 2
	cfg.L1Bytes, cfg.L1Ways = 2*64, 1

	r := RunOne(cfg, 2_000_000)
	if r.Recoveries != 0 {
		t.Fatalf("full protocol recovered %d times under reordering: %v", r.Recoveries, r.RecoveryReasons)
	}
	if r.WBRaces == 0 {
		t.Fatal("injection produced no writeback races; the run proves nothing")
	}
	if r.Instructions == 0 {
		t.Fatal("no progress")
	}
	t.Logf("races handled=%d instructions=%d", r.WBRaces, r.Instructions)
}

// TestInjectedRecoveryStateConsistency drains after a fault-injected
// run with many recoveries and audits all coherence invariants: the
// rollback machinery must leave the memory system exactly consistent.
func TestInjectedRecoveryStateConsistency(t *testing.T) {
	cfg := DefaultConfig(DirectorySpec, workload.Hotspot)
	cfg.CheckpointInterval = 5_000
	cfg.TimeoutCycles = 30_000 // also catch HOL stalls caused by delays
	cfg.ReorderInjectProb = 0.25
	cfg.ReorderInjectDelay = 3_000
	cfg.SlowStartWindow = 15_000
	cfg.AdaptiveDisableWindow = 15_000
	cfg.L2Bytes, cfg.L2Ways = 16*64, 2
	cfg.L1Bytes, cfg.L1Ways = 2*64, 1

	s := Build(cfg)
	s.Start()
	s.K.Run(1_500_000)
	if s.Coord.Recoveries() == 0 {
		t.Skip("no recoveries this seed; consistency claim vacuous")
	}
	// Turn off the injection and drain.
	s.Net.PerturbFn = nil
	s.Pool.Pause()
	for i := 0; i < 400_000 && s.inFlight() > 0; i++ {
		if !s.K.Step() {
			break
		}
	}
	if s.inFlight() != 0 {
		t.Fatalf("could not drain after recoveries: %d in flight", s.inFlight())
	}
	if err := s.Dir.AuditInvariants(); err != nil {
		t.Fatalf("invariants broken after %d recoveries: %v", s.Coord.Recoveries(), err)
	}
	t.Logf("consistent after %d recoveries (%v)", s.Coord.Recoveries(), s.Coord.Recoveries())
}

// TestSpecMatchesFullUnderInjectionThroughput: with recovery handling
// the rare violations, the spec protocol's committed work should stay
// within a reasonable factor of the full protocol's under identical
// amplified reordering.
func TestSpecMatchesFullUnderInjectionThroughput(t *testing.T) {
	mk := func(kind Kind) Results {
		cfg := DefaultConfig(kind, workload.Uniform)
		cfg.CheckpointInterval = 5_000
		cfg.ReorderInjectProb = 0.05
		cfg.ReorderInjectDelay = 2_000
		cfg.SlowStartWindow = 10_000
		cfg.AdaptiveDisableWindow = 10_000
		cfg.L2Bytes, cfg.L2Ways = 64*64, 2
		return RunOne(cfg, 1_500_000)
	}
	full := mk(DirectoryFull)
	spec := mk(DirectorySpec)
	if spec.Perf < full.Perf*0.5 {
		t.Fatalf("spec perf %.4f below half of full %.4f despite rare recoveries (%d)",
			spec.Perf, full.Perf, spec.Recoveries)
	}
	t.Logf("full=%.4f spec=%.4f (spec recoveries=%d)", full.Perf, spec.Perf, spec.Recoveries)
}
