// Conservative-window parallel intra-run simulation (Config.Shards).
//
// The torus splits into equal column strips; each strip owns its nodes'
// processors, caches, cache/directory controllers and switch column,
// all scheduled on the strip's own calendar-queue kernel. Strips
// advance in lockstep lookahead windows of the network's minimum hop
// latency (sim.Shards); switch-to-switch message arrivals — the only
// cross-strip interaction the model has — travel through the group's
// FIFO boundary queues.
//
// Everything global runs at window edges, single-threaded, with every
// kernel quiesced at the same instant:
//
//   - checkpoint orchestration (pause, drain-poll, take, resume);
//   - recoveries: a mis-speculation detected mid-window is deferred to
//     the next edge (at most one window of extra detection latency —
//     the whole window's state is discarded by the rollback anyway);
//   - the transaction-timeout watchdog (a scan of every node's TBEs);
//   - slow-start token grants and the forward-progress policy timers.
//
// Determinism: shard-local execution is sequential; boundary arrivals
// enter kernels at deterministic edges in deterministic per-link FIFO
// order (same-shard links included, so bucket positions cannot depend
// on where the partition boundary falls); global control runs at
// deterministic edge times; and all statistics are exact integer
// accumulators striped per shard or per node. Results are therefore
// bit-identical at every shard count — the equivalence tests and the
// CI parallel-determinism lane hold the project to it.
package system

import (
	"specsimp/internal/coherence"
	"specsimp/internal/core"
	"specsimp/internal/directory"
	"specsimp/internal/network"
	"specsimp/internal/processor"
	"specsimp/internal/safetynet"
	"specsimp/internal/sim"
	"specsimp/internal/workload"
)

// shardRuntime is the per-system state of the sharded execution mode.
type shardRuntime struct {
	grp     *sim.Shards
	shardOf []int

	// Deferred mis-speculations: one slot per shard holding the first
	// (earliest-by-execution) detection of the current window. The
	// detecting shard writes its own slot mid-window; the window edge
	// commits the globally earliest one as the recovery and clears all
	// (a single rollback disposes of every coalesced detection, exactly
	// as an immediate recovery would have).
	pendSet    []bool
	pendAt     []sim.Time
	pendNode   []coherence.NodeID
	pendReason []string
}

// shardMap assigns node (x, y) of a w-wide torus to column strip
// x/(w/shards).
func shardMap(w, h, shards int) []int {
	cols := w / shards
	of := make([]int, w*h)
	for n := range of {
		of[n] = (n % w) / cols
	}
	return of
}

// buildSharded is BuildChecked's Shards >= 1 path for directory kinds.
// The machine it assembles is the same as the classic one, re-homed
// onto per-strip kernels; ValidateConfig has already vetted geometry,
// kind and network features.
func buildSharded(cfg Config) (*System, error) {
	window := cfg.Net.MinHopLatency()
	grp := sim.NewShards(cfg.Shards, window)
	shardOf := shardMap(cfg.Net.Width, cfg.Net.Height, cfg.Shards)
	k0 := grp.Kernel(0)

	net, err := network.NewOnShards(grp, cfg.Net, shardOf)
	if err != nil {
		return nil, err
	}
	if cfg.ReorderInjectProb > 0 {
		// One RNG stream per node: the classic path shares one stream,
		// whose draw order would depend on cross-shard execution order.
		rngs := make([]*sim.RNG, cfg.Nodes)
		for i := range rngs {
			rngs[i] = sim.NewRNG(cfg.Seed ^ 0xfa17 ^ uint64(i)*0x9e3779b97f4a7c15)
		}
		delay := cfg.ReorderInjectDelay
		if delay == 0 {
			delay = 2_000
		}
		net.PerturbFn = func(m *network.Message) sim.Time {
			if m.VNet == coherence.VNetForward && rngs[m.Src].Bool(cfg.ReorderInjectProb) {
				return delay
			}
			return 0
		}
	}

	sn := safetynet.DefaultConfig(cfg.Nodes, cfg.CheckpointInterval)
	applyLogBytes(&sn, cfg)
	mgr := safetynet.NewManager(k0, sn)
	coord := core.NewCoordinator(k0, mgr)

	sh := &shardRuntime{
		grp:        grp,
		shardOf:    shardOf,
		pendSet:    make([]bool, cfg.Shards),
		pendAt:     make([]sim.Time, cfg.Shards),
		pendNode:   make([]coherence.NodeID, cfg.Shards),
		pendReason: make([]string, cfg.Shards),
	}
	s := &System{Cfg: cfg, K: k0, Net: net, Mgr: mgr, Coord: coord, sh: sh}

	dir, err := directory.NewChecked(k0, net, directoryConfigFor(cfg), mgr)
	if err != nil {
		return nil, err
	}
	dir.PartitionOnShards(grp, shardOf)
	s.Dir = dir
	dir.OnMisSpeculationAt = s.deferMisSpeculation

	gens := make([]workload.Generator, cfg.Nodes)
	for i := range gens {
		gens[i] = workload.New(cfg.Workload, i, cfg.Nodes, cfg.Seed)
	}
	s.Pool = processor.NewPool(k0, cfg.Nodes, dir.Access, gens)
	s.Pool.PartitionOnShards(grp, shardOf)

	coord.ResetFn = func() {
		net.Reset()
		dir.ResetTransients()
	}
	coord.RestoreFn = func(snapshot interface{}) {
		s.Pool.RestoreAll(snapshot.([]processor.Snapshot))
	}
	coord.ResumeFn = func(at sim.Time) {
		s.noteRecoveryOutage(at)
		s.Pool.Resume(at)
	}
	if cfg.Net.Routing == network.Adaptive {
		// The policy's timer must fire at a window edge: toggling
		// routing policy is visible to every shard.
		coord.AddPolicy(&core.DisableAdaptiveRouting{K: grp, Net: net, ReenableAfter: cfg.AdaptiveDisableWindow})
	}
	ssLimit := cfg.SlowStartLimit
	if ssLimit <= 0 {
		ssLimit = 1
	}
	coord.AddPolicy(&core.SlowStart{K: grp, Limiter: s.Pool, Limit: ssLimit, Normal: 0, Window: cfg.SlowStartWindow})
	coord.PolicyExempt = func(reason string) bool { return reason == "injected" }

	grp.PreControl = func(now sim.Time) {
		s.commitDeferredRecoveries(now)
		// Log backpressure, sharded flavor: the pressure flags are
		// written by each node's owning shard mid-window (never read
		// there), so the edge is the first safe point to observe them
		// and force an early checkpoint. The classic path uses
		// Manager.OnPressure instead.
		s.forceCheckpoint()
	}
	grp.PostControl = func(sim.Time) { s.Pool.GrantWaiting() }
	return s, nil
}

// deferMisSpeculation records a protocol-detected mis-speculation from
// mid-window shard context. Only the detecting shard's slot is written,
// and only the first detection per window is kept (events within a
// shard execute in time order, so the first is the earliest). The
// handler that detected it drops its message and execution continues to
// the edge; the rollback there discards everything the doomed window
// touched, so the deferral costs at most one window of extra detection
// latency, identically at every shard count.
func (s *System) deferMisSpeculation(node coherence.NodeID, reason string) {
	sh := s.sh
	shard := sh.shardOf[node]
	if sh.pendSet[shard] {
		return
	}
	sh.pendSet[shard] = true
	sh.pendAt[shard] = sh.grp.Kernel(shard).Now()
	sh.pendNode[shard] = node
	sh.pendReason[shard] = reason
}

// commitDeferredRecoveries runs at every window edge (PreControl,
// before scheduled control actions): it promotes the earliest pending
// detection — ties broken by node id, so the choice is canonical — to
// a coordinator recovery and clears the rest, which the single
// rollback disposes of.
func (s *System) commitDeferredRecoveries(sim.Time) {
	sh := s.sh
	best := -1
	for i := range sh.pendSet {
		if !sh.pendSet[i] {
			continue
		}
		if best < 0 || sh.pendAt[i] < sh.pendAt[best] ||
			(sh.pendAt[i] == sh.pendAt[best] && sh.pendNode[i] < sh.pendNode[best]) {
			best = i
		}
	}
	if best < 0 {
		return
	}
	reason := sh.pendReason[best]
	at := sh.pendAt[best]
	for i := range sh.pendSet {
		sh.pendSet[i] = false
	}
	// The nominal detection time is the mid-window moment the shard saw
	// it; passing it through charges the edge-deferral to the
	// recovery-latency distribution.
	s.Coord.TriggerMisSpeculationAt(reason, at)
}

// startSharded is Start for the sharded path: identical structure to
// the classic one, with every global cadence — checkpoint attempts,
// watchdog scans, recovery injection — scheduled as window-edge control
// instead of kernel events.
func (s *System) startSharded() {
	grp := s.sh.grp
	s.startedAt = grp.Now()
	s.ckptInterval = s.Cfg.CheckpointInterval
	s.Mgr.TakeCheckpoint(s.Pool.SnapshotAll())
	if s.OnCheckpoint != nil {
		s.OnCheckpoint()
	}
	s.Pool.Start()

	s.scheduleCheckpoint(s.Cfg.CheckpointInterval)
	if s.Cfg.TimeoutCycles > 0 {
		interval := s.Cfg.CheckpointInterval / 4
		var tick func()
		tick = func() {
			if _, ok := s.Dir.TimeoutScan(); ok {
				s.Dir.NoteTimeout()
				s.Coord.TriggerMisSpeculation("deadlock-timeout")
			}
			grp.After(interval, tick)
		}
		grp.After(interval, tick)
	}
	s.startFaults(grp)
}

// attemptCheckpointSharded mirrors attemptCheckpoint on edge control:
// pause, poll the drain once per edge (the classic path polls every 20
// cycles; here the edge cadence is the window), checkpoint, then resume
// — or hold the pool in the log stall if the logs are still at capacity
// (stallForLogSpaceSharded, the overflow backpressure fix).
func (s *System) attemptCheckpointSharded() {
	if s.checkpointing {
		return
	}
	s.checkpointing = true
	s.checkpointGen++
	grp := s.sh.grp
	began := grp.Now()
	var poll func()
	poll = func() {
		if s.Coord.InRecovery() {
			grp.ControlAt(s.Coord.ResumeAt()+1, poll)
			return
		}
		s.Pool.Pause()
		if s.inFlight() == 0 {
			s.occAtCkpt = s.Mgr.MaxOccupancyEntries()
			s.Mgr.TakeCheckpointWindow(s.Pool.SnapshotAll(), s.validationWindow())
			if s.OnCheckpoint != nil {
				s.OnCheckpoint()
			}
			s.checkpointStall.Add(uint64(grp.Now() - began))
			if s.Mgr.PressureSignal() {
				s.stallForLogSpaceSharded()
				return
			}
			s.finishCheckpoint()
			return
		}
		grp.After(1, poll) // re-check at the next edge
	}
	poll()
}

// stallForLogSpaceSharded mirrors stallForLogSpace on edge control,
// polling the commit once per window edge instead of every 20 cycles.
func (s *System) stallForLogSpaceSharded() {
	grp := s.sh.grp
	began := grp.Now()
	s.logStalled = true
	s.inLogStall = true
	s.stallBegan = began
	deadline := began + s.validationWindow()
	var wait func()
	wait = func() {
		if s.Coord.InRecovery() {
			grp.ControlAt(s.Coord.ResumeAt()+1, wait)
			return
		}
		s.Pool.Pause()
		s.Mgr.CommitNow()
		pressured := s.Mgr.PressureSignal()
		if pressured && grp.Now() < deadline {
			grp.After(1, wait)
			return
		}
		s.logStallCycles += uint64(grp.Now() - began)
		s.inLogStall = false
		if pressured {
			s.checkpointing = false
			s.attemptCheckpointSharded()
			return
		}
		s.finishCheckpoint()
	}
	wait()
}
