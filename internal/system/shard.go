// Conservative-window parallel intra-run simulation (Config.Shards).
//
// The torus splits into an R×C grid of rectangular tiles (TileGrid
// auto-factors the count into near-square tiles; ShardRows/ShardCols
// pin the shape); each tile owns its nodes' processors, caches,
// cache/directory controllers and switches, all scheduled on the tile's
// own calendar-queue kernel. Tiles advance in lockstep lookahead
// windows of the network's minimum hop latency (sim.Shards);
// switch-to-switch message arrivals — the only cross-tile interaction
// the model has — travel through the group's FIFO boundary queues. A
// one-hop message can only reach the same tile or a torus-adjacent tile
// (wrap edges included), so the group's lookahead table activates just
// the 5-neighborhood pairs (self + N/S/E/W, deduped on degenerate
// grids): the per-edge drain scan is O(5N) instead of O(N^2), which is
// what keeps window overhead flat on the road to 32x32 tilings.
//
// Everything global runs at window edges, single-threaded, with every
// kernel quiesced at the same instant:
//
//   - checkpoint orchestration (pause, drain-poll, take, resume);
//   - recoveries: a mis-speculation detected mid-window is deferred to
//     the next edge (at most one window of extra detection latency —
//     the whole window's state is discarded by the rollback anyway);
//   - the transaction-timeout watchdog (a scan of every node's TBEs);
//   - slow-start token grants and the forward-progress policy timers.
//
// Determinism: shard-local execution is sequential; boundary arrivals
// enter kernels at deterministic edges in deterministic per-link FIFO
// order (same-shard links included, so bucket positions cannot depend
// on where the partition boundary falls); global control runs at
// deterministic edge times; and all statistics are exact integer
// accumulators striped per shard or per node. Results are therefore
// bit-identical at every shard count — the equivalence tests and the
// CI parallel-determinism lane hold the project to it.
package system

import (
	"specsimp/internal/coherence"
	"specsimp/internal/core"
	"specsimp/internal/directory"
	"specsimp/internal/network"
	"specsimp/internal/processor"
	"specsimp/internal/safetynet"
	"specsimp/internal/sim"
	"specsimp/internal/workload"
)

// shardRuntime is the per-system state of the sharded execution mode.
type shardRuntime struct {
	grp     *sim.Shards
	shardOf []int

	// Deferred mis-speculations: one slot per shard holding the
	// (at, node)-minimal detection of the current window. The
	// detecting shard writes its own slot mid-window; the window edge
	// commits the globally earliest one as the recovery and clears all
	// (a single rollback disposes of every coalesced detection, exactly
	// as an immediate recovery would have).
	pendSet    []bool
	pendAt     []sim.Time
	pendNode   []coherence.NodeID
	pendReason []string
}

// TileGrid factors `shards` into the R×C tile grid buildSharded uses on
// a w×h torus: among factorizations with R dividing the height and C
// the width, it picks the one whose tiles are closest to square
// (minimizing |tileW - tileH|), preferring more columns on ties — the
// legacy column-strip orientation, so shards=2 on 4x4 still means two
// 2x4 strips. ok is false when no factorization divides the torus.
// Exported so sweep drivers can clamp a requested count to the nearest
// legal one exactly the way the build will factor it.
func TileGrid(w, h, shards int) (r, c int, ok bool) {
	bestSkew := -1
	for r1 := 1; r1 <= shards; r1++ {
		if shards%r1 != 0 || h%r1 != 0 {
			continue
		}
		c1 := shards / r1
		if w%c1 != 0 {
			continue
		}
		skew := w/c1 - h/r1
		if skew < 0 {
			skew = -skew
		}
		// r1 ascends, so c1 descends: the first best has the most columns.
		if bestSkew < 0 || skew < bestSkew {
			r, c, bestSkew = r1, c1, skew
		}
	}
	return r, c, bestSkew >= 0
}

// shardGrid resolves the tile grid for a validated config: the explicit
// ShardRows×ShardCols when pinned, else the TileGrid auto-factorization.
func shardGrid(cfg Config) (r, c int) {
	if cfg.ShardRows > 0 {
		return cfg.ShardRows, cfg.ShardCols
	}
	r, c, _ = TileGrid(cfg.Net.Width, cfg.Net.Height, cfg.Shards)
	return r, c
}

// tileMap assigns node (x, y) of a w×h torus to tile (y/tileH)*c +
// x/tileW of an r×c tile grid.
func tileMap(w, h, r, c int) []int {
	tileW, tileH := w/c, h/r
	of := make([]int, w*h)
	for n := range of {
		x, y := n%w, n/w
		of[n] = (y/tileH)*c + x/tileW
	}
	return of
}

// tileLookahead builds the per-pair lookahead table for an r×c tile
// grid: every directed pair a one-hop switch-to-switch message can
// couple — a tile with itself and with its four torus neighbors (the
// only places a 4-connected node's neighbor can live) — carries the
// minimum hop latency; every other pair is inactive (0), pruning its
// boundary queue from the edge scan. Wrap-around and degenerate grids
// (single row/column, two rows/columns where both wrap neighbors are
// the same tile) fall out of the modular arithmetic: writing the same
// floor twice is idempotent.
//
// All active floors equal minHop because every message class, data
// (72B) included, can cross any adjacent tile edge; the window — the
// min over active floors — therefore cannot widen past minHop, and a
// corner node's one-hop neighbor is the proof (see DESIGN.md). What
// protocol structure does buy is the inactive pairs above.
func tileLookahead(r, c int, minHop sim.Time) [][]sim.Time {
	n := r * c
	look := make([][]sim.Time, n)
	for i := range look {
		look[i] = make([]sim.Time, n)
	}
	for ty := 0; ty < r; ty++ {
		for tx := 0; tx < c; tx++ {
			dst := ty*c + tx
			look[dst][dst] = minHop
			for _, d := range [4][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
				sy := (ty + d[0] + r) % r
				sx := (tx + d[1] + c) % c
				look[dst][sy*c+sx] = minHop
			}
		}
	}
	return look
}

// buildSharded is BuildChecked's Shards >= 1 path for directory kinds.
// The machine it assembles is the same as the classic one, re-homed
// onto per-strip kernels; ValidateConfig has already vetted geometry,
// kind and network features.
func buildSharded(cfg Config) (*System, error) {
	window := cfg.Net.MinHopLatency()
	rows, cols := shardGrid(cfg)
	grp := sim.NewShards(cfg.Shards, window)
	grp.SetLookahead(tileLookahead(rows, cols, window))
	shardOf := tileMap(cfg.Net.Width, cfg.Net.Height, rows, cols)
	k0 := grp.Kernel(0)

	net, err := network.NewOnShards(grp, cfg.Net, shardOf)
	if err != nil {
		return nil, err
	}
	if cfg.ReorderInjectProb > 0 {
		// One RNG stream per node: the classic path shares one stream,
		// whose draw order would depend on cross-shard execution order.
		rngs := make([]*sim.RNG, cfg.Nodes)
		for i := range rngs {
			rngs[i] = sim.NewRNG(cfg.Seed ^ 0xfa17 ^ uint64(i)*0x9e3779b97f4a7c15)
		}
		delay := cfg.ReorderInjectDelay
		if delay == 0 {
			delay = 2_000
		}
		net.PerturbFn = func(m *network.Message) sim.Time {
			if m.VNet == coherence.VNetForward && rngs[m.Src].Bool(cfg.ReorderInjectProb) {
				return delay
			}
			return 0
		}
	}

	sn := safetynet.DefaultConfig(cfg.Nodes, cfg.CheckpointInterval)
	applyLogBytes(&sn, cfg)
	mgr := safetynet.NewManager(k0, sn)
	coord := core.NewCoordinator(k0, mgr)

	sh := &shardRuntime{
		grp:        grp,
		shardOf:    shardOf,
		pendSet:    make([]bool, cfg.Shards),
		pendAt:     make([]sim.Time, cfg.Shards),
		pendNode:   make([]coherence.NodeID, cfg.Shards),
		pendReason: make([]string, cfg.Shards),
	}
	s := &System{Cfg: cfg, K: k0, Net: net, Mgr: mgr, Coord: coord, sh: sh}

	dir, err := directory.NewChecked(k0, net, directoryConfigFor(cfg), mgr)
	if err != nil {
		return nil, err
	}
	dir.PartitionOnShards(grp, shardOf)
	s.Dir = dir
	dir.OnMisSpeculationAt = s.deferMisSpeculation

	gens := make([]workload.Generator, cfg.Nodes)
	for i := range gens {
		gens[i] = workload.New(cfg.Workload, i, cfg.Nodes, cfg.Seed)
		if cfg.Recorder != nil {
			gens[i] = cfg.Recorder.Wrap(i, gens[i])
		}
	}
	s.Pool = processor.NewPool(k0, cfg.Nodes, dir.Access, gens)
	s.Pool.PartitionOnShards(grp, shardOf)

	coord.ResetFn = func() {
		net.Reset()
		dir.ResetTransients()
	}
	coord.RestoreFn = func(snapshot interface{}) {
		s.Pool.RestoreAll(snapshot.([]processor.Snapshot))
	}
	coord.ResumeFn = func(at sim.Time) {
		s.noteRecoveryOutage(at)
		s.Pool.Resume(at)
	}
	if cfg.Net.Routing == network.Adaptive {
		// The policy's timer must fire at a window edge: toggling
		// routing policy is visible to every shard.
		coord.AddPolicy(&core.DisableAdaptiveRouting{K: grp, Net: net, ReenableAfter: cfg.AdaptiveDisableWindow})
	}
	ssLimit := cfg.SlowStartLimit
	if ssLimit <= 0 {
		ssLimit = 1
	}
	coord.AddPolicy(&core.SlowStart{K: grp, Limiter: s.Pool, Limit: ssLimit, Normal: 0, Window: cfg.SlowStartWindow})
	coord.PolicyExempt = func(reason string) bool { return reason == "injected" }

	grp.PreControl = func(now sim.Time) {
		s.commitDeferredRecoveries(now)
		// Log backpressure, sharded flavor: the pressure flags are
		// written by each node's owning shard mid-window (never read
		// there), so the edge is the first safe point to observe them
		// and force an early checkpoint. The classic path uses
		// Manager.OnPressure instead.
		s.forceCheckpoint()
	}
	grp.PostControl = func(sim.Time) { s.Pool.GrantWaiting() }
	return s, nil
}

// deferMisSpeculation records a protocol-detected mis-speculation from
// mid-window shard context. Only the detecting shard's slot is written,
// and it keeps the canonical minimum by (at, node) — not merely the
// first detection seen. Events within a shard execute in time order, so
// the first detection already has the minimal time; the node tie-break
// matters when two detections share a cycle, because their execution
// order within a bucket depends on insertion order, which the tiling
// can shift. Canonicalizing here makes the committed recovery
// tiling-invariant by construction, matching the cross-shard tie-break
// commitDeferredRecoveries applies. The handler that detected it drops
// its message and execution continues to the edge; the rollback there
// discards everything the doomed window touched, so the deferral costs
// at most one window of extra detection latency, identically at every
// tile count.
func (s *System) deferMisSpeculation(node coherence.NodeID, reason string) {
	sh := s.sh
	shard := sh.shardOf[node]
	at := sh.grp.Kernel(shard).Now()
	if sh.pendSet[shard] && (sh.pendAt[shard] < at ||
		(sh.pendAt[shard] == at && sh.pendNode[shard] <= node)) {
		return
	}
	sh.pendSet[shard] = true
	sh.pendAt[shard] = at
	sh.pendNode[shard] = node
	sh.pendReason[shard] = reason
}

// commitDeferredRecoveries runs at every window edge (PreControl,
// before scheduled control actions): it promotes the earliest pending
// detection — ties broken by node id, so the choice is canonical — to
// a coordinator recovery and clears the rest, which the single
// rollback disposes of.
func (s *System) commitDeferredRecoveries(sim.Time) {
	sh := s.sh
	best := -1
	for i := range sh.pendSet {
		if !sh.pendSet[i] {
			continue
		}
		if best < 0 || sh.pendAt[i] < sh.pendAt[best] ||
			(sh.pendAt[i] == sh.pendAt[best] && sh.pendNode[i] < sh.pendNode[best]) {
			best = i
		}
	}
	if best < 0 {
		return
	}
	reason := sh.pendReason[best]
	at := sh.pendAt[best]
	for i := range sh.pendSet {
		sh.pendSet[i] = false
	}
	// The nominal detection time is the mid-window moment the shard saw
	// it; passing it through charges the edge-deferral to the
	// recovery-latency distribution.
	s.Coord.TriggerMisSpeculationAt(reason, at)
}

// startSharded is Start for the sharded path: identical structure to
// the classic one, with every global cadence — checkpoint attempts,
// watchdog scans, recovery injection — scheduled as window-edge control
// instead of kernel events.
func (s *System) startSharded() {
	grp := s.sh.grp
	s.startedAt = grp.Now()
	s.ckptInterval = s.Cfg.CheckpointInterval
	s.Mgr.TakeCheckpoint(s.Pool.SnapshotAll())
	if s.OnCheckpoint != nil {
		s.OnCheckpoint()
	}
	s.Pool.Start()

	s.scheduleCheckpoint(s.Cfg.CheckpointInterval)
	if s.Cfg.TimeoutCycles > 0 {
		interval := s.Cfg.CheckpointInterval / 4
		var tick func()
		tick = func() {
			if _, ok := s.Dir.TimeoutScan(); ok {
				s.Dir.NoteTimeout()
				s.Coord.TriggerMisSpeculation("deadlock-timeout")
			}
			grp.After(interval, tick)
		}
		grp.After(interval, tick)
	}
	s.startFaults(grp)
}

// attemptCheckpointSharded mirrors attemptCheckpoint on edge control:
// pause, poll the drain once per edge (the classic path polls every 20
// cycles; here the edge cadence is the window), checkpoint, then resume
// — or hold the pool in the log stall if the logs are still at capacity
// (stallForLogSpaceSharded, the overflow backpressure fix).
func (s *System) attemptCheckpointSharded() {
	if s.checkpointing {
		return
	}
	s.checkpointing = true
	s.checkpointGen++
	grp := s.sh.grp
	began := grp.Now()
	var poll func()
	poll = func() {
		if s.Coord.InRecovery() {
			grp.ControlAt(s.Coord.ResumeAt()+1, poll)
			return
		}
		s.Pool.Pause()
		if s.inFlight() == 0 {
			s.occAtCkpt = s.Mgr.MaxOccupancyEntries()
			s.Mgr.TakeCheckpointWindow(s.Pool.SnapshotAll(), s.validationWindow())
			if s.OnCheckpoint != nil {
				s.OnCheckpoint()
			}
			s.checkpointStall.Add(uint64(grp.Now() - began))
			if s.Mgr.PressureSignal() {
				s.stallForLogSpaceSharded()
				return
			}
			s.finishCheckpoint()
			return
		}
		grp.After(1, poll) // re-check at the next edge
	}
	poll()
}

// stallForLogSpaceSharded mirrors stallForLogSpace on edge control,
// polling the commit once per window edge instead of every 20 cycles.
func (s *System) stallForLogSpaceSharded() {
	grp := s.sh.grp
	began := grp.Now()
	s.logStalled = true
	s.inLogStall = true
	s.stallBegan = began
	deadline := began + s.validationWindow()
	var wait func()
	wait = func() {
		if s.Coord.InRecovery() {
			grp.ControlAt(s.Coord.ResumeAt()+1, wait)
			return
		}
		s.Pool.Pause()
		s.Mgr.CommitNow()
		pressured := s.Mgr.PressureSignal()
		if pressured && grp.Now() < deadline {
			grp.After(1, wait)
			return
		}
		s.logStallCycles += uint64(grp.Now() - began)
		s.inLogStall = false
		if pressured {
			s.checkpointing = false
			s.attemptCheckpointSharded()
			return
		}
		s.finishCheckpoint()
	}
	wait()
}
