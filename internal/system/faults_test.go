package system

import (
	"reflect"
	"testing"

	"specsimp/internal/workload"
)

// regimeBase configures a small directory machine under one sustained
// fault regime: 40 faults/s on a 60k-cycle compressed clock lands a
// fault every ~1.5k cycles, far denser than the ~400-cycle recovery
// latency alone would force, so every regime exercises the
// fault-during-recovery deferral path.
func regimeBase(regime FaultRegime) Config {
	cfg := DefaultConfigSized(DirectorySpec, workload.OLTP, 4, 4)
	cfg.CheckpointInterval = 2_000
	cfg.TimeoutCycles = 0 // isolate the injected-fault schedule
	cfg.SlowStartWindow = 5_000
	cfg.CyclesPerSecond = 60_000
	cfg.FaultRegime = regime
	cfg.FaultRate = 40
	return cfg
}

// TestFaultRegimesBitIdenticalAcrossShards extends the sharding
// tentpole property to the sustained-fault layer: every regime's entire
// Results — including the new recovery-latency and rollback-distance
// distributions — is deep-equal at 1, 2 and 4 shards, and the classic
// serial path drives the same regimes (its schedule may differ; it must
// still recover and populate the distributions).
func TestFaultRegimesBitIdenticalAcrossShards(t *testing.T) {
	for _, regime := range []FaultRegime{FaultStorm, FaultRegional, FaultRepeat} {
		cfg := regimeBase(regime)
		ref := runSharded(t, cfg, 1, 60_000)
		if ref.Recoveries == 0 {
			t.Fatalf("%s: regime produced no recoveries; the run proves nothing", regime)
		}
		if ref.RecoveryLatency.N != ref.Recoveries {
			t.Fatalf("%s: %d recoveries but %d latency observations — a recovery was dropped or double-counted",
				regime, ref.Recoveries, ref.RecoveryLatency.N)
		}
		for _, n := range []int{2, 4} {
			if got := runSharded(t, cfg, n, 60_000); !reflect.DeepEqual(got, ref) {
				t.Errorf("%s: results at %d shards diverged from 1 shard:\n 1: %+v\n%d: %+v", regime, n, ref, n, got)
			}
		}

		classic, err := RunOneChecked(cfg, 60_000)
		if err != nil {
			t.Fatalf("%s classic: %v", regime, err)
		}
		if classic.Recoveries == 0 || classic.RecoveryLatency.N != classic.Recoveries {
			t.Errorf("%s classic: recoveries=%d latency observations=%d",
				regime, classic.Recoveries, classic.RecoveryLatency.N)
		}
	}
}

// TestRepeatRegimeAftershocksDeferThroughRecovery: the repeat regime
// aims an aftershock at the midpoint of each recovery, so some faults
// must wait out the in-progress recovery before delivering. Their
// nominal (mid-recovery) detection times are carried through, which
// shows up as recovery latencies strictly above the fixed recovery
// cost — the observable proof that deferred faults are charged
// honestly rather than dropped or re-stamped.
func TestRepeatRegimeAftershocksDeferThroughRecovery(t *testing.T) {
	cfg := regimeBase(FaultRepeat)
	res := runSharded(t, cfg, 1, 60_000)
	minLat := uint64(cfg.CheckpointInterval / 5) // safetynet.DefaultConfig's recovery latency
	if res.RecoveryLatency.Max <= minLat {
		t.Fatalf("max recovery latency %d never exceeded the fixed recovery cost %d; no aftershock was deferred",
			res.RecoveryLatency.Max, minLat)
	}
	if res.RecoveryReasons["repeat"] != res.Recoveries {
		t.Fatalf("reasons %v vs %d recoveries", res.RecoveryReasons, res.Recoveries)
	}
}

// TestInjectedFaultsExactCountWithoutCollisions pins the periodic
// injector's count in the easy case: with the inject period far above
// the recovery latency no tick lands during a recovery, so exactly one
// recovery per grid tick must appear — on the classic path and
// identically at every shard count.
func TestInjectedFaultsExactCountWithoutCollisions(t *testing.T) {
	cfg := DefaultConfigSized(DirectorySpec, workload.OLTP, 4, 4)
	cfg.CheckpointInterval = 2_000
	cfg.TimeoutCycles = 0
	cfg.SlowStartWindow = 1_000
	cfg.InjectRecoveryEvery = 5_000
	const cycles, want = 61_000, 12 // ticks at 5k..60k

	classic, err := RunOneChecked(cfg, cycles)
	if err != nil {
		t.Fatal(err)
	}
	if classic.RecoveryReasons["injected"] != want {
		t.Fatalf("classic: %d injected recoveries, want exactly %d (%v)",
			classic.RecoveryReasons["injected"], want, classic.RecoveryReasons)
	}
	ref := runSharded(t, cfg, 1, cycles)
	if ref.RecoveryReasons["injected"] != want {
		t.Fatalf("sharded: %d injected recoveries, want exactly %d", ref.RecoveryReasons["injected"], want)
	}
	for _, n := range []int{2, 4} {
		if got := runSharded(t, cfg, n, cycles); !reflect.DeepEqual(got, ref) {
			t.Errorf("results at %d shards diverged from 1 shard", n)
		}
	}
}

// TestInjectedFaultsSurviveRecoveryCollisions is the regression for the
// dropped-fault bug: with the inject period (700) well below the
// recovery latency (2000), most ticks land while a recovery is already
// in progress. They must defer and coalesce — never vanish — so
// recoveries chain back-to-back: after every resume the parked fault
// redelivers within a cycle, bounding the gap between consecutive
// recoveries by one recovery latency plus one period. Before the fix,
// mid-recovery ticks were silently discarded.
func TestInjectedFaultsSurviveRecoveryCollisions(t *testing.T) {
	cfg := DefaultConfigSized(DirectorySpec, workload.OLTP, 4, 4)
	cfg.CheckpointInterval = 10_000 // recovery latency = interval/5 = 2000
	cfg.TimeoutCycles = 0
	cfg.SlowStartWindow = 1_000
	cfg.InjectRecoveryEvery = 700
	const cycles = 60_000
	latency := uint64(cfg.CheckpointInterval / 5)

	check := func(name string, r Results) {
		t.Helper()
		// No starvation: the chain sustains at least one recovery per
		// latency+period window (generous slack for checkpoint pauses).
		min := uint64(cycles) / (latency + 2*uint64(cfg.InjectRecoveryEvery))
		if r.RecoveryReasons["injected"] < min {
			t.Fatalf("%s: only %d injected recoveries over %d cycles (want >= %d); deferred faults are being dropped",
				name, r.RecoveryReasons["injected"], cycles, min)
		}
		// No double-count: at most one recovery per nominal grid tick.
		if max := uint64(cycles) / uint64(cfg.InjectRecoveryEvery); r.RecoveryReasons["injected"] > max {
			t.Fatalf("%s: %d injected recoveries exceed the %d nominal faults", name, r.RecoveryReasons["injected"], max)
		}
		if r.RecoveryLatency.N != r.Recoveries {
			t.Fatalf("%s: %d recoveries vs %d latency observations", name, r.Recoveries, r.RecoveryLatency.N)
		}
		// Deferred deliveries keep their nominal detection time, so some
		// observed latencies must exceed the fixed recovery cost.
		if r.RecoveryLatency.Max <= latency {
			t.Fatalf("%s: max recovery latency %d never exceeded the fixed cost %d; deferral is not being charged",
				name, r.RecoveryLatency.Max, latency)
		}
	}
	classic, err := RunOneChecked(cfg, cycles)
	if err != nil {
		t.Fatal(err)
	}
	check("classic", classic)
	ref := runSharded(t, cfg, 1, cycles)
	check("sharded", ref)
	for _, n := range []int{2, 4} {
		if got := runSharded(t, cfg, n, cycles); !reflect.DeepEqual(got, ref) {
			t.Errorf("results at %d shards diverged from 1 shard", n)
		}
	}
}

// TestLogBackpressureStallsInsteadOfFreeOverflow is the regression for
// the log-overflow bug: with the per-node log shrunk to a handful of
// entries the machine must visibly pay for overflow — forced early
// checkpoints beyond the periodic cadence, stall cycles while waiting
// for validation to free space, counted overflows — while still making
// forward progress. With the cap removed, neither stalls nor overflows
// may appear. Both paths, bit-identical across shard counts.
func TestLogBackpressureStallsInsteadOfFreeOverflow(t *testing.T) {
	cfg := DefaultConfigSized(DirectorySpec, workload.OLTP, 4, 4)
	cfg.CheckpointInterval = 2_000
	cfg.TimeoutCycles = 0
	cfg.LogBytes = 6 * 72 // six entries per node
	const cycles = 60_000

	check := func(name string, r Results) {
		t.Helper()
		if r.LogOverflows == 0 {
			t.Fatalf("%s: tiny log never overflowed; the run proves nothing", name)
		}
		if r.LogStallCycles == 0 {
			t.Fatalf("%s: overflowing log produced no stall cycles — logging past capacity is free again", name)
		}
		if r.Instructions == 0 {
			t.Fatalf("%s: no forward progress under backpressure", name)
		}
		// A log this small stalls more than it runs: the stall must eat a
		// visible fraction of the run, not a token cycle or two.
		if r.LogStallCycles*10 < cycles {
			t.Fatalf("%s: only %d stall cycles over %d; backpressure is not holding the machine", name, r.LogStallCycles, cycles)
		}
	}
	classic, err := RunOneChecked(cfg, cycles)
	if err != nil {
		t.Fatal(err)
	}
	check("classic", classic)
	ref := runSharded(t, cfg, 1, cycles)
	check("sharded", ref)
	for _, n := range []int{2, 4} {
		if got := runSharded(t, cfg, n, cycles); !reflect.DeepEqual(got, ref) {
			t.Errorf("results at %d shards diverged from 1 shard", n)
		}
	}

	free := cfg
	free.LogBytes = -1 // unlimited
	r, err := RunOneChecked(free, cycles)
	if err != nil {
		t.Fatal(err)
	}
	if r.LogOverflows != 0 || r.LogStallCycles != 0 {
		t.Fatalf("unlimited log reported overflows=%d stalls=%d", r.LogOverflows, r.LogStallCycles)
	}
}
