// Package system assembles complete target machines: 16 nodes of
// processor + two-level cache hierarchy + coherence protocol (directory
// or snooping, full or speculatively simplified) + interconnect +
// SafetyNet + the speculation-for-simplicity coordinator (paper §5.1).
// It also implements the evaluation methodology: timed runs, checkpoint
// orchestration, recovery injection (Figure 4), and multi-run
// perturbation statistics (paper §5.2).
package system

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"specsimp/internal/coherence"
	"specsimp/internal/core"
	"specsimp/internal/directory"
	"specsimp/internal/network"
	"specsimp/internal/processor"
	"specsimp/internal/safetynet"
	"specsimp/internal/sim"
	"specsimp/internal/snoop"
	"specsimp/internal/stats"
	"specsimp/internal/workload"
)

// Kind selects the coherence protocol and its variant.
type Kind uint8

// System kinds.
const (
	// DirectoryFull is the complete directory protocol for unordered
	// networks — the non-speculative baseline.
	DirectoryFull Kind = iota
	// DirectorySpec is the §3.1 speculatively simplified directory
	// protocol relying on point-to-point ordering.
	DirectorySpec
	// SnoopFull is the complete snooping protocol.
	SnoopFull
	// SnoopSpec is the §3.2 snooping protocol with the corner case left
	// to speculation.
	SnoopSpec
)

func (k Kind) String() string {
	switch k {
	case DirectoryFull:
		return "directory-full"
	case DirectorySpec:
		return "directory-spec"
	case SnoopFull:
		return "snoop-full"
	default:
		return "snoop-spec"
	}
}

// IsDirectory reports whether the kind uses the directory protocol.
func (k Kind) IsDirectory() bool { return k == DirectoryFull || k == DirectorySpec }

// Config describes one experimental system (paper Table 2 defaults via
// DefaultConfig).
type Config struct {
	Kind  Kind
	Nodes int

	// Shards selects conservative-window parallel intra-run simulation
	// for directory kinds: the torus splits into an R×C grid of tiles,
	// each running its own event kernel, synchronized every
	// MinHopLatency cycles (see DESIGN.md "Parallel intra-run DES").
	// The grid is auto-factored from the count (TileGrid: tiles as
	// close to square as the geometry admits) unless ShardRows and
	// ShardCols pin it explicitly. Results are bit-identical at every
	// tile count >= 1 and every tile shape, including 1 (the serial
	// execution of the same windowed schedule). 0 — the default — is
	// the classic single-kernel path. The grid must divide the torus
	// (rows the height, columns the width); snooping kinds (globally
	// ordered bus) support only 0 or 1, both meaning the classic path.
	Shards int

	// ShardRows and ShardCols optionally pin the tile-grid
	// factorization (R rows × C columns). Zero means auto-factor from
	// Shards. When both are set and Shards is zero, Shards is derived
	// as their product; when Shards is also set, the product must match.
	ShardRows, ShardCols int

	Net network.Config
	Bus snoop.BusConfig // snooping address network

	// Sharers selects the directory entry's sharer-set representation
	// for directory kinds. The zero value is the exact full bitmap,
	// which caps the machine at 64 nodes; DefaultConfigSized picks a
	// legal format from the geometry (limited-pointer beyond 64 nodes).
	// SharerPointers and SharerClusterSize size the limited-pointer and
	// coarse-vector formats (0 = their defaults).
	Sharers           directory.SharerFormat
	SharerPointers    int
	SharerClusterSize int

	Workload workload.Profile
	Seed     uint64

	// Recorder, when non-nil, interposes on every node's workload
	// generator and logs the stream the run actually consumes (SafetyNet
	// rollbacks rewind the log too). specsim -record-trace sets it and
	// writes the result as a replayable trace file (workload/trace.go).
	Recorder *workload.TraceRecorder

	// CheckpointInterval is SafetyNet's cadence: cycles for the
	// directory system (Table 2: 100,000), ordered requests for the
	// snooping system (Table 2: 3,000) via SnoopCheckpointRequests.
	CheckpointInterval      sim.Time
	SnoopCheckpointRequests uint64

	// TimeoutCycles arms the transaction-timeout watchdog (paper: three
	// checkpoint intervals). 0 disables it.
	TimeoutCycles sim.Time

	// InjectRecoveryEvery periodically forces a recovery — the Figure 4
	// stress methodology. 0 disables injection.
	InjectRecoveryEvery sim.Time

	// FaultRegime selects the sustained-fault scheduler (see faults.go):
	// Poisson storms, correlated regional bursts, or repeat faults timed
	// to land during recovery. FaultRate is the regime's aggregate fault
	// arrival rate in faults per second of the compressed clock
	// (CyclesPerSecond maps it onto cycles). FaultNone disables the
	// scheduler; the legacy periodic injector above runs independently.
	FaultRegime FaultRegime
	FaultRate   float64

	// AdaptiveCheckpoint enables the closed-loop cadence controller for
	// directory kinds: the checkpoint interval halves under observed log
	// pressure and relaxes back toward CheckpointInterval when logs run
	// shallow, clamped to [interval/8, interval] (see
	// nextCheckpointDelay). Snooping kinds checkpoint on a request-count
	// cadence and reject it.
	AdaptiveCheckpoint bool

	// LogBytes overrides SafetyNet's per-node log capacity (0 = Table
	// 2's 512 KB; negative = unlimited). The availability experiment
	// shrinks it to exercise the log-overflow backpressure path.
	LogBytes int

	// SlowStartWindow is how long the post-recovery outstanding limit
	// (SlowStartLimit, default 1) lasts; AdaptiveDisableWindow is how
	// long adaptive routing stays off after a recovery (0 = forever,
	// the conservative knob).
	SlowStartWindow       sim.Time
	SlowStartLimit        int
	AdaptiveDisableWindow sim.Time

	// CyclesPerSecond maps wall-clock rates (recoveries/second) onto
	// simulated cycles. The paper's machine runs at 4 GHz; experiments
	// use a compressed clock, recorded in EXPERIMENTS.md.
	CyclesPerSecond float64

	// Cache geometry overrides (0 = paper Table 2 defaults). Small
	// caches raise eviction/writeback pressure for the race-hunting
	// experiments.
	L1Bytes, L1Ways int
	L2Bytes, L2Ways int

	// ReorderInjectProb amplifies network reordering for fault-
	// injection experiments: each ForwardedRequest-class message is
	// held at its source for ReorderInjectDelay cycles with this
	// probability, letting later messages overtake it. Natural
	// reorderings are rare (the paper's premise), so end-to-end tests
	// of the detect/recover/forward-progress path use this knob.
	ReorderInjectProb  float64
	ReorderInjectDelay sim.Time

	// derivedTimeout records the TimeoutCycles value DefaultConfigSized
	// derived from its checkpoint interval (the 3× coupling). Build and
	// ValidateConfig re-derive TimeoutCycles when a caller later moved
	// CheckpointInterval but left the timeout at the recorded
	// derivation — previously the stale 3×old-interval value silently
	// survived the override.
	derivedTimeout sim.Time
}

// DefaultConfig returns the paper's Table 2 system for the given kind
// and workload: 16 nodes on a 4x4 torus.
func DefaultConfig(kind Kind, wl workload.Profile) Config {
	return DefaultConfigSized(kind, wl, 4, 4)
}

// DefaultConfigSized returns the Table 2 system scaled to a w×h torus —
// the paper's machine at 4×4, the scaling study's 64-node machine at
// 8×8, the directory protocol up to 16×16 (256 nodes). Everything
// geometry-dependent derives from w and h: the torus networks, the
// snooping bus model (diameter-scaled, segmented beyond 64 nodes), the
// node count, and the directory sharer-set format (exact bitmap up to
// 64 nodes, limited-pointer with broadcast overflow beyond). Snooping
// systems stay capped at 64 nodes — ValidateConfig reports why.
func DefaultConfigSized(kind Kind, wl workload.Profile, w, h int) Config {
	cfg := Config{
		Kind:                    kind,
		Nodes:                   w * h,
		Sharers:                 directory.DefaultSharerFormat(w * h),
		Workload:                wl,
		Seed:                    1,
		CheckpointInterval:      100_000,
		SnoopCheckpointRequests: 3_000,
		SlowStartWindow:         200_000,
		AdaptiveDisableWindow:   0, // conservative: never re-enable
		CyclesPerSecond:         4e9,
	}
	switch kind {
	case DirectoryFull:
		// The full protocol tolerates reordering: pair it with the
		// adaptive network by default.
		cfg.Net = network.AdaptiveConfig(w, h, 0.8)
	case DirectorySpec:
		cfg.Net = network.AdaptiveConfig(w, h, 0.8)
		cfg.TimeoutCycles = 3 * cfg.CheckpointInterval
		cfg.derivedTimeout = cfg.TimeoutCycles
	default:
		// Snooping: the data network is an ordered-agnostic torus.
		cfg.Net = network.SafeStaticConfig(w, h, 0.8)
		cfg.Bus = snoop.ScaledBusConfig(w, h)
	}
	return cfg
}

// System is a built machine bound to a kernel.
type System struct {
	Cfg   Config
	K     *sim.Kernel
	Net   *network.Network
	Dir   *directory.Protocol // nil for snooping systems
	Snoop *snoop.Protocol     // nil for directory systems
	Bus   *snoop.Bus          // nil for directory systems
	Pool  *processor.Pool
	Mgr   *safetynet.Manager
	Coord *core.Coordinator

	// OnCheckpoint, when non-nil, runs immediately after every
	// checkpoint is taken — a point where the system is quiesced (no
	// in-flight transactions), which is exactly what invariant audits
	// require. The cross-protocol stress suite hooks it to call
	// AuditInvariants at every checkpoint. In sharded systems it runs
	// from window-edge control context with every shard quiesced.
	OnCheckpoint func()

	// sh is the intra-run sharding runtime (nil on the classic serial
	// path). See shard.go.
	sh *shardRuntime

	checkpointing   bool
	checkpointGen   uint64
	startedAt       sim.Time
	checkpointStall stats.Counter

	// Checkpoint cadence state: ckptInterval is the controller's current
	// interval (fixed at Cfg.CheckpointInterval unless
	// AdaptiveCheckpoint); ckptTimer is a generation token that lets a
	// pressure-forced early checkpoint cancel the pending periodic
	// attempt, so the cadence never forks into two chains. occAtCkpt is
	// the max per-node log occupancy sampled just before the last
	// checkpoint was taken — the epoch's peak, with the pool drained.
	// TakeCheckpointWindow commits (frees) entries, so sampling any later
	// would read the post-commit trough and the controller would relax
	// straight into pressure.
	ckptInterval sim.Time
	ckptTimer    uint64
	occAtCkpt    int

	// Log-stall accounting (the overflow backpressure fix): logStalled
	// feeds the cadence controller; inLogStall/stallBegan let Results
	// charge a stall still in progress at snapshot time.
	logStalled     bool
	inLogStall     bool
	stallBegan     sim.Time
	logStallCycles uint64

	// Degraded-mode accounting: outageCycles is time fully parked
	// between fault detection and recovery resume; degradedCycles is the
	// union of recovery-plus-slow-start windows (degradedUntil marks the
	// current window's end). All exact integers, updated only from the
	// recovery path (control context).
	outageCycles   uint64
	degradedCycles uint64
	degradedUntil  sim.Time
}

// Shards reports the effective intra-run shard count (1 for the
// classic serial path).
func (s *System) Shards() int {
	if s.sh == nil {
		return 1
	}
	return s.sh.grp.N()
}

// AuditInvariants verifies the active protocol's global coherence
// invariants (single writer, version agreement, memory currency). The
// system must be quiescent — call it from OnCheckpoint, or after a
// drained run.
func (s *System) AuditInvariants() error {
	if s.Dir != nil {
		return s.Dir.AuditInvariants()
	}
	return s.Snoop.AuditInvariants()
}

// MaxSnoopNodes caps snooping systems on a flat bus: every ordered
// request is broadcast to every node, so past this size the model
// measures address-network serialization rather than protocol behavior.
// The segmented address network (snoop.BusConfig with segments, as
// ScaledBusConfig builds past 64 nodes) stretches the credible range to
// MaxSegmentedSnoopNodes: local segment arbiters absorb the request
// traffic and only segment winners cross the ordered hub ring. Beyond
// that even a segmented broadcast saturates — every ordered request
// still reaches every node — and only the directory kinds scale further
// (sharer-set formats permitting).
const (
	MaxSnoopNodes          = 64
	MaxSegmentedSnoopNodes = 256
)

// ValidateConfig reports whether cfg describes a buildable machine:
// network geometry, node-count agreement, the directory sharer-set
// format's node ceiling, and the snooping size cap. It runs before any
// construction, so an oversize machine is an error the caller can
// report (e.g. per sweep design point), not a panic mid-build.
func ValidateConfig(cfg Config) error {
	cfg = normalizeConfig(cfg)
	if err := cfg.Workload.Validate(); err != nil {
		return err
	}
	if err := cfg.Net.Validate(); err != nil {
		return err
	}
	if cfg.Nodes != cfg.Net.NumNodes() {
		return fmt.Errorf("system: %d nodes vs %d network endpoints", cfg.Nodes, cfg.Net.NumNodes())
	}
	if err := validateShards(cfg); err != nil {
		return err
	}
	if err := validateFaults(cfg); err != nil {
		return err
	}
	if cfg.Kind.IsDirectory() {
		if cfg.TimeoutCycles > 0 && cfg.TimeoutCycles < cfg.CheckpointInterval {
			return fmt.Errorf("system: TimeoutCycles %d is shorter than CheckpointInterval %d — the watchdog would declare deadlock inside one normal checkpoint epoch; use a multiple of the interval (DefaultConfig derives 3×) or 0 to disarm", cfg.TimeoutCycles, cfg.CheckpointInterval)
		}
		return directoryConfigFor(cfg).Validate()
	}
	if cfg.Nodes > MaxSegmentedSnoopNodes {
		return fmt.Errorf("system: snooping systems cap at %d nodes even on the segmented address network (every ordered request still reaches every node); %d nodes needs a directory kind", MaxSegmentedSnoopNodes, cfg.Nodes)
	}
	if cfg.Nodes > MaxSnoopNodes {
		if !cfg.Bus.Segmented() {
			return fmt.Errorf("system: a flat snooping bus caps at %d nodes; %d nodes needs the segmented address network (snoop.ScaledBusConfig) or a directory kind", MaxSnoopNodes, cfg.Nodes)
		}
		if err := cfg.Bus.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// normalizeConfig re-derives defaults that DefaultConfig coupled to
// CheckpointInterval. DefaultConfigSized sets TimeoutCycles to three
// checkpoint intervals for DirectorySpec and records the derivation in
// derivedTimeout; a caller that then overrides CheckpointInterval
// without touching TimeoutCycles used to keep the stale 3×old-interval
// timeout silently. Both ValidateConfig and BuildChecked run this, so
// the timeout follows the interval unless explicitly overridden.
func normalizeConfig(cfg Config) Config {
	if cfg.derivedTimeout != 0 && cfg.TimeoutCycles == cfg.derivedTimeout {
		cfg.TimeoutCycles = 3 * cfg.CheckpointInterval
		cfg.derivedTimeout = cfg.TimeoutCycles
	}
	if cfg.Shards == 0 && cfg.ShardRows > 0 && cfg.ShardCols > 0 {
		cfg.Shards = cfg.ShardRows * cfg.ShardCols
	}
	return cfg
}

// validateFaults checks the sustained-fault and adaptive-cadence
// settings (faults.go) before construction.
func validateFaults(cfg Config) error {
	if cfg.FaultRegime > FaultRepeat {
		return fmt.Errorf("system: unknown FaultRegime %d", cfg.FaultRegime)
	}
	if cfg.FaultRegime != FaultNone {
		if cfg.FaultRate <= 0 {
			return fmt.Errorf("system: FaultRegime %s requires FaultRate > 0 (faults per second)", cfg.FaultRegime)
		}
		if cfg.CyclesPerSecond <= 0 {
			return fmt.Errorf("system: FaultRegime %s requires CyclesPerSecond > 0 to map FaultRate onto cycles", cfg.FaultRegime)
		}
	}
	if cfg.AdaptiveCheckpoint && !cfg.Kind.IsDirectory() {
		return fmt.Errorf("system: AdaptiveCheckpoint requires a directory kind (%s checkpoints on a request-count cadence, not a cycle interval)", cfg.Kind)
	}
	return nil
}

// validateShards checks the intra-run sharding request (Config.Shards,
// optionally pinned by ShardRows×ShardCols) against the machine: tile
// grid versus torus geometry, protocol kind, and the network features
// sharding can support. Run after normalizeConfig, which derives Shards
// from an explicit grid.
func validateShards(cfg Config) error {
	w, h := cfg.Net.Width, cfg.Net.Height
	switch {
	case cfg.Shards < 0:
		return fmt.Errorf("system: Shards must be non-negative, got %d", cfg.Shards)
	case (cfg.ShardRows > 0) != (cfg.ShardCols > 0) || cfg.ShardRows < 0 || cfg.ShardCols < 0:
		return fmt.Errorf("system: ShardRows and ShardCols must be set together as a positive R×C grid, got %dx%d", cfg.ShardRows, cfg.ShardCols)
	case cfg.ShardRows > 0 && cfg.ShardRows*cfg.ShardCols != cfg.Shards:
		return fmt.Errorf("system: explicit %dx%d tile grid is %d tiles but Shards is %d", cfg.ShardRows, cfg.ShardCols, cfg.ShardRows*cfg.ShardCols, cfg.Shards)
	case cfg.Shards <= 1 && !cfg.Kind.IsDirectory():
		return nil // 0 and 1 are the classic serial path for snooping kinds
	case cfg.Shards == 0:
		return nil
	case !cfg.Kind.IsDirectory():
		return fmt.Errorf("system: %d intra-run shards requested but %s simulates serially: the snooping bus is a single globally ordered resource (use -shards 1, or a directory kind)", cfg.Shards, cfg.Kind)
	case cfg.ShardRows > 0 && (h%cfg.ShardRows != 0 || w%cfg.ShardCols != 0):
		return fmt.Errorf("system: a %dx%d tile grid does not divide the %dx%d torus (rows must divide the height %d, columns the width %d); %s", cfg.ShardRows, cfg.ShardCols, w, h, h, w, tileGridHint(w, h, cfg.Shards))
	case cfg.Net.BufferSize != 0 || cfg.Net.EndpointBufferSize != 0:
		return fmt.Errorf("system: intra-run sharding requires unlimited network buffering (zero-latency credit returns have no conservative lookahead); this network has BufferSize=%d EndpointBufferSize=%d", cfg.Net.BufferSize, cfg.Net.EndpointBufferSize)
	}
	if cfg.ShardRows == 0 {
		if _, _, ok := TileGrid(w, h, cfg.Shards); !ok {
			return fmt.Errorf("system: %d shards admit no R×C tile grid on the %dx%d torus (rows must divide the height %d, columns the width %d); %s", cfg.Shards, w, h, h, w, tileGridHint(w, h, cfg.Shards))
		}
	}
	return nil
}

// tileGridHint renders the legal tile factorizations near a requested
// count for an error message: the grids of the requested count if any
// exist, otherwise the legal counts (with their grids) around it.
func tileGridHint(w, h, shards int) string {
	if opts := tileOptions(w, h, shards); len(opts) > 0 {
		return fmt.Sprintf("legal %d-tile grids: %s", shards, strings.Join(opts, " "))
	}
	var counts []string
	for n := 1; n <= w*h && len(counts) < 8; n++ {
		if opts := tileOptions(w, h, n); len(opts) > 0 {
			counts = append(counts, fmt.Sprintf("%d (%s)", n, strings.Join(opts, " ")))
		}
	}
	return "legal tile counts: " + strings.Join(counts, ", ") + ", …"
}

// tileOptions lists every R×C factorization of `shards` tiles that
// divides a w×h torus, as "RxC" strings in ascending row order.
func tileOptions(w, h, shards int) []string {
	var opts []string
	for r := 1; r <= shards; r++ {
		if shards%r != 0 || h%r != 0 {
			continue
		}
		if c := shards / r; w%c == 0 {
			opts = append(opts, fmt.Sprintf("%dx%d", r, c))
		}
	}
	return opts
}

// directoryConfigFor derives the directory protocol configuration for a
// directory-kind system config (shared by ValidateConfig and Build).
func directoryConfigFor(cfg Config) directory.Config {
	v := directory.Full
	if cfg.Kind == DirectorySpec {
		v = directory.Spec
	}
	dcfg := directory.DefaultConfig(cfg.Nodes, v)
	dcfg.Sharers = cfg.Sharers
	dcfg.SharerPointers = cfg.SharerPointers
	dcfg.SharerClusterSize = cfg.SharerClusterSize
	dcfg.TimeoutCycles = cfg.TimeoutCycles
	overrideCaches(&dcfg.L1Bytes, &dcfg.L1Ways, &dcfg.L2Bytes, &dcfg.L2Ways, cfg)
	return dcfg
}

// Build constructs the system. It panics on invalid configuration;
// BuildChecked returns the error instead.
func Build(cfg Config) *System {
	s, err := BuildChecked(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// BuildChecked constructs the system, reporting configuration problems
// (oversize machines, bad geometry) as errors before any kernel or
// network is built.
func BuildChecked(cfg Config) (*System, error) {
	cfg = normalizeConfig(cfg)
	if err := ValidateConfig(cfg); err != nil {
		return nil, err
	}
	if cfg.Shards >= 1 && cfg.Kind.IsDirectory() {
		// Conservative-window parallel intra-run path (shard.go). One
		// shard still uses the windowed engine — that is what makes
		// results bit-identical across every -shards value.
		return buildSharded(cfg)
	}
	k := sim.NewKernel()
	net, err := network.NewChecked(k, cfg.Net)
	if err != nil {
		return nil, err
	}
	if cfg.ReorderInjectProb > 0 {
		rng := sim.NewRNG(cfg.Seed ^ 0xfa17)
		delay := cfg.ReorderInjectDelay
		if delay == 0 {
			delay = 2_000
		}
		net.PerturbFn = func(m *network.Message) sim.Time {
			if m.VNet == coherence.VNetForward && rng.Bool(cfg.ReorderInjectProb) {
				return delay
			}
			return 0
		}
	}
	sn := safetynet.DefaultConfig(cfg.Nodes, cfg.CheckpointInterval)
	applyLogBytes(&sn, cfg)
	mgr := safetynet.NewManager(k, sn)
	coord := core.NewCoordinator(k, mgr)

	s := &System{Cfg: cfg, K: k, Net: net, Mgr: mgr, Coord: coord}

	var access processor.AccessFunc
	switch {
	case cfg.Kind.IsDirectory():
		dir, err := directory.NewChecked(k, net, directoryConfigFor(cfg), mgr)
		if err != nil {
			return nil, err
		}
		s.Dir = dir
		s.Dir.OnMisSpeculation = func(reason string) { coord.TriggerMisSpeculation(reason) }
		access = s.Dir.Access
	default:
		v := snoop.Full
		if cfg.Kind == SnoopSpec {
			v = snoop.Spec
		}
		scfg := snoop.DefaultConfig(cfg.Nodes, v)
		scfg.TimeoutCycles = cfg.TimeoutCycles
		overrideCaches(&scfg.L1Bytes, &scfg.L1Ways, &scfg.L2Bytes, &scfg.L2Ways, cfg)
		s.Bus = snoop.NewBus(k, cfg.Bus)
		s.Snoop = snoop.New(k, s.Bus, net, scfg, mgr)
		s.Snoop.OnMisSpeculation = func(reason string) { coord.TriggerMisSpeculation(reason) }
		access = s.Snoop.Access
	}

	gens := make([]workload.Generator, cfg.Nodes)
	for i := range gens {
		gens[i] = workload.New(cfg.Workload, i, cfg.Nodes, cfg.Seed)
		if cfg.Recorder != nil {
			gens[i] = cfg.Recorder.Wrap(i, gens[i])
		}
	}
	s.Pool = processor.NewPool(k, cfg.Nodes, access, gens)

	// Recovery wiring (framework features 3 and 4).
	coord.ResetFn = func() {
		net.Reset()
		if s.Dir != nil {
			s.Dir.ResetTransients()
		}
		if s.Snoop != nil {
			s.Snoop.ResetTransients()
			s.Bus.Reset()
		}
	}
	coord.RestoreFn = func(snapshot interface{}) {
		s.Pool.RestoreAll(snapshot.([]processor.Snapshot))
	}
	coord.ResumeFn = func(at sim.Time) {
		s.noteRecoveryOutage(at)
		s.Pool.Resume(at)
	}
	if cfg.Net.Routing == network.Adaptive {
		coord.AddPolicy(&core.DisableAdaptiveRouting{K: k, Net: net, ReenableAfter: cfg.AdaptiveDisableWindow})
	}
	ssLimit := cfg.SlowStartLimit
	if ssLimit <= 0 {
		ssLimit = 1
	}
	coord.AddPolicy(&core.SlowStart{K: k, Limiter: s.Pool, Limit: ssLimit, Normal: 0, Window: cfg.SlowStartWindow})
	coord.PolicyExempt = func(reason string) bool { return reason == "injected" }
	return s, nil
}

// Start takes the initial checkpoint, starts the processors, the
// checkpoint cadence, the watchdog, and (if configured) the recovery
// injector. Call once.
func (s *System) Start() {
	if s.sh != nil {
		s.startSharded()
		return
	}
	s.startedAt = s.K.Now()
	s.ckptInterval = s.Cfg.CheckpointInterval
	s.Mgr.TakeCheckpoint(s.Pool.SnapshotAll())
	if s.OnCheckpoint != nil {
		s.OnCheckpoint()
	}
	s.Pool.Start()

	if s.Cfg.Kind.IsDirectory() {
		s.scheduleCheckpoint(s.Cfg.CheckpointInterval)
		if s.Cfg.TimeoutCycles > 0 {
			s.Dir.StartWatchdog(s.Cfg.CheckpointInterval / 4)
		}
	} else {
		every := s.Cfg.SnoopCheckpointRequests
		if every == 0 {
			every = 3000
		}
		s.Bus.OnOrder = func(seq uint64) {
			if seq > 0 && seq%every == 0 {
				s.attemptCheckpoint()
			}
		}
		if s.Cfg.TimeoutCycles > 0 {
			s.Snoop.StartWatchdog(s.Cfg.CheckpointInterval / 4)
		}
	}

	// Log backpressure (classic path): force an early checkpoint as soon
	// as any node's log fills. The sharded path polls PressureSignal at
	// window edges instead — see startSharded.
	s.Mgr.OnPressure = func() { s.K.After(1, s.forceCheckpoint) }
	s.startFaults(s.K)
}

// attemptCheckpoint drains in-flight transactions and takes a SafetyNet
// checkpoint (a consistent cut by construction — see safetynet package
// comment), then schedules the next one. If the logs are still at
// capacity after the checkpoint, the pool stays paused until validation
// frees space (stallForLogSpace — the overflow backpressure fix).
func (s *System) attemptCheckpoint() {
	if s.checkpointing {
		return
	}
	s.checkpointing = true
	s.checkpointGen++
	began := s.K.Now()
	var poll func()
	poll = func() {
		if s.Coord.InRecovery() {
			s.K.At(s.Coord.ResumeAt()+1, poll)
			return
		}
		s.Pool.Pause()
		if s.inFlight() == 0 {
			s.occAtCkpt = s.Mgr.MaxOccupancyEntries()
			s.Mgr.TakeCheckpointWindow(s.Pool.SnapshotAll(), s.validationWindow())
			if s.OnCheckpoint != nil {
				s.OnCheckpoint()
			}
			s.checkpointStall.Add(uint64(s.K.Now() - began))
			if s.Mgr.PressureSignal() {
				s.stallForLogSpace()
				return
			}
			s.finishCheckpoint()
			return
		}
		s.K.After(20, poll)
	}
	poll()
}

// finishCheckpoint resumes execution after a checkpoint (and any log
// stall) and schedules the next periodic attempt through the cadence
// controller.
func (s *System) finishCheckpoint() {
	now := s.K.Now()
	if s.sh != nil {
		now = s.sh.grp.Now()
	}
	lat := s.Mgr.Config().RegCkptLatency
	s.Pool.Resume(now + lat)
	s.checkpointing = false
	if s.Cfg.Kind.IsDirectory() {
		s.scheduleCheckpoint(s.nextCheckpointDelay())
	}
}

// scheduleCheckpoint arms the next periodic checkpoint attempt d cycles
// out. The generation token lets forceCheckpoint cancel a pending
// attempt when log pressure forces an early one — each completion then
// schedules exactly one successor, so the cadence never forks into two
// concurrent chains.
func (s *System) scheduleCheckpoint(d sim.Time) {
	s.ckptTimer++
	gen := s.ckptTimer
	fire := func() {
		if gen != s.ckptTimer {
			return
		}
		if s.sh != nil {
			s.attemptCheckpointSharded()
		} else {
			s.attemptCheckpoint()
		}
	}
	if s.sh != nil {
		s.sh.grp.After(d, fire)
	} else {
		s.K.After(d, fire)
	}
}

// forceCheckpoint starts an immediate checkpoint attempt in response to
// log pressure: the new checkpoint opens an epoch whose validation will
// free the over-capacity entries, and the attempt holds the pool paused
// until it does. The classic path reaches here via Manager.OnPressure;
// the sharded path from its window-edge PreControl scan.
func (s *System) forceCheckpoint() {
	if s.checkpointing || !s.Mgr.PressureSignal() {
		return
	}
	s.ckptTimer++ // cancel the pending periodic attempt
	if s.sh != nil {
		s.attemptCheckpointSharded()
	} else {
		s.attemptCheckpoint()
	}
}

// stallForLogSpace holds the pool paused after a checkpoint whose logs
// are still at capacity, committing as validation windows expire. If a
// full validation window passes without relief — a recovery discarded
// the forced checkpoint, or one epoch's working set alone exceeds
// LogBytes — it restarts the attempt: the system then visibly thrashes
// (checkpoint, stall, repeat) instead of deadlocking or, as before the
// fix, logging past its budget for free.
func (s *System) stallForLogSpace() {
	began := s.K.Now()
	s.logStalled = true
	s.inLogStall = true
	s.stallBegan = began
	deadline := began + s.validationWindow()
	var wait func()
	wait = func() {
		if s.Coord.InRecovery() {
			s.K.At(s.Coord.ResumeAt()+1, wait)
			return
		}
		s.Pool.Pause()
		s.Mgr.CommitNow()
		pressured := s.Mgr.PressureSignal()
		if pressured && s.K.Now() < deadline {
			s.K.After(20, wait)
			return
		}
		s.logStallCycles += uint64(s.K.Now() - began)
		s.inLogStall = false
		if pressured {
			s.checkpointing = false
			s.attemptCheckpoint()
			return
		}
		s.finishCheckpoint()
	}
	wait()
}

// nextCheckpointDelay applies the closed-loop cadence controller: halve
// the interval when the last epoch saw a log stall or occupancy at or
// above 5/8 of capacity, relax by a quarter when occupancy sits below
// 1/8, clamp to [base/8, base]. The configured interval is the ceiling,
// not the midpoint: base is the design point chosen for rollback-
// distance bounds, and the controller's mandate is shedding log
// pressure by tightening below it — relaxing past base would trade
// unbounded rollback distance for log headroom the budget already has.
// Pure integer arithmetic — the controller's trajectory is part of the
// bit-identical determinism contract.
func (s *System) nextCheckpointDelay() sim.Time {
	base := s.Cfg.CheckpointInterval
	if !s.Cfg.AdaptiveCheckpoint {
		return base
	}
	cur := s.ckptInterval
	capE := s.Mgr.CapacityEntries()
	occ := s.occAtCkpt
	pressured := s.logStalled || (capE > 0 && occ*8 >= capE*5)
	s.logStalled = false
	switch {
	case pressured:
		cur /= 2
	case capE == 0 || occ*8 < capE:
		cur += cur / 4
	}
	if min := base / 8; cur < min {
		cur = min
	}
	if cur > base {
		cur = base
	}
	if cur < 1 {
		cur = 1
	}
	s.ckptInterval = cur
	return cur
}

// validationWindow is the window for the next checkpoint: three base
// intervals normally (Table 2's detection-latency bound), three
// *current* intervals under the adaptive controller — shrinking the
// window with the cadence is what lets a tightened cadence free log
// space sooner.
func (s *System) validationWindow() sim.Time {
	if s.Cfg.AdaptiveCheckpoint {
		return 3 * s.ckptInterval
	}
	return s.Mgr.Config().ValidationWindow
}

// noteRecoveryOutage does the degraded-mode bookkeeping for one
// recovery, called from the coordinator's resume hook: the machine is
// fully parked until resumeAt (outage) and runs throttled until
// resumeAt + SlowStartWindow (degraded). Overlapping windows merge so
// repeated faults never double-count a cycle.
func (s *System) noteRecoveryOutage(resumeAt sim.Time) {
	now := s.K.Now()
	if resumeAt > now {
		s.outageCycles += uint64(resumeAt - now)
	}
	until := resumeAt + s.Cfg.SlowStartWindow
	from := now
	if s.degradedUntil > from {
		from = s.degradedUntil
	}
	if until > from {
		s.degradedCycles += uint64(until - from)
	}
	if until > s.degradedUntil {
		s.degradedUntil = until
	}
	s.Pool.MarkDegradedUntil(until)
}

// applyLogBytes applies Config.LogBytes to a SafetyNet config: positive
// overrides the Table 2 capacity, negative removes the bound.
func applyLogBytes(sn *safetynet.Config, cfg Config) {
	if cfg.LogBytes > 0 {
		sn.LogBytes = cfg.LogBytes
	} else if cfg.LogBytes < 0 {
		sn.LogBytes = 0
	}
}

func (s *System) inFlight() int {
	n := s.Net.InFlight()
	if s.Dir != nil {
		n += s.Dir.InFlight()
	}
	if s.Snoop != nil {
		n += s.Snoop.InFlight()
	}
	return n
}

// Run executes the system for the given number of cycles (after Start)
// and returns the results.
func (s *System) Run(cycles sim.Time) Results {
	if s.sh != nil {
		s.sh.grp.Run(s.sh.grp.Now() + cycles)
		return s.Results()
	}
	s.K.Run(s.K.Now() + cycles)
	return s.Results()
}

// Results summarizes a run.
type Results struct {
	Kind         Kind
	Workload     string
	Cycles       uint64
	Instructions uint64
	// Perf is aggregate instructions per cycle — the normalized
	// performance metric of Figures 4 and 5.
	Perf float64

	Recoveries      uint64
	RecoveryReasons map[string]uint64
	Checkpoints     uint64
	CheckpointStall uint64
	MeanLostWork    float64

	ReorderRatePerVNet []float64
	TotalReorderRate   float64
	Deflections        uint64
	MeanLinkUtil       float64
	MissLatencyMean    float64
	Transactions       uint64
	Writebacks         uint64
	WBRaces            uint64
	Invalidations      uint64
	InvBroadcasts      uint64
	SharerOverflows    uint64
	OrderViolations    uint64
	CornerDetected     uint64
	CornerHandled      uint64
	Timeouts           uint64
	LimitStalls        uint64
	LogHighWaterBytes  int

	// Availability metrics: exact integers only, so every column merges
	// bit-identically at any shard count. OutageCycles is time fully
	// parked between fault detection and resume; DegradedCycles the
	// union of recovery-plus-slow-start windows; DegradedInstructions
	// the instructions retired inside those windows (throughput while
	// the machine is nominally "up" but degraded). LogStallCycles is
	// time the log-overflow backpressure held the machine; LogOverflows
	// counts appends past LogBytes. CheckpointIntervalFinal is the
	// cadence controller's final interval (== the configured interval
	// without AdaptiveCheckpoint).
	OutageCycles            uint64
	DegradedCycles          uint64
	DegradedInstructions    uint64
	LogStallCycles          uint64
	LogOverflows            uint64
	CheckpointIntervalFinal uint64
	RecoveryLatency         stats.IntSummary
	RollbackDist            stats.IntSummary
}

// Results snapshots the current measurements.
func (s *System) Results() Results {
	now := s.K.Now()
	elapsed := uint64(now - s.startedAt)
	instr := s.Pool.Instructions()
	// One stats snapshot serves every read below: on a sharded network
	// each Stats() call merges the per-shard counters afresh.
	netSt := s.Net.Stats()
	r := Results{
		Kind:             s.Cfg.Kind,
		Workload:         s.Cfg.Workload.Name,
		Cycles:           elapsed,
		Instructions:     instr,
		Recoveries:       s.Coord.Recoveries(),
		RecoveryReasons:  map[string]uint64{},
		Checkpoints:      s.Mgr.Checkpoints(),
		CheckpointStall:  s.checkpointStall.Value(),
		MeanLostWork:     s.Coord.MeanLostWork(),
		MeanLinkUtil:     netSt.MeanLinkUtilization(now),
		TotalReorderRate: netSt.TotalReorderRate(),
		Deflections:      netSt.Deflections.Value(),
		LimitStalls:      s.Pool.LimitStalls(),

		DegradedInstructions:    s.Pool.DegradedInstructions(),
		LogOverflows:            s.Mgr.Overflows(),
		CheckpointIntervalFinal: uint64(s.ckptInterval),
		RecoveryLatency:         s.Coord.RecoveryLatencyDist(),
		RollbackDist:            s.Coord.RollbackDist(),
	}
	// Clamp the in-progress tails so a snapshot mid-outage, mid-degraded-
	// window or mid-log-stall charges only elapsed cycles.
	r.OutageCycles = s.outageCycles
	if ra := s.Coord.ResumeAt(); ra > now {
		r.OutageCycles -= uint64(ra - now)
	}
	r.DegradedCycles = s.degradedCycles
	if s.degradedUntil > now {
		r.DegradedCycles -= uint64(s.degradedUntil - now)
	}
	r.LogStallCycles = s.logStallCycles
	if s.inLogStall && now > s.stallBegan {
		r.LogStallCycles += uint64(now - s.stallBegan)
	}
	if elapsed > 0 {
		r.Perf = float64(instr) / float64(elapsed)
	}
	for _, reason := range s.Coord.Reasons() {
		r.RecoveryReasons[reason] = s.Coord.RecoveriesFor(reason)
	}
	for v := 0; v < s.Cfg.Net.VNets; v++ {
		r.ReorderRatePerVNet = append(r.ReorderRatePerVNet, netSt.ReorderRate(v))
	}
	for i := 0; i < s.Cfg.Nodes; i++ {
		if hw := s.Mgr.OccupancyHighWaterBytes(i); hw > r.LogHighWaterBytes {
			r.LogHighWaterBytes = hw
		}
	}
	if s.Dir != nil {
		ds := s.Dir.Stats()
		r.MissLatencyMean = ds.MissLatency.Mean()
		r.Transactions = ds.Transactions.Value()
		r.Writebacks = ds.Writebacks.Value()
		r.WBRaces = ds.WBRaces.Value()
		r.Invalidations = ds.Invalidations.Value()
		r.InvBroadcasts = ds.InvBroadcasts.Value()
		r.SharerOverflows = ds.SharerOverflows.Value()
		r.OrderViolations = ds.OrderViolations.Value()
		r.Timeouts = ds.TimeoutsDetected.Value()
	}
	if s.Snoop != nil {
		ss := s.Snoop.Stats()
		r.MissLatencyMean = ss.MissLatency.Mean()
		r.Transactions = ss.Transactions.Value()
		r.Writebacks = ss.Writebacks.Value()
		r.CornerDetected = ss.CornerDetected.Value()
		r.CornerHandled = ss.CornerHandled.Value()
		r.Timeouts = ss.TimeoutsDetected.Value()
	}
	return r
}

// RunOne builds, starts and runs a system for the given cycles.
func RunOne(cfg Config, cycles sim.Time) Results {
	s := Build(cfg)
	s.Start()
	return s.Run(cycles)
}

// RunOneChecked is RunOne with configuration errors returned instead of
// panicking — the sweep engine reports them per design point so one
// illegal machine does not kill a whole grid.
func RunOneChecked(cfg Config, cycles sim.Time) (Results, error) {
	s, err := BuildChecked(cfg)
	if err != nil {
		return Results{}, err
	}
	s.Start()
	return s.Run(cycles), nil
}

// PerturbedResult aggregates several perturbed runs of one design point
// (the paper §5.2 methodology: "we simulate each design point multiple
// times with small, pseudo-random perturbations ... error bars represent
// one standard deviation").
type PerturbedResult struct {
	Perf       stats.Sample
	Recoveries stats.Sample
	Runs       []Results
}

// RunPerturbed executes n runs that differ only in seed, in parallel
// (each run owns its kernel; determinism is per-run).
func RunPerturbed(cfg Config, n int, cycles sim.Time) PerturbedResult {
	results := make([]Results, n)
	var wg sync.WaitGroup
	sem := make(chan struct{}, maxParallel())
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			c := cfg
			c.Seed = cfg.Seed + uint64(i)*7919
			results[i] = RunOne(c, cycles)
		}()
	}
	wg.Wait()
	var out PerturbedResult
	out.Runs = results
	for _, r := range results {
		out.Perf.Observe(r.Perf)
		out.Recoveries.Observe(float64(r.Recoveries))
	}
	return out
}

func overrideCaches(l1b, l1w, l2b, l2w *int, cfg Config) {
	if cfg.L1Bytes > 0 {
		*l1b = cfg.L1Bytes
	}
	if cfg.L1Ways > 0 {
		*l1w = cfg.L1Ways
	}
	if cfg.L2Bytes > 0 {
		*l2b = cfg.L2Bytes
	}
	if cfg.L2Ways > 0 {
		*l2w = cfg.L2Ways
	}
}

func maxParallel() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return n
}

// Table2 renders the target system parameters (paper Table 2).
func Table2(cfg Config) string {
	t := stats.NewTable("Parameter", "Value")
	t.AddRow("Nodes", fmt.Sprintf("%d (one processor, two cache levels, memory+directory slice, NI each)", cfg.Nodes))
	t.AddRow("L1 Cache (I and D)", "128 KB, 4-way set associative")
	t.AddRow("L2 Cache", "4 MB, 4-way set-associative")
	t.AddRow("Memory", "2 GB total, 64-byte blocks (modeled as versioned blocks)")
	t.AddRow("Miss From Memory", "~180 ns uncontended 2-hop (120-cycle DRAM + network)")
	t.AddRow("Interconnect", fmt.Sprintf("%dx%d torus, %s routing, %.2f B/cycle links",
		cfg.Net.Width, cfg.Net.Height, cfg.Net.Routing, cfg.Net.LinkBandwidth))
	if cfg.Kind.IsDirectory() {
		t.AddRow("Directory Sharer Set", directoryConfigFor(cfg).DescribeSharers())
	}
	t.AddRow("Checkpoint Log Buffer", "512 KB/node, 72-byte entries")
	t.AddRow("Checkpoint Interval", fmt.Sprintf("%d cycles (directory), %d requests (snooping)",
		cfg.CheckpointInterval, cfg.SnoopCheckpointRequests))
	t.AddRow("Register Checkpoint Latency", "100 cycles")
	return t.String()
}

// simplifiedNet and deflectionNet are small helpers for tests and
// examples that need the §4 network shapes at the standard geometry.
func simplifiedNet(bufSize int) network.Config {
	return network.SimplifiedConfig(4, 4, 0.2, bufSize)
}

func deflectionNet() network.Config {
	return network.DeflectionConfig(4, 4, 0.2)
}
