package directory

import (
	"fmt"
	"slices"

	"specsimp/internal/cache"
	"specsimp/internal/coherence"
)

// AuditInvariants checks the protocol's global correctness invariants.
// It must be called at a quiescent point (InFlight()==0):
//
//   - Single writer: at most one cache holds a block in M or O.
//   - Value coherence: every valid cached copy of a block has the same
//     data version.
//   - Memory currency: with no owner, memory's version equals the cached
//     version (and is never newer than any copy).
//   - Directory accuracy: DM/DO imply the recorded owner really holds
//     the block in M/O; DS/DInv imply no dirty copy exists anywhere;
//     the recorded sharer set is a superset of the actual S holders
//     (silent evictions leave stale sharers, never missing ones).
//
// It returns nil if all invariants hold.
func (p *Protocol) AuditInvariants() error {
	if n := p.InFlight(); n != 0 {
		return fmt.Errorf("audit requires quiescence; %d transactions in flight", n)
	}
	type copyInfo struct {
		node    int
		state   CState
		version uint64
	}
	copies := make(map[coherence.Addr][]copyInfo)
	for i, c := range p.caches {
		i := i
		c.l2.ForEach(func(l *cache.Line) {
			copies[l.Addr] = append(copies[l.Addr], copyInfo{i, CState(l.State), l.Version})
		})
	}
	// Every block the directory knows about is audited, plus every
	// cached block (which must be known to its home).
	addrs := make(map[coherence.Addr]bool)
	for _, d := range p.dirs {
		for a := range d.entries {
			addrs[a] = true
		}
	}
	for a := range copies {
		addrs[a] = true
	}
	// Audit in address order so the first violation reported is the
	// same on every run (map order would make failure messages — and
	// replay triage — nondeterministic).
	sorted := make([]coherence.Addr, 0, len(addrs))
	for a := range addrs {
		sorted = append(sorted, a)
	}
	slices.Sort(sorted)

	for _, a := range sorted {
		home := p.dirs[p.Home(a)]
		e := home.entries[a]
		cs := copies[a]

		owners := 0
		ownerNode := -1
		var version uint64
		versionSet := false
		for _, ci := range cs {
			switch ci.state {
			case CM, CO:
				owners++
				ownerNode = ci.node
			case CS:
			default:
				return fmt.Errorf("block %#x: transient state %s in cache array of node %d", uint64(a), ci.state, ci.node)
			}
			if versionSet && ci.version != version {
				return fmt.Errorf("block %#x: version divergence among cached copies (%d vs %d)", uint64(a), ci.version, version)
			}
			version, versionSet = ci.version, true
		}
		if owners > 1 {
			return fmt.Errorf("block %#x: %d simultaneous owners", uint64(a), owners)
		}
		memV := home.store.Read(a)
		if versionSet && memV > version {
			return fmt.Errorf("block %#x: memory version %d newer than cached %d", uint64(a), memV, version)
		}
		if owners == 0 && versionSet && memV != version {
			return fmt.Errorf("block %#x: no owner but memory %d != cached %d", uint64(a), memV, version)
		}
		if e == nil {
			if len(cs) > 0 {
				return fmt.Errorf("block %#x: cached with no directory entry", uint64(a))
			}
			continue
		}
		switch e.state {
		case DM, DO:
			if owners != 1 || ownerNode != e.owner {
				return fmt.Errorf("block %#x: dir %s owner=%d but caches show owner node %d (count %d)",
					uint64(a), e.state, e.owner, ownerNode, owners)
			}
		case DS, DInv:
			if owners != 0 {
				return fmt.Errorf("block %#x: dir %s but node %d holds a dirty copy", uint64(a), e.state, ownerNode)
			}
		}
		// Sharer bookkeeping: every actual S holder must be recorded
		// (stale extras are fine: S evictions are silent, and the
		// limited-pointer / coarse-vector formats are conservative
		// supersets by construction).
		for _, ci := range cs {
			if ci.state == CS && !e.sharers.mayContain(p.lay, ci.node) && e.owner != ci.node {
				return fmt.Errorf("block %#x: node %d holds S but is not in dir sharer set", uint64(a), ci.node)
			}
		}
		if e.state == DInv && len(cs) > 0 {
			return fmt.Errorf("block %#x: dir DInv but %d cached copies", uint64(a), len(cs))
		}
	}
	return nil
}
