package directory

import (
	"strings"
	"testing"

	"specsimp/internal/coherence"
)

// Block addresses: with 4 nodes, home(a) = (a/64)%4.
const (
	blkA = coherence.Addr(0)      // home 0
	blkB = coherence.Addr(4 * 64) // home 0, same L2 set as A in tiny config
	blkC = coherence.Addr(8 * 64) // home 0
	blkD = coherence.Addr(1 * 64) // home 1
)

func TestLoadFromMemory(t *testing.T) {
	_, f, p := scripted(t, Full)
	doAccess(t, f, p, 1, blkA, coherence.Load)
	if st := p.CacheState(1, blkA); st != CS {
		t.Fatalf("state=%s want S", st)
	}
	if ds, busy := p.DirState(blkA); ds != DS || busy {
		t.Fatalf("dir=%s busy=%v want DS idle", ds, busy)
	}
	if err := p.AuditInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreFromInvalid(t *testing.T) {
	_, f, p := scripted(t, Full)
	doAccess(t, f, p, 1, blkA, coherence.Store)
	if st := p.CacheState(1, blkA); st != CM {
		t.Fatalf("state=%s want M", st)
	}
	if p.BlockVersion(blkA) != 1 {
		t.Fatalf("version=%d want 1", p.BlockVersion(blkA))
	}
	if ds, _ := p.DirState(blkA); ds != DM {
		t.Fatalf("dir=%s want DM", ds)
	}
	if err := p.AuditInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreHitIncrementsVersion(t *testing.T) {
	_, f, p := scripted(t, Full)
	doAccess(t, f, p, 1, blkA, coherence.Store)
	doAccess(t, f, p, 1, blkA, coherence.Store)
	doAccess(t, f, p, 1, blkA, coherence.Store)
	if v := p.BlockVersion(blkA); v != 3 {
		t.Fatalf("version=%d want 3", v)
	}
}

func TestReadSharingThenOwnerSupply(t *testing.T) {
	_, f, p := scripted(t, Full)
	doAccess(t, f, p, 1, blkA, coherence.Store) // node1 M, v1
	doAccess(t, f, p, 2, blkA, coherence.Load)  // fwd to owner; owner -> O
	if st := p.CacheState(1, blkA); st != CO {
		t.Fatalf("old owner state=%s want O", st)
	}
	if st := p.CacheState(2, blkA); st != CS {
		t.Fatalf("reader state=%s want S", st)
	}
	if ds, _ := p.DirState(blkA); ds != DO {
		t.Fatalf("dir=%s want DO", ds)
	}
	doAccess(t, f, p, 3, blkA, coherence.Load) // O supplies again
	if err := p.AuditInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreInvalidatesSharers(t *testing.T) {
	_, f, p := scripted(t, Full)
	doAccess(t, f, p, 1, blkA, coherence.Load)
	doAccess(t, f, p, 2, blkA, coherence.Load)
	doAccess(t, f, p, 3, blkA, coherence.Store) // must invalidate 1 and 2
	if st := p.CacheState(1, blkA); st != CInv {
		t.Fatalf("sharer1 state=%s want I", st)
	}
	if st := p.CacheState(2, blkA); st != CInv {
		t.Fatalf("sharer2 state=%s want I", st)
	}
	if st := p.CacheState(3, blkA); st != CM {
		t.Fatalf("writer state=%s want M", st)
	}
	if v := p.BlockVersion(blkA); v != 1 {
		t.Fatalf("version=%d want 1", v)
	}
	if err := p.AuditInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOwnershipTransferPreservesValue(t *testing.T) {
	_, f, p := scripted(t, Full)
	doAccess(t, f, p, 1, blkA, coherence.Store) // v1 at node1
	doAccess(t, f, p, 2, blkA, coherence.Store) // fwd M->M transfer, v2
	if v := p.BlockVersion(blkA); v != 2 {
		t.Fatalf("version=%d want 2 (no lost update)", v)
	}
	if st := p.CacheState(1, blkA); st != CInv {
		t.Fatalf("old owner=%s want I", st)
	}
	if err := p.AuditInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUpgradeFromShared(t *testing.T) {
	_, f, p := scripted(t, Full)
	doAccess(t, f, p, 1, blkA, coherence.Load)
	doAccess(t, f, p, 2, blkA, coherence.Load)
	doAccess(t, f, p, 1, blkA, coherence.Store) // upgrade: inv node2, ack counted
	if st := p.CacheState(1, blkA); st != CM {
		t.Fatalf("upgrader=%s want M", st)
	}
	if st := p.CacheState(2, blkA); st != CInv {
		t.Fatalf("sharer=%s want I", st)
	}
	if err := p.AuditInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUpgradeFromOwned(t *testing.T) {
	_, f, p := scripted(t, Full)
	doAccess(t, f, p, 1, blkA, coherence.Store) // node1 M v1
	doAccess(t, f, p, 2, blkA, coherence.Load)  // node1 -> O, node2 S
	doAccess(t, f, p, 1, blkA, coherence.Store) // owner upgrade O->M, inv node2
	if st := p.CacheState(1, blkA); st != CM {
		t.Fatalf("owner=%s want M", st)
	}
	if v := p.BlockVersion(blkA); v != 2 {
		t.Fatalf("version=%d want 2 (owner's data must survive upgrade)", v)
	}
	if err := p.AuditInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWritebackOnEviction(t *testing.T) {
	_, f, p := scripted(t, Full)
	doAccess(t, f, p, 1, blkA, coherence.Store) // set: A(M)
	doAccess(t, f, p, 1, blkB, coherence.Store) // set: A,B
	doAccess(t, f, p, 1, blkC, coherence.Store) // evicts A -> PutM
	if p.Stats().Writebacks.Value() != 1 {
		t.Fatalf("writebacks=%d want 1", p.Stats().Writebacks.Value())
	}
	if st := p.CacheState(1, blkA); st != CInv {
		t.Fatalf("evicted block state=%s want I", st)
	}
	if v := p.MemVersion(blkA); v != 1 {
		t.Fatalf("memory version=%d want 1 (writeback data)", v)
	}
	if ds, _ := p.DirState(blkA); ds != DInv {
		t.Fatalf("dir=%s want DInv after writeback", ds)
	}
	if err := p.AuditInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWritebackFromOwnedKeepsSharers(t *testing.T) {
	_, f, p := scripted(t, Full)
	doAccess(t, f, p, 1, blkA, coherence.Store) // M v1
	doAccess(t, f, p, 2, blkA, coherence.Load)  // node1 O, node2 S
	doAccess(t, f, p, 1, blkB, coherence.Store)
	doAccess(t, f, p, 1, blkC, coherence.Store) // evicts A (O) -> PutM
	if ds, _ := p.DirState(blkA); ds != DS {
		t.Fatalf("dir=%s want DS (sharers remain)", ds)
	}
	if st := p.CacheState(2, blkA); st != CS {
		t.Fatalf("sharer=%s want S", st)
	}
	if v := p.MemVersion(blkA); v != 1 {
		t.Fatalf("memory=%d want 1", v)
	}
	if err := p.AuditInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReaccessDuringWritebackParks(t *testing.T) {
	_, f, p := scripted(t, Full)
	doAccess(t, f, p, 1, blkA, coherence.Store)
	doAccess(t, f, p, 1, blkB, coherence.Store)
	// Evict A via C, but stall the writeback by withholding messages.
	var cDone bool
	p.Access(1, blkC, coherence.Store, func() { cDone = true })
	// Deliver C's transaction but hold A's PutM.
	f.deliverKind(t, coherence.GetM)
	f.deliverKind(t, coherence.Data)
	f.deliverKind(t, coherence.FinalAck)
	if !cDone {
		t.Fatal("C's store did not complete")
	}
	// Now access A again: must park behind the in-flight writeback.
	aDone := false
	p.Access(1, blkA, coherence.Load, func() { aDone = true })
	f.k.Drain(1_000_000)
	if aDone {
		t.Fatal("access to a block mid-writeback completed early")
	}
	f.deliverAll(t) // PutM, WBAck, then the parked access re-issues
	if !aDone {
		t.Fatal("parked access never completed")
	}
	if err := p.AuditInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestWritebackRaceSpecDetected reproduces the §3.1 race with the
// reordered delivery (WBAck overtakes FwdGetM) and checks the Spec
// variant detects it as its single designated invalid transition.
func TestWritebackRaceSpecDetected(t *testing.T) {
	_, f, p := scripted(t, Spec)
	var reasons []string
	p.OnMisSpeculation = func(r string) {
		reasons = append(reasons, r)
		p.ResetTransients()
		f.queue = nil
	}
	doAccess(t, f, p, 1, blkA, coherence.Store)
	doAccess(t, f, p, 1, blkB, coherence.Store)
	// Store C evicts A: hold the PutM.
	p.Access(1, blkC, coherence.Store, func() {})
	f.deliverKind(t, coherence.GetM)
	f.deliverKind(t, coherence.Data)
	f.deliverKind(t, coherence.FinalAck)
	// Node 2 wants A while the writeback is in flight.
	p.Access(2, blkA, coherence.Store, func() {})
	f.deliverKind(t, coherence.GetM) // dir forwards FwdGetM to node1 (in flight)
	f.deliverKind(t, coherence.PutM) // the race: dir sends plain WBAck
	if p.Stats().WBRaces.Value() != 1 {
		t.Fatalf("WBRaces=%d want 1", p.Stats().WBRaces.Value())
	}
	// Reordered network: WBAck arrives first...
	f.deliverKind(t, coherence.WBAck)
	if st := p.CacheState(1, blkA); st != CInv {
		t.Fatalf("node1=%s after early WBAck, want I", st)
	}
	// ...then the forward hits an invalid cache: detection.
	f.deliverKind(t, coherence.FwdGetM)
	if len(reasons) != 1 || reasons[0] != "p2p-ordering" {
		t.Fatalf("mis-speculations=%v want [p2p-ordering]", reasons)
	}
	if p.Stats().OrderViolations.Value() != 1 {
		t.Fatalf("OrderViolations=%d want 1", p.Stats().OrderViolations.Value())
	}
}

// TestWritebackRaceSpecInOrder checks that with point-to-point ordering
// honored (forward first), the Spec variant needs no extra machinery.
func TestWritebackRaceSpecInOrder(t *testing.T) {
	_, f, p := scripted(t, Spec)
	p.OnMisSpeculation = func(r string) { t.Fatalf("unexpected mis-speculation %q", r) }
	doAccess(t, f, p, 1, blkA, coherence.Store)
	doAccess(t, f, p, 1, blkB, coherence.Store)
	n2done := false
	p.Access(1, blkC, coherence.Store, func() {})
	f.deliverKind(t, coherence.GetM)
	f.deliverKind(t, coherence.Data)
	f.deliverKind(t, coherence.FinalAck)
	p.Access(2, blkA, coherence.Store, func() { n2done = true })
	f.deliverKind(t, coherence.GetM)
	f.deliverKind(t, coherence.PutM)    // race at the directory
	f.deliverKind(t, coherence.FwdGetM) // ordering holds: forward first
	if st := p.CacheState(1, blkA); st != CIIa {
		t.Fatalf("node1=%s after serving forward, want II_A", st)
	}
	f.deliverAll(t)
	if !n2done {
		t.Fatal("node2's store never completed")
	}
	if st := p.CacheState(2, blkA); st != CM {
		t.Fatalf("node2=%s want M", st)
	}
	if v := p.BlockVersion(blkA); v != 2 {
		t.Fatalf("version=%d want 2", v)
	}
	if err := p.AuditInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestWritebackRaceFullHandlesReorder checks the Full variant survives
// the reordered delivery via the stale-WBAck / II_F machinery.
func TestWritebackRaceFullHandlesReorder(t *testing.T) {
	_, f, p := scripted(t, Full)
	n2done := false
	doAccess(t, f, p, 1, blkA, coherence.Store)
	doAccess(t, f, p, 1, blkB, coherence.Store)
	p.Access(1, blkC, coherence.Store, func() {})
	f.deliverKind(t, coherence.GetM)
	f.deliverKind(t, coherence.Data)
	f.deliverKind(t, coherence.FinalAck)
	p.Access(2, blkA, coherence.Store, func() { n2done = true })
	f.deliverKind(t, coherence.GetM)
	f.deliverKind(t, coherence.PutM) // race: dir sends Data to node2 + stale WBAck
	// Reordered: stale WBAck first.
	f.deliverKind(t, coherence.WBAck)
	if st := p.CacheState(1, blkA); st != CIIf {
		t.Fatalf("node1=%s after stale WBAck, want II_F", st)
	}
	f.deliverKind(t, coherence.FwdGetM) // doomed forward absorbed
	if st := p.CacheState(1, blkA); st != CInv {
		t.Fatalf("node1=%s after absorbing forward, want I", st)
	}
	f.deliverAll(t)
	if !n2done {
		t.Fatal("node2's store never completed")
	}
	if v := p.BlockVersion(blkA); v != 2 {
		t.Fatalf("version=%d want 2 (writeback data + node2's store)", v)
	}
	if p.Stats().RacesHandled.Value() == 0 {
		t.Fatal("full variant did not count the handled race")
	}
	if err := p.AuditInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestWritebackRaceFullInOrderDuplicateData: forward first; node1 serves
// data AND the directory sends its own copy — node2 must drop the dup.
func TestWritebackRaceFullInOrderDuplicateData(t *testing.T) {
	_, f, p := scripted(t, Full)
	n2done := false
	doAccess(t, f, p, 1, blkA, coherence.Store)
	doAccess(t, f, p, 1, blkB, coherence.Store)
	p.Access(1, blkC, coherence.Store, func() {})
	f.deliverKind(t, coherence.GetM)
	f.deliverKind(t, coherence.Data)
	f.deliverKind(t, coherence.FinalAck)
	p.Access(2, blkA, coherence.Store, func() { n2done = true })
	f.deliverKind(t, coherence.GetM)
	f.deliverKind(t, coherence.PutM)
	f.deliverKind(t, coherence.FwdGetM) // in order: node1 serves node2
	f.deliverAll(t)
	if !n2done {
		t.Fatal("node2's store never completed")
	}
	if p.Stats().DupDataDropped.Value() == 0 {
		t.Fatal("duplicate data was not detected/dropped")
	}
	if v := p.BlockVersion(blkA); v != 2 {
		t.Fatalf("version=%d want 2", v)
	}
	if err := p.AuditInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTimeoutWatchdogDetectsStuckTransaction(t *testing.T) {
	k, f, p := scripted(t, Spec)
	p2 := p
	_ = f // withhold all deliveries: the GetM never reaches the directory
	var reasons []string
	cfg := tinyConfig(Spec)
	cfg.TimeoutCycles = 10_000
	p2 = New(k, newTestFabric(k, 4), cfg, nil)
	p2.OnMisSpeculation = func(r string) {
		reasons = append(reasons, r)
		p2.ResetTransients()
	}
	p2.StartWatchdog(1000)
	p2.Access(1, blkA, coherence.Store, func() {})
	k.Run(50_000)
	if len(reasons) == 0 || reasons[0] != "deadlock-timeout" {
		t.Fatalf("reasons=%v want deadlock-timeout", reasons)
	}
	if p2.Stats().TimeoutsDetected.Value() == 0 {
		t.Fatal("timeout counter not bumped")
	}
}

func TestComplexityCounts(t *testing.T) {
	full := ComplexityOf(Full)
	spec := ComplexityOf(Spec)
	if spec.CacheStates >= full.CacheStates {
		t.Fatalf("spec cache states (%d) not fewer than full (%d)", spec.CacheStates, full.CacheStates)
	}
	if spec.CacheTransitions >= full.CacheTransitions {
		t.Fatalf("spec transitions (%d) not fewer than full (%d)", spec.CacheTransitions, full.CacheTransitions)
	}
	if spec.MessageKinds >= full.MessageKinds {
		t.Fatalf("spec message kinds (%d) not fewer than full (%d)", spec.MessageKinds, full.MessageKinds)
	}
	if full.CacheStates != 14-1 || spec.CacheStates != 13-1 {
		// 13 named states; Full uses all but none marked unreachable,
		// Spec lacks II_F. (CInv is counted via its transitions.)
		t.Logf("full=%+v spec=%+v", full, spec)
	}
}

func TestVariantString(t *testing.T) {
	if Full.String() != "full" || Spec.String() != "spec" {
		t.Fatal("variant names wrong")
	}
	if !strings.Contains(CIIf.String(), "II_F") {
		t.Fatalf("state name %q", CIIf.String())
	}
}
