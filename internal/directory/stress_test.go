package directory

import (
	"testing"
	"testing/quick"

	"specsimp/internal/coherence"
	"specsimp/internal/network"
	"specsimp/internal/sim"
)

// stressResult is what one randomized run produces.
type stressResult struct {
	p         *Protocol
	completed int
	issued    int
	stores    map[coherence.Addr]int
}

// runStress drives every node with a random blocking access stream over
// a real network and drains to quiescence — the paper's randomized
// protocol testing (§3: "randomized testing can uncover many bugs").
func runStress(t *testing.T, v Variant, netCfg network.Config, seed uint64, opsPerNode, nblocks int, storeFrac float64) stressResult {
	t.Helper()
	k := sim.NewKernel()
	net := network.New(k, netCfg)
	cfg := DefaultConfig(netCfg.NumNodes(), v)
	// Small caches force evictions and writebacks.
	cfg.L2Bytes, cfg.L2Ways = 8*64, 2
	cfg.L1Bytes, cfg.L1Ways = 2*64, 1
	p := New(k, net, cfg, nil)

	res := stressResult{p: p, stores: make(map[coherence.Addr]int)}
	blocks := make([]coherence.Addr, nblocks)
	for i := range blocks {
		blocks[i] = coherence.Addr(i * coherence.BlockBytes)
	}
	nodes := netCfg.NumNodes()
	for n := 0; n < nodes; n++ {
		n := n
		r := sim.NewRNG(seed*1000 + uint64(n))
		var issue func()
		remaining := opsPerNode
		issue = func() {
			if remaining == 0 {
				return
			}
			remaining--
			res.issued++
			a := blocks[r.Intn(len(blocks))]
			kind := coherence.Load
			if r.Bool(storeFrac) {
				kind = coherence.Store
				res.stores[a]++
			}
			p.Access(coherence.NodeID(n), a, kind, func() {
				res.completed++
				k.After(sim.Time(r.Intn(50)), issue)
			})
		}
		k.At(sim.Time(r.Intn(100)), issue)
	}
	if !k.Drain(200_000_000) {
		t.Fatal("stress run did not quiesce")
	}
	return res
}

// verifyStress checks completion, quiescence, invariants, and the
// strongest whole-run property: the final version of every block equals
// the number of completed stores to it (no lost updates under any
// interleaving).
func verifyStress(t *testing.T, res stressResult, opsPerNode, nodes int) {
	t.Helper()
	if res.completed != opsPerNode*nodes {
		t.Fatalf("completed %d of %d accesses", res.completed, opsPerNode*nodes)
	}
	if n := res.p.InFlight(); n != 0 {
		t.Fatalf("%d transactions still in flight", n)
	}
	if err := res.p.AuditInvariants(); err != nil {
		t.Fatalf("invariant violation: %v", err)
	}
	for a, n := range res.stores {
		if got := res.p.BlockVersion(a); got != uint64(n) {
			t.Fatalf("block %#x: version %d != %d completed stores (lost update)", uint64(a), got, n)
		}
	}
}

func TestStressFullOnStaticNetwork(t *testing.T) {
	res := runStress(t, Full, network.SafeStaticConfig(4, 4, 0.8), 1, 150, 24, 0.4)
	verifyStress(t, res, 150, 16)
}

func TestStressFullOnAdaptiveNetwork(t *testing.T) {
	// The full protocol must be correct even when the network reorders.
	res := runStress(t, Full, network.AdaptiveConfig(4, 4, 0.8), 2, 150, 24, 0.4)
	verifyStress(t, res, 150, 16)
}

func TestStressSpecOnStaticNetwork(t *testing.T) {
	// With static routing the ordering assumption holds, so the Spec
	// protocol must run to completion with zero mis-speculations (the
	// OnMisSpeculation hook is nil: any detection panics).
	res := runStress(t, Spec, network.SafeStaticConfig(4, 4, 0.8), 3, 150, 24, 0.4)
	verifyStress(t, res, 150, 16)
	if res.p.Stats().OrderViolations.Value() != 0 {
		t.Fatal("order violations on a statically routed network")
	}
}

func TestStressHighContentionSingleBlock(t *testing.T) {
	// All 16 nodes hammer one block with stores: maximal invalidation
	// and ownership-transfer traffic.
	res := runStress(t, Full, network.SafeStaticConfig(4, 4, 0.8), 4, 80, 1, 1.0)
	verifyStress(t, res, 80, 16)
	if got := res.p.BlockVersion(0); got != 16*80 {
		t.Fatalf("single hot block version=%d want %d", got, 16*80)
	}
}

func TestStressWritebackHeavy(t *testing.T) {
	// Many blocks mapping to few sets: constant evictions and racing
	// writebacks (the §3.1 scenario) under the full protocol on an
	// adaptive network.
	res := runStress(t, Full, network.AdaptiveConfig(4, 4, 0.8), 5, 120, 64, 0.7)
	verifyStress(t, res, 120, 16)
	if res.p.Stats().Writebacks.Value() == 0 {
		t.Fatal("writeback-heavy run produced no writebacks")
	}
}

// Property: the full protocol preserves every completed store for
// arbitrary seeds (randomized testing, many interleavings).
func TestStressFullSeedsProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("long property test")
	}
	f := func(seed uint64) bool {
		res := runStress(t, Full, network.AdaptiveConfig(4, 4, 0.8), seed%1000, 60, 16, 0.5)
		if res.completed != 60*16 || res.p.InFlight() != 0 {
			return false
		}
		if err := res.p.AuditInvariants(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for a, n := range res.stores {
			if res.p.BlockVersion(a) != uint64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// Property: the spec protocol on a static network is indistinguishable
// from the full protocol (same final versions) for any seed.
func TestStressSpecEquivalenceProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("long property test")
	}
	f := func(seed uint64) bool {
		s := seed % 1000
		a := runStress(t, Full, network.SafeStaticConfig(4, 4, 0.8), s, 50, 12, 0.5)
		b := runStress(t, Spec, network.SafeStaticConfig(4, 4, 0.8), s, 50, 12, 0.5)
		if a.completed != b.completed {
			return false
		}
		for addr := range a.stores {
			if a.p.BlockVersion(addr) != b.p.BlockVersion(addr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}
