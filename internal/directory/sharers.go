package directory

import (
	"fmt"
	"math/bits"
)

// SharerFormat selects the directory entry's sharer-set representation.
// The paper's machine (4×4) and the 8×8 scaling point fit a full bitmap;
// larger machines must trade precision for width using the classic
// directory-entry formats from the limited-directory literature:
// limited-pointer with broadcast on overflow (Dir_i_B) or a coarse
// vector with one bit per node cluster. Both are conservative — the
// represented set is always a superset of the true sharers — which the
// protocol already tolerates (silent S evictions leave stale sharers).
type SharerFormat uint8

// Sharer-set formats. FullBitmap is the zero value so existing configs
// keep their exact ≤64-node behavior bit for bit.
const (
	// FullBitmap tracks sharers exactly in one 64-bit mask; legal only
	// up to 64 nodes.
	FullBitmap SharerFormat = iota
	// LimitedPointer (Dir_i_B) stores up to SharerPointers exact node
	// pointers; adding one more overflows the entry into broadcast mode,
	// where every node is a potential sharer until the set is cleared.
	LimitedPointer
	// CoarseVector keeps one bit per cluster of SharerClusterSize
	// consecutive nodes; membership is exact at cluster granularity and
	// conservative within a cluster.
	CoarseVector
)

func (f SharerFormat) String() string {
	switch f {
	case FullBitmap:
		return "bitmap"
	case LimitedPointer:
		return "limited"
	case CoarseVector:
		return "coarse"
	}
	return fmt.Sprintf("SharerFormat(%d)", uint8(f))
}

// DefaultSharerFormat picks the format a machine geometry needs: exact
// bitmaps up to 64 nodes, limited pointers (with broadcast overflow)
// beyond.
func DefaultSharerFormat(nodes int) SharerFormat {
	if nodes <= 64 {
		return FullBitmap
	}
	return LimitedPointer
}

// maxSharerPointers bounds the limited-pointer array so sharerSet stays
// a small flat value (directory entries are copied into undo-log
// closures and busy-transaction completions).
const maxSharerPointers = 8

// defaultSharerPointers is the classic Dir_4_B configuration.
const defaultSharerPointers = 4

// sharerLayout is the resolved, protocol-wide interpretation of every
// sharerSet: format plus its sizing parameters. It lives on the
// Protocol, not in each entry, so entries stay cheap to copy.
type sharerLayout struct {
	format   SharerFormat
	nodes    int
	pointers int // LimitedPointer: exact pointers before overflow
	cluster  int // CoarseVector: nodes per vector bit
}

// clusters returns the coarse-vector width in bits.
func (l sharerLayout) clusters() int {
	return (l.nodes + l.cluster - 1) / l.cluster
}

// imprecise reports whether s may name nodes that never shared the
// block: an overflowed limited-pointer entry (broadcast mode) or any
// multi-node coarse cluster. Exact sets keep the protocol's
// illegal-transition detection points armed; imprecise fan-outs must be
// tolerated by their targets.
func (l sharerLayout) imprecise(s sharerSet) bool {
	switch l.format {
	case LimitedPointer:
		return s.broadcast()
	case CoarseVector:
		return l.cluster > 1
	default:
		return false
	}
}

// sharerSet is one directory entry's sharer set under some
// sharerLayout. The zero value is the empty set in every format. It is
// a flat value type: copying it (undo logging, busy completions) copies
// the set.
type sharerSet struct {
	// bits is the node bitmap (FullBitmap) or the cluster bitmap
	// (CoarseVector); unused by LimitedPointer.
	bits uint64
	// ptrs[:n] are the exact node pointers (LimitedPointer).
	ptrs [maxSharerPointers]uint16
	n    uint8
	// over marks a limited-pointer entry that overflowed to broadcast
	// mode: every node is conservatively a sharer.
	over bool
}

// isEmpty reports whether the set represents no sharers (format-
// independent: broadcast mode is never empty).
func (s sharerSet) isEmpty() bool {
	return s.bits == 0 && s.n == 0 && !s.over
}

// broadcast reports whether the set has degraded to all-nodes mode.
func (s sharerSet) broadcast() bool { return s.over }

// with returns the set with node added. A limited-pointer set out of
// free pointers overflows to broadcast mode (Dir_i_B).
func (s sharerSet) with(l sharerLayout, node int) sharerSet {
	switch l.format {
	case LimitedPointer:
		if s.over || s.ptrContains(node) {
			return s
		}
		if int(s.n) < l.pointers {
			s.ptrs[s.n] = uint16(node)
			s.n++
			return s
		}
		s.over = true
		return s
	case CoarseVector:
		s.bits |= 1 << uint(node/l.cluster)
		return s
	default:
		s.bits |= 1 << uint(node)
		return s
	}
}

// without returns the set with node removed, where the format can
// express that: exact formats drop the member; a coarse vector cannot
// clear a cluster bit on behalf of one node and a broadcast-mode
// limited-pointer set cannot recover precision, so both stay
// conservative supersets (the protocol only ever bulk-clears them).
func (s sharerSet) without(l sharerLayout, node int) sharerSet {
	switch l.format {
	case LimitedPointer:
		if s.over {
			return s
		}
		for i := 0; i < int(s.n); i++ {
			if s.ptrs[i] == uint16(node) {
				s.n--
				s.ptrs[i] = s.ptrs[s.n]
				s.ptrs[s.n] = 0
				return s
			}
		}
		return s
	case CoarseVector:
		return s
	default:
		s.bits &^= 1 << uint(node)
		return s
	}
}

// mayContain reports conservative membership: true whenever node could
// be a sharer. Exact for FullBitmap and non-overflowed LimitedPointer.
func (s sharerSet) mayContain(l sharerLayout, node int) bool {
	switch l.format {
	case LimitedPointer:
		return s.over || s.ptrContains(node)
	case CoarseVector:
		return s.bits&(1<<uint(node/l.cluster)) != 0
	default:
		return s.bits&(1<<uint(node)) != 0
	}
}

func (s sharerSet) ptrContains(node int) bool {
	for i := 0; i < int(s.n); i++ {
		if s.ptrs[i] == uint16(node) {
			return true
		}
	}
	return false
}

// appendMembers appends every (conservative) member in ascending node
// order — the invalidation fan-out order, identical to the historical
// bitmap iteration. buf is reused by the caller, so steady-state
// fan-out allocates nothing.
func (s sharerSet) appendMembers(l sharerLayout, buf []int) []int {
	switch l.format {
	case LimitedPointer:
		if s.over {
			for n := 0; n < l.nodes; n++ {
				buf = append(buf, n)
			}
			return buf
		}
		// Pointers are unordered; n is at most maxSharerPointers, so a
		// selection scan keeps ascending order without sorting storage.
		last := -1
		for k := 0; k < int(s.n); k++ {
			best := -1
			for i := 0; i < int(s.n); i++ {
				p := int(s.ptrs[i])
				if p > last && (best == -1 || p < best) {
					best = p
				}
			}
			buf = append(buf, best)
			last = best
		}
		return buf
	case CoarseVector:
		for c := s.bits; c != 0; c &= c - 1 {
			cluster := bits.TrailingZeros64(c)
			lo := cluster * l.cluster
			hi := lo + l.cluster
			if hi > l.nodes {
				hi = l.nodes
			}
			for n := lo; n < hi; n++ {
				buf = append(buf, n)
			}
		}
		return buf
	default:
		for b := s.bits; b != 0; b &= b - 1 {
			buf = append(buf, bits.TrailingZeros64(b))
		}
		return buf
	}
}

// sharerLayout resolves the configured sharer-set parameters, applying
// defaults (Dir_4_B pointers; the narrowest cluster that fits 64 bits)
// and validating that the format can actually represent Nodes nodes.
func (c Config) sharerLayout() (sharerLayout, error) {
	l := sharerLayout{format: c.Sharers, nodes: c.Nodes, pointers: c.SharerPointers, cluster: c.SharerClusterSize}
	switch c.Sharers {
	case FullBitmap:
		if c.Nodes > 64 {
			return l, fmt.Errorf("directory: full-bitmap sharer sets cap at 64 nodes (have %d); configure LimitedPointer or CoarseVector", c.Nodes)
		}
	case LimitedPointer:
		if l.pointers == 0 {
			l.pointers = defaultSharerPointers
		}
		if l.pointers < 1 || l.pointers > maxSharerPointers {
			return l, fmt.Errorf("directory: SharerPointers must be 1..%d (have %d)", maxSharerPointers, l.pointers)
		}
		if c.Nodes > 1<<16 {
			return l, fmt.Errorf("directory: limited-pointer sharer sets cap at %d nodes (have %d)", 1<<16, c.Nodes)
		}
	case CoarseVector:
		if l.cluster == 0 {
			l.cluster = (c.Nodes + 63) / 64
		}
		if l.cluster < 1 {
			return l, fmt.Errorf("directory: SharerClusterSize must be positive (have %d)", l.cluster)
		}
		if (c.Nodes+l.cluster-1)/l.cluster > 64 {
			return l, fmt.Errorf("directory: coarse vector needs at most 64 clusters; %d nodes / cluster size %d needs %d",
				c.Nodes, l.cluster, (c.Nodes+l.cluster-1)/l.cluster)
		}
	default:
		return l, fmt.Errorf("directory: unknown sharer format %d", c.Sharers)
	}
	return l, nil
}

// DescribeSharers renders the resolved sharer-set layout — format plus
// effective sizing parameters after defaulting — for display (Table 2).
func (c Config) DescribeSharers() string {
	l, err := c.sharerLayout()
	if err != nil {
		return err.Error()
	}
	switch l.format {
	case LimitedPointer:
		return fmt.Sprintf("limited-pointer Dir_%d_B (broadcast on overflow)", l.pointers)
	case CoarseVector:
		return fmt.Sprintf("coarse vector, %d nodes/bit", l.cluster)
	default:
		return "full bitmap (exact, up to 64 nodes)"
	}
}

// Validate reports a descriptive error for unusable configurations —
// in particular a node count the configured sharer-set format cannot
// represent. Callers that build whole machines should validate before
// constructing kernels and networks (see system.BuildChecked).
func (c Config) Validate() error {
	if c.Nodes < 1 {
		return fmt.Errorf("directory: need at least 1 node (have %d)", c.Nodes)
	}
	_, err := c.sharerLayout()
	return err
}
