package directory

import (
	"testing"
)

// fuzzSharerLayouts are the representations the fuzzer drives; the
// low bits of the first input byte pick one. They mirror
// sharerConfigs but bound node counts so op bytes map onto nodes
// densely.
var fuzzSharerLayouts = []Config{
	{Nodes: 16, Sharers: FullBitmap},
	{Nodes: 64, Sharers: FullBitmap},
	{Nodes: 16, Sharers: LimitedPointer, SharerPointers: 2},
	{Nodes: 64, Sharers: LimitedPointer}, // default Dir_4_B
	{Nodes: 256, Sharers: LimitedPointer, SharerPointers: 8},
	{Nodes: 64, Sharers: CoarseVector, SharerClusterSize: 4},
	{Nodes: 256, Sharers: CoarseVector},                       // default cluster size
	{Nodes: 250, Sharers: CoarseVector, SharerClusterSize: 7}, // ragged final cluster
}

// FuzzSharerSet drives byte-derived op sequences (add, remove, drain,
// checkpoint-snapshot, recovery-restore) through every sharer-set
// representation against the exact-set oracle: conservative superset
// always, exact where the format can represent the set, members
// ascending and in range — the same contract the property test pins,
// now under fuzzer-chosen schedules. The snapshot/restore ops mirror
// the protocol's undo-log discipline (entries copied by value), so
// value-copy semantics are fuzzed too.
func FuzzSharerSet(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{2, 0x10, 0x31, 0x52, 0x73, 0x01, 0x94, 0x03}) // overflow a 2-pointer entry, restore
	f.Add([]byte{6, 0xa0, 0xb1, 0xc2, 0x00, 0xd3, 0xe4})       // coarse clusters with a drain
	f.Add([]byte{7, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77}) // ragged final cluster
	f.Add([]byte{3, 0x18, 0x29, 0x3a, 0x4b, 0x5c, 0x01, 0x03}) // Dir_4_B overflow then restore
	f.Add([]byte{4, 0xff, 0xee, 0xdd, 0xcc, 0xbb, 0xaa, 0x99}) // 8-pointer entry at 256 nodes
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		cfg := fuzzSharerLayouts[int(data[0])%len(fuzzSharerLayouts)]
		lay, err := cfg.sharerLayout()
		if err != nil {
			t.Fatalf("fuzz layout invalid: %v", err)
		}
		var s sharerSet
		oracle := map[int]bool{}
		type snap struct {
			s      sharerSet
			oracle map[int]bool
		}
		var undo []snap
		for i, b := range data[1:] {
			switch b & 0x0f {
			case 0: // drain (recovery reset / PutM to DInv)
				s = sharerSet{}
				oracle = map[int]bool{}
			case 1: // checkpoint: snapshot by value
				if len(undo) < 64 {
					o := make(map[int]bool, len(oracle))
					for n := range oracle {
						o[n] = true
					}
					undo = append(undo, snap{s: s, oracle: o})
				}
			case 3: // recovery: restore the newest snapshot
				if len(undo) > 0 {
					sn := undo[len(undo)-1]
					undo = undo[:len(undo)-1]
					s = sn.s
					oracle = make(map[int]bool, len(sn.oracle))
					for n := range sn.oracle {
						oracle[n] = true
					}
				}
			default:
				// Spread byte entropy across the node range; the op
				// index decorrelates adds from the byte value so long
				// repeated inputs still explore.
				n := (int(b>>4)*31 + i*7) % lay.nodes
				if b&1 == 0 {
					s = s.with(lay, n)
					oracle[n] = true
				} else {
					s = s.without(lay, n)
					delete(oracle, n)
				}
			}
			checkAgainstOracle(t, lay, s, oracle)
		}
	})
}
