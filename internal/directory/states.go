// Package directory implements the paper §3.1 MOSI directory cache
// coherence protocol in two variants:
//
//   - Full: a complete protocol for an unordered interconnect. It handles
//     the Writeback/ForwardedRequest race explicitly, which costs an extra
//     transient state (II_F), an extra message flavor (stale Writeback-
//     Acks), transaction-tagged duplicate-data tolerance at requestors,
//     and directory-side data forwarding on racing writebacks.
//   - Spec: the speculatively simplified protocol. It *relies* on
//     point-to-point ordering of the ForwardedRequest virtual network; a
//     cache without a valid copy that receives a forwarded request has
//     witnessed a violated ordering assumption and reports it as a
//     mis-speculation (paper §3.1 feature 2: "one specific invalid
//     transition in a cache coherence controller").
//
// Controllers keep transient state in transaction buffers (TBEs):
// request TBEs for in-flight GetS/GetM and a writeback TBE for in-flight
// PutM. Cache arrays hold only stable lines. The directory is blocking:
// while a transaction is in flight it queues later requests for the same
// block and completes on the requestor's FinalAck (the paper's fourth
// virtual network).
package directory

import "fmt"

// Variant selects the full or the speculatively simplified protocol.
type Variant uint8

// Protocol variants.
const (
	// Full handles every race of the unordered network.
	Full Variant = iota
	// Spec relies on point-to-point ordering per virtual network and
	// treats its violation as a mis-speculation.
	Spec
)

func (v Variant) String() string {
	if v == Full {
		return "full"
	}
	return "spec"
}

// CState is a cache controller state (stable states live in the cache
// array; transients live in TBEs).
type CState uint8

// Cache controller states.
const (
	CInv CState = iota // I
	CS                 // S: shared, clean
	CO                 // O: owned, dirty, sharers may exist
	CM                 // M: modified, exclusive

	// Request TBE states.
	CISd  // IS_D: GetS issued, awaiting Data
	CIMad // IM_AD: GetM issued, awaiting Data and acks
	CIMa  // IM_A: Data received, awaiting acks
	CSMad // SM_AD: upgrade from S, awaiting Data and acks
	CSMa  // SM_A
	COMad // OM_AD: upgrade from O (still owner), awaiting ack count
	COMa  // OM_A

	// Writeback TBE states.
	CWBa // WB_A: PutM issued, still owner until WBAck
	CIIa // II_A: served a FwdGetM while writing back; awaiting WBAck

	// Full-variant-only state.
	CIIf // II_F: got a stale WBAck; awaiting the doomed forward

	numCStates
)

var cStateNames = [...]string{
	"I", "S", "O", "M",
	"IS_D", "IM_AD", "IM_A", "SM_AD", "SM_A", "OM_AD", "OM_A",
	"WB_A", "II_A", "II_F",
}

func (s CState) String() string {
	if int(s) < len(cStateNames) {
		return cStateNames[s]
	}
	return fmt.Sprintf("CState(%d)", uint8(s))
}

// CEvent is a cache controller event.
type CEvent uint8

// Cache controller events.
const (
	EvLoad CEvent = iota
	EvStore
	EvReplace // eviction chosen this line as victim
	EvFwdGetS
	EvFwdGetM
	EvInv
	EvWBAck      // plain Writeback-Ack
	EvWBAckStale // Full only: WBAck flagged "a forward to you is still in flight"
	EvData
	EvDataDup // Full only: duplicate Data for an already-satisfied transaction
	EvAck

	numCEvents
)

var cEventNames = [...]string{
	"Load", "Store", "Replace", "FwdGetS", "FwdGetM", "Inv",
	"WBAck", "WBAckStale", "Data", "DataDup", "Ack",
}

func (e CEvent) String() string {
	if int(e) < len(cEventNames) {
		return cEventNames[e]
	}
	return fmt.Sprintf("CEvent(%d)", uint8(e))
}

// DState is a directory controller stable state. The directory also has
// a busy condition (transaction in flight, requests queued), tracked
// outside the entry so checkpoints only ever capture stable states.
type DState uint8

// Directory states.
const (
	DInv DState = iota // no cached copies
	DS                 // shared by >=1 caches, memory up to date
	DM                 // exclusively owned, memory stale
	DO                 // owned with sharers, memory stale

	numDStates
)

var dStateNames = [...]string{"DI", "DS", "DM", "DO"}

func (s DState) String() string {
	if int(s) < len(dStateNames) {
		return dStateNames[s]
	}
	return fmt.Sprintf("DState(%d)", uint8(s))
}

// DEvent is a directory controller event.
type DEvent uint8

// Directory events. PutMRace is a PutM arriving while the directory is
// busy with a transaction whose forward targets the PutM sender — the
// §3.1 race. The two variants handle it differently.
const (
	DEvGetS DEvent = iota
	DEvGetM
	DEvPutMOwner // PutM from the recorded owner
	DEvPutMStale // PutM from a node that is no longer owner
	DEvPutMRace  // PutM racing an in-flight forward to the sender
	DEvFinalAck

	numDEvents
)

var dEventNames = [...]string{"GetS", "GetM", "PutM(owner)", "PutM(stale)", "PutM(race)", "FinalAck"}

func (e DEvent) String() string {
	if int(e) < len(dEventNames) {
		return dEventNames[e]
	}
	return fmt.Sprintf("DEvent(%d)", uint8(e))
}

type cKey struct {
	s CState
	e CEvent
}

type dKey struct {
	s DState
	e DEvent
}

// cacheSpecified lists every (state, event) pair the cache controller of
// each variant specifies. A pair outside this table is, for the Spec
// variant's designated signature, a detected mis-speculation; anything
// else is a protocol bug. The table is the source of truth for the
// complexity comparison (DESIGN.md experiment A1).
//
//detlint:allow edgecontrol registration table filled once in init, read-only afterwards
var cacheSpecified = map[Variant]map[cKey]bool{}

// dirSpecified is the directory controller analogue.
//
//detlint:allow edgecontrol registration table filled once in init, read-only afterwards
var dirSpecified = map[Variant]map[dKey]bool{}

func init() {
	common := []cKey{
		// Processor-initiated, stable states.
		{CInv, EvLoad}, {CInv, EvStore},
		{CS, EvLoad}, {CS, EvStore}, {CS, EvReplace},
		{CO, EvLoad}, {CO, EvStore}, {CO, EvReplace},
		{CM, EvLoad}, {CM, EvStore}, {CM, EvReplace},

		// Forwarded requests at owners.
		{CM, EvFwdGetS}, {CM, EvFwdGetM},
		{CO, EvFwdGetS}, {CO, EvFwdGetM},
		// Forwarded requests during an owner upgrade (OM_AD holds O).
		{COMad, EvFwdGetS}, {COMad, EvFwdGetM},
		// Forwarded requests during writeback: still owner until WBAck.
		{CWBa, EvFwdGetS}, {CWBa, EvFwdGetM},

		// Invalidations (stale ones can arrive at any pre-ownership
		// transient because S evictions are silent).
		{CInv, EvInv}, {CS, EvInv},
		{CISd, EvInv}, {CIMad, EvInv}, {CSMad, EvInv},

		// Data and ack collection.
		{CISd, EvData},
		{CIMad, EvData}, {CIMad, EvAck},
		{CIMa, EvAck},
		{CSMad, EvData}, {CSMad, EvAck},
		{CSMa, EvAck},
		{COMad, EvData}, {COMad, EvAck},
		{COMa, EvAck},

		// Writeback completion.
		{CWBa, EvWBAck}, {CIIa, EvWBAck},
	}
	fullOnly := []cKey{
		// Race handling on the unordered network: the stale WBAck warns
		// that a forward is still in flight; II_F absorbs it.
		{CWBa, EvWBAckStale},
		{CIIa, EvWBAckStale},
		{CIIf, EvFwdGetS}, {CIIf, EvFwdGetM},
		// Duplicate data tolerance: the directory may also have
		// responded with the written-back data.
		{CIMa, EvDataDup}, {CSMa, EvDataDup}, {CM, EvDataDup}, {CO, EvDataDup},
	}
	cacheSpecified[Spec] = makeCSet(common)
	cacheSpecified[Full] = makeCSet(append(append([]cKey{}, common...), fullOnly...))

	dcommon := []dKey{
		{DInv, DEvGetS}, {DS, DEvGetS}, {DM, DEvGetS}, {DO, DEvGetS},
		{DInv, DEvGetM}, {DS, DEvGetM}, {DM, DEvGetM}, {DO, DEvGetM},
		{DM, DEvPutMOwner}, {DO, DEvPutMOwner},
		{DInv, DEvPutMStale}, {DS, DEvPutMStale},
		{DM, DEvPutMStale}, {DO, DEvPutMStale},
		// PutMRace and FinalAck occur while busy; the stable state at
		// busy time is recorded per transaction kind.
		{DM, DEvPutMRace}, {DO, DEvPutMRace},
		{DInv, DEvFinalAck}, {DS, DEvFinalAck}, {DM, DEvFinalAck}, {DO, DEvFinalAck},
	}
	dirSpecified[Spec] = makeDSet(dcommon)
	dirSpecified[Full] = makeDSet(dcommon)
}

func makeCSet(keys []cKey) map[cKey]bool {
	m := make(map[cKey]bool, len(keys))
	for _, k := range keys {
		m[k] = true
	}
	return m
}

func makeDSet(keys []dKey) map[dKey]bool {
	m := make(map[dKey]bool, len(keys))
	for _, k := range keys {
		m[k] = true
	}
	return m
}

// Complexity summarizes a variant's controller complexity for the A1
// ablation: the paper's argument is that the speculative protocol needs
// fewer states and transitions.
type Complexity struct {
	Variant          Variant
	CacheStates      int
	CacheTransitions int
	DirStates        int
	DirTransitions   int
	MessageKinds     int
}

// ComplexityOf counts states and specified transitions for a variant.
func ComplexityOf(v Variant) Complexity {
	states := map[CState]bool{}
	for k := range cacheSpecified[v] {
		states[k.s] = true
	}
	msgs := 10 // GetS GetM PutM FwdGetS FwdGetM Inv WBAck Data Ack FinalAck
	if v == Full {
		msgs += 2 // stale WBAck flavor, TID-tagged duplicate data
	}
	return Complexity{
		Variant:          v,
		CacheStates:      len(states),
		CacheTransitions: len(cacheSpecified[v]),
		DirStates:        int(numDStates),
		DirTransitions:   len(dirSpecified[v]),
		MessageKinds:     msgs,
	}
}
