package directory

import (
	"fmt"
	"slices"

	"specsimp/internal/cache"
	"specsimp/internal/coherence"
	"specsimp/internal/mem"
	"specsimp/internal/network"
	"specsimp/internal/pool"
	"specsimp/internal/sim"
	"specsimp/internal/stats"
)

// Config parameterizes the protocol and its cache hierarchy
// (defaults follow the paper's Table 2).
type Config struct {
	Nodes   int
	Variant Variant

	// Sharers selects the directory entry's sharer-set representation
	// (the zero value, FullBitmap, is exact and caps the machine at 64
	// nodes). SharerPointers sizes LimitedPointer entries (0 = Dir_4_B);
	// SharerClusterSize sizes CoarseVector clusters (0 = narrowest
	// cluster that fits 64 vector bits). See Validate.
	Sharers           SharerFormat
	SharerPointers    int
	SharerClusterSize int

	L1Bytes, L1Ways int
	L2Bytes, L2Ways int

	L1Latency  sim.Time // L1 hit latency
	L2Latency  sim.Time // L2 hit latency
	DirLatency sim.Time // directory processing occupancy
	MemLatency sim.Time // DRAM access before a memory-sourced Data

	// TimeoutCycles is the coherence transaction timeout used as the §4
	// deadlock detector (three checkpoint intervals in the paper); 0
	// disables the watchdog.
	TimeoutCycles sim.Time
}

// DefaultConfig returns Table 2 parameters for n nodes. The sharer-set
// format is geometry-derived: exact bitmaps up to 64 nodes, limited
// pointers with broadcast overflow beyond.
func DefaultConfig(n int, v Variant) Config {
	return Config{
		Nodes:   n,
		Variant: v,
		Sharers: DefaultSharerFormat(n),
		L1Bytes: 128 * 1024, L1Ways: 4,
		L2Bytes: 4 * 1024 * 1024, L2Ways: 4,
		L1Latency:  1,
		L2Latency:  12,
		DirLatency: 20,
		MemLatency: 120,
	}
}

// UndoLogger is the checkpointing hook (satisfied by
// *safetynet.Manager). A nil logger disables checkpoint logging.
type UndoLogger interface {
	LogOldValue(node int, key uint64, undo func())
}

// Stats aggregates protocol measurements. All fields are exact integer
// accumulators, so per-shard instances merge to bit-identical totals
// regardless of how the nodes were partitioned.
type Stats struct {
	Loads, Stores    stats.Counter
	L1Hits, L2Hits   stats.Counter
	Transactions     stats.Counter
	Writebacks       stats.Counter
	RacesHandled     stats.Counter // Full: races absorbed by the extra machinery
	WBRaces          stats.Counter // writebacks that raced an in-flight forward
	DupDataDropped   stats.Counter
	MissLatency      stats.Histogram
	TimeoutsDetected stats.Counter
	OrderViolations  stats.Counter // Spec: detected p2p-ordering mis-speculations
	Invalidations    stats.Counter // Inv messages sent by directories
	InvBroadcasts    stats.Counter // inv fan-outs performed in Dir_i_B broadcast mode
	SharerOverflows  stats.Counter // limited-pointer entries degraded to broadcast
}

// merge folds o into s (exact, order-independent).
func (s *Stats) merge(o *Stats) {
	s.Loads.Add(o.Loads.Value())
	s.Stores.Add(o.Stores.Value())
	s.L1Hits.Add(o.L1Hits.Value())
	s.L2Hits.Add(o.L2Hits.Value())
	s.Transactions.Add(o.Transactions.Value())
	s.Writebacks.Add(o.Writebacks.Value())
	s.RacesHandled.Add(o.RacesHandled.Value())
	s.WBRaces.Add(o.WBRaces.Value())
	s.DupDataDropped.Add(o.DupDataDropped.Value())
	s.MissLatency.Merge(&o.MissLatency)
	s.TimeoutsDetected.Add(o.TimeoutsDetected.Value())
	s.OrderViolations.Add(o.OrderViolations.Value())
	s.Invalidations.Add(o.Invalidations.Value())
	s.InvBroadcasts.Add(o.InvBroadcasts.Value())
	s.SharerOverflows.Add(o.SharerOverflows.Value())
}

// Protocol is a complete 16-node (configurable) MOSI directory protocol
// instance wired to a network. Each node hosts a cache controller and a
// directory controller for its share of the address space (block-
// interleaved homes).
type Protocol struct {
	k   *sim.Kernel // shard 0's kernel (the only kernel when serial)
	net network.Fabric
	cfg Config
	lay sharerLayout // resolved sharer-set interpretation (from cfg)
	log UndoLogger

	// ks[node] and shardOf[node] map each node's controllers onto their
	// execution shard (PartitionOnShards); serial protocols map every
	// node to k / shard 0. All per-node work — delayed sends, completion
	// callbacks, transaction timestamps — uses the owning node's kernel.
	ks      []*sim.Kernel
	shardOf []int

	// OnMisSpeculation is invoked on a detected mis-speculation (Spec
	// variant ordering violation, or a watchdog timeout). It must
	// perform the recovery (reset, restore); the protocol abandons the
	// current message. Nil panics on detection — useful in unit tests
	// that must not mis-speculate.
	OnMisSpeculation func(reason string)

	// OnMisSpeculationAt, when non-nil, takes precedence over
	// OnMisSpeculation and additionally receives the detecting node.
	// Sharded systems wire it to *defer* the recovery to the next
	// window edge (a detection must not mutate other shards mid-window);
	// the detecting handler simply drops its message, exactly as it
	// does under an immediate recovery.
	OnMisSpeculationAt func(node coherence.NodeID, reason string)

	caches []*cacheCtrl
	dirs   []*dirCtrl

	// sts holds one Stats per shard (one entry when serial); Stats()
	// merges them exactly, so totals are shard-count-independent.
	sts   []Stats
	epoch uint64 // bumped on reset; invalidates scheduled closures

	// cmsgFree recycles the heap-boxed coherence.Msg payloads that ride
	// inside network messages, one list per shard (drawn from the
	// sender's shard, returned to the consumer's): a payload returns
	// once its network message is consumed. Together with the fabric's
	// own message free lists this keeps the steady-state send path
	// allocation-free and race-free.
	cmsgFree []pool.FreeList[coherence.Msg]
}

// Typed-event opcodes, packed into the low bits of a0 beside the epoch.
const (
	dopSend = iota // a1 = destination node, p = *coherence.Msg
	dopDone        // p = the processor completion callback
)

// HandleEvent implements sim.Handler for the protocol's delayed actions
// (directory/cache response sends and processor completion callbacks).
// Events scheduled before a recovery reset carry a stale epoch and are
// dropped, exactly like the closure-based predecessor `after`. The
// event always fires on the scheduling node's shard, so pool traffic
// stays shard-local.
func (p *Protocol) HandleEvent(a0, a1 uint64, pay any) {
	op := a0 & 3
	if a0>>2 != p.epoch {
		if op == dopSend {
			cm := pay.(*coherence.Msg)
			p.putCM(p.shardOf[cm.From], cm)
		}
		return
	}
	switch op {
	case dopSend:
		p.sendPooled(pay.(*coherence.Msg), coherence.NodeID(a1))
	case dopDone:
		pay.(func())()
	}
}

func (p *Protocol) getCM(shard int) *coherence.Msg     { return p.cmsgFree[shard].Get() }
func (p *Protocol) putCM(shard int, cm *coherence.Msg) { p.cmsgFree[shard].Put(cm) }

// sendAfter schedules m to be sent to `to` after d cycles without
// allocating: the message is boxed once from the pool and the delay is
// a typed event on the sending node's (m.From's) kernel. A recovery in
// the meantime drops it.
func (p *Protocol) sendAfter(d sim.Time, m coherence.Msg, to coherence.NodeID) {
	cm := p.getCM(p.shardOf[m.From])
	*cm = m
	p.ks[m.From].AfterEvent(d, p, p.epoch<<2|dopSend, uint64(to), cm)
}

// doneAfter schedules a processor completion callback at node after d
// cycles, dropped on recovery (the restored processors re-issue).
func (p *Protocol) doneAfter(node coherence.NodeID, d sim.Time, done func()) {
	p.ks[node].AfterEvent(d, p, p.epoch<<2|dopDone, 0, done)
}

// New builds the protocol over an existing network fabric; the fabric's
// clients for all nodes are claimed by the protocol. It panics on an
// invalid configuration; callers that want oversize machines reported
// as errors (before kernels and networks exist) use NewChecked, or
// validate Config up front as system.BuildChecked does.
func New(k *sim.Kernel, net network.Fabric, cfg Config, log UndoLogger) *Protocol {
	p, err := NewChecked(k, net, cfg, log)
	if err != nil {
		panic(err)
	}
	return p
}

// NewChecked is New with configuration errors returned instead of
// panicking: a node count the configured sharer-set format cannot
// represent (e.g. more than 64 nodes on a full bitmap) is a config
// error, not a crash.
func NewChecked(k *sim.Kernel, net network.Fabric, cfg Config, log UndoLogger) (*Protocol, error) {
	if cfg.Nodes != net.NumNodes() {
		return nil, fmt.Errorf("directory: %d nodes differ from network size %d", cfg.Nodes, net.NumNodes())
	}
	lay, err := cfg.sharerLayout()
	if err != nil {
		return nil, err
	}
	p := &Protocol{k: k, net: net, cfg: cfg, lay: lay, log: log}
	p.ks = make([]*sim.Kernel, cfg.Nodes)
	p.shardOf = make([]int, cfg.Nodes)
	p.sts = make([]Stats, 1)
	p.cmsgFree = make([]pool.FreeList[coherence.Msg], 1)
	p.caches = make([]*cacheCtrl, cfg.Nodes)
	p.dirs = make([]*dirCtrl, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		i := i
		p.ks[i] = k
		p.caches[i] = &cacheCtrl{
			p:              p,
			node:           coherence.NodeID(i),
			k:              k,
			st:             &p.sts[0],
			l1:             cache.New(cfg.L1Bytes, cfg.L1Ways),
			l2:             cache.New(cfg.L2Bytes, cfg.L2Ways),
			servedStable:   make(map[coherence.Addr]uint64),
			pendingRestore: make(map[coherence.Addr]restoredLine),
		}
		p.dirs[i] = &dirCtrl{
			p:       p,
			node:    coherence.NodeID(i),
			st:      &p.sts[0],
			store:   mem.NewStore(),
			entries: make(map[coherence.Addr]*dirEntry),
			busy:    make(map[coherence.Addr]*busyInfo),
			queue:   make(map[coherence.Addr][]coherence.Msg),
		}
		net.AttachClient(network.NodeID(i), network.ClientFunc(func(m *network.Message) bool {
			return p.deliver(coherence.NodeID(i), m)
		}))
	}
	return p, nil
}

// PartitionOnShards re-homes every node's controllers onto its shard:
// node i's cache and directory slice schedule on g.Kernel(shardOf[i])
// and count into that shard's Stats and payload pool. Call once, right
// after NewChecked, before any traffic. The fabric must be the matching
// sharded network, so that cross-node messages — the only cross-node
// interaction the protocol has — cross shards through boundary queues.
func (p *Protocol) PartitionOnShards(g *sim.Shards, shardOf []int) {
	if len(shardOf) != p.cfg.Nodes {
		panic("directory: shard map size mismatch")
	}
	p.k = g.Kernel(0)
	p.sts = make([]Stats, g.N())
	p.cmsgFree = make([]pool.FreeList[coherence.Msg], g.N())
	copy(p.shardOf, shardOf)
	for i := 0; i < p.cfg.Nodes; i++ {
		sh := shardOf[i]
		p.ks[i] = g.Kernel(sh)
		p.caches[i].k = p.ks[i]
		p.caches[i].st = &p.sts[sh]
		p.dirs[i].st = &p.sts[sh]
	}
}

// Stats exposes protocol counters: live for a serial protocol, an
// exact merged snapshot (identical at any shard count) for a sharded
// one. Sharded callers must be quiesced.
func (p *Protocol) Stats() *Stats {
	if len(p.sts) == 1 {
		return &p.sts[0]
	}
	m := &Stats{}
	for i := range p.sts {
		m.merge(&p.sts[i])
	}
	return m
}

// Config returns the protocol configuration.
func (p *Protocol) Config() Config { return p.cfg }

// Home returns the directory node for a block (block-interleaved).
func (p *Protocol) Home(a coherence.Addr) coherence.NodeID {
	return coherence.NodeID((uint64(a) / coherence.BlockBytes) % uint64(p.cfg.Nodes))
}

// InFlight reports the number of live transactions (request TBEs,
// writeback TBEs and busy directory entries); the system layer drains
// to zero before taking a checkpoint.
func (p *Protocol) InFlight() int {
	n := 0
	for _, c := range p.caches {
		if c.req != nil {
			n++
		}
		if c.wb != nil {
			n++
		}
		n += len(c.parked)
	}
	for _, d := range p.dirs {
		n += len(d.busy)
	}
	return n
}

// ResetTransients clears every TBE, busy entry and queued request: the
// protocol's part of a SafetyNet recovery (checkpointed state is
// restored by the undo log; transients are derived state that is simply
// discarded along with the in-flight messages).
func (p *Protocol) ResetTransients() {
	p.epoch++
	for _, c := range p.caches {
		c.flushPendingRestores()
		c.req = nil
		c.reqStore.done = nil // drop the callback reference with the TBE
		c.wb = nil
		c.parked = nil
		c.servedStable = make(map[coherence.Addr]uint64)
		c.l1.Clear()
	}
	for _, d := range p.dirs {
		d.busy = make(map[coherence.Addr]*busyInfo)
		d.queue = make(map[coherence.Addr][]coherence.Msg)
	}
}

// TimeoutScan reports the first node (lowest id) whose outstanding
// transaction has exceeded cfg.TimeoutCycles, if any. It reads every
// node's TBEs, so sharded systems call it only from window-edge
// control context (the system's watchdog), where all shards are
// quiesced.
func (p *Protocol) TimeoutScan() (coherence.NodeID, bool) {
	if p.cfg.TimeoutCycles == 0 {
		return 0, false
	}
	now := p.k.Now()
	for _, c := range p.caches {
		if c.req != nil && now-c.req.start > p.cfg.TimeoutCycles {
			return c.node, true
		}
		if c.wb != nil && now-c.wb.start > p.cfg.TimeoutCycles {
			return c.node, true
		}
	}
	return 0, false
}

// NoteTimeout counts a watchdog detection (attributed to the control
// shard so totals stay shard-count-independent).
func (p *Protocol) NoteTimeout() { p.sts[0].TimeoutsDetected.Inc() }

// StartWatchdog arms the §4 transaction-timeout deadlock detector:
// every interval it checks all transactions and reports a
// mis-speculation if any has been outstanding longer than
// cfg.TimeoutCycles. A no-op if TimeoutCycles is zero. Serial systems
// only — sharded systems drive TimeoutScan from edge control instead.
func (p *Protocol) StartWatchdog(interval sim.Time) {
	if p.cfg.TimeoutCycles == 0 {
		return
	}
	var tick func()
	tick = func() {
		if node, ok := p.TimeoutScan(); ok {
			p.NoteTimeout()
			p.misSpeculate(node, "deadlock-timeout")
		}
		p.k.After(interval, tick)
	}
	p.k.After(interval, tick)
}

// after schedules fn on node's kernel but drops it if a recovery reset
// happens first: a delayed action of a rolled-back transaction must not
// leak into the restored execution.
func (p *Protocol) after(node coherence.NodeID, d sim.Time, fn func()) {
	e := p.epoch
	p.ks[node].After(d, func() {
		if p.epoch == e {
			fn()
		}
	})
}

func (p *Protocol) misSpeculate(node coherence.NodeID, reason string) {
	if p.OnMisSpeculationAt != nil {
		p.OnMisSpeculationAt(node, reason)
		return
	}
	if p.OnMisSpeculation == nil {
		panic("directory: mis-speculation detected with no recovery wired: " + reason)
	}
	p.OnMisSpeculation(reason)
}

func (p *Protocol) send(m coherence.Msg, to coherence.NodeID) {
	cm := p.getCM(p.shardOf[m.From])
	*cm = m
	p.sendPooled(cm, to)
}

// sendPooled injects a pool-boxed payload; ownership of cm passes to the
// network until the destination consumes it (deliver returns it to the
// pool) or a recovery drops it (the box is simply garbage collected and
// the pool refills).
func (p *Protocol) sendPooled(cm *coherence.Msg, to coherence.NodeID) {
	nm := network.AllocFor(p.net, network.NodeID(cm.From))
	nm.Src = network.NodeID(cm.From)
	nm.Dst = network.NodeID(to)
	nm.VNet = coherence.VNetOf(cm.Kind)
	nm.Size = coherence.SizeOf(cm.Kind)
	nm.Payload = cm
	p.net.Send(nm)
}

// deliver dispatches an incoming network message to the node's cache or
// directory controller. It returns false if the message cannot be
// consumed yet (resource back-pressure; the network retries on Kick).
func (p *Protocol) deliver(node coherence.NodeID, nm *network.Message) bool {
	var msg coherence.Msg
	cm, pooled := nm.Payload.(*coherence.Msg)
	if pooled {
		msg = *cm
	} else if v, ok := nm.Payload.(coherence.Msg); ok {
		// Scripted fabrics and tests may inject plain value payloads.
		msg = v
	} else {
		panic(fmt.Sprintf("directory: foreign payload %T", nm.Payload))
	}
	var consumed bool
	switch msg.Kind {
	case coherence.GetS, coherence.GetM, coherence.PutM, coherence.FinalAck:
		p.dirs[node].handle(msg)
		consumed = true
	default:
		consumed = p.caches[node].handle(msg)
	}
	if consumed && pooled {
		p.putCM(p.shardOf[node], cm)
	}
	return consumed
}

// Access performs one processor memory reference at node. done runs at
// completion (with the data, for loads; with write permission consumed,
// for stores). The processor model is blocking: a node never has two
// outstanding Accesses.
func (p *Protocol) Access(node coherence.NodeID, addr coherence.Addr, kind coherence.AccessType, done func()) {
	p.caches[node].access(coherence.BlockAddr(addr), kind, done)
}

// ---- cache controller ----

type reqTBE struct {
	addr       coherence.Addr
	state      CState
	isStore    bool
	acksNeeded int // -1 until Data arrives
	acksGot    int
	version    uint64
	gotData    bool
	tid        uint64
	start      sim.Time
	done       func()
}

type wbTBE struct {
	addr     coherence.Addr
	state    CState // CWBa, CIIa, CIIf
	version  uint64
	served   map[uint64]bool // TIDs of forwards served while writing back
	staleTID uint64          // TID awaited in CIIf
	start    sim.Time
}

type parkedAccess struct {
	addr coherence.Addr
	kind coherence.AccessType
	done func()
}

type cacheCtrl struct {
	p    *Protocol
	node coherence.NodeID
	k    *sim.Kernel // the owning shard's kernel
	st   *Stats      // the owning shard's stats
	l1   *cache.Cache
	l2   *cache.Cache
	req  *reqTBE
	wb   *wbTBE
	// parked holds accesses waiting for the writeback TBE (an access to
	// a block currently being written back).
	parked []parkedAccess
	// servedStable records the TID of the last forward served from the
	// stable array (M/O + FwdGetS) per block. If that block is evicted
	// while the forward's transaction is still busy at the directory, a
	// racing PutM draws a stale WBAck carrying that TID — which must be
	// recognized as already-served rather than awaited in II_F.
	servedStable map[coherence.Addr]uint64
	// tidNext numbers this node's transactions; combined with the node
	// id it yields globally unique, end-to-end transaction ids, which
	// requestors use to reject stale duplicate Data from an earlier
	// transaction on the same block.
	tidNext uint64
	// pendingRestore holds rollback line installs that found their set
	// transiently full (log deduplication can reorder an evictee's undo
	// ahead of its replacement's); they are flushed once the undo pass
	// completes, when checkpoint occupancy guarantees free frames.
	pendingRestore map[coherence.Addr]restoredLine

	// reqStore and wbStore back req and wb: the controller has at most
	// one of each outstanding, so the TBEs are reused in place instead
	// of allocated per transaction.
	reqStore reqTBE
	wbStore  wbTBE
}

type restoredLine struct {
	state   uint8
	version uint64
}

// logLine records the old value of the node's L2 line for addr in the
// checkpoint log; call before any mutation of that line.
func (c *cacheCtrl) logLine(addr coherence.Addr) {
	if c.p.log == nil {
		return
	}
	var old cache.Line
	present := false
	if l := c.l2.Peek(addr); l != nil {
		old = *l
		present = true
	}
	node := int(c.node)
	c.p.log.LogOldValue(node, uint64(addr)|1, func() {
		c.restoreLine(addr, present, old.State, old.Version)
	})
}

func (c *cacheCtrl) restoreLine(addr coherence.Addr, present bool, state uint8, version uint64) {
	c.l1.Invalidate(addr)
	if !present {
		delete(c.pendingRestore, addr)
		c.l2.Invalidate(addr)
		return
	}
	if l := c.l2.Peek(addr); l != nil {
		delete(c.pendingRestore, addr)
		l.State = state
		l.Version = version
		return
	}
	f := c.l2.Victim(addr, func(*cache.Line) bool { return false })
	if f == nil || f.Valid {
		// The set is transiently over-full mid-rollback; park the
		// install until the undo pass finishes (flushPendingRestores).
		c.pendingRestore[addr] = restoredLine{state: state, version: version}
		return
	}
	delete(c.pendingRestore, addr)
	c.l2.Install(f, addr, state, version)
}

// flushPendingRestores completes deferred rollback installs. After the
// full undo pass every set holds exactly its checkpoint contents minus
// the deferred lines, so a free frame is guaranteed for each.
func (c *cacheCtrl) flushPendingRestores() {
	// Install in address order: frame choice and LRU rank depend on
	// install order, so flushing in map order would leave the cache in
	// a different (replay-divergent) state on every run.
	addrs := make([]coherence.Addr, 0, len(c.pendingRestore))
	for addr := range c.pendingRestore {
		addrs = append(addrs, addr)
	}
	slices.Sort(addrs)
	for _, addr := range addrs {
		rl := c.pendingRestore[addr]
		f := c.l2.Victim(addr, func(*cache.Line) bool { return false })
		if f == nil || f.Valid {
			panic(fmt.Sprintf("directory: set still full flushing restore of %#x at node %d", uint64(addr), c.node))
		}
		c.l2.Install(f, addr, rl.state, rl.version)
	}
	clear(c.pendingRestore)
}

func (c *cacheCtrl) access(addr coherence.Addr, kind coherence.AccessType, done func()) {
	if c.req != nil {
		panic("directory: concurrent accesses at one node (processor must block)")
	}
	if kind == coherence.Load {
		c.st.Loads.Inc()
	} else {
		c.st.Stores.Inc()
	}
	// A block being written back is untouchable until the WBAck.
	if c.wb != nil && c.wb.addr == addr {
		c.parked = append(c.parked, parkedAccess{addr, kind, done})
		return
	}
	line := c.l2.Lookup(addr)
	if line != nil {
		st := CState(line.State)
		hit := kind == coherence.Load || st == CM
		if hit {
			lat := c.p.cfg.L2Latency
			if c.l1.Lookup(addr) != nil {
				c.st.L1Hits.Inc()
				lat = c.p.cfg.L1Latency
			} else {
				c.st.L2Hits.Inc()
				c.installL1(addr)
			}
			if kind == coherence.Store {
				c.logLine(addr)
				line.Version++
			}
			c.p.doneAfter(c.node, lat, done)
			return
		}
		// Store to S or O: upgrade.
		from := CSMad
		if st == CO {
			from = COMad
		}
		c.startRequest(addr, coherence.GetM, from, true, done)
		return
	}
	// Miss from I.
	if kind == coherence.Load {
		c.startRequest(addr, coherence.GetS, CISd, false, done)
	} else {
		c.startRequest(addr, coherence.GetM, CIMad, true, done)
	}
}

func (c *cacheCtrl) installL1(addr coherence.Addr) {
	if f := c.l1.Victim(addr, nil); f != nil {
		c.l1.Install(f, addr, 0, 0)
	}
}

func (c *cacheCtrl) startRequest(addr coherence.Addr, kind coherence.MsgKind, st CState, isStore bool, done func()) {
	c.st.Transactions.Inc()
	c.tidNext++
	tid := uint64(c.node)<<48 | c.tidNext
	c.reqStore = reqTBE{
		addr: addr, state: st, isStore: isStore,
		acksNeeded: -1, tid: tid, start: c.k.Now(), done: done,
	}
	c.req = &c.reqStore
	c.p.send(coherence.Msg{Kind: kind, Addr: addr, From: c.node, Requestor: c.node, TID: tid}, c.p.Home(addr))
}

// handle processes one incoming coherence message at the cache
// controller; it returns false when the message must wait (Data that
// needs a frame while the writeback TBE is occupied).
func (c *cacheCtrl) handle(msg coherence.Msg) bool {
	switch msg.Kind {
	case coherence.Data:
		return c.handleData(msg)
	case coherence.Ack:
		c.handleAck(msg)
	case coherence.Inv:
		c.handleInv(msg)
	case coherence.FwdGetS, coherence.FwdGetM:
		c.handleFwd(msg)
	case coherence.WBAck:
		c.handleWBAck(msg)
	default:
		panic("directory: cache received " + msg.Kind.String())
	}
	return true
}

func (c *cacheCtrl) handleData(msg coherence.Msg) bool {
	t := c.req
	if t == nil || t.addr != msg.Addr || t.gotData || msg.TID != t.tid {
		// No transaction wants this data: it is the directory's copy of
		// a race response the old owner also supplied, or a stale
		// duplicate outliving its (completed) transaction — possible
		// only in the Full variant, whose race handling double-sends.
		if c.p.cfg.Variant == Full {
			c.st.DupDataDropped.Inc()
			return true
		}
		c.unspecifiedCache(c.stateOf(msg.Addr), EvDataDup, msg)
		return true
	}
	// The line is installed at Data time (the directory is busy with
	// this very transaction, so no forward can observe it early). If a
	// frame requires a writeback and the writeback TBE is occupied, the
	// message waits in the ingress queue — nothing is mutated.
	if c.l2.Peek(t.addr) == nil && !c.canAcquireFrame(t.addr) {
		return false
	}
	t.gotData = true
	t.acksNeeded = msg.AckCount
	t.version = msg.Version
	// An upgrading sharer/owner already holds the freshest data; never
	// let a stale memory copy roll the version back.
	if l := c.l2.Peek(msg.Addr); l != nil && l.Version > t.version {
		t.version = l.Version
	}
	c.installLine()
	if t.acksGot >= t.acksNeeded {
		c.finishRequest()
		return true
	}
	switch t.state {
	case CIMad:
		t.state = CIMa
	case CSMad:
		t.state = CSMa
	case COMad:
		t.state = COMa
	case CISd:
		// A GetS has no acks to wait for; reaching here is a bug.
		panic("directory: GetS data with pending acks")
	}
	return true
}

func (c *cacheCtrl) handleAck(msg coherence.Msg) {
	t := c.req
	if t == nil || t.addr != msg.Addr {
		panic("directory: stray inv-ack")
	}
	t.acksGot++
	if t.gotData && t.acksGot >= t.acksNeeded {
		c.finishRequest()
	}
}

// canAcquireFrame reports whether acquireFrame would succeed, without
// side effects.
func (c *cacheCtrl) canAcquireFrame(addr coherence.Addr) bool {
	v := c.l2.Victim(addr, nil)
	if v == nil {
		return false
	}
	if !v.Valid || CState(v.State) == CS {
		return true
	}
	return c.wb == nil
}

// installLine places the transaction's block in the array in its final
// stable state (data has arrived; acks may still be outstanding, but no
// other agent can observe the line because the directory is busy with
// this transaction).
func (c *cacheCtrl) installLine() {
	t := c.req
	st := CS
	if t.isStore {
		st = CM
	}
	if line := c.l2.Peek(t.addr); line != nil {
		c.logLine(t.addr)
		line.State = uint8(st)
		line.Version = t.version
		return
	}
	f, ok := c.acquireFrame(t.addr)
	if !ok {
		panic("directory: installLine without a frame (canAcquireFrame lied)")
	}
	c.logLine(t.addr)
	c.l2.Install(f, t.addr, uint8(st), t.version)
}

// finishRequest retires the access: bumps the version for stores,
// releases the directory with a FinalAck and calls the processor back.
func (c *cacheCtrl) finishRequest() {
	t := c.req
	line := c.l2.Peek(t.addr)
	if line == nil {
		panic("directory: finishing a request with no line installed")
	}
	if t.isStore {
		c.logLine(t.addr)
		line.Version++ // the store itself produces a new version
	}
	c.installL1(t.addr)
	c.p.send(coherence.Msg{Kind: coherence.FinalAck, Addr: t.addr, From: c.node, TID: t.tid}, c.p.Home(t.addr))
	c.st.MissLatency.Observe(uint64(c.k.Now() - t.start))
	done := t.done
	t.done = nil
	c.req = nil
	if done != nil {
		c.p.doneAfter(c.node, 0, done)
	}
}

// acquireFrame finds (or frees, by starting a writeback) an L2 frame
// for addr. ok==false means the writeback TBE is occupied and the
// caller must retry later.
func (c *cacheCtrl) acquireFrame(addr coherence.Addr) (*cache.Line, bool) {
	v := c.l2.Victim(addr, nil)
	if v == nil {
		panic("directory: no victim in a fully stable set")
	}
	if !v.Valid {
		return v, true
	}
	switch CState(v.State) {
	case CS:
		c.logLine(v.Addr)
		c.l1.Invalidate(v.Addr)
		v.Valid = false // silent eviction
		return v, true
	case CM, CO:
		if c.wb != nil {
			return nil, false
		}
		c.startWriteback(v)
		return v, true
	default:
		panic("directory: transient state in cache array")
	}
}

func (c *cacheCtrl) startWriteback(v *cache.Line) {
	c.st.Writebacks.Inc()
	addr, ver := v.Addr, v.Version
	c.logLine(addr)
	c.l1.Invalidate(addr)
	v.Valid = false
	served := c.wbStore.served
	if served == nil {
		served = make(map[uint64]bool)
	} else {
		clear(served)
	}
	c.wbStore = wbTBE{addr: addr, state: CWBa, version: ver, served: served, start: c.k.Now()}
	c.wb = &c.wbStore
	if tid, ok := c.servedStable[addr]; ok {
		c.wb.served[tid] = true
		delete(c.servedStable, addr)
	}
	c.p.send(coherence.Msg{Kind: coherence.PutM, Addr: addr, From: c.node, Version: ver}, c.p.Home(addr))
}

func (c *cacheCtrl) freeWB() {
	c.wb = nil
	// Unpark accesses to the written-back block and retry any Data
	// delivery blocked on the TBE.
	parked := c.parked
	c.parked = nil
	for _, a := range parked {
		a := a
		c.p.after(c.node, 0, func() { c.access(a.addr, a.kind, a.done) })
	}
	c.p.net.Kick(network.NodeID(c.node))
}

func (c *cacheCtrl) handleInv(msg coherence.Msg) {
	ack := func() {
		c.p.send(coherence.Msg{Kind: coherence.Ack, Addr: msg.Addr, From: c.node}, msg.Requestor)
	}
	if t := c.req; t != nil && t.addr == msg.Addr {
		switch t.state {
		case CISd, CIMad:
			ack() // stale Inv for a silently evicted older copy
			return
		case CSMad:
			// Our S copy is invalidated mid-upgrade.
			c.logLine(msg.Addr)
			c.l1.Invalidate(msg.Addr)
			c.l2.Invalidate(msg.Addr)
			t.state = CIMad
			ack()
			return
		default:
			c.unspecifiedCache(t.state, EvInv, msg)
			return
		}
	}
	if c.wb != nil && c.wb.addr == msg.Addr {
		// Under exact sharer tracking the owner is never in the sharer
		// set, so an Inv landing on a pending writeback is still an
		// illegal transition — keep the detection point. An imprecise
		// fan-out (overflowed limited-pointer entry, coarse cluster) can
		// legitimately name an ex-owner whose writeback the directory
		// already absorbed; the TBE's copy is dead to the protocol
		// (memory or the new owner has the data) and acking closes the
		// requestor's count. The directory flags that case per message,
		// so exact entries of every format stay armed.
		if !msg.Imprecise {
			c.unspecifiedCache(c.wb.state, EvInv, msg)
			return
		}
		ack()
		return
	}
	line := c.l2.Peek(msg.Addr)
	if line == nil {
		ack() // stale Inv after silent eviction
		return
	}
	switch CState(line.State) {
	case CS:
		c.logLine(msg.Addr)
		c.l1.Invalidate(msg.Addr)
		line.Valid = false
		ack()
	default:
		c.unspecifiedCache(CState(line.State), EvInv, msg)
	}
}

func (c *cacheCtrl) handleFwd(msg coherence.Msg) {
	ev := EvFwdGetS
	if msg.Kind == coherence.FwdGetM {
		ev = EvFwdGetM
	}
	sendData := func(version uint64) {
		c.p.sendAfter(c.p.cfg.L2Latency, coherence.Msg{
			Kind: coherence.Data, Addr: msg.Addr, From: c.node,
			Requestor: msg.Requestor, Version: version,
			AckCount: msg.AckCount, TID: msg.TID,
		}, msg.Requestor)
	}

	// Writeback in flight: the TBE is still the owner (WB_A).
	if c.wb != nil && c.wb.addr == msg.Addr {
		switch c.wb.state {
		case CWBa:
			c.wb.served[msg.TID] = true
			sendData(c.wb.version)
			if ev == EvFwdGetM {
				c.wb.state = CIIa
			}
		case CIIf:
			// Full variant: the doomed forward the stale WBAck warned
			// about; the directory already supplied the data.
			c.freeWB()
		default:
			c.unspecifiedCache(c.wb.state, ev, msg)
		}
		return
	}
	// Owner upgrade in flight (OM_AD still holds the O line).
	if t := c.req; t != nil && t.addr == msg.Addr && t.state == COMad {
		line := c.l2.Peek(msg.Addr)
		if line == nil {
			panic("directory: OM_AD without an O line")
		}
		sendData(line.Version)
		if ev == EvFwdGetM {
			c.logLine(msg.Addr)
			c.l1.Invalidate(msg.Addr)
			line.Valid = false
			t.state = CIMad
		}
		return
	}
	line := c.l2.Peek(msg.Addr)
	if line == nil {
		// THE detection point (paper §3.1): a cache without a valid
		// copy receives a forwarded request. Under the Spec variant the
		// interconnect reordered a WBAck ahead of this forward; recover.
		if c.p.cfg.Variant == Spec {
			c.st.OrderViolations.Inc()
			c.p.misSpeculate(c.node, "p2p-ordering")
			return
		}
		c.unspecifiedCache(CInv, ev, msg)
		return
	}
	switch CState(line.State) {
	case CM, CO:
		sendData(line.Version)
		c.logLine(msg.Addr)
		if ev == EvFwdGetS {
			line.State = uint8(CO)
			// The line survives and may be evicted while this forward's
			// transaction is still busy; remember we served it.
			c.servedStable[msg.Addr] = msg.TID
		} else {
			c.l1.Invalidate(msg.Addr)
			line.Valid = false
		}
	default:
		c.unspecifiedCache(CState(line.State), ev, msg)
	}
}

func (c *cacheCtrl) handleWBAck(msg coherence.Msg) {
	if c.wb == nil || c.wb.addr != msg.Addr {
		c.unspecifiedCache(c.stateOf(msg.Addr), EvWBAck, msg)
		return
	}
	if msg.Stale {
		// Full variant only: a forward to this node is (or was) in
		// flight. If we already served it, the writeback is finished;
		// otherwise wait for the doomed forward in II_F.
		if c.p.cfg.Variant != Full {
			c.unspecifiedCache(c.wb.state, EvWBAckStale, msg)
			return
		}
		c.st.RacesHandled.Inc()
		if c.wb.served[msg.TID] || c.wb.state == CIIa {
			c.freeWB()
			return
		}
		c.wb.state = CIIf
		c.wb.staleTID = msg.TID
		return
	}
	switch c.wb.state {
	case CWBa, CIIa:
		c.freeWB()
	default:
		c.unspecifiedCache(c.wb.state, EvWBAck, msg)
	}
}

// stateOf reconstructs the controller-visible state for addr, for
// diagnostics.
func (c *cacheCtrl) stateOf(addr coherence.Addr) CState {
	if c.req != nil && c.req.addr == addr {
		return c.req.state
	}
	if c.wb != nil && c.wb.addr == addr {
		return c.wb.state
	}
	if l := c.l2.Peek(addr); l != nil {
		return CState(l.State)
	}
	return CInv
}

func (c *cacheCtrl) unspecifiedCache(s CState, e CEvent, msg coherence.Msg) {
	panic(fmt.Sprintf("directory(%s): unspecified cache transition node=%d state=%s event=%s msg={%s}",
		c.p.cfg.Variant, c.node, s, e, msg))
}
