package directory

import "specsimp/internal/coherence"

// BlockVersion returns the globally current data version of a block:
// the owner's cached copy if one exists (including one parked in a
// writeback TBE), otherwise memory's copy at the home node. Intended
// for verification at quiescent points.
func (p *Protocol) BlockVersion(a coherence.Addr) uint64 {
	a = coherence.BlockAddr(a)
	for _, c := range p.caches {
		if l := c.l2.Peek(a); l != nil {
			s := CState(l.State)
			if s == CM || s == CO {
				return l.Version
			}
		}
		if c.wb != nil && c.wb.addr == a && c.wb.state == CWBa {
			return c.wb.version
		}
	}
	return p.dirs[p.Home(a)].store.Read(a)
}

// CacheState returns the controller-visible coherence state of a block
// at a node (stable array state, TBE transient, or I).
func (p *Protocol) CacheState(node coherence.NodeID, a coherence.Addr) CState {
	return p.caches[node].stateOf(coherence.BlockAddr(a))
}

// DirState returns the home directory's stable state for a block and
// whether a transaction is currently in flight for it.
func (p *Protocol) DirState(a coherence.Addr) (DState, bool) {
	a = coherence.BlockAddr(a)
	d := p.dirs[p.Home(a)]
	e := d.entries[a]
	if e == nil {
		return DInv, d.busy[a] != nil
	}
	return e.state, d.busy[a] != nil
}

// MemVersion returns main memory's version of a block at its home.
func (p *Protocol) MemVersion(a coherence.Addr) uint64 {
	a = coherence.BlockAddr(a)
	return p.dirs[p.Home(a)].store.Read(a)
}
