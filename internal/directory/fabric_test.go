package directory

import (
	"testing"

	"specsimp/internal/coherence"
	"specsimp/internal/network"
	"specsimp/internal/sim"
)

// testFabric is a scriptable transport: tests pick exactly which queued
// message is delivered next, so races that depend on message ordering
// (the whole point of §3.1) can be forced deterministically.
type testFabric struct {
	k       *sim.Kernel
	nodes   int
	clients []network.Client
	queue   []*network.Message
}

func newTestFabric(k *sim.Kernel, nodes int) *testFabric {
	return &testFabric{k: k, nodes: nodes, clients: make([]network.Client, nodes)}
}

func (f *testFabric) Send(m *network.Message)                         { f.queue = append(f.queue, m) }
func (f *testFabric) Kick(network.NodeID)                             {}
func (f *testFabric) AttachClient(n network.NodeID, c network.Client) { f.clients[n] = c }
func (f *testFabric) NumNodes() int                                   { return f.nodes }

func (f *testFabric) payload(m *network.Message) coherence.Msg {
	if cm, ok := m.Payload.(*coherence.Msg); ok {
		return *cm
	}
	return m.Payload.(coherence.Msg)
}

// deliverFirst delivers the oldest queued message matching pred,
// pumping the kernel first so delayed protocol sends are materialized.
// It reports whether a matching message was found and consumed.
func (f *testFabric) deliverFirst(t *testing.T, pred func(coherence.Msg, *network.Message) bool) bool {
	t.Helper()
	f.k.Drain(1_000_000)
	for i, m := range f.queue {
		if pred(f.payload(m), m) {
			// Unlink before delivering: the handler may clear the queue
			// (a scripted recovery does exactly that).
			f.queue = append(f.queue[:i:i], f.queue[i+1:]...)
			if !f.clients[m.Dst].Deliver(m) {
				t.Fatalf("scripted delivery refused: %v", f.payload(m))
			}
			f.k.Drain(1_000_000)
			return true
		}
	}
	return false
}

// deliverKind delivers the oldest queued message of the given kind.
func (f *testFabric) deliverKind(t *testing.T, k coherence.MsgKind) {
	t.Helper()
	if !f.deliverFirst(t, func(m coherence.Msg, _ *network.Message) bool { return m.Kind == k }) {
		t.Fatalf("no queued %s message; queue=%v", k, f.dump())
	}
}

// deliverAll delivers remaining messages FIFO until quiescent.
func (f *testFabric) deliverAll(t *testing.T) {
	t.Helper()
	for guard := 0; ; guard++ {
		if guard > 100_000 {
			t.Fatal("deliverAll did not quiesce")
		}
		f.k.Drain(1_000_000)
		if len(f.queue) == 0 {
			return
		}
		m := f.queue[0]
		f.queue = f.queue[1:]
		if !f.clients[m.Dst].Deliver(m) {
			f.queue = append(f.queue, m) // retry after others make progress
		}
	}
}

func (f *testFabric) dump() []string {
	var out []string
	for _, m := range f.queue {
		out = append(out, f.payload(m).String())
	}
	return out
}

// tinyConfig builds a 4-node config with a 1-set/2-way L2 so evictions
// and writebacks are easy to provoke.
func tinyConfig(v Variant) Config {
	c := DefaultConfig(4, v)
	c.L1Bytes, c.L1Ways = 64, 1
	c.L2Bytes, c.L2Ways = 2*64, 2
	return c
}

// scripted builds a protocol over a test fabric.
func scripted(t *testing.T, v Variant) (*sim.Kernel, *testFabric, *Protocol) {
	t.Helper()
	k := sim.NewKernel()
	f := newTestFabric(k, 4)
	p := New(k, f, tinyConfig(v), nil)
	return k, f, p
}

// doAccess performs a complete access, delivering all traffic FIFO.
func doAccess(t *testing.T, f *testFabric, p *Protocol, node coherence.NodeID, a coherence.Addr, kind coherence.AccessType) {
	t.Helper()
	completed := false
	p.Access(node, a, kind, func() { completed = true })
	f.deliverAll(t)
	if !completed {
		t.Fatalf("access node=%d addr=%#x %s never completed", node, uint64(a), kind)
	}
}
