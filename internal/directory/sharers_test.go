package directory

import (
	"fmt"
	"testing"

	"specsimp/internal/sim"
)

// sharerConfigs are the representative layouts the property test drives:
// every format, at geometries below and above the bitmap ceiling, with
// pointer/cluster sizing that forces overflow and intra-cluster
// aliasing to actually happen.
var sharerConfigs = []Config{
	{Nodes: 16, Sharers: FullBitmap},
	{Nodes: 64, Sharers: FullBitmap},
	{Nodes: 16, Sharers: LimitedPointer, SharerPointers: 2},
	{Nodes: 64, Sharers: LimitedPointer}, // default Dir_4_B
	{Nodes: 256, Sharers: LimitedPointer, SharerPointers: 8},
	{Nodes: 64, Sharers: CoarseVector, SharerClusterSize: 4},
	{Nodes: 256, Sharers: CoarseVector},                       // default cluster size 4
	{Nodes: 250, Sharers: CoarseVector, SharerClusterSize: 7}, // ragged final cluster
}

// checkAgainstOracle verifies one sharerSet against the exact oracle:
// conservative-superset always; exact where the format can represent
// the set (bitmap always, limited-pointer before overflow, coarse
// vector at cluster granularity); members ascending and in range.
func checkAgainstOracle(t *testing.T, lay sharerLayout, s sharerSet, oracle map[int]bool) {
	t.Helper()
	for n := range oracle {
		if !s.mayContain(lay, n) {
			t.Fatalf("%v: dropped sharer %d (oracle %v)", lay, n, oracle)
		}
	}
	if s.isEmpty() && len(oracle) > 0 {
		t.Fatalf("%v: set empty but oracle holds %v", lay, oracle)
	}
	exact := lay.format == FullBitmap || (lay.format == LimitedPointer && !s.broadcast())
	members := s.appendMembers(lay, nil)
	last := -1
	for _, m := range members {
		if m <= last {
			t.Fatalf("%v: members not strictly ascending: %v", lay, members)
		}
		if m < 0 || m >= lay.nodes {
			t.Fatalf("%v: member %d out of range", lay, m)
		}
		last = m
	}
	switch {
	case exact:
		if len(members) != len(oracle) {
			t.Fatalf("%v: exact format diverged: members %v oracle %v", lay, members, oracle)
		}
		for _, m := range members {
			if !oracle[m] {
				t.Fatalf("%v: phantom member %d (oracle %v)", lay, m, oracle)
			}
		}
		if s.isEmpty() != (len(oracle) == 0) {
			t.Fatalf("%v: emptiness diverged", lay)
		}
	case lay.format == CoarseVector:
		// Cluster-exact: a node is claimed iff its cluster has (or had,
		// absent removals) a member. Since removals never clear cluster
		// bits, claimed clusters must be a superset of oracle clusters
		// and every member must come from a claimed cluster.
		claimed := map[int]bool{}
		for _, m := range members {
			claimed[m/lay.cluster] = true
		}
		for n := range oracle {
			if !claimed[n/lay.cluster] {
				t.Fatalf("%v: oracle node %d's cluster not claimed", lay, n)
			}
		}
	default: // limited-pointer in broadcast mode
		if len(members) != lay.nodes {
			t.Fatalf("%v: broadcast mode must claim all %d nodes, got %d", lay, lay.nodes, len(members))
		}
	}
}

// TestSharerSetPropertyVsOracle drives random add/remove/drain/recovery
// sequences through every representation with an exact set as oracle:
// the representations must be exact where representable and
// conservative supersets everywhere else. The recovery op mirrors the
// protocol's undo-log discipline — entries are snapshotted by value and
// restored by assignment — so it proves value-copy semantics hold.
func TestSharerSetPropertyVsOracle(t *testing.T) {
	for ci, cfg := range sharerConfigs {
		cfg := cfg
		t.Run(fmt.Sprintf("%d-%s-%dnodes", ci, cfg.Sharers, cfg.Nodes), func(t *testing.T) {
			lay, err := cfg.sharerLayout()
			if err != nil {
				t.Fatal(err)
			}
			r := sim.NewRNG(0xc0ffee + uint64(ci))
			var s sharerSet
			oracle := map[int]bool{}
			type snap struct {
				s      sharerSet
				oracle map[int]bool
			}
			var undo []snap
			for op := 0; op < 4000; op++ {
				switch r.Intn(100) {
				case 0, 1: // drain (recovery reset / PutM to DInv)
					s = sharerSet{}
					oracle = map[int]bool{}
				case 2, 3, 4: // checkpoint: snapshot by value
					o := map[int]bool{}
					for n := range oracle {
						o[n] = true
					}
					undo = append(undo, snap{s: s, oracle: o})
				case 5, 6: // recovery: restore the newest snapshot
					if len(undo) > 0 {
						sn := undo[len(undo)-1]
						undo = undo[:len(undo)-1]
						s = sn.s
						oracle = map[int]bool{}
						for n := range sn.oracle {
							oracle[n] = true
						}
					}
				default:
					n := r.Intn(lay.nodes)
					if r.Bool(0.35) {
						// Conservative formats may keep n as a stale member
						// (coarse clusters, broadcast mode) — the superset
						// obligation against the shrunken oracle still holds.
						s = s.without(lay, n)
						delete(oracle, n)
					} else {
						s = s.with(lay, n)
						oracle[n] = true
					}
				}
				checkAgainstOracle(t, lay, s, oracle)
			}
		})
	}
}

// TestSharerSetOverflowSemantics pins the Dir_i_B contract: the i+1'th
// distinct sharer flips the entry to broadcast mode, re-adding an
// existing pointer never does, and a drain restores precision.
func TestSharerSetOverflowSemantics(t *testing.T) {
	cfg := Config{Nodes: 256, Sharers: LimitedPointer, SharerPointers: 3}
	lay, err := cfg.sharerLayout()
	if err != nil {
		t.Fatal(err)
	}
	var s sharerSet
	for _, n := range []int{10, 20, 30} {
		s = s.with(lay, n)
	}
	if s.broadcast() {
		t.Fatal("overflowed at capacity")
	}
	s = s.with(lay, 20) // duplicate: still exact
	if s.broadcast() {
		t.Fatal("duplicate add overflowed")
	}
	if got := s.appendMembers(lay, nil); len(got) != 3 {
		t.Fatalf("members %v", got)
	}
	s = s.with(lay, 40)
	if !s.broadcast() {
		t.Fatal("4th sharer did not overflow a 3-pointer entry")
	}
	if !s.mayContain(lay, 199) {
		t.Fatal("broadcast mode must claim every node")
	}
	if got := len(s.appendMembers(lay, nil)); got != 256 {
		t.Fatalf("broadcast fan-out covers %d nodes, want 256", got)
	}
	s = sharerSet{}
	if !s.isEmpty() || s.broadcast() {
		t.Fatal("drain did not restore the empty exact set")
	}
}

// TestSharerLayoutValidation pins the config-vs-format legality rules
// the system layer reports before building machines.
func TestSharerLayoutValidation(t *testing.T) {
	cases := []struct {
		cfg Config
		ok  bool
	}{
		{Config{Nodes: 64, Sharers: FullBitmap}, true},
		{Config{Nodes: 65, Sharers: FullBitmap}, false},
		{Config{Nodes: 256, Sharers: LimitedPointer}, true},
		{Config{Nodes: 256, Sharers: LimitedPointer, SharerPointers: maxSharerPointers + 1}, false},
		{Config{Nodes: 256, Sharers: CoarseVector}, true},
		{Config{Nodes: 256, Sharers: CoarseVector, SharerClusterSize: 2}, false}, // 128 clusters
		{Config{Nodes: 0, Sharers: FullBitmap}, false},
		{Config{Nodes: 16, Sharers: SharerFormat(9)}, false},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if c.ok && err != nil {
			t.Errorf("%+v: unexpected error %v", c.cfg, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%+v: accepted", c.cfg)
		}
	}
	// The geometry-derived default is always legal.
	for _, n := range []int{4, 16, 64, 100, 256} {
		cfg := DefaultConfig(n, Spec)
		if err := cfg.Validate(); err != nil {
			t.Errorf("DefaultConfig(%d) illegal: %v", n, err)
		}
	}
}
