package directory

import (
	"fmt"

	"specsimp/internal/coherence"
	"specsimp/internal/mem"
	"specsimp/internal/pool"
)

// dirEntry is the stable directory state for one block. Busy (in-flight
// transaction) bookkeeping lives in dirCtrl.busy so checkpoints only
// ever see stable states. The sharer set's interpretation (bitmap,
// limited-pointer, coarse vector) is the protocol-wide sharerLayout.
type dirEntry struct {
	state   DState
	owner   int // node id, -1 when none
	sharers sharerSet
}

// busyInfo tracks the single in-flight transaction for a block; the
// directory is blocking and queues later requests until the requestor's
// FinalAck.
type busyInfo struct {
	requestor coherence.NodeID
	isGetM    bool
	fwdTo     int // node a forward is outstanding to, -1 when none
	tid       uint64
	acks      int
	complete  dirEntry // stable state applied at FinalAck
}

type dirCtrl struct {
	p       *Protocol
	node    coherence.NodeID
	st      *Stats // the owning shard's stats
	store   *mem.Store
	entries map[coherence.Addr]*dirEntry
	busy    map[coherence.Addr]*busyInfo
	queue   map[coherence.Addr][]coherence.Msg
	// busyFree recycles busyInfo records across transactions.
	busyFree pool.FreeList[busyInfo]
	// invScratch is the reusable invalidation-target buffer: sharer-set
	// expansion fills it once per GetM, so fan-out stays allocation-free
	// in steady state.
	invScratch []int
}

// invTargets expands e's sharer set into the nodes that must be
// invalidated on behalf of requestor req: every conservative member
// except req itself and the recorded owner (the owner is reached by a
// forward, never an Inv; imprecise formats may name it as a sharer).
// The returned slice is d.invScratch, valid until the next call.
func (d *dirCtrl) invTargets(e *dirEntry, req coherence.NodeID) []int {
	d.invScratch = e.sharers.appendMembers(d.p.lay, d.invScratch[:0])
	kept := d.invScratch[:0]
	for _, n := range d.invScratch {
		if n != int(req) && n != e.owner {
			kept = append(kept, n)
		}
	}
	if e.sharers.broadcast() && len(kept) > 0 {
		// Dir_i_B overflow: this fan-out is a broadcast to every node,
		// the cost the limited-pointer format trades for its width.
		d.st.InvBroadcasts.Inc()
	}
	return kept
}

func (d *dirCtrl) entry(a coherence.Addr) *dirEntry {
	e := d.entries[a]
	if e == nil {
		e = &dirEntry{state: DInv, owner: -1}
		d.entries[a] = e
	}
	return e
}

// logEntry records the old directory entry and memory version before a
// mutation, for checkpoint rollback.
func (d *dirCtrl) logEntry(a coherence.Addr) {
	if d.p.log == nil {
		return
	}
	old := *d.entry(a)
	d.p.log.LogOldValue(int(d.node), uint64(a)|3, func() { *d.entry(a) = old })
}

func (d *dirCtrl) logMem(a coherence.Addr) {
	if d.p.log == nil {
		return
	}
	old := d.store.Read(a)
	d.p.log.LogOldValue(int(d.node), uint64(a)|2, func() { d.store.Write(a, old) })
}

func (d *dirCtrl) handle(msg coherence.Msg) {
	switch msg.Kind {
	case coherence.GetS, coherence.GetM:
		// Requests serialize per block: while a transaction is in
		// flight (or older requests wait), newcomers queue.
		if d.busy[msg.Addr] != nil {
			d.queue[msg.Addr] = append(d.queue[msg.Addr], msg)
			return
		}
		d.process(msg)
	case coherence.PutM:
		// Writebacks are never queued: the racing PutM is exactly the
		// case the two protocol variants treat differently.
		d.handlePutM(msg)
	case coherence.FinalAck:
		d.handleFinalAck(msg)
	default:
		panic("directory: dir received " + msg.Kind.String())
	}
}

// addSharer adds node to a sharer set, counting the Dir_i_B overflow
// transition (exact pointers exhausted, entry degrades to broadcast).
func (d *dirCtrl) addSharer(s sharerSet, n coherence.NodeID) sharerSet {
	ns := s.with(d.p.lay, int(n))
	if ns.broadcast() && !s.broadcast() {
		d.st.SharerOverflows.Inc()
	}
	return ns
}

func (d *dirCtrl) process(msg coherence.Msg) {
	a := msg.Addr
	e := d.entry(a)
	req := msg.From
	// The transaction id is end-to-end: minted by the requestor and
	// echoed through forwards, responses and the FinalAck.
	b := d.busyFree.Get()
	*b = busyInfo{requestor: req, isGetM: msg.Kind == coherence.GetM, fwdTo: -1, tid: msg.TID}

	switch msg.Kind {
	case coherence.GetS:
		switch e.state {
		case DInv, DS:
			b.complete = dirEntry{state: DS, owner: -1, sharers: d.addSharer(e.sharers, req)}
			d.sendDataFromMem(a, req, 0, b.tid)
		case DM:
			b.complete = dirEntry{state: DO, owner: e.owner, sharers: d.addSharer(sharerSet{}, req)}
			b.fwdTo = e.owner
			d.fwd(coherence.FwdGetS, a, e.owner, req, 0, b.tid)
		case DO:
			b.complete = dirEntry{state: DO, owner: e.owner, sharers: d.addSharer(e.sharers, req)}
			b.fwdTo = e.owner
			d.fwd(coherence.FwdGetS, a, e.owner, req, 0, b.tid)
		}
	case coherence.GetM:
		// Invalidation fan-out: every conservative sharer except the
		// requestor and the owner. The ack count handed to the requestor
		// is exactly the number of Invs sent, so imprecise formats cost
		// extra (stale-acked) Invs, never a hung transaction.
		targets := d.invTargets(e, req)
		imprecise := d.p.lay.imprecise(e.sharers)
		acks := len(targets)
		b.complete = dirEntry{state: DM, owner: int(req)}
		b.acks = acks
		switch {
		case e.state == DInv:
			d.sendDataFromMem(a, req, 0, b.tid)
		case e.state == DS:
			d.sendDataFromMem(a, req, acks, b.tid)
			d.sendInvs(a, targets, req, imprecise)
		case e.state == DM && e.owner != int(req):
			b.fwdTo = e.owner
			d.fwd(coherence.FwdGetM, a, e.owner, req, 0, b.tid)
		case e.state == DO && e.owner == int(req):
			// Upgrade by the owner itself: no forward; the requestor
			// keeps its own (freshest) data, so the memory version in
			// this Data is informational only.
			d.sendDataFromMem(a, req, acks, b.tid)
			d.sendInvs(a, targets, req, imprecise)
		case e.state == DO:
			b.fwdTo = e.owner
			d.fwd(coherence.FwdGetM, a, e.owner, req, acks, b.tid)
			d.sendInvs(a, targets, req, imprecise)
		default:
			d.unspecifiedDir(e.state, DEvGetM, msg)
		}
	}
	d.busy[a] = b
}

func (d *dirCtrl) handlePutM(msg coherence.Msg) {
	a := msg.Addr
	from := msg.From
	if b := d.busy[a]; b != nil {
		if b.requestor == from && b.isGetM {
			// The sender's own acquisition of this block has not
			// completed at the directory: its PutM (Request virtual
			// network) overtook its FinalAck (FinalAck virtual
			// network) — cross-vnet reordering the protocol must
			// tolerate. Defer the writeback behind the FinalAck.
			// (Found by exhaustive interleaving exploration; see
			// explore.go.)
			d.queue[a] = append(d.queue[a], msg)
			return
		}
		if b.fwdTo != int(from) {
			// Stale writeback from a long-gone owner: ownership moved on
			// through one or more forwards before this PutM arrived.
			d.sendWBAck(a, from, false, 0)
			return
		}
		// The §3.1 race: a forward to the writing-back owner is in
		// flight. Memory takes the written-back data either way.
		d.st.WBRaces.Inc()
		d.logMem(a)
		d.store.Write(a, msg.Version)
		if d.p.cfg.Variant == Full {
			// Full protocol: the owner may be unable to serve the
			// forward (it may see the WBAck first), so the directory
			// supplies the data itself and flags the WBAck so the owner
			// knows a forward is still coming. The requestor tolerates
			// the possible duplicate by transaction id.
			d.p.sendAfter(d.p.cfg.DirLatency, coherence.Msg{
				Kind: coherence.Data, Addr: a, From: d.node,
				Requestor: b.requestor, Version: msg.Version,
				AckCount: b.acks, TID: b.tid,
			}, b.requestor)
			d.sendWBAck(a, from, true, b.tid)
		} else {
			// Spec protocol: rely on point-to-point ordering — the
			// forward was sent before this WBAck on the same virtual
			// network, so the owner will serve it first.
			d.sendWBAck(a, from, false, b.tid)
		}
		if !b.isGetM {
			// A GetS was in flight: the owner is gone, so the block
			// completes shared with memory up to date.
			b.complete.state = DS
			b.complete.owner = -1
		}
		b.fwdTo = -1
		return
	}
	e := d.entry(a)
	switch {
	case (e.state == DM || e.state == DO) && e.owner == int(from):
		d.logEntry(a)
		d.logMem(a)
		d.store.Write(a, msg.Version)
		e.owner = -1
		if e.state == DO && !e.sharers.isEmpty() {
			e.state = DS
		} else {
			e.state = DInv
			e.sharers = sharerSet{}
		}
		d.sendWBAck(a, from, false, 0)
	default:
		// Stale writeback: ownership already moved on (possibly all the
		// way back to memory); the carried data is dead.
		d.sendWBAck(a, from, false, 0)
	}
}

func (d *dirCtrl) handleFinalAck(msg coherence.Msg) {
	a := msg.Addr
	b := d.busy[a]
	if b == nil || b.requestor != msg.From {
		panic(fmt.Sprintf("directory: FinalAck without matching busy txn addr=%#x from=%d", uint64(a), msg.From))
	}
	d.logEntry(a)
	*d.entry(a) = b.complete
	delete(d.busy, a)
	d.busyFree.Put(b)
	// Drain the deferred queue: writebacks complete inline (they do not
	// occupy the directory); the first request re-occupies it.
	for {
		q := d.queue[a]
		if len(q) == 0 {
			return
		}
		next := q[0]
		if len(q) == 1 {
			delete(d.queue, a)
		} else {
			d.queue[a] = q[1:]
		}
		if next.Kind == coherence.PutM {
			d.handlePutM(next)
			if d.busy[a] != nil {
				return // the PutM was re-deferred (cannot happen today, but be safe)
			}
			continue
		}
		d.process(next)
		return
	}
}

func (d *dirCtrl) sendDataFromMem(a coherence.Addr, to coherence.NodeID, acks int, tid uint64) {
	version := d.store.Read(a)
	d.p.sendAfter(d.p.cfg.DirLatency+d.p.cfg.MemLatency, coherence.Msg{
		Kind: coherence.Data, Addr: a, From: d.node,
		Requestor: to, Version: version, AckCount: acks, TID: tid,
	}, to)
}

func (d *dirCtrl) fwd(kind coherence.MsgKind, a coherence.Addr, owner int, req coherence.NodeID, acks int, tid uint64) {
	d.p.sendAfter(d.p.cfg.DirLatency, coherence.Msg{
		Kind: kind, Addr: a, From: d.node,
		Requestor: req, AckCount: acks, TID: tid,
	}, coherence.NodeID(owner))
}

func (d *dirCtrl) sendInvs(a coherence.Addr, targets []int, req coherence.NodeID, imprecise bool) {
	for _, n := range targets {
		d.st.Invalidations.Inc()
		d.p.sendAfter(d.p.cfg.DirLatency, coherence.Msg{
			Kind: coherence.Inv, Addr: a, From: d.node, Requestor: req, Imprecise: imprecise,
		}, coherence.NodeID(n))
	}
}

func (d *dirCtrl) sendWBAck(a coherence.Addr, to coherence.NodeID, stale bool, tid uint64) {
	d.p.sendAfter(d.p.cfg.DirLatency, coherence.Msg{
		Kind: coherence.WBAck, Addr: a, From: d.node, Stale: stale, TID: tid,
	}, to)
}

func (d *dirCtrl) unspecifiedDir(s DState, e DEvent, msg coherence.Msg) {
	panic(fmt.Sprintf("directory(%s): unspecified directory transition home=%d state=%s event=%s msg={%s}",
		d.p.cfg.Variant, d.node, s, e, msg))
}
