package directory

import (
	"specsimp/internal/coherence"
	"specsimp/internal/explore"
)

// This file is the directory protocol's front-end to the shared
// model-checking engine (internal/explore; the model adapter lives in
// model.go). It exhaustively verifies message-delivery interleavings
// of small scenarios.
//
// The paper's §3 motivates speculation precisely by the cost of
// verifying protocols ("the state space explosion problem ... limits
// the viability of various formal verification methods", and the
// snooping corner case was found only "when randomized testing
// happened to uncover it"). Within the explored bounds this harness
// *proves* the paper's framework feature (2) — detection of **all**
// mis-speculations — by checking that the Spec variant, under every
// possible interleaving, either completes with intact invariants or
// detects the violation at its single designated invalid transition;
// and that the Full variant never mis-speculates at all. Partial-order
// reduction and state hashing (see internal/explore) push the provable
// scenarios from the pre-PR-4 bound of 2 blocks × 2–3 active nodes to
// 3+ blocks × 4+ nodes.

// ScriptOp is one processor operation in an exploration scenario.
type ScriptOp struct {
	Addr coherence.Addr
	Kind coherence.AccessType
}

// ExploreConfig bounds an exploration.
type ExploreConfig struct {
	Variant Variant
	Nodes   int
	// Script holds each node's access sequence; a node issues its next
	// operation when the previous one completes.
	Script [][]ScriptOp
	// MaxPaths caps the number of interleavings explored (0 = 1<<20),
	// applied per subtree task at every worker count (the frontier is
	// decomposed the same way regardless of Workers).
	MaxPaths int
	// MaxDepth caps delivery steps per path (0 = engine default).
	MaxDepth int

	// Sharers overrides the directory-entry format (zero keeps the
	// exact full bitmap): exploring LimitedPointer with a small
	// SharerPointers budget drives the Dir_i_B overflow/imprecise-Inv
	// paths that have no other exhaustive check.
	Sharers           SharerFormat
	SharerPointers    int
	SharerClusterSize int

	// Reduce selects the pruning mode (zero = sleep sets + state
	// dedup; see explore.Reduction). NoDedup disables visited-state
	// pruning.
	Reduce  explore.Reduction
	NoDedup bool
	// Workers bounds the parallel frontier (0/1 = serial; results are
	// identical for every value). ForkDepth tunes the frontier split
	// (0 = engine default, negative = no fork).
	Workers   int
	ForkDepth int
	// CollectTerminals records terminal-state digests (cross-mode
	// equivalence tests).
	CollectTerminals bool
}

// ExploreResult summarizes an exploration.
type ExploreResult struct {
	Paths     int // interleavings executed to a terminal state
	Completed int // paths where every scripted access finished
	Detected  int // paths ending in a designated mis-speculation (Spec)
	// RacesExercised counts completed paths on which the §3.1
	// writeback race actually fired (WBRaces grew) — evidence the
	// exploration reaches the contested window.
	RacesExercised int
	// SleepCut / VisitedCut count subtrees pruned by the sleep-set and
	// visited-state reductions; each stands for at least one — usually
	// many — interleavings full enumeration would have executed.
	SleepCut   int
	VisitedCut int
	// Transitions counts executed deliveries; Replayed counts
	// deliveries re-executed to reposition after backtracking.
	Transitions uint64
	Replayed    uint64
	Tasks       int
	Truncated   bool
	// Violations collects descriptions of any incorrect outcome
	// (invariant breakage, stuck path, unspecified-transition panic),
	// each with its reproducing delivery trace.
	Violations []string
	// Terminals holds the terminal-state digest multiset when
	// CollectTerminals is set.
	Terminals map[explore.Digest]int
}

// Ok reports whether no violations were found.
func (r ExploreResult) Ok() bool { return len(r.Violations) == 0 }

// Explore verifies every delivery interleaving of cfg's scenario
// (within bounds) on the shared engine.
func Explore(cfg ExploreConfig) ExploreResult {
	er := explore.Run(explore.Config{
		NewModel:         func() explore.Model { return newDirModel(cfg) },
		Reduction:        cfg.Reduce,
		StateDedup:       !cfg.NoDedup,
		MaxPaths:         cfg.MaxPaths,
		MaxDepth:         cfg.MaxDepth,
		Workers:          cfg.Workers,
		ForkDepth:        cfg.ForkDepth,
		CollectTerminals: cfg.CollectTerminals,
	})
	res := ExploreResult{
		Paths:          er.Paths,
		Completed:      er.Completed,
		Detected:       er.Detected,
		RacesExercised: er.Flagged,
		SleepCut:       er.SleepCut,
		VisitedCut:     er.VisitedCut,
		Transitions:    er.Transitions,
		Replayed:       er.Replayed,
		Tasks:          er.Tasks,
		Truncated:      er.Truncated,
		Terminals:      er.Terminals,
	}
	for _, v := range er.Violations {
		res.Violations = append(res.Violations, v.String())
	}
	return res
}
