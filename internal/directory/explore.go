package directory

import (
	"fmt"

	"specsimp/internal/coherence"
	"specsimp/internal/network"
	"specsimp/internal/sim"
)

// This file implements an explicit-state exploration harness for the
// directory protocol: it exhaustively enumerates message delivery
// orders for a small configuration and verifies every outcome.
//
// The paper's §3 motivates speculation precisely by the cost of
// verifying protocols ("the state space explosion problem ... limits
// the viability of various formal verification methods", and the
// snooping corner case was found only "when randomized testing happened
// to uncover it"). This harness is the next rung up from the randomized
// stress suite: within the explored bounds it *proves* the paper's
// framework feature (2) — detection of **all** mis-speculations — by
// checking that the Spec variant, under every possible interleaving,
// either completes with intact invariants or detects the violation at
// its single designated invalid transition; and that the Full variant
// never mis-speculates at all.

// ScriptOp is one processor operation in an exploration scenario.
type ScriptOp struct {
	Addr coherence.Addr
	Kind coherence.AccessType
}

// ExploreConfig bounds an exploration.
type ExploreConfig struct {
	Variant Variant
	Nodes   int
	// Script holds each node's access sequence; a node issues its next
	// operation when the previous one completes.
	Script [][]ScriptOp
	// MaxPaths caps the number of interleavings explored (0 = 1<<20).
	MaxPaths int
	// MaxDepth caps delivery steps per path (guards runaway paths).
	MaxDepth int
}

// ExploreResult summarizes an exploration.
type ExploreResult struct {
	Paths     int // interleavings executed
	Completed int // paths where every scripted access finished
	Detected  int // paths ending in a designated mis-speculation (Spec)
	Truncated bool
	// Violations collects descriptions of any incorrect outcome
	// (invariant breakage, stuck path, wrong completion count).
	Violations []string
}

// Ok reports whether no violations were found.
func (r ExploreResult) Ok() bool { return len(r.Violations) == 0 }

// exploreFabric delivers messages under external control: the explorer
// picks which queued message arrives next.
type exploreFabric struct {
	nodes   int
	clients []network.Client
	queue   []*network.Message
}

func (f *exploreFabric) Send(m *network.Message)                         { f.queue = append(f.queue, m) }
func (f *exploreFabric) Kick(network.NodeID)                             {}
func (f *exploreFabric) AttachClient(n network.NodeID, c network.Client) { f.clients[n] = c }
func (f *exploreFabric) NumNodes() int                                   { return f.nodes }

// Explore enumerates delivery interleavings depth-first. Paths are
// identified by their choice prefixes; each run replays a prefix and
// then takes the first available choice until quiescent, recording
// branch widths so unexplored siblings are queued.
func Explore(cfg ExploreConfig) ExploreResult {
	if cfg.MaxPaths == 0 {
		cfg.MaxPaths = 1 << 20
	}
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = 200
	}
	res := ExploreResult{}
	// Work list of path prefixes to run; start with the empty prefix.
	work := [][]int{{}}
	for len(work) > 0 {
		if res.Paths >= cfg.MaxPaths {
			res.Truncated = true
			break
		}
		prefix := work[len(work)-1]
		work = work[:len(work)-1]
		widths, outcome := runPath(cfg, prefix, &res)
		res.Paths++
		_ = outcome
		// Queue unexplored siblings at decision points beyond the
		// prefix (choices within the prefix were enqueued when their
		// own parents ran). Steps past the prefix took choice 0.
		for i := len(prefix); i < len(widths); i++ {
			for c := 1; c < widths[i]; c++ {
				branch := make([]int, i+1)
				copy(branch, prefix)
				branch[i] = c
				work = append(work, branch)
			}
		}
	}
	return res
}

// runPath executes one interleaving. It returns the branch width at
// every decision step (for sibling enumeration) and records violations.
// A panic (an unspecified protocol transition) is itself the most
// interesting violation an exploration can find; it is captured and
// recorded with the offending path.
func runPath(cfg ExploreConfig, prefix []int, res *ExploreResult) (widthsOut []int, outcome string) {
	defer func() {
		if r := recover(); r != nil {
			res.Violations = append(res.Violations,
				fmt.Sprintf("path %v: panic: %v", prefix, r))
			outcome = "panic"
		}
	}()
	return runPathInner(cfg, prefix, res)
}

func runPathInner(cfg ExploreConfig, prefix []int, res *ExploreResult) ([]int, string) {
	k := sim.NewKernel()
	f := &exploreFabric{nodes: cfg.Nodes, clients: make([]network.Client, cfg.Nodes)}
	pcfg := DefaultConfig(cfg.Nodes, cfg.Variant)
	// Exploration always uses a 1-set 2-way L2: scenarios that need
	// evictions get them, tiny caches keep per-path construction cheap,
	// and scenarios touching <=2 blocks per node see no difference.
	pcfg.L2Bytes, pcfg.L2Ways = 2*64, 2
	pcfg.L1Bytes, pcfg.L1Ways = 64, 1
	p := New(k, f, pcfg, nil)
	detected := false
	p.OnMisSpeculation = func(reason string) {
		detected = true
		// Exploration treats detection as a terminal, correct outcome:
		// recovery would restore a checkpoint, which is verified by the
		// system-level tests. Clear state so the run ends cleanly.
		p.ResetTransients()
		f.queue = nil
	}

	completed := 0
	want := 0
	for n, ops := range cfg.Script {
		want += len(ops)
		n := n
		ops := ops
		var issue func(i int)
		issue = func(i int) {
			if i >= len(ops) || detected {
				return
			}
			p.Access(coherence.NodeID(n), ops[i].Addr, ops[i].Kind, func() {
				completed++
				issue(i + 1)
			})
		}
		issue(0)
	}

	var widths []int
	step := 0
	for {
		k.Drain(1_000_000)
		if detected || len(f.queue) == 0 {
			break
		}
		if step >= cfg.MaxDepth {
			res.Violations = append(res.Violations,
				fmt.Sprintf("path %v: exceeded depth %d", prefix, cfg.MaxDepth))
			return widths, "depth"
		}
		choice := 0
		if step < len(prefix) {
			choice = prefix[step]
		}
		widths = append(widths, len(f.queue))
		if choice >= len(f.queue) {
			// A shorter queue than when the sibling was enqueued: the
			// branch does not exist on this replay (can happen only if
			// execution were nondeterministic — flag it).
			res.Violations = append(res.Violations,
				fmt.Sprintf("path %v: branch %d missing at step %d (queue %d)", prefix, choice, step, len(f.queue)))
			return widths, "nondet"
		}
		m := f.queue[choice]
		f.queue = append(f.queue[:choice:choice], f.queue[choice+1:]...)
		if !f.clients[m.Dst].Deliver(m) {
			// Back-pressured (Data waiting on the writeback TBE): put
			// it at the back; progress comes from another message.
			f.queue = append(f.queue, m)
			// This still counts as a decision step: siblings explore
			// the other messages.
		}
		step++
	}

	switch {
	case detected:
		res.Detected++
		if cfg.Variant == Full {
			res.Violations = append(res.Violations,
				fmt.Sprintf("path %v: full variant mis-speculated", prefix))
		}
	case completed == want && p.InFlight() == 0:
		res.Completed++
		if err := p.AuditInvariants(); err != nil {
			res.Violations = append(res.Violations,
				fmt.Sprintf("path %v: %v", prefix, err))
		}
	default:
		res.Violations = append(res.Violations,
			fmt.Sprintf("path %v: stuck with %d/%d completed, %d in flight, %d queued",
				prefix, completed, want, p.InFlight(), len(f.queue)))
	}
	return widths, "done"
}
