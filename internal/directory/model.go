package directory

import (
	"fmt"
	"slices"

	"specsimp/internal/cache"
	"specsimp/internal/coherence"
	"specsimp/internal/explore"
	"specsimp/internal/network"
	"specsimp/internal/sim"
)

// This file adapts the directory protocol to the shared model-checking
// engine (internal/explore): a dirModel is a deterministic transition
// system whose transitions are deliveries of in-flight messages, with
// a canonical state encoding for visited-set pruning.

// modelFabric delivers messages under engine control: sends queue with
// a deterministic ID (mint order), and the engine picks which in-flight
// message arrives next.
type modelFabric struct {
	nodes   int
	clients []network.Client
	queue   []*network.Message
	ids     []uint64
	nextID  uint64
	// payloads keeps a value copy of each sent message for transition
	// keys and counterexample rendering (the pooled payload box is
	// recycled at delivery). Reset clears it, so it holds one path's
	// sends at most.
	payloads map[uint64]sentMsg
}

type sentMsg struct {
	msg coherence.Msg
	dst network.NodeID
}

func (f *modelFabric) Send(m *network.Message) {
	f.nextID++ // IDs start at 1: 0 stays free as a sentinel
	f.queue = append(f.queue, m)
	f.ids = append(f.ids, f.nextID)
	f.payloads[f.nextID] = sentMsg{payloadOf(m), m.Dst}
}

func (f *modelFabric) Kick(network.NodeID)                             {}
func (f *modelFabric) AttachClient(n network.NodeID, c network.Client) { f.clients[n] = c }
func (f *modelFabric) NumNodes() int                                   { return f.nodes }

func payloadOf(m *network.Message) coherence.Msg {
	switch p := m.Payload.(type) {
	case *coherence.Msg:
		return *p
	case coherence.Msg:
		return p
	default:
		panic(fmt.Sprintf("directory model: foreign payload %T", m.Payload))
	}
}

// dirModel implements explore.Model.
type dirModel struct {
	cfg  ExploreConfig
	pcfg Config

	k *sim.Kernel
	f *modelFabric
	p *Protocol

	detected     bool
	detectReason string
	completed    int
	want         int
	doneOps      []int // per-node completed op count (script position)
	wbRaceBase   uint64

	addrbuf []uint64
	keybuf  []uint64
}

func newDirModel(cfg ExploreConfig) *dirModel {
	pcfg := DefaultConfig(cfg.Nodes, cfg.Variant)
	// Exploration always uses a 1-set 2-way L2: scenarios that need
	// evictions get them, tiny caches keep per-path construction
	// cheap, and scenarios touching <=2 blocks per node see no
	// difference.
	pcfg.L2Bytes, pcfg.L2Ways = 2*64, 2
	pcfg.L1Bytes, pcfg.L1Ways = 64, 1
	if cfg.Sharers != FullBitmap {
		pcfg.Sharers = cfg.Sharers
		pcfg.SharerPointers = cfg.SharerPointers
		pcfg.SharerClusterSize = cfg.SharerClusterSize
	}
	m := &dirModel{cfg: cfg, pcfg: pcfg}
	for _, ops := range cfg.Script {
		m.want += len(ops)
	}
	return m
}

func (m *dirModel) Reset() {
	m.k = sim.NewKernel()
	m.f = &modelFabric{
		nodes:    m.cfg.Nodes,
		clients:  make([]network.Client, m.cfg.Nodes),
		payloads: make(map[uint64]sentMsg),
	}
	m.p = New(m.k, m.f, m.pcfg, nil)
	m.detected = false
	m.detectReason = ""
	m.completed = 0
	m.doneOps = make([]int, len(m.cfg.Script))
	m.wbRaceBase = m.p.Stats().WBRaces.Value()
	m.p.OnMisSpeculation = func(reason string) {
		m.detected = true
		m.detectReason = reason
		// Exploration treats detection as a terminal, correct outcome:
		// recovery would restore a checkpoint, which is verified by
		// the system-level tests. Clear state so the run ends cleanly.
		m.p.ResetTransients()
		m.f.queue = nil
		m.f.ids = nil
	}
	for n, ops := range m.cfg.Script {
		n, ops := n, ops
		var issue func(i int)
		issue = func(i int) {
			if i >= len(ops) || m.detected {
				return
			}
			m.p.Access(coherence.NodeID(n), ops[i].Addr, ops[i].Kind, func() {
				m.completed++
				m.doneOps[n]++
				issue(i + 1)
			})
		}
		issue(0)
	}
	m.drain()
}

func (m *dirModel) drain() {
	if !m.k.Drain(1_000_000) {
		panic("directory model: event flood (1e6 events without quiescence)")
	}
}

// dirMsgCtrl maps a message to its destination controller: each node
// hosts two disjoint controllers (cache and directory), and the
// independence relation commutes deliveries to distinct controllers.
func dirMsgCtrl(dst network.NodeID, msg coherence.Msg) int32 {
	c := int32(dst) * 2
	switch msg.Kind {
	case coherence.GetS, coherence.GetM, coherence.PutM, coherence.FinalAck:
		return c + 1 // directory controller
	}
	return c // cache controller
}

func msgKey(seed uint64, dst int64, msg coherence.Msg) uint64 {
	flags := uint64(0)
	if msg.Stale {
		flags |= 1
	}
	if msg.Imprecise {
		flags |= 2
	}
	return explore.HashBytes(seed,
		uint64(dst), uint64(msg.Kind), uint64(msg.Addr), uint64(msg.From),
		uint64(msg.Requestor), msg.Version, uint64(int64(msg.AckCount)), flags, msg.TID)
}

func (m *dirModel) Enabled(buf []explore.Transition) []explore.Transition {
	for i, nm := range m.f.queue {
		msg := m.f.payloads[m.f.ids[i]].msg
		buf = append(buf, explore.Transition{
			ID:    m.f.ids[i],
			Key:   msgKey(1, int64(nm.Dst), msg),
			Ctrl:  dirMsgCtrl(nm.Dst, msg),
			Block: int64(uint64(msg.Addr) / coherence.BlockBytes),
		})
	}
	return buf
}

func (m *dirModel) Take(id uint64) explore.Step {
	pos := -1
	for i, mid := range m.f.ids {
		if mid == id {
			pos = i
			break
		}
	}
	if pos < 0 {
		panic(fmt.Sprintf("directory model: take of unknown message id %d", id))
	}
	// Remove before delivering: a detection inside Deliver clears the
	// queue outright, so slicing it afterwards would corrupt it.
	nm := m.f.queue[pos]
	m.f.queue = append(m.f.queue[:pos:pos], m.f.queue[pos+1:]...)
	m.f.ids = append(m.f.ids[:pos:pos], m.f.ids[pos+1:]...)
	if !m.f.clients[nm.Dst].Deliver(nm) {
		// Back-pressured (Data waiting on the writeback TBE): the
		// message stays in flight, the state is unchanged (its queue
		// position is not part of the state — enumeration is by ID).
		m.f.queue = append(m.f.queue, nm)
		m.f.ids = append(m.f.ids, id)
		return explore.Blocked
	}
	m.drain()
	if m.detected {
		return explore.Detected
	}
	return explore.Progressed
}

func (m *dirModel) Finish() explore.PathOutcome {
	switch {
	case m.detected:
		out := explore.PathOutcome{Status: explore.StatusDetected}
		if m.cfg.Variant == Full {
			out.Err = "full variant mis-speculated: " + m.detectReason
		} else if n := m.p.InFlight(); n != 0 {
			// Recovery-mid-flight check: ResetTransients must leave no
			// transaction behind, however much was in flight.
			out.Err = fmt.Sprintf("recovery left %d transactions in flight", n)
		}
		return out
	case m.completed == m.want && m.p.InFlight() == 0:
		out := explore.PathOutcome{Status: explore.StatusCompleted}
		if err := m.p.AuditInvariants(); err != nil {
			out.Err = err.Error()
		}
		out.Flagged = m.p.Stats().WBRaces.Value() > m.wbRaceBase
		return out
	default:
		return explore.PathOutcome{
			Status: explore.StatusStuck,
			Err: fmt.Sprintf("stuck with %d/%d completed, %d in flight, %d queued",
				m.completed, m.want, m.p.InFlight(), len(m.f.queue)),
		}
	}
}

func (m *dirModel) Describe(id uint64) string {
	if sm, ok := m.f.payloads[id]; ok {
		return fmt.Sprintf("deliver{%s}->n%d", sm.msg, sm.dst)
	}
	return fmt.Sprintf("msg#%d", id)
}

// Encode writes the canonical machine state: cache arrays in per-set
// LRU order, TBEs, directory entries/busy records/deferred queues in
// address order, memory versions, script positions, and the in-flight
// message multiset. Simulation time, event-kernel state (always
// drained here), epochs and TID mint counters are excluded: states
// differing only in those behave identically.
func (m *dirModel) Encode(e *explore.Enc) {
	e.Bool(m.detected)
	for n := range m.doneOps {
		e.Int(m.doneOps[n])
	}
	for _, c := range m.p.caches {
		e.U8(0xC0)
		c.l2.ForEachSetLRU(func(set int, l *cache.Line) {
			e.Int(set)
			e.U64(uint64(l.Addr))
			e.U8(l.State)
			e.U64(l.Version)
		})
		e.U8(0xC1)
		if t := c.req; t != nil {
			e.Bool(true)
			e.U64(uint64(t.addr))
			e.U8(uint8(t.state))
			e.Bool(t.isStore)
			e.Int(t.acksNeeded)
			e.Int(t.acksGot)
			e.U64(t.version)
			e.Bool(t.gotData)
			e.U64(t.tid)
		} else {
			e.Bool(false)
		}
		if w := c.wb; w != nil {
			e.Bool(true)
			e.U64(uint64(w.addr))
			e.U8(uint8(w.state))
			e.U64(w.version)
			e.U64(w.staleTID)
			m.keybuf = m.keybuf[:0]
			for tid := range w.served {
				m.keybuf = append(m.keybuf, tid)
			}
			e.Multiset(m.keybuf)
		} else {
			e.Bool(false)
		}
		e.Int(len(c.parked))
		for _, pk := range c.parked {
			e.U64(uint64(pk.addr))
			e.U8(uint8(pk.kind))
		}
		m.addrbuf = m.addrbuf[:0]
		for a := range c.servedStable {
			m.addrbuf = append(m.addrbuf, uint64(a))
		}
		sortU64(m.addrbuf)
		e.Int(len(m.addrbuf))
		for _, a := range m.addrbuf {
			e.U64(a)
			e.U64(c.servedStable[coherence.Addr(a)])
		}
	}
	for _, d := range m.p.dirs {
		e.U8(0xD0)
		m.addrbuf = m.addrbuf[:0]
		//detlint:allow maporder pure filter via sharers.isEmpty(); keys are sorted below before encoding
		for a, ent := range d.entries {
			if ent.state == DInv && ent.owner == -1 && ent.sharers.isEmpty() {
				continue // indistinguishable from an absent entry
			}
			m.addrbuf = append(m.addrbuf, uint64(a))
		}
		sortU64(m.addrbuf)
		for _, a := range m.addrbuf {
			e.U64(a)
			encodeDirEntry(e, d.entries[coherence.Addr(a)])
		}
		e.U8(0xD1)
		m.addrbuf = m.addrbuf[:0]
		for a := range d.busy {
			m.addrbuf = append(m.addrbuf, uint64(a))
		}
		sortU64(m.addrbuf)
		for _, a := range m.addrbuf {
			b := d.busy[coherence.Addr(a)]
			e.U64(a)
			e.U64(uint64(b.requestor))
			e.Bool(b.isGetM)
			e.Int(b.fwdTo)
			e.U64(b.tid)
			e.Int(b.acks)
			encodeDirEntry(e, &b.complete)
		}
		e.U8(0xD2)
		m.addrbuf = m.addrbuf[:0]
		for a, q := range d.queue {
			if len(q) > 0 {
				m.addrbuf = append(m.addrbuf, uint64(a))
			}
		}
		sortU64(m.addrbuf)
		for _, a := range m.addrbuf {
			q := d.queue[coherence.Addr(a)]
			e.U64(a)
			e.Int(len(q))
			for _, msg := range q { // deferred requests drain in order
				e.U64(msgKey(2, int64(d.node), msg))
			}
		}
		e.U8(0xD3)
		m.addrbuf = m.addrbuf[:0]
		d.store.ForEach(func(a coherence.Addr, v uint64) {
			m.addrbuf = append(m.addrbuf, uint64(a))
		})
		sortU64(m.addrbuf)
		for _, a := range m.addrbuf {
			e.U64(a)
			e.U64(d.store.Read(coherence.Addr(a)))
		}
	}
	// In-flight messages as a multiset: delivery order is the engine's
	// choice, not part of the state.
	m.keybuf = m.keybuf[:0]
	for i := range m.f.queue {
		msg := m.f.payloads[m.f.ids[i]].msg
		m.keybuf = append(m.keybuf, msgKey(1, int64(m.f.queue[i].Dst), msg))
	}
	e.Multiset(m.keybuf)
}

func encodeDirEntry(e *explore.Enc, ent *dirEntry) {
	e.U8(uint8(ent.state))
	e.Int(ent.owner)
	e.U64(ent.sharers.bits)
	e.Bool(ent.sharers.over)
	var ptrs [maxSharerPointers]uint16
	copy(ptrs[:], ent.sharers.ptrs[:ent.sharers.n])
	slices.Sort(ptrs[:ent.sharers.n])
	e.U8(ent.sharers.n)
	for i := 0; i < int(ent.sharers.n); i++ {
		e.U64(uint64(ptrs[i]))
	}
}

func sortU64(v []uint64) { slices.Sort(v) }
