package directory

import (
	"testing"

	"specsimp/internal/coherence"
	"specsimp/internal/network"
	"specsimp/internal/sim"
)

// TestAcksBeforeData: on the unordered response network, invalidation
// acks can reach an upgrading requestor before the directory's data.
func TestAcksBeforeData(t *testing.T) {
	_, f, p := scripted(t, Full)
	doAccess(t, f, p, 1, blkA, coherence.Load)
	doAccess(t, f, p, 2, blkA, coherence.Load)
	done := false
	p.Access(3, blkA, coherence.Store, func() { done = true })
	f.deliverKind(t, coherence.GetM) // dir sends Data + 2 Invs
	// Deliver both Invs and both Acks before the Data.
	f.deliverKind(t, coherence.Inv)
	f.deliverKind(t, coherence.Inv)
	f.deliverKind(t, coherence.Ack)
	f.deliverKind(t, coherence.Ack)
	if done {
		t.Fatal("store completed without data")
	}
	if st := p.CacheState(3, blkA); st != CIMad {
		t.Fatalf("state=%s want IM_AD while data outstanding", st)
	}
	f.deliverAll(t) // Data arrives last; completion immediate
	if !done {
		t.Fatal("store never completed")
	}
	if err := p.AuditInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDataBeforeAcks: the usual order — data first, then acks trickle.
func TestDataBeforeAcks(t *testing.T) {
	_, f, p := scripted(t, Full)
	doAccess(t, f, p, 1, blkA, coherence.Load)
	doAccess(t, f, p, 2, blkA, coherence.Load)
	done := false
	p.Access(3, blkA, coherence.Store, func() { done = true })
	f.deliverKind(t, coherence.GetM)
	f.deliverKind(t, coherence.Data)
	f.k.Drain(1_000_000)
	if done {
		t.Fatal("store completed without acks")
	}
	if st := p.CacheState(3, blkA); st != CIMa {
		t.Fatalf("state=%s want IM_A awaiting acks", st)
	}
	f.deliverAll(t)
	if !done {
		t.Fatal("store never completed")
	}
}

// TestStaleInvAfterSilentEviction: a silently evicted sharer stays on
// the directory's list; the eventual Inv must be acked from state I.
func TestStaleInvAfterSilentEviction(t *testing.T) {
	_, f, p := scripted(t, Full)
	doAccess(t, f, p, 1, blkA, coherence.Load) // node1 S
	// Fill node1's (single) set so A is silently evicted.
	doAccess(t, f, p, 1, blkB, coherence.Load)
	doAccess(t, f, p, 1, blkC, coherence.Load)
	if st := p.CacheState(1, blkA); st != CInv {
		t.Fatalf("state=%s want I after silent eviction", st)
	}
	// node2 stores A: dir still lists node1; Inv goes to an I cache.
	done := false
	p.Access(2, blkA, coherence.Store, func() { done = true })
	f.deliverAll(t)
	if !done {
		t.Fatal("store blocked on a stale sharer's ack")
	}
	if err := p.AuditInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestInvDuringUpgrade: SM_AD loses its S copy to a competing writer
// and must both ack and downgrade to IM_AD.
func TestInvDuringUpgrade(t *testing.T) {
	_, f, p := scripted(t, Full)
	doAccess(t, f, p, 1, blkA, coherence.Load)
	doAccess(t, f, p, 2, blkA, coherence.Load)
	var done1, done2 bool
	p.Access(1, blkA, coherence.Store, func() { done1 = true }) // SM_AD
	p.Access(2, blkA, coherence.Store, func() { done2 = true }) // SM_AD
	// Deliver node2's GetM first: the directory invalidates node1's S
	// copy while node1 is itself mid-upgrade.
	if !f.deliverFirst(t, func(m coherence.Msg, _ *network.Message) bool {
		return m.Kind == coherence.GetM && m.From == 2
	}) {
		t.Fatal("node2's GetM not queued")
	}
	f.deliverKind(t, coherence.Inv)
	if st := p.CacheState(1, blkA); st != CIMad {
		t.Fatalf("node1=%s after Inv mid-upgrade, want IM_AD", st)
	}
	f.deliverAll(t)
	if !done1 || !done2 {
		t.Fatalf("done1=%v done2=%v", done1, done2)
	}
	// Both stores happened: the block version counts both.
	if v := p.BlockVersion(blkA); v != 2 {
		t.Fatalf("version=%d want 2", v)
	}
	if err := p.AuditInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestOwnerUpgradeRace: the O owner upgrades while a competing GetM is
// queued ahead of it — the owner serves the forward from OM_AD, loses
// the line, and completes later from the new owner's data.
func TestOwnerUpgradeRace(t *testing.T) {
	_, f, p := scripted(t, Full)
	doAccess(t, f, p, 1, blkA, coherence.Store) // node1 M v1
	doAccess(t, f, p, 2, blkA, coherence.Load)  // node1 O, node2 S
	var done1, done3 bool
	// node3's GetM reaches the directory before node1's upgrade.
	p.Access(3, blkA, coherence.Store, func() { done3 = true })
	f.deliverKind(t, coherence.GetM) // dir: FwdGetM->node1, Inv->node2
	p.Access(1, blkA, coherence.Store, func() { done1 = true })
	// node1 is now OM_AD with its GetM queued behind node3's txn.
	f.deliverKind(t, coherence.FwdGetM)
	if st := p.CacheState(1, blkA); st != CIMad {
		t.Fatalf("node1=%s after serving forward mid-upgrade, want IM_AD", st)
	}
	f.deliverAll(t)
	if !done1 || !done3 {
		t.Fatalf("done1=%v done3=%v", done1, done3)
	}
	// v1 + node3's store + node1's upgrade-store.
	if v := p.BlockVersion(blkA); v != 3 {
		t.Fatalf("version=%d want 3", v)
	}
	if st := p.CacheState(1, blkA); st != CM {
		t.Fatalf("node1=%s want M (its upgrade ran last)", st)
	}
	if err := p.AuditInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestOwnerUpgradeFwdGetS: a GetS forwarded to an upgrading owner is
// served from the O line without disturbing the upgrade.
func TestOwnerUpgradeFwdGetS(t *testing.T) {
	_, f, p := scripted(t, Full)
	doAccess(t, f, p, 1, blkA, coherence.Store)
	doAccess(t, f, p, 2, blkA, coherence.Load) // node1 -> O
	var done1, done3 bool
	p.Access(3, blkA, coherence.Load, func() { done3 = true })
	f.deliverKind(t, coherence.GetS) // FwdGetS -> node1 in flight
	p.Access(1, blkA, coherence.Store, func() { done1 = true })
	f.deliverKind(t, coherence.FwdGetS)
	if st := p.CacheState(1, blkA); st != COMad {
		t.Fatalf("node1=%s want OM_AD still (GetS preserves the line)", st)
	}
	f.deliverAll(t)
	if !done1 || !done3 {
		t.Fatalf("done1=%v done3=%v", done1, done3)
	}
	if err := p.AuditInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestGetSRaceWithWritebackSpecDetects: the §3.1 race also exists for
// reads — a FwdGetS overtaken by the WBAck hits an invalid cache.
func TestGetSRaceWithWritebackSpecDetects(t *testing.T) {
	_, f, p := scripted(t, Spec)
	var reasons []string
	p.OnMisSpeculation = func(r string) {
		reasons = append(reasons, r)
		p.ResetTransients()
		f.queue = nil
	}
	doAccess(t, f, p, 1, blkA, coherence.Store)
	doAccess(t, f, p, 1, blkB, coherence.Store)
	p.Access(1, blkC, coherence.Store, func() {})
	f.deliverKind(t, coherence.GetM)
	f.deliverKind(t, coherence.Data)
	f.deliverKind(t, coherence.FinalAck)
	p.Access(2, blkA, coherence.Load, func() {}) // GetS this time
	f.deliverKind(t, coherence.GetS)
	f.deliverKind(t, coherence.PutM)
	f.deliverKind(t, coherence.WBAck)   // reordered ahead
	f.deliverKind(t, coherence.FwdGetS) // hits I
	if len(reasons) != 1 || reasons[0] != "p2p-ordering" {
		t.Fatalf("reasons=%v", reasons)
	}
}

// TestGetSRaceWithWritebackFullHandles: the Full variant resolves the
// same reordering: directory supplies the reader, completion flips to
// DS, and the stale forward is absorbed in II_F.
func TestGetSRaceWithWritebackFullHandles(t *testing.T) {
	_, f, p := scripted(t, Full)
	readerDone := false
	doAccess(t, f, p, 1, blkA, coherence.Store)
	doAccess(t, f, p, 1, blkB, coherence.Store)
	p.Access(1, blkC, coherence.Store, func() {})
	f.deliverKind(t, coherence.GetM)
	f.deliverKind(t, coherence.Data)
	f.deliverKind(t, coherence.FinalAck)
	p.Access(2, blkA, coherence.Load, func() { readerDone = true })
	f.deliverKind(t, coherence.GetS)
	f.deliverKind(t, coherence.PutM)
	f.deliverKind(t, coherence.WBAck)
	if st := p.CacheState(1, blkA); st != CIIf {
		t.Fatalf("node1=%s want II_F", st)
	}
	f.deliverAll(t)
	if !readerDone {
		t.Fatal("reader never completed")
	}
	if ds, _ := p.DirState(blkA); ds != DS {
		t.Fatalf("dir=%s want DS (owner wrote back)", ds)
	}
	if v := p.MemVersion(blkA); v != 1 {
		t.Fatalf("memory=%d want the written-back version", v)
	}
	if err := p.AuditInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestStaleDataDroppedByTID: a duplicate Data outliving its transaction
// must not corrupt a newer transaction on the same block (regression
// for the bug found by the randomized property test).
func TestStaleDataDroppedByTID(t *testing.T) {
	_, f, p := scripted(t, Full)
	doAccess(t, f, p, 1, blkA, coherence.Store)
	doAccess(t, f, p, 1, blkB, coherence.Store)
	p.Access(1, blkC, coherence.Store, func() {})
	f.deliverKind(t, coherence.GetM)
	f.deliverKind(t, coherence.Data)
	f.deliverKind(t, coherence.FinalAck)
	n2 := false
	p.Access(2, blkA, coherence.Store, func() { n2 = true })
	f.deliverKind(t, coherence.GetM)
	f.deliverKind(t, coherence.PutM)    // race: dir double-sends Data
	f.deliverKind(t, coherence.FwdGetM) // owner also serves: 2 Datas queued
	// Node2 completes from the first Data...
	f.deliverKind(t, coherence.Data)
	f.deliverAll(t)
	if !n2 {
		t.Fatal("store never completed")
	}
	// ...and a new transaction on A must not absorb the leftover Data.
	n2b := false
	p.Access(3, blkA, coherence.Load, func() { n2b = true })
	f.deliverAll(t)
	if !n2b {
		t.Fatal("follow-up load never completed")
	}
	if p.Stats().DupDataDropped.Value() == 0 {
		t.Fatal("duplicate data not dropped")
	}
	if err := p.AuditInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestWatchdogQuietOnHealthyRun: the deadlock watchdog must not fire
// false positives on an uncongested run over a real (safe) network.
func TestWatchdogQuietOnHealthyRun(t *testing.T) {
	k := sim.NewKernel()
	net := network.New(k, network.SafeStaticConfig(4, 4, 0.8))
	cfg := DefaultConfig(16, Spec)
	cfg.TimeoutCycles = 100_000
	p := New(k, net, cfg, nil)
	p.OnMisSpeculation = func(r string) { t.Fatalf("watchdog false positive: %s", r) }
	p.StartWatchdog(10_000)
	r := sim.NewRNG(5)
	for n := 0; n < 16; n++ {
		n := n
		remaining := 60
		var issue func()
		issue = func() {
			if remaining == 0 {
				return
			}
			remaining--
			a := coherence.Addr(r.Intn(32) * 64)
			kind := coherence.Load
			if r.Bool(0.4) {
				kind = coherence.Store
			}
			p.Access(coherence.NodeID(n), a, kind, func() { k.After(20, issue) })
		}
		k.At(sim.Time(n), issue)
	}
	k.Run(2_000_000)
	if p.Stats().TimeoutsDetected.Value() != 0 {
		t.Fatal("timeouts on a healthy run")
	}
}

// TestDirStaleWritebackDuringForeignBusy: a long-delayed PutM arrives
// while the directory is busy with a transaction whose forward targets
// a different node (regression for the stress-found bug).
func TestDirStaleWritebackDuringForeignBusy(t *testing.T) {
	_, f, p := scripted(t, Full)
	doAccess(t, f, p, 1, blkA, coherence.Store) // node1 M
	doAccess(t, f, p, 1, blkB, coherence.Store)
	p.Access(1, blkC, coherence.Store, func() {}) // evict A -> PutM held
	f.deliverKind(t, coherence.GetM)
	f.deliverKind(t, coherence.Data)
	f.deliverKind(t, coherence.FinalAck)
	// node2 takes ownership of A through the in-flight-writeback race
	// (forward served first, in order).
	p.Access(2, blkA, coherence.Store, func() {})
	f.deliverKind(t, coherence.GetM)
	f.deliverKind(t, coherence.FwdGetM)
	f.deliverKind(t, coherence.Data)
	f.deliverKind(t, coherence.FinalAck)
	// node3 now requests A: dir is busy forwarding to node2... and only
	// now does node1's ancient PutM arrive.
	p.Access(3, blkA, coherence.Store, func() {})
	f.deliverKind(t, coherence.GetM)
	f.deliverKind(t, coherence.PutM) // stale: busy fwdTo==node2 != node1
	f.deliverAll(t)
	if st := p.CacheState(1, blkA); st != CInv {
		t.Fatalf("node1=%s want I after stale writeback acked", st)
	}
	if err := p.AuditInvariants(); err != nil {
		t.Fatal(err)
	}
	if v := p.BlockVersion(blkA); v != 3 {
		t.Fatalf("version=%d want 3 (three stores)", v)
	}
}
