package directory

import (
	"reflect"
	"testing"

	"specsimp/internal/coherence"
	"specsimp/internal/explore"
)

// raceScript provokes the §3.1 writeback race: node 1 acquires A, then
// evicts it via B and C (1-set 2-way cache) while node 2 competes for A.
func raceScript() [][]ScriptOp {
	return [][]ScriptOp{
		0: {},
		1: {{blkA, coherence.Store}, {blkB, coherence.Store}, {blkC, coherence.Store}},
		2: {{blkA, coherence.Store}},
	}
}

// wideScript is the scaled proof scenario: three blocks, four active
// nodes, two writeback races in flight at once (nodes 0 and 1 both
// evict contested blocks while nodes 2 and 3 compete for them). This
// is the "recovery mid-flight" shape: when the Spec variant detects on
// one block, other transactions are still in flight and
// ResetTransients must clear them all (checked by the model).
func wideScript() [][]ScriptOp {
	return [][]ScriptOp{
		0: {{blkA, coherence.Store}, {blkB, coherence.Store}, {blkC, coherence.Store}},
		1: {{blkB, coherence.Store}, {blkC, coherence.Store}},
		2: {{blkA, coherence.Store}},
		3: {{blkB, coherence.Load}},
	}
}

// TestExploreFullNoMisSpeculation: across every explored interleaving
// the full protocol completes with intact invariants and never
// mis-speculates.
func TestExploreFullNoMisSpeculation(t *testing.T) {
	res := Explore(ExploreConfig{
		Variant: Full,
		Nodes:   4,
		Script:  raceScript(),
	})
	if !res.Ok() {
		t.Fatalf("violations (%d), first: %s", len(res.Violations), res.Violations[0])
	}
	if res.Truncated {
		t.Fatal("exploration truncated; the proof is not exhaustive")
	}
	if res.Detected != 0 {
		t.Fatalf("full variant mis-speculated on %d paths", res.Detected)
	}
	if res.Completed != res.Paths {
		t.Fatalf("completed %d of %d paths", res.Completed, res.Paths)
	}
	if res.RacesExercised == 0 {
		t.Fatal("no path exercised the writeback race; the scenario proves nothing")
	}
	t.Logf("full: %d paths (+%d sleep-cut, +%d visited-cut), race on %d",
		res.Paths, res.SleepCut, res.VisitedCut, res.RacesExercised)
}

// TestExploreSpecDetectsAllViolations is the framework's feature (2)
// within explored bounds: under every interleaving the spec protocol
// either completes correctly or stops at its designated detection —
// never a third outcome (silent corruption, unspecified transition
// panic, or stuck protocol).
func TestExploreSpecDetectsAllViolations(t *testing.T) {
	res := Explore(ExploreConfig{
		Variant: Spec,
		Nodes:   4,
		Script:  raceScript(),
	})
	if !res.Ok() {
		t.Fatalf("violations (%d), first: %s", len(res.Violations), res.Violations[0])
	}
	if res.Truncated {
		t.Fatal("exploration truncated; the proof is not exhaustive")
	}
	if res.Detected == 0 {
		t.Fatal("no interleaving triggered the race; exploration proves nothing")
	}
	if res.Completed+res.Detected != res.Paths {
		t.Fatalf("paths=%d completed=%d detected=%d: unexplained outcomes",
			res.Paths, res.Completed, res.Detected)
	}
	t.Logf("spec: %d paths — %d completed, %d detected", res.Paths, res.Completed, res.Detected)
}

// TestExploreThreeBlocksFourNodes is the scaled proof the engine
// exists for: both variants verified exhaustively on a 3-block,
// 4-active-node scenario with overlapping writeback races — beyond
// what full enumeration could finish.
func TestExploreThreeBlocksFourNodes(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive 3x4 proof runs in the full test step; -short (race) covers the smaller scenarios")
	}
	for _, v := range []Variant{Full, Spec} {
		res := Explore(ExploreConfig{
			Variant: v,
			Nodes:   4,
			Script:  wideScript(),
		})
		if !res.Ok() {
			t.Fatalf("%s: violations (%d), first: %s", v, len(res.Violations), res.Violations[0])
		}
		if res.Truncated {
			t.Fatalf("%s: truncated; the proof is not exhaustive", v)
		}
		switch v {
		case Full:
			if res.Detected != 0 {
				t.Fatalf("full variant mis-speculated on %d paths", res.Detected)
			}
			if res.RacesExercised == 0 {
				t.Fatal("scenario never reached the writeback race")
			}
		case Spec:
			if res.Detected == 0 {
				t.Fatal("spec variant never detected; scenario proves nothing")
			}
			if res.Completed+res.Detected != res.Paths {
				t.Fatalf("unexplained outcomes: %+v", res)
			}
		}
		t.Logf("%s 3x4: %d paths, %d detected, cuts %d+%d, %d transitions",
			v, res.Paths, res.Detected, res.SleepCut, res.VisitedCut, res.Transitions)
	}
}

// TestExploreImpreciseSharerOverflow drives the PR-3 Dir_i_B overflow
// machinery through exhaustive exploration: a 1-pointer entry
// overflows to broadcast on the second sharer, so the storer's
// invalidation fan-out is imprecise (targets that never shared, and —
// through eviction races — invalidations landing on writeback TBEs).
// Every interleaving must still complete with intact invariants.
func TestExploreImpreciseSharerOverflow(t *testing.T) {
	script := [][]ScriptOp{
		0: {{blkA, coherence.Load}},
		1: {{blkA, coherence.Load}},
		2: {{blkA, coherence.Load}, {blkA, coherence.Store}},
		3: {{blkA, coherence.Store}, {blkB, coherence.Store}},
	}
	for _, v := range []Variant{Full, Spec} {
		cfg := ExploreConfig{
			Variant:        v,
			Nodes:          4,
			Script:         script,
			Sharers:        LimitedPointer,
			SharerPointers: 1,
		}
		res := Explore(cfg)
		if !res.Ok() {
			t.Fatalf("%s: %s", v, res.Violations[0])
		}
		if res.Truncated {
			t.Fatalf("%s: truncated", v)
		}
		t.Logf("%s overflow: %d paths, %d detected", v, res.Paths, res.Detected)

		// The scenario must actually overflow: replay one canonical
		// path on a bare model and observe the counter.
		m := newDirModel(cfg)
		m.Reset()
		for {
			tr := m.Enabled(nil)
			if len(tr) == 0 {
				break
			}
			delivered := false
			for _, c := range tr {
				if m.Take(c.ID) != explore.Blocked {
					delivered = true
					break
				}
			}
			if !delivered {
				t.Fatal("probe run wedged")
			}
		}
		if m.p.Stats().SharerOverflows.Value() == 0 {
			t.Fatalf("%s: scenario never overflowed the 1-pointer entry", v)
		}
	}
}

// TestExploreSharingScenario explores a read-share/invalidate scenario
// with no writebacks: both variants must complete every interleaving
// with zero detections.
func TestExploreSharingScenario(t *testing.T) {
	script := [][]ScriptOp{
		0: {{blkA, coherence.Load}, {blkA, coherence.Store}},
		1: {{blkA, coherence.Load}},
		2: {{blkA, coherence.Store}},
	}
	for _, v := range []Variant{Full, Spec} {
		res := Explore(ExploreConfig{Variant: v, Nodes: 4, Script: script})
		if !res.Ok() {
			t.Fatalf("%s: %s", v, res.Violations[0])
		}
		if res.Detected != 0 {
			t.Fatalf("%s: detections in a race-free scenario", v)
		}
		t.Logf("%s sharing: %d paths verified", v, res.Paths)
	}
}

// TestExploreUpgradeScenario explores competing upgrades from S.
func TestExploreUpgradeScenario(t *testing.T) {
	script := [][]ScriptOp{
		0: {{blkA, coherence.Load}, {blkA, coherence.Store}},
		1: {{blkA, coherence.Load}, {blkA, coherence.Store}},
		2: {},
	}
	res := Explore(ExploreConfig{Variant: Full, Nodes: 4, Script: script})
	if !res.Ok() {
		t.Fatalf("%s", res.Violations[0])
	}
	t.Logf("upgrades: %d paths verified", res.Paths)
}

// TestExploreModeEquivalence: full enumeration, sleep sets + dedup,
// and DPOR must reach exactly the same terminal states on a scenario
// small enough to enumerate — the protocol-level soundness check of
// the reductions (the independence relation could be wrong in ways
// toy models never exercise).
func TestExploreModeEquivalence(t *testing.T) {
	// The eviction chain (A, B, C through a 2-frame L2) puts a
	// writeback of A in flight against node 1's store, so detection
	// paths — where a delivery clears every in-flight queue at once,
	// the hardest case for the commutation assumption — are part of
	// the compared terminal sets (Spec detects on 64 paths here under
	// full enumeration).
	script := [][]ScriptOp{
		0: {{blkA, coherence.Store}, {blkB, coherence.Store}, {blkC, coherence.Store}},
		1: {{blkA, coherence.Store}},
	}
	sawDetection := false
	terminals := map[string][]explore.Digest{}
	for _, m := range []struct {
		name    string
		reduce  explore.Reduction
		noDedup bool
	}{
		{"none", explore.ReduceNone, true},
		{"sleep", explore.ReduceSleep, false},
		{"dpor", explore.ReduceDPOR, true},
	} {
		res := Explore(ExploreConfig{
			Variant:          Spec,
			Nodes:            3,
			Script:           script,
			Reduce:           m.reduce,
			NoDedup:          m.noDedup,
			CollectTerminals: true,
		})
		if !res.Ok() {
			t.Fatalf("%s: %s", m.name, res.Violations[0])
		}
		if res.Truncated {
			t.Fatalf("%s: truncated", m.name)
		}
		if res.Detected > 0 {
			sawDetection = true
		}
		var keys []explore.Digest
		for d := range res.Terminals {
			keys = append(keys, d)
		}
		sortDigests(keys)
		terminals[m.name] = keys
		t.Logf("%s: %d paths (%d detected), %d distinct terminal states",
			m.name, res.Paths, res.Detected, len(keys))
	}
	if !sawDetection {
		t.Fatal("scenario never detected: equivalence does not cover detection paths")
	}
	if !reflect.DeepEqual(terminals["none"], terminals["sleep"]) {
		t.Fatalf("sleep reduction lost terminal states: %d vs %d",
			len(terminals["sleep"]), len(terminals["none"]))
	}
	if !reflect.DeepEqual(terminals["none"], terminals["dpor"]) {
		t.Fatalf("dpor reduction lost terminal states: %d vs %d",
			len(terminals["dpor"]), len(terminals["none"]))
	}
}

// TestExploreReductionRatio pins the acceptance bar: on the pre-PR-4
// race script, the reductions explore at least 10x fewer
// interleavings than full enumeration.
func TestExploreReductionRatio(t *testing.T) {
	budget := 60_000
	full := Explore(ExploreConfig{
		Variant: Spec, Nodes: 4, Script: raceScript(),
		Reduce: explore.ReduceNone, NoDedup: true, MaxPaths: budget,
	})
	fullPaths := full.Paths // a lower bound when truncated
	for _, m := range []struct {
		name    string
		reduce  explore.Reduction
		noDedup bool
	}{
		{"sleep+dedup", explore.ReduceSleep, false},
		{"dpor", explore.ReduceDPOR, true},
	} {
		res := Explore(ExploreConfig{
			Variant: Spec, Nodes: 4, Script: raceScript(),
			Reduce: m.reduce, NoDedup: m.noDedup, ForkDepth: -1,
		})
		if !res.Ok() {
			t.Fatalf("%s: %s", m.name, res.Violations[0])
		}
		if res.Truncated {
			t.Fatalf("%s: truncated", m.name)
		}
		if res.Paths*10 > fullPaths {
			t.Fatalf("%s explored %d paths vs >=%d full enumeration: less than 10x",
				m.name, res.Paths, fullPaths)
		}
		t.Logf("%s: %d paths vs >=%d full (%.0fx, truncated-full=%v)",
			m.name, res.Paths, fullPaths, float64(fullPaths)/float64(res.Paths), full.Truncated)
	}
}

// TestExploreWorkerDeterminism: the parallel frontier must return
// bit-identical results — counts, violations, terminal digests — for
// every worker count (run with -race in CI).
func TestExploreWorkerDeterminism(t *testing.T) {
	base := Explore(ExploreConfig{
		Variant: Spec, Nodes: 4, Script: raceScript(),
		Workers: 1, CollectTerminals: true,
	})
	for _, w := range []int{2, 8} {
		got := Explore(ExploreConfig{
			Variant: Spec, Nodes: 4, Script: raceScript(),
			Workers: w, CollectTerminals: true,
		})
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("workers=%d diverged from workers=1:\n%+v\nvs\n%+v", w, base, got)
		}
	}
	if base.Tasks < 2 {
		t.Fatalf("expected a forked frontier, got %d tasks", base.Tasks)
	}
	t.Logf("%d paths over %d tasks, identical at 1/2/8 workers", base.Paths, base.Tasks)
}

func sortDigests(ds []explore.Digest) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && less(ds[j], ds[j-1]); j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

func less(a, b explore.Digest) bool {
	return a[0] < b[0] || (a[0] == b[0] && a[1] < b[1])
}
