package directory

import (
	"testing"

	"specsimp/internal/coherence"
)

// raceScript provokes the §3.1 writeback race: node 1 acquires A, then
// evicts it via B and C (1-set 2-way cache) while node 2 competes for A.
func raceScript() [][]ScriptOp {
	return [][]ScriptOp{
		0: {},
		1: {{blkA, coherence.Store}, {blkB, coherence.Store}, {blkC, coherence.Store}},
		2: {{blkA, coherence.Store}},
	}
}

// TestExploreFullNoMisSpeculation: across every explored interleaving
// the full protocol completes with intact invariants and never
// mis-speculates.
func TestExploreFullNoMisSpeculation(t *testing.T) {
	res := Explore(ExploreConfig{
		Variant:  Full,
		Nodes:    4,
		Script:   raceScript(),
		MaxPaths: 100_000,
	})
	if !res.Ok() {
		t.Fatalf("violations (%d), first: %s", len(res.Violations), res.Violations[0])
	}
	if res.Detected != 0 {
		t.Fatalf("full variant mis-speculated on %d paths", res.Detected)
	}
	if res.Completed != res.Paths {
		t.Fatalf("completed %d of %d paths", res.Completed, res.Paths)
	}
	t.Logf("full: %d interleavings verified (truncated=%v)", res.Paths, res.Truncated)
}

// TestExploreSpecDetectsAllViolations is the framework's feature (2)
// within explored bounds: under every interleaving the spec protocol
// either completes correctly or stops at its designated detection —
// never a third outcome (silent corruption, unspecified transition
// panic, or stuck protocol).
func TestExploreSpecDetectsAllViolations(t *testing.T) {
	res := Explore(ExploreConfig{
		Variant:  Spec,
		Nodes:    4,
		Script:   raceScript(),
		MaxPaths: 30_000,
	})
	if !res.Ok() {
		t.Fatalf("violations (%d), first: %s", len(res.Violations), res.Violations[0])
	}
	if res.Detected == 0 {
		t.Fatal("no interleaving triggered the race; exploration proves nothing")
	}
	if res.Completed+res.Detected != res.Paths {
		t.Fatalf("paths=%d completed=%d detected=%d: unexplained outcomes",
			res.Paths, res.Completed, res.Detected)
	}
	t.Logf("spec: %d interleavings — %d completed, %d detected (truncated=%v)",
		res.Paths, res.Completed, res.Detected, res.Truncated)
}

// TestExploreSharingScenario explores a read-share/invalidate scenario
// with no writebacks: both variants must complete every interleaving
// with zero detections.
func TestExploreSharingScenario(t *testing.T) {
	script := [][]ScriptOp{
		0: {{blkA, coherence.Load}, {blkA, coherence.Store}},
		1: {{blkA, coherence.Load}},
		2: {{blkA, coherence.Store}},
	}
	for _, v := range []Variant{Full, Spec} {
		res := Explore(ExploreConfig{
			Variant:  v,
			Nodes:    4,
			Script:   script,
			MaxPaths: 20_000,
		})
		if !res.Ok() {
			t.Fatalf("%s: %s", v, res.Violations[0])
		}
		if res.Detected != 0 {
			t.Fatalf("%s: detections in a race-free scenario", v)
		}
		t.Logf("%s sharing: %d interleavings verified", v, res.Paths)
	}
}

// TestExploreUpgradeScenario explores competing upgrades from S.
func TestExploreUpgradeScenario(t *testing.T) {
	script := [][]ScriptOp{
		0: {{blkA, coherence.Load}, {blkA, coherence.Store}},
		1: {{blkA, coherence.Load}, {blkA, coherence.Store}},
		2: {},
	}
	res := Explore(ExploreConfig{
		Variant:  Full,
		Nodes:    4,
		Script:   script,
		MaxPaths: 20_000,
	})
	if !res.Ok() {
		t.Fatalf("%s", res.Violations[0])
	}
	t.Logf("upgrades: %d interleavings verified", res.Paths)
}

// TestExploreDeterministicReplay: the same prefix always reproduces the
// same branch widths (the explorer depends on replay determinism).
func TestExploreDeterministicReplay(t *testing.T) {
	cfg := ExploreConfig{Variant: Full, Nodes: 4, Script: raceScript(), MaxPaths: 1}
	var res ExploreResult
	w1, _ := runPath(cfg, nil, &res)
	w2, _ := runPath(cfg, nil, &res)
	if len(w1) != len(w2) {
		t.Fatalf("widths diverged: %v vs %v", w1, w2)
	}
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatalf("width[%d]: %d vs %d", i, w1[i], w2[i])
		}
	}
}
