package coherence

import "testing"

func TestBlockAddr(t *testing.T) {
	if BlockAddr(0x1234) != 0x1200 {
		t.Fatalf("BlockAddr(0x1234)=%#x", uint64(BlockAddr(0x1234)))
	}
	if BlockAddr(0x1200) != 0x1200 {
		t.Fatal("aligned address changed")
	}
}

func TestVNetAssignment(t *testing.T) {
	cases := map[MsgKind]int{
		GetS: VNetRequest, GetM: VNetRequest, PutM: VNetRequest,
		FwdGetS: VNetForward, FwdGetM: VNetForward, Inv: VNetForward, WBAck: VNetForward,
		Data: VNetResponse, Ack: VNetResponse, Nack: VNetResponse,
		FinalAck: VNetFinalAck,
	}
	for k, want := range cases {
		if got := VNetOf(k); got != want {
			t.Errorf("VNetOf(%s)=%d want %d", k, got, want)
		}
	}
}

func TestSizeOf(t *testing.T) {
	if SizeOf(Data) != DataMsgBytes || SizeOf(PutM) != DataMsgBytes || SizeOf(SnoopPutM) != DataMsgBytes {
		t.Fatal("data-carrying messages must be data-sized")
	}
	if SizeOf(GetS) != CtrlMsgBytes || SizeOf(WBAck) != CtrlMsgBytes {
		t.Fatal("control messages must be control-sized")
	}
}

func TestStringNames(t *testing.T) {
	if GetS.String() != "GetS" || FwdGetM.String() != "FwdGetM" || SnoopPutM.String() != "SnoopPutM" {
		t.Fatal("message kind names wrong")
	}
	if Load.String() != "Load" || Store.String() != "Store" {
		t.Fatal("access type names wrong")
	}
	m := Msg{Kind: Data, Addr: 0x40, From: 1, Requestor: 2, Version: 3}
	if s := m.String(); len(s) == 0 {
		t.Fatal("empty message string")
	}
}
