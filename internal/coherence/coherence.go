// Package coherence holds the vocabulary shared by the directory and
// snooping protocol implementations: block addresses, node identifiers,
// coherence message kinds, virtual network assignments, and access types.
package coherence

import "fmt"

// NodeID identifies a processor/cache/directory node (0..N-1).
type NodeID int

// Addr is a block-aligned physical address.
type Addr uint64

// BlockBytes is the coherence unit (paper Table 2: 64-byte blocks).
const BlockBytes = 64

// BlockAddr masks a byte address down to its block address.
func BlockAddr(a Addr) Addr { return a &^ (BlockBytes - 1) }

// AccessType distinguishes loads from stores.
type AccessType uint8

// Access types.
const (
	Load AccessType = iota
	Store
)

func (a AccessType) String() string {
	if a == Load {
		return "Load"
	}
	return "Store"
}

// MsgKind enumerates every coherence message exchanged by either
// protocol. The directory protocol (paper §3.1) uses the Request,
// ForwardedRequest, Response and FinalAck classes; the snooping protocol
// (paper §3.2) uses the Snoop* kinds on its ordered address network plus
// Data on its unordered data network.
type MsgKind uint8

// Directory protocol messages.
const (
	// Requests: processor -> directory (paper: RequestReadOnly,
	// RequestReadWrite, Writeback).
	GetS MsgKind = iota // RequestReadOnly
	GetM                // RequestReadWrite
	PutM                // Writeback (carries data)

	// ForwardedRequests: directory -> processor (paper:
	// Forwarded-RequestReadOnly, Forwarded-RequestReadWrite,
	// Invalidation, Writeback-Ack).
	FwdGetS
	FwdGetM
	Inv
	WBAck

	// Responses: processor or directory -> requesting processor.
	Data
	Ack // invalidation acknowledgement
	Nack

	// FinalAck: processor -> directory, completes a transaction and, in
	// the paper, coordinates SafetyNet checkpoints.
	FinalAck

	// Snooping protocol messages (address network carries ordered
	// requests; data network carries Data above).
	SnoopGetS
	SnoopGetM
	SnoopPutM
)

var msgKindNames = [...]string{
	"GetS", "GetM", "PutM",
	"FwdGetS", "FwdGetM", "Inv", "WBAck",
	"Data", "Ack", "Nack",
	"FinalAck",
	"SnoopGetS", "SnoopGetM", "SnoopPutM",
}

func (k MsgKind) String() string {
	if int(k) < len(msgKindNames) {
		return msgKindNames[k]
	}
	return fmt.Sprintf("MsgKind(%d)", uint8(k))
}

// Virtual network assignment (paper §3.1: four classes of messages, each
// on a logically separate virtual network).
const (
	VNetRequest  = 0
	VNetForward  = 1
	VNetResponse = 2
	VNetFinalAck = 3
	NumVNets     = 4
)

// VNetOf returns the virtual network a directory-protocol message kind
// travels on.
func VNetOf(k MsgKind) int {
	switch k {
	case GetS, GetM, PutM:
		return VNetRequest
	case FwdGetS, FwdGetM, Inv, WBAck:
		return VNetForward
	case Data, Ack, Nack:
		return VNetResponse
	case FinalAck:
		return VNetFinalAck
	}
	return VNetRequest
}

// Control and data message sizes in bytes. A data message carries the
// 64-byte block plus an 8-byte header.
const (
	CtrlMsgBytes = 8
	DataMsgBytes = BlockBytes + 8
)

// SizeOf returns the size in bytes of a message of kind k.
func SizeOf(k MsgKind) int {
	switch k {
	case Data, PutM, SnoopPutM:
		return DataMsgBytes
	default:
		return CtrlMsgBytes
	}
}

// Msg is a coherence protocol message (the payload a network message
// carries). Version is the data version for Data/PutM messages; AckCount
// tells a GetM requestor how many invalidation Acks to expect; Stale
// marks a WBAck sent while a forwarded request to the same node is still
// outstanding (used only by the Full directory variant's race handling).
// Imprecise marks an Inv fanned out from a conservative (overflowed
// limited-pointer or coarse-vector) sharer set: the target may never
// have shared the block, so receivers ack states that would otherwise
// be illegal-transition detection points.
type Msg struct {
	Kind      MsgKind
	Addr      Addr
	From      NodeID
	Requestor NodeID // original requestor for forwarded/respond paths
	Version   uint64
	AckCount  int
	Stale     bool
	Imprecise bool
	TID       uint64 // transaction id, for duplicate-data tolerance
}

func (m Msg) String() string {
	return fmt.Sprintf("%s addr=%#x from=%d req=%d v=%d acks=%d stale=%v imprecise=%v tid=%d",
		m.Kind, uint64(m.Addr), m.From, m.Requestor, m.Version, m.AckCount, m.Stale, m.Imprecise, m.TID)
}
