package safetynet

import (
	"testing"

	"specsimp/internal/sim"
)

// TestPressureFlagAndOverflowAccounting exercises the log-capacity
// machinery in isolation: the pressure flag rises exactly once when a
// node's log reaches capacity (firing OnPressure on the transition, not
// on every append), overflows count only appends past the byte budget,
// and committing a validated checkpoint frees the entries and clears
// the flag.
func TestPressureFlagAndOverflowAccounting(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultConfig(2, 100) // validation window 300
	cfg.LogBytes = 3 * cfg.EntryBytes
	m := NewManager(k, cfg)
	fired := 0
	m.OnPressure = func() { fired++ }
	m.TakeCheckpoint("s0")

	set := func(key uint64) {
		m.LogOldValue(0, key, func() {})
	}
	set(1)
	set(2)
	if m.PressureSignal() || fired != 0 {
		t.Fatalf("pressure before capacity: signal=%v fired=%d", m.PressureSignal(), fired)
	}
	set(3) // at capacity
	if !m.PressureSignal() || fired != 1 {
		t.Fatalf("pressure at capacity: signal=%v fired=%d", m.PressureSignal(), fired)
	}
	if m.Overflows() != 0 {
		t.Fatalf("overflows=%d at exactly capacity, want 0", m.Overflows())
	}
	set(4) // past capacity: accepted (recovery needs it) but counted
	if m.Overflows() != 1 || fired != 1 {
		t.Fatalf("past capacity: overflows=%d fired=%d, want 1 and 1", m.Overflows(), fired)
	}

	// A newer checkpoint that ages past its validation window commits,
	// freeing the old epoch's entries and recomputing pressure.
	k.Run(150)
	m.TakeCheckpoint("s1") // validates at t=450
	k.Run(550)
	m.CommitNow()
	if m.PressureSignal() {
		t.Fatal("pressure survived a commit that freed the log")
	}
	if occ := m.MaxOccupancyEntries(); occ != 0 {
		t.Fatalf("occupancy %d after commit, want 0", occ)
	}
	if m.Overflows() != 1 {
		t.Fatalf("overflow count changed across commit: %d", m.Overflows())
	}
}

// TestUnlimitedLogNeverPressuresOrOverflows: LogBytes == 0 disables the
// capacity entirely — no pressure flags, no overflow counts, regardless
// of volume. (Regression: the overflow counter once compared against
// the zero budget and counted every append.)
func TestUnlimitedLogNeverPressuresOrOverflows(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultConfig(1, 100)
	cfg.LogBytes = 0
	m := NewManager(k, cfg)
	m.TakeCheckpoint(nil)
	for key := uint64(0); key < 10_000; key++ {
		m.LogOldValue(0, key, func() {})
	}
	if m.PressureSignal() || m.Overflows() != 0 {
		t.Fatalf("unlimited log: pressure=%v overflows=%d", m.PressureSignal(), m.Overflows())
	}
}

// TestTakeCheckpointWindowControlsValidation: a checkpoint taken with
// an explicit window validates on that window, not the configured
// default — the lever the adaptive cadence controller depends on.
func TestTakeCheckpointWindowControlsValidation(t *testing.T) {
	k := sim.NewKernel()
	m := NewManager(k, DefaultConfig(1, 100)) // default window 300
	m.TakeCheckpoint("s0")
	k.Run(50)
	m.TakeCheckpointWindow("s1", 10) // validates at t=60
	k.Run(70)
	if _, snap := m.RecoveryPoint(); snap != "s1" {
		t.Fatalf("recovery point %v at t=70, want s1 (validated at 60)", snap)
	}
	m.TakeCheckpointWindow("s2", 1_000) // validates at t=1070
	k.Run(570)                          // s2 still aging
	if _, snap := m.RecoveryPoint(); snap != "s1" {
		t.Fatalf("recovery point %v at t=570, want s1 (s2 validates at 1070)", snap)
	}
	k.Run(1_170)
	if _, snap := m.RecoveryPoint(); snap != "s2" {
		t.Fatalf("recovery point %v at t=1170, want s2", snap)
	}
}
