package safetynet

import (
	"testing"
	"testing/quick"

	"specsimp/internal/sim"
)

func mgr(k *sim.Kernel, interval sim.Time) *Manager {
	return NewManager(k, DefaultConfig(4, interval))
}

// logged wires a mutable variable to the manager's undo log the way the
// protocol controllers do: log the old value on first write per epoch.
type logged struct {
	m    *Manager
	node int
	key  uint64
	v    uint64
}

func (l *logged) set(v uint64) {
	old := l.v
	l.m.LogOldValue(l.node, l.key, func() { l.v = old })
	l.v = v
}

func TestCheckpointRecoverRestoresState(t *testing.T) {
	k := sim.NewKernel()
	m := mgr(k, 100)
	x := &logged{m: m, node: 0, key: 1}
	m.TakeCheckpoint("s0")
	x.set(10)
	k.Run(100)
	m.TakeCheckpoint("s1") // epoch 1, x==10 at this boundary
	x.set(20)
	x.set(30)
	k.Run(500) // age checkpoints past the validation window (300)

	snap, lost := m.Recover()
	// Newest validated checkpoint at t=500: ckpt1 (t=100, validated at 400).
	if snap != "s1" {
		t.Fatalf("recovered snapshot %v, want s1", snap)
	}
	if x.v != 10 {
		t.Fatalf("x=%d after recovery, want 10 (value at checkpoint 1)", x.v)
	}
	if lost != 400 {
		t.Fatalf("lost=%d cycles, want 400", lost)
	}
	if m.Recoveries() != 1 {
		t.Fatalf("recoveries=%d", m.Recoveries())
	}
}

func TestFirstWritePerEpochDeduplication(t *testing.T) {
	k := sim.NewKernel()
	m := mgr(k, 100)
	m.TakeCheckpoint(nil)
	x := &logged{m: m, node: 1, key: 7}
	for i := 0; i < 100; i++ {
		x.set(uint64(i))
	}
	if m.EntriesLogged() != 1 {
		t.Fatalf("logged %d entries for same-key same-epoch writes, want 1", m.EntriesLogged())
	}
	k.Run(100)
	m.TakeCheckpoint(nil)
	x.set(999)
	if m.EntriesLogged() != 2 {
		t.Fatalf("logged %d entries, want 2 (new epoch logs again)", m.EntriesLogged())
	}
}

func TestRelogAfterRecovery(t *testing.T) {
	// After a recovery, modifications in the resumed epoch must be
	// logged again even though the key was logged before rollback.
	k := sim.NewKernel()
	m := mgr(k, 100)
	x := &logged{m: m, node: 0, key: 5}
	m.TakeCheckpoint("s0")
	x.set(1)
	k.Run(1000)
	m.Recover() // back to s0; x==0
	if x.v != 0 {
		t.Fatalf("x=%d want 0", x.v)
	}
	x.set(2)
	k.Run(2000)
	m.Recover()
	if x.v != 0 {
		t.Fatalf("x=%d after second recovery, want 0 — undo after recovery was not re-logged", x.v)
	}
}

func TestEarlyRecoveryUsesOldestCheckpoint(t *testing.T) {
	k := sim.NewKernel()
	m := mgr(k, 100)
	m.TakeCheckpoint("init")
	k.Run(50) // nothing validated yet (window = 300)
	snap, _ := m.Recover()
	if snap != "init" {
		t.Fatalf("recovered to %v, want init", snap)
	}
}

func TestCommitFreesLog(t *testing.T) {
	k := sim.NewKernel()
	m := mgr(k, 100)
	x := &logged{m: m, node: 0, key: 9}
	m.TakeCheckpoint(nil)
	for e := 0; e < 20; e++ {
		x.set(uint64(e))
		k.Run(k.Now() + 100)
		m.TakeCheckpoint(nil)
	}
	// Window is 300 cycles = 3 epochs; old entries must have committed.
	if got := m.OccupancyHighWaterBytes(0); got > 20*72 {
		t.Fatalf("high water %d bytes unexpectedly large", got)
	}
	if len(m.logs[0]) > 6 {
		t.Fatalf("log retains %d entries after commits, want <=6", len(m.logs[0]))
	}
}

func TestOverflowCounted(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultConfig(1, 100)
	cfg.LogBytes = 72 * 4
	m := NewManager(k, cfg)
	m.TakeCheckpoint(nil)
	for i := 0; i < 10; i++ {
		x := &logged{m: m, node: 0, key: uint64(i)}
		x.set(1)
	}
	if m.Overflows() == 0 {
		t.Fatal("no overflow counted despite exceeding LogBytes")
	}
}

func TestRecoveryDiscardsNewerCheckpoints(t *testing.T) {
	k := sim.NewKernel()
	m := mgr(k, 100)
	m.TakeCheckpoint("a") // epoch 0 @ 0
	k.Run(400)
	m.TakeCheckpoint("b") // epoch 1 @ 400
	k.Run(450)
	m.Recover() // target: a (b not yet validated)
	if m.Epoch() != 0 {
		t.Fatalf("epoch=%d after recovery, want 0", m.Epoch())
	}
	k.Run(10_000)
	snap, _ := m.Recover()
	if snap != "a" {
		t.Fatalf("checkpoint b survived a rollback past it: got %v", snap)
	}
}

func TestLogBeforeCheckpointPanics(t *testing.T) {
	k := sim.NewKernel()
	m := mgr(k, 100)
	defer func() {
		if recover() == nil {
			t.Fatal("LogOldValue before first checkpoint did not panic")
		}
	}()
	m.LogOldValue(0, 1, func() {})
}

// Property: for a random series of writes with periodic checkpoints,
// recovery restores exactly the values recorded at the recovery point.
func TestRecoveryExactnessProperty(t *testing.T) {
	f := func(seed uint64) bool {
		k := sim.NewKernel()
		m := mgr(k, 100)
		r := sim.NewRNG(seed)
		const nvars = 8
		vars := make([]*logged, nvars)
		for i := range vars {
			vars[i] = &logged{m: m, node: i % 4, key: uint64(i)}
		}
		history := map[uint64][]uint64{} // epoch -> values at checkpoint
		record := func(e uint64) {
			vals := make([]uint64, nvars)
			for i, v := range vars {
				vals[i] = v.v
			}
			history[e] = vals
		}
		record(m.TakeCheckpoint(nil))
		for step := 0; step < 30; step++ {
			for w := 0; w < r.Intn(5); w++ {
				vars[r.Intn(nvars)].set(r.Uint64() % 1000)
			}
			k.Run(k.Now() + 100)
			record(m.TakeCheckpoint(nil))
		}
		epoch, _ := m.RecoveryPoint()
		m.Recover()
		want := history[epoch]
		for i, v := range vars {
			if v.v != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
