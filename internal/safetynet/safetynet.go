// Package safetynet models the SafetyNet global checkpoint/recovery
// mechanism (Sorin et al., ISCA 2002) that all three speculative designs
// in the paper rely on for feature (3), Recovery.
//
// SafetyNet periodically checkpoints the shared-memory system and
// incrementally logs old values of cache, memory and directory state so
// the system can be rolled back to a prior checkpoint. A checkpoint
// becomes *validated* (committable) once the validation window — the
// mis-speculation detection latency bound, three checkpoint intervals in
// the paper (§4 footnote 4) — has passed with no recovery. Recovery
// rewinds to the newest validated checkpoint by applying the logged old
// values in reverse.
//
// The reproduction takes checkpoints at system-quiesced points (the
// system drains in-flight transactions first), so a checkpoint is a
// consistent cut by construction; the real SafetyNet achieves the same
// consistency with logical-time coordination instead of draining. The
// substitution slightly overstates checkpoint overhead and is recorded
// in DESIGN.md.
package safetynet

import (
	"fmt"

	"specsimp/internal/sim"
	"specsimp/internal/stats"
)

// Config sizes the mechanism (paper Table 2).
type Config struct {
	// Nodes is the number of checkpointing nodes.
	Nodes int
	// LogBytes is the per-node checkpoint log buffer capacity
	// (Table 2: 512 KB total per node).
	LogBytes int
	// EntryBytes is the size of one log entry (Table 2: 72 bytes —
	// a 64-byte block plus address/state metadata).
	EntryBytes int
	// RegCkptLatency is the processor-visible stall per checkpoint
	// (Table 2: 100 cycles).
	RegCkptLatency sim.Time
	// ValidationWindow is how long a checkpoint must age before it can
	// commit; equals the mis-speculation detection latency bound
	// (three checkpoint intervals in the paper).
	ValidationWindow sim.Time
	// RecoveryLatency is the fixed cost of a system recovery on top of
	// the lost work between the recovery point and detection.
	RecoveryLatency sim.Time
}

// DefaultConfig returns the paper's Table 2 parameters for n nodes and
// the given checkpoint interval. The recovery latency scales with the
// interval (one fifth of it — 20k cycles at the paper's 100k-cycle
// interval) so compressed-clock experiments keep proportionate costs.
func DefaultConfig(n int, interval sim.Time) Config {
	rl := interval / 5
	if rl < 100 {
		rl = 100
	}
	return Config{
		Nodes:            n,
		LogBytes:         512 * 1024,
		EntryBytes:       72,
		RegCkptLatency:   100,
		ValidationWindow: 3 * interval,
		RecoveryLatency:  rl,
	}
}

type entry struct {
	epoch uint64
	undo  func()
}

type checkpoint struct {
	epoch    uint64
	at       sim.Time
	validAt  sim.Time // when this checkpoint becomes committable
	snapshot interface{}
}

// Manager implements checkpoint creation, old-value logging, commit and
// recovery. It is driven by the system layer: the system quiesces and
// calls TakeCheckpoint on its cadence (every 100k cycles for the
// directory system, every 3000 ordered requests for snooping), and calls
// Recover when a mis-speculation is detected.
type Manager struct {
	k   *sim.Kernel
	cfg Config

	epoch uint64
	ckpts []checkpoint
	logs  [][]entry
	seen  []map[uint64]uint64 // key -> epoch of last log, per node

	recoveries  stats.Counter
	checkpoints stats.Counter
	// entriesLogged and overflows are per node: logging happens on the
	// hot path from whichever shard owns the node, so the counters must
	// be single-writer (and per-node sums merge identically at any
	// shard count).
	entriesLogged []uint64
	overflows     []uint64
	rollbackLoss  stats.Sample // cycles of lost work per recovery
	occupancyHW   []int        // per-node high-water mark, entries

	// capEntries is LogBytes/EntryBytes: the per-node log capacity in
	// entries. pressure[i] is set by LogOldValue (hot path, written
	// only by node i's owning shard) when node i's log reaches
	// capacity, and recomputed from actual occupancy at control points
	// (CommitNow, Recover). The system layer polls PressureSignal at
	// window edges and engages the log stall.
	capEntries int
	pressure   []bool

	// OnPressure, when non-nil, fires whenever a node's pressure flag
	// transitions from clear to set. Only the classic serial path may
	// install it (the callback runs on the logging hot path, which in
	// sharded mode executes on the node's owning shard where global
	// control is off-limits); sharded systems poll PressureSignal at
	// window edges instead.
	OnPressure func()
}

// NewManager creates a manager. TakeCheckpoint must be called once (with
// the initial system snapshot) before any logging.
func NewManager(k *sim.Kernel, cfg Config) *Manager {
	if cfg.Nodes <= 0 {
		panic("safetynet: Nodes must be positive")
	}
	if cfg.EntryBytes <= 0 {
		cfg.EntryBytes = 72
	}
	m := &Manager{k: k, cfg: cfg}
	m.logs = make([][]entry, cfg.Nodes)
	m.seen = make([]map[uint64]uint64, cfg.Nodes)
	for i := range m.seen {
		m.seen[i] = make(map[uint64]uint64)
	}
	m.occupancyHW = make([]int, cfg.Nodes)
	m.entriesLogged = make([]uint64, cfg.Nodes)
	m.overflows = make([]uint64, cfg.Nodes)
	m.pressure = make([]bool, cfg.Nodes)
	if cfg.LogBytes > 0 {
		m.capEntries = cfg.LogBytes / cfg.EntryBytes
	}
	return m
}

// Config returns the manager's configuration.
func (m *Manager) Config() Config { return m.cfg }

// Epoch returns the current epoch (the number of the latest checkpoint).
func (m *Manager) Epoch() uint64 { return m.epoch }

// TakeCheckpoint records a new checkpoint with the given system snapshot
// (processor/workload architectural state; memory-system state is
// covered by the undo logs). The caller must have quiesced the system.
// It returns the new epoch number.
func (m *Manager) TakeCheckpoint(snapshot interface{}) uint64 {
	return m.TakeCheckpointWindow(snapshot, m.cfg.ValidationWindow)
}

// TakeCheckpointWindow is TakeCheckpoint with an explicit validation
// window for this checkpoint: it becomes committable once window cycles
// pass with no recovery. The adaptive-cadence controller uses it so a
// checkpoint taken under a shortened interval validates after three of
// the *current* intervals, not three of the configured base interval.
func (m *Manager) TakeCheckpointWindow(snapshot interface{}, window sim.Time) uint64 {
	if len(m.ckpts) > 0 {
		m.epoch++
	}
	now := m.k.Now()
	m.ckpts = append(m.ckpts, checkpoint{epoch: m.epoch, at: now, validAt: now + window, snapshot: snapshot})
	m.checkpoints.Inc()
	m.commit()
	return m.epoch
}

// commit discards checkpoints (and their log entries) older than the
// newest validated checkpoint; we can never roll back past it.
func (m *Manager) commit() {
	now := m.k.Now()
	newest := -1
	for i, c := range m.ckpts {
		if c.validAt <= now {
			newest = i
		}
	}
	if newest <= 0 {
		return
	}
	floor := m.ckpts[newest].epoch
	m.ckpts = append(m.ckpts[:0], m.ckpts[newest:]...)
	for n := range m.logs {
		keep := m.logs[n][:0]
		for _, e := range m.logs[n] {
			if e.epoch >= floor {
				keep = append(keep, e)
			}
		}
		m.logs[n] = keep
	}
	m.recomputePressure()
}

// CommitNow re-runs checkpoint commitment against the current clock
// without taking a new checkpoint. The log-stall path calls it while
// waiting for a forced checkpoint's validation window to elapse so
// over-capacity logs drain as soon as the protocol allows.
func (m *Manager) CommitNow() { m.commit() }

// LogOldValue records an undo action for the first modification of the
// state identified by key at node in the current epoch. Subsequent
// modifications of the same key in the same epoch are (correctly) not
// logged: the retained undo restores the epoch-boundary value. The key
// must uniquely identify one piece of restorable state (one cache line,
// one memory block, one directory entry).
func (m *Manager) LogOldValue(node int, key uint64, undo func()) {
	if len(m.ckpts) == 0 {
		panic("safetynet: LogOldValue before first TakeCheckpoint")
	}
	if e, ok := m.seen[node][key]; ok && e == m.epoch {
		return
	}
	m.seen[node][key] = m.epoch
	m.logs[node] = append(m.logs[node], entry{epoch: m.epoch, undo: undo})
	m.entriesLogged[node]++
	n := len(m.logs[node])
	if n > m.occupancyHW[node] {
		m.occupancyHW[node] = n
		if m.cfg.LogBytes > 0 && n*m.cfg.EntryBytes > m.cfg.LogBytes {
			m.overflows[node]++
		}
	}
	if m.capEntries > 0 && n >= m.capEntries && !m.pressure[node] {
		// Log full: raise the node's pressure flag. The entry is still
		// accepted (recovery must be able to rewind everything the node
		// touched); the system layer reads the flag at its next control
		// point and stalls execution until validation frees space —
		// the honest cost the paper's 512 KB budget implies.
		m.pressure[node] = true
		if m.OnPressure != nil {
			m.OnPressure()
		}
	}
}

// RecoveryPoint returns the epoch and snapshot the system would recover
// to right now: the newest validated checkpoint, or the oldest retained
// one early in a run.
func (m *Manager) RecoveryPoint() (uint64, interface{}) {
	c := m.target()
	return c.epoch, c.snapshot
}

func (m *Manager) target() checkpoint {
	if len(m.ckpts) == 0 {
		panic("safetynet: no checkpoint to recover to")
	}
	now := m.k.Now()
	best := m.ckpts[0]
	for _, c := range m.ckpts {
		if c.validAt <= now {
			best = c
		}
	}
	return best
}

// Recover rolls the logged state back to the recovery point and returns
// its snapshot plus the amount of lost work in cycles. The caller is
// responsible for restoring the snapshot, resetting the network and
// controllers, and stalling for RecoveryLatency.
func (m *Manager) Recover() (snapshot interface{}, lost sim.Time) {
	c := m.target()
	now := m.k.Now()
	lost = now - c.at
	m.recoveries.Inc()
	m.rollbackLoss.Observe(float64(lost))

	for n := range m.logs {
		log := m.logs[n]
		// Undo every change made at or after the target checkpoint, in
		// reverse order of logging.
		cut := len(log)
		for cut > 0 && log[cut-1].epoch >= c.epoch {
			cut--
		}
		for i := len(log) - 1; i >= cut; i-- {
			log[i].undo()
		}
		m.logs[n] = log[:cut]
		for k, e := range m.seen[n] {
			if e >= c.epoch {
				delete(m.seen[n], k)
			}
		}
	}
	// Discard checkpoints newer than the target; execution resumes
	// inside the target's epoch.
	for len(m.ckpts) > 0 && m.ckpts[len(m.ckpts)-1].epoch > c.epoch {
		m.ckpts = m.ckpts[:len(m.ckpts)-1]
	}
	m.epoch = c.epoch
	m.recomputePressure()
	return c.snapshot, lost
}

// recomputePressure rederives each node's pressure flag from its actual
// log occupancy. Runs at control points only (commit, recovery), where
// no shard is mid-window.
func (m *Manager) recomputePressure() {
	if m.capEntries <= 0 {
		return
	}
	for n := range m.pressure {
		m.pressure[n] = len(m.logs[n]) >= m.capEntries
	}
}

// PressureSignal reports whether any node's log has reached capacity.
// Safe only from control context (window edges, or the serial kernel):
// the flags are written by the logging hot path of each node's owning
// shard mid-window.
func (m *Manager) PressureSignal() bool {
	for _, p := range m.pressure {
		if p {
			return true
		}
	}
	return false
}

// CapacityEntries returns the per-node log capacity in entries (0 =
// unlimited).
func (m *Manager) CapacityEntries() int { return m.capEntries }

// MaxOccupancyEntries returns the largest current (not high-water) log
// occupancy across nodes, in entries — the adaptive-cadence
// controller's feedback signal.
func (m *Manager) MaxOccupancyEntries() int {
	max := 0
	for n := range m.logs {
		if len(m.logs[n]) > max {
			max = len(m.logs[n])
		}
	}
	return max
}

// Recoveries returns the number of recoveries performed.
func (m *Manager) Recoveries() uint64 { return m.recoveries.Value() }

// Checkpoints returns the number of checkpoints taken.
func (m *Manager) Checkpoints() uint64 { return m.checkpoints.Value() }

// EntriesLogged returns the total number of log writes.
func (m *Manager) EntriesLogged() uint64 {
	var total uint64
	for _, n := range m.entriesLogged {
		total += n
	}
	return total
}

// Overflows returns how many log appends exceeded the configured
// LogBytes capacity. Since the backpressure fix each overflow also
// raises the node's pressure flag (the system stalls until validation
// frees space); the counter remains as the occupancy-excess metric the
// A3 ablation reports.
func (m *Manager) Overflows() uint64 {
	var total uint64
	for _, n := range m.overflows {
		total += n
	}
	return total
}

// OccupancyHighWaterBytes returns the largest log footprint node i
// reached.
func (m *Manager) OccupancyHighWaterBytes(i int) int {
	return m.occupancyHW[i] * m.cfg.EntryBytes
}

// MeanRollbackLoss returns the mean lost work per recovery in cycles.
func (m *Manager) MeanRollbackLoss() float64 { return m.rollbackLoss.Mean() }

// String summarizes the manager state for logs.
func (m *Manager) String() string {
	return fmt.Sprintf("safetynet{epoch=%d ckpts=%d recoveries=%d logged=%d}",
		m.epoch, len(m.ckpts), m.recoveries.Value(), m.EntriesLogged())
}
