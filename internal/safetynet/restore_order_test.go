package safetynet

import (
	"testing"
	"testing/quick"

	"specsimp/internal/sim"
)

// boundedSet models a W-way cache set through the undo log, the way the
// protocol cache controllers do: installs need a free way, and rollback
// entries may transiently find the set over-full because first-write-
// per-epoch deduplication can order a reinstalled line's undo before
// its evictee's. The model mirrors the deferred-install fix: restores
// that find no room park until the pass ends.
type boundedSet struct {
	m    *Manager
	node int
	ways int
	held map[uint64]bool
	park map[uint64]bool
}

func newBoundedSet(m *Manager, ways int) *boundedSet {
	return &boundedSet{m: m, ways: ways, held: map[uint64]bool{}, park: map[uint64]bool{}}
}

func (s *boundedSet) log(key uint64) {
	present := s.held[key]
	s.m.LogOldValue(s.node, key, func() { s.restore(key, present) })
}

func (s *boundedSet) install(key uint64) bool {
	if len(s.held) >= s.ways {
		return false
	}
	s.log(key)
	s.held[key] = true
	return true
}

func (s *boundedSet) evict(key uint64) {
	if !s.held[key] {
		return
	}
	s.log(key)
	delete(s.held, key)
}

func (s *boundedSet) restore(key uint64, present bool) {
	if !present {
		delete(s.park, key)
		delete(s.held, key)
		return
	}
	if s.held[key] {
		return
	}
	if len(s.held) >= s.ways {
		s.park[key] = true
		return
	}
	delete(s.park, key)
	s.held[key] = true
}

func (s *boundedSet) flush(t *testing.T) {
	for key := range s.park {
		if len(s.held) >= s.ways {
			t.Fatalf("set still full flushing deferred restore of %d", key)
		}
		s.held[key] = true
	}
	s.park = map[uint64]bool{}
}

// TestDeferredRestoreRegression reproduces the exact dedup-reordering
// scenario the fault-injection tests hit: within one epoch, evict A,
// install C, evict C, reinstall A — the reinstall dedups into A's
// (earlier) entry, so C's "absent" undo runs first and A's "present"
// undo finds the set full of B... which has an even older entry.
func TestDeferredRestoreRegression(t *testing.T) {
	k := sim.NewKernel()
	m := NewManager(k, DefaultConfig(1, 100))
	s := newBoundedSet(m, 2)
	// Checkpoint state: {A, B}.
	s.held[1] = true
	s.held[2] = true
	m.TakeCheckpoint(nil)

	s.evict(2)   // B out (logged: B present)
	s.install(3) // C in (logged: C absent)
	s.evict(1)   // A out (logged: A present)
	s.install(2) // B back in (dedup: B already logged)
	s.evict(3)   // C out (dedup)
	s.install(1) // A back in (dedup)
	// Current: {A, B} — same contents, but the undo entries are ordered
	// B:present, C:absent, A:present, and reverse application visits
	// A:present first while the set still holds {A, B}.
	k.Run(1000)
	m.Recover()
	s.flush(t)
	if !s.held[1] || !s.held[2] || s.held[3] || len(s.held) != 2 {
		t.Fatalf("restored set %v, want {1,2}", s.held)
	}
}

// Property: arbitrary bounded-set histories roll back to the exact
// checkpoint contents once deferred installs are flushed.
func TestBoundedSetRestoreProperty(t *testing.T) {
	f := func(seed uint64) bool {
		k := sim.NewKernel()
		m := NewManager(k, DefaultConfig(1, 100))
		s := newBoundedSet(m, 2)
		r := sim.NewRNG(seed)
		keys := []uint64{1, 2, 3, 4}
		// Random initial contents.
		for _, key := range keys {
			if len(s.held) < s.ways && r.Bool(0.5) {
				s.held[key] = true
			}
		}
		history := map[uint64]map[uint64]bool{}
		record := func(epoch uint64) {
			snap := map[uint64]bool{}
			for k2 := range s.held {
				snap[k2] = true
			}
			history[epoch] = snap
		}
		record(m.TakeCheckpoint(nil))
		// Random churn across several epochs.
		for step := 0; step < 60; step++ {
			key := keys[r.Intn(len(keys))]
			if s.held[key] {
				s.evict(key)
			} else {
				s.install(key)
			}
			if step%15 == 14 {
				k.Run(k.Now() + 100)
				record(m.TakeCheckpoint(nil))
			}
		}
		k.Run(k.Now() + 50)
		epoch, _ := m.RecoveryPoint()
		m.Recover()
		for key := range s.park {
			if len(s.held) >= s.ways {
				return false
			}
			s.held[key] = true
			delete(s.park, key)
		}
		want := history[epoch]
		if len(s.held) != len(want) {
			return false
		}
		for k2 := range want {
			if !s.held[k2] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
