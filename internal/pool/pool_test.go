package pool

import "testing"

func TestFreeListRecycles(t *testing.T) {
	var f FreeList[int]
	a := f.Get()
	*a = 7
	f.Put(a)
	if f.Len() != 1 {
		t.Fatalf("len=%d after one Put", f.Len())
	}
	b := f.Get()
	if b != a {
		t.Fatal("Get did not return the recycled object")
	}
	if f.Len() != 0 {
		t.Fatalf("len=%d after Get", f.Len())
	}
}

func TestFreeListCapBounds(t *testing.T) {
	f := FreeList[int]{Cap: 2}
	for i := 0; i < 5; i++ {
		f.Put(new(int))
	}
	if f.Len() != 2 {
		t.Fatalf("len=%d, want cap 2", f.Len())
	}
}

func TestFreeListDefaultCap(t *testing.T) {
	var f FreeList[int]
	for i := 0; i < DefaultCap+10; i++ {
		f.Put(new(int))
	}
	if f.Len() != DefaultCap {
		t.Fatalf("len=%d, want DefaultCap %d", f.Len(), DefaultCap)
	}
}
