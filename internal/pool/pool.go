// Package pool provides the bounded free list behind the simulator's
// allocation-free hot paths. One implementation serves every recycler
// in the tree — network messages, protocol payload boxes, directory
// transaction records — so capacity policy and recycling semantics
// cannot drift between copies.
package pool

// DefaultCap bounds a FreeList whose Cap field is zero.
const DefaultCap = 4096

// FreeList recycles heap objects of one type. It is not safe for
// concurrent use; every simulation kernel is single-threaded, so each
// owner embeds its own list.
//
// Get returns a recycled object with UNSPECIFIED contents (callers must
// overwrite every field) or a freshly allocated zero object. Put offers
// an object back, dropping it once Cap (DefaultCap if zero) are held —
// an object lost to a drop is simply garbage collected and the list
// refills from Get.
type FreeList[T any] struct {
	// Cap bounds retained objects; 0 means DefaultCap.
	Cap   int
	items []*T
}

// Get returns a recycled or new object.
func (f *FreeList[T]) Get() *T {
	if n := len(f.items); n > 0 {
		x := f.items[n-1]
		f.items[n-1] = nil
		f.items = f.items[:n-1]
		return x
	}
	return new(T)
}

// Put offers x back to the list.
func (f *FreeList[T]) Put(x *T) {
	limit := f.Cap
	if limit == 0 {
		limit = DefaultCap
	}
	if len(f.items) < limit {
		f.items = append(f.items, x)
	}
}

// Len reports how many objects the list currently holds.
func (f *FreeList[T]) Len() int { return len(f.items) }
