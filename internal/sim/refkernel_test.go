package sim

import (
	"container/heap"
	"testing"
)

// refKernel is the pre-calendar-queue scheduler — the original binary
// heap of (when, seq)-ordered closures — kept verbatim as the reference
// semantics oracle. TestKernelMatchesReferenceScheduler drives it and
// the production Kernel through an identical recorded scenario and
// requires bit-identical dispatch orders, pinning down the determinism
// contract (time order with FIFO tie-breaking) across the rewrite.
type refKernel struct {
	now      Time
	seq      uint64
	events   refHeap
	executed uint64
}

type refEvent struct {
	when Time
	seq  uint64
	fn   func()
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(*refEvent)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

func (k *refKernel) Now() Time { return k.now }

func (k *refKernel) At(t Time, fn func()) {
	if t < k.now {
		panic("ref: schedule in the past")
	}
	heap.Push(&k.events, &refEvent{when: t, seq: k.seq, fn: fn})
	k.seq++
}

func (k *refKernel) Step() bool {
	if len(k.events) == 0 {
		return false
	}
	ev := heap.Pop(&k.events).(*refEvent)
	k.now = ev.when
	k.executed++
	ev.fn()
	return true
}

// scheduler is the common surface the scenario driver needs.
type scheduler interface {
	Now() Time
	At(Time, func())
	Step() bool
}

// handlerAdapter lets the scenario exercise the typed-event path of the
// production kernel while the reference kernel sees closures — both
// must dispatch the underlying action in the same global order.
type handlerAdapter struct{ fn func(a0 uint64) }

func (h *handlerAdapter) HandleEvent(a0, _ uint64, _ any) { h.fn(a0) }

// recordScenario drives s through a fixed pseudo-random schedule and
// returns the dispatch order (event ids) plus the final time. Event ids
// are assigned at schedule time from a deterministic counter, so two
// schedulers with identical semantics produce identical logs. Deltas
// straddle the calendar wheel horizon (4096) to force far-heap
// migration, and repeat values (incl. 0) to force FIFO tie-breaks.
func recordScenario(s scheduler) ([]uint64, Time) {
	var log []uint64
	rng := NewRNG(0xdecade)
	deltas := []Time{0, 0, 1, 1, 2, 5, 16, 100, 999, 4095, 4096, 4097, 20_000}
	var id uint64
	var schedule func(depth int)
	schedule = func(depth int) {
		id++
		myID := id
		d := deltas[rng.Intn(len(deltas))]
		s.At(s.Now()+d, func() {
			log = append(log, myID)
			if depth > 0 {
				n := rng.Intn(4)
				for i := 0; i < n; i++ {
					schedule(depth - 1)
				}
			}
		})
	}
	for i := 0; i < 120; i++ {
		schedule(4)
	}
	for i := 0; i < 1_000_000 && s.Step(); i++ {
	}
	return log, s.Now()
}

// TestKernelMatchesReferenceScheduler: the calendar-queue kernel and the
// original heap scheduler dispatch a recorded scenario in the identical
// event order.
func TestKernelMatchesReferenceScheduler(t *testing.T) {
	ref := &refKernel{}
	refLog, refNow := recordScenario(ref)

	k := NewKernel()
	newLog, newNow := recordScenario(k)

	if len(refLog) != len(newLog) {
		t.Fatalf("dispatched %d events, reference dispatched %d", len(newLog), len(refLog))
	}
	for i := range refLog {
		if refLog[i] != newLog[i] {
			t.Fatalf("dispatch order diverges at %d: kernel=%d reference=%d", i, newLog[i], refLog[i])
		}
	}
	if ref.executed != k.Executed {
		t.Fatalf("executed %d, reference %d", k.Executed, ref.executed)
	}
	if refNow != newNow {
		t.Fatalf("final time %d, reference %d", newNow, refNow)
	}
	if k.Pending() != 0 {
		t.Fatalf("%d events left pending", k.Pending())
	}
	t.Logf("scenario: %d events dispatched identically, final time %d", len(newLog), newNow)
}

// TestKernelBoundedRunPreservesFarFIFO: a bounded Run that stops short
// of a pending far-heap event must still migrate it into the wheel, so
// a later schedule at the same timestamp cannot overtake it.
func TestKernelBoundedRunPreservesFarFIFO(t *testing.T) {
	k := NewKernel()
	var got []string
	k.At(5000, func() { got = append(got, "A") }) // beyond horizon: far heap
	k.Run(4000)                                   // stops short; 5000 is now within horizon
	k.At(5000, func() { got = append(got, "B") }) // same timestamp, scheduled later
	k.Run(Forever)
	if len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Fatalf("same-timestamp order %v, want [A B]", got)
	}
}

// TestKernelBoundedRunMatchesReference replays the reference scenario
// through chunked bounded Runs, exercising the limit/migration paths
// the Step-only scenario never reaches.
func TestKernelBoundedRunMatchesReference(t *testing.T) {
	run := func(s scheduler, runTo func(Time)) []uint64 {
		var log []uint64
		rng := NewRNG(0xcab00d1e)
		deltas := []Time{0, 1, 7, 1500, 4095, 4096, 9000, 30_000}
		var id uint64
		var schedule func(depth int)
		schedule = func(depth int) {
			id++
			myID := id
			d := deltas[rng.Intn(len(deltas))]
			s.At(s.Now()+d, func() {
				log = append(log, myID)
				if depth > 0 {
					for i, n := 0, rng.Intn(4); i < n; i++ {
						schedule(depth - 1)
					}
				}
			})
		}
		for i := 0; i < 60; i++ {
			schedule(3)
		}
		for lim := Time(0); lim < 300_000; lim += 1111 {
			runTo(lim)
		}
		for s.Step() {
		}
		return log
	}

	ref := &refKernel{}
	refLog := run(ref, func(until Time) {
		for len(ref.events) > 0 && ref.events[0].when <= until {
			ref.Step()
		}
		if ref.now < until {
			ref.now = until
		}
	})
	k := NewKernel()
	newLog := run(k, func(until Time) { k.Run(until) })

	if len(refLog) != len(newLog) {
		t.Fatalf("dispatched %d events, reference dispatched %d", len(newLog), len(refLog))
	}
	for i := range refLog {
		if refLog[i] != newLog[i] {
			t.Fatalf("dispatch order diverges at %d: kernel=%d reference=%d", i, newLog[i], refLog[i])
		}
	}
	t.Logf("chunked-run scenario: %d events dispatched identically", len(newLog))
}

// TestKernelTypedEventOrdering: typed events and closures scheduled for
// the same instant fire in schedule order, and far-future typed events
// migrate through the overflow heap in FIFO order.
func TestKernelTypedEventOrdering(t *testing.T) {
	k := NewKernel()
	var got []uint64
	h := &handlerAdapter{fn: func(a0 uint64) { got = append(got, a0) }}
	// Same-instant mix, scheduled from id 1 upward.
	k.AtEvent(10_000, h, 1, 0, nil) // beyond the wheel horizon: far heap
	k.At(10_000, func() { got = append(got, 2) })
	k.AtEvent(10_000, h, 3, 0, nil)
	k.At(50, func() { got = append(got, 0) })
	k.Run(Forever)
	want := []uint64{0, 1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}
