package sim

import (
	"testing"
)

// FuzzKernelSchedule drives byte-derived schedule sequences through
// the calendar-queue Kernel and the original heap scheduler
// (refkernel_test.go) and requires bit-identical dispatch orders — the
// determinism contract (time order, FIFO tie-breaking) under
// fuzzer-chosen shapes: same-instant ties, wheel-horizon straddles
// (deltas around 4096), far-heap migration, chunked bounded runs that
// stop short of pending events, and a byte-driven mix of closure and
// typed-handler events. (The kernel has no cancel primitive by design
// — recovery drops stale work via epoch checks in the protocol
// handlers — so cancellation is fuzzed at that layer's tests, not
// here.)
func FuzzKernelSchedule(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x01, 0x02, 0x03})
	f.Add([]byte{0x09, 0x0a, 0x0b, 0x30, 0x31, 0x32, 0x33, 0x01}) // horizon straddles
	f.Add([]byte{0xff, 0x00, 0xff, 0x00, 0xff, 0x00, 0x07, 0x07}) // tie storms
	f.Add([]byte{0x41, 0x86, 0x13, 0xc8, 0x25, 0x9d, 0x5b, 0x70, 0x0c, 0x33})
	f.Fuzz(func(t *testing.T, data []byte) {
		type runner struct {
			s     scheduler
			typed bool // route some events through the typed path
			runTo func(Time)
		}
		run := func(r runner) ([]uint64, Time) {
			var log []uint64
			pos := 0
			next := func() byte {
				if pos >= len(data) {
					return 0
				}
				b := data[pos]
				pos++
				return b
			}
			// Deltas cover same-instant ties, the wheel horizon
			// (4096) and the far heap.
			deltas := []Time{0, 0, 1, 2, 5, 16, 100, 999, 4095, 4096, 4097, 20_000}
			var id uint64
			h := &handlerAdapter{fn: func(a0 uint64) { log = append(log, a0) }}
			var schedule func(depth int)
			schedule = func(depth int) {
				id++
				myID := id
				b := next()
				when := r.s.Now() + deltas[int(b)%len(deltas)]
				if r.typed && depth == 0 && b&0x80 != 0 {
					// Typed path for the production kernel, only for
					// leaf events whose closure body is just the log
					// append; the reference kernel (closures only)
					// consumed the same byte, so both schedule the
					// same instant with the same behavior.
					if k, ok := r.s.(*Kernel); ok {
						k.AtEvent(when, h, myID, 0, nil)
						return
					}
				}
				r.s.At(when, func() {
					log = append(log, myID)
					if depth > 0 {
						for i, n := 0, int(next())%3; i < n; i++ {
							schedule(depth - 1)
						}
					}
				})
			}
			nroot := int(next())%16 + 1
			for i := 0; i < nroot; i++ {
				schedule(3)
			}
			// Chunked bounded runs interleaved with fresh schedules,
			// then drain.
			var lim Time
			for i, n := 0, int(next())%6; i < n; i++ {
				lim += Time(int(next())%9000 + 1)
				r.runTo(lim)
				schedule(1)
			}
			for i := 0; i < 1_000_000 && r.s.Step(); i++ {
			}
			return log, r.s.Now()
		}

		ref := &refKernel{}
		refLog, _ := run(runner{s: ref, runTo: func(until Time) {
			for len(ref.events) > 0 && ref.events[0].when <= until {
				ref.Step()
			}
			if ref.now < until {
				ref.now = until
			}
		}})

		k := NewKernel()
		newLog, _ := run(runner{s: k, typed: true, runTo: func(until Time) { k.Run(until) }})

		if len(refLog) != len(newLog) {
			t.Fatalf("dispatched %d events, reference dispatched %d", len(newLog), len(refLog))
		}
		for i := range refLog {
			if refLog[i] != newLog[i] {
				t.Fatalf("dispatch order diverges at %d: kernel=%d reference=%d", i, newLog[i], refLog[i])
			}
		}
		if k.Pending() != 0 {
			t.Fatalf("%d events left pending", k.Pending())
		}
	})
}
