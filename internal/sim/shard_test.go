package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// TestRunWindowMatchesRun pins RunWindow against plain Run: chopping a
// schedule into windows must fire the same events in the same order,
// including FIFO ties, wheel-horizon straddles and far-heap migration.
func TestRunWindowMatchesRun(t *testing.T) {
	build := func() (*Kernel, *[]int) {
		k := NewKernel()
		var order []int
		id := 0
		var chain func(at Time, depth int)
		chain = func(at Time, depth int) {
			id++
			me := id
			k.At(at, func() {
				order = append(order, me)
				if depth > 0 {
					chain(k.Now()+3, depth-1)
					chain(k.Now()+wheelSize+7, depth-1)
				}
			})
		}
		// Ties at one timestamp, short chains, and far-future events.
		for i := 0; i < 4; i++ {
			chain(10, 2)
		}
		chain(11, 3)
		chain(wheelSize+11, 2)
		chain(3*wheelSize+5, 1)
		return k, &order
	}

	ref, refOrder := build()
	ref.Run(5 * wheelSize)
	refN := ref.Executed

	for _, window := range []Time{1, 7, 18, wheelSize - 1, wheelSize + 3} {
		k, order := build()
		for k.Now() < 5*wheelSize {
			end := k.Now() + window
			if end > 5*wheelSize {
				k.Run(5 * wheelSize)
				break
			}
			k.RunWindow(end)
			if k.Now() != end {
				t.Fatalf("window %d: now=%d want %d", window, k.Now(), end)
			}
		}
		if k.Executed != refN {
			t.Fatalf("window %d: executed %d events, reference %d", window, k.Executed, refN)
		}
		if !reflect.DeepEqual(*order, *refOrder) {
			t.Fatalf("window %d: dispatch order diverged from plain Run", window)
		}
	}
}

// pingHandler is a toy cross-shard model: each node bounces typed
// events to a peer node with a fixed latency, recording its own
// dispatch sequence. Cross-shard hops go through Post; same-shard hops
// schedule directly (the model layer decides, as the network does).
type pingHandler struct {
	g       *Shards
	shardOf []int
	ring    []*pingHandler // all handlers of this model, node-indexed
	node    int
	peer    int
	latency Time
	log     *[]string
	hops    int
}

func (h *pingHandler) HandleEvent(a0, _ uint64, _ any) {
	*h.log = append(*h.log, fmt.Sprintf("n%d@%d:%d", h.node, h.g.Kernel(h.shardOf[h.node]).Now(), a0))
	if int(a0) >= h.hops {
		return
	}
	// Bounce to the peer one latency later.
	peerShard := h.shardOf[h.peer]
	when := h.g.Kernel(h.shardOf[h.node]).Now() + h.latency
	if peerShard == h.shardOf[h.node] {
		h.g.Kernel(peerShard).AtEvent(when, h.ring[h.peer], a0+1, 0, nil)
	} else {
		h.g.Post(h.shardOf[h.node], peerShard, when, h.ring[h.peer], a0+1, 0, nil)
	}
}

// buildPingModel wires an 8-node ring of bouncing handlers over
// nShards shards, returning the group and the node-indexed logs.
func buildPingModel(nShards int) (*Shards, [][]string, []*pingHandler) {
	const nodes = 8
	const latency = 5
	g := NewShards(nShards, latency)
	shardOf := make([]int, nodes)
	for n := range shardOf {
		shardOf[n] = n * nShards / nodes
	}
	logs := make([][]string, nodes)
	ring := make([]*pingHandler, nodes)
	for n := 0; n < nodes; n++ {
		ring[n] = &pingHandler{
			g: g, shardOf: shardOf, ring: ring, node: n, peer: (n + 3) % nodes,
			latency: latency, log: &logs[n], hops: 200,
		}
	}
	for n := 0; n < nodes; n++ {
		g.Kernel(shardOf[n]).AtEvent(Time(1+n%latency), ring[n], 0, 0, nil)
	}
	return g, logs, ring
}

// runPingModel runs the ring to `until` and returns the per-node
// dispatch logs (node-indexed so the comparison is partition-invariant).
func runPingModel(t *testing.T, nShards int, until Time) [][]string {
	t.Helper()
	g, logs, _ := buildPingModel(nShards)
	g.Run(until)
	for s := 0; s < nShards; s++ {
		if got := g.Kernel(s).Now(); got != until {
			t.Fatalf("shard %d stopped at %d, want %d", s, got, until)
		}
	}
	return logs
}

// TestShardsDeterministicAcrossCounts verifies the tentpole property at
// the engine level: the same model partitioned over 1, 2, 4 and 8
// shards dispatches identical per-node event sequences.
func TestShardsDeterministicAcrossCounts(t *testing.T) {
	ref := runPingModel(t, 1, 1000)
	total := 0
	for _, l := range ref {
		total += len(l)
	}
	if total < 100 {
		t.Fatalf("model too quiet to be a meaningful test: %d dispatches", total)
	}
	for _, n := range []int{2, 4, 8} {
		got := runPingModel(t, n, 1000)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("%d shards diverged from serial execution", n)
		}
	}
}

// TestShardsRepeatedRuns checks that consecutive Run calls continue
// cleanly (worker goroutines are joined between Runs) and reach the
// same state as one long Run.
func TestShardsRepeatedRuns(t *testing.T) {
	ref := runPingModel(t, 4, 1000)
	g, logs, _ := buildPingModel(4)
	for _, stop := range []Time{137, 138, 500, 1000} {
		g.Run(stop)
	}
	if !reflect.DeepEqual(logs, ref) {
		t.Fatal("chunked Runs diverged from one long Run")
	}
}

// TestShardsBoundaryFIFO checks that a boundary queue preserves the
// order of same-destination, same-timestamp events (the per-link FIFO
// guarantee the network's tie-breaking relies on).
func TestShardsBoundaryFIFO(t *testing.T) {
	g := NewShards(2, 4)
	var got []int
	sink := HandlerFunc(func(a0, _ uint64, _ any) { got = append(got, int(a0)) })
	// A shard-0 event at time 1 posts five same-timestamp events to
	// shard 1; they must fire in post order.
	g.Kernel(0).At(1, func() {
		for i := 0; i < 5; i++ {
			g.Post(0, 1, 8, sink, uint64(i), 0, nil)
		}
	})
	g.Run(20)
	if want := []int{0, 1, 2, 3, 4}; !reflect.DeepEqual(got, want) {
		t.Fatalf("boundary order %v, want %v", got, want)
	}
}

// TestShardsControlOrder checks control actions run at the first edge
// at or after their time, in schedule order, with kernels quiesced.
func TestShardsControlOrder(t *testing.T) {
	g := NewShards(2, 10)
	var seq []string
	g.ControlAt(5, func() { seq = append(seq, fmt.Sprintf("a@%d", g.Now())) })
	g.ControlAt(5, func() { seq = append(seq, fmt.Sprintf("b@%d", g.Now())) })
	g.ControlAt(0, func() {
		seq = append(seq, fmt.Sprintf("c@%d", g.Now()))
		g.After(12, func() { seq = append(seq, fmt.Sprintf("d@%d", g.Now())) })
	})
	g.Run(40)
	want := []string{"c@0", "a@10", "b@10", "d@20"}
	if !reflect.DeepEqual(seq, want) {
		t.Fatalf("control sequence %v, want %v", seq, want)
	}
}

// HandlerFunc adapts a function to the Handler interface for tests.
type HandlerFunc func(a0, a1 uint64, p any)

// HandleEvent implements Handler.
func (f HandlerFunc) HandleEvent(a0, a1 uint64, p any) { f(a0, a1, p) }
