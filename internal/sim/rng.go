package sim

// RNG is a small, fast, deterministic pseudo-random generator
// (splitmix64 core). Unlike math/rand it exposes its full state for
// snapshot/restore, which SafetyNet rollback requires: when the system
// recovers to a checkpoint, every workload generator must replay exactly
// the same reference stream it produced the first time.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Distinct seeds produce
// uncorrelated streams for practical purposes.
func NewRNG(seed uint64) *RNG {
	r := &RNG{state: seed}
	// Scramble so that small seeds (0, 1, 2...) diverge immediately.
	r.Uint64()
	return r
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value uniform in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a value uniform in [0, n). n must be positive.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("sim: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a value uniform in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Geometric returns a sample from a geometric distribution with mean m
// (m >= 1), i.e. the count of trials until first success with p = 1/m.
// Used for inter-arrival gaps in workload generators.
func (r *RNG) Geometric(m float64) uint64 {
	if m <= 1 {
		return 1
	}
	n := uint64(1)
	p := 1 / m
	for !r.Bool(p) {
		n++
		if n > uint64(64*m) { // bound the tail; negligible probability
			break
		}
	}
	return n
}

// Split returns a new generator derived from this one. Streams of the
// parent and child do not overlap in practice.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64() ^ 0xa5a5a5a5deadbeef) }

// Snapshot captures the generator state for later Restore.
func (r *RNG) Snapshot() uint64 { return r.state }

// Restore rewinds the generator to a state captured by Snapshot.
func (r *RNG) Restore(s uint64) { r.state = s }
