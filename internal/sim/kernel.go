// Package sim provides a deterministic discrete-event simulation kernel.
//
// All model components (network switches, cache controllers, processors,
// the SafetyNet checkpoint service) schedule work on a single Kernel.
// Events at the same timestamp fire in schedule order, so a run with a
// fixed seed is bit-for-bit reproducible — a property the reproduction
// methodology depends on (paper §5.2 runs each design point several times
// under controlled pseudo-random perturbation).
//
// # Scheduler structure
//
// The kernel is a bucketed calendar queue: events within wheelSize cycles
// of the current time live in a wheel of per-cycle buckets (append-order
// dispatch gives FIFO tie-breaking for free), and far-future events live
// in an overflow min-heap ordered by (when, seq) that migrates into the
// wheel as time advances. Scheduling and dispatch are O(1) amortized —
// the binary-heap log factor of the classic implementation is gone — and
// bucket storage is recycled, so a steady-state simulation allocates no
// scheduler memory at all.
//
// Two event forms are supported: closures (At/After) for cold paths, and
// typed handler events (AtEvent/AfterEvent) that carry two integers and a
// pointer to a pre-allocated Handler, so hot paths (switch arbitration,
// message arrival, protocol sends) schedule without allocating.
package sim

import (
	"fmt"
	"math/bits"
)

// Time is simulated time in processor clock cycles.
type Time uint64

// Forever is a time later than any reachable simulation instant.
const Forever = Time(1<<63 - 1)

// Handler consumes a typed event. Implementations are long-lived model
// components (a switch, an endpoint, a protocol); the two integer
// arguments and the pointer payload carry everything a closure would
// otherwise capture, so scheduling a typed event allocates nothing.
type Handler interface {
	HandleEvent(a0, a1 uint64, p any)
}

// event is one scheduled unit of work: either a closure (fn) or a typed
// handler invocation. Events are stored by value in wheel buckets and
// the far heap; no per-event allocation occurs.
type event struct {
	fn     func()
	h      Handler
	a0, a1 uint64
	p      any
}

func (ev *event) fire() {
	if ev.fn != nil {
		ev.fn()
		return
	}
	ev.h.HandleEvent(ev.a0, ev.a1, ev.p)
}

const (
	wheelBits = 12
	// wheelSize is the near-future horizon in cycles: events scheduled
	// less than wheelSize cycles ahead go into per-cycle buckets.
	wheelSize = 1 << wheelBits
	wheelMask = wheelSize - 1
)

// farEvent is an event beyond the wheel horizon, heap-ordered by
// (when, seq) so migration into the wheel preserves FIFO tie-breaking.
type farEvent struct {
	when Time
	seq  uint64
	ev   event
}

// Kernel is a discrete-event simulator. The zero value is ready to use.
type Kernel struct {
	now Time
	// Executed counts events dispatched since construction.
	Executed uint64

	// wheel[t&wheelMask] holds the events scheduled for time t, for
	// t in [now, now+wheelSize); within a bucket, append order is
	// dispatch order. Allocated lazily so the zero Kernel stays usable.
	wheel      [][]event
	wheelCount int // undispatched events in the wheel
	cellPos    int // dispatch cursor within the bucket at now

	// occ is the wheel's bucket-occupancy bitmap (one bit per bucket):
	// advancing time jumps straight to the next set bit instead of
	// probing every cycle's bucket, so sparse schedules — a sharded
	// kernel owns only a slice of the machine's events — pay for the
	// events they have, not the cycles they span.
	occ [wheelSize / 64]uint64

	far    []farEvent // min-heap of events at or beyond now+wheelSize
	farSeq uint64
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel { return &Kernel{} }

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Pending reports the number of scheduled, not-yet-fired events.
func (k *Kernel) Pending() int { return k.wheelCount + len(k.far) }

// At schedules fn to run at absolute time t. Scheduling in the past is a
// programming error and panics: it would silently corrupt causality.
func (k *Kernel) At(t Time, fn func()) {
	k.schedule(t, event{fn: fn})
}

// After schedules fn to run d cycles from now.
func (k *Kernel) After(d Time, fn func()) { k.schedule(k.now+d, event{fn: fn}) }

// AtEvent schedules a typed event at absolute time t: h.HandleEvent(a0,
// a1, p) fires at t. Unlike At, it allocates nothing.
func (k *Kernel) AtEvent(t Time, h Handler, a0, a1 uint64, p any) {
	k.schedule(t, event{h: h, a0: a0, a1: a1, p: p})
}

// AfterEvent schedules a typed event d cycles from now.
func (k *Kernel) AfterEvent(d Time, h Handler, a0, a1 uint64, p any) {
	k.schedule(k.now+d, event{h: h, a0: a0, a1: a1, p: p})
}

func (k *Kernel) schedule(t Time, ev event) {
	if t < k.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", t, k.now))
	}
	if t-k.now < wheelSize {
		k.wheelPut(t, ev)
		return
	}
	k.farPush(farEvent{when: t, seq: k.farSeq, ev: ev})
	k.farSeq++
}

// wheelPut appends ev to the bucket for time t (which must be within
// the horizon), maintaining the occupancy bitmap.
func (k *Kernel) wheelPut(t Time, ev event) {
	if k.wheel == nil {
		k.wheel = make([][]event, wheelSize)
	}
	i := t & wheelMask
	k.wheel[i] = append(k.wheel[i], ev)
	k.occ[i>>6] |= 1 << (i & 63)
	k.wheelCount++
}

// recycleCell clears bucket i's storage and occupancy bit.
func (k *Kernel) recycleCell(i Time) {
	cell := k.wheel[i]
	clear(cell)
	k.wheel[i] = cell[:0]
	k.occ[i>>6] &^= 1 << (i & 63)
}

// nextOccupied returns the smallest time strictly after t whose wheel
// bucket holds events. It must only be called while such a bucket
// exists (wheelCount > 0 with the bucket at t exhausted and recycled).
func (k *Kernel) nextOccupied(t Time) Time {
	cur := int(t & wheelMask)
	// First partial word: bits strictly above cur within its word.
	w := cur >> 6
	if rest := k.occ[w] &^ (uint64(1)<<uint((cur&63)+1) - 1); rest != 0 {
		return t + Time(w<<6+bits.TrailingZeros64(rest)-cur)
	}
	// Remaining words in circular order; the last step wraps back to
	// w's low bits (times past the wheel's wrap point).
	for step := 1; step <= len(k.occ); step++ {
		i := (w + step) & (len(k.occ) - 1)
		if k.occ[i] != 0 {
			dist := (i<<6 + bits.TrailingZeros64(k.occ[i]) - cur + wheelSize) & wheelMask
			return t + Time(dist)
		}
	}
	panic("sim: nextOccupied called on an empty wheel")
}

// migrate moves far-future events whose time has come within the wheel
// horizon into their buckets. It must run every time now advances, so
// that a bucket's append order equals global (when, seq) order.
func (k *Kernel) migrate() {
	horizon := k.now + wheelSize
	for len(k.far) > 0 && k.far[0].when < horizon {
		fe := k.farPop()
		k.wheelPut(fe.when, fe.ev)
	}
}

// advance positions now at the next pending event's time and reports
// whether an event is ready to dispatch at now. When bounded, now never
// exceeds limit: if the next event lies beyond limit (or none remains),
// advance stops with now == limit and returns false.
func (k *Kernel) advance(limit Time, bounded bool) bool {
	for {
		if bounded && k.now > limit {
			return false
		}
		if k.wheelCount > 0 {
			cell := k.wheel[k.now&wheelMask]
			if k.cellPos < len(cell) {
				return true
			}
			if len(cell) > 0 {
				// Bucket exhausted: drop event references for GC and
				// recycle the storage for a future cycle.
				k.recycleCell(k.now & wheelMask)
			}
			k.cellPos = 0
			if bounded && k.now >= limit {
				return false
			}
			// Jump to the next occupied bucket (wheelCount > 0 with the
			// current bucket recycled guarantees one exists). Far
			// events newly inside the horizon migrate after the jump;
			// they are all later than the jump target, since the skipped
			// cycles' buckets were empty and migration had already run
			// for every earlier horizon.
			next := k.nextOccupied(k.now)
			if bounded && next > limit {
				k.now = limit
				k.migrate()
				return false
			}
			k.now = next
			k.migrate()
			continue
		}
		// Wheel empty: jump straight to the earliest far event.
		if cp := k.currentCell(); cp != nil && len(*cp) > 0 {
			// All events in the current bucket were dispatched but the
			// bucket was not yet recycled (wheelCount hit zero mid-cell).
			k.recycleCell(k.now & wheelMask)
			k.cellPos = 0
		}
		if len(k.far) == 0 {
			if bounded && k.now < limit {
				k.now = limit
			}
			return false
		}
		if t := k.far[0].when; !bounded || t <= limit {
			k.now = t
		} else {
			// Stopping short of the next far event still advances now,
			// so far events newly inside the horizon MUST migrate here:
			// otherwise a subsequent schedule at the same timestamp
			// would enter its wheel bucket ahead of the older event,
			// breaking FIFO tie-breaking.
			k.now = limit
			k.migrate()
			return false
		}
		k.migrate()
	}
}

func (k *Kernel) currentCell() *[]event {
	if k.wheel == nil {
		return nil
	}
	return &k.wheel[k.now&wheelMask]
}

// dispatchOne fires the next event in the current bucket. The caller
// must have established readiness via advance.
func (k *Kernel) dispatchOne() {
	cell := k.wheel[k.now&wheelMask]
	ev := cell[k.cellPos]
	// References are released in bulk when the bucket empties (advance
	// clears it); per-slot zeroing here would double the memclr work.
	k.cellPos++
	k.wheelCount--
	k.Executed++
	ev.fire()
}

// Step fires the next event, advancing time to it. It reports whether an
// event was available.
func (k *Kernel) Step() bool {
	if !k.advance(0, false) {
		return false
	}
	k.dispatchOne()
	return true
}

// Run fires events until no events remain or simulated time would exceed
// until. Events scheduled exactly at until still fire. It returns the
// number of events executed by this call.
func (k *Kernel) Run(until Time) uint64 {
	start := k.Executed
	for k.advance(until, true) {
		k.dispatchOne()
	}
	if k.now < until {
		k.now = until
	}
	return k.Executed - start
}

// RunWindow fires every event scheduled strictly before end and leaves
// now == end exactly, so the next schedule or dispatch happens "at" the
// window edge. It is the building block of conservative-window parallel
// execution (see Shards): a shard executes [now, end) and then all
// shards synchronize at end. It returns the number of events executed.
func (k *Kernel) RunWindow(end Time) uint64 {
	if end < k.now {
		panic(fmt.Sprintf("sim: window end %d before now %d", end, k.now))
	}
	if end == k.now {
		return 0
	}
	n := k.Run(end - 1)
	// Run left now == end-1 with that bucket fully dispatched but
	// possibly not yet recycled; recycle it before jumping so the slot
	// is clean when time wraps around the wheel.
	if cp := k.currentCell(); cp != nil && len(*cp) > 0 {
		k.recycleCell(k.now & wheelMask)
	}
	k.cellPos = 0
	k.now = end
	// Far events newly inside the horizon must migrate now, so that
	// later schedules at the same timestamp append behind them.
	k.migrate()
	return n
}

// Drain fires all remaining events regardless of time. Useful in tests
// that must reach quiescence. maxEvents bounds runaway schedules; Drain
// returns false if the bound was hit with events still pending.
func (k *Kernel) Drain(maxEvents uint64) bool {
	for i := uint64(0); i < maxEvents; i++ {
		if !k.Step() {
			return true
		}
	}
	return k.Pending() == 0
}

// ---- far-future min-heap, ordered by (when, seq) ----

func (k *Kernel) farPush(fe farEvent) {
	k.far = append(k.far, fe)
	i := len(k.far) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !farLess(k.far[i], k.far[parent]) {
			break
		}
		k.far[i], k.far[parent] = k.far[parent], k.far[i]
		i = parent
	}
}

func (k *Kernel) farPop() farEvent {
	h := k.far
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = farEvent{}
	k.far = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && farLess(k.far[l], k.far[smallest]) {
			smallest = l
		}
		if r < n && farLess(k.far[r], k.far[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		k.far[i], k.far[smallest] = k.far[smallest], k.far[i]
		i = smallest
	}
	return top
}

func farLess(a, b farEvent) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}
