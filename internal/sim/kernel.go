// Package sim provides a deterministic discrete-event simulation kernel.
//
// All model components (network switches, cache controllers, processors,
// the SafetyNet checkpoint service) schedule closures on a single Kernel.
// Events at the same timestamp fire in schedule order, so a run with a
// fixed seed is bit-for-bit reproducible — a property the reproduction
// methodology depends on (paper §5.2 runs each design point several times
// under controlled pseudo-random perturbation).
package sim

import (
	"container/heap"
	"fmt"
)

// Time is simulated time in processor clock cycles.
type Time uint64

// Forever is a time later than any reachable simulation instant.
const Forever = Time(1<<63 - 1)

// Event is a scheduled closure. Events are ordered by (When, seq) where
// seq is the scheduling order, giving deterministic FIFO tie-breaking.
type event struct {
	when Time
	seq  uint64
	fn   func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Kernel is a discrete-event simulator. The zero value is ready to use.
type Kernel struct {
	now    Time
	seq    uint64
	events eventHeap
	// Executed counts events dispatched since construction.
	Executed uint64
	// free recycles event structs to reduce allocation pressure in long
	// runs; the heap can hold hundreds of thousands of pending events.
	free []*event
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel { return &Kernel{} }

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Pending reports the number of scheduled, not-yet-fired events.
func (k *Kernel) Pending() int { return len(k.events) }

// At schedules fn to run at absolute time t. Scheduling in the past is a
// programming error and panics: it would silently corrupt causality.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", t, k.now))
	}
	var ev *event
	if n := len(k.free); n > 0 {
		ev = k.free[n-1]
		k.free = k.free[:n-1]
		ev.when, ev.seq, ev.fn = t, k.seq, fn
	} else {
		ev = &event{when: t, seq: k.seq, fn: fn}
	}
	k.seq++
	heap.Push(&k.events, ev)
}

// After schedules fn to run d cycles from now.
func (k *Kernel) After(d Time, fn func()) { k.At(k.now+d, fn) }

// Step fires the next event, advancing time to it. It reports whether an
// event was available.
func (k *Kernel) Step() bool {
	if len(k.events) == 0 {
		return false
	}
	ev := heap.Pop(&k.events).(*event)
	k.now = ev.when
	fn := ev.fn
	ev.fn = nil
	if len(k.free) < 1024 {
		k.free = append(k.free, ev)
	}
	k.Executed++
	fn()
	return true
}

// Run fires events until no events remain or simulated time would exceed
// until. Events scheduled exactly at until still fire. It returns the
// number of events executed by this call.
func (k *Kernel) Run(until Time) uint64 {
	start := k.Executed
	for len(k.events) > 0 && k.events[0].when <= until {
		k.Step()
	}
	if k.now < until {
		k.now = until
	}
	return k.Executed - start
}

// Drain fires all remaining events regardless of time. Useful in tests
// that must reach quiescence. maxEvents bounds runaway schedules; Drain
// returns false if the bound was hit with events still pending.
func (k *Kernel) Drain(maxEvents uint64) bool {
	for i := uint64(0); i < maxEvents; i++ {
		if !k.Step() {
			return true
		}
	}
	return len(k.events) == 0
}
