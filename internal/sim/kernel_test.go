package sim

import (
	"testing"
	"testing/quick"
)

func TestKernelZeroValue(t *testing.T) {
	var k Kernel
	if k.Now() != 0 {
		t.Fatalf("new kernel at time %d, want 0", k.Now())
	}
	if k.Step() {
		t.Fatal("Step on empty kernel returned true")
	}
}

func TestKernelOrdering(t *testing.T) {
	k := NewKernel()
	var got []int
	k.At(10, func() { got = append(got, 2) })
	k.At(5, func() { got = append(got, 1) })
	k.At(20, func() { got = append(got, 3) })
	k.Run(Forever)
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
	if k.Now() != Forever {
		t.Fatalf("Run(Forever) left now=%d", k.Now())
	}
}

func TestKernelFIFOTieBreak(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		k.At(7, func() { got = append(got, i) })
	}
	k.Run(7)
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events fired out of schedule order at %d: %v", i, got[:i+1])
		}
	}
}

func TestKernelAfterAndNow(t *testing.T) {
	k := NewKernel()
	var at Time
	k.At(100, func() {
		k.After(50, func() { at = k.Now() })
	})
	k.Run(Forever)
	if at != 150 {
		t.Fatalf("After fired at %d, want 150", at)
	}
}

func TestKernelPastSchedulePanics(t *testing.T) {
	k := NewKernel()
	k.At(10, func() {})
	k.Run(10)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	k.At(5, func() {})
}

func TestKernelRunBoundary(t *testing.T) {
	k := NewKernel()
	fired := map[Time]bool{}
	k.At(10, func() { fired[10] = true })
	k.At(11, func() { fired[11] = true })
	n := k.Run(10)
	if n != 1 || !fired[10] || fired[11] {
		t.Fatalf("Run(10) fired=%v n=%d; want only t=10", fired, n)
	}
	if k.Now() != 10 {
		t.Fatalf("now=%d want 10", k.Now())
	}
	k.Run(11)
	if !fired[11] {
		t.Fatal("event at 11 never fired")
	}
}

func TestKernelDrainBound(t *testing.T) {
	k := NewKernel()
	// A self-rescheduling event never quiesces; Drain must report that.
	var loop func()
	loop = func() { k.After(1, loop) }
	k.At(0, loop)
	if k.Drain(1000) {
		t.Fatal("Drain claimed quiescence of an infinite schedule")
	}
}

func TestKernelCascade(t *testing.T) {
	k := NewKernel()
	count := 0
	var step func()
	step = func() {
		count++
		if count < 1000 {
			k.After(3, step)
		}
	}
	k.At(0, step)
	k.Run(Forever)
	if count != 1000 {
		t.Fatalf("cascade ran %d steps, want 1000", count)
	}
	if k.Executed != 1000 {
		t.Fatalf("Executed=%d want 1000", k.Executed)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seeded RNGs diverged")
		}
	}
	c := NewRNG(43)
	if a.Uint64() == c.Uint64() {
		t.Fatal("different seeds produced identical next value (suspicious)")
	}
}

func TestRNGSnapshotRestore(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 17; i++ {
		r.Uint64()
	}
	snap := r.Snapshot()
	var first [32]uint64
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Restore(snap)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("replay diverged at %d", i)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(1)
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(2)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestRNGGeometricMean(t *testing.T) {
	r := NewRNG(3)
	const n = 20000
	var sum uint64
	for i := 0; i < n; i++ {
		sum += r.Geometric(10)
	}
	mean := float64(sum) / n
	if mean < 8.5 || mean > 11.5 {
		t.Fatalf("Geometric(10) sample mean %v, want ~10", mean)
	}
}

// Property: for any batch of events scheduled at arbitrary times, the
// kernel dispatches them in non-decreasing time order.
func TestKernelMonotonicProperty(t *testing.T) {
	f := func(times []uint16) bool {
		k := NewKernel()
		var fired []Time
		for _, tt := range times {
			tt := Time(tt)
			k.At(tt, func() { fired = append(fired, k.Now()) })
		}
		k.Run(Forever)
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(times)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: uniformity of Intn is roughly preserved across seeds.
func TestRNGIntnUniformProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		buckets := make([]int, 8)
		const n = 8000
		for i := 0; i < n; i++ {
			buckets[r.Intn(8)]++
		}
		for _, b := range buckets {
			if b < n/8-n/16 || b > n/8+n/16 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkKernelScheduleFire(b *testing.B) {
	k := NewKernel()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.After(Time(i%64), func() {})
		k.Step()
	}
}
