// Conservative-window parallel execution across shard kernels.
//
// A Shards group runs N kernels in lockstep lookahead windows: the
// model is partitioned so that every cross-shard interaction is a
// message with a known minimum latency L (for the torus interconnect, a
// link's serialization plus propagation delay). With window W <= L, a
// message sent during window [T, T+W) cannot arrive before T+W, so each
// shard can execute a whole window without observing the others — the
// classic conservative synchronous-window scheme (lookahead in the
// null-message tradition), applied here with barriers instead of
// per-link null messages because the torus couples every shard pair
// every window anyway.
//
// Cross-shard events travel through single-producer/single-consumer
// boundary queues (one per directed shard pair): the producing shard
// appends during its window, and the group drains every active queue at
// the next window edge, scheduling the entries into the destination
// kernels before any shard resumes. Draining preserves per-queue FIFO
// order, which together with per-link FIFO at the model layer is what
// makes the execution deterministic at any shard count (see the
// network package and DESIGN.md "Parallel intra-run DES" for the full
// argument). A per-pair lookahead table (SetLookahead) declares which
// directed pairs the model topology can couple and at what minimum
// latency: inactive pairs are pruned from the drain scan — on a 2D
// tile grid that turns the O(N^2) edge scan into O(5N) — and every
// Post is validated against its pair's floor.
//
// Global control — checkpoint orchestration, recovery, watchdog scans,
// anything that reads or writes more than one shard — runs only at
// window edges via ControlAt/After, single-threaded, with every kernel
// quiesced at the same instant. The group is therefore deterministic by
// construction: shard-local execution is sequential, cross-shard inputs
// arrive at deterministic points in deterministic order, and control
// runs at deterministic times.
package sim

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// Scheduler schedules a closure after a delay of simulated cycles. Both
// *Kernel (serial systems) and *Shards (where closures must run at
// window edges, not inside a shard's window) implement it; model code
// that only needs delayed global actions takes a Scheduler so it works
// under either execution mode.
type Scheduler interface {
	After(d Time, fn func())
}

// PostedEvent is one cross-shard event in a boundary queue: a typed
// handler invocation addressed to a destination shard's kernel at an
// absolute time.
type PostedEvent struct {
	When   Time
	H      Handler
	A0, A1 uint64
	P      any
}

// ctlAction is one scheduled control closure; ordered by (at, seq) so
// same-edge actions run in schedule order.
type ctlAction struct {
	at  Time
	seq uint64
	fn  func()
}

// Shards executes a fixed set of kernels in conservative lockstep
// windows. Construct with NewShards, wire the model so every
// cross-shard event goes through Post, then Run.
//
// Threading contract: during a window, shard i's kernel (and any model
// state owned by shard i) is touched only by the goroutine running
// shard i; Post may be called only by the source shard's goroutine (or
// single-threaded outside Run). ControlAt/After and the hooks run
// single-threaded at window edges with all shards quiesced.
type Shards struct {
	window Time
	ks     []*Kernel
	now    Time

	// boxes[dst][src] is the SPSC boundary queue from shard src to
	// shard dst. Entries drain in (src, FIFO) order at each edge.
	boxes [][][]PostedEvent

	// look[dst][src] is the per-pair lookahead floor: the smallest
	// latency any cross-shard event on the directed pair src->dst can
	// have, or 0 when the pair is inactive (the model topology admits no
	// src->dst message; Post panics and the drain skips the queue).
	// NewShards defaults every pair to the window; SetLookahead installs
	// a model-derived table. The window is the min over active floors,
	// so a sparser topology prunes the per-edge drain scan from N^2 to
	// the active-pair count without shrinking the window.
	look [][]Time

	// srcs[dst] lists the active source shards for dst in ascending
	// order — the drain order, which matches the dense 0..N-1 scan the
	// fully-connected default performs (inactive queues are always
	// empty, so pruning them cannot change the schedule).
	srcs [][]int

	ctl    []ctlAction // min-heap by (at, seq)
	ctlSeq uint64

	// PreControl and PostControl, when non-nil, run at every window
	// edge around the scheduled control actions (PreControl first —
	// e.g. committing deferred recoveries; PostControl last — e.g.
	// granting slow-start issue tokens).
	PreControl  func(now Time)
	PostControl func(now Time)

	// preWindow hooks run as a separate parallel phase before each
	// window's execution phase (e.g. refreshing cross-shard congestion
	// mirrors from quiesced neighbor state).
	preWindow []func(shard int)

	// Worker barrier state (see run/worker): phase is bumped to release
	// workers into the job described by jobKind/jobBound; done counts
	// workers still executing it. Each worker owns a contiguous slice
	// of shards — nWorkers is capped at GOMAXPROCS because shard-to-
	// worker assignment cannot affect results (windows are independent
	// by construction), so an undersubscribed host degenerates to a
	// plain sequential loop with no barrier traffic at all. spinBudget
	// tunes the barrier: with a core per worker, spin briefly before
	// yielding (windows are microseconds; a futex round-trip is not
	// worth it); otherwise yield immediately — spinning would steal the
	// core another worker needs.
	phase      atomic.Uint64
	done       atomic.Int64
	jobKind    uint8
	jobBound   Time
	nWorkers   int
	spinBudget int
}

// Worker job kinds.
const (
	jobRunWindow = iota // RunWindow(jobBound)
	jobRunFinal         // Run(jobBound): inclusive final window
	jobDrain            // drain boundary queues into the shard's kernel
	jobPre              // preWindow hooks
	jobExit             // Run finished; workers return
)

// NewShards builds a group of n kernels advancing in windows of the
// given lookahead. All kernels start at time zero.
func NewShards(n int, window Time) *Shards {
	if n < 1 {
		panic("sim: shard count must be at least 1")
	}
	if window < 1 {
		panic("sim: shard window must be at least 1 cycle")
	}
	g := &Shards{window: window}
	g.ks = make([]*Kernel, n)
	for i := range g.ks {
		g.ks[i] = NewKernel()
	}
	g.boxes = make([][][]PostedEvent, n)
	for d := range g.boxes {
		g.boxes[d] = make([][]PostedEvent, n)
	}
	// Default topology: fully connected, every pair at the window floor.
	look := make([][]Time, n)
	for d := range look {
		look[d] = make([]Time, n)
		for s := range look[d] {
			look[d][s] = window
		}
	}
	g.SetLookahead(look)
	return g
}

// SetLookahead installs the per-pair lookahead table: look[dst][src] is
// the minimum latency of any cross-shard event on the directed pair
// src->dst, and 0 marks the pair inactive (no model message can couple
// src to dst; Post panics on it, and the edge drain skips its queue
// entirely). Self pairs count — same-shard switch-to-switch arrivals
// route through the boundary queues too, so bucket positions cannot
// depend on where a partition boundary falls.
//
// The group's window must not exceed any active floor: the window is
// exactly what guarantees a message sent during [T, T+W) cannot arrive
// before T+W, and an active pair with lookahead below W would break
// that. The min over active floors is therefore the widest legal
// window; NewShards callers derive the window from the same table.
func (g *Shards) SetLookahead(look [][]Time) {
	n := len(g.ks)
	if len(look) != n {
		panic(fmt.Sprintf("sim: lookahead table for %d shards, want %d", len(look), n))
	}
	srcs := make([][]int, n)
	for dst := range look {
		if len(look[dst]) != n {
			panic(fmt.Sprintf("sim: lookahead row %d has %d entries, want %d", dst, len(look[dst]), n))
		}
		for src, l := range look[dst] {
			if l == 0 {
				continue
			}
			if l < g.window {
				panic(fmt.Sprintf("sim: lookahead %d on pair %d->%d is below the %d-cycle window", l, src, dst, g.window))
			}
			srcs[dst] = append(srcs[dst], src)
		}
	}
	g.look, g.srcs = look, srcs
}

// Lookahead returns the floor for the directed pair src->dst (0 when
// inactive).
func (g *Shards) Lookahead(src, dst int) Time { return g.look[dst][src] }

// N returns the number of shards.
func (g *Shards) N() int { return len(g.ks) }

// Kernel returns shard i's kernel.
func (g *Shards) Kernel(i int) *Kernel { return g.ks[i] }

// Window returns the lookahead window in cycles.
func (g *Shards) Window() Time { return g.window }

// Now returns the current edge time: every kernel sits exactly here
// between Run calls and during control.
func (g *Shards) Now() Time { return g.now }

// Post enqueues a cross-shard event: h.HandleEvent(a0, a1, p) fires at
// `when` on shard dst's kernel. Only the goroutine executing shard src
// may call it during a window. The event must respect the pair's
// lookahead floor: sent at t >= window start with latency >= the floor,
// it lands at or beyond start+floor — checked here, so a model message
// that undercuts its declared floor (or crosses an inactive pair) fails
// loudly instead of silently corrupting determinism.
func (g *Shards) Post(src, dst int, when Time, h Handler, a0, a1 uint64, p any) {
	switch l := g.look[dst][src]; {
	case l == 0:
		panic(fmt.Sprintf("sim: Post on inactive shard pair %d->%d (not in the lookahead topology)", src, dst))
	case when < g.now+l:
		panic(fmt.Sprintf("sim: Post at %d on pair %d->%d undercuts lookahead %d (window start %d)", when, src, dst, l, g.now))
	}
	g.boxes[dst][src] = append(g.boxes[dst][src], PostedEvent{When: when, H: h, A0: a0, A1: a1, P: p})
}

// PreWindow registers a hook run for every shard as a dedicated
// parallel phase before each window executes, after boundary queues
// have drained. Hooks may read any quiesced cross-shard state but may
// write only their own shard's.
func (g *Shards) PreWindow(fn func(shard int)) { g.preWindow = append(g.preWindow, fn) }

// ControlAt schedules fn to run single-threaded at the first window
// edge at or after t. Call only from control context (hooks, other
// control actions) or while no Run is in progress.
func (g *Shards) ControlAt(t Time, fn func()) {
	g.ctlPush(ctlAction{at: t, seq: g.ctlSeq, fn: fn})
	g.ctlSeq++
}

// After implements Scheduler: fn runs at the first edge at or after
// now+d.
func (g *Shards) After(d Time, fn func()) { g.ControlAt(g.now+d, fn) }

// edge performs the single-threaded window-edge work: hooks and due
// control actions. Boundary-queue drains follow as a parallel phase
// (jobDrain) — after control, exactly where the serial drain sat, so
// the bucket-insertion order of control-scheduled events versus
// boundary arrivals at equal timestamps is unchanged.
func (g *Shards) edge() {
	if g.PreControl != nil {
		g.PreControl(g.now)
	}
	for len(g.ctl) > 0 && g.ctl[0].at <= g.now {
		g.ctlPop().fn()
	}
	if g.PostControl != nil {
		g.PostControl(g.now)
	}
}

// drain schedules shard dst's pending boundary events into its kernel,
// scanning only the active source pairs in ascending order — the same
// relative order as the dense scan, since inactive queues are always
// empty. Runs in the jobDrain phase: each shard's owner worker writes
// only that shard's kernel and reads queues the previous window's
// barrier already published, so the phase is race-free and its
// parallelism cannot reorder anything.
func (g *Shards) drain(dst int) {
	k := g.ks[dst]
	for _, src := range g.srcs[dst] {
		q := g.boxes[dst][src]
		for i := range q {
			e := &q[i]
			if e.When < g.now {
				panic(fmt.Sprintf("sim: boundary event at %d violates lookahead (edge %d, window %d)",
					e.When, g.now, g.window))
			}
			k.AtEvent(e.When, e.H, e.A0, e.A1, e.P)
		}
		clear(q)
		g.boxes[dst][src] = q[:0]
	}
}

// Run advances every shard to exactly `until`, executing windows in
// parallel and edges single-threaded. Events scheduled exactly at
// `until` still fire (matching Kernel.Run); control actions scheduled
// at `until` run at the next Run's first edge.
func (g *Shards) Run(until Time) {
	if until < g.now {
		panic(fmt.Sprintf("sim: Run(%d) before now %d", until, g.now))
	}
	g.nWorkers = len(g.ks)
	if max := runtime.GOMAXPROCS(0); g.nWorkers > max {
		g.nWorkers = max
	}
	single := g.nWorkers == 1
	if !single {
		g.startWorkers()
	}
	for {
		g.edge()
		g.parallel(jobDrain, 0, single)
		if len(g.preWindow) > 0 {
			g.parallel(jobPre, 0, single)
		}
		if end := g.now + g.window; end <= until {
			// Full window [now, end): fires events < end.
			g.parallel(jobRunWindow, end, single)
			g.now = end
			continue
		}
		// Final, possibly short, inclusive window [now, until]: it spans
		// until-now+1 <= window cycles, so sends within it still land
		// beyond until and wait in their boundary queues for a later Run.
		g.parallel(jobRunFinal, until, single)
		g.now = until
		break
	}
	if !single {
		g.release(jobExit, 0)
		g.awaitDone()
	}
}

// startWorkers spawns one goroutine per shard beyond the first; the
// calling goroutine acts as shard 0's worker. Workers live for one Run:
// Run's final jobExit release joins them before returning, so repeated
// Runs never double-subscribe a shard.
func (g *Shards) startWorkers() {
	// Spin only when the host has a core per shard (nWorkers was just
	// capped at GOMAXPROCS, so compare against the shard count).
	g.spinBudget = 64
	if runtime.GOMAXPROCS(0) < len(g.ks) {
		g.spinBudget = 0
	}
	base := g.phase.Load()
	for w := 1; w < g.nWorkers; w++ {
		go g.worker(w, base)
	}
}

// shardRange returns worker w's contiguous slice of shards.
func (g *Shards) shardRange(w int) (lo, hi int) {
	n := len(g.ks)
	lo = w * n / g.nWorkers
	hi = (w + 1) * n / g.nWorkers
	return
}

func (g *Shards) worker(w int, seen uint64) {
	for {
		seen = g.await(seen)
		kind, bound := g.jobKind, g.jobBound
		if kind == jobExit {
			g.done.Add(-1)
			return
		}
		g.doWork(w, kind, bound)
		g.done.Add(-1)
	}
}

// await spins (with Gosched backoff, so undersubscribed hosts stay
// live) until the phase counter moves past seen, returning the new
// value. Atomic loads/stores order the job fields around it.
func (g *Shards) await(seen uint64) uint64 {
	for spins := 0; ; spins++ {
		if p := g.phase.Load(); p != seen {
			return p
		}
		if spins >= g.spinBudget {
			runtime.Gosched()
		}
	}
}

// release publishes a job to the workers.
func (g *Shards) release(kind uint8, bound Time) {
	g.jobKind, g.jobBound = kind, bound
	g.done.Store(int64(g.nWorkers - 1))
	g.phase.Add(1)
}

// parallel runs one job across all shards: workers 1..nWorkers-1 take
// their shard slices, the caller runs worker 0's, then waits for the
// stragglers. With one worker it is a plain loop over every shard.
func (g *Shards) parallel(kind uint8, bound Time, single bool) {
	if !single {
		g.release(kind, bound)
	}
	g.doWork(0, kind, bound)
	if !single {
		g.awaitDone()
	}
}

// awaitDone waits for every worker to finish the current job; the
// atomic decrements order the workers' shard-state writes before the
// caller's subsequent reads.
func (g *Shards) awaitDone() {
	for spins := 0; g.done.Load() != 0; spins++ {
		if spins >= g.spinBudget {
			runtime.Gosched()
		}
	}
}

func (g *Shards) doWork(w int, kind uint8, bound Time) {
	lo, hi := g.shardRange(w)
	for shard := lo; shard < hi; shard++ {
		switch kind {
		case jobRunWindow:
			g.ks[shard].RunWindow(bound)
		case jobRunFinal:
			g.ks[shard].Run(bound)
		case jobDrain:
			g.drain(shard)
		case jobPre:
			for _, fn := range g.preWindow {
				fn(shard)
			}
		}
	}
}

// ---- control-action min-heap, ordered by (at, seq) ----

func (g *Shards) ctlPush(a ctlAction) {
	g.ctl = append(g.ctl, a)
	i := len(g.ctl) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !ctlLess(g.ctl[i], g.ctl[parent]) {
			break
		}
		g.ctl[i], g.ctl[parent] = g.ctl[parent], g.ctl[i]
		i = parent
	}
}

func (g *Shards) ctlPop() ctlAction {
	h := g.ctl
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = ctlAction{}
	g.ctl = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && ctlLess(g.ctl[l], g.ctl[smallest]) {
			smallest = l
		}
		if r < n && ctlLess(g.ctl[r], g.ctl[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		g.ctl[i], g.ctl[smallest] = g.ctl[smallest], g.ctl[i]
		i = smallest
	}
	return top
}

func ctlLess(a, b ctlAction) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}
