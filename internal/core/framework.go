// Package core implements the paper's primary contribution: the
// "speculation for simplicity" framework (paper §2). The framework
// specifies four features any speculative simplification must provide:
//
//  1. Infrequency of mis-speculation,
//  2. Detection of every mis-speculation,
//  3. Recovery to a consistent pre-speculation state (SafetyNet),
//  4. Guaranteed forward progress after recovery.
//
// The Coordinator ties the pieces together: protocol controllers and
// timeout watchdogs report detected mis-speculations; the Coordinator
// drives SafetyNet recovery, resets the memory system, restores the
// processor snapshot, and applies forward-progress policies that perturb
// post-recovery timing so the rare event cannot simply recur (paper §2
// feature 4: "alter the timing of the execution after system recovery").
package core

import (
	"fmt"
	"sort"

	"specsimp/internal/safetynet"
	"specsimp/internal/sim"
	"specsimp/internal/stats"
)

// Characterization is one row of the paper's Table 1: how a speculative
// design satisfies the four framework features.
type Characterization struct {
	Application     string
	Infrequency     string
	Detection       string
	Recovery        string
	ForwardProgress string
	Result          string
}

// Speculation is one application of speculation for simplicity.
type Speculation interface {
	// Name identifies the speculation ("p2p-ordering", "snoop-corner",
	// "no-vc-deadlock").
	Name() string
	// Characterize returns the Table 1 row for this design.
	Characterize() Characterization
}

// The three applications of the paper, as described by Table 1.
var (
	// P2POrdering is §3.1: simplify a directory protocol by speculating
	// that the adaptively routed interconnect preserves point-to-point
	// ordering.
	P2POrdering = StaticSpeculation{
		N: "p2p-ordering",
		C: Characterization{
			Application:     "Simplify directory protocol by speculating on point-to-point ordering (§3.1)",
			Infrequency:     "re-orderings are rare and most re-orderings do not matter",
			Detection:       "one specific invalid transition in protocol controller",
			Recovery:        "SafetyNet",
			ForwardProgress: "selectively disable adaptive routing during re-execution",
			Result:          "simpler protocol with rare mis-speculations",
		},
	}
	// SnoopCorner is §3.2: treat a rare snooping-protocol transition as
	// a mis-speculation instead of specifying it.
	SnoopCorner = StaticSpeculation{
		N: "snoop-corner",
		C: Characterization{
			Application:     "Simplify snooping protocol by treating corner case transition as error (§3.2)",
			Infrequency:     "writebacks do not often race with requests to write the block",
			Detection:       "one specific invalid transition in protocol controller",
			Recovery:        "SafetyNet",
			ForwardProgress: "slow-start execution after recovery",
			Result:          "protocol almost never exercises corner case in practice",
		},
	}
	// NoVCDeadlock is §4: remove virtual channel flow control and
	// recover from the resulting (rare) deadlocks.
	NoVCDeadlock = StaticSpeculation{
		N: "no-vc-deadlock",
		C: Characterization{
			Application:     "Simplify interconnection network by removing virtual channel flow control (§4)",
			Infrequency:     "worst-case buffering requirements are rarely needed in practice",
			Detection:       "timeout on cache coherence transaction",
			Recovery:        "SafetyNet",
			ForwardProgress: "slow-start execution after recovery, with sufficient buffering during slow-start",
			Result:          "simpler network incurs no deadlocks in practice",
		},
	}
)

// StaticSpeculation is a Speculation described by fixed text.
type StaticSpeculation struct {
	N string
	C Characterization
}

// Name implements Speculation.
func (s StaticSpeculation) Name() string { return s.N }

// Characterize implements Speculation.
func (s StaticSpeculation) Characterize() Characterization { return s.C }

// Table1 renders the framework characterization of the given designs in
// the layout of the paper's Table 1.
func Table1(specs ...Speculation) string {
	t := stats.NewTable("Feature", "Design", "Characterization")
	rows := []struct {
		f   string
		get func(Characterization) string
	}{
		{"(1) Infrequency", func(c Characterization) string { return c.Infrequency }},
		{"(2) Detection", func(c Characterization) string { return c.Detection }},
		{"(3) Recovery", func(c Characterization) string { return c.Recovery }},
		{"(4) Forward Progress", func(c Characterization) string { return c.ForwardProgress }},
		{"Result", func(c Characterization) string { return c.Result }},
	}
	for _, s := range specs {
		c := s.Characterize()
		t.AddRow("Application", s.Name(), c.Application)
		for _, r := range rows {
			t.AddRow(r.f, s.Name(), r.get(c))
		}
	}
	return t.String()
}

// ForwardProgressPolicy perturbs post-recovery execution so that the
// mis-speculated race cannot deterministically recur.
type ForwardProgressPolicy interface {
	// OnRecovery is invoked after state restoration, with the running
	// count of recoveries attributed to the coordinator.
	OnRecovery(nRecoveries uint64)
	// PolicyName identifies the policy in reports.
	PolicyName() string
}

// Coordinator routes detected mis-speculations to SafetyNet recovery and
// forward-progress policies. Exactly one coordinator exists per system.
type Coordinator struct {
	k   *sim.Kernel
	mgr *safetynet.Manager

	// RestoreFn reinstates the processor/workload snapshot returned by
	// SafetyNet (architectural state at the recovery point).
	RestoreFn func(snapshot interface{})
	// ResetFn clears derived, non-checkpointed state: in-flight network
	// messages and controller transaction buffers.
	ResetFn func()
	// ResumeFn tells the system when execution restarts (now +
	// RecoveryLatency); processors stall until then.
	ResumeFn func(at sim.Time)

	// PolicyExempt, when non-nil, suppresses forward-progress policies
	// for matching reasons. The Figure 4 stress methodology injects
	// recoveries into a non-speculative system; those recoveries have
	// no race to avoid, so slow-start must not engage.
	PolicyExempt func(reason string) bool

	policies []ForwardProgressPolicy

	resumeAt   sim.Time
	byReason   map[string]*stats.Counter
	total      stats.Counter
	lostWork   stats.Sample
	recovering bool

	// rollback and recoveryLat are the exact integer distributions the
	// availability experiment reports: cycles of lost work per recovery,
	// and detection-to-resume latency per recovery (including any
	// deferral the fault spent waiting behind an in-progress recovery
	// or a window edge). Exact accumulators keep the columns
	// bit-identical at every shard count.
	rollback    stats.IntSample
	recoveryLat stats.IntSample
}

// NewCoordinator builds a coordinator over a SafetyNet manager.
func NewCoordinator(k *sim.Kernel, mgr *safetynet.Manager) *Coordinator {
	return &Coordinator{k: k, mgr: mgr, byReason: make(map[string]*stats.Counter)}
}

// AddPolicy registers a forward-progress policy.
func (c *Coordinator) AddPolicy(p ForwardProgressPolicy) { c.policies = append(c.policies, p) }

// InRecovery reports whether the system is between detection and resume.
func (c *Coordinator) InRecovery() bool { return c.k.Now() < c.resumeAt }

// ResumeAt returns the time execution restarts after the most recent
// recovery (zero if none).
func (c *Coordinator) ResumeAt() sim.Time { return c.resumeAt }

// TriggerMisSpeculation performs a system recovery attributed to reason.
// Duplicate detections during an in-progress recovery are coalesced. It
// reports whether a recovery was actually performed.
func (c *Coordinator) TriggerMisSpeculation(reason string) bool {
	return c.TriggerMisSpeculationAt(reason, c.k.Now())
}

// TriggerMisSpeculationAt is TriggerMisSpeculation for detections whose
// nominal fault time precedes the call: a mid-window detection deferred
// to the edge, or a fault held back behind an in-progress recovery. The
// recovery-latency distribution then charges the deferral honestly —
// latency runs from detectedAt to the post-recovery resume time.
func (c *Coordinator) TriggerMisSpeculationAt(reason string, detectedAt sim.Time) bool {
	if c.InRecovery() || c.recovering {
		return false
	}
	c.recovering = true
	defer func() { c.recovering = false }()

	cnt := c.byReason[reason]
	if cnt == nil {
		cnt = &stats.Counter{}
		c.byReason[reason] = cnt
	}
	cnt.Inc()
	c.total.Inc()

	snapshot, lost := c.mgr.Recover()
	c.lostWork.Observe(float64(lost))
	c.rollback.Observe(uint64(lost))
	if c.ResetFn != nil {
		c.ResetFn()
	}
	if c.RestoreFn != nil {
		c.RestoreFn(snapshot)
	}
	c.resumeAt = c.k.Now() + c.mgr.Config().RecoveryLatency
	if c.resumeAt > detectedAt {
		c.recoveryLat.Observe(uint64(c.resumeAt - detectedAt))
	} else {
		c.recoveryLat.Observe(0)
	}
	if c.PolicyExempt == nil || !c.PolicyExempt(reason) {
		for _, p := range c.policies {
			p.OnRecovery(c.total.Value())
		}
	}
	if c.ResumeFn != nil {
		c.ResumeFn(c.resumeAt)
	}
	return true
}

// Recoveries returns the total recoveries performed via this coordinator.
func (c *Coordinator) Recoveries() uint64 { return c.total.Value() }

// RecoveriesFor returns the recoveries attributed to reason.
func (c *Coordinator) RecoveriesFor(reason string) uint64 {
	if cnt := c.byReason[reason]; cnt != nil {
		return cnt.Value()
	}
	return 0
}

// Reasons returns the observed mis-speculation reasons, sorted.
func (c *Coordinator) Reasons() []string {
	out := make([]string, 0, len(c.byReason))
	for r := range c.byReason {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// MeanLostWork returns the mean rollback distance in cycles.
func (c *Coordinator) MeanLostWork() float64 { return c.lostWork.Mean() }

// RollbackDist returns the exact rollback-distance distribution
// (cycles of lost work per recovery).
func (c *Coordinator) RollbackDist() stats.IntSummary { return c.rollback.Summary() }

// RecoveryLatencyDist returns the exact recovery-latency distribution:
// nominal detection time to post-recovery resume, per recovery.
func (c *Coordinator) RecoveryLatencyDist() stats.IntSummary { return c.recoveryLat.Summary() }

// String summarizes recovery activity.
func (c *Coordinator) String() string {
	return fmt.Sprintf("coordinator{recoveries=%d lost=%.0f}", c.total.Value(), c.lostWork.Mean())
}

// AdaptiveRoutingToggle is the interface DisableAdaptiveRouting drives
// (satisfied by *network.Network).
type AdaptiveRoutingToggle interface {
	SetAdaptiveDisabled(bool)
}

// DisableAdaptiveRouting is the §3.1 forward-progress policy: after a
// recovery, route statically for ReenableAfter cycles (0 = forever, the
// paper's conservative extreme), so point-to-point order holds during
// re-execution and the reordering race cannot recur.
//
// K is a sim.Scheduler rather than a kernel so sharded systems can
// route the re-enable timer through window-edge control: toggling the
// routing policy touches every shard and must not fire mid-window.
type DisableAdaptiveRouting struct {
	K             sim.Scheduler
	Net           AdaptiveRoutingToggle
	ReenableAfter sim.Time

	generation uint64 // invalidates stale re-enable timers
}

// PolicyName implements ForwardProgressPolicy.
func (d *DisableAdaptiveRouting) PolicyName() string { return "disable-adaptive-routing" }

// OnRecovery implements ForwardProgressPolicy.
func (d *DisableAdaptiveRouting) OnRecovery(uint64) {
	d.Net.SetAdaptiveDisabled(true)
	d.generation++
	if d.ReenableAfter == 0 {
		return
	}
	gen := d.generation
	d.K.After(d.ReenableAfter, func() {
		if gen == d.generation {
			d.Net.SetAdaptiveDisabled(false)
		}
	})
}

// OutstandingLimiter is the interface SlowStart drives: it bounds the
// number of concurrently outstanding coherence transactions (satisfied
// by the system's processor pool).
type OutstandingLimiter interface {
	SetOutstandingLimit(int)
}

// SlowStart is the §3.2/§4 forward-progress policy: after a recovery,
// restrict the system to Limit outstanding coherence transactions for
// Window cycles. With Limit 1 the double-transaction races and
// buffer-cycle deadlocks provably cannot recur, and with sufficient
// buffering for Limit transactions slow-start avoids livelock (§4).
type SlowStart struct {
	K       sim.Scheduler // window-edge scheduler in sharded systems (see DisableAdaptiveRouting.K)
	Limiter OutstandingLimiter
	Limit   int // outstanding transactions during slow-start (>=1)
	Normal  int // normal limit to restore (0 = unlimited)
	Window  sim.Time

	generation uint64
}

// PolicyName implements ForwardProgressPolicy.
func (s *SlowStart) PolicyName() string { return "slow-start" }

// OnRecovery implements ForwardProgressPolicy.
func (s *SlowStart) OnRecovery(uint64) {
	limit := s.Limit
	if limit < 1 {
		limit = 1
	}
	s.Limiter.SetOutstandingLimit(limit)
	s.generation++
	gen := s.generation
	s.K.After(s.Window, func() {
		if gen == s.generation {
			s.Limiter.SetOutstandingLimit(s.Normal)
		}
	})
}
