package core

import (
	"strings"
	"testing"

	"specsimp/internal/safetynet"
	"specsimp/internal/sim"
)

func TestTable1Characterization(t *testing.T) {
	out := Table1(P2POrdering, SnoopCorner, NoVCDeadlock)
	for _, want := range []string{
		"p2p-ordering", "snoop-corner", "no-vc-deadlock",
		"SafetyNet",
		"selectively disable adaptive routing",
		"slow-start",
		"timeout on cache coherence transaction",
		"(1) Infrequency", "(2) Detection", "(3) Recovery", "(4) Forward Progress",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q", want)
		}
	}
}

func newCoord(t *testing.T) (*sim.Kernel, *safetynet.Manager, *Coordinator) {
	t.Helper()
	k := sim.NewKernel()
	m := safetynet.NewManager(k, safetynet.DefaultConfig(4, 100))
	m.TakeCheckpoint("init")
	return k, m, NewCoordinator(k, m)
}

func TestTriggerPerformsRecovery(t *testing.T) {
	k, m, c := newCoord(t)
	restored, reset := false, false
	var resumeAt sim.Time
	c.RestoreFn = func(s interface{}) { restored = s == "init" }
	c.ResetFn = func() { reset = true }
	c.ResumeFn = func(at sim.Time) { resumeAt = at }
	k.Run(500)
	if !c.TriggerMisSpeculation("race") {
		t.Fatal("trigger refused")
	}
	if !restored || !reset {
		t.Fatalf("restored=%v reset=%v", restored, reset)
	}
	if resumeAt != 500+m.Config().RecoveryLatency {
		t.Fatalf("resumeAt=%d", resumeAt)
	}
	if c.Recoveries() != 1 || c.RecoveriesFor("race") != 1 {
		t.Fatalf("counting wrong: %d/%d", c.Recoveries(), c.RecoveriesFor("race"))
	}
	if !c.InRecovery() {
		t.Fatal("not in recovery immediately after trigger")
	}
}

func TestDuplicateDetectionsCoalesced(t *testing.T) {
	k, _, c := newCoord(t)
	k.Run(100)
	if !c.TriggerMisSpeculation("a") {
		t.Fatal("first trigger refused")
	}
	if c.TriggerMisSpeculation("a") {
		t.Fatal("second trigger during recovery was not coalesced")
	}
	if c.Recoveries() != 1 {
		t.Fatalf("recoveries=%d want 1", c.Recoveries())
	}
}

func TestReasonsSorted(t *testing.T) {
	k, _, c := newCoord(t)
	k.Run(10)
	c.TriggerMisSpeculation("zeta")
	k.Run(c.ResumeAt() + 1000)
	c.TriggerMisSpeculation("alpha")
	got := c.Reasons()
	if len(got) != 2 || got[0] != "alpha" || got[1] != "zeta" {
		t.Fatalf("reasons=%v", got)
	}
}

type fakeToggle struct{ disabled bool }

func (f *fakeToggle) SetAdaptiveDisabled(v bool) { f.disabled = v }

func TestDisableAdaptiveRoutingPolicy(t *testing.T) {
	k := sim.NewKernel()
	tog := &fakeToggle{}
	p := &DisableAdaptiveRouting{K: k, Net: tog, ReenableAfter: 1000}
	p.OnRecovery(1)
	if !tog.disabled {
		t.Fatal("adaptive routing not disabled")
	}
	k.Run(999)
	if !tog.disabled {
		t.Fatal("re-enabled too early")
	}
	k.Run(1001)
	if tog.disabled {
		t.Fatal("not re-enabled after window")
	}
}

func TestDisableAdaptiveRoutingForever(t *testing.T) {
	k := sim.NewKernel()
	tog := &fakeToggle{}
	p := &DisableAdaptiveRouting{K: k, Net: tog, ReenableAfter: 0}
	p.OnRecovery(1)
	k.Run(1_000_000)
	if !tog.disabled {
		t.Fatal("conservative policy re-enabled adaptive routing")
	}
}

func TestDisableAdaptiveRoutingRestartsWindow(t *testing.T) {
	k := sim.NewKernel()
	tog := &fakeToggle{}
	p := &DisableAdaptiveRouting{K: k, Net: tog, ReenableAfter: 1000}
	p.OnRecovery(1)
	k.Run(500)
	p.OnRecovery(2) // second recovery restarts the window
	k.Run(1400)     // old timer (t=1000) must not re-enable
	if tog.disabled == false {
		t.Fatal("stale re-enable timer fired")
	}
	k.Run(1600)
	if tog.disabled {
		t.Fatal("never re-enabled after restarted window")
	}
}

type fakeLimiter struct{ limit int }

func (f *fakeLimiter) SetOutstandingLimit(n int) { f.limit = n }

func TestSlowStartPolicy(t *testing.T) {
	k := sim.NewKernel()
	lim := &fakeLimiter{limit: 16}
	p := &SlowStart{K: k, Limiter: lim, Limit: 1, Normal: 16, Window: 2000}
	p.OnRecovery(1)
	if lim.limit != 1 {
		t.Fatalf("limit=%d during slow-start, want 1", lim.limit)
	}
	k.Run(2001)
	if lim.limit != 16 {
		t.Fatalf("limit=%d after window, want 16", lim.limit)
	}
}

func TestSlowStartMinimumLimit(t *testing.T) {
	k := sim.NewKernel()
	lim := &fakeLimiter{}
	p := &SlowStart{K: k, Limiter: lim, Limit: 0, Normal: 8, Window: 10}
	p.OnRecovery(1)
	if lim.limit != 1 {
		t.Fatalf("limit=%d, slow-start must allow at least 1", lim.limit)
	}
}

func TestPolicyInvokedByCoordinator(t *testing.T) {
	k, _, c := newCoord(t)
	lim := &fakeLimiter{limit: 16}
	c.AddPolicy(&SlowStart{K: k, Limiter: lim, Limit: 1, Normal: 16, Window: 100})
	k.Run(50)
	c.TriggerMisSpeculation("deadlock")
	if lim.limit != 1 {
		t.Fatal("coordinator did not apply forward-progress policy")
	}
}
