package snoop

import (
	"fmt"
	"slices"

	"specsimp/internal/cache"
	"specsimp/internal/coherence"
	"specsimp/internal/explore"
	"specsimp/internal/network"
	"specsimp/internal/sim"
)

// This file adapts the snooping protocol to the shared model-checking
// engine (internal/explore). Two kinds of nondeterminism are explored
// jointly: the address network's arbitration order (any submitted-but-
// unordered request may be granted next — a superset of the timed
// bus's FIFO arbitration, because the protocol must not depend on
// arbiter fairness) and the data fabric's delivery order (Data arrives
// in any order, as on the unordered torus). A bus grant is observed by
// every controller, so grant transitions are global (dependent with
// everything); data deliveries to distinct caches commute.

// snoopEvent is the recorded content of one pending event, for
// transition keys and counterexample rendering.
type snoopEvent struct {
	msg   coherence.Msg
	dst   network.NodeID // data deliveries only
	grant bool
}

// modelBus is an AddressNet under engine control: submitted requests
// queue unordered until the engine grants one, which is then observed
// by every attached observer in grant order.
type modelBus struct {
	m         *snoopModel
	observers []BusObserver
	queue     []coherence.Msg
	ids       []uint64
	seq       uint64
	ordered   uint64
	epoch     uint64
}

func (b *modelBus) Submit(msg coherence.Msg) {
	b.queue = append(b.queue, msg)
	b.ids = append(b.ids, b.m.mint(snoopEvent{msg: msg, grant: true}))
}

func (b *modelBus) Attach(o BusObserver) { b.observers = append(b.observers, o) }
func (b *modelBus) Ordered() uint64      { return b.ordered }
func (b *modelBus) Reset() {
	b.epoch++
	b.queue = nil
	b.ids = nil
}

// grant orders the queued request with the given position: it receives
// the next global sequence number and is broadcast to all observers. A
// recovery fired mid-broadcast aborts the remaining observers, like
// the timed Bus.
func (b *modelBus) grant(pos int) {
	msg := b.queue[pos]
	b.queue = append(b.queue[:pos:pos], b.queue[pos+1:]...)
	b.ids = append(b.ids[:pos:pos], b.ids[pos+1:]...)
	seq := b.seq
	b.seq++
	b.ordered++
	epoch := b.epoch
	for _, o := range b.observers {
		if b.epoch != epoch {
			return
		}
		o.OnOrdered(seq, msg)
	}
}

// sModelFabric delivers data messages under engine control.
type sModelFabric struct {
	m       *snoopModel
	nodes   int
	clients []network.Client
	queue   []*network.Message
	ids     []uint64
}

func (f *sModelFabric) Send(nm *network.Message) {
	f.queue = append(f.queue, nm)
	var msg coherence.Msg
	switch p := nm.Payload.(type) {
	case *coherence.Msg:
		msg = *p
	case coherence.Msg:
		msg = p
	default:
		panic(fmt.Sprintf("snoop model: foreign payload %T", nm.Payload))
	}
	f.ids = append(f.ids, f.m.mint(snoopEvent{msg: msg, dst: nm.Dst}))
}

func (f *sModelFabric) Kick(network.NodeID)                             {}
func (f *sModelFabric) AttachClient(n network.NodeID, c network.Client) { f.clients[n] = c }
func (f *sModelFabric) NumNodes() int                                   { return f.nodes }

// snoopModel implements explore.Model.
type snoopModel struct {
	cfg  SExploreConfig
	pcfg Config

	k   *sim.Kernel
	bus *modelBus
	f   *sModelFabric
	p   *Protocol

	nextID uint64
	events map[uint64]snoopEvent

	detected     bool
	detectReason string
	completed    int
	want         int
	doneOps      []int
	cornerBase   uint64

	addrbuf []uint64
	keybuf  []uint64
}

func newSnoopModel(cfg SExploreConfig) *snoopModel {
	pcfg := DefaultConfig(cfg.Nodes, cfg.Variant)
	// A single-frame L2 makes every second block a guaranteed eviction:
	// the writeback races the harness must reach cost one extra access
	// instead of a long warm-up.
	pcfg.L2Bytes, pcfg.L2Ways = 64, 1
	pcfg.L1Bytes, pcfg.L1Ways = 64, 1
	m := &snoopModel{cfg: cfg, pcfg: pcfg}
	for _, ops := range cfg.Script {
		m.want += len(ops)
	}
	return m
}

func (m *snoopModel) mint(ev snoopEvent) uint64 {
	m.nextID++ // IDs start at 1: 0 stays free as a sentinel
	m.events[m.nextID] = ev
	return m.nextID
}

func (m *snoopModel) Reset() {
	m.k = sim.NewKernel()
	m.nextID = 0
	m.events = make(map[uint64]snoopEvent)
	m.bus = &modelBus{m: m}
	m.f = &sModelFabric{m: m, nodes: m.cfg.Nodes, clients: make([]network.Client, m.cfg.Nodes)}
	m.p = New(m.k, m.bus, m.f, m.pcfg, nil)
	m.detected = false
	m.detectReason = ""
	m.completed = 0
	m.doneOps = make([]int, len(m.cfg.Script))
	m.cornerBase = m.p.Stats().CornerHandled.Value()
	m.p.OnMisSpeculation = func(reason string) {
		m.detected = true
		m.detectReason = reason
		// Exploration treats detection as a terminal, correct outcome:
		// recovery would restore a checkpoint, which is verified by
		// the system-level tests. Clear state so the run ends cleanly.
		m.p.ResetTransients()
		m.bus.Reset()
		m.f.queue = nil
		m.f.ids = nil
	}
	for n, ops := range m.cfg.Script {
		n, ops := n, ops
		var issue func(i int)
		issue = func(i int) {
			if i >= len(ops) || m.detected {
				return
			}
			m.p.Access(coherence.NodeID(n), ops[i].Addr, ops[i].Kind, func() {
				m.completed++
				m.doneOps[n]++
				issue(i + 1)
			})
		}
		issue(0)
	}
	m.drain()
}

func (m *snoopModel) drain() {
	if !m.k.Drain(1_000_000) {
		panic("snoop model: event flood (1e6 events without quiescence)")
	}
}

func snoopKey(ev snoopEvent) uint64 {
	seed := uint64(3)
	if ev.grant {
		seed = 4
	}
	return explore.HashBytes(seed,
		uint64(ev.dst), uint64(ev.msg.Kind), uint64(ev.msg.Addr), uint64(ev.msg.From),
		uint64(ev.msg.Requestor), ev.msg.Version)
}

func (m *snoopModel) Enabled(buf []explore.Transition) []explore.Transition {
	for i, id := range m.bus.ids {
		ev := m.events[id]
		buf = append(buf, explore.Transition{
			ID:  id,
			Key: snoopKey(ev),
			// A grant is observed by every controller: global.
			Ctrl:  explore.CtrlGlobal,
			Block: int64(uint64(m.bus.queue[i].Addr) / coherence.BlockBytes),
		})
	}
	for i, id := range m.f.ids {
		ev := m.events[id]
		buf = append(buf, explore.Transition{
			ID:    id,
			Key:   snoopKey(ev),
			Ctrl:  int32(m.f.queue[i].Dst),
			Block: int64(uint64(ev.msg.Addr) / coherence.BlockBytes),
		})
	}
	return buf
}

func (m *snoopModel) Take(id uint64) explore.Step {
	for i, bid := range m.bus.ids {
		if bid == id {
			m.bus.grant(i)
			m.drain()
			if m.detected {
				return explore.Detected
			}
			return explore.Progressed
		}
	}
	for i, fid := range m.f.ids {
		if fid == id {
			// Remove before delivering: a detection inside Deliver
			// clears the queue outright.
			nm := m.f.queue[i]
			m.f.queue = append(m.f.queue[:i:i], m.f.queue[i+1:]...)
			m.f.ids = append(m.f.ids[:i:i], m.f.ids[i+1:]...)
			if !m.f.clients[nm.Dst].Deliver(nm) {
				// Back-pressured (Data needing the occupied writeback
				// TBE): the message stays in flight, state unchanged.
				m.f.queue = append(m.f.queue, nm)
				m.f.ids = append(m.f.ids, id)
				return explore.Blocked
			}
			m.drain()
			if m.detected {
				return explore.Detected
			}
			return explore.Progressed
		}
	}
	panic(fmt.Sprintf("snoop model: take of unknown event id %d", id))
}

func (m *snoopModel) Finish() explore.PathOutcome {
	switch {
	case m.detected:
		out := explore.PathOutcome{Status: explore.StatusDetected}
		if m.cfg.Variant == Full {
			out.Err = "full variant mis-speculated: " + m.detectReason
		} else if n := m.p.InFlight(); n != 0 {
			out.Err = fmt.Sprintf("recovery left %d transactions in flight", n)
		}
		return out
	case m.completed == m.want && m.p.InFlight() == 0:
		out := explore.PathOutcome{Status: explore.StatusCompleted}
		if err := m.p.AuditInvariants(); err != nil {
			out.Err = err.Error()
		}
		// Flag paths on which the Full variant absorbed the §3.2
		// corner through its specified transition — evidence the
		// exploration actually reaches the race the Spec variant
		// leaves to speculation.
		out.Flagged = m.p.Stats().CornerHandled.Value() > m.cornerBase
		return out
	default:
		return explore.PathOutcome{
			Status: explore.StatusStuck,
			Err: fmt.Sprintf("stuck with %d/%d completed, %d in flight, %d bus + %d data queued",
				m.completed, m.want, m.p.InFlight(), len(m.bus.queue), len(m.f.queue)),
		}
	}
}

func (m *snoopModel) Describe(id uint64) string {
	ev, ok := m.events[id]
	if !ok {
		return fmt.Sprintf("event#%d", id)
	}
	if ev.grant {
		return fmt.Sprintf("grant{%s}", ev.msg)
	}
	return fmt.Sprintf("deliver{%s}->n%d", ev.msg, ev.dst)
}

// Encode writes the canonical machine state: cache arrays in per-set
// LRU order, TBEs with their obligation queues, memory-controller
// owner tracking and versions, script positions, and both pending
// queues — the unordered bus queue and the data fabric as multisets
// (their order is the engine's choice, not state). Sequence numbers,
// simulated time and epochs are excluded.
func (m *snoopModel) Encode(e *explore.Enc) {
	e.Bool(m.detected)
	for n := range m.doneOps {
		e.Int(m.doneOps[n])
	}
	for _, c := range m.p.caches {
		e.U8(0xA0)
		c.l2.ForEachSetLRU(func(set int, l *cache.Line) {
			e.Int(set)
			e.U64(uint64(l.Addr))
			e.U8(l.State)
			e.U64(l.Version)
		})
		e.U8(0xA1)
		if t := c.req; t != nil {
			e.Bool(true)
			e.U64(uint64(t.addr))
			e.U8(uint8(t.state))
			e.Bool(t.isStore)
			e.Bool(t.doomed)
			e.Bool(t.obClosed)
			e.Int(len(t.obs))
			for _, ob := range t.obs { // served in bus order: keep order
				e.U64(uint64(ob.node))
				e.Bool(ob.isGetM)
			}
		} else {
			e.Bool(false)
		}
		if w := c.wb; w != nil {
			e.Bool(true)
			e.U64(uint64(w.addr))
			e.U8(uint8(w.state))
			e.U64(w.version)
		} else {
			e.Bool(false)
		}
		e.Int(len(c.parked))
		for _, pk := range c.parked {
			e.U64(uint64(pk.addr))
			e.U8(uint8(pk.kind))
		}
	}
	for _, mc := range m.p.mems {
		e.U8(0xA2)
		m.addrbuf = m.addrbuf[:0]
		for a := range mc.owner {
			m.addrbuf = append(m.addrbuf, uint64(a))
		}
		sortU64s(m.addrbuf)
		for _, a := range m.addrbuf {
			e.U64(a)
			e.Int(mc.owner[coherence.Addr(a)])
		}
		e.U8(0xA3)
		m.addrbuf = m.addrbuf[:0]
		mc.store.ForEach(func(a coherence.Addr, v uint64) {
			m.addrbuf = append(m.addrbuf, uint64(a))
		})
		sortU64s(m.addrbuf)
		for _, a := range m.addrbuf {
			e.U64(a)
			e.U64(mc.store.Read(coherence.Addr(a)))
		}
	}
	m.keybuf = m.keybuf[:0]
	for _, id := range m.bus.ids {
		m.keybuf = append(m.keybuf, snoopKey(m.events[id]))
	}
	e.Multiset(m.keybuf)
	m.keybuf = m.keybuf[:0]
	for _, id := range m.f.ids {
		m.keybuf = append(m.keybuf, snoopKey(m.events[id]))
	}
	e.Multiset(m.keybuf)
}

func sortU64s(v []uint64) { slices.Sort(v) }
