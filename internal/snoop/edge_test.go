package snoop

import (
	"testing"

	"specsimp/internal/coherence"
	"specsimp/internal/sim"
)

// TestObligationChain: a requestor whose GetM is ordered queues supply
// obligations for later-ordered requests and serves them when its data
// arrives — first a reader (stays O), then a writer (goes I).
func TestObligationChain(t *testing.T) {
	k, p := build(t, Full, 4)
	run(t, k, p, 0, blkA, coherence.Store) // node0 owns, v1
	var d1, d2, d3 bool
	// Submission order = bus order: node1 GetM, node2 GetS, node3 GetM.
	p.Access(1, blkA, coherence.Store, func() { d1 = true })
	p.Access(2, blkA, coherence.Load, func() { d2 = true })
	p.Access(3, blkA, coherence.Store, func() { d3 = true })
	k.Drain(10_000_000)
	if !d1 || !d2 || !d3 {
		t.Fatalf("completions: %v %v %v", d1, d2, d3)
	}
	// node1's store (v2) read by node2, then node3's store (v3).
	if v := p.BlockVersion(blkA); v != 3 {
		t.Fatalf("version=%d want 3", v)
	}
	if st := p.CacheState(3, blkA); st != SM {
		t.Fatalf("node3=%s want M", st)
	}
	if st := p.CacheState(1, blkA); st != SI {
		t.Fatalf("node1=%s want I after serving the GetM obligation", st)
	}
	if p.Stats().ObligationsServed.Value() < 2 {
		t.Fatalf("obligations served=%d want >=2", p.Stats().ObligationsServed.Value())
	}
	if err := p.AuditInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestObligationQueueClosesAfterGetM: obligations after a foreign GetM
// belong to the new owner, not to us.
func TestObligationQueueClosesAfterGetM(t *testing.T) {
	k, p := build(t, Full, 4)
	run(t, k, p, 0, blkA, coherence.Store)
	var done [4]bool
	p.Access(1, blkA, coherence.Store, func() { done[1] = true })
	p.Access(2, blkA, coherence.Store, func() { done[2] = true }) // closes node1's queue
	p.Access(3, blkA, coherence.Store, func() { done[3] = true }) // node2's obligation
	k.Drain(10_000_000)
	if !done[1] || !done[2] || !done[3] {
		t.Fatalf("completions: %v", done)
	}
	if v := p.BlockVersion(blkA); v != 4 {
		t.Fatalf("version=%d want 4 (four stores)", v)
	}
	if err := p.AuditInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestOwnerUpgradeAtOrder: an O owner's upgrade completes at its own
// bus order with its own data (no supplier).
func TestOwnerUpgradeAtOrder(t *testing.T) {
	k, p := build(t, Full, 4)
	run(t, k, p, 1, blkA, coherence.Store) // M v1
	run(t, k, p, 2, blkA, coherence.Load)  // node1 -> O
	run(t, k, p, 1, blkA, coherence.Store) // OM_AD -> M at own order
	if st := p.CacheState(1, blkA); st != SM {
		t.Fatalf("state=%s want M", st)
	}
	if v := p.BlockVersion(blkA); v != 2 {
		t.Fatalf("version=%d want 2", v)
	}
	if err := p.AuditInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestOwnerUpgradeLosesRace: a foreign GetM ordered ahead of the O
// owner's upgrade takes the data; the upgrade then completes from the
// new owner's supply.
func TestOwnerUpgradeLosesRace(t *testing.T) {
	k, p := build(t, Full, 4)
	run(t, k, p, 1, blkA, coherence.Store) // node1 M v1
	run(t, k, p, 2, blkA, coherence.Load)  // node1 O
	var d1, d3 bool
	p.Access(3, blkA, coherence.Store, func() { d3 = true }) // ordered first
	p.Access(1, blkA, coherence.Store, func() { d1 = true }) // upgrade loses
	k.Drain(10_000_000)
	if !d1 || !d3 {
		t.Fatalf("d1=%v d3=%v", d1, d3)
	}
	if v := p.BlockVersion(blkA); v != 3 {
		t.Fatalf("version=%d want 3", v)
	}
	if st := p.CacheState(1, blkA); st != SM {
		t.Fatalf("node1=%s want M (its upgrade ordered last)", st)
	}
	if err := p.AuditInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestWritebackServesReaders: GetS requests ordered before the PutM are
// served by the writing-back owner, which remains responsible until its
// writeback is ordered.
func TestWritebackServesReaders(t *testing.T) {
	k, p := build(t, Full, 4)
	run(t, k, p, 1, blkA, coherence.Store)
	var d2 bool
	p.Access(2, blkA, coherence.Load, func() { d2 = true })
	k.Run(k.Now() + 1)
	if !p.Flush(1, blkA) {
		t.Fatal("flush refused")
	}
	k.Drain(10_000_000)
	if !d2 {
		t.Fatal("reader starved by the writeback")
	}
	if st := p.CacheState(2, blkA); st != SS {
		t.Fatalf("reader=%s want S", st)
	}
	if v := p.MemVersion(blkA); v != 1 {
		t.Fatalf("memory=%d want 1 (writeback landed)", v)
	}
	if err := p.AuditInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSnoopRecoveryConsistency: force the corner case under Spec with
// full SafetyNet-style reset wiring at the protocol level, then verify
// the system remains usable and consistent.
func TestSnoopRecoveryConsistency(t *testing.T) {
	k, p, _ := raceSetup(t, Spec)
	recovered := false
	p.OnMisSpeculation = func(reason string) {
		recovered = true
		p.ResetTransients()
		p.bus.Reset()
	}
	k.Drain(10_000_000)
	if !recovered {
		t.Fatal("corner case not detected")
	}
	// The protocol must accept fresh work after the reset.
	done := false
	p.Access(0, blkB, coherence.Store, func() { done = true })
	k.Drain(10_000_000)
	if !done {
		t.Fatal("protocol wedged after recovery reset")
	}
}

// TestSnoopDeterministicReplay: identical snooping runs agree exactly.
func TestSnoopDeterministicReplay(t *testing.T) {
	run := func() (uint64, sim.Time) {
		k, p := build(t, Full, 16)
		total := 0
		r := sim.NewRNG(31)
		for n := 0; n < 16; n++ {
			n := n
			remaining := 40
			var issue func()
			issue = func() {
				if remaining == 0 {
					return
				}
				remaining--
				a := coherence.Addr(r.Intn(8) * 64)
				p.Access(coherence.NodeID(n), a, coherence.Store, func() {
					total++
					k.After(10, issue)
				})
			}
			k.At(sim.Time(n*3), issue)
		}
		k.Drain(100_000_000)
		return p.Bus().Ordered(), k.Now()
	}
	o1, t1 := run()
	o2, t2 := run()
	if o1 != o2 || t1 != t2 {
		t.Fatalf("nondeterminism: (%d,%d) vs (%d,%d)", o1, t1, o2, t2)
	}
}
