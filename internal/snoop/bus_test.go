package snoop

import "testing"

// TestScaledBusConfig pins the address-network scaling model: the flat
// diameter-scaled bus up to 64 nodes (bit-identical to the historical
// formula, and to DefaultBusConfig at the paper's 4×4), the segmented
// hierarchical variant beyond, with latency monotone in machine size.
func TestScaledBusConfig(t *testing.T) {
	if got, want := ScaledBusConfig(4, 4), DefaultBusConfig(16); got != want {
		t.Fatalf("4x4 diverged from DefaultBusConfig: %+v vs %+v", got, want)
	}
	cases := []struct {
		w, h    int
		deliver int64
	}{
		{4, 4, 25},   // flat: 5 + 5*(2+2)
		{8, 8, 45},   // flat: 5 + 5*(4+4) — the 64-node ceiling, unchanged
		{16, 16, 95}, // segmented: 5 + 5*8 (to hub) + 5*2 (hub ring) + 5*8 (fan-out)
		{32, 32, 5 + 40 + 20 + 40},
	}
	for _, c := range cases {
		cfg := ScaledBusConfig(c.w, c.h)
		if cfg.Nodes != c.w*c.h {
			t.Errorf("%dx%d: nodes %d", c.w, c.h, cfg.Nodes)
		}
		if int64(cfg.DeliverLatency) != c.deliver {
			t.Errorf("%dx%d: deliver latency %d, want %d", c.w, c.h, cfg.DeliverLatency, c.deliver)
		}
		if cfg.ArbInterval != 5 {
			t.Errorf("%dx%d: arb interval %d", c.w, c.h, cfg.ArbInterval)
		}
	}
	prev := ScaledBusConfig(2, 2).DeliverLatency
	for _, side := range []int{4, 8, 12, 16, 24, 32} {
		d := ScaledBusConfig(side, side).DeliverLatency
		if d < prev {
			t.Fatalf("delivery latency not monotone at %dx%d: %d < %d", side, side, d, prev)
		}
		prev = d
	}
}
