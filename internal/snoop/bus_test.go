package snoop

import (
	"testing"

	"specsimp/internal/coherence"
	"specsimp/internal/sim"
)

// TestScaledBusConfig pins the address-network scaling model: the flat
// diameter-scaled bus up to 64 nodes (bit-identical to the historical
// formula, and to DefaultBusConfig at the paper's 4×4), the segmented
// hierarchical variant beyond, with latency monotone in machine size.
func TestScaledBusConfig(t *testing.T) {
	if got, want := ScaledBusConfig(4, 4), DefaultBusConfig(16); got != want {
		t.Fatalf("4x4 diverged from DefaultBusConfig: %+v vs %+v", got, want)
	}
	// The uncontended end-to-end latency (collect leg + ordering-to-
	// delivery leg) must match the historical flat formula at every
	// size: segmenting decomposed the pipeline, it did not re-price it.
	cases := []struct {
		w, h       int
		total      int64
		segmented  bool
		segR, segC int
	}{
		{4, 4, 25, false, 0, 0},                // flat: 5 + 5*(2+2)
		{8, 8, 45, false, 0, 0},                // flat: 5 + 5*(4+4) — the 64-node ceiling, unchanged
		{16, 16, 95, true, 2, 2},               // 5 + 5*8 (to hub) + 5*2 (hub ring) + 5*8 (fan-out)
		{32, 32, 5 + 40 + 20 + 40, true, 4, 4}, // 8×8 segments
	}
	for _, c := range cases {
		cfg := ScaledBusConfig(c.w, c.h)
		if cfg.Nodes != c.w*c.h {
			t.Errorf("%dx%d: nodes %d", c.w, c.h, cfg.Nodes)
		}
		if got := int64(cfg.CollectLatency + cfg.DeliverLatency); got != c.total {
			t.Errorf("%dx%d: end-to-end latency %d, want %d", c.w, c.h, got, c.total)
		}
		if cfg.Segmented() != c.segmented || cfg.SegRows != c.segR || cfg.SegCols != c.segC {
			t.Errorf("%dx%d: segments %dx%d (segmented=%v), want %dx%d (%v)",
				c.w, c.h, cfg.SegRows, cfg.SegCols, cfg.Segmented(), c.segR, c.segC, c.segmented)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("%dx%d: config invalid: %v", c.w, c.h, err)
		}
		if cfg.ArbInterval != 5 {
			t.Errorf("%dx%d: arb interval %d", c.w, c.h, cfg.ArbInterval)
		}
	}
	prev := ScaledBusConfig(2, 2).DeliverLatency
	for _, side := range []int{4, 8, 12, 16, 24, 32} {
		cfg := ScaledBusConfig(side, side)
		d := cfg.CollectLatency + cfg.DeliverLatency
		if d < prev {
			t.Fatalf("delivery latency not monotone at %dx%d: %d < %d", side, side, d, prev)
		}
		prev = d
	}
}

// orderLog records every broadcast an observer sees, for asserting the
// segmented bus's global-order guarantees.
type orderLog struct {
	seqs  []uint64
	froms []coherence.NodeID
}

func (l *orderLog) OnOrdered(seq uint64, msg coherence.Msg) {
	l.seqs = append(l.seqs, seq)
	l.froms = append(l.froms, msg.From)
}

// TestSegmentedBusOrdering drives the segmented address network as a
// simulated component: hub-arrival order (not submit order) assigns
// sequence numbers, every observer sees the one total order with
// strictly increasing delivery times, local arbiters serialize
// same-segment submissions, and Reset drops requests still in local
// arbitration or in flight to the hub.
func TestSegmentedBusOrdering(t *testing.T) {
	k := sim.NewKernel()
	cfg := ScaledBusConfig(16, 16) // 2x2 segments of 8x8 nodes
	if !cfg.Segmented() {
		t.Fatal("16x16 bus config is not segmented")
	}
	b := NewBus(k, cfg)
	logs := [2]orderLog{}
	b.Attach(&logs[0])
	b.Attach(&logs[1])

	// Node 0 is in segment 0. Node 255 (x=15, y=15) is in segment 3 —
	// same CollectLatency, so with both submitted at t=0 the hub breaks
	// the tie in submit order. Nodes 1..3 (segment 0) contend with node
	// 0 for the local arbiter, arriving at the hub one SegArbInterval
	// apart, so a later submit from an idle segment's node 255 would
	// overtake them — exercised by submitting it after the segment-0
	// burst.
	for _, n := range []coherence.NodeID{0, 1, 2, 3} {
		b.Submit(coherence.Msg{From: n})
	}
	b.Submit(coherence.Msg{From: 255})
	k.Run(1_000)

	wantFrom := []coherence.NodeID{0, 255, 1, 2, 3}
	for i := range logs {
		if len(logs[i].seqs) != 5 {
			t.Fatalf("observer %d saw %d broadcasts, want 5", i, len(logs[i].seqs))
		}
		for j, s := range logs[i].seqs {
			if s != uint64(j) {
				t.Fatalf("observer %d saw seq %d at position %d", i, s, j)
			}
		}
		for j, f := range logs[i].froms {
			if f != wantFrom[j] {
				t.Fatalf("observer %d order %v, want %v", i, logs[i].froms, wantFrom)
			}
		}
	}
	if got := b.Ordered(); got != 5 {
		t.Fatalf("Ordered() = %d, want 5", got)
	}

	// Reset mid-flight: submit, reset before the collect leg lands,
	// and verify the request is dropped at the hub.
	b.Submit(coherence.Msg{From: 7})
	b.Reset()
	k.Run(k.Now() + 1_000)
	if got := b.Ordered(); got != 5 {
		t.Fatalf("request submitted before Reset was ordered anyway: Ordered() = %d", got)
	}
	b.Submit(coherence.Msg{From: 9})
	k.Run(k.Now() + 1_000)
	if got := b.Ordered(); got != 6 {
		t.Fatalf("bus dead after Reset: Ordered() = %d, want 6", got)
	}
}
