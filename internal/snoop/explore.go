package snoop

import (
	"fmt"

	"specsimp/internal/coherence"
	"specsimp/internal/network"
	"specsimp/internal/sim"
)

// This file ports the directory protocol's explicit-state exploration
// harness (internal/directory/explore.go) to the snooping protocol: it
// exhaustively enumerates delivery orders for a small configuration and
// verifies every outcome.
//
// Two orders are explored jointly. The address network's arbitration
// order: any submitted-but-unordered request may be granted next (a
// superset of the timed bus's FIFO arbitration — the protocol must not
// depend on arbiter fairness). And the data fabric's delivery order:
// data messages arrive in any order, as on the unordered torus. Within
// the explored bounds this *proves* the paper's framework feature (2)
// for the §3.2 design: the Spec variant, under every interleaving,
// either completes with intact invariants or detects the corner case at
// its single unspecified transition (a cache in WB_AI observing a
// second foreign RequestReadWrite); and the Full variant, which
// specifies that transition, never mis-speculates at all.

// SScriptOp is one processor operation in an exploration scenario.
type SScriptOp struct {
	Addr coherence.Addr
	Kind coherence.AccessType
}

// SExploreConfig bounds an exploration of the snooping protocol.
type SExploreConfig struct {
	Variant Variant
	Nodes   int
	// Script holds each node's access sequence; a node issues its next
	// operation when the previous one completes.
	Script [][]SScriptOp
	// MaxPaths caps the number of interleavings explored (0 = 1<<20).
	MaxPaths int
	// MaxDepth caps delivery steps per path (guards runaway paths).
	MaxDepth int
}

// SExploreResult summarizes an exploration.
type SExploreResult struct {
	Paths     int // interleavings executed
	Completed int // paths where every scripted access finished
	Detected  int // paths ending in a detected corner-case (Spec)
	// CornerHandled counts paths on which the Full variant absorbed the
	// corner case through its specified transition — evidence that the
	// exploration actually reaches the race the Spec variant leaves to
	// speculation.
	CornerHandled int
	Truncated     bool
	// Violations collects descriptions of any incorrect outcome
	// (invariant breakage, stuck path, wrong completion count).
	Violations []string
}

// Ok reports whether no violations were found.
func (r SExploreResult) Ok() bool { return len(r.Violations) == 0 }

// exploreBus is an AddressNet under external control: submitted requests
// queue unordered until the explorer grants one, which is then observed
// by every attached observer in grant order.
type exploreBus struct {
	observers []BusObserver
	queue     []coherence.Msg
	seq       uint64
	ordered   uint64
	epoch     uint64
}

func (b *exploreBus) Submit(msg coherence.Msg) { b.queue = append(b.queue, msg) }
func (b *exploreBus) Attach(o BusObserver)     { b.observers = append(b.observers, o) }
func (b *exploreBus) Ordered() uint64          { return b.ordered }
func (b *exploreBus) Reset() {
	b.epoch++
	b.queue = nil
}

// order grants the i-th queued request: it receives the next global
// sequence number and is broadcast to all observers. A recovery fired
// mid-broadcast aborts the remaining observers, like the timed Bus.
func (b *exploreBus) order(i int) {
	msg := b.queue[i]
	b.queue = append(b.queue[:i:i], b.queue[i+1:]...)
	seq := b.seq
	b.seq++
	b.ordered++
	epoch := b.epoch
	for _, o := range b.observers {
		if b.epoch != epoch {
			return
		}
		o.OnOrdered(seq, msg)
	}
}

// sExploreFabric delivers data messages under external control.
type sExploreFabric struct {
	nodes   int
	clients []network.Client
	queue   []*network.Message
}

func (f *sExploreFabric) Send(m *network.Message)                         { f.queue = append(f.queue, m) }
func (f *sExploreFabric) Kick(network.NodeID)                             {}
func (f *sExploreFabric) AttachClient(n network.NodeID, c network.Client) { f.clients[n] = c }
func (f *sExploreFabric) NumNodes() int                                   { return f.nodes }

// ExploreSnoop enumerates delivery interleavings depth-first, exactly
// like directory.Explore: paths are identified by their choice prefixes,
// each run replays a prefix and then takes the first available choice
// until quiescent, recording branch widths so unexplored siblings are
// queued.
func ExploreSnoop(cfg SExploreConfig) SExploreResult {
	if cfg.MaxPaths == 0 {
		cfg.MaxPaths = 1 << 20
	}
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = 200
	}
	res := SExploreResult{}
	work := [][]int{{}}
	for len(work) > 0 {
		if res.Paths >= cfg.MaxPaths {
			res.Truncated = true
			break
		}
		prefix := work[len(work)-1]
		work = work[:len(work)-1]
		widths := runSnoopPath(cfg, prefix, &res)
		res.Paths++
		for i := len(prefix); i < len(widths); i++ {
			for c := 1; c < widths[i]; c++ {
				branch := make([]int, i+1)
				copy(branch, prefix)
				branch[i] = c
				work = append(work, branch)
			}
		}
	}
	return res
}

// runSnoopPath executes one interleaving. A panic (an unspecified
// protocol transition) is captured and recorded with the offending path
// — the most interesting violation an exploration can find.
func runSnoopPath(cfg SExploreConfig, prefix []int, res *SExploreResult) (widthsOut []int) {
	defer func() {
		if r := recover(); r != nil {
			res.Violations = append(res.Violations,
				fmt.Sprintf("path %v: panic: %v", prefix, r))
		}
	}()
	return runSnoopPathInner(cfg, prefix, res)
}

func runSnoopPathInner(cfg SExploreConfig, prefix []int, res *SExploreResult) []int {
	k := sim.NewKernel()
	bus := &exploreBus{}
	f := &sExploreFabric{nodes: cfg.Nodes, clients: make([]network.Client, cfg.Nodes)}
	pcfg := DefaultConfig(cfg.Nodes, cfg.Variant)
	// A single-frame L2 makes every second block a guaranteed eviction:
	// the writeback races the harness must reach cost one extra access
	// instead of a long warm-up.
	pcfg.L2Bytes, pcfg.L2Ways = 64, 1
	pcfg.L1Bytes, pcfg.L1Ways = 64, 1
	p := New(k, bus, f, pcfg, nil)
	cornerBase := p.Stats().CornerHandled.Value()
	detected := false
	p.OnMisSpeculation = func(reason string) {
		detected = true
		// Exploration treats detection as a terminal, correct outcome:
		// recovery would restore a checkpoint, which is verified by the
		// system-level tests. Clear state so the run ends cleanly.
		p.ResetTransients()
		bus.Reset()
		f.queue = nil
	}

	completed := 0
	want := 0
	for n, ops := range cfg.Script {
		want += len(ops)
		n := n
		ops := ops
		var issue func(i int)
		issue = func(i int) {
			if i >= len(ops) || detected {
				return
			}
			p.Access(coherence.NodeID(n), ops[i].Addr, ops[i].Kind, func() {
				completed++
				issue(i + 1)
			})
		}
		issue(0)
	}

	var widths []int
	step := 0
	for {
		k.Drain(1_000_000)
		nChoices := len(bus.queue) + len(f.queue)
		if detected || nChoices == 0 {
			break
		}
		if step >= cfg.MaxDepth {
			res.Violations = append(res.Violations,
				fmt.Sprintf("path %v: exceeded depth %d", prefix, cfg.MaxDepth))
			return widths
		}
		choice := 0
		if step < len(prefix) {
			choice = prefix[step]
		}
		widths = append(widths, nChoices)
		if choice >= nChoices {
			res.Violations = append(res.Violations,
				fmt.Sprintf("path %v: branch %d missing at step %d (%d choices)", prefix, choice, step, nChoices))
			return widths
		}
		if choice < len(bus.queue) {
			// Grant a queued address-network request.
			bus.order(choice)
		} else {
			// Deliver a queued data message.
			i := choice - len(bus.queue)
			m := f.queue[i]
			f.queue = append(f.queue[:i:i], f.queue[i+1:]...)
			if !f.clients[m.Dst].Deliver(m) {
				// Back-pressured (Data needing the occupied writeback
				// TBE): requeue; progress comes from another choice.
				f.queue = append(f.queue, m)
			}
		}
		step++
	}

	switch {
	case detected:
		res.Detected++
		if cfg.Variant == Full {
			res.Violations = append(res.Violations,
				fmt.Sprintf("path %v: full variant mis-speculated", prefix))
		}
	case completed == want && p.InFlight() == 0:
		res.Completed++
		if p.Stats().CornerHandled.Value() > cornerBase {
			res.CornerHandled++
		}
		if err := p.AuditInvariants(); err != nil {
			res.Violations = append(res.Violations,
				fmt.Sprintf("path %v: %v", prefix, err))
		}
	default:
		res.Violations = append(res.Violations,
			fmt.Sprintf("path %v: stuck with %d/%d completed, %d in flight, %d bus + %d data queued",
				prefix, completed, want, p.InFlight(), len(bus.queue), len(f.queue)))
	}
	return widths
}
