package snoop

import (
	"specsimp/internal/coherence"
	"specsimp/internal/explore"
)

// This file is the snooping protocol's front-end to the shared
// model-checking engine (internal/explore; the model adapter lives in
// model.go).
//
// Two orders are explored jointly. The address network's arbitration
// order: any submitted-but-unordered request may be granted next (a
// superset of the timed bus's FIFO arbitration — the protocol must not
// depend on arbiter fairness). And the data fabric's delivery order:
// data messages arrive in any order, as on the unordered torus. Within
// the explored bounds this *proves* the paper's framework feature (2)
// for the §3.2 design: the Spec variant, under every interleaving,
// either completes with intact invariants or detects the corner case
// at its single unspecified transition (a cache in WB_AI observing a
// second foreign RequestReadWrite); and the Full variant, which
// specifies that transition, never mis-speculates at all. Partial-
// order reduction and state hashing push the provable scenarios from
// the pre-PR-4 bound of 2 blocks × 3 nodes to 3+ blocks × 4+ nodes.

// SScriptOp is one processor operation in an exploration scenario.
type SScriptOp struct {
	Addr coherence.Addr
	Kind coherence.AccessType
}

// SExploreConfig bounds an exploration of the snooping protocol.
type SExploreConfig struct {
	Variant Variant
	Nodes   int
	// Script holds each node's access sequence; a node issues its next
	// operation when the previous one completes.
	Script [][]SScriptOp
	// MaxPaths caps the number of interleavings explored (0 = 1<<20),
	// applied per subtree task at every worker count (the frontier is
	// decomposed the same way regardless of Workers).
	MaxPaths int
	// MaxDepth caps grant/delivery steps per path (0 = engine default).
	MaxDepth int

	// Reduce selects the pruning mode (zero = sleep sets + state
	// dedup); NoDedup disables visited-state pruning. Workers and
	// ForkDepth tune the parallel frontier (results are identical for
	// every worker count). CollectTerminals records terminal-state
	// digests for cross-mode equivalence tests.
	Reduce           explore.Reduction
	NoDedup          bool
	Workers          int
	ForkDepth        int
	CollectTerminals bool
}

// SExploreResult summarizes an exploration.
type SExploreResult struct {
	Paths     int // interleavings executed to a terminal state
	Completed int // paths where every scripted access finished
	Detected  int // paths ending in a detected corner-case (Spec)
	// CornerHandled counts paths on which the Full variant absorbed the
	// corner case through its specified transition — evidence that the
	// exploration actually reaches the race the Spec variant leaves to
	// speculation.
	CornerHandled int
	// SleepCut / VisitedCut count subtrees pruned by the sleep-set and
	// visited-state reductions.
	SleepCut    int
	VisitedCut  int
	Transitions uint64
	Replayed    uint64
	Tasks       int
	Truncated   bool
	// Violations collects descriptions of any incorrect outcome
	// (invariant breakage, stuck path, unspecified-transition panic),
	// each with its reproducing grant/delivery trace.
	Violations []string
	// Terminals holds the terminal-state digest multiset when
	// CollectTerminals is set.
	Terminals map[explore.Digest]int
}

// Ok reports whether no violations were found.
func (r SExploreResult) Ok() bool { return len(r.Violations) == 0 }

// ExploreSnoop verifies every arbitration × delivery interleaving of
// cfg's scenario (within bounds) on the shared engine.
func ExploreSnoop(cfg SExploreConfig) SExploreResult {
	er := explore.Run(explore.Config{
		NewModel:         func() explore.Model { return newSnoopModel(cfg) },
		Reduction:        cfg.Reduce,
		StateDedup:       !cfg.NoDedup,
		MaxPaths:         cfg.MaxPaths,
		MaxDepth:         cfg.MaxDepth,
		Workers:          cfg.Workers,
		ForkDepth:        cfg.ForkDepth,
		CollectTerminals: cfg.CollectTerminals,
	})
	res := SExploreResult{
		Paths:         er.Paths,
		Completed:     er.Completed,
		Detected:      er.Detected,
		CornerHandled: er.Flagged,
		SleepCut:      er.SleepCut,
		VisitedCut:    er.VisitedCut,
		Transitions:   er.Transitions,
		Replayed:      er.Replayed,
		Tasks:         er.Tasks,
		Truncated:     er.Truncated,
		Terminals:     er.Terminals,
	}
	for _, v := range er.Violations {
		res.Violations = append(res.Violations, v.String())
	}
	return res
}
