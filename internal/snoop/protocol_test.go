package snoop

import (
	"testing"
	"testing/quick"

	"specsimp/internal/coherence"
	"specsimp/internal/network"
	"specsimp/internal/sim"
)

const (
	blkA = coherence.Addr(0)
	blkB = coherence.Addr(4 * 64)
	blkC = coherence.Addr(8 * 64)
)

func build(t *testing.T, v Variant, nodes int) (*sim.Kernel, *Protocol) {
	t.Helper()
	k := sim.NewKernel()
	side := 2
	if nodes == 16 {
		side = 4
	}
	data := network.New(k, network.SafeStaticConfig(side, nodes/side, 0.8))
	bus := NewBus(k, DefaultBusConfig(nodes))
	cfg := DefaultConfig(nodes, v)
	cfg.L2Bytes, cfg.L2Ways = 2*64, 2 // tiny: evictions on demand
	cfg.L1Bytes, cfg.L1Ways = 64, 1
	return k, New(k, bus, data, cfg, nil)
}

func run(t *testing.T, k *sim.Kernel, p *Protocol, node coherence.NodeID, a coherence.Addr, kind coherence.AccessType) {
	t.Helper()
	ok := false
	p.Access(node, a, kind, func() { ok = true })
	if !k.Drain(10_000_000) {
		t.Fatal("kernel did not quiesce")
	}
	if !ok {
		t.Fatalf("access node=%d addr=%#x never completed", node, uint64(a))
	}
}

func TestSnoopLoadFromMemory(t *testing.T) {
	k, p := build(t, Full, 4)
	run(t, k, p, 1, blkA, coherence.Load)
	if st := p.CacheState(1, blkA); st != SS {
		t.Fatalf("state=%s want S", st)
	}
	if err := p.AuditInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSnoopStoreAndUpgrade(t *testing.T) {
	k, p := build(t, Full, 4)
	run(t, k, p, 1, blkA, coherence.Store)
	if st := p.CacheState(1, blkA); st != SM {
		t.Fatalf("state=%s want M", st)
	}
	if v := p.BlockVersion(blkA); v != 1 {
		t.Fatalf("version=%d want 1", v)
	}
	run(t, k, p, 2, blkA, coherence.Load) // owner supplies; M->O
	if st := p.CacheState(1, blkA); st != SO {
		t.Fatalf("owner state=%s want O", st)
	}
	run(t, k, p, 1, blkA, coherence.Store) // O upgrade at own order
	if st := p.CacheState(1, blkA); st != SM {
		t.Fatalf("state=%s want M after upgrade", st)
	}
	if st := p.CacheState(2, blkA); st != SI {
		t.Fatalf("old sharer=%s want I", st)
	}
	if v := p.BlockVersion(blkA); v != 2 {
		t.Fatalf("version=%d want 2", v)
	}
	if err := p.AuditInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSnoopOwnershipChain(t *testing.T) {
	k, p := build(t, Full, 4)
	run(t, k, p, 0, blkA, coherence.Store)
	run(t, k, p, 1, blkA, coherence.Store)
	run(t, k, p, 2, blkA, coherence.Store)
	run(t, k, p, 3, blkA, coherence.Store)
	if v := p.BlockVersion(blkA); v != 4 {
		t.Fatalf("version=%d want 4 (no lost update)", v)
	}
	for n := coherence.NodeID(0); n < 3; n++ {
		if st := p.CacheState(n, blkA); st != SI {
			t.Fatalf("node %d state=%s want I", n, st)
		}
	}
	if err := p.AuditInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSnoopWritebackUpdatesMemory(t *testing.T) {
	k, p := build(t, Full, 4)
	run(t, k, p, 1, blkA, coherence.Store)
	if !p.Flush(1, blkA) {
		t.Fatal("flush refused")
	}
	k.Drain(10_000_000)
	if v := p.MemVersion(blkA); v != 1 {
		t.Fatalf("memory=%d want 1", v)
	}
	if st := p.CacheState(1, blkA); st != SI {
		t.Fatalf("state=%s want I after writeback", st)
	}
	if err := p.AuditInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSnoopEvictionWriteback(t *testing.T) {
	k, p := build(t, Full, 4)
	run(t, k, p, 1, blkA, coherence.Store)
	run(t, k, p, 1, blkB, coherence.Store)
	run(t, k, p, 1, blkC, coherence.Store) // evicts A
	if p.Stats().Writebacks.Value() == 0 {
		t.Fatal("no writeback on eviction")
	}
	k.Drain(10_000_000)
	if v := p.MemVersion(blkA); v != 1 {
		t.Fatalf("memory=%d want 1 after eviction writeback", v)
	}
	if err := p.AuditInvariants(); err != nil {
		t.Fatal(err)
	}
}

// raceSetup drives the system to the §3.2 corner: node1 owns A and
// issues a PutM; two foreign GetMs are ordered ahead of it.
func raceSetup(t *testing.T, v Variant) (*sim.Kernel, *Protocol, *int) {
	k, p := build(t, v, 4)
	run(t, k, p, 1, blkA, coherence.Store) // node1: M
	completions := new(int)
	done := func() { *completions++ }
	// Submission order = bus order: GetM(2), GetM(3), PutM(1). The
	// PutM is submitted before node1 observes GetM(2) (delivery takes
	// 25 cycles), so node1 is in WB_A when the race unfolds.
	p.Access(2, blkA, coherence.Store, done)
	p.Access(3, blkA, coherence.Store, done)
	k.Run(k.Now() + 1)
	if !p.Flush(1, blkA) {
		t.Fatal("flush refused; race setup broken")
	}
	if st := p.CacheState(1, blkA); st != SWBa {
		t.Fatalf("node1=%s want WB_A", st)
	}
	return k, p, completions
}

func TestSnoopCornerCaseFullHandles(t *testing.T) {
	k, p, completions := raceSetup(t, Full)
	if !k.Drain(10_000_000) {
		t.Fatal("did not quiesce")
	}
	if *completions != 2 {
		t.Fatalf("completions=%d want 2", *completions)
	}
	if p.Stats().CornerHandled.Value() != 1 {
		t.Fatalf("CornerHandled=%d want 1", p.Stats().CornerHandled.Value())
	}
	// node1's v1, node2's store (v2), node3's store (v3).
	if v := p.BlockVersion(blkA); v != 3 {
		t.Fatalf("version=%d want 3", v)
	}
	if st := p.CacheState(3, blkA); st != SM {
		t.Fatalf("node3=%s want M", st)
	}
	if p.Stats().ObligationsServed.Value() == 0 {
		t.Fatal("node2 should have served node3 via an obligation")
	}
	if err := p.AuditInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSnoopCornerCaseSpecDetects(t *testing.T) {
	k, p, _ := raceSetup(t, Spec)
	var reasons []string
	p.OnMisSpeculation = func(r string) {
		reasons = append(reasons, r)
		p.ResetTransients()
		p.bus.Reset()
	}
	k.Drain(10_000_000)
	if len(reasons) != 1 || reasons[0] != "snoop-corner" {
		t.Fatalf("reasons=%v want [snoop-corner]", reasons)
	}
	if p.Stats().CornerDetected.Value() != 1 {
		t.Fatalf("CornerDetected=%d want 1", p.Stats().CornerDetected.Value())
	}
}

func TestSnoopCornerRequiresTwoOutstanding(t *testing.T) {
	// With only one foreign GetM racing the writeback the Spec variant
	// must not mis-speculate — this is the property slow-start exploits
	// (limit outstanding transactions to 1 and the corner cannot recur).
	k, p := build(t, Spec, 4)
	p.OnMisSpeculation = func(r string) { t.Fatalf("unexpected mis-speculation %q", r) }
	run(t, k, p, 1, blkA, coherence.Store)
	done := 0
	p.Access(2, blkA, coherence.Store, func() { done++ })
	k.Run(k.Now() + 1)
	if !p.Flush(1, blkA) {
		t.Fatal("flush refused")
	}
	k.Drain(10_000_000)
	if done != 1 {
		t.Fatal("node2's store never completed")
	}
	if v := p.BlockVersion(blkA); v != 2 {
		t.Fatalf("version=%d want 2", v)
	}
	if err := p.AuditInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSnoopDoomedLoad(t *testing.T) {
	// A load whose S copy is invalidated (in bus order) before its data
	// arrives must still complete, without installing the dead line.
	k, p := build(t, Full, 4)
	run(t, k, p, 1, blkA, coherence.Store) // owner far away: slow supply path
	loaded := false
	p.Access(2, blkA, coherence.Load, func() { loaded = true })
	// Order a foreign GetM right behind the GetS.
	stored := false
	p.Access(3, blkA, coherence.Store, func() { stored = true })
	k.Drain(10_000_000)
	if !loaded || !stored {
		t.Fatalf("loaded=%v stored=%v", loaded, stored)
	}
	if st := p.CacheState(2, blkA); st != SI && st != SS {
		t.Fatalf("node2=%s want I (doomed) or S (raced ahead)", st)
	}
	if err := p.AuditInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSnoopComplexityCounts(t *testing.T) {
	full, spec := ComplexityOf(Full), ComplexityOf(Spec)
	if spec.Transitions != full.Transitions-1 {
		t.Fatalf("spec transitions=%d full=%d; exactly the corner case should differ", spec.Transitions, full.Transitions)
	}
}

// runSnoopStress mirrors the directory stress harness.
func runSnoopStress(t *testing.T, v Variant, seed uint64, opsPerNode, nblocks int, storeFrac float64) (*Protocol, map[coherence.Addr]int, int) {
	t.Helper()
	k, p := build(t, v, 16)
	stores := map[coherence.Addr]int{}
	completed := 0
	for n := 0; n < 16; n++ {
		n := n
		r := sim.NewRNG(seed*977 + uint64(n))
		remaining := opsPerNode
		var issue func()
		issue = func() {
			if remaining == 0 {
				return
			}
			remaining--
			a := coherence.Addr(r.Intn(nblocks) * 64)
			kind := coherence.Load
			if r.Bool(storeFrac) {
				kind = coherence.Store
				stores[a]++
			}
			p.Access(coherence.NodeID(n), a, kind, func() {
				completed++
				k.After(sim.Time(r.Intn(40)), issue)
			})
		}
		k.At(sim.Time(r.Intn(60)), issue)
	}
	if !k.Drain(300_000_000) {
		t.Fatal("stress did not quiesce")
	}
	return p, stores, completed
}

func TestSnoopStressFull(t *testing.T) {
	p, stores, completed := runSnoopStress(t, Full, 1, 120, 20, 0.5)
	if completed != 120*16 {
		t.Fatalf("completed=%d want %d", completed, 120*16)
	}
	if err := p.AuditInvariants(); err != nil {
		t.Fatal(err)
	}
	for a, n := range stores {
		if got := p.BlockVersion(a); got != uint64(n) {
			t.Fatalf("block %#x version=%d want %d", uint64(a), got, n)
		}
	}
}

func TestSnoopStressHotBlock(t *testing.T) {
	p, stores, completed := runSnoopStress(t, Full, 2, 60, 1, 1.0)
	if completed != 60*16 {
		t.Fatalf("completed=%d", completed)
	}
	if err := p.AuditInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := p.BlockVersion(0); got != uint64(stores[0]) {
		t.Fatalf("hot block version=%d want %d", got, stores[0])
	}
}

// Property: randomized snooping runs preserve every store (Full).
func TestSnoopStressProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("long property test")
	}
	f := func(seed uint64) bool {
		p, stores, completed := runSnoopStress(t, Full, seed%500, 50, 12, 0.5)
		if completed != 50*16 {
			return false
		}
		if err := p.AuditInvariants(); err != nil {
			t.Log(err)
			return false
		}
		for a, n := range stores {
			if p.BlockVersion(a) != uint64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestSnoopTimeoutWatchdog(t *testing.T) {
	k := sim.NewKernel()
	// A data fabric that drops everything: loads never complete.
	data := &blackholeFabric{nodes: 4}
	bus := NewBus(k, DefaultBusConfig(4))
	cfg := DefaultConfig(4, Spec)
	cfg.TimeoutCycles = 5000
	p := New(k, bus, data, cfg, nil)
	var reasons []string
	p.OnMisSpeculation = func(r string) {
		reasons = append(reasons, r)
		p.ResetTransients()
	}
	p.StartWatchdog(500)
	p.Access(1, blkA, coherence.Load, func() {})
	k.Run(20_000)
	if len(reasons) == 0 || reasons[0] != "deadlock-timeout" {
		t.Fatalf("reasons=%v", reasons)
	}
}

type blackholeFabric struct {
	nodes   int
	clients []network.Client
}

func (f *blackholeFabric) Send(*network.Message)                       {}
func (f *blackholeFabric) Kick(network.NodeID)                         {}
func (f *blackholeFabric) AttachClient(network.NodeID, network.Client) {}
func (f *blackholeFabric) NumNodes() int                               { return f.nodes }
