package snoop

import (
	"fmt"
	"slices"

	"specsimp/internal/cache"
	"specsimp/internal/coherence"
	"specsimp/internal/mem"
	"specsimp/internal/network"
	"specsimp/internal/pool"
	"specsimp/internal/sim"
	"specsimp/internal/stats"
)

// Config parameterizes the snooping protocol (paper Table 2 defaults).
type Config struct {
	Nodes   int
	Variant Variant

	L1Bytes, L1Ways int
	L2Bytes, L2Ways int

	L1Latency  sim.Time
	L2Latency  sim.Time
	MemLatency sim.Time

	// TimeoutCycles arms the transaction-timeout watchdog (0 = off).
	TimeoutCycles sim.Time
}

// DefaultConfig returns Table 2 parameters for n nodes.
func DefaultConfig(n int, v Variant) Config {
	return Config{
		Nodes:   n,
		Variant: v,
		L1Bytes: 128 * 1024, L1Ways: 4,
		L2Bytes: 4 * 1024 * 1024, L2Ways: 4,
		L1Latency: 1, L2Latency: 12, MemLatency: 120,
	}
}

// UndoLogger is the checkpointing hook (satisfied by *safetynet.Manager).
type UndoLogger interface {
	LogOldValue(node int, key uint64, undo func())
}

// Stats aggregates snooping protocol measurements.
type Stats struct {
	Loads, Stores     stats.Counter
	L1Hits, L2Hits    stats.Counter
	Transactions      stats.Counter
	Writebacks        stats.Counter
	ObligationsServed stats.Counter
	CornerDetected    stats.Counter // Spec: mis-speculations on the corner case
	CornerHandled     stats.Counter // Full: corner case absorbed by the specified no-op
	MissLatency       stats.Histogram
	TimeoutsDetected  stats.Counter
}

// Protocol is a broadcast snooping MOSI protocol over an ordered address
// bus and an unordered data fabric.
type Protocol struct {
	k    *sim.Kernel
	bus  AddressNet
	data network.Fabric
	cfg  Config
	log  UndoLogger

	// OnMisSpeculation handles a detected mis-speculation (the §3.2
	// corner case under Spec, or a watchdog timeout). Nil panics.
	OnMisSpeculation func(reason string)

	caches []*sCacheCtrl
	mems   []*memCtrl

	st    Stats
	epoch uint64

	// cmsgFree recycles the boxed payloads of data-fabric messages (see
	// the directory package for the scheme).
	cmsgFree pool.FreeList[coherence.Msg]
}

// Typed-event opcodes, packed into the low bits of a0 beside the epoch.
const (
	sopSend = iota // a1 = destination node, p = *coherence.Msg
	sopDone        // p = the processor completion callback
)

// HandleEvent implements sim.Handler for delayed data supplies and
// processor completion callbacks; stale-epoch events (scheduled before a
// recovery) are dropped.
func (p *Protocol) HandleEvent(a0, a1 uint64, pay any) {
	op := a0 & 3
	if a0>>2 != p.epoch {
		if op == sopSend {
			p.putCM(pay.(*coherence.Msg))
		}
		return
	}
	switch op {
	case sopSend:
		p.sendPooled(pay.(*coherence.Msg), coherence.NodeID(a1))
	case sopDone:
		pay.(func())()
	}
}

func (p *Protocol) getCM() *coherence.Msg   { return p.cmsgFree.Get() }
func (p *Protocol) putCM(cm *coherence.Msg) { p.cmsgFree.Put(cm) }

// sendAfter schedules a data message for later injection without
// allocating; a recovery in the meantime drops it.
func (p *Protocol) sendAfter(d sim.Time, m coherence.Msg, to coherence.NodeID) {
	cm := p.getCM()
	*cm = m
	p.k.AfterEvent(d, p, p.epoch<<2|sopSend, uint64(to), cm)
}

// doneAfter schedules a processor completion callback, dropped on
// recovery (the restored processors re-issue).
func (p *Protocol) doneAfter(d sim.Time, done func()) {
	p.k.AfterEvent(d, p, p.epoch<<2|sopDone, 0, done)
}

func (p *Protocol) sendPooled(cm *coherence.Msg, to coherence.NodeID) {
	nm := network.Alloc(p.data)
	nm.Src = network.NodeID(cm.From)
	nm.Dst = network.NodeID(to)
	nm.VNet = 0
	nm.Size = coherence.DataMsgBytes
	nm.Payload = cm
	p.data.Send(nm)
}

// New builds the protocol over a bus and a data fabric; it claims the
// fabric's clients and attaches bus observers for every node.
func New(k *sim.Kernel, bus AddressNet, data network.Fabric, cfg Config, log UndoLogger) *Protocol {
	if cfg.Nodes != data.NumNodes() {
		panic("snoop: node count differs from data network size")
	}
	p := &Protocol{k: k, bus: bus, data: data, cfg: cfg, log: log}
	p.caches = make([]*sCacheCtrl, cfg.Nodes)
	p.mems = make([]*memCtrl, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		i := i
		c := &sCacheCtrl{
			p:              p,
			node:           coherence.NodeID(i),
			l1:             cache.New(cfg.L1Bytes, cfg.L1Ways),
			l2:             cache.New(cfg.L2Bytes, cfg.L2Ways),
			pendingRestore: make(map[coherence.Addr]restoredLine),
		}
		m := &memCtrl{p: p, node: coherence.NodeID(i), store: mem.NewStore(), owner: make(map[coherence.Addr]int)}
		p.caches[i] = c
		p.mems[i] = m
		bus.Attach(c)
		bus.Attach(m)
		data.AttachClient(network.NodeID(i), network.ClientFunc(func(nm *network.Message) bool {
			if cm, ok := nm.Payload.(*coherence.Msg); ok {
				msg := *cm
				if c.handleData(msg) {
					p.putCM(cm)
					return true
				}
				return false
			}
			return c.handleData(nm.Payload.(coherence.Msg))
		}))
	}
	return p
}

// Stats exposes the protocol counters.
func (p *Protocol) Stats() *Stats { return &p.st }

// Config returns the protocol configuration.
func (p *Protocol) Config() Config { return p.cfg }

// Bus returns the ordered address network.
func (p *Protocol) Bus() AddressNet { return p.bus }

// Home maps a block to the node whose memory controller owns it.
func (p *Protocol) Home(a coherence.Addr) coherence.NodeID {
	return coherence.NodeID((uint64(a) / coherence.BlockBytes) % uint64(p.cfg.Nodes))
}

// InFlight counts live transactions; the system drains it to zero
// before checkpoints.
func (p *Protocol) InFlight() int {
	n := 0
	for _, c := range p.caches {
		if c.req != nil {
			n++
		}
		if c.wb != nil {
			n++
		}
		n += len(c.parked)
	}
	return n
}

// ResetTransients clears all TBEs and obligations after a recovery.
func (p *Protocol) ResetTransients() {
	p.epoch++
	for _, c := range p.caches {
		c.flushPendingRestores()
		c.req = nil
		c.reqStore.done = nil // drop the callback reference with the TBE
		c.wb = nil
		c.parked = nil
		c.l1.Clear()
	}
}

// StartWatchdog arms the transaction-timeout detector (see directory
// package for semantics).
func (p *Protocol) StartWatchdog(interval sim.Time) {
	if p.cfg.TimeoutCycles == 0 {
		return
	}
	var tick func()
	tick = func() {
		now := p.k.Now()
		for _, c := range p.caches {
			if (c.req != nil && now-c.req.start > p.cfg.TimeoutCycles) ||
				(c.wb != nil && now-c.wb.start > p.cfg.TimeoutCycles) {
				p.st.TimeoutsDetected.Inc()
				p.misSpeculate("deadlock-timeout")
				break
			}
		}
		p.k.After(interval, tick)
	}
	p.k.After(interval, tick)
}

func (p *Protocol) misSpeculate(reason string) {
	if p.OnMisSpeculation == nil {
		panic("snoop: mis-speculation detected with no recovery wired: " + reason)
	}
	p.OnMisSpeculation(reason)
}

func (p *Protocol) after(d sim.Time, fn func()) {
	e := p.epoch
	p.k.After(d, func() {
		if p.epoch == e {
			fn()
		}
	})
}

func (p *Protocol) sendData(from, to coherence.NodeID, a coherence.Addr, version uint64) {
	cm := p.getCM()
	*cm = coherence.Msg{Kind: coherence.Data, Addr: a, From: from, Requestor: to, Version: version}
	p.sendPooled(cm, to)
}

// Access performs one blocking processor reference at node.
func (p *Protocol) Access(node coherence.NodeID, addr coherence.Addr, kind coherence.AccessType, done func()) {
	p.caches[node].access(coherence.BlockAddr(addr), kind, done)
}

// Flush writes back (M/O) or silently drops (S) the block at node, if
// present and stable. It reports whether anything was done. Exposed for
// cache-flush semantics and used by directed race tests.
func (p *Protocol) Flush(node coherence.NodeID, addr coherence.Addr) bool {
	return p.caches[node].flush(coherence.BlockAddr(addr))
}

// ---- cache controller ----

type obligation struct {
	node   coherence.NodeID
	isGetM bool
}

type sReqTBE struct {
	addr     coherence.Addr
	state    SState
	isStore  bool
	doomed   bool // foreign GetM ordered after our GetS: copy dies on arrival
	obs      []obligation
	obClosed bool
	start    sim.Time
	done     func()
}

type sWbTBE struct {
	addr    coherence.Addr
	state   SState // SWBa, SWBai
	version uint64
	start   sim.Time
}

type sParked struct {
	addr coherence.Addr
	kind coherence.AccessType
	done func()
}

type sCacheCtrl struct {
	p      *Protocol
	node   coherence.NodeID
	l1, l2 *cache.Cache
	req    *sReqTBE
	wb     *sWbTBE
	parked []sParked
	// pendingRestore parks rollback installs whose set is transiently
	// over-full mid-undo (see the directory package for the argument);
	// flushed in ResetTransients once the undo pass completes.
	pendingRestore map[coherence.Addr]restoredLine

	// reqStore and wbStore back req and wb: at most one of each is
	// outstanding per controller, so the TBEs are reused in place.
	reqStore sReqTBE
	wbStore  sWbTBE
}

type restoredLine struct {
	state   uint8
	version uint64
}

func (c *sCacheCtrl) logLine(addr coherence.Addr) {
	if c.p.log == nil {
		return
	}
	var old cache.Line
	present := false
	if l := c.l2.Peek(addr); l != nil {
		old = *l
		present = true
	}
	node := int(c.node)
	c.p.log.LogOldValue(node, uint64(addr)|1, func() {
		c.restoreLine(addr, present, old.State, old.Version)
	})
}

func (c *sCacheCtrl) restoreLine(addr coherence.Addr, present bool, state uint8, version uint64) {
	c.l1.Invalidate(addr)
	if !present {
		delete(c.pendingRestore, addr)
		c.l2.Invalidate(addr)
		return
	}
	if l := c.l2.Peek(addr); l != nil {
		delete(c.pendingRestore, addr)
		l.State = state
		l.Version = version
		return
	}
	f := c.l2.Victim(addr, func(*cache.Line) bool { return false })
	if f == nil || f.Valid {
		c.pendingRestore[addr] = restoredLine{state: state, version: version}
		return
	}
	delete(c.pendingRestore, addr)
	c.l2.Install(f, addr, state, version)
}

func (c *sCacheCtrl) flushPendingRestores() {
	// Install in address order: frame choice and LRU rank depend on
	// install order, so flushing in map order would leave the cache in
	// a different (replay-divergent) state on every run.
	addrs := make([]coherence.Addr, 0, len(c.pendingRestore))
	for addr := range c.pendingRestore {
		addrs = append(addrs, addr)
	}
	slices.Sort(addrs)
	for _, addr := range addrs {
		rl := c.pendingRestore[addr]
		f := c.l2.Victim(addr, func(*cache.Line) bool { return false })
		if f == nil || f.Valid {
			panic("snoop: set still full flushing checkpoint restore")
		}
		c.l2.Install(f, addr, rl.state, rl.version)
	}
	clear(c.pendingRestore)
}

func (c *sCacheCtrl) access(addr coherence.Addr, kind coherence.AccessType, done func()) {
	if c.req != nil {
		panic("snoop: concurrent accesses at one node")
	}
	if kind == coherence.Load {
		c.p.st.Loads.Inc()
	} else {
		c.p.st.Stores.Inc()
	}
	if c.wb != nil && c.wb.addr == addr {
		c.parked = append(c.parked, sParked{addr, kind, done})
		return
	}
	line := c.l2.Lookup(addr)
	if line != nil {
		st := SState(line.State)
		if kind == coherence.Load || st == SM {
			lat := c.p.cfg.L2Latency
			if c.l1.Lookup(addr) != nil {
				c.p.st.L1Hits.Inc()
				lat = c.p.cfg.L1Latency
			} else {
				c.p.st.L2Hits.Inc()
				c.installL1(addr)
			}
			if kind == coherence.Store {
				c.logLine(addr)
				line.Version++
			}
			c.p.doneAfter(lat, done)
			return
		}
		// Store upgrade.
		st2 := SIMad
		if st == SO {
			st2 = SOMad
		}
		c.startRequest(addr, coherence.SnoopGetM, st2, true, done)
		return
	}
	if kind == coherence.Load {
		c.startRequest(addr, coherence.SnoopGetS, SISad, false, done)
	} else {
		c.startRequest(addr, coherence.SnoopGetM, SIMad, true, done)
	}
}

func (c *sCacheCtrl) installL1(addr coherence.Addr) {
	if f := c.l1.Victim(addr, nil); f != nil {
		c.l1.Install(f, addr, 0, 0)
	}
}

func (c *sCacheCtrl) startRequest(addr coherence.Addr, kind coherence.MsgKind, st SState, isStore bool, done func()) {
	c.p.st.Transactions.Inc()
	obs := c.reqStore.obs[:0] // reuse the obligation list's storage
	c.reqStore = sReqTBE{addr: addr, state: st, isStore: isStore, obs: obs, start: c.p.k.Now(), done: done}
	c.req = &c.reqStore
	c.p.bus.Submit(coherence.Msg{Kind: kind, Addr: addr, From: c.node})
}

func (c *sCacheCtrl) flush(addr coherence.Addr) bool {
	if c.req != nil && c.req.addr == addr {
		return false
	}
	if c.wb != nil {
		return false
	}
	line := c.l2.Peek(addr)
	if line == nil {
		return false
	}
	switch SState(line.State) {
	case SS:
		c.logLine(addr)
		c.l1.Invalidate(addr)
		line.Valid = false
		return true
	case SM, SO:
		c.startWriteback(line)
		return true
	}
	return false
}

func (c *sCacheCtrl) startWriteback(v *cache.Line) {
	c.p.st.Writebacks.Inc()
	addr, ver := v.Addr, v.Version
	c.logLine(addr)
	c.l1.Invalidate(addr)
	v.Valid = false
	c.wbStore = sWbTBE{addr: addr, state: SWBa, version: ver, start: c.p.k.Now()}
	c.wb = &c.wbStore
	c.p.bus.Submit(coherence.Msg{Kind: coherence.SnoopPutM, Addr: addr, From: c.node, Version: ver})
}

func (c *sCacheCtrl) freeWB() {
	c.wb = nil
	parked := c.parked
	c.parked = nil
	for _, a := range parked {
		a := a
		c.p.after(0, func() { c.access(a.addr, a.kind, a.done) })
	}
	c.p.data.Kick(network.NodeID(c.node))
}

// OnOrdered implements BusObserver: the heart of the snooping protocol.
// Every node observes every ordered request in the same global order.
func (c *sCacheCtrl) OnOrdered(_ uint64, msg coherence.Msg) {
	own := msg.From == c.node
	switch msg.Kind {
	case coherence.SnoopGetS:
		if own {
			c.ownGetS(msg)
		} else {
			c.foreignGetS(msg)
		}
	case coherence.SnoopGetM:
		if own {
			c.ownGetM(msg)
		} else {
			c.foreignGetM(msg)
		}
	case coherence.SnoopPutM:
		if own {
			c.ownPutM(msg)
		}
		// Foreign PutM: memory's business only.
	default:
		panic("snoop: unexpected bus message " + msg.Kind.String())
	}
}

func (c *sCacheCtrl) ownGetS(msg coherence.Msg) {
	t := c.req
	if t == nil || t.addr != msg.Addr || t.state != SISad {
		panic(fmt.Sprintf("snoop: own GetS ordered with no matching transaction node=%d addr=%#x", c.node, uint64(msg.Addr)))
	}
	t.state = SISd
}

func (c *sCacheCtrl) ownGetM(msg coherence.Msg) {
	t := c.req
	if t == nil || t.addr != msg.Addr {
		panic("snoop: own GetM ordered with no matching transaction")
	}
	switch t.state {
	case SIMad:
		t.state = SIMd
	case SOMad:
		// Still owner: the upgrade completes at the order point with
		// our own data; no one will supply.
		line := c.l2.Peek(t.addr)
		if line == nil {
			panic("snoop: OM_AD without an O line")
		}
		c.logLine(t.addr)
		line.State = uint8(SM)
		line.Version++
		c.finish(t)
	default:
		panic(fmt.Sprintf("snoop: own GetM in state %s", t.state))
	}
}

func (c *sCacheCtrl) ownPutM(msg coherence.Msg) {
	if c.wb == nil || c.wb.addr != msg.Addr {
		panic("snoop: own PutM ordered with no writeback TBE")
	}
	// SWBa: memory takes the data (the memory controller observed the
	// same event). SWBai: the writeback lost the race and is stale.
	c.freeWB()
}

func (c *sCacheCtrl) foreignGetS(msg coherence.Msg) {
	a := msg.Addr
	if c.wb != nil && c.wb.addr == a {
		if c.wb.state == SWBa {
			// Still owner: supply; the writeback remains pending.
			c.supply(msg.From, a, c.wb.version)
		}
		return // SWBai: the new owner supplies
	}
	if t := c.req; t != nil && t.addr == a {
		switch t.state {
		case SIMd:
			if !t.obClosed {
				t.obs = append(t.obs, obligation{msg.From, false})
			}
			return
		case SOMad:
			line := c.l2.Peek(a)
			c.supply(msg.From, a, line.Version)
			return
		}
		// IS_AD / IS_D / IM_AD: someone else supplies.
	}
	line := c.l2.Peek(a)
	if line == nil {
		return
	}
	switch SState(line.State) {
	case SM:
		c.supply(msg.From, a, line.Version)
		c.logLine(a)
		line.State = uint8(SO)
	case SO:
		c.supply(msg.From, a, line.Version)
	}
}

func (c *sCacheCtrl) foreignGetM(msg coherence.Msg) {
	a := msg.Addr
	if c.wb != nil && c.wb.addr == a {
		switch c.wb.state {
		case SWBa:
			// Ownership transfers at this order point.
			c.supply(msg.From, a, c.wb.version)
			c.wb.state = SWBai
		case SWBai:
			// THE §3.2 corner case: a second foreign RequestReadWrite
			// while our writeback is still unordered.
			if c.p.cfg.Variant == Spec {
				c.p.st.CornerDetected.Inc()
				c.p.misSpeculate("snoop-corner")
				return
			}
			// Full variant: specified as a no-op — ownership already
			// belongs to the first requestor, which queues this one.
			c.p.st.CornerHandled.Inc()
		}
		return
	}
	if t := c.req; t != nil && t.addr == a {
		switch t.state {
		case SIMd:
			if !t.obClosed {
				t.obs = append(t.obs, obligation{msg.From, true})
				t.obClosed = true
			}
			return
		case SOMad:
			line := c.l2.Peek(a)
			c.supply(msg.From, a, line.Version)
			c.logLine(a)
			c.l1.Invalidate(a)
			line.Valid = false
			t.state = SIMad
			return
		case SISd:
			c.invalidateIfPresent(a)
			t.doomed = true
			return
		case SISad, SIMad:
			c.invalidateIfPresent(a)
			return
		}
	}
	line := c.l2.Peek(a)
	if line == nil {
		return
	}
	switch SState(line.State) {
	case SS:
		c.logLine(a)
		c.l1.Invalidate(a)
		line.Valid = false
	case SM, SO:
		c.supply(msg.From, a, line.Version)
		c.logLine(a)
		c.l1.Invalidate(a)
		line.Valid = false
	}
}

func (c *sCacheCtrl) invalidateIfPresent(a coherence.Addr) {
	if line := c.l2.Peek(a); line != nil {
		c.logLine(a)
		c.l1.Invalidate(a)
		line.Valid = false
	}
}

func (c *sCacheCtrl) supply(to coherence.NodeID, a coherence.Addr, version uint64) {
	c.p.sendAfter(c.p.cfg.L2Latency,
		coherence.Msg{Kind: coherence.Data, Addr: a, From: c.node, Requestor: to, Version: version}, to)
}

// handleData consumes a Data message from the data fabric. It returns
// false when the install needs a frame that requires the (occupied)
// writeback TBE.
func (c *sCacheCtrl) handleData(msg coherence.Msg) bool {
	t := c.req
	if t == nil || t.addr != msg.Addr {
		panic(fmt.Sprintf("snoop: stray data node=%d %s", c.node, msg))
	}
	switch t.state {
	case SISd:
		if t.doomed {
			// The copy was invalidated (in bus order) before arrival;
			// the load still consumes the value it was ordered with.
			c.finish(t)
			return true
		}
		if c.l2.Peek(t.addr) == nil && !c.canAcquireFrame() {
			return false
		}
		c.installStable(t.addr, SS, msg.Version)
		c.finish(t)
	case SIMd:
		if c.l2.Peek(t.addr) == nil && !c.canAcquireFrame() {
			return false
		}
		c.installStable(t.addr, SM, msg.Version+1) // +1: the store itself
		line := c.l2.Peek(t.addr)
		// Serve supply obligations queued while awaiting data, in bus
		// order; a GetM obligation ends our ownership.
		for _, ob := range t.obs {
			c.p.st.ObligationsServed.Inc()
			c.supply(ob.node, t.addr, line.Version)
			c.logLine(t.addr)
			if ob.isGetM {
				c.l1.Invalidate(t.addr)
				line.Valid = false
				break
			}
			line.State = uint8(SO)
		}
		c.finish(t)
	default:
		panic(fmt.Sprintf("snoop: data in state %s", t.state))
	}
	return true
}

func (c *sCacheCtrl) canAcquireFrame() bool {
	v := c.l2.Victim(c.req.addr, nil)
	if v == nil {
		return false
	}
	if !v.Valid || SState(v.State) == SS {
		return true
	}
	return c.wb == nil
}

func (c *sCacheCtrl) installStable(a coherence.Addr, st SState, version uint64) {
	if line := c.l2.Peek(a); line != nil {
		c.logLine(a)
		line.State = uint8(st)
		line.Version = version
		return
	}
	v := c.l2.Victim(a, nil)
	if v.Valid {
		switch SState(v.State) {
		case SS:
			c.logLine(v.Addr)
			c.l1.Invalidate(v.Addr)
			v.Valid = false
		case SM, SO:
			c.startWriteback(v)
		default:
			panic("snoop: transient state in array")
		}
	}
	c.logLine(a)
	c.l2.Install(v, a, uint8(st), version)
	c.installL1(a)
}

func (c *sCacheCtrl) finish(t *sReqTBE) {
	c.p.st.MissLatency.Observe(uint64(c.p.k.Now() - t.start))
	done := t.done
	t.done = nil
	c.req = nil
	if done != nil {
		c.p.doneAfter(0, done)
	}
}

// ---- memory controller ----

// memCtrl observes the bus and supplies data when no cache owns the
// block. Ownership is tracked purely from the ordered request stream.
type memCtrl struct {
	p     *Protocol
	node  coherence.NodeID
	store *mem.Store
	owner map[coherence.Addr]int // -1 or absent: memory owns
}

func (m *memCtrl) logOwner(a coherence.Addr) {
	if m.p.log == nil {
		return
	}
	old, had := m.owner[a]
	m.p.log.LogOldValue(int(m.node), uint64(a)|4, func() {
		if had {
			m.owner[a] = old
		} else {
			delete(m.owner, a)
		}
	})
}

func (m *memCtrl) logMem(a coherence.Addr) {
	if m.p.log == nil {
		return
	}
	old := m.store.Read(a)
	m.p.log.LogOldValue(int(m.node), uint64(a)|2, func() { m.store.Write(a, old) })
}

func (m *memCtrl) ownerOf(a coherence.Addr) int {
	if o, ok := m.owner[a]; ok {
		return o
	}
	return -1
}

// OnOrdered implements BusObserver for the home memory controller.
func (m *memCtrl) OnOrdered(_ uint64, msg coherence.Msg) {
	a := msg.Addr
	if m.p.Home(a) != m.node {
		return
	}
	switch msg.Kind {
	case coherence.SnoopGetS:
		if m.ownerOf(a) == -1 {
			m.supply(msg.From, a)
		}
	case coherence.SnoopGetM:
		prev := m.ownerOf(a)
		if prev == -1 {
			m.supply(msg.From, a)
		}
		if prev != int(msg.From) {
			m.logOwner(a)
			m.owner[a] = int(msg.From)
		}
	case coherence.SnoopPutM:
		if m.ownerOf(a) == int(msg.From) {
			m.logOwner(a)
			m.logMem(a)
			delete(m.owner, a)
			m.store.Write(a, msg.Version)
		}
		// Stale PutM from a long-gone owner: ignore.
	}
}

func (m *memCtrl) supply(to coherence.NodeID, a coherence.Addr) {
	version := m.store.Read(a)
	m.p.sendAfter(m.p.cfg.MemLatency,
		coherence.Msg{Kind: coherence.Data, Addr: a, From: m.node, Requestor: to, Version: version}, to)
}
