package snoop

import (
	"testing"

	"specsimp/internal/coherence"
)

// Distinct blocks that collide in the explorer's single-frame L2, so a
// second store forces a writeback of the first block.
const (
	xBlkA = coherence.Addr(0x000)
	xBlkB = coherence.Addr(0x400)
)

// cornerScript provokes the §3.2 corner case: node 0 acquires A in M and
// then evicts it via B (single-frame cache), putting its writeback of A
// in flight, while nodes 1 and 2 both compete for A with stores. Any
// interleaving that orders both foreign RequestReadWrites before node
// 0's own PutM reaches the unspecified WB_AI transition.
func cornerScript() [][]SScriptOp {
	return [][]SScriptOp{
		0: {{xBlkA, coherence.Store}, {xBlkB, coherence.Store}},
		1: {{xBlkA, coherence.Store}},
		2: {{xBlkA, coherence.Store}},
	}
}

// TestSnoopExploreSpecDetectsEverywhere is the satellite's core claim:
// under *every* explored delivery order (address-network arbitration ×
// data delivery), the speculatively simplified snooping protocol either
// completes with intact invariants or detects the corner case — never a
// third outcome (silent corruption, unspecified-transition panic, or a
// stuck protocol).
func TestSnoopExploreSpecDetectsEverywhere(t *testing.T) {
	res := ExploreSnoop(SExploreConfig{
		Variant:  Spec,
		Nodes:    3,
		Script:   cornerScript(),
		MaxPaths: 100_000,
	})
	if !res.Ok() {
		t.Fatalf("violations (%d), first: %s", len(res.Violations), res.Violations[0])
	}
	if res.Detected == 0 {
		t.Fatal("no interleaving triggered the corner case; exploration proves nothing")
	}
	if res.Completed+res.Detected != res.Paths {
		t.Fatalf("paths=%d completed=%d detected=%d: unexplained outcomes",
			res.Paths, res.Completed, res.Detected)
	}
	t.Logf("spec: %d interleavings — %d completed, %d detected (truncated=%v)",
		res.Paths, res.Completed, res.Detected, res.Truncated)
}

// TestSnoopExploreFullHandlesCornerEverywhere: the fully designed
// protocol absorbs the same corner case through its specified no-op on
// every interleaving — and the exploration must actually reach it
// (CornerHandled > 0), otherwise the Spec result above proves nothing.
func TestSnoopExploreFullHandlesCornerEverywhere(t *testing.T) {
	res := ExploreSnoop(SExploreConfig{
		Variant:  Full,
		Nodes:    3,
		Script:   cornerScript(),
		MaxPaths: 100_000,
	})
	if !res.Ok() {
		t.Fatalf("violations (%d), first: %s", len(res.Violations), res.Violations[0])
	}
	if res.Detected != 0 {
		t.Fatalf("full variant mis-speculated on %d paths", res.Detected)
	}
	if res.Completed != res.Paths {
		t.Fatalf("completed %d of %d paths", res.Completed, res.Paths)
	}
	if res.CornerHandled == 0 {
		t.Fatal("no interleaving exercised the specified corner transition")
	}
	t.Logf("full: %d interleavings verified, corner handled on %d (truncated=%v)",
		res.Paths, res.CornerHandled, res.Truncated)
}

// TestSnoopExploreSharingScenario explores a writeback-free read-share/
// invalidate scenario: both variants complete every interleaving with
// zero detections.
func TestSnoopExploreSharingScenario(t *testing.T) {
	script := [][]SScriptOp{
		0: {{xBlkA, coherence.Load}, {xBlkA, coherence.Store}},
		1: {{xBlkA, coherence.Load}},
		2: {{xBlkA, coherence.Store}},
	}
	for _, v := range []Variant{Full, Spec} {
		res := ExploreSnoop(SExploreConfig{
			Variant:  v,
			Nodes:    3,
			Script:   script,
			MaxPaths: 50_000,
		})
		if !res.Ok() {
			t.Fatalf("%s: %s", v, res.Violations[0])
		}
		if res.Detected != 0 {
			t.Fatalf("%s: detections in a corner-free scenario", v)
		}
		t.Logf("%s sharing: %d interleavings verified", v, res.Paths)
	}
}

// TestSnoopExploreDeterministicReplay: the same prefix always reproduces
// the same branch widths (the explorer depends on replay determinism).
func TestSnoopExploreDeterministicReplay(t *testing.T) {
	cfg := SExploreConfig{Variant: Full, Nodes: 3, Script: cornerScript(), MaxPaths: 1}
	var res SExploreResult
	w1 := runSnoopPath(cfg, nil, &res)
	w2 := runSnoopPath(cfg, nil, &res)
	if len(w1) != len(w2) {
		t.Fatalf("widths diverged: %v vs %v", w1, w2)
	}
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatalf("width[%d]: %d vs %d", i, w1[i], w2[i])
		}
	}
}
