package snoop

import (
	"reflect"
	"testing"

	"specsimp/internal/coherence"
	"specsimp/internal/explore"
)

// Distinct blocks that collide in the explorer's single-frame L2, so a
// second store forces a writeback of the first block.
const (
	xBlkA = coherence.Addr(0x000)
	xBlkB = coherence.Addr(0x400)
	xBlkC = coherence.Addr(0x800)
)

// cornerScript provokes the §3.2 corner case: node 0 acquires A in M and
// then evicts it via B (single-frame cache), putting its writeback of A
// in flight, while nodes 1 and 2 both compete for A with stores. Any
// interleaving that orders both foreign RequestReadWrites before node
// 0's own PutM reaches the unspecified WB_AI transition.
func cornerScript() [][]SScriptOp {
	return [][]SScriptOp{
		0: {{xBlkA, coherence.Store}, {xBlkB, coherence.Store}},
		1: {{xBlkA, coherence.Store}},
		2: {{xBlkA, coherence.Store}},
	}
}

// wideCornerScript is the scaled proof scenario: the same §3.2 corner
// with a fourth active node and a third block in play, so detection
// fires while unrelated transactions are mid-flight (the recovery-mid-
// flight shape; the model checks ResetTransients leaves nothing
// behind).
func wideCornerScript() [][]SScriptOp {
	return [][]SScriptOp{
		0: {{xBlkA, coherence.Store}, {xBlkB, coherence.Store}},
		1: {{xBlkA, coherence.Store}},
		2: {{xBlkA, coherence.Store}},
		3: {{xBlkC, coherence.Store}, {xBlkC, coherence.Load}},
	}
}

// TestSnoopExploreSpecDetectsEverywhere is the core claim at the
// scaled bound: under *every* explored order (address-network
// arbitration × data delivery) on 3 blocks × 4 nodes, the
// speculatively simplified snooping protocol either completes with
// intact invariants or detects the corner case — never a third
// outcome (silent corruption, unspecified-transition panic, or a
// stuck protocol).
func TestSnoopExploreSpecDetectsEverywhere(t *testing.T) {
	res := ExploreSnoop(SExploreConfig{
		Variant: Spec,
		Nodes:   4,
		Script:  wideCornerScript(),
	})
	if !res.Ok() {
		t.Fatalf("violations (%d), first: %s", len(res.Violations), res.Violations[0])
	}
	if res.Truncated {
		t.Fatal("exploration truncated; the proof is not exhaustive")
	}
	if res.Detected == 0 {
		t.Fatal("no interleaving triggered the corner case; exploration proves nothing")
	}
	if res.Completed+res.Detected != res.Paths {
		t.Fatalf("paths=%d completed=%d detected=%d: unexplained outcomes",
			res.Paths, res.Completed, res.Detected)
	}
	t.Logf("spec 3x4: %d paths — %d completed, %d detected, cuts %d+%d",
		res.Paths, res.Completed, res.Detected, res.SleepCut, res.VisitedCut)
}

// TestSnoopExploreFullHandlesCornerEverywhere: the fully designed
// protocol absorbs the same corner case through its specified no-op on
// every interleaving — and the exploration must actually reach it
// (CornerHandled > 0), otherwise the Spec result above proves nothing.
func TestSnoopExploreFullHandlesCornerEverywhere(t *testing.T) {
	res := ExploreSnoop(SExploreConfig{
		Variant: Full,
		Nodes:   4,
		Script:  wideCornerScript(),
	})
	if !res.Ok() {
		t.Fatalf("violations (%d), first: %s", len(res.Violations), res.Violations[0])
	}
	if res.Truncated {
		t.Fatal("exploration truncated; the proof is not exhaustive")
	}
	if res.Detected != 0 {
		t.Fatalf("full variant mis-speculated on %d paths", res.Detected)
	}
	if res.Completed != res.Paths {
		t.Fatalf("completed %d of %d paths", res.Completed, res.Paths)
	}
	if res.CornerHandled == 0 {
		t.Fatal("no interleaving exercised the specified corner transition")
	}
	t.Logf("full 3x4: %d paths verified, corner handled on %d, cuts %d+%d",
		res.Paths, res.CornerHandled, res.SleepCut, res.VisitedCut)
}

// TestSnoopExploreSharingScenario explores a writeback-free read-share/
// invalidate scenario at 4 nodes: both variants complete every
// interleaving with zero detections.
func TestSnoopExploreSharingScenario(t *testing.T) {
	script := [][]SScriptOp{
		0: {{xBlkA, coherence.Load}, {xBlkA, coherence.Store}},
		1: {{xBlkA, coherence.Load}},
		2: {{xBlkA, coherence.Store}},
		3: {{xBlkC, coherence.Load}},
	}
	for _, v := range []Variant{Full, Spec} {
		res := ExploreSnoop(SExploreConfig{Variant: v, Nodes: 4, Script: script})
		if !res.Ok() {
			t.Fatalf("%s: %s", v, res.Violations[0])
		}
		if res.Detected != 0 {
			t.Fatalf("%s: detections in a corner-free scenario", v)
		}
		t.Logf("%s sharing: %d paths verified", v, res.Paths)
	}
}

// TestSnoopExploreModeEquivalence: every reduction mode reaches the
// same terminal states on the enumerable pre-PR-4 corner scenario —
// the protocol-level soundness check of the independence relation
// (bus grants global, data deliveries per-cache).
func TestSnoopExploreModeEquivalence(t *testing.T) {
	terminals := map[string][]explore.Digest{}
	for _, m := range []struct {
		name    string
		reduce  explore.Reduction
		noDedup bool
	}{
		{"none", explore.ReduceNone, true},
		{"sleep", explore.ReduceSleep, false},
		{"dpor", explore.ReduceDPOR, true},
	} {
		res := ExploreSnoop(SExploreConfig{
			Variant:          Spec,
			Nodes:            3,
			Script:           cornerScript(),
			Reduce:           m.reduce,
			NoDedup:          m.noDedup,
			CollectTerminals: true,
		})
		if !res.Ok() {
			t.Fatalf("%s: %s", m.name, res.Violations[0])
		}
		if res.Truncated {
			t.Fatalf("%s: truncated", m.name)
		}
		var keys []explore.Digest
		for d := range res.Terminals {
			keys = append(keys, d)
		}
		sortSnoopDigests(keys)
		terminals[m.name] = keys
		t.Logf("%s: %d paths, %d distinct terminal states", m.name, res.Paths, len(keys))
	}
	if !reflect.DeepEqual(terminals["none"], terminals["sleep"]) {
		t.Fatalf("sleep reduction lost terminal states: %d vs %d",
			len(terminals["sleep"]), len(terminals["none"]))
	}
	if !reflect.DeepEqual(terminals["none"], terminals["dpor"]) {
		t.Fatalf("dpor reduction lost terminal states: %d vs %d",
			len(terminals["dpor"]), len(terminals["none"]))
	}
}

// TestSnoopExploreReductionRatio pins the acceptance bar on the
// pre-PR-4 2-block corner script: the default reduction (sleep sets +
// state dedup) explores at least 10x fewer interleavings than full
// enumeration. Pure DPOR helps little here by construction — the
// snooping address network is a totally ordered broadcast, so every
// pair of bus grants is dependent and commutation-based reduction has
// only the data deliveries to work with; it is the state-hash dedup
// that collapses the grant orders (contrast the directory protocol,
// whose unordered interconnect gives DPOR its 10x+ on its own). DPOR
// must still be sound: no more paths than full enumeration.
func TestSnoopExploreReductionRatio(t *testing.T) {
	full := ExploreSnoop(SExploreConfig{
		Variant: Spec, Nodes: 3, Script: cornerScript(),
		Reduce: explore.ReduceNone, NoDedup: true, MaxPaths: 60_000,
	})
	if full.Truncated {
		t.Fatalf("baseline truncated at %d paths", full.Paths)
	}
	def := ExploreSnoop(SExploreConfig{
		Variant: Spec, Nodes: 3, Script: cornerScript(), ForkDepth: -1,
	})
	if !def.Ok() || def.Truncated {
		t.Fatalf("default mode: %+v", def)
	}
	if def.Paths*10 > full.Paths {
		t.Fatalf("default reduction explored %d paths vs %d full enumeration: less than 10x",
			def.Paths, full.Paths)
	}
	dpor := ExploreSnoop(SExploreConfig{
		Variant: Spec, Nodes: 3, Script: cornerScript(),
		Reduce: explore.ReduceDPOR, NoDedup: true, ForkDepth: -1,
	})
	if !dpor.Ok() || dpor.Truncated {
		t.Fatalf("dpor: %+v", dpor)
	}
	if dpor.Paths > full.Paths {
		t.Fatalf("dpor explored more paths (%d) than full enumeration (%d)", dpor.Paths, full.Paths)
	}
	t.Logf("full=%d default=%d (%.0fx) dpor=%d (%.1fx)", full.Paths,
		def.Paths, float64(full.Paths)/float64(def.Paths),
		dpor.Paths, float64(full.Paths)/float64(dpor.Paths))
}

// TestSnoopExploreWorkerDeterminism: bit-identical results for every
// worker count (run with -race in CI).
func TestSnoopExploreWorkerDeterminism(t *testing.T) {
	base := ExploreSnoop(SExploreConfig{
		Variant: Spec, Nodes: 3, Script: cornerScript(),
		Workers: 1, CollectTerminals: true,
	})
	for _, w := range []int{2, 8} {
		got := ExploreSnoop(SExploreConfig{
			Variant: Spec, Nodes: 3, Script: cornerScript(),
			Workers: w, CollectTerminals: true,
		})
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("workers=%d diverged from workers=1:\n%+v\nvs\n%+v", w, base, got)
		}
	}
	if base.Tasks < 2 {
		t.Fatalf("expected a forked frontier, got %d tasks", base.Tasks)
	}
	t.Logf("%d paths over %d tasks, identical at 1/2/8 workers", base.Paths, base.Tasks)
}

func sortSnoopDigests(ds []explore.Digest) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && snoopDigestLess(ds[j], ds[j-1]); j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

func snoopDigestLess(a, b explore.Digest) bool {
	return a[0] < b[0] || (a[0] == b[0] && a[1] < b[1])
}
