package snoop

import "fmt"

// Variant selects the full or speculatively simplified snooping protocol.
type Variant uint8

// Protocol variants.
const (
	// Full specifies the writeback double-race corner case.
	Full Variant = iota
	// Spec treats the corner case as a mis-speculation (paper §3.2).
	Spec
)

func (v Variant) String() string {
	if v == Full {
		return "full"
	}
	return "spec"
}

// SState is a snooping cache controller state.
type SState uint8

// Snooping cache states. Ownership and obligations bind at bus order.
const (
	SI SState = iota
	SS
	SO
	SM

	SISad // GetS issued, awaiting own order
	SISd  // own GetS ordered, awaiting data
	SIMad // GetM issued, awaiting own order (covers upgrades from S)
	SIMd  // own GetM ordered, awaiting data; queues supply obligations
	SOMad // GetM issued while owner (O); serves forwards meanwhile

	SWBa  // PutM issued from M/O, still owner until a foreign GetM or own order
	SWBai // ownership transferred while PutM pending — the §3.2 transient

	numSStates
)

var sStateNames = [...]string{
	"I", "S", "O", "M",
	"IS_AD", "IS_D", "IM_AD", "IM_D", "OM_AD",
	"WB_A", "WB_AI",
}

func (s SState) String() string {
	if int(s) < len(sStateNames) {
		return sStateNames[s]
	}
	return fmt.Sprintf("SState(%d)", uint8(s))
}

// SEvent is a snooping cache controller event.
type SEvent uint8

// Snooping events. Own* are observations of this node's own ordered
// requests; Foreign* are other nodes'.
const (
	SEvLoad SEvent = iota
	SEvStore
	SEvReplace
	SEvOwnGetS
	SEvOwnGetM
	SEvOwnPutM
	SEvForeignGetS
	SEvForeignGetM
	SEvForeignPutM
	SEvData

	numSEvents
)

var sEventNames = [...]string{
	"Load", "Store", "Replace",
	"OwnGetS", "OwnGetM", "OwnPutM",
	"ForeignGetS", "ForeignGetM", "ForeignPutM",
	"Data",
}

func (e SEvent) String() string {
	if int(e) < len(sEventNames) {
		return sEventNames[e]
	}
	return fmt.Sprintf("SEvent(%d)", uint8(e))
}

type sKey struct {
	s SState
	e SEvent
}

// snoopSpecified lists each variant's specified (state, event) pairs.
// The single difference is {WB_AI, ForeignGetM}: the corner case the
// paper's designers initially overlooked. The Full variant specifies it
// (correctly, a no-op: ownership already moved to the first requestor);
// the Spec variant detects it and recovers.
//
//detlint:allow edgecontrol registration table filled once in init, read-only afterwards
var snoopSpecified = map[Variant]map[sKey]bool{}

func init() {
	common := []sKey{
		{SI, SEvLoad}, {SI, SEvStore},
		{SS, SEvLoad}, {SS, SEvStore}, {SS, SEvReplace},
		{SO, SEvLoad}, {SO, SEvStore}, {SO, SEvReplace},
		{SM, SEvLoad}, {SM, SEvStore}, {SM, SEvReplace},

		// Foreign requests at stable states.
		{SS, SEvForeignGetM},
		{SO, SEvForeignGetS}, {SO, SEvForeignGetM},
		{SM, SEvForeignGetS}, {SM, SEvForeignGetM},

		// Own-request ordering.
		{SISad, SEvOwnGetS},
		{SIMad, SEvOwnGetM},
		{SOMad, SEvOwnGetM},
		{SWBa, SEvOwnPutM},
		{SWBai, SEvOwnPutM},

		// Foreign requests during transients.
		{SISad, SEvForeignGetM}, // invalidates the S copy being upgraded? no: doom note below
		{SISd, SEvForeignGetM},  // dooms the incoming S copy
		{SIMad, SEvForeignGetM}, // invalidates a held S copy pre-order
		{SIMd, SEvForeignGetS},  // queue supply obligation
		{SIMd, SEvForeignGetM},  // queue supply obligation, close queue
		{SOMad, SEvForeignGetS}, // still owner: supply
		{SOMad, SEvForeignGetM}, // supply and lose ownership
		{SWBa, SEvForeignGetS},  // still owner: supply
		{SWBa, SEvForeignGetM},  // supply; ownership transfers -> WB_AI
		{SWBai, SEvForeignGetS}, // not owner; new owner supplies

		// Data arrival.
		{SISd, SEvData}, {SIMd, SEvData},
	}
	fullOnly := []sKey{
		// The overlooked transition: a second foreign RequestReadWrite
		// while the writeback is still unordered. Correct handling is a
		// no-op, but it must be *specified* to be handled.
		{SWBai, SEvForeignGetM},
	}
	snoopSpecified[Spec] = makeSSet(common)
	snoopSpecified[Full] = makeSSet(append(append([]sKey{}, common...), fullOnly...))
}

func makeSSet(keys []sKey) map[sKey]bool {
	m := make(map[sKey]bool, len(keys))
	for _, k := range keys {
		m[k] = true
	}
	return m
}

// Complexity counts states and specified transitions per variant
// (ablation A1 in DESIGN.md).
type Complexity struct {
	Variant     Variant
	States      int
	Transitions int
}

// ComplexityOf counts the specified transitions of a variant.
func ComplexityOf(v Variant) Complexity {
	states := map[SState]bool{}
	for k := range snoopSpecified[v] {
		states[k.s] = true
	}
	return Complexity{Variant: v, States: len(states), Transitions: len(snoopSpecified[v])}
}
