// Package snoop implements the paper §3.2 broadcast snooping MOSI cache
// coherence protocol in two variants:
//
//   - Full: specifies the rare corner case — a cache that has issued a
//     Writeback observes a foreign RequestReadWrite (transferring
//     ownership away) and then, still before its own Writeback is
//     ordered, observes a second foreign RequestReadWrite.
//   - Spec: leaves that transition unspecified and treats observing it
//     as a mis-speculation, exactly as the paper proposes ("instead of
//     forcing the designers to re-work the protocol and re-verify it").
//
// Requests travel on a totally ordered address network (the Bus below);
// data travels on an unordered point-to-point network. Ownership binds
// at request order time, which is also the protocol's logical time base:
// SafetyNet checkpoints the snooping system every N ordered requests
// (paper Table 2: 3,000 requests).
package snoop

import (
	"specsimp/internal/coherence"
	"specsimp/internal/pool"
	"specsimp/internal/sim"
	"specsimp/internal/stats"
)

// BusConfig parameterizes the ordered address network.
type BusConfig struct {
	Nodes int
	// ArbInterval is the minimum spacing between ordered requests (the
	// address network's throughput limit).
	ArbInterval sim.Time
	// DeliverLatency is the delay from ordering to every node (and the
	// memory controller) observing the request.
	DeliverLatency sim.Time
}

// DefaultBusConfig spaces requests 5 cycles apart and delivers in 25.
func DefaultBusConfig(nodes int) BusConfig {
	return BusConfig{Nodes: nodes, ArbInterval: 5, DeliverLatency: 25}
}

// ScaledBusConfig sizes the address network for a w×h machine.
//
// Up to 64 nodes it is the flat diameter-scaled model: delivery latency
// grows with the torus diameter (5 cycles per hop plus a fixed 5-cycle
// arbitration pipeline), matching DefaultBusConfig exactly at the
// paper's 4×4 geometry.
//
// Beyond 64 nodes a single flat broadcast tree stops being a credible
// model, so the config switches to a segmented/hierarchical variant:
// the machine is tiled into 8×8 segments, each with a local arbiter;
// segment winners are ordered on a ring of segment hubs (the global
// ordering point, keeping the total order the protocol needs) and the
// winning request fans back out through every segment. Delivery latency
// is therefore local-collect + hub-ring traverse + local-fanout, each
// at 5 cycles per hop. Note the snooping *system* still caps at 64
// nodes for the scaling study (system.ValidateConfig): every ordered
// request is observed by all nodes, so past that size the experiment
// measures broadcast serialization, not protocol scaling. The segmented
// model keeps protocol-level studies honest if that cap is ever lifted.
func ScaledBusConfig(w, h int) BusConfig {
	if w*h <= 64 {
		diameter := sim.Time(w/2 + h/2)
		return BusConfig{Nodes: w * h, ArbInterval: 5, DeliverLatency: 5 + 5*diameter}
	}
	segW, segH := (w+7)/8, (h+7)/8 // 8×8 segments per dimension
	intraW, intraH := (w+segW-1)/segW, (h+segH-1)/segH
	intra := sim.Time(intraW/2 + intraH/2) // segment-torus diameter
	inter := sim.Time(segW/2 + segH/2)     // hub-ring diameter
	return BusConfig{
		Nodes:       w * h,
		ArbInterval: 5,
		// arb pipeline + to-hub + hub ring + fan-out, 5 cycles/hop.
		DeliverLatency: 5 + 5*intra + 5*inter + 5*intra,
	}
}

// BusObserver receives every ordered request, in the same global order
// at every node.
type BusObserver interface {
	OnOrdered(seq uint64, msg coherence.Msg)
}

// AddressNet is the ordered address network the snooping protocol is
// written against. *Bus is the timed implementation; the exploration
// harness (explore.go) substitutes a scriptable one that lets the
// explorer choose the ordering of concurrently submitted requests.
type AddressNet interface {
	// Submit queues a request; it is eventually ordered and observed by
	// every attached observer in the same global order.
	Submit(msg coherence.Msg)
	// Attach registers an observer (cache or memory controller).
	Attach(o BusObserver)
	// Ordered returns the number of requests ordered so far.
	Ordered() uint64
	// Reset drops every submitted-but-unordered request (recovery).
	Reset()
}

// Bus is the totally ordered broadcast address network. Requests submit
// to a central arbiter; each receives a global sequence number and is
// observed by every attached observer in that order.
type Bus struct {
	k   *sim.Kernel
	cfg BusConfig

	observers []BusObserver
	nextFree  sim.Time
	seq       uint64
	epoch     uint64

	ordered stats.Counter

	// free recycles the boxed messages that ride inside delivery events,
	// so steady-state arbitration allocates nothing.
	free pool.FreeList[coherence.Msg]

	// OnOrder, if set, is called once per ordered request after all
	// observers — the logical-time hook the snooping SafetyNet
	// checkpoint cadence uses.
	OnOrder func(seq uint64)
}

// NewBus builds an idle bus.
func NewBus(k *sim.Kernel, cfg BusConfig) *Bus {
	return &Bus{k: k, cfg: cfg}
}

// Attach registers an observer (cache or memory controller).
func (b *Bus) Attach(o BusObserver) { b.observers = append(b.observers, o) }

// Ordered returns the number of requests ordered so far.
func (b *Bus) Ordered() uint64 { return b.ordered.Value() }

// Submit queues a request for arbitration. The request is ordered at
// the next free arbitration slot and observed by every node
// DeliverLatency later.
func (b *Bus) Submit(msg coherence.Msg) {
	now := b.k.Now()
	at := now
	if b.nextFree > at {
		at = b.nextFree
	}
	b.nextFree = at + b.cfg.ArbInterval
	seq := b.seq
	b.seq++
	cm := b.free.Get()
	*cm = msg
	b.k.AtEvent(at+b.cfg.DeliverLatency, b, b.epoch, seq, cm)
}

// HandleEvent implements sim.Handler: one ordered-request broadcast.
func (b *Bus) HandleEvent(epoch, seq uint64, p any) {
	cm := p.(*coherence.Msg)
	msg := *cm
	b.free.Put(cm)
	if b.epoch != epoch {
		return // dropped by a recovery reset
	}
	b.ordered.Inc()
	for _, o := range b.observers {
		if b.epoch != epoch {
			return // a recovery fired mid-broadcast; abort the event
		}
		o.OnOrdered(seq, msg)
	}
	if b.epoch != epoch {
		return
	}
	if b.OnOrder != nil {
		b.OnOrder(seq)
	}
}

// Reset drops every submitted-but-undelivered request (a SafetyNet
// recovery discards in-flight traffic).
func (b *Bus) Reset() {
	b.epoch++
	if b.nextFree < b.k.Now() {
		b.nextFree = b.k.Now()
	}
}
