// Package snoop implements the paper §3.2 broadcast snooping MOSI cache
// coherence protocol in two variants:
//
//   - Full: specifies the rare corner case — a cache that has issued a
//     Writeback observes a foreign RequestReadWrite (transferring
//     ownership away) and then, still before its own Writeback is
//     ordered, observes a second foreign RequestReadWrite.
//   - Spec: leaves that transition unspecified and treats observing it
//     as a mis-speculation, exactly as the paper proposes ("instead of
//     forcing the designers to re-work the protocol and re-verify it").
//
// Requests travel on a totally ordered address network (the Bus below);
// data travels on an unordered point-to-point network. Ownership binds
// at request order time, which is also the protocol's logical time base:
// SafetyNet checkpoints the snooping system every N ordered requests
// (paper Table 2: 3,000 requests).
package snoop

import (
	"fmt"

	"specsimp/internal/coherence"
	"specsimp/internal/pool"
	"specsimp/internal/sim"
	"specsimp/internal/stats"
)

// BusConfig parameterizes the ordered address network: a flat central
// arbiter by default, or — when the segment fields are set — the
// segmented network of local arbiters around an ordered hub ring that
// lets snooping machines grow past the flat bus's 64-node ceiling.
type BusConfig struct {
	Nodes int
	// ArbInterval is the minimum spacing between ordered requests (the
	// address network's throughput limit; on the segmented network, the
	// hub ring's — the global ordering point's — slot spacing).
	ArbInterval sim.Time
	// DeliverLatency is the delay from ordering to every node (and the
	// memory controller) observing the request. On the segmented
	// network, ordering happens at the hub ring, so this covers the
	// ring traverse plus the fan-out through every segment.
	DeliverLatency sim.Time

	// Segmented address network (set by ScaledBusConfig past 64 nodes):
	// the Width×Height torus tiles into SegRows×SegCols segments. A
	// request first wins its own segment's arbiter (SegArbInterval slot
	// spacing), travels CollectLatency to the hub ring, is globally
	// ordered there (ArbInterval spacing, sequence numbers assigned in
	// hub order — which is NOT submit order when a near segment's
	// request overtakes a far one's), and fans back out to every node
	// DeliverLatency later. All fields zero = flat bus.
	Width, Height    int
	SegRows, SegCols int
	SegArbInterval   sim.Time
	CollectLatency   sim.Time
}

// Segmented reports whether the config describes the segmented network.
func (c BusConfig) Segmented() bool { return c.SegRows > 1 || c.SegCols > 1 }

// Validate checks the segmented-network geometry (no-op for flat).
func (c BusConfig) Validate() error {
	if !c.Segmented() {
		return nil
	}
	switch {
	case c.Width*c.Height != c.Nodes:
		return fmt.Errorf("snoop: segmented bus geometry %dx%d covers %d nodes, config says %d", c.Width, c.Height, c.Width*c.Height, c.Nodes)
	case c.SegRows < 1 || c.SegCols < 1:
		return fmt.Errorf("snoop: segmented bus needs a positive segment grid, got %dx%d", c.SegRows, c.SegCols)
	case c.SegRows > c.Height || c.SegCols > c.Width:
		return fmt.Errorf("snoop: %dx%d segment grid exceeds the %dx%d torus", c.SegRows, c.SegCols, c.Width, c.Height)
	case c.SegArbInterval < 1 || c.ArbInterval < 1:
		return fmt.Errorf("snoop: segmented bus needs positive arbitration intervals (segment %d, hub %d)", c.SegArbInterval, c.ArbInterval)
	}
	return nil
}

// DefaultBusConfig spaces requests 5 cycles apart and delivers in 25.
func DefaultBusConfig(nodes int) BusConfig {
	return BusConfig{Nodes: nodes, ArbInterval: 5, DeliverLatency: 25}
}

// ScaledBusConfig sizes the address network for a w×h machine.
//
// Up to 64 nodes it is the flat diameter-scaled model: delivery latency
// grows with the torus diameter (5 cycles per hop plus a fixed 5-cycle
// arbitration pipeline), matching DefaultBusConfig exactly at the
// paper's 4×4 geometry.
//
// Beyond 64 nodes a single flat broadcast tree stops being a credible
// model, so the config switches to the segmented network: the machine
// is tiled into 8×8 segments, each with a local arbiter; segment
// winners are ordered on a ring of segment hubs (the global ordering
// point, keeping the total order the protocol needs) and the winning
// request fans back out through every segment. The pipeline is
// simulated — local slot contention, collect to the hub, hub-slot
// contention, broadcast — with each leg at 5 cycles per hop:
// CollectLatency is the segment-torus diameter, DeliverLatency the arb
// pipeline plus hub-ring diameter plus fan-out diameter. The snooping
// *system* caps at system.MaxSegmentedSnoopNodes on this network
// (every ordered request is still observed by all nodes, so past that
// the experiment measures broadcast serialization, not protocol
// scaling); the flat bus caps at system.MaxSnoopNodes.
func ScaledBusConfig(w, h int) BusConfig {
	if w*h <= 64 {
		diameter := sim.Time(w/2 + h/2)
		return BusConfig{Nodes: w * h, ArbInterval: 5, DeliverLatency: 5 + 5*diameter}
	}
	segW, segH := (w+7)/8, (h+7)/8 // 8×8 segments per dimension
	intraW, intraH := (w+segW-1)/segW, (h+segH-1)/segH
	intra := sim.Time(intraW/2 + intraH/2) // segment-torus diameter
	inter := sim.Time(segW/2 + segH/2)     // hub-ring diameter
	return BusConfig{
		Nodes:          w * h,
		ArbInterval:    5,
		Width:          w,
		Height:         h,
		SegRows:        segH,
		SegCols:        segW,
		SegArbInterval: 5,
		CollectLatency: 5 * intra,
		// arb pipeline + hub ring + fan-out, 5 cycles/hop; the collect
		// leg is CollectLatency, before ordering.
		DeliverLatency: 5 + 5*inter + 5*intra,
	}
}

// BusObserver receives every ordered request, in the same global order
// at every node.
type BusObserver interface {
	OnOrdered(seq uint64, msg coherence.Msg)
}

// AddressNet is the ordered address network the snooping protocol is
// written against. *Bus is the timed implementation; the exploration
// harness (explore.go) substitutes a scriptable one that lets the
// explorer choose the ordering of concurrently submitted requests.
type AddressNet interface {
	// Submit queues a request; it is eventually ordered and observed by
	// every attached observer in the same global order.
	Submit(msg coherence.Msg)
	// Attach registers an observer (cache or memory controller).
	Attach(o BusObserver)
	// Ordered returns the number of requests ordered so far.
	Ordered() uint64
	// Reset drops every submitted-but-unordered request (recovery).
	Reset()
}

// Bus is the totally ordered broadcast address network. On the flat
// configuration, requests submit to a central arbiter; each receives a
// global sequence number and is observed by every attached observer in
// that order. On the segmented configuration (BusConfig.Segmented), a
// request first contends for its own segment's arbiter slot, travels to
// the hub ring, receives its sequence number in hub-arrival order —
// the global ordering point — and broadcasts from there. Both paths
// deliver to every observer simultaneously (the fan-out is modeled at
// the diameter, matching ScaledBusConfig's latency decomposition),
// which keeps the quiescence argument simple: a requester observes its
// own request no later than anyone else, so an undelivered broadcast
// always has a live requester-side transaction holding the system
// un-quiesced.
type Bus struct {
	k   *sim.Kernel
	cfg BusConfig

	observers []BusObserver
	nextFree  sim.Time
	seq       uint64
	epoch     uint64

	// Segmented state: per-segment local arbiter slots, the node→segment
	// map, and the hub handler that assigns sequence numbers when a
	// collected request reaches the ring.
	segNextFree []sim.Time
	segOf       []int
	hub         busHub

	ordered stats.Counter

	// free recycles the boxed messages that ride inside delivery events,
	// so steady-state arbitration allocates nothing.
	free pool.FreeList[coherence.Msg]

	// OnOrder, if set, is called once per ordered request after all
	// observers — the logical-time hook the snooping SafetyNet
	// checkpoint cadence uses.
	OnOrder func(seq uint64)
}

// busHub is the hub ring's event handler: it receives collected
// requests (one event per segment winner) and orders them. A separate
// type so hub-arrival and delivery events dispatch to different
// HandleEvent implementations on the same kernel.
type busHub struct{ b *Bus }

// NewBus builds an idle bus; cfg chooses flat or segmented (the config
// must have passed Validate — system.ValidateConfig runs it).
func NewBus(k *sim.Kernel, cfg BusConfig) *Bus {
	b := &Bus{k: k, cfg: cfg}
	b.hub.b = b
	if cfg.Segmented() {
		b.segNextFree = make([]sim.Time, cfg.SegRows*cfg.SegCols)
		b.segOf = make([]int, cfg.Nodes)
		segW := (cfg.Width + cfg.SegCols - 1) / cfg.SegCols
		segH := (cfg.Height + cfg.SegRows - 1) / cfg.SegRows
		for n := range b.segOf {
			x, y := n%cfg.Width, n/cfg.Width
			b.segOf[n] = (y/segH)*cfg.SegCols + x/segW
		}
	}
	return b
}

// Attach registers an observer (cache or memory controller).
func (b *Bus) Attach(o BusObserver) { b.observers = append(b.observers, o) }

// Ordered returns the number of requests ordered so far.
func (b *Bus) Ordered() uint64 { return b.ordered.Value() }

// Submit queues a request for arbitration. Flat: the request is ordered
// at the next free central slot and observed by every node
// DeliverLatency later. Segmented: the request first wins its segment's
// local arbiter slot, then travels CollectLatency to the hub ring,
// where ordering (and sequence numbering) happens on arrival — see
// busHub.HandleEvent.
func (b *Bus) Submit(msg coherence.Msg) {
	now := b.k.Now()
	if b.cfg.Segmented() {
		seg := b.segOf[msg.From]
		at := now
		if b.segNextFree[seg] > at {
			at = b.segNextFree[seg]
		}
		b.segNextFree[seg] = at + b.cfg.SegArbInterval
		cm := b.free.Get()
		*cm = msg
		b.k.AtEvent(at+b.cfg.CollectLatency, &b.hub, b.epoch, 0, cm)
		return
	}
	at := now
	if b.nextFree > at {
		at = b.nextFree
	}
	b.nextFree = at + b.cfg.ArbInterval
	seq := b.seq
	b.seq++
	cm := b.free.Get()
	*cm = msg
	b.k.AtEvent(at+b.cfg.DeliverLatency, b, b.epoch, seq, cm)
}

// HandleEvent implements sim.Handler for hub-ring arrivals on the
// segmented network: the collected request takes the next free hub slot
// — the global ordering point, so the sequence number is assigned here,
// in hub-arrival order rather than submit order — and the broadcast
// fires DeliverLatency later. Hub slots are spaced ArbInterval apart,
// so delivery times are strictly increasing in sequence order and every
// observer sees the global order as its arrival order.
func (h *busHub) HandleEvent(epoch, _ uint64, p any) {
	b := h.b
	cm := p.(*coherence.Msg)
	if b.epoch != epoch {
		b.free.Put(cm)
		return // dropped by a recovery reset
	}
	at := b.k.Now()
	if b.nextFree > at {
		at = b.nextFree
	}
	b.nextFree = at + b.cfg.ArbInterval
	seq := b.seq
	b.seq++
	b.k.AtEvent(at+b.cfg.DeliverLatency, b, b.epoch, seq, cm)
}

// HandleEvent implements sim.Handler: one ordered-request broadcast.
func (b *Bus) HandleEvent(epoch, seq uint64, p any) {
	cm := p.(*coherence.Msg)
	msg := *cm
	b.free.Put(cm)
	if b.epoch != epoch {
		return // dropped by a recovery reset
	}
	b.ordered.Inc()
	for _, o := range b.observers {
		if b.epoch != epoch {
			return // a recovery fired mid-broadcast; abort the event
		}
		o.OnOrdered(seq, msg)
	}
	if b.epoch != epoch {
		return
	}
	if b.OnOrder != nil {
		b.OnOrder(seq)
	}
}

// Reset drops every submitted-but-undelivered request (a SafetyNet
// recovery discards in-flight traffic) — on the segmented network that
// includes requests still in local arbitration or in flight to the hub.
func (b *Bus) Reset() {
	b.epoch++
	if b.nextFree < b.k.Now() {
		b.nextFree = b.k.Now()
	}
	for i, t := range b.segNextFree {
		if t < b.k.Now() {
			b.segNextFree[i] = b.k.Now()
		}
	}
}
