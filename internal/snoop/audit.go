package snoop

import (
	"fmt"
	"slices"

	"specsimp/internal/cache"
	"specsimp/internal/coherence"
)

// BlockVersion returns the globally current version of a block at a
// quiescent point: the owner's copy if one exists, else memory's.
func (p *Protocol) BlockVersion(a coherence.Addr) uint64 {
	a = coherence.BlockAddr(a)
	for _, c := range p.caches {
		if l := c.l2.Peek(a); l != nil {
			s := SState(l.State)
			if s == SM || s == SO {
				return l.Version
			}
		}
	}
	return p.mems[p.Home(a)].store.Read(a)
}

// CacheState returns the controller-visible state of a block at a node.
func (p *Protocol) CacheState(node coherence.NodeID, a coherence.Addr) SState {
	c := p.caches[node]
	a = coherence.BlockAddr(a)
	if c.req != nil && c.req.addr == a {
		return c.req.state
	}
	if c.wb != nil && c.wb.addr == a {
		return c.wb.state
	}
	if l := c.l2.Peek(a); l != nil {
		return SState(l.State)
	}
	return SI
}

// MemVersion returns memory's copy of the block at its home node.
func (p *Protocol) MemVersion(a coherence.Addr) uint64 {
	a = coherence.BlockAddr(a)
	return p.mems[p.Home(a)].store.Read(a)
}

// AuditInvariants verifies coherence invariants at a quiescent point:
// single writer, equal versions across copies, memory currency when
// unowned, and agreement between the memory controller's owner tracking
// and actual cache contents.
func (p *Protocol) AuditInvariants() error {
	if n := p.InFlight(); n != 0 {
		return fmt.Errorf("audit requires quiescence; %d transactions in flight", n)
	}
	type copyInfo struct {
		node    int
		state   SState
		version uint64
	}
	copies := make(map[coherence.Addr][]copyInfo)
	for i, c := range p.caches {
		i := i
		c.l2.ForEach(func(l *cache.Line) {
			copies[l.Addr] = append(copies[l.Addr], copyInfo{i, SState(l.State), l.Version})
		})
	}
	addrs := make(map[coherence.Addr]bool)
	for _, m := range p.mems {
		for a := range m.owner {
			addrs[a] = true
		}
	}
	for a := range copies {
		addrs[a] = true
	}
	// Audit in address order so the first violation reported is the
	// same on every run (map order would make failure messages — and
	// replay triage — nondeterministic).
	sorted := make([]coherence.Addr, 0, len(addrs))
	for a := range addrs {
		sorted = append(sorted, a)
	}
	slices.Sort(sorted)
	for _, a := range sorted {
		home := p.mems[p.Home(a)]
		cs := copies[a]
		owners := 0
		ownerNode := -1
		var version uint64
		versionSet := false
		for _, ci := range cs {
			switch ci.state {
			case SM, SO:
				owners++
				ownerNode = ci.node
			case SS:
			default:
				return fmt.Errorf("block %#x: transient %s in array of node %d", uint64(a), ci.state, ci.node)
			}
			if versionSet && ci.version != version {
				return fmt.Errorf("block %#x: version divergence (%d vs %d)", uint64(a), ci.version, version)
			}
			version, versionSet = ci.version, true
		}
		if owners > 1 {
			return fmt.Errorf("block %#x: %d owners", uint64(a), owners)
		}
		tracked := home.ownerOf(a)
		if owners == 1 && tracked != ownerNode {
			return fmt.Errorf("block %#x: memory tracks owner %d but node %d owns", uint64(a), tracked, ownerNode)
		}
		if owners == 0 && tracked != -1 {
			return fmt.Errorf("block %#x: memory tracks owner %d but no cache owns", uint64(a), tracked)
		}
		memV := home.store.Read(a)
		if versionSet && memV > version {
			return fmt.Errorf("block %#x: memory %d newer than caches %d", uint64(a), memV, version)
		}
		if owners == 0 && versionSet && memV != version {
			return fmt.Errorf("block %#x: unowned but memory %d != cached %d", uint64(a), memV, version)
		}
	}
	return nil
}
