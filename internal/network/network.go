package network

import (
	"fmt"
	"math/bits"

	"specsimp/internal/pool"
	"specsimp/internal/sim"
	"specsimp/internal/stats"
)

// Network is a 2D torus interconnect bound to a simulation kernel.
//
// The hot path — switch arbitration, hop forwarding, endpoint ejection —
// is allocation-free in steady state: messages come from a free list
// (AllocMessage) and return to it on consumption or drop, input queues
// are reusable ring buffers, arbitration scans an occupancy bitmap
// instead of every (port, class) queue, and all recurring work is
// scheduled as typed kernel events rather than closures.
type Network struct {
	k   *sim.Kernel // shard 0's kernel (the only kernel in serial mode)
	cfg Config
	t   topo

	// grp and shardOf describe the conservative-window sharding of the
	// torus (NewOnShards): each node's switch and endpoint live on the
	// kernel of shard shardOf[node], and switch-to-switch arrivals
	// travel through the group's boundary queues. Both are nil/zero for
	// a serial network, where every node shares one kernel and arrivals
	// are scheduled directly.
	grp     *sim.Shards
	shardOf []int

	sw []*swch
	ep []*endpoint

	// seqNext holds the next sequence number to stamp per (src, dst,
	// vnet), flattened row-major by src (see seqIdx): one contiguous
	// allocation instead of nodes² tiny slices, which matters at 256+
	// nodes where the old 3D layout dominated build time. Only src's
	// shard touches src's row block, so the slice is shared across
	// shards without synchronization.
	seqNext []uint64
	// maxSeen holds the highest sequence number that has arrived per
	// (dst, src, vnet), flattened row-major by dst, for reorder
	// detection. dst's row block is owned by dst's shard.
	maxSeen []uint64

	// sts holds one NetStats per shard: every hot-path counter is
	// incremented by exactly one shard, and Stats() merges them with
	// exact integer arithmetic, so totals are identical at any shard
	// count. Serial networks have a single entry, returned live.
	sts []NetStats

	// swByShard[s] lists the switches shard s owns — the per-shard
	// iteration set for window-edge work like publishOccupancy.
	swByShard [][]*swch

	adaptiveDisabled bool
	epoch            uint64 // bumped by Reset to invalidate in-flight arrivals

	// free recycles message structs allocated via AllocMessage, one
	// list per shard (a message is taken from its source's list and
	// returned to the list of whichever shard consumes or drops it).
	// Messages the caller allocated itself are never recycled.
	free []pool.FreeList[Message]

	// TraceFn, when non-nil, receives one event per message lifecycle
	// step. Used by examples/reorder to reproduce Figure 1. Trace
	// consumers must not retain Msg pointers past the callback when the
	// sender uses pooled messages (AllocMessage): the struct is recycled
	// after consumption. Serial networks only: on a sharded network the
	// callback would fire concurrently from every shard, so trace()
	// rejects the combination outright.
	TraceFn func(TraceEvent)

	// PerturbFn, when non-nil, returns an extra injection delay for a
	// message. Natural reorderings are rare (that is the paper's
	// point); experiments that must exercise the mis-speculation path
	// use this hook to amplify them deterministically.
	PerturbFn func(m *Message) sim.Time
}

// NetStats aggregates network measurements. Every field merges with
// exact integer arithmetic (counters, histogram buckets, IntSample
// sums), which is what lets per-shard stats aggregate to bit-identical
// totals regardless of how the torus was partitioned.
type NetStats struct {
	Sent        stats.Counter
	Arrived     stats.Counter // enqueued at destination ingress
	Consumed    stats.Counter // accepted by the client
	Dropped     stats.Counter // discarded by Reset (recovery)
	Reordered   []stats.Counter
	PerVNet     []stats.Counter
	Deflections stats.Counter // unproductive hops taken under Deflection
	Latency     stats.Histogram
	Hops        stats.IntSample

	linkUtil [][numPorts]stats.Utilization
}

// merge folds o into s (exact, order-independent).
func (s *NetStats) merge(o *NetStats) {
	s.Sent.Add(o.Sent.Value())
	s.Arrived.Add(o.Arrived.Value())
	s.Consumed.Add(o.Consumed.Value())
	s.Dropped.Add(o.Dropped.Value())
	s.Deflections.Add(o.Deflections.Value())
	for v := range s.Reordered {
		s.Reordered[v].Add(o.Reordered[v].Value())
		s.PerVNet[v].Add(o.PerVNet[v].Value())
	}
	s.Latency.Merge(&o.Latency)
	s.Hops.Merge(o.Hops)
	for i := range s.linkUtil {
		for d := 0; d < numPorts; d++ {
			s.linkUtil[i][d].Merge(o.linkUtil[i][d])
		}
	}
}

// ReorderRate returns the fraction of arrivals on vnet that arrived
// after a later-sent message from the same source had already arrived.
func (s *NetStats) ReorderRate(vnet int) float64 {
	if vnet >= len(s.PerVNet) || s.PerVNet[vnet].Value() == 0 {
		return 0
	}
	return float64(s.Reordered[vnet].Value()) / float64(s.PerVNet[vnet].Value())
}

// TotalReorderRate returns the reorder fraction across all vnets.
func (s *NetStats) TotalReorderRate() float64 {
	var re, all uint64
	for i := range s.PerVNet {
		re += s.Reordered[i].Value()
		all += s.PerVNet[i].Value()
	}
	if all == 0 {
		return 0
	}
	return float64(re) / float64(all)
}

// MeanLinkUtilization returns the mean busy fraction over all
// switch-to-switch links at time now.
func (s *NetStats) MeanLinkUtilization(now sim.Time) float64 {
	var sum float64
	var n int
	for i := range s.linkUtil {
		for d := North; d <= West; d++ {
			sum += s.linkUtil[i][d].Fraction(uint64(now))
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// fifo is a reusable ring-buffer queue of messages: push, pop and head
// are O(1) and steady-state operation performs no allocation (capacity
// is retained across Reset).
type fifo struct {
	buf  []*Message
	head int
	n    int
}

func (f *fifo) len() int { return f.n }

func (f *fifo) push(m *Message) {
	if f.n == len(f.buf) {
		f.grow()
	}
	f.buf[(f.head+f.n)&(len(f.buf)-1)] = m
	f.n++
}

func (f *fifo) grow() {
	size := len(f.buf) * 2
	if size == 0 {
		size = 8
	}
	nb := make([]*Message, size)
	for i := 0; i < f.n; i++ {
		nb[i] = f.buf[(f.head+i)&(len(f.buf)-1)]
	}
	f.buf = nb
	f.head = 0
}

func (f *fifo) pop() *Message {
	m := f.buf[f.head]
	f.buf[f.head] = nil
	f.head = (f.head + 1) & (len(f.buf) - 1)
	f.n--
	return m
}

func (f *fifo) head0() *Message {
	if f.n == 0 {
		return nil
	}
	return f.buf[f.head]
}

// at returns the i-th queued message (0 = head) without removing it.
func (f *fifo) at(i int) *Message {
	return f.buf[(f.head+i)&(len(f.buf)-1)]
}

// reset empties the queue, releasing message references but keeping the
// ring storage for reuse.
func (f *fifo) reset() {
	clear(f.buf)
	f.head, f.n = 0, 0
}

// Typed-event opcodes (the a0 argument of sim.Handler events).
const (
	swOpArb = iota
	swOpRetry
	swOpArrive
	epOpConsume
	epOpRetry
	netOpLoopback
	netOpInject
)

type swch struct {
	n     *Network
	node  NodeID
	k     *sim.Kernel // the owning shard's kernel
	st    *NetStats   // the owning shard's stats
	shard int
	// in[port][class] are input buffers. The Local port is the
	// injection queue (unbounded: protocol-level MSHRs throttle it).
	in [numPorts][]fifo
	// occ has one bit per (port, class) input queue, set while the
	// queue is nonempty; arbitration iterates set bits only. Config
	// validation caps numPorts*classes at 64.
	occ uint64
	// inCount[port] tracks total queued messages per input port (the
	// sum over classes), maintained on push/pop so the adaptive-routing
	// occupancy signal is O(1) to read.
	inCount [numPorts]int
	// pubOcc[port] is this switch's input occupancy as of the last
	// window edge, published by the owning shard for neighbors to read
	// mid-window (stable until the next edge, so the cross-shard read
	// is race-free and identical at every shard count). It stands in
	// for the serial path's live occupancy read: congestion information
	// with one-window delay — physically, backpressure signals
	// propagate with latency too.
	pubOcc [numPorts]int
	// outBusy[dir] is when the outgoing link in dir frees.
	outBusy [numPorts]sim.Time
	// credits[dir][class] is free space in the downstream input buffer;
	// -1 means unlimited. Used only with separate per-class buffers.
	credits [numPorts][]int
	// poolUsed counts occupied slots of the switch's shared input pool
	// (the §4 simplified design: one pool of BufferSize slots per
	// switch, shared by every neighbor port and message type).
	poolUsed int

	arbPending bool
	rr         int
}

// sharedPool reports whether the simplified shared-pool flow control is
// active (no per-class buffers, finite size).
func (n *Network) sharedPool() bool {
	return !n.cfg.SeparateVNetBuffers && n.cfg.BufferSize > 0
}

type endpoint struct {
	n              *Network
	node           NodeID
	k              *sim.Kernel // the owning shard's kernel
	st             *NetStats   // the owning shard's stats
	shard          int
	client         Client
	ingress        []fifo
	rr             int
	consumePending bool
}

// New builds a network on kernel k. It panics on an invalid config;
// callers assembling whole machines from user-supplied geometry use
// NewChecked (or validate the config first) so a bad topology surfaces
// as an error before any construction happens.
func New(k *sim.Kernel, cfg Config) *Network {
	n, err := NewChecked(k, cfg)
	if err != nil {
		panic(err)
	}
	return n
}

// NewChecked is New with configuration errors returned instead of
// panicking mid-setup.
func NewChecked(k *sim.Kernel, cfg Config) (*Network, error) {
	return build(cfg, nil, nil, k)
}

// NewOnShards builds a network partitioned across a conservative-window
// shard group: node i's switch and endpoint run on the kernel of shard
// shardOf[i], and switch-to-switch arrivals cross shards through the
// group's boundary queues (including same-shard links, so event order
// — and therefore every result — is identical at any shard count).
// The group's window must not exceed cfg.MinHopLatency().
//
// Sharded execution requires unlimited buffering (BufferSize and
// EndpointBufferSize zero): finite buffers return credits to, and the
// shared-pool design reads occupancy of, the upstream switch at zero
// latency, which has no conservative lookahead.
func NewOnShards(g *sim.Shards, cfg Config, shardOf []int) (*Network, error) {
	if len(shardOf) != cfg.NumNodes() {
		return nil, errConfig("shard map size does not match node count")
	}
	if cfg.BufferSize != 0 || cfg.EndpointBufferSize != 0 {
		return nil, errConfig("sharded execution requires unlimited buffering (BufferSize and EndpointBufferSize 0): credit returns have no lookahead")
	}
	if g.Window() > cfg.MinHopLatency() {
		return nil, errConfig("shard window exceeds the minimum hop latency (no conservative lookahead)")
	}
	for _, s := range shardOf {
		if s < 0 || s >= g.N() {
			return nil, errConfig("shard map names a shard outside the group")
		}
	}
	return build(cfg, g, shardOf, g.Kernel(0))
}

func build(cfg Config, g *sim.Shards, shardOf []int, k0 *sim.Kernel) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := &Network{k: k0, cfg: cfg, t: topo{cfg.Width, cfg.Height}, grp: g, shardOf: shardOf}
	nodes := cfg.NumNodes()
	classes := cfg.classes()

	shards := 1
	if g != nil {
		shards = g.N()
	}
	if shardOf == nil {
		n.shardOf = make([]int, nodes)
	}
	n.sts = make([]NetStats, shards)
	for i := range n.sts {
		n.sts[i].Reordered = make([]stats.Counter, cfg.VNets)
		n.sts[i].PerVNet = make([]stats.Counter, cfg.VNets)
		n.sts[i].linkUtil = make([][numPorts]stats.Utilization, nodes)
	}
	n.free = make([]pool.FreeList[Message], shards)

	n.sw = make([]*swch, nodes)
	n.ep = make([]*endpoint, nodes)
	for i := 0; i < nodes; i++ {
		shard := n.shardOf[i]
		nk := n.k
		if g != nil {
			nk = g.Kernel(shard)
		}
		s := &swch{n: n, node: NodeID(i), k: nk, st: &n.sts[shard], shard: shard}
		for p := 0; p < numPorts; p++ {
			s.in[p] = make([]fifo, classes)
		}
		for d := North; d <= West; d++ {
			s.credits[d] = make([]int, classes)
			for c := range s.credits[d] {
				if cfg.BufferSize == 0 {
					s.credits[d][c] = -1
				} else {
					s.credits[d][c] = cfg.BufferSize
				}
			}
		}
		n.sw[i] = s
		n.ep[i] = &endpoint{n: n, node: NodeID(i), k: nk, st: &n.sts[shard], shard: shard,
			ingress: make([]fifo, classes)}
	}

	n.seqNext = make([]uint64, nodes*nodes*cfg.VNets)
	n.maxSeen = make([]uint64, nodes*nodes*cfg.VNets)
	if g != nil {
		n.swByShard = make([][]*swch, shards)
		for i, s := range n.sw {
			n.swByShard[n.shardOf[i]] = append(n.swByShard[n.shardOf[i]], s)
		}
		if cfg.Routing == Adaptive || cfg.Routing == Deflection {
			g.PreWindow(n.publishOccupancy)
		}
	}
	return n, nil
}

// publishOccupancy updates, for every switch the given shard owns, the
// published input-occupancy snapshot neighbors consult when routing
// adaptively. It runs as a PreWindow phase: all shards are quiesced at
// the edge, so the published values are stable (and deterministic) for
// the whole window.
func (n *Network) publishOccupancy(shard int) {
	for _, s := range n.swByShard[shard] {
		s.pubOcc = s.inCount
	}
}

// seqIdx flattens an (a, b, vnet) coordinate of the sequence-number
// tables: row-major by a, then b, then virtual network.
func (n *Network) seqIdx(a, b NodeID, vnet int) int {
	return (int(a)*n.cfg.NumNodes()+int(b))*n.cfg.VNets + vnet
}

// Config returns the network's configuration.
func (n *Network) Config() Config { return n.cfg }

// NumNodes implements Fabric.
func (n *Network) NumNodes() int { return n.cfg.NumNodes() }

// Stats exposes the network's counters. Serial networks return the
// live stats; sharded networks return a merged snapshot (exact integer
// merges, so the totals are identical at any shard count). Call it only
// while the group is quiesced (between Run windows or after Run).
func (n *Network) Stats() *NetStats {
	if len(n.sts) == 1 {
		return &n.sts[0]
	}
	m := &NetStats{
		Reordered: make([]stats.Counter, n.cfg.VNets),
		PerVNet:   make([]stats.Counter, n.cfg.VNets),
		linkUtil:  make([][numPorts]stats.Utilization, n.cfg.NumNodes()),
	}
	for i := range n.sts {
		m.merge(&n.sts[i])
	}
	return m
}

// AttachClient registers the consumer of messages addressed to node.
func (n *Network) AttachClient(node NodeID, c Client) { n.ep[node].client = c }

// SetAdaptiveDisabled toggles the forward-progress fallback from paper
// §3.1: after a recovery, the interconnect selectively disables adaptive
// routing so the re-execution cannot hit the same reordering race.
func (n *Network) SetAdaptiveDisabled(v bool) { n.adaptiveDisabled = v }

// AdaptiveDisabled reports the current routing fallback state.
func (n *Network) AdaptiveDisabled() bool { return n.adaptiveDisabled }

// InFlight returns the number of messages injected but not yet
// consumed (including, in sharded mode, messages waiting in boundary
// queues). Quiesced-state only in sharded mode.
func (n *Network) InFlight() int {
	var sent, consumed, dropped uint64
	for i := range n.sts {
		sent += n.sts[i].Sent.Value()
		consumed += n.sts[i].Consumed.Value()
		dropped += n.sts[i].Dropped.Value()
	}
	return int(sent - consumed - dropped)
}

// AllocMessage returns a zeroed message from the network's free list
// (implementing MessageAllocator). Messages obtained here are recycled
// automatically once consumed by the destination client or dropped by a
// recovery Reset; callers must not retain them past that point.
// Sharded senders use AllocMessageFor so the struct comes from the
// sending shard's list.
func (n *Network) AllocMessage() *Message { return n.allocMsg(0) }

// AllocMessageFor is AllocMessage drawing from the list of src's shard
// (implementing ShardedAllocator).
func (n *Network) AllocMessageFor(src NodeID) *Message {
	return n.allocMsg(n.shardOf[src])
}

func (n *Network) allocMsg(shard int) *Message {
	m := n.free[shard].Get()
	*m = Message{pooled: true}
	return m
}

// releaseMsg returns a pooled message to the free list of the shard
// that consumed or dropped it. Messages not minted by AllocMessage pass
// through untouched.
func (n *Network) releaseMsg(shard int, m *Message) {
	if m == nil || !m.pooled {
		return
	}
	m.pooled = false // guards against double release
	m.Payload = nil
	n.free[shard].Put(m)
}

// HandleEvent implements sim.Handler for network-level typed events
// (delayed injections and loopback arrivals). These are node-local:
// they fire on the source node's shard kernel.
func (n *Network) HandleEvent(a0, a1 uint64, p any) {
	m := p.(*Message)
	if a1 != n.epoch {
		n.sts[n.shardOf[m.Src]].Dropped.Inc()
		n.releaseMsg(n.shardOf[m.Src], m)
		return
	}
	switch a0 {
	case netOpLoopback:
		n.arriveLocal(m)
	case netOpInject:
		n.inject(m)
	}
}

func (n *Network) inject(m *Message) {
	s := n.sw[m.Src]
	s.pushIn(Local, n.cfg.classOf(m.VNet, 0), m)
	s.scheduleArb()
}

// Send injects m at its source. VNet out of range or equal src/dst
// without a size are programming errors and panic. In sharded mode the
// caller must be running on the source node's shard (protocol sends
// always are: a node only sends on its own behalf).
func (n *Network) Send(m *Message) {
	if m.VNet < 0 || m.VNet >= n.cfg.VNets {
		panic(fmt.Sprintf("network: vnet %d out of range", m.VNet))
	}
	if m.Size <= 0 {
		m.Size = CtrlBytesDefault
	}
	if n.grp != nil && m.Size < CtrlBytesDefault {
		// The shard window is derived from the minimum hop latency of a
		// CtrlBytesDefault-sized message; anything smaller would arrive
		// inside the conservative lookahead.
		panic(fmt.Sprintf("network: sharded send of %dB message below the %dB minimum the lookahead window assumes", m.Size, CtrlBytesDefault))
	}
	k := n.sw[m.Src].k
	si := n.seqIdx(m.Src, m.Dst, m.VNet)
	m.Seq = n.seqNext[si]
	n.seqNext[si]++
	m.SentAt = k.Now()
	m.vc = 0
	m.Hops = 0
	n.sw[m.Src].st.Sent.Inc()
	n.trace(TraceInject, m.Src, -1, m)

	var jitter sim.Time
	if n.PerturbFn != nil {
		jitter = n.PerturbFn(m)
	}
	if m.Src == m.Dst {
		// Loopback: bypass the switch fabric, pay propagation only.
		k.AfterEvent(n.cfg.PropDelay+jitter, n, netOpLoopback, n.epoch, m)
		return
	}
	if jitter == 0 {
		n.inject(m)
		return
	}
	k.AfterEvent(jitter, n, netOpInject, n.epoch, m)
}

// CtrlBytesDefault is the assumed size for messages injected without one.
const CtrlBytesDefault = 8

// Kick re-attempts delivery at node; clients call it after clearing the
// condition that made Deliver return false.
func (n *Network) Kick(node NodeID) { n.ep[node].scheduleConsume() }

// Reset drops every in-flight message and restores all buffer credit —
// the network's part of a SafetyNet recovery (in-flight messages are
// part of the checkpointed state being discarded). In sharded mode it
// runs only from window-edge control context, where every shard is
// quiesced at the same instant; drops land in the owning node's shard
// stats so merged totals stay partition-independent.
func (n *Network) Reset() {
	n.epoch++
	for _, s := range n.sw {
		for p := 0; p < numPorts; p++ {
			for c := range s.in[p] {
				q := &s.in[p][c]
				for i := 0; i < q.len(); i++ {
					n.releaseMsg(s.shard, q.at(i))
				}
				s.st.Dropped.Add(uint64(q.len()))
				q.reset()
			}
		}
		s.occ = 0
		s.inCount = [numPorts]int{}
		s.poolUsed = 0
		for d := North; d <= West; d++ {
			for c := range s.credits[d] {
				if n.cfg.BufferSize == 0 {
					s.credits[d][c] = -1
				} else {
					s.credits[d][c] = n.cfg.BufferSize
				}
			}
			if s.outBusy[d] > s.k.Now() {
				s.outBusy[d] = s.k.Now()
			}
		}
	}
	for _, e := range n.ep {
		for c := range e.ingress {
			q := &e.ingress[c]
			for i := 0; i < q.len(); i++ {
				n.releaseMsg(e.shard, q.at(i))
			}
			e.st.Dropped.Add(uint64(q.len()))
			q.reset()
		}
	}
	// Sequence spaces restart: post-recovery traffic is a fresh stream.
	clear(n.seqNext)
	clear(n.maxSeen)
}

func (n *Network) trace(kind TraceEventKind, node NodeID, dir int, m *Message) {
	if n.TraceFn != nil {
		if n.grp != nil {
			panic("network: TraceFn is not supported on a sharded network (the callback would fire concurrently from every shard)")
		}
		n.TraceFn(TraceEvent{At: n.sw[node].k.Now(), Node: node, Dir: dir, Kind: kind, Msg: m})
	}
}

func (n *Network) serLatency(size int) sim.Time { return n.cfg.serLatency(size) }

// ---- switch ----

// HandleEvent implements sim.Handler for switch-level typed events:
// arbitration passes, timed arbitration retries, and hop arrivals.
func (s *swch) HandleEvent(a0, a1 uint64, p any) {
	switch a0 {
	case swOpArb:
		s.arb()
	case swOpRetry:
		// Timed retry for link-busy blocking; cheap duplicate events are
		// tolerated (arb is idempotent).
		s.scheduleArb()
	case swOpArrive:
		m := p.(*Message)
		if a1>>8 != s.n.epoch {
			s.st.Dropped.Inc()
			s.n.releaseMsg(s.shard, m)
			return
		}
		s.pushIn(int(a1&0xff), s.n.cfg.classOf(m.VNet, m.vc), m)
		s.scheduleArb()
	}
}

func (s *swch) pushIn(port, class int, m *Message) {
	s.in[port][class].push(m)
	s.inCount[port]++
	s.occ |= 1 << uint(port*s.n.cfg.classes()+class)
}

// popIn removes the head of the (port, class) queue, maintaining the
// occupancy bitmap.
func (s *swch) popIn(port, class int) *Message {
	q := &s.in[port][class]
	m := q.pop()
	s.inCount[port]--
	if q.len() == 0 {
		s.occ &^= 1 << uint(port*s.n.cfg.classes()+class)
	}
	return m
}

func (s *swch) scheduleArb() {
	if s.arbPending {
		return
	}
	s.arbPending = true
	s.k.AfterEvent(0, s, swOpArb, 0, nil)
}

func (s *swch) scheduleArbAt(t sim.Time) {
	s.k.AtEvent(t, s, swOpRetry, 0, nil)
}

func (s *swch) arb() {
	s.arbPending = false
	n := s.n
	now := s.k.Now()
	classes := n.cfg.classes()
	total := numPorts * classes
	progressed := false
	var retryAt sim.Time = sim.Forever

	// One pass over every currently nonempty input queue in round-robin
	// order starting at s.rr. The occupancy snapshot is safe: only this
	// switch's own pops shrink these queues, and each queue is visited
	// at most once per pass.
	hi := s.occ &^ (1<<uint(s.rr) - 1)
	lo := s.occ & (1<<uint(s.rr) - 1)
	for _, set := range [2]uint64{hi, lo} {
		for set != 0 {
			idx := bits.TrailingZeros64(set)
			set &= set - 1
			port := idx / classes
			class := idx % classes
			m := s.in[port][class].head0()
			if m.Dst == s.node {
				// Eject to the local endpoint.
				ep := n.ep[s.node]
				if !ep.hasSpace(n.cfg.classOf(m.VNet, 0)) {
					continue // ingress full; endpoint consume will re-arb
				}
				s.popIn(port, class)
				s.returnCredit(port, class)
				n.arriveLocal(m)
				progressed = true
				continue
			}
			dir, ok, busyUntil := s.pickOutput(m)
			if !ok {
				if busyUntil > now && busyUntil < retryAt {
					retryAt = busyUntil
				}
				continue
			}
			s.popIn(port, class)
			s.returnCredit(port, class)
			s.forward(m, dir)
			progressed = true
		}
	}
	if progressed {
		s.rr = (s.rr + 1) % total
		s.scheduleArb() // another pass may now make progress
	} else if retryAt != sim.Forever {
		s.scheduleArbAt(retryAt)
	}
}

// pickOutput chooses an output direction for m, honoring routing policy,
// link occupancy and downstream credit. When no direction is usable it
// returns the earliest time a link-busy candidate frees (0 if blocked
// purely on credit).
func (s *swch) pickOutput(m *Message) (dir int, ok bool, busyUntil sim.Time) {
	n := s.n
	now := s.k.Now()
	adaptive := (n.cfg.Routing == Adaptive || n.cfg.Routing == Deflection) && !n.adaptiveDisabled

	if !adaptive {
		d, crosses := n.t.staticNext(s.node, m.Dst)
		if d == Local {
			return 0, false, 0 // shouldn't happen: Dst==node handled earlier
		}
		vc := s.nextVC(m, d, crosses)
		cls := n.cfg.classOf(m.VNet, vc)
		if !s.hasCredit(d, cls) {
			return 0, false, 0
		}
		if s.outBusy[d] > now {
			return 0, false, s.outBusy[d]
		}
		m.vc = vc
		return d, true, 0
	}

	// Adaptive: among productive directions with credit, prefer a free
	// link with the least-occupied downstream input, deterministic
	// tie-break by candidate order.
	var dirBuf [4]int
	cands := n.t.productiveInto(s.node, m.Dst, &dirBuf)
	best := -1
	bestOcc := 1 << 30
	minBusy := sim.Forever
	for _, d := range cands {
		vc := s.nextVC(m, d, n.t.crossesDatelineDir(s.node, d))
		cls := n.cfg.classOf(m.VNet, vc)
		if !s.hasCredit(d, cls) {
			continue
		}
		if s.outBusy[d] > now {
			if s.outBusy[d] < minBusy {
				minBusy = s.outBusy[d]
			}
			continue
		}
		occ := s.downstreamOccupancy(d)
		if occ < bestOcc {
			bestOcc = occ
			best = d
		}
	}
	if best < 0 && n.cfg.Routing == Deflection {
		// Every productive direction is blocked: deflect through any
		// usable output rather than wait on a (possibly cyclic) buffer
		// dependence. The hop is wasted distance but keeps packets
		// moving; livelock, if it arises, trips the transaction
		// timeout (paper footnote 3).
		for d := North; d <= West; d++ {
			vc := s.nextVC(m, d, n.t.crossesDatelineDir(s.node, d))
			if !s.hasCredit(d, n.cfg.classOf(m.VNet, vc)) {
				continue
			}
			if s.outBusy[d] > now {
				if s.outBusy[d] < minBusy {
					minBusy = s.outBusy[d]
				}
				continue
			}
			occ := s.downstreamOccupancy(d)
			if occ < bestOcc {
				bestOcc = occ
				best = d
			}
		}
		if best >= 0 {
			s.st.Deflections.Inc()
		}
	}
	if best < 0 {
		if minBusy != sim.Forever {
			return 0, false, minBusy
		}
		return 0, false, 0
	}
	m.vc = s.nextVC(m, best, n.t.crossesDatelineDir(s.node, best))
	return best, true, 0
}

// downstreamOccupancy is the total queued messages at the input port
// the link in dir feeds — the "outgoing queue length" signal of paper
// §3.1. Serial networks read the neighbor live; sharded networks read
// the neighbor's edge-published snapshot, since the live count may
// belong to another shard executing concurrently (and the estimate
// must be identical at every shard count, so the snapshot is used for
// same-shard neighbors too).
func (s *swch) downstreamOccupancy(dir int) int {
	nb := s.n.sw[s.n.t.neighbor(s.node, dir)]
	if s.n.grp != nil {
		return nb.pubOcc[opposite(dir)]
	}
	return nb.inCount[opposite(dir)]
}

// nextVC computes the virtual channel for the next hop: reset on
// dimension change, escalate to VC1 after crossing the dateline.
func (s *swch) nextVC(m *Message, dir int, crosses bool) int {
	if s.n.cfg.VCsPerVNet < 2 {
		return 0
	}
	vc := m.vc
	if dimension(dir) != dimensionOfHop(m) {
		vc = 0
	}
	if crosses {
		vc = 1
	}
	return vc
}

func dimension(dir int) int {
	if dir == East || dir == West {
		return 0
	}
	return 1
}

// dimensionOfHop is the dimension (X=0, Y=1) of the message's previous
// hop. Dimension-order traffic changes dimension at most once; the
// dateline scheme resets to VC0 whenever a message enters a new ring.
func dimensionOfHop(m *Message) int { return m.dimHint }

func (s *swch) hasCredit(dir, class int) bool {
	if s.n.sharedPool() {
		nb := s.n.sw[s.n.t.neighbor(s.node, dir)]
		return nb.poolUsed < s.n.cfg.BufferSize
	}
	c := s.credits[dir][class]
	return c == -1 || c > 0
}

func (s *swch) forward(m *Message, dir int) {
	n := s.n
	now := s.k.Now()
	cls := n.cfg.classOf(m.VNet, m.vc)
	if n.sharedPool() {
		n.sw[n.t.neighbor(s.node, dir)].poolUsed++
	} else if s.credits[dir][cls] > 0 {
		s.credits[dir][cls]--
	}
	ser := n.serLatency(m.Size)
	s.outBusy[dir] = now + ser
	s.st.linkUtil[s.node][dir].AddBusy(uint64(ser))
	m.Hops++
	m.dimHint = dimension(dir)
	n.trace(TraceForward, s.node, dir, m)

	dst := n.t.neighbor(s.node, dir)
	inPort := opposite(dir)
	if n.grp != nil {
		// Every switch-to-switch arrival — same-shard links included —
		// travels through the boundary queues and enters the target
		// kernel at a window edge. Uniform handoff is what makes event
		// order, and therefore every stat, independent of the shard
		// count: an arrival's position in its bucket never depends on
		// where the partition boundary happens to fall. Link latency is
		// at least the window (ser >= the minimum-size serialization
		// the window was derived from), so the arrival always lands at
		// or beyond the next edge.
		n.grp.Post(s.shard, n.sw[dst].shard, now+ser+n.cfg.PropDelay,
			n.sw[dst], swOpArrive, n.epoch<<8|uint64(inPort), m)
		return
	}
	s.k.AfterEvent(ser+n.cfg.PropDelay, n.sw[dst], swOpArrive,
		n.epoch<<8|uint64(inPort), m)
}

// returnCredit frees the input slot the message occupied and wakes the
// switches that may have been blocked on it. Local-port (injection)
// slots are unbounded.
func (s *swch) returnCredit(port, class int) {
	if port == Local {
		return
	}
	n := s.n
	if n.grp != nil {
		// Sharded networks run with unlimited buffering (enforced at
		// build), so there is no credit to return and no upstream
		// switch blocked on one: skip the zero-latency cross-shard
		// wake-up entirely. An upstream blocked on a busy link retries
		// by timer, and endpoint back-pressure cannot occur.
		return
	}
	if n.sharedPool() {
		// A pool slot freed: any neighbor could have been waiting.
		s.poolUsed--
		for d := North; d <= West; d++ {
			n.sw[n.t.neighbor(s.node, d)].scheduleArb()
		}
		return
	}
	up := n.sw[n.t.neighbor(s.node, port)]
	d := opposite(port)
	if up.credits[d][class] >= 0 {
		up.credits[d][class]++
	}
	up.scheduleArb()
}

// ---- endpoint ----

func (n *Network) arriveLocal(m *Message) {
	st := n.ep[m.Dst].st
	now := n.ep[m.Dst].k.Now()
	m.DeliveredAt = now
	st.Arrived.Inc()
	st.PerVNet[m.VNet].Inc()
	st.Latency.Observe(uint64(now - m.SentAt))
	st.Hops.Observe(uint64(m.Hops))
	if mi := n.seqIdx(m.Dst, m.Src, m.VNet); m.Seq < n.maxSeen[mi] {
		st.Reordered[m.VNet].Inc()
	} else {
		n.maxSeen[mi] = m.Seq
	}
	n.trace(TraceDeliver, m.Dst, -1, m)

	e := n.ep[m.Dst]
	e.ingress[n.cfg.classOf(m.VNet, 0)].push(m)
	e.scheduleConsume()
}

func (e *endpoint) hasSpace(class int) bool {
	if e.n.cfg.EndpointBufferSize == 0 {
		return true
	}
	return e.ingress[class].len() < e.n.cfg.EndpointBufferSize
}

// HandleEvent implements sim.Handler for endpoint-level typed events.
func (e *endpoint) HandleEvent(a0, _ uint64, _ any) {
	switch a0 {
	case epOpConsume:
		e.consumePending = false
		e.consume()
	case epOpRetry:
		e.scheduleConsume()
	}
}

func (e *endpoint) scheduleConsume() {
	if e.consumePending {
		return
	}
	e.consumePending = true
	e.k.AfterEvent(0, e, epOpConsume, 0, nil)
}

func (e *endpoint) consume() {
	n := e.n
	rate := n.cfg.EjectRate
	if rate <= 0 {
		rate = 1
	}
	classes := len(e.ingress)
	consumed := 0
	epoch := n.epoch
	// One pass over classes in rotating order, consuming up to rate.
	for i := 0; i < classes && consumed < rate; i++ {
		c := (e.rr + i) % classes
		m := e.ingress[c].head0()
		if m == nil {
			continue
		}
		ok := e.client == nil || e.client.Deliver(m)
		if n.epoch != epoch {
			// Delivery triggered a recovery; the queues were reset
			// under us. The message was consumed (and accounted as
			// dropped by Reset along with everything queued).
			return
		}
		if !ok {
			continue // head-of-line blocked in this class
		}
		e.ingress[c].pop()
		e.st.Consumed.Inc()
		n.releaseMsg(e.shard, m)
		consumed++
		n.sw[e.node].scheduleArb() // ingress space freed
	}
	if consumed > 0 {
		e.rr = (e.rr + 1) % classes
	}
	// If anything remains, try again next cycle (rate limit) — but only
	// if we made progress; otherwise wait for an explicit Kick.
	if consumed > 0 {
		for c := range e.ingress {
			if e.ingress[c].len() > 0 {
				e.k.AfterEvent(1, e, epOpRetry, 0, nil)
				break
			}
		}
	}
}
