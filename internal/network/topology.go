package network

// NodeID identifies an endpoint/switch position in the torus,
// row-major: node = y*Width + x.
type NodeID int

// Port numbers at each switch. Local is the node interface; the four
// directions are the neighbor links.
const (
	Local = iota
	North // y-1 (wrapping)
	East  // x+1 (wrapping)
	South // y+1 (wrapping)
	West  // x-1 (wrapping)
	numPorts
)

var portNames = [numPorts]string{"local", "north", "east", "south", "west"}

// PortName returns a human-readable port name for traces.
func PortName(p int) string {
	if p >= 0 && p < numPorts {
		return portNames[p]
	}
	return "?"
}

type topo struct {
	w, h int
}

func (t topo) nodes() int { return t.w * t.h }

func (t topo) xy(n NodeID) (int, int) { return int(n) % t.w, int(n) / t.w }

func (t topo) node(x, y int) NodeID {
	x = ((x % t.w) + t.w) % t.w
	y = ((y % t.h) + t.h) % t.h
	return NodeID(y*t.w + x)
}

// neighbor returns the node adjacent to n in direction dir.
func (t topo) neighbor(n NodeID, dir int) NodeID {
	x, y := t.xy(n)
	switch dir {
	case North:
		return t.node(x, y-1)
	case East:
		return t.node(x+1, y)
	case South:
		return t.node(x, y+1)
	case West:
		return t.node(x-1, y)
	}
	return n
}

// opposite returns the port on the receiving switch for a message sent
// out of dir on the sending switch.
func opposite(dir int) int {
	switch dir {
	case North:
		return South
	case South:
		return North
	case East:
		return West
	case West:
		return East
	}
	return Local
}

// ringDist returns the minimal distance and preferred step (+1/-1) from
// a to b on a ring of size n. On ties (exactly halfway) both directions
// are minimal; the returned step is +1 and tie reports true.
func ringDist(a, b, n int) (dist, step int, tie bool) {
	fwd := ((b-a)%n + n) % n
	bwd := n - fwd
	if fwd == 0 {
		return 0, 0, false
	}
	switch {
	case fwd < bwd:
		return fwd, 1, false
	case bwd < fwd:
		return bwd, -1, false
	default:
		return fwd, 1, true
	}
}

// dist returns the minimal hop distance between two nodes on the torus.
func (t topo) dist(a, b NodeID) int {
	ax, ay := t.xy(a)
	bx, by := t.xy(b)
	dx, _, _ := ringDist(ax, bx, t.w)
	dy, _, _ := ringDist(ay, by, t.h)
	return dx + dy
}

// productiveInto returns every direction that reduces the minimal
// distance from cur to dst (both wrap directions on ties), in
// deterministic order: it fills buf and returns the occupied prefix.
// Arbitration calls it per message, so the candidate list must not
// escape to the heap.
func (t topo) productiveInto(cur, dst NodeID, buf *[4]int) []int {
	n := 0
	cx, cy := t.xy(cur)
	dx, dy := t.xy(dst)
	if xd, xstep, xtie := ringDist(cx, dx, t.w); xd > 0 {
		if xstep == 1 || xtie {
			buf[n] = East
			n++
		}
		if xstep == -1 || xtie {
			buf[n] = West
			n++
		}
	}
	if yd, ystep, ytie := ringDist(cy, dy, t.h); yd > 0 {
		if ystep == 1 || ytie {
			buf[n] = South
			n++
		}
		if ystep == -1 || ytie {
			buf[n] = North
			n++
		}
	}
	return buf[:n]
}

// staticNext returns the single dimension-order (X then Y) next hop
// direction, with deterministic tie-breaking (East/South preferred),
// and whether that hop crosses the dateline of its dimension.
//
// The dateline sits on the wrap link between coordinate w-1 and 0; a
// message that crosses it switches to virtual channel 1, which breaks
// the ring's channel-dependence cycle (Dally's scheme, paper's [7]).
func (t topo) staticNext(cur, dst NodeID) (dir int, crossesDateline bool) {
	cx, cy := t.xy(cur)
	dx, dy := t.xy(dst)
	if xd, xstep, _ := ringDist(cx, dx, t.w); xd > 0 {
		if xstep == 1 {
			return East, cx == t.w-1
		}
		return West, cx == 0
	}
	if yd, ystep, _ := ringDist(cy, dy, t.h); yd > 0 {
		if ystep == 1 {
			return South, cy == t.h-1
		}
		return North, cy == 0
	}
	return Local, false
}

// crossesDatelineDir reports whether taking dir from cur wraps around
// the torus edge (used by adaptive routing's VC selection as well).
func (t topo) crossesDatelineDir(cur NodeID, dir int) bool {
	x, y := t.xy(cur)
	switch dir {
	case East:
		return x == t.w-1
	case West:
		return x == 0
	case South:
		return y == t.h-1
	case North:
		return y == 0
	}
	return false
}
