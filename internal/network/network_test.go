package network

import (
	"testing"
	"testing/quick"

	"specsimp/internal/sim"
)

func drainAll(t *testing.T, k *sim.Kernel) {
	t.Helper()
	if !k.Drain(50_000_000) {
		t.Fatal("kernel did not quiesce")
	}
}

func TestStaticDelivery(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, SafeStaticConfig(4, 4, 1.0))
	var got []*Message
	n.AttachClient(5, ClientFunc(func(m *Message) bool {
		got = append(got, m)
		return true
	}))
	n.Send(&Message{Src: 0, Dst: 5, VNet: 0, Size: 8})
	drainAll(t, k)
	if len(got) != 1 {
		t.Fatalf("delivered %d messages, want 1", len(got))
	}
	if got[0].Hops != 2 {
		t.Fatalf("0->5 on 4x4 torus took %d hops, want 2", got[0].Hops)
	}
	if n.InFlight() != 0 {
		t.Fatalf("InFlight=%d after drain", n.InFlight())
	}
}

func TestLoopbackDelivery(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, SafeStaticConfig(4, 4, 1.0))
	delivered := false
	n.AttachClient(3, ClientFunc(func(m *Message) bool {
		delivered = true
		return true
	}))
	n.Send(&Message{Src: 3, Dst: 3, VNet: 1, Size: 8})
	drainAll(t, k)
	if !delivered {
		t.Fatal("loopback message not delivered")
	}
}

func TestAllToAllDeliveryStatic(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, SafeStaticConfig(4, 4, 0.5))
	recv := make([]int, 16)
	for i := 0; i < 16; i++ {
		i := i
		n.AttachClient(NodeID(i), ClientFunc(func(m *Message) bool {
			recv[i]++
			return true
		}))
	}
	sent := 0
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			if s == d {
				continue
			}
			for v := 0; v < 4; v++ {
				n.Send(&Message{Src: NodeID(s), Dst: NodeID(d), VNet: v, Size: 72})
				sent++
			}
		}
	}
	drainAll(t, k)
	total := 0
	for _, r := range recv {
		total += r
	}
	if total != sent {
		t.Fatalf("delivered %d of %d", total, sent)
	}
	if n.Stats().Consumed.Value() != uint64(sent) {
		t.Fatalf("consumed counter %d want %d", n.Stats().Consumed.Value(), sent)
	}
}

func TestStaticNeverReorders(t *testing.T) {
	// Property (paper §3.1): with static routing both messages follow
	// the same path and arrive in order — for any traffic pattern.
	f := func(seed uint64) bool {
		k := sim.NewKernel()
		n := New(k, SafeStaticConfig(4, 4, 0.2))
		r := sim.NewRNG(seed)
		for i := 0; i < 300; i++ {
			src := NodeID(r.Intn(16))
			dst := NodeID(r.Intn(16))
			size := 8
			if r.Bool(0.5) {
				size = 72
			}
			k.At(sim.Time(r.Intn(500)), func() {
				n.Send(&Message{Src: src, Dst: dst, VNet: r.Intn(4), Size: size})
			})
		}
		if !k.Drain(50_000_000) {
			return false
		}
		return n.Stats().TotalReorderRate() == 0 && n.InFlight() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveCanReorder(t *testing.T) {
	// Figure 1: source 0 sends M1 then M2 to destination 5. M1 grabs
	// the East link and serializes for a long time; M2 adaptively takes
	// the South path and arrives first.
	k := sim.NewKernel()
	n := New(k, AdaptiveConfig(4, 4, 1.0))
	var order []uint64
	n.AttachClient(5, ClientFunc(func(m *Message) bool {
		order = append(order, m.Seq)
		return true
	}))
	n.Send(&Message{Src: 0, Dst: 5, VNet: 1, Size: 2000}) // M1, slow
	k.At(1, func() {
		n.Send(&Message{Src: 0, Dst: 5, VNet: 1, Size: 8}) // M2, fast
	})
	drainAll(t, k)
	if len(order) != 2 {
		t.Fatalf("delivered %d, want 2", len(order))
	}
	if order[0] != 1 || order[1] != 0 {
		t.Fatalf("arrival order %v; adaptive routing should deliver M2 before M1", order)
	}
	if n.Stats().Reordered[1].Value() != 1 {
		t.Fatalf("reorder counter = %d, want 1", n.Stats().Reordered[1].Value())
	}
}

func TestAdaptiveDisabledRestoresOrder(t *testing.T) {
	// Forward-progress fallback (paper §3.1): with adaptive routing
	// disabled the same scenario stays in order.
	k := sim.NewKernel()
	n := New(k, AdaptiveConfig(4, 4, 1.0))
	n.SetAdaptiveDisabled(true)
	var order []uint64
	n.AttachClient(5, ClientFunc(func(m *Message) bool {
		order = append(order, m.Seq)
		return true
	}))
	n.Send(&Message{Src: 0, Dst: 5, VNet: 1, Size: 2000})
	k.At(1, func() { n.Send(&Message{Src: 0, Dst: 5, VNet: 1, Size: 8}) })
	drainAll(t, k)
	if len(order) != 2 || order[0] != 0 {
		t.Fatalf("arrival order %v; static fallback must preserve order", order)
	}
}

func TestEndpointHeadOfLineBlockingAndKick(t *testing.T) {
	k := sim.NewKernel()
	cfg := SafeStaticConfig(4, 4, 1.0)
	n := New(k, cfg)
	blocked := true
	var delivered int
	n.AttachClient(1, ClientFunc(func(m *Message) bool {
		if blocked {
			return false
		}
		delivered++
		return true
	}))
	n.Send(&Message{Src: 0, Dst: 1, VNet: 0, Size: 8})
	drainAll(t, k)
	if delivered != 0 {
		t.Fatal("blocked client consumed a message")
	}
	if n.InFlight() != 1 {
		t.Fatalf("InFlight=%d want 1 while blocked", n.InFlight())
	}
	blocked = false
	n.Kick(1)
	drainAll(t, k)
	if delivered != 1 {
		t.Fatalf("delivered=%d after Kick, want 1", delivered)
	}
}

func TestSharedBufferEndpointBackpressure(t *testing.T) {
	// With shared buffers (no virtual networks) a stuck endpoint
	// backpressures into the fabric: Figure 2's enabling condition.
	k := sim.NewKernel()
	cfg := SimplifiedConfig(4, 4, 1.0, 2)
	n := New(k, cfg)
	n.AttachClient(1, ClientFunc(func(m *Message) bool { return false }))
	for i := 0; i < 40; i++ {
		n.Send(&Message{Src: 0, Dst: 1, VNet: 0, Size: 8})
	}
	if !k.Drain(1_000_000) {
		t.Fatal("did not quiesce")
	}
	if n.InFlight() != 40 {
		t.Fatalf("InFlight=%d want 40 (everything stuck)", n.InFlight())
	}
}

func TestSwitchDeadlockPossibleWithoutVCs(t *testing.T) {
	// Paper §4 / Figure 3: with one shared buffer class, tiny buffers
	// and adaptive routing, heavy all-to-all bursts can produce a
	// buffer-cycle deadlock: the kernel quiesces with messages stuck.
	// With the safe static+VC configuration the same traffic always
	// drains. Deadlock is timing-dependent, so we try several seeds and
	// require at least one deadlock without VCs and zero with them.
	deadlocks := 0
	for seed := uint64(0); seed < 20; seed++ {
		if runBurst(t, SimplifiedConfig(4, 4, 1.0, 1), seed) > 0 {
			deadlocks++
		}
	}
	if deadlocks == 0 {
		t.Fatal("no deadlock in 20 seeds with buffer size 1 and no VCs; model cannot reproduce Figure 3")
	}
	for seed := uint64(0); seed < 20; seed++ {
		if left := runBurst(t, SafeStaticConfig(4, 4, 1.0), seed); left != 0 {
			t.Fatalf("seed %d: safe static config deadlocked with %d stuck", seed, left)
		}
	}
}

// runBurst injects a dense synchronized all-to-all burst and returns the
// number of undelivered messages at quiescence.
func runBurst(t *testing.T, cfg Config, seed uint64) int {
	t.Helper()
	k := sim.NewKernel()
	n := New(k, cfg)
	r := sim.NewRNG(seed)
	for i := 0; i < 16; i++ {
		n.AttachClient(NodeID(i), ClientFunc(func(m *Message) bool { return true }))
	}
	for i := 0; i < 1200; i++ {
		src := NodeID(r.Intn(16))
		dst := NodeID(r.Intn(16))
		if src == dst {
			continue
		}
		at := sim.Time(r.Intn(40))
		v := r.Intn(4)
		k.At(at, func() {
			n.Send(&Message{Src: src, Dst: dst, VNet: v, Size: 72})
		})
	}
	if !k.Drain(80_000_000) {
		t.Fatal("kernel did not quiesce")
	}
	return n.InFlight()
}

func TestResetDropsInFlight(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, SafeStaticConfig(4, 4, 0.1))
	var delivered int
	n.AttachClient(10, ClientFunc(func(m *Message) bool {
		delivered++
		return true
	}))
	for i := 0; i < 10; i++ {
		n.Send(&Message{Src: 0, Dst: 10, VNet: 0, Size: 72})
	}
	k.Run(50) // partial progress only
	n.Reset()
	drainAll(t, k)
	if n.InFlight() != 0 {
		t.Fatalf("InFlight=%d after reset+drain", n.InFlight())
	}
	if delivered >= 10 {
		t.Fatalf("delivered=%d; reset should have dropped most messages", delivered)
	}
	// Network must be fully usable after reset.
	n.Send(&Message{Src: 0, Dst: 10, VNet: 0, Size: 8})
	before := delivered
	drainAll(t, k)
	if delivered != before+1 {
		t.Fatal("message after reset not delivered")
	}
}

func TestLatencyAndUtilizationStats(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, SafeStaticConfig(4, 4, 1.0))
	n.AttachClient(2, ClientFunc(func(m *Message) bool { return true }))
	n.Send(&Message{Src: 0, Dst: 2, VNet: 0, Size: 64})
	drainAll(t, k)
	st := n.Stats()
	if st.Latency.N() != 1 {
		t.Fatalf("latency N=%d", st.Latency.N())
	}
	// 2 hops * (64 cycles serialization + 8 prop) = 144.
	if got := st.Latency.Mean(); got < 100 || got > 300 {
		t.Fatalf("latency mean=%v, expected ~144", got)
	}
	if u := st.MeanLinkUtilization(k.Now()); u <= 0 {
		t.Fatalf("mean link utilization=%v, want >0", u)
	}
	if st.Hops.Mean() != 2 {
		t.Fatalf("hops mean=%v want 2", st.Hops.Mean())
	}
}

func TestTopologyDistances(t *testing.T) {
	tp := topo{4, 4}
	cases := []struct {
		a, b NodeID
		d    int
	}{
		{0, 0, 0}, {0, 1, 1}, {0, 3, 1} /* wrap */, {0, 5, 2}, {0, 15, 2}, {0, 10, 4},
	}
	for _, c := range cases {
		if got := tp.dist(c.a, c.b); got != c.d {
			t.Errorf("dist(%d,%d)=%d want %d", c.a, c.b, got, c.d)
		}
	}
}

func TestTopologyNeighborsInverse(t *testing.T) {
	tp := topo{4, 4}
	for n := NodeID(0); n < 16; n++ {
		for d := North; d <= West; d++ {
			nb := tp.neighbor(n, d)
			back := tp.neighbor(nb, opposite(d))
			if back != n {
				t.Fatalf("neighbor(%d,%s) then opposite != identity (%d)", n, PortName(d), back)
			}
		}
	}
}

func TestProductiveDirectionsReduceDistance(t *testing.T) {
	tp := topo{4, 4}
	for a := NodeID(0); a < 16; a++ {
		for b := NodeID(0); b < 16; b++ {
			if a == b {
				continue
			}
			var buf [4]int
			dirs := tp.productiveInto(a, b, &buf)
			if len(dirs) == 0 {
				t.Fatalf("no productive direction %d->%d", a, b)
			}
			for _, d := range dirs {
				if tp.dist(tp.neighbor(a, d), b) != tp.dist(a, b)-1 {
					t.Fatalf("dir %s from %d to %d not productive", PortName(d), a, b)
				}
			}
		}
	}
}

func TestStaticNextReachesDestination(t *testing.T) {
	tp := topo{4, 4}
	for a := NodeID(0); a < 16; a++ {
		for b := NodeID(0); b < 16; b++ {
			cur := a
			for hops := 0; cur != b; hops++ {
				if hops > 8 {
					t.Fatalf("static route %d->%d did not converge", a, b)
				}
				d, _ := tp.staticNext(cur, b)
				if d == Local {
					t.Fatalf("static route %d->%d stalled at %d", a, b, cur)
				}
				cur = tp.neighbor(cur, d)
			}
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Width: 1, Height: 4, LinkBandwidth: 1, VNets: 4},
		{Width: 4, Height: 4, LinkBandwidth: 0, VNets: 4},
		{Width: 4, Height: 4, LinkBandwidth: 1, VNets: 0},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("case %d: bad config validated", i)
		}
	}
	if err := SafeStaticConfig(4, 4, 1).Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

func TestSendPanicsOnBadVNet(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, SafeStaticConfig(4, 4, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("Send with out-of-range vnet did not panic")
		}
	}()
	n.Send(&Message{Src: 0, Dst: 1, VNet: 9})
}

// Property: every message injected under the safe configuration is
// eventually consumed, for arbitrary traffic (deadlock freedom of the
// dateline-VC dimension-order torus).
func TestSafeConfigDeadlockFreeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		return runBurst(t, SafeStaticConfig(4, 4, 0.5), seed) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: adaptive full-buffering config (paper footnote 1) also
// always drains — unlimited buffers cannot form a buffer cycle.
func TestAdaptiveFullBufferingDrainsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		return runBurst(t, AdaptiveConfig(4, 4, 0.5), seed) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (uint64, sim.Time) {
		k := sim.NewKernel()
		n := New(k, SimplifiedConfig(4, 4, 0.5, 8))
		r := sim.NewRNG(99)
		for i := 0; i < 16; i++ {
			n.AttachClient(NodeID(i), ClientFunc(func(m *Message) bool { return true }))
		}
		for i := 0; i < 500; i++ {
			src, dst := NodeID(r.Intn(16)), NodeID(r.Intn(16))
			at := sim.Time(r.Intn(1000))
			k.At(at, func() { n.Send(&Message{Src: src, Dst: dst, VNet: r.Intn(4), Size: 72}) })
		}
		k.Drain(10_000_000)
		return n.Stats().Consumed.Value(), k.Now()
	}
	c1, t1 := run()
	c2, t2 := run()
	if c1 != c2 || t1 != t2 {
		t.Fatalf("runs diverged: (%d,%d) vs (%d,%d)", c1, t1, c2, t2)
	}
}
