package network

import (
	"fmt"

	"specsimp/internal/sim"
)

// Message is a network-level message. Payload carries the protocol-level
// content (a coherence.Msg for the protocol simulators); the network
// itself never inspects it.
type Message struct {
	Src, Dst NodeID
	VNet     int
	Size     int // bytes
	Payload  interface{}

	// Seq is a per-(src,dst,vnet) sequence number stamped by Send, used
	// by the reorder detector (paper §5.3 reports reorder rates per
	// virtual network).
	Seq uint64

	// SentAt is the injection time; DeliveredAt is set on ejection.
	SentAt      sim.Time
	DeliveredAt sim.Time

	// Hops counts switch-to-switch traversals.
	Hops int

	vc      int  // current virtual channel
	dimHint int  // dimension of previous hop, for dateline VC resets
	pooled  bool // minted by Network.AllocMessage; recycled after consumption
}

func (m *Message) String() string {
	return fmt.Sprintf("msg %d->%d vnet=%d vc=%d seq=%d size=%dB", m.Src, m.Dst, m.VNet, m.vc, m.Seq, m.Size)
}

// Fabric is the transport interface the coherence protocols are written
// against. *Network implements it; tests substitute scriptable fabrics
// to force specific message orderings.
type Fabric interface {
	// Send injects a message at its source.
	Send(m *Message)
	// Kick re-attempts delivery at node after a client unblocks.
	Kick(node NodeID)
	// AttachClient registers the consumer for a node.
	AttachClient(node NodeID, c Client)
	// NumNodes returns the endpoint count.
	NumNodes() int
}

// MessageAllocator is implemented by fabrics that recycle message
// structs through a free list (*Network does). Senders that use Alloc
// avoid one allocation per message; the fabric reclaims the struct when
// the destination client consumes it or a recovery drops it, so callers
// must not retain the pointer past delivery.
type MessageAllocator interface {
	AllocMessage() *Message
}

// ShardedAllocator is implemented by fabrics whose free lists are
// striped per shard (*Network is); senders that know their source node
// allocate from the owning shard's list so sharded hot paths stay both
// race-free and allocation-free.
type ShardedAllocator interface {
	AllocMessageFor(src NodeID) *Message
}

// Alloc returns a message from f's free list when f recycles messages,
// or a fresh message otherwise. The hot-path senders (the coherence
// protocols) allocate through this so that scripted test fabrics keep
// working unchanged.
func Alloc(f Fabric) *Message {
	if a, ok := f.(MessageAllocator); ok {
		return a.AllocMessage()
	}
	return &Message{}
}

// AllocFor is Alloc for senders that know the source node; on sharded
// fabrics the message comes from that node's shard's free list.
func AllocFor(f Fabric, src NodeID) *Message {
	if a, ok := f.(ShardedAllocator); ok {
		return a.AllocMessageFor(src)
	}
	return Alloc(f)
}

// Client consumes messages delivered to a node. Deliver is offered the
// head of an ingress queue; returning false leaves the message queued
// (head-of-line blocking — how endpoint deadlock, Figure 2, arises when
// virtual networks are removed). A client that returns false must call
// Network.Kick for its node once it can make progress again.
type Client interface {
	Deliver(m *Message) bool
}

// ClientFunc adapts a function to the Client interface.
type ClientFunc func(m *Message) bool

// Deliver calls f(m).
func (f ClientFunc) Deliver(m *Message) bool { return f(m) }

// TraceEventKind labels points in a message's life for the optional
// trace hook (used by examples/reorder to reproduce Figure 1).
type TraceEventKind uint8

// Trace event kinds.
const (
	TraceInject TraceEventKind = iota
	TraceForward
	TraceDeliver
)

func (k TraceEventKind) String() string {
	switch k {
	case TraceInject:
		return "inject"
	case TraceForward:
		return "forward"
	default:
		return "deliver"
	}
}

// TraceEvent records one step of a message's journey.
type TraceEvent struct {
	At   sim.Time
	Node NodeID
	Dir  int // output direction for TraceForward
	Kind TraceEventKind
	Msg  *Message
}
