package network

import (
	"testing"
	"testing/quick"

	"specsimp/internal/sim"
)

func TestPerturbFnDelaysInjection(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, SafeStaticConfig(4, 4, 1.0))
	n.PerturbFn = func(m *Message) sim.Time {
		if m.VNet == 1 {
			return 5_000
		}
		return 0
	}
	var arrivals []sim.Time
	n.AttachClient(1, ClientFunc(func(m *Message) bool {
		arrivals = append(arrivals, k.Now())
		return true
	}))
	n.Send(&Message{Src: 0, Dst: 1, VNet: 1, Size: 8}) // delayed
	n.Send(&Message{Src: 0, Dst: 1, VNet: 0, Size: 8}) // prompt
	drainAll(t, k)
	if len(arrivals) != 2 {
		t.Fatalf("arrivals=%d", len(arrivals))
	}
	if arrivals[0] >= 5_000 || arrivals[1] < 5_000 {
		t.Fatalf("arrivals=%v; vnet1 should arrive after its 5k hold", arrivals)
	}
}

func TestPerturbCausesSameVNetReorder(t *testing.T) {
	// The fault-injection knob must produce genuine same-vnet
	// reordering: message 1 held, message 2 sent after, arrives first.
	k := sim.NewKernel()
	n := New(k, SafeStaticConfig(4, 4, 1.0))
	first := true
	n.PerturbFn = func(m *Message) sim.Time {
		if m.VNet == 1 && first {
			first = false
			return 5_000
		}
		return 0
	}
	var seqs []uint64
	n.AttachClient(1, ClientFunc(func(m *Message) bool {
		seqs = append(seqs, m.Seq)
		return true
	}))
	n.Send(&Message{Src: 0, Dst: 1, VNet: 1, Size: 8})
	k.At(10, func() { n.Send(&Message{Src: 0, Dst: 1, VNet: 1, Size: 8}) })
	drainAll(t, k)
	if len(seqs) != 2 || seqs[0] != 1 {
		t.Fatalf("seqs=%v; the held message should arrive second", seqs)
	}
	if n.Stats().Reordered[1].Value() != 1 {
		t.Fatalf("reorder not counted")
	}
}

func TestEjectRateLimitsConsumption(t *testing.T) {
	cfg := SafeStaticConfig(4, 4, 8.0) // fast links so ejection dominates
	cfg.EjectRate = 1
	k := sim.NewKernel()
	n := New(k, cfg)
	var times []sim.Time
	n.AttachClient(1, ClientFunc(func(m *Message) bool {
		times = append(times, k.Now())
		return true
	}))
	for i := 0; i < 8; i++ {
		n.Send(&Message{Src: 0, Dst: 1, VNet: 0, Size: 8})
	}
	drainAll(t, k)
	if len(times) != 8 {
		t.Fatalf("consumed %d", len(times))
	}
	for i := 1; i < len(times); i++ {
		if times[i] == times[i-1] {
			t.Fatalf("two consumptions at %d despite rate 1", times[i])
		}
	}
}

// Property: shared-pool credit accounting conserves slots — after any
// traffic fully drains, every switch pool is empty again.
func TestSharedPoolConservationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		k := sim.NewKernel()
		n := New(k, SimplifiedConfig(4, 4, 1.0, 4))
		r := sim.NewRNG(seed)
		for i := 0; i < 16; i++ {
			n.AttachClient(NodeID(i), ClientFunc(func(m *Message) bool { return true }))
		}
		for i := 0; i < 300; i++ {
			src, dst := NodeID(r.Intn(16)), NodeID(r.Intn(16))
			if src == dst {
				continue
			}
			at := sim.Time(r.Intn(2000)) // spread out: avoid deadlock
			k.At(at, func() { n.Send(&Message{Src: src, Dst: dst, VNet: r.Intn(4), Size: 8}) })
		}
		if !k.Drain(50_000_000) {
			return false
		}
		if n.InFlight() != 0 {
			return true // deadlocked runs hold slots legitimately
		}
		for _, s := range n.sw {
			if s.poolUsed != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: per-class credits are likewise conserved on the safe
// configuration.
func TestClassCreditConservationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		k := sim.NewKernel()
		cfg := SafeStaticConfig(4, 4, 1.0)
		n := New(k, cfg)
		r := sim.NewRNG(seed)
		for i := 0; i < 16; i++ {
			n.AttachClient(NodeID(i), ClientFunc(func(m *Message) bool { return true }))
		}
		for i := 0; i < 400; i++ {
			src, dst := NodeID(r.Intn(16)), NodeID(r.Intn(16))
			k.At(sim.Time(r.Intn(500)), func() {
				n.Send(&Message{Src: src, Dst: dst, VNet: r.Intn(4), Size: 72})
			})
		}
		if !k.Drain(50_000_000) {
			return false
		}
		for _, s := range n.sw {
			for d := North; d <= West; d++ {
				for _, c := range s.credits[d] {
					if c != cfg.BufferSize {
						return false
					}
				}
			}
		}
		return n.InFlight() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestDatelineVCEscalation(t *testing.T) {
	// A message crossing the torus wrap must switch to VC1: observable
	// via its buffer class on arrival. We trace forwards and check a
	// wrap route (node 0 -> node 12 goes north across the wrap in one
	// hop: y 0 -> 3).
	k := sim.NewKernel()
	cfg := SafeStaticConfig(4, 4, 1.0)
	n := New(k, cfg)
	var sawWrapForward bool
	n.TraceFn = func(ev TraceEvent) {
		if ev.Kind == TraceForward && ev.Node == 0 && ev.Dir == North {
			sawWrapForward = true
			if ev.Msg.vc != 1 {
				t.Errorf("wrap-crossing hop kept vc=%d, want 1", ev.Msg.vc)
			}
		}
	}
	n.AttachClient(12, ClientFunc(func(m *Message) bool { return true }))
	n.Send(&Message{Src: 0, Dst: 12, VNet: 0, Size: 8})
	drainAll(t, k)
	if !sawWrapForward {
		t.Skip("route did not cross the north wrap; topology changed?")
	}
}

func TestAdaptiveDisabledMatchesStaticPaths(t *testing.T) {
	// With adaptive routing disabled (forward-progress fallback), every
	// message follows the static dimension-order path: X hops first.
	k := sim.NewKernel()
	n := New(k, AdaptiveConfig(4, 4, 1.0))
	n.SetAdaptiveDisabled(true)
	var dirs []int
	n.TraceFn = func(ev TraceEvent) {
		if ev.Kind == TraceForward {
			dirs = append(dirs, ev.Dir)
		}
	}
	n.AttachClient(6, ClientFunc(func(m *Message) bool { return true }))
	n.Send(&Message{Src: 0, Dst: 6, VNet: 0, Size: 8}) // (0,0)->(2,1): EE then S
	drainAll(t, k)
	want := []int{East, East, South}
	if len(dirs) != 3 {
		t.Fatalf("hops=%v", dirs)
	}
	for i := range want {
		if dirs[i] != want[i] {
			t.Fatalf("path %v, want EES", dirs)
		}
	}
	if !n.AdaptiveDisabled() {
		t.Fatal("flag lost")
	}
}
