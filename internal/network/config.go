// Package network implements the multiprocessor interconnect model: a
// two-dimensional bidirectional torus of input-buffered switches with
// credit-based flow control, virtual networks, virtual channels with
// dateline deadlock avoidance, static dimension-order routing, and the
// paper's minimal adaptive routing (paper §3.1: "choose among minimal
// distance paths based on outgoing queue lengths").
//
// Three configurations matter for the reproduction:
//
//   - Safe static baseline: dimension-order routing, per-virtual-network
//     buffers, 2 virtual channels with a dateline — provably deadlock-free.
//   - Adaptive (paper §3.1): adaptive routing with full buffering, per the
//     paper's footnote 1 ("we simplistically avoid deadlock with full
//     buffering"). Does not preserve point-to-point ordering.
//   - Speculatively simplified (paper §4): no virtual networks, no virtual
//     channels, one shared finite buffer pool per input port. Both switch
//     deadlock (Figure 3) and endpoint deadlock (Figure 2) are possible
//     and are recovered from, not avoided.
package network

import (
	"math"

	"specsimp/internal/sim"
)

// RoutingPolicy selects how switches pick output ports.
type RoutingPolicy uint8

// Routing policies.
const (
	// Static is deterministic dimension-order (X then Y) routing. Two
	// messages between the same endpoints always take the same path, so
	// per-virtual-network point-to-point ordering is preserved.
	Static RoutingPolicy = iota
	// Adaptive is minimal adaptive routing: at each hop the switch
	// considers every productive direction and picks the one whose
	// outgoing buffer has most credit (ties broken deterministically).
	Adaptive
	// Deflection is hot-potato-style routing (paper §4: "interconnect
	// designers have used deflection routing to avoid deadlock"): a
	// blocked message takes *any* usable output, even an unproductive
	// one, instead of waiting for a buffer cycle to clear. It trades
	// deadlock for potential livelock, which the coherence transaction
	// timeout also detects (paper footnote 3).
	Deflection
)

func (r RoutingPolicy) String() string {
	switch r {
	case Static:
		return "static"
	case Adaptive:
		return "adaptive"
	default:
		return "deflection"
	}
}

// Config describes an interconnect instance.
type Config struct {
	// Width and Height give the torus dimensions; Width*Height nodes.
	Width, Height int

	// LinkBandwidth is bytes per cycle per unidirectional link. The
	// paper sweeps 400 MB/s to 3.2 GB/s which, at the 4 GHz processor
	// clock, is 0.1 to 0.8 bytes/cycle.
	LinkBandwidth float64

	// PropDelay is the per-hop pipeline latency in cycles (switch
	// traversal + wire flight), paid in addition to serialization.
	PropDelay sim.Time

	// Routing selects static or adaptive routing.
	Routing RoutingPolicy

	// VNets is the number of virtual networks carried. Message VNet
	// metadata is always preserved; SeparateVNetBuffers controls whether
	// it maps to separate buffer classes.
	VNets int

	// SeparateVNetBuffers reserves distinct buffer classes per virtual
	// network (endpoint-deadlock avoidance). When false, all messages
	// share one buffer class per port — the paper §4 simplified design.
	SeparateVNetBuffers bool

	// VCsPerVNet is the number of virtual channels per virtual network.
	// 2 enables the dateline scheme that makes dimension-order routing
	// deadlock-free on a torus. 1 disables VC protection.
	VCsPerVNet int

	// BufferSize is the input buffering capacity in messages. With
	// SeparateVNetBuffers it is the size of each (port, class) input
	// buffer; without (the §4 simplified design) it is the size of one
	// pool per switch shared by every neighbor port and message type —
	// which is how the paper's 16-node system can deadlock at 8-entry
	// buffers despite having only 16 outstanding requests. 0 means
	// unlimited ("full buffering", the paper's footnote-1 treatment for
	// the adaptive network).
	BufferSize int

	// EndpointBufferSize is the per-class capacity of each node's
	// ingress queue. 0 means unlimited.
	EndpointBufferSize int

	// EjectRate is the number of messages an endpoint may consume per
	// cycle. 0 defaults to 1.
	EjectRate int
}

// NumNodes returns Width*Height.
func (c Config) NumNodes() int { return c.Width * c.Height }

// classes returns the number of distinct buffer classes per port.
func (c Config) classes() int {
	if !c.SeparateVNetBuffers {
		return 1
	}
	v := c.VNets
	if v < 1 {
		v = 1
	}
	vc := c.VCsPerVNet
	if vc < 1 {
		vc = 1
	}
	return v * vc
}

// classOf maps a message's virtual network and virtual channel to its
// buffer class under this configuration.
func (c Config) classOf(vnet, vc int) int {
	if !c.SeparateVNetBuffers {
		return 0
	}
	vcs := c.VCsPerVNet
	if vcs < 1 {
		vcs = 1
	}
	if vc >= vcs {
		vc = vcs - 1
	}
	return vnet*vcs + vc
}

// Validate reports a descriptive error for unusable configurations.
func (c Config) Validate() error {
	switch {
	case c.Width < 2 || c.Height < 2:
		return errConfig("torus dimensions must be at least 2x2")
	case c.LinkBandwidth <= 0:
		return errConfig("LinkBandwidth must be positive")
	case c.VNets < 1:
		return errConfig("VNets must be at least 1")
	case c.BufferSize < 0 || c.EndpointBufferSize < 0:
		return errConfig("buffer sizes must be non-negative")
	case numPorts*c.classes() > 64:
		// Switch arbitration tracks queue occupancy in one 64-bit
		// bitmap: five ports times at most twelve buffer classes.
		return errConfig("VNets*VCsPerVNet must be at most 12")
	}
	return nil
}

// serLatency is the serialization latency of a size-byte message on
// one link (at least one cycle).
func (c Config) serLatency(size int) sim.Time {
	cyc := math.Ceil(float64(size) / c.LinkBandwidth)
	if cyc < 1 {
		cyc = 1
	}
	return sim.Time(cyc)
}

// MinHopLatency is the smallest possible switch-to-switch delivery
// latency under this configuration: the serialization of a minimum-size
// (CtrlBytesDefault) message plus the propagation delay. It is the
// conservative lookahead bound for intra-run sharding — a cross-shard
// message sent at t cannot arrive before t+MinHopLatency, so shards may
// run that many cycles between synchronizations.
func (c Config) MinHopLatency() sim.Time {
	return c.PropDelay + c.serLatency(CtrlBytesDefault)
}

type errConfig string

func (e errConfig) Error() string { return "network: " + string(e) }

// SafeStaticConfig is the deadlock-free baseline: dimension-order
// routing, separate virtual-network buffers, two dateline virtual
// channels, finite buffers.
func SafeStaticConfig(width, height int, bw float64) Config {
	return Config{
		Width: width, Height: height,
		LinkBandwidth:       bw,
		PropDelay:           8,
		Routing:             Static,
		VNets:               4,
		SeparateVNetBuffers: true,
		VCsPerVNet:          2,
		BufferSize:          16,
		EndpointBufferSize:  16,
	}
}

// AdaptiveConfig is the paper §3.1 network: adaptive routing with full
// buffering (footnote 1), separate virtual networks. It can reorder
// messages between a source/destination pair.
func AdaptiveConfig(width, height int, bw float64) Config {
	c := SafeStaticConfig(width, height, bw)
	c.Routing = Adaptive
	c.VCsPerVNet = 1
	c.BufferSize = 0 // full buffering
	c.EndpointBufferSize = 0
	return c
}

// SimplifiedConfig is the paper §4 network: no virtual networks or
// channels, one shared finite buffer pool of bufSize messages per
// switch. Deadlock is possible and must be detected and recovered from.
func SimplifiedConfig(width, height int, bw float64, bufSize int) Config {
	c := SafeStaticConfig(width, height, bw)
	c.Routing = Adaptive
	c.SeparateVNetBuffers = false
	c.VCsPerVNet = 1
	c.BufferSize = bufSize
	c.EndpointBufferSize = bufSize
	return c
}

// DeflectionConfig is the §4 alternative: deflection (hot-potato)
// routing. Deflection is fundamentally bufferless — a packet never
// waits on downstream buffer space, it takes any free output — so
// buffer-cycle deadlock cannot form; the cost is unproductive hops and
// potential livelock (caught by the same transaction timeout, paper
// footnote 3). The model reflects this with unbounded buffers and
// deflect-on-busy link selection.
func DeflectionConfig(width, height int, bw float64) Config {
	c := SimplifiedConfig(width, height, bw, 0)
	c.Routing = Deflection
	return c
}
