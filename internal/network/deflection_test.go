package network

import (
	"testing"
	"testing/quick"

	"specsimp/internal/sim"
)

func TestDeflectionDelivery(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, DeflectionConfig(4, 4, 1.0))
	got := 0
	n.AttachClient(9, ClientFunc(func(m *Message) bool {
		got++
		return true
	}))
	for i := 0; i < 20; i++ {
		n.Send(&Message{Src: 0, Dst: 9, VNet: 0, Size: 72})
	}
	drainAll(t, k)
	if got != 20 {
		t.Fatalf("delivered %d/20", got)
	}
}

func TestDeflectionAvoidsBurstDeadlock(t *testing.T) {
	// Where the simplified (waiting) network deadlocks under a dense
	// burst with 1-slot pools, bufferless-style deflection keeps every
	// message moving: zero stuck, and deflections actually happen.
	stuckSimplified, stuckDeflect := 0, 0
	deflections := uint64(0)
	for seed := uint64(0); seed < 10; seed++ {
		stuckSimplified += runBurst(t, SimplifiedConfig(4, 4, 1.0, 1), seed)
		k := sim.NewKernel()
		n := New(k, DeflectionConfig(4, 4, 1.0))
		r := sim.NewRNG(seed)
		for i := 0; i < 16; i++ {
			n.AttachClient(NodeID(i), ClientFunc(func(m *Message) bool { return true }))
		}
		for i := 0; i < 1200; i++ {
			src, dst := NodeID(r.Intn(16)), NodeID(r.Intn(16))
			if src == dst {
				continue
			}
			at := sim.Time(r.Intn(40))
			v := r.Intn(4)
			k.At(at, func() { n.Send(&Message{Src: src, Dst: dst, VNet: v, Size: 72}) })
		}
		if !k.Drain(80_000_000) {
			t.Fatal("kernel did not quiesce")
		}
		stuckDeflect += n.InFlight()
		deflections += n.Stats().Deflections.Value()
	}
	if stuckSimplified == 0 {
		t.Fatal("baseline produced no deadlocks; comparison vacuous")
	}
	if stuckDeflect != 0 {
		t.Fatalf("deflection stuck %d messages (simplified: %d); deflection must not deadlock", stuckDeflect, stuckSimplified)
	}
	if deflections == 0 {
		t.Fatal("no deflections counted")
	}
	t.Logf("stuck: simplified=%d deflection=%d (deflections taken: %d)", stuckSimplified, stuckDeflect, deflections)
}

// Property: deflection routing delivers everything under moderate load
// (2-slot pools), where waiting routing can deadlock.
func TestDeflectionDrainsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		k := sim.NewKernel()
		n := New(k, DeflectionConfig(4, 4, 1.0))
		r := sim.NewRNG(seed)
		for i := 0; i < 16; i++ {
			n.AttachClient(NodeID(i), ClientFunc(func(m *Message) bool { return true }))
		}
		for i := 0; i < 600; i++ {
			src, dst := NodeID(r.Intn(16)), NodeID(r.Intn(16))
			if src == dst {
				continue
			}
			at := sim.Time(r.Intn(100))
			k.At(at, func() { n.Send(&Message{Src: src, Dst: dst, VNet: r.Intn(4), Size: 72}) })
		}
		if !k.Drain(80_000_000) {
			return false
		}
		return n.InFlight() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestDeflectionHopsExceedMinimal(t *testing.T) {
	// Deflected messages take unproductive hops: mean hop count under
	// heavy load exceeds the minimal distance average.
	k := sim.NewKernel()
	n := New(k, DeflectionConfig(4, 4, 1.0))
	for i := 0; i < 16; i++ {
		n.AttachClient(NodeID(i), ClientFunc(func(m *Message) bool { return true }))
	}
	r := sim.NewRNG(7)
	for i := 0; i < 800; i++ {
		src, dst := NodeID(r.Intn(16)), NodeID(r.Intn(16))
		if src == dst {
			continue
		}
		n.Send(&Message{Src: src, Dst: dst, VNet: 0, Size: 72})
	}
	drainAll(t, k)
	if n.Stats().Deflections.Value() == 0 {
		t.Skip("load produced no deflections")
	}
	if n.Stats().Hops.Max() <= 4 {
		t.Fatalf("max hops %d never exceeded the torus diameter; deflections unobservable", n.Stats().Hops.Max())
	}
}
