// Package mem models main memory contents as per-block data versions.
// A version is the simulator's stand-in for a block's value: every store
// produces a new, strictly larger version, so stale data arriving
// anywhere becomes detectable by comparison.
package mem

import "specsimp/internal/coherence"

// Store maps block addresses to data versions. Unwritten blocks read as
// version 0. The zero value is not usable; use NewStore.
type Store struct {
	versions map[coherence.Addr]uint64
}

// NewStore returns an empty memory image.
func NewStore() *Store {
	return &Store{versions: make(map[coherence.Addr]uint64)}
}

// Read returns the version of block a (0 if never written).
func (s *Store) Read(a coherence.Addr) uint64 {
	return s.versions[coherence.BlockAddr(a)]
}

// Write sets the version of block a.
func (s *Store) Write(a coherence.Addr, v uint64) {
	s.versions[coherence.BlockAddr(a)] = v
}

// Len returns the number of blocks ever written.
func (s *Store) Len() int { return len(s.versions) }

// ForEach visits every written block in unspecified order. Callers
// needing a canonical order (state fingerprinting) must sort; blocks
// holding version 0 are indistinguishable from unwritten ones and are
// skipped.
func (s *Store) ForEach(fn func(a coherence.Addr, v uint64)) {
	//detlint:allow maporder visitor is documented unspecified-order; canonical consumers collect and sort
	for a, v := range s.versions {
		if v != 0 {
			fn(a, v)
		}
	}
}
