package explore

import (
	"fmt"
	"slices"
)

// idSet is a small set of transition IDs, allocated lazily.
type idSet map[uint64]struct{}

func (s *idSet) add(id uint64) {
	if *s == nil {
		*s = make(idSet, 4)
	}
	(*s)[id] = struct{}{}
}

func (s idSet) has(id uint64) bool {
	_, ok := s[id]
	return ok
}

// frame is one state on the DFS stack.
type frame struct {
	// viaID/viaMeta is the transition that produced this state from
	// its parent (unset on the root frame).
	viaID   uint64
	viaMeta Transition

	enabled []Transition
	index   map[uint64]int // ID -> position in enabled

	sleep     idSet // asleep on entry + completed sibling subtrees
	done      idSet // explored from this state
	blocked   idSet // back-pressured at this state
	backtrack idSet // DPOR: transitions that must be explored (nil = all)

	// introduced lists IDs first enabled at this state, for map
	// cleanup when the frame pops.
	introduced []uint64
	// frozen marks replayed task-prefix frames: visible to DPOR race
	// scans and replay, but never explored from.
	frozen bool
}

// task is one independent subtree of the exploration: a choice prefix
// plus the sleep set its root inherited from already-dispatched
// sibling subtrees.
type task struct {
	choices   []uint64
	rootSleep []uint64
}

// engine explores one subtree sequentially. Backtracking restores
// model state by replaying the choice prefix from Reset (the models
// cannot snapshot), so the stack stores choices, not states.
type engine struct {
	cfg   Config
	m     Model
	res   Result
	stack []*frame

	// born maps a transition ID to the depth of the frame where it
	// first became enabled; its sender is the transition entering that
	// frame. Valid for IDs on or above the current stack only.
	born map[uint64]int
	meta map[uint64]Transition

	enc     Enc
	visited map[uint64][]visitedEntry
	nstates int

	ebuf     []Transition
	keybuf   []uint64
	ancbuf   []int
	dirty    bool // model state is past the top frame; replay before Take
	maxDepth int  // live depth budget for this task
	aborted  bool
}

type visitedEntry struct {
	d2 uint64
	// sleeps holds the canonical (content-key, sorted) sleep sets this
	// state was explored under; a revisit whose sleep set is a
	// superset of any stored one is fully covered.
	sleeps [][]uint64
}

func newEngine(cfg Config, m Model) *engine {
	return &engine{cfg: cfg, m: m}
}

// runTask explores one subtree and returns its task-local result.
func (e *engine) runTask(t task) Result {
	e.res = Result{}
	e.stack = e.stack[:0]
	e.born = make(map[uint64]int)
	e.meta = make(map[uint64]Transition)
	e.visited = make(map[uint64][]visitedEntry)
	e.nstates = 0
	e.dirty = false
	e.aborted = false
	e.maxDepth = e.cfg.MaxDepth + len(t.choices)

	e.m.Reset()
	e.pushFrame(0, Transition{}, nil)
	for _, c := range t.choices {
		cur := e.top()
		cur.frozen = true
		st := e.safeTake(c)
		if st != Progressed {
			e.abort(fmt.Sprintf("replay of task prefix diverged at %d (step result %d)", c, st))
			return e.res
		}
		e.res.Replayed++
		e.pushFrame(c, e.meta[c], nil)
	}
	root := e.top()
	for _, id := range t.rootSleep {
		if _, ok := root.index[id]; ok {
			root.sleep.add(id)
		}
	}
	if e.cfg.Reduction == ReduceDPOR {
		e.seedBacktrack(root)
	}
	if len(root.enabled) == 0 {
		e.terminalPath()
		return e.res
	}
	e.dfs()
	return e.res
}

func (e *engine) top() *frame {
	if len(e.stack) == 0 {
		return nil
	}
	return e.stack[len(e.stack)-1]
}

func (e *engine) abort(desc string) {
	e.recordViolation(desc)
	e.aborted = true
}

// pushFrame records the state the model currently sits in as a new
// stack frame reached via (viaID, viaMeta) with the given entry sleep.
func (e *engine) pushFrame(viaID uint64, viaMeta Transition, sleep idSet) *frame {
	e.ebuf = e.m.Enabled(e.ebuf[:0])
	f := &frame{
		viaID:   viaID,
		viaMeta: viaMeta,
		enabled: append([]Transition(nil), e.ebuf...),
		index:   make(map[uint64]int, len(e.ebuf)),
		sleep:   sleep,
	}
	depth := len(e.stack)
	for i, t := range f.enabled {
		f.index[t.ID] = i
		if _, ok := e.meta[t.ID]; !ok {
			e.meta[t.ID] = t
			e.born[t.ID] = depth
			f.introduced = append(f.introduced, t.ID)
		}
	}
	e.stack = append(e.stack, f)
	return f
}

func (e *engine) popFrame() {
	f := e.top()
	for _, id := range f.introduced {
		delete(e.meta, id)
		delete(e.born, id)
	}
	e.stack = e.stack[:len(e.stack)-1]
	// The completed subtree puts its entry transition to sleep in the
	// parent, so sibling subtrees skip it until a dependent transition
	// filters it out on descent. Under DPOR this is the classic
	// FG+sleep combination; it is sound only together with the
	// raceUpdate repair that floods the backtrack set whenever a
	// reversal candidate is itself asleep (backtrack additions assume
	// the added transition will actually be explored).
	if p := e.top(); p != nil && !p.frozen && e.cfg.Reduction != ReduceNone {
		p.sleep.add(f.viaID)
	}
	e.dirty = true
}

// seedBacktrack initializes a DPOR frame with its first eligible
// transition; races discovered later add more.
func (e *engine) seedBacktrack(f *frame) {
	f.backtrack = make(idSet, 2)
	for _, t := range f.enabled {
		if !f.sleep.has(t.ID) {
			f.backtrack.add(t.ID)
			return
		}
	}
}

func (e *engine) floodBacktrack(f *frame) {
	for _, t := range f.enabled {
		if !f.sleep.has(t.ID) {
			f.backtrack.add(t.ID)
		}
	}
}

// btAdd adds a race reversal to a backtrack set. A candidate that is
// asleep at that state would never execute there, so the set is
// flooded with every awake transition instead — the FG fallback that
// keeps the FG+sleep combination sound.
func (e *engine) btAdd(f *frame, id uint64) {
	if f.sleep.has(id) || f.blocked.has(id) {
		e.floodBacktrack(f)
		return
	}
	f.backtrack.add(id)
}

// floodStack floods every live frame's backtrack set. DPOR's race
// detection reads races off executed trace suffixes; a path truncated
// with transitions still pending (a detection clearing the queues, an
// unspecified-transition panic, a deadlock) never executes that
// suffix, so the races it would have revealed must be explored
// conservatively instead.
func (e *engine) floodStack() {
	if e.cfg.Reduction != ReduceDPOR {
		return
	}
	for _, f := range e.stack {
		if !f.frozen && f.backtrack != nil {
			e.floodBacktrack(f)
		}
	}
}

// nextCandidate picks the first enabled transition that still needs
// exploring from f, honoring sleep/done/blocked and (under DPOR) the
// backtrack set. Backtrack additions may land before an earlier scan
// position, so the scan always restarts.
func (e *engine) nextCandidate(f *frame) (Transition, bool) {
	for _, t := range f.enabled {
		if f.done.has(t.ID) || f.sleep.has(t.ID) || f.blocked.has(t.ID) {
			continue
		}
		if f.backtrack != nil && !f.backtrack.has(t.ID) {
			continue
		}
		return t, true
	}
	return Transition{}, false
}

func (e *engine) dfs() {
	base := 0
	for _, f := range e.stack {
		if f.frozen {
			base++
		}
	}
	for !e.aborted {
		if len(e.stack) <= base {
			return
		}
		f := e.top()
		if f.frozen {
			return
		}
		if e.res.Paths >= e.cfg.MaxPaths {
			e.res.Truncated = true
			return
		}
		t, ok := e.nextCandidate(f)
		if !ok {
			e.finishFrame(f)
			e.popFrame()
			continue
		}
		if e.dirty && !e.replayToTop() {
			return
		}
		st, panicMsg := e.takeRecover(t.ID)
		if panicMsg != "" {
			f.done.add(t.ID)
			e.res.Paths++
			e.res.Transitions++
			e.recordViolationAt(t.ID, "panic: "+panicMsg)
			e.raceUpdate(t)
			e.floodStack()
			e.dirty = true
			if e.cfg.Reduction != ReduceNone {
				f.sleep.add(t.ID)
			}
			continue
		}
		switch st {
		case Blocked:
			f.blocked.add(t.ID)
			if f.backtrack != nil {
				// The chosen representative cannot run here; fall back
				// to the full persistent set so no race hides behind
				// the back-pressure.
				e.floodBacktrack(f)
			}
		case Detected:
			f.done.add(t.ID)
			e.res.Transitions++
			e.raceUpdate(t)
			e.floodStack()
			e.stack = append(e.stack, &frame{viaID: t.ID, viaMeta: e.meta[t.ID]})
			e.terminalPath()
			e.popFrame()
		case Progressed:
			f.done.add(t.ID)
			e.res.Transitions++
			e.raceUpdate(t)
			child := e.pushFrame(t.ID, e.meta[t.ID], e.childSleep(f, t))
			switch {
			case len(child.enabled) == 0:
				e.terminalPath()
				e.popFrame()
			case len(e.stack)-1 > e.maxDepth:
				e.res.Paths++
				e.recordViolation(fmt.Sprintf("exceeded depth %d", e.cfg.MaxDepth))
				e.floodStack()
				e.popFrame()
			case e.cfg.StateDedup && e.visitedPrune(child):
				e.res.VisitedCut++
				e.popFrame()
			default:
				if e.cfg.Reduction == ReduceDPOR {
					e.seedBacktrack(child)
				}
			}
		}
	}
}

// childSleep carries the parent's sleep set down through t, waking
// every member dependent with t.
func (e *engine) childSleep(f *frame, t Transition) idSet {
	if e.cfg.Reduction == ReduceNone {
		return nil
	}
	var s idSet
	//detlint:allow maporder commutative set union through the pure Independent predicate
	for id := range f.sleep {
		if e.cfg.Independent(e.meta[id], t) {
			s.add(id)
		}
	}
	return s
}

// finishFrame classifies a frame with no remaining candidates. A frame
// that explored nothing is either a sleep-set stub (an equivalent
// interleaving was explored elsewhere) or — when every transition is
// back-pressured with none asleep — a genuinely stuck state.
func (e *engine) finishFrame(f *frame) {
	if len(f.done) > 0 || len(f.enabled) == 0 {
		return
	}
	for _, t := range f.enabled {
		if f.sleep.has(t.ID) {
			e.res.SleepCut++
			return
		}
	}
	// All enabled transitions blocked: a real deadlock. Reposition the
	// model so Finish sees this state.
	if e.dirty && !e.replayToTop() {
		return
	}
	e.floodStack()
	e.terminalPath()
}

// terminalPath accounts one maximal interleaving ending at the model's
// current state.
func (e *engine) terminalPath() {
	e.res.Paths++
	out := e.m.Finish()
	switch out.Status {
	case StatusCompleted:
		e.res.Completed++
		if out.Flagged {
			e.res.Flagged++
		}
	case StatusDetected:
		e.res.Detected++
	default:
		e.res.Stuck++
	}
	if out.Err != "" {
		e.recordViolation(out.Err)
	}
	if e.cfg.CollectTerminals {
		e.enc.Reset()
		e.m.Encode(&e.enc)
		if e.res.Terminals == nil {
			e.res.Terminals = make(map[Digest]int)
		}
		e.res.Terminals[e.enc.Digest()]++
	}
	e.dirty = true
}

// raceUpdate is the dynamic half of DPOR: executing t, walk the trace
// backwards for the most recent transition dependent with t and not a
// causal ancestor of it. The pre-state of that transition must also
// explore the reversal, so t (or, if t was not yet in flight there,
// t's earliest in-flight causal ancestor) joins its backtrack set.
func (e *engine) raceUpdate(t Transition) {
	if e.cfg.Reduction != ReduceDPOR {
		return
	}
	// Causal ancestor transition indices of t: τ_i (entering frame
	// i+1) sent the message chain leading to t.
	anc := e.ancbuf[:0]
	d, ok := e.born[t.ID]
	for ok && d > 0 {
		anc = append(anc, d-1)
		sid := e.stack[d].viaID
		d, ok = e.born[sid]
	}
	e.ancbuf = anc
	inAnc := func(i int) bool {
		for _, a := range anc {
			if a == i {
				return true
			}
		}
		return false
	}
	for i := len(e.stack) - 2; i >= 0; i-- {
		if inAnc(i) {
			continue
		}
		tau := e.stack[i+1].viaMeta
		if e.cfg.Independent(tau, t) {
			continue
		}
		fi := e.stack[i]
		if fi.frozen || fi.backtrack == nil {
			// Fork-zone states explore every non-slept transition
			// already; nothing to add.
			return
		}
		if _, inFlight := fi.index[t.ID]; inFlight {
			e.btAdd(fi, t.ID)
			return
		}
		// t was created after state i: wake its earliest causal
		// ancestor that was in flight there (ancestors are collected
		// deepest-first, so scan from the end).
		for j := len(anc) - 1; j >= 0; j-- {
			if anc[j] <= i {
				continue
			}
			aid := e.stack[anc[j]+1].viaID
			if _, ok := fi.index[aid]; ok {
				e.btAdd(fi, aid)
				return
			}
		}
		e.floodBacktrack(fi)
		return
	}
}

// visitedPrune consults and updates the visited-state table for the
// just-pushed frame. A state is covered iff it was explored before
// under a sleep set no larger than the current one (classic sleep-set
// state caching: explored-from = enabled minus sleep, so a smaller
// stored sleep explored a superset).
func (e *engine) visitedPrune(f *frame) bool {
	e.enc.Reset()
	e.m.Encode(&e.enc)
	dg := e.enc.Digest()
	cur := e.sleepKeys(f.sleep)
	entries := e.visited[dg[0]]
	for i := range entries {
		if entries[i].d2 != dg[1] {
			continue
		}
		ent := &entries[i]
		for _, stored := range ent.sleeps {
			if subsetOf(stored, cur) {
				return true
			}
		}
		if e.nstates < e.cfg.MaxVisited {
			ent.sleeps = keepMinimal(ent.sleeps, cur)
			e.nstates++
		}
		return false
	}
	if e.nstates < e.cfg.MaxVisited {
		e.visited[dg[0]] = append(entries, visitedEntry{
			d2:     dg[1],
			sleeps: [][]uint64{cur},
		})
		e.nstates++
	}
	return false
}

// sleepKeys canonicalizes a sleep set as the sorted content keys of
// its members — comparable across different interleavings reaching
// the same state, unlike the execution-local IDs.
func (e *engine) sleepKeys(s idSet) []uint64 {
	e.keybuf = e.keybuf[:0]
	for id := range s {
		e.keybuf = append(e.keybuf, e.meta[id].Key)
	}
	slices.Sort(e.keybuf)
	return append([]uint64(nil), e.keybuf...)
}

// subsetOf reports a ⊆ b for sorted slices (multiset semantics).
func subsetOf(a, b []uint64) bool {
	i := 0
	for _, v := range a {
		for i < len(b) && b[i] < v {
			i++
		}
		if i >= len(b) || b[i] != v {
			return false
		}
		i++
	}
	return true
}

// keepMinimal adds cur to the stored sleep sets, dropping stored
// supersets of cur (they are now redundant for future pruning).
func keepMinimal(stored [][]uint64, cur []uint64) [][]uint64 {
	kept := stored[:0]
	for _, s := range stored {
		if !subsetOf(cur, s) {
			kept = append(kept, s)
		}
	}
	return append(kept, cur)
}

// replayToTop repositions the model at the top frame's state by
// resetting and re-taking the stack's choice sequence.
func (e *engine) replayToTop() bool {
	e.m.Reset()
	for i := 1; i < len(e.stack); i++ {
		st := e.safeTake(e.stack[i].viaID)
		if st != Progressed {
			e.abort(fmt.Sprintf("replay diverged at step %d id %d (step result %d)", i, e.stack[i].viaID, st))
			return false
		}
		e.res.Replayed++
	}
	e.dirty = false
	return true
}

// safeTake is Take for replay paths, where a panic means divergence.
func (e *engine) safeTake(id uint64) (st Step) {
	st = Blocked
	defer func() {
		if r := recover(); r != nil {
			st = Blocked
		}
	}()
	return e.m.Take(id)
}

func (e *engine) takeRecover(id uint64) (st Step, panicMsg string) {
	defer func() {
		if r := recover(); r != nil {
			panicMsg = fmt.Sprint(r)
		}
	}()
	st = e.m.Take(id)
	return st, ""
}

// recordViolationAt records a violation on the current path extended
// by one final transition (used when that transition itself failed).
func (e *engine) recordViolationAt(finalID uint64, desc string) {
	e.stack = append(e.stack, &frame{viaID: finalID, viaMeta: e.meta[finalID]})
	e.recordViolation(desc)
	e.stack = e.stack[:len(e.stack)-1]
}

// recordViolation captures the current path, rendering each step now
// (the model's per-path descriptions do not survive the next replay).
func (e *engine) recordViolation(desc string) {
	v := Violation{Desc: desc}
	for i := 1; i < len(e.stack); i++ {
		v.Path = append(v.Path, e.stack[i].viaID)
		v.Trace = append(v.Trace, e.m.Describe(e.stack[i].viaID))
	}
	e.res.Violations = append(e.res.Violations, v)
}
