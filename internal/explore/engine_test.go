package explore

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
)

// toyOp is one message of the toy transition system the engine tests
// run on: executing it folds val into its controller's counter with a
// non-commutative update (so same-controller orders yield different
// states), then injects its spawn ops into the pending multiset.
type toyOp struct {
	tag   uint64 // content identity (Transition.Key)
	ctrl  int
	val   uint64
	spawn []*toyOp
	// blocked back-pressures the op while the predicate holds.
	blocked func(state []uint64) bool
	// panics makes execution panic when the predicate holds after the
	// fold — the toy analogue of an unspecified protocol transition.
	panics func(state []uint64) bool
	// detect marks the op as the designated mis-speculation: taking it
	// ends the path as Detected.
	detect bool
}

// toyModel implements Model over a set of root ops.
type toyModel struct {
	roots    []*toyOp
	nctrl    int
	state    []uint64
	pending  []uint64 // live IDs in mint order (= enumeration order)
	byID     map[uint64]*toyOp
	nextID   uint64
	detected bool
}

func newToy(nctrl int, roots []*toyOp) func() Model {
	return func() Model {
		return &toyModel{roots: roots, nctrl: nctrl}
	}
}

func (m *toyModel) Reset() {
	m.state = make([]uint64, m.nctrl)
	m.pending = m.pending[:0]
	m.byID = make(map[uint64]*toyOp)
	m.nextID = 0
	m.detected = false
	for _, op := range m.roots {
		m.inject(op)
	}
}

func (m *toyModel) inject(op *toyOp) {
	m.nextID++
	m.pending = append(m.pending, m.nextID)
	m.byID[m.nextID] = op
}

func (m *toyModel) Enabled(buf []Transition) []Transition {
	for _, id := range m.pending {
		op := m.byID[id]
		buf = append(buf, Transition{
			ID:    id,
			Key:   op.tag,
			Ctrl:  int32(op.ctrl),
			Block: int64(op.val),
		})
	}
	return buf
}

func (m *toyModel) Take(id uint64) Step {
	var op *toyOp
	pos := -1
	for i, p := range m.pending {
		if p == id {
			op, pos = m.byID[id], i
			break
		}
	}
	if op == nil {
		panic(fmt.Sprintf("toy: take of non-pending id %d", id))
	}
	if op.blocked != nil && op.blocked(m.state) {
		return Blocked
	}
	m.pending = append(m.pending[:pos:pos], m.pending[pos+1:]...)
	if op.detect {
		m.detected = true
		m.pending = m.pending[:0]
		return Detected
	}
	m.state[op.ctrl] = m.state[op.ctrl]*1099511628211 + op.val
	if op.panics != nil && op.panics(m.state) {
		panic("toy: unspecified transition")
	}
	for _, sp := range op.spawn {
		m.inject(sp)
	}
	return Progressed
}

func (m *toyModel) Finish() PathOutcome {
	if m.detected {
		return PathOutcome{Status: StatusDetected}
	}
	if len(m.pending) > 0 {
		return PathOutcome{Status: StatusStuck,
			Err: fmt.Sprintf("stuck with %d ops pending", len(m.pending))}
	}
	return PathOutcome{Status: StatusCompleted}
}

func (m *toyModel) Encode(e *Enc) {
	for _, s := range m.state {
		e.U64(s)
	}
	e.Bool(m.detected)
	keys := make([]uint64, 0, len(m.pending))
	for _, id := range m.pending {
		keys = append(keys, m.byID[id].tag)
	}
	e.Multiset(keys)
}

func (m *toyModel) Describe(id uint64) string {
	if op := m.byID[id]; op != nil {
		return fmt.Sprintf("op#%d ctrl=%d val=%d", op.tag, op.ctrl, op.val)
	}
	return fmt.Sprintf("op id=%d", id)
}

var tagSeq uint64

func op(ctrl int, val uint64, spawn ...*toyOp) *toyOp {
	tagSeq++
	return &toyOp{tag: tagSeq, ctrl: ctrl, val: val, spawn: spawn}
}

func terminalKeys(t *testing.T, r Result) []Digest {
	t.Helper()
	if r.Terminals == nil {
		t.Fatal("terminals not collected")
	}
	keys := make([]Digest, 0, len(r.Terminals))
	for d := range r.Terminals {
		keys = append(keys, d)
	}
	sort.Slice(keys, func(i, j int) bool {
		return keys[i][0] < keys[j][0] || (keys[i][0] == keys[j][0] && keys[i][1] < keys[j][1])
	})
	return keys
}

// runMode runs the toy under one reduction mode.
func runMode(t *testing.T, nm func() Model, red Reduction, dedup bool) Result {
	t.Helper()
	r := Run(Config{
		NewModel:         nm,
		Reduction:        red,
		StateDedup:       dedup,
		CollectTerminals: true,
	})
	return r
}

// TestEquivalenceAcrossModes: every reduction mode must reach exactly
// the same set of terminal states — the soundness contract that lets
// the protocol proofs run reduced. The toy mixes same-controller
// races (order-visible), independent ops, and spawn chains.
func TestEquivalenceAcrossModes(t *testing.T) {
	roots := []*toyOp{
		op(0, 1, op(1, 7), op(2, 9)),
		op(0, 2),
		op(1, 3, op(0, 5)),
		op(2, 4),
		op(3, 8),
	}
	nm := newToy(4, roots)
	full := runMode(t, nm, ReduceNone, false)
	sleep := runMode(t, nm, ReduceSleep, true)
	dpor := runMode(t, nm, ReduceDPOR, false)
	for _, r := range []*Result{&full, &sleep, &dpor} {
		if !r.Ok() {
			t.Fatalf("violations: %+v", r.Violations[0])
		}
		if r.Truncated {
			t.Fatal("truncated")
		}
	}
	fullT, sleepT, dporT := terminalKeys(t, full), terminalKeys(t, sleep), terminalKeys(t, dpor)
	if !reflect.DeepEqual(fullT, sleepT) {
		t.Fatalf("sleep+dedup reached %d terminal states, full enumeration %d", len(sleepT), len(fullT))
	}
	if !reflect.DeepEqual(fullT, dporT) {
		t.Fatalf("dpor reached %d terminal states, full enumeration %d", len(dporT), len(fullT))
	}
	if sleep.Paths >= full.Paths || dpor.Paths >= full.Paths {
		t.Fatalf("no reduction: full=%d sleep=%d dpor=%d", full.Paths, sleep.Paths, dpor.Paths)
	}
	t.Logf("terminals=%d, paths: full=%d sleep=%d (cut %d+%d) dpor=%d",
		len(fullT), full.Paths, sleep.Paths, sleep.SleepCut, sleep.VisitedCut, dpor.Paths)
}

// TestReductionOnIndependentOps: n fully independent ops have n! full
// interleavings but a single Mazurkiewicz trace; the reductions must
// collapse them by well over the 10x the acceptance bar asks from the
// protocol scenarios.
func TestReductionOnIndependentOps(t *testing.T) {
	var roots []*toyOp
	for i := 0; i < 6; i++ {
		roots = append(roots, op(i, uint64(i+1)))
	}
	nm := newToy(6, roots)
	full := runMode(t, nm, ReduceNone, false)
	dpor := runMode(t, nm, ReduceDPOR, false)
	if full.Paths != 720 {
		t.Fatalf("full enumeration found %d paths, want 6! = 720", full.Paths)
	}
	if !dpor.Ok() || dpor.Completed == 0 {
		t.Fatalf("dpor: %+v", dpor)
	}
	if dpor.Paths*10 > full.Paths {
		t.Fatalf("dpor explored %d paths vs %d full: less than 10x reduction", dpor.Paths, full.Paths)
	}
	if !reflect.DeepEqual(terminalKeys(t, full), terminalKeys(t, dpor)) {
		t.Fatal("terminal states diverged")
	}
	t.Logf("6 independent ops: full=%d dpor=%d (%.0fx)", full.Paths, dpor.Paths,
		float64(full.Paths)/float64(dpor.Paths))
}

// TestWorkerDeterminism: identical results — counts, violations,
// terminal digests — for every worker count. Run with -race in CI,
// this also proves the frontier has no data races.
func TestWorkerDeterminism(t *testing.T) {
	roots := []*toyOp{
		op(0, 1, op(1, 2), op(2, 3)),
		op(1, 4, op(0, 6)),
		op(2, 5),
		op(3, 7, op(3, 8)),
	}
	nm := newToy(4, roots)
	for _, red := range []Reduction{ReduceDPOR, ReduceSleep} {
		base := Run(Config{NewModel: nm, Reduction: red, StateDedup: true, CollectTerminals: true, Workers: 1})
		for _, w := range []int{2, 8} {
			got := Run(Config{NewModel: nm, Reduction: red, StateDedup: true, CollectTerminals: true, Workers: w})
			if !reflect.DeepEqual(base, got) {
				t.Fatalf("%v: workers=%d diverged from workers=1:\n%+v\nvs\n%+v", red, w, base, got)
			}
		}
		if base.Tasks < 2 {
			t.Fatalf("%v: expected a forked frontier, got %d tasks", red, base.Tasks)
		}
		t.Logf("%v: %d paths over %d tasks, identical at 1/2/8 workers", red, base.Paths, base.Tasks)
	}
}

// TestBlockedTransitions: an op back-pressured until another op runs
// must not be misreported as stuck, and a permanently blocked op must.
func TestBlockedTransitions(t *testing.T) {
	consumer := op(1, 9)
	consumer.blocked = func(state []uint64) bool { return state[0] == 0 }
	roots := []*toyOp{op(0, 1), consumer}
	for _, red := range []Reduction{ReduceNone, ReduceSleep, ReduceDPOR} {
		r := runMode(t, newToy(2, roots), red, red == ReduceSleep)
		if !r.Ok() {
			t.Fatalf("%v: %+v", red, r.Violations[0])
		}
		if r.Completed == 0 || r.Stuck != 0 {
			t.Fatalf("%v: completed=%d stuck=%d", red, r.Completed, r.Stuck)
		}
	}

	dead := op(0, 1)
	dead.blocked = func([]uint64) bool { return true }
	r := runMode(t, newToy(1, []*toyOp{dead}), ReduceDPOR, false)
	if r.Stuck == 0 || r.Ok() {
		t.Fatalf("permanently blocked op not reported: %+v", r)
	}
	if r.Violations[0].Desc == "" {
		t.Fatal("stuck violation carries no description")
	}
}

// TestDetectionAndPanics: a designated detection ends paths as
// Detected in every mode; an order-dependent panic (the toy analogue
// of an unspecified transition) is found by every mode, with a
// non-empty reproducing trace.
func TestDetectionAndPanics(t *testing.T) {
	det := op(1, 5)
	det.detect = true
	roots := []*toyOp{op(0, 1), det, op(2, 3)}
	for _, red := range []Reduction{ReduceNone, ReduceSleep, ReduceDPOR} {
		r := runMode(t, newToy(3, roots), red, red == ReduceSleep)
		if !r.Ok() {
			t.Fatalf("%v: %+v", red, r.Violations[0])
		}
		if r.Detected == 0 || r.Completed != 0 {
			t.Fatalf("%v: detected=%d completed=%d", red, r.Detected, r.Completed)
		}
	}

	// Panic only when ctrl 0 executed val 2 after val 1: exactly one
	// same-controller order is buggy.
	bomb := op(0, 2)
	bomb.panics = func(state []uint64) bool {
		return state[0] == 1*1099511628211+2
	}
	proots := []*toyOp{op(0, 1), bomb, op(1, 7)}
	for _, red := range []Reduction{ReduceNone, ReduceSleep, ReduceDPOR} {
		r := runMode(t, newToy(2, proots), red, red == ReduceSleep)
		if r.Ok() {
			t.Fatalf("%v: order-dependent panic not found", red)
		}
		found := false
		for _, v := range r.Violations {
			if len(v.Path) == 0 || len(v.Trace) != len(v.Path) {
				t.Fatalf("%v: violation without reproducing trace: %+v", red, v)
			}
			found = true
		}
		if !found {
			t.Fatalf("%v: no violation recorded", red)
		}
	}
}

// TestMaxPathsTruncation: the budget stops the exploration and is
// reported.
func TestMaxPathsTruncation(t *testing.T) {
	var roots []*toyOp
	for i := 0; i < 6; i++ {
		roots = append(roots, op(i%2, uint64(i+1)))
	}
	r := Run(Config{NewModel: newToy(2, roots), Reduction: ReduceNone, MaxPaths: 5})
	if !r.Truncated {
		t.Fatalf("not truncated: %+v", r)
	}
}
