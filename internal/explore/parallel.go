package explore

import (
	"fmt"
	"sync"
)

// Run explores the model's full interleaving space under cfg and
// returns the aggregated result.
//
// The exploration tree is split at cfg.ForkDepth into independent
// subtree tasks during a deterministic serial expansion (which also
// accounts for any path that terminates inside the fork zone). Tasks
// then run on a bounded worker pool — one model instance per worker —
// and merge in task order, so the result is identical for every
// Workers value; only wall-clock changes.
func Run(cfg Config) Result {
	cfg = cfg.withDefaults()
	ex := &expander{cfg: cfg, m: cfg.NewModel()}
	tasks := ex.expand()
	res := ex.res
	res.Tasks = len(tasks)

	if len(tasks) == 0 {
		return res
	}
	workers := cfg.Workers
	if workers > len(tasks) {
		workers = len(tasks)
	}
	results := make([]Result, len(tasks))
	if workers <= 1 {
		eng := newEngine(cfg, ex.m) // reuse the expander's model
		for i, t := range tasks {
			results[i] = eng.runTask(t)
		}
	} else {
		var wg sync.WaitGroup
		ch := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				eng := newEngine(cfg, cfg.NewModel())
				for i := range ch {
					results[i] = eng.runTask(tasks[i])
				}
			}()
		}
		for i := range tasks {
			ch <- i
		}
		close(ch)
		wg.Wait()
	}
	for i := range results {
		res.merge(&results[i])
	}
	return res
}

// expander builds the frontier: a serial walk of the tree down to
// ForkDepth that explores every non-slept transition (a persistent set
// valid under every Reduction), emits one task per depth-ForkDepth
// state, and accounts for paths that end earlier. Sleep sets propagate
// across fork-zone siblings exactly as in the engine, so a task's
// subtree never re-explores an interleaving covered by an earlier
// task.
type expander struct {
	cfg   Config
	m     Model
	res   Result
	tasks []task
	ebuf  []Transition
	descs []string
}

func (x *expander) expand() []task {
	x.walk(nil, nil, 0)
	return x.tasks
}

// sleepEntry carries a sleeping transition with its metadata (IDs are
// only meaningful alongside the prefix that minted them, which holds
// here: sleep members were enabled on this prefix).
type sleepEntry struct {
	id   uint64
	meta Transition
}

func (x *expander) walk(choices []uint64, sleep []sleepEntry, level int) {
	if x.res.Truncated {
		return
	}
	if !x.replay(choices) {
		return
	}
	x.ebuf = x.m.Enabled(x.ebuf[:0])
	enabled := append([]Transition(nil), x.ebuf...)
	if len(enabled) == 0 {
		x.terminal(choices)
		return
	}
	if level >= x.cfg.ForkDepth {
		rs := make([]uint64, len(sleep))
		for i, s := range sleep {
			rs[i] = s.id
		}
		x.tasks = append(x.tasks, task{
			choices:   append([]uint64(nil), choices...),
			rootSleep: rs,
		})
		return
	}
	cur := append([]sleepEntry(nil), sleep...)
	asleep := func(id uint64) bool {
		for _, s := range cur {
			if s.id == id {
				return true
			}
		}
		return false
	}
	progressedAny, sleptAny, blockedAll := false, false, true
	for _, t := range enabled {
		if x.res.Paths >= x.cfg.MaxPaths {
			x.res.Truncated = true
			return
		}
		if asleep(t.ID) {
			sleptAny = true
			continue
		}
		if !x.replay(choices) {
			return
		}
		st, panicMsg := x.take(t.ID)
		if panicMsg != "" {
			x.res.Paths++
			x.res.Transitions++
			x.violation(choices, t.ID, "panic: "+panicMsg)
			blockedAll = false
			cur = append(cur, sleepEntry{t.ID, t})
			continue
		}
		switch st {
		case Blocked:
			// Not explored and not asleep: siblings may unblock it.
		case Detected:
			x.res.Transitions++
			x.terminal(append(choices, t.ID))
			blockedAll = false
			cur = append(cur, sleepEntry{t.ID, t})
		case Progressed:
			x.res.Transitions++
			progressedAny = true
			blockedAll = false
			var child []sleepEntry
			for _, s := range cur {
				if x.cfg.Independent(s.meta, t) {
					child = append(child, s)
				}
			}
			x.walk(append(choices, t.ID), child, level+1)
			if x.res.Truncated {
				return
			}
			cur = append(cur, sleepEntry{t.ID, t})
		}
		if x.cfg.Reduction == ReduceNone {
			// Full enumeration ignores sleep sets: drop the entry again.
			if n := len(cur); n > 0 && cur[n-1].id == t.ID {
				cur = cur[:n-1]
			}
		}
	}
	if !progressedAny {
		switch {
		case sleptAny:
			x.res.SleepCut++
		case blockedAll:
			// Deadlock in the fork zone: classify via the model.
			if x.replay(choices) {
				x.terminal(choices)
			}
		}
	}
}

// terminal accounts a maximal path ending at the model's current
// state (the model must be positioned there).
func (x *expander) terminal(choices []uint64) {
	x.res.Paths++
	out := x.m.Finish()
	switch out.Status {
	case StatusCompleted:
		x.res.Completed++
		if out.Flagged {
			x.res.Flagged++
		}
	case StatusDetected:
		x.res.Detected++
	default:
		x.res.Stuck++
	}
	if out.Err != "" {
		x.violation(choices, 0, out.Err)
	}
	if x.cfg.CollectTerminals {
		var enc Enc
		x.m.Encode(&enc)
		if x.res.Terminals == nil {
			x.res.Terminals = make(map[Digest]int)
		}
		x.res.Terminals[enc.Digest()]++
	}
}

func (x *expander) violation(choices []uint64, finalID uint64, desc string) {
	v := Violation{Desc: desc}
	v.Path = append(v.Path, choices...)
	if finalID != 0 {
		v.Path = append(v.Path, finalID)
	}
	for _, id := range v.Path {
		v.Trace = append(v.Trace, x.m.Describe(id))
	}
	x.res.Violations = append(x.res.Violations, v)
}

// replay positions the model after the given choices.
func (x *expander) replay(choices []uint64) bool {
	x.m.Reset()
	for _, c := range choices {
		st, panicMsg := x.take(c)
		if st != Progressed || panicMsg != "" {
			x.res.Violations = append(x.res.Violations, Violation{
				Path: append([]uint64(nil), choices...),
				Desc: fmt.Sprintf("fork-zone replay diverged at id %d (step %d, panic %q)", c, st, panicMsg),
			})
			x.res.Truncated = true
			return false
		}
		x.res.Replayed++
	}
	return true
}

func (x *expander) take(id uint64) (st Step, panicMsg string) {
	defer func() {
		if r := recover(); r != nil {
			panicMsg = fmt.Sprint(r)
		}
	}()
	st = x.m.Take(id)
	return st, ""
}
