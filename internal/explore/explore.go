// Package explore is a shared explicit-state model-checking engine for
// the coherence protocols: depth-first exploration of nondeterministic
// event orders (message deliveries, bus arbitration grants) with
// dynamic partial-order reduction.
//
// The paper motivates speculation precisely by the cost of verifying
// protocols ("the state space explosion problem ... limits the
// viability of various formal verification methods"); the snooping
// corner case of §3.2 was found only "when randomized testing happened
// to uncover it". The per-protocol harnesses this package replaces
// (internal/directory/explore.go, internal/snoop/explore.go before
// PR 4) enumerated *every* interleaving, which capped the provable
// scenarios at two blocks and two or three nodes. This engine prunes
// the exploration three ways, so the same proofs reach 3+ blocks and
// 4+ nodes:
//
//   - Sleep sets (Godefroid): once an event has been explored from a
//     state, sibling branches carry it in a "sleep set" and never
//     re-execute it until a dependent event wakes it, cutting the
//     redundant permutations of commuting events.
//   - Dynamic partial-order reduction (Flanagan–Godefroid, adapted to
//     message delivery): instead of branching on every enabled event,
//     a state initially explores one, and later events that are found
//     to *race* with it (dependent, in flight at that state, not
//     causally ordered) are added to its backtrack set on the fly.
//     DPOR runs combined with sleep sets in the classic way, with the
//     soundness-critical fallback: a reversal candidate that is
//     asleep at its backtrack state floods the set instead (an
//     addition that would never execute loses traces — the pitfall
//     source-set DPOR later formalized away).
//   - Canonical state hashing: each reached state is encoded
//     canonically (in-flight messages as sorted multisets, cache sets
//     in LRU-rank order, no simulation timestamps or sequence
//     numbers) and already-visited states prune the subtree, with the
//     classic sleep-subset side condition.
//
// Soundness: sleep sets and DPOR both preserve every reachable local
// state and every maximal-trace equivalence class, *provided* the
// independence relation is sound. The engine's default relation is
// deliberately coarse: two transitions commute only when they target
// disjoint controllers (and neither is a globally-observed event such
// as a bus grant), which holds by construction for the protocol models
// — a delivery mutates only its destination controller plus the
// in-flight message multiset. State hashing composes soundly with
// sleep sets (the stored-sleep-subset rule below) but not with DPOR's
// backtrack bookkeeping (a pruned subtree can no longer wake races in
// its ancestors — the known stateful-DPOR problem), so enabling
// ReduceDPOR forces dedup off.
//
// Parallelism: the exploration tree is split at a fixed fork depth
// into independent subtree tasks (each carrying its entry sleep set),
// executed by a bounded worker pool on per-worker model instances and
// merged in task order — results are bit-identical for every worker
// count, because the task decomposition depends only on the tree, not
// on scheduling. This is the bounded-frontier shape of irregular
// wavefront propagation on many-core (PAPERS.md).
package explore

import "fmt"

// CtrlGlobal marks a transition observed by every controller (a
// snooping bus grant): it is dependent with every other transition.
const CtrlGlobal int32 = -1

// Transition is one enabled nondeterministic choice at a state — for
// the protocol models, delivering one specific in-flight message or
// granting one queued bus request.
type Transition struct {
	// ID names the underlying event within the current execution: the
	// model assigns it at send/submit time from a deterministic
	// counter, so replaying a choice prefix reproduces the same IDs.
	// IDs from sibling branches are NOT comparable (each branch mints
	// its own), which is why visited-state bookkeeping uses Key.
	ID uint64
	// Key is a canonical content hash of the event (message kind,
	// addresses, endpoints — no send order, no timestamps): equal
	// events reached through different interleavings share a Key.
	Key uint64
	// Ctrl is the destination controller, or CtrlGlobal for events
	// observed by all controllers. The default independence relation
	// commutes transitions with distinct non-global controllers.
	Ctrl int32
	// Block is the coherence block the event concerns (diagnostics;
	// the default independence relation does not consult it).
	Block int64
}

// Step is the result of executing one transition.
type Step uint8

// Step results.
const (
	// Progressed: the transition executed and internal events drained.
	Progressed Step = iota
	// Blocked: the event cannot be consumed in this state (resource
	// back-pressure); the model state is unchanged.
	Blocked
	// Detected: the transition triggered the protocol's designated
	// mis-speculation detection; the path is terminal.
	Detected
)

// Status classifies a terminal state.
type Status uint8

// Terminal statuses.
const (
	// StatusCompleted: the scripted workload finished with no
	// transaction in flight.
	StatusCompleted Status = iota
	// StatusDetected: the path ended at the designated detection.
	StatusDetected
	// StatusStuck: events remain but none can make progress, or the
	// script ended incomplete — a liveness violation.
	StatusStuck
)

// PathOutcome is the model's verdict on a terminal state. A non-empty
// Err is recorded as a violation with the path that produced it
// (invariant breakage, an unexpected detection, a stuck protocol).
// Flagged marks completed paths that exercised a scenario-specific
// transition of interest (e.g. the snooping Full variant absorbing the
// §3.2 corner), counted in Result.Flagged.
type PathOutcome struct {
	Status  Status
	Flagged bool
	Err     string
}

// Model is a deterministic transition system under exploration. The
// engine owns the exploration order; the model owns the semantics.
// Models are single-goroutine; parallel exploration builds one model
// per worker via Config.NewModel.
type Model interface {
	// Reset restores the initial state (the engine replays choice
	// prefixes through Take after a Reset; replays must be exact).
	Reset()
	// Enabled appends the currently enabled transitions to buf and
	// returns it, in a deterministic order. An empty result means the
	// state is terminal (call Finish).
	Enabled(buf []Transition) []Transition
	// Take executes the transition with the given ID and drains the
	// model to quiescence. On Blocked the state must be unchanged.
	Take(id uint64) Step
	// Finish classifies the current (terminal) state.
	Finish() PathOutcome
	// Encode writes the canonical state encoding (no timestamps, no
	// sequence numbers, unordered queues as sorted multisets).
	Encode(e *Enc)
	// Describe renders the event behind id for counterexample output.
	// It is called only for IDs on the current path.
	Describe(id uint64) string
}

// Reduction selects the pruning discipline.
type Reduction uint8

// Reduction modes.
const (
	// ReduceSleep (the default) is Godefroid sleep sets: every state
	// explores all its non-slept transitions, so it composes soundly
	// with state dedup and with the parallel frontier — the mode the
	// big proof runs use.
	ReduceSleep Reduction = iota
	// ReduceDPOR is Flanagan–Godefroid dynamic partial-order reduction
	// combined with sleep sets: each state initially explores a single
	// transition, and races discovered downstream add backtrack
	// points, with the classic fallback (flood the backtrack set when
	// a reversal candidate is asleep — an added transition must
	// actually be explorable, or the combination loses traces). State
	// dedup is forced off: a pruned subtree could no longer wake races
	// in its ancestors, the known stateful-DPOR problem.
	ReduceDPOR
	// ReduceNone is full enumeration — the pre-PR-4 behavior, kept as
	// the baseline the reduction factors are measured against.
	ReduceNone
)

func (r Reduction) String() string {
	switch r {
	case ReduceDPOR:
		return "dpor"
	case ReduceSleep:
		return "sleep"
	default:
		return "none"
	}
}

// Config bounds and parameterizes an exploration.
type Config struct {
	// NewModel builds one model instance; called once per worker.
	NewModel func() Model

	Reduction Reduction
	// StateDedup enables visited-state pruning (forced off under
	// ReduceDPOR).
	StateDedup bool
	// Independent overrides the independence relation. Nil uses the
	// default: both controllers non-global and distinct. An override
	// must be sound (independent transitions commute and never enable
	// or disable one another) or the reduction proves nothing.
	Independent func(a, b Transition) bool

	// MaxPaths caps executed interleavings (0 = 1<<20). The cap
	// applies per subtree task — at every worker count, since the
	// frontier decomposition is independent of Workers — so a run may
	// execute up to MaxPaths × Tasks paths in total.
	MaxPaths int
	// MaxDepth caps transitions per path (0 = 4096); exceeding it is
	// recorded as a violation, like the runaway guard it replaces.
	MaxDepth int
	// MaxVisited caps the visited-state table (0 = 1<<20); beyond it,
	// new states are explored but no longer recorded.
	MaxVisited int

	// Workers bounds the worker pool (0 or 1 = serial execution of
	// the same task decomposition — results are identical for every
	// value).
	Workers int
	// ForkDepth is the frontier split depth (0 = 2; negative = no
	// fork: one task rooted at the initial state, which maximizes
	// DPOR's reduction). The fork zone explores every transition not
	// pruned by sleep-set propagation (sleep mode only), so the task
	// decomposition depends only on the tree; reductions apply within
	// tasks.
	ForkDepth int

	// CollectTerminals records the multiset of terminal-state digests
	// (tests compare them across Reduction modes: every mode must
	// reach the same terminal states).
	CollectTerminals bool
}

func (c Config) withDefaults() Config {
	if c.MaxPaths == 0 {
		c.MaxPaths = 1 << 20
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 4096
	}
	if c.MaxVisited == 0 {
		c.MaxVisited = 1 << 20
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.ForkDepth == 0 {
		c.ForkDepth = 2
	} else if c.ForkDepth < 0 {
		c.ForkDepth = 0 // single task rooted at the initial state
	}
	if c.Independent == nil {
		c.Independent = DisjointCtrl
	}
	if c.Reduction == ReduceDPOR {
		c.StateDedup = false
	}
	return c
}

// DisjointCtrl is the default independence relation: two transitions
// commute iff both target specific, distinct controllers. It is sound
// for the protocol models because a delivery mutates only its
// destination controller and appends to the (order-free) in-flight
// message multiset.
func DisjointCtrl(a, b Transition) bool {
	return a.Ctrl != CtrlGlobal && b.Ctrl != CtrlGlobal && a.Ctrl != b.Ctrl
}

// Violation is one incorrect outcome with its reproducing path.
type Violation struct {
	// Path is the transition ID sequence from the initial state.
	Path []uint64
	// Trace renders each path step via Model.Describe.
	Trace []string
	// Desc is the failure: an invariant error, a panic (an
	// unspecified protocol transition), a stuck state, ...
	Desc string
}

// String renders the violation with its reproducing trace, one
// numbered step per line.
func (v Violation) String() string {
	s := fmt.Sprintf("path %v: %s", v.Path, v.Desc)
	for i, step := range v.Trace {
		s += fmt.Sprintf("\n      %2d. %s", i+1, step)
	}
	return s
}

// Digest is a 128-bit canonical state fingerprint.
type Digest [2]uint64

// Result summarizes an exploration.
type Result struct {
	// Paths counts maximal interleavings executed to a terminal state.
	Paths     int
	Completed int
	Detected  int
	Stuck     int
	// Flagged counts completed paths the model flagged (see PathOutcome).
	Flagged int

	// SleepCut counts subtrees pruned because every remaining choice
	// was asleep (covered by an equivalent explored interleaving);
	// VisitedCut counts subtrees pruned at an already-visited state.
	// Each cut stands for at least one — usually many — interleavings
	// that full enumeration would have executed.
	SleepCut   int
	VisitedCut int

	// Transitions counts executed transitions on explored paths;
	// Replayed counts transitions re-executed to reposition the model
	// after backtracking (the price of snapshot-free state restore).
	Transitions uint64
	Replayed    uint64

	// Tasks is the number of parallel subtree tasks (1 when serial).
	Tasks     int
	Truncated bool

	Violations []Violation

	// Terminals is the terminal-state digest multiset, when collected.
	Terminals map[Digest]int
}

// Ok reports whether no violations were found.
func (r *Result) Ok() bool { return len(r.Violations) == 0 }

// merge folds task-local results in deterministic task order.
func (r *Result) merge(t *Result) {
	r.Paths += t.Paths
	r.Completed += t.Completed
	r.Detected += t.Detected
	r.Stuck += t.Stuck
	r.Flagged += t.Flagged
	r.SleepCut += t.SleepCut
	r.VisitedCut += t.VisitedCut
	r.Transitions += t.Transitions
	r.Replayed += t.Replayed
	r.Truncated = r.Truncated || t.Truncated
	r.Violations = append(r.Violations, t.Violations...)
	if t.Terminals != nil {
		if r.Terminals == nil {
			r.Terminals = make(map[Digest]int, len(t.Terminals))
		}
		for d, n := range t.Terminals {
			r.Terminals[d] += n
		}
	}
}
