package explore

import "slices"

// Enc accumulates a canonical state encoding and folds it into a
// 128-bit digest. Models write their state through the typed helpers;
// anything order-free (in-flight message multisets, map-backed tables)
// must be emitted in a canonical order — Section/U64s help with the
// common cases. The buffer is reused across states, so encoding a
// state allocates nothing in steady state.
type Enc struct {
	b []byte
	// scratch backs the sorted-multiset helpers.
	scratch []uint64
}

// Reset clears the encoder for the next state.
func (e *Enc) Reset() { e.b = e.b[:0] }

// Len returns the encoded size so far.
func (e *Enc) Len() int { return len(e.b) }

// U8 appends one byte.
func (e *Enc) U8(v uint8) { e.b = append(e.b, v) }

// Bool appends a boolean.
func (e *Enc) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U64 appends a 64-bit value.
func (e *Enc) U64(v uint64) {
	e.b = append(e.b,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// Int appends an int (two's-complement widened).
func (e *Enc) Int(v int) { e.U64(uint64(int64(v))) }

// Multiset appends vs as a sorted multiset: element order in the
// caller's collection does not influence the encoding. vs is sorted in
// place in the encoder's scratch buffer.
func (e *Enc) Multiset(vs []uint64) {
	e.scratch = append(e.scratch[:0], vs...)
	slices.Sort(e.scratch)
	e.U64(uint64(len(e.scratch)))
	for _, v := range e.scratch {
		e.U64(v)
	}
}

// Digest folds the encoded bytes into the 128-bit fingerprint: two
// independently seeded FNV-1a streams. Collisions would prune a
// genuinely new state, so the engine uses 128 bits (the classic hash-
// compaction trade-off: at the ≤2^20 visited states the engine caps
// at, the collision probability is ~2^-88).
func (e *Enc) Digest() Digest {
	const (
		prime = 1099511628211
		seed1 = 14695981039346656037
		seed2 = 0x9e3779b97f4a7c15
	)
	h1, h2 := uint64(seed1), uint64(seed2)
	for _, c := range e.b {
		h1 = (h1 ^ uint64(c)) * prime
		h2 = (h2 ^ uint64(c)) * prime
	}
	// Fold in the length so extension collisions differ in both limbs.
	h1 = (h1 ^ uint64(len(e.b))) * prime
	h2 = (h2 ^ uint64(len(e.b)^0x5a)) * prime
	return Digest{h1, h2}
}

// HashBytes is a standalone FNV-1a for models computing transition
// content keys.
func HashBytes(seed uint64, bs ...uint64) uint64 {
	const prime = 1099511628211
	h := seed ^ 14695981039346656037
	for _, b := range bs {
		for i := 0; i < 8; i++ {
			h = (h ^ (b & 0xff)) * prime
			b >>= 8
		}
	}
	return h
}
