package benchcheck

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: specsimp
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkRunOne-4            30    41000000 ns/op    100000 sim-cycles/op    48719176 B/op    34704 allocs/op
BenchmarkRunnerGrid-4      47000       24571 ns/op       256 points/op          65640 B/op        4 allocs/op
PASS
`

func TestParseBenchOutput(t *testing.T) {
	m, err := ParseBenchOutput(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	r, ok := m["BenchmarkRunOne"]
	if !ok {
		t.Fatalf("BenchmarkRunOne missing: %v", m)
	}
	if r.NsPerOp != 41000000 || r.AllocsPerOp != 34704 || r.BytesPerOp != 48719176 {
		t.Fatalf("parsed %+v", r)
	}
	if g := m["BenchmarkRunnerGrid"]; g.AllocsPerOp != 4 {
		t.Fatalf("grid parsed %+v", g)
	}
}

const sampleBaseline = `{
  "comment": "test fixture",
  "benchmarks": {
    "BenchmarkRunOne": {"history": [
      {"pr": 1, "ns_per_op": 67250048, "allocs_per_op": 286057},
      {"pr": 2, "ns_per_op": 40826126, "allocs_per_op": 34704}
    ]},
    "BenchmarkRunnerGrid": {"history": [
      {"pr": 2, "ns_per_op": 24571, "allocs_per_op": 4}
    ]}
  }
}`

func writeBaseline(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(sampleBaseline), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadBaselinesTakesNewestEntry(t *testing.T) {
	base, err := LoadBaselines(writeBaseline(t))
	if err != nil {
		t.Fatal(err)
	}
	if got := base["BenchmarkRunOne"].NsPerOp; got != 40826126 {
		t.Fatalf("ns baseline %v, want the PR-2 entry", got)
	}
}

func TestCompareVerdicts(t *testing.T) {
	base, err := LoadBaselines(writeBaseline(t))
	if err != nil {
		t.Fatal(err)
	}
	th := Thresholds{NsPerOp: 0.25, AllocsPerOp: 0.25}

	// Within thresholds (slightly slower, same allocs): passes.
	ok := map[string]Measurement{
		"BenchmarkRunOne":     {NsPerOp: 45000000, AllocsPerOp: 34704},
		"BenchmarkRunnerGrid": {NsPerOp: 30000, AllocsPerOp: 5},
	}
	if lines, failed := Compare(base, ok, th); failed {
		t.Fatalf("within-threshold run failed:\n%s", strings.Join(lines, "\n"))
	}

	// 26% more allocs: fails even with fast ns/op.
	regressed := map[string]Measurement{
		"BenchmarkRunOne":     {NsPerOp: 30000000, AllocsPerOp: 43800},
		"BenchmarkRunnerGrid": {NsPerOp: 24571, AllocsPerOp: 4},
	}
	lines, failed := Compare(base, regressed, th)
	if !failed {
		t.Fatalf("alloc regression passed:\n%s", strings.Join(lines, "\n"))
	}

	// A baselined benchmark missing from the output is bit-rot: fail.
	if _, failed := Compare(base, map[string]Measurement{"BenchmarkRunOne": ok["BenchmarkRunOne"]}, th); !failed {
		t.Fatal("missing baselined benchmark passed")
	}

	// A zero allocs/op baseline gates any allocation at all; a zero
	// ns/op baseline just means the metric was never recorded.
	zeroBase := map[string]Measurement{"BenchmarkZero": {NsPerOp: 0, AllocsPerOp: 0}}
	if _, failed := Compare(zeroBase, map[string]Measurement{"BenchmarkZero": {NsPerOp: 100, AllocsPerOp: 0}}, th); failed {
		t.Fatal("unrecorded ns/op baseline failed a clean run")
	}
	if _, failed := Compare(zeroBase, map[string]Measurement{"BenchmarkZero": {NsPerOp: 100, AllocsPerOp: 1}}, th); !failed {
		t.Fatal("regression from zero allocs/op passed")
	}
}
