// Package benchcheck compares `go test -bench` output against the
// benchmark trajectory recorded in BENCH_kernel.json, so CI's bench
// smoke can fail on regressions instead of silently printing numbers.
// The trajectory file's note applies here too: ns/op is host-dependent
// (compare ratios with a generous threshold); allocs/op is not, and is
// the hard signal.
package benchcheck

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Measurement is one parsed benchmark result line.
type Measurement struct {
	NsPerOp     float64
	BytesPerOp  float64
	AllocsPerOp float64
}

// ParseBenchOutput extracts benchmark measurements from `go test -bench
// -benchmem` output. Names are normalized by stripping the -GOMAXPROCS
// suffix; extra ReportMetric columns are ignored.
func ParseBenchOutput(r io.Reader) (map[string]Measurement, error) {
	out := map[string]Measurement{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var m Measurement
		for i := 1; i+1 < len(fields); i++ {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				m.NsPerOp = v
			case "B/op":
				m.BytesPerOp = v
			case "allocs/op":
				m.AllocsPerOp = v
			}
		}
		if m.NsPerOp > 0 {
			out[name] = m
		}
	}
	return out, sc.Err()
}

// baselineFile mirrors the BENCH_kernel.json layout; unknown fields are
// ignored so the trajectory file can carry commentary.
type baselineFile struct {
	Benchmarks map[string]struct {
		History []struct {
			PR          int     `json:"pr"`
			NsPerOp     float64 `json:"ns_per_op"`
			BytesPerOp  float64 `json:"bytes_per_op"`
			AllocsPerOp float64 `json:"allocs_per_op"`
		} `json:"history"`
	} `json:"benchmarks"`
}

// LoadBaselines reads the newest history entry per benchmark from a
// BENCH_kernel.json-shaped trajectory file.
func LoadBaselines(path string) (map[string]Measurement, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f baselineFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("benchcheck: parse %s: %w", path, err)
	}
	out := map[string]Measurement{}
	for name, b := range f.Benchmarks {
		if len(b.History) == 0 {
			continue
		}
		last := b.History[len(b.History)-1]
		out[name] = Measurement{NsPerOp: last.NsPerOp, BytesPerOp: last.BytesPerOp, AllocsPerOp: last.AllocsPerOp}
	}
	return out, nil
}

// Thresholds are the allowed fractional regressions before Compare
// flags a benchmark (0.25 = fail beyond +25%).
type Thresholds struct {
	NsPerOp     float64
	AllocsPerOp float64
}

// Compare checks every baselined benchmark against the measured set and
// returns human-readable verdict lines plus whether any regression (or
// missing benchmark — bench bit-rot) was found. Benchmarks measured but
// not baselined are ignored: the trajectory file decides what gates.
func Compare(baseline, measured map[string]Measurement, th Thresholds) (lines []string, failed bool) {
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		base := baseline[name]
		got, ok := measured[name]
		if !ok {
			lines = append(lines, fmt.Sprintf("FAIL %s: baselined benchmark missing from output (bit-rot?)", name))
			failed = true
			continue
		}
		check := func(metric string, b, g, limit float64, gateFromZero bool) {
			if b <= 0 {
				// A zero allocs/op baseline is a real (and prized) value:
				// any allocation at all is a regression. A zero ns/op
				// baseline just means the metric was never recorded.
				if gateFromZero && g > 0 {
					lines = append(lines, fmt.Sprintf("FAIL %s %s: %.0f vs zero baseline", name, metric, g))
					failed = true
				}
				return
			}
			ratio := g / b
			verdict := "ok"
			if ratio > 1+limit {
				verdict = "FAIL"
				failed = true
			}
			lines = append(lines, fmt.Sprintf("%-4s %s %s: %.0f vs baseline %.0f (%+.1f%%, limit +%.0f%%)",
				verdict, name, metric, g, b, 100*(ratio-1), 100*limit))
		}
		check("ns/op", base.NsPerOp, got.NsPerOp, th.NsPerOp, false)
		check("allocs/op", base.AllocsPerOp, got.AllocsPerOp, th.AllocsPerOp, true)
	}
	return lines, failed
}
