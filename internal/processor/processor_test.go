package processor

import (
	"testing"

	"specsimp/internal/coherence"
	"specsimp/internal/sim"
	"specsimp/internal/workload"
)

// fixedLatency completes every access after d cycles.
func fixedLatency(k *sim.Kernel, d sim.Time) AccessFunc {
	return func(_ coherence.NodeID, _ coherence.Addr, _ coherence.AccessType, done func()) {
		k.After(d, done)
	}
}

func newPool(k *sim.Kernel, n int, access AccessFunc) *Pool {
	gens := make([]workload.Generator, n)
	for i := range gens {
		gens[i] = workload.New(workload.Uniform, i, n, 42)
	}
	return NewPool(k, n, access, gens)
}

func TestPoolMakesProgress(t *testing.T) {
	k := sim.NewKernel()
	p := newPool(k, 4, fixedLatency(k, 10))
	p.Start()
	k.Run(10_000)
	if p.Instructions() == 0 {
		t.Fatal("no instructions retired")
	}
	for i := 0; i < 4; i++ {
		if p.NodeInstructions(i) == 0 {
			t.Fatalf("core %d idle", i)
		}
	}
}

func TestBlockingSemantics(t *testing.T) {
	// A core never has two outstanding accesses.
	k := sim.NewKernel()
	outstanding := map[coherence.NodeID]int{}
	var access AccessFunc = func(n coherence.NodeID, _ coherence.Addr, _ coherence.AccessType, done func()) {
		outstanding[n]++
		if outstanding[n] > 1 {
			t.Fatalf("core %d has %d outstanding accesses", n, outstanding[n])
		}
		k.After(7, func() {
			outstanding[n]--
			done()
		})
	}
	p := newPool(k, 4, access)
	p.Start()
	k.Run(20_000)
}

func TestOutstandingLimit(t *testing.T) {
	k := sim.NewKernel()
	max := 0
	cur := 0
	var access AccessFunc = func(_ coherence.NodeID, _ coherence.Addr, _ coherence.AccessType, done func()) {
		cur++
		if cur > max {
			max = cur
		}
		k.After(30, func() {
			cur--
			done()
		})
	}
	p := newPool(k, 8, access)
	p.SetOutstandingLimit(2)
	p.Start()
	k.Run(20_000)
	// The limit token is held across think time, so in-protocol
	// concurrency never exceeds the limit.
	if max > 2 {
		t.Fatalf("max outstanding %d exceeds limit 2", max)
	}
	if p.LimitStalls() == 0 {
		t.Fatal("no stalls recorded despite a binding limit")
	}
	p.SetOutstandingLimit(0)
	before := p.Instructions()
	k.Run(40_000)
	if p.Instructions() <= before {
		t.Fatal("lifting the limit did not resume progress")
	}
}

func TestSlowStartThrottlesThroughput(t *testing.T) {
	run := func(limit int) uint64 {
		k := sim.NewKernel()
		p := newPool(k, 8, fixedLatency(k, 50))
		p.SetOutstandingLimit(limit)
		p.Start()
		k.Run(100_000)
		return p.Instructions()
	}
	free := run(0)
	slow := run(1)
	if slow >= free/2 {
		t.Fatalf("limit 1 retired %d vs unlimited %d; throttle ineffective", slow, free)
	}
}

func TestPauseResume(t *testing.T) {
	k := sim.NewKernel()
	p := newPool(k, 4, fixedLatency(k, 5))
	p.Start()
	k.Run(5_000)
	p.Pause()
	k.Run(6_000) // drain
	frozen := p.Instructions()
	k.Run(20_000)
	if p.Instructions() != frozen {
		t.Fatalf("instructions advanced while paused: %d -> %d", frozen, p.Instructions())
	}
	p.Resume(k.Now() + 100)
	k.Run(40_000)
	if p.Instructions() <= frozen {
		t.Fatal("no progress after resume")
	}
}

func TestSnapshotRestoreReplay(t *testing.T) {
	k := sim.NewKernel()
	p := newPool(k, 4, fixedLatency(k, 10))
	p.Start()
	k.Run(4_000)
	p.Pause()
	k.Run(5_000)
	snaps := p.SnapshotAll()
	instrAtSnap := p.Instructions()
	p.Resume(k.Now())
	k.Run(30_000)
	if p.Instructions() <= instrAtSnap {
		t.Fatal("no post-snapshot progress")
	}
	// Roll back: instructions return to the snapshot value and the
	// machine keeps running deterministically.
	p.RestoreAll(snaps)
	if p.Instructions() != instrAtSnap {
		t.Fatalf("instret after restore %d want %d", p.Instructions(), instrAtSnap)
	}
	p.Resume(k.Now() + 50)
	k.Run(60_000)
	if p.Instructions() <= instrAtSnap {
		t.Fatal("no progress after restore+resume")
	}
	if p.Outstanding() < 0 {
		t.Fatal("negative outstanding count")
	}
}

func TestRestoreCancelsInFlight(t *testing.T) {
	// Completions of pre-restore accesses must not leak into the
	// restored execution (epoch guard).
	k := sim.NewKernel()
	var fire []func()
	var access AccessFunc = func(_ coherence.NodeID, _ coherence.Addr, _ coherence.AccessType, done func()) {
		fire = append(fire, done) // never completes unless fired manually
	}
	p := newPool(k, 2, access)
	p.Start()
	k.Run(1_000)
	if len(fire) == 0 {
		t.Fatal("no accesses issued")
	}
	snaps := p.SnapshotAll() // cores are mid-access; snapshot still legal here because gens only advance at completion
	p.RestoreAll(snaps)
	for _, f := range fire {
		f() // stale completions
	}
	k.Run(2_000)
	if p.Outstanding() != len(p.procs) && p.Outstanding() > len(p.procs) {
		t.Fatalf("outstanding=%d after stale completions", p.Outstanding())
	}
}
