// Package processor models the paper's processor: a simple in-order
// core that executes one instruction per cycle given a perfect memory
// system (4 GIPS at 4 GHz) and issues blocking requests to the cache
// hierarchy (paper §5.1). The Pool coordinates all cores: it supports
// the global outstanding-transaction limit that implements slow-start
// (paper §3.2/§4 forward progress), pause/resume for checkpoint drains,
// and snapshot/restore for SafetyNet recovery.
package processor

import (
	"specsimp/internal/coherence"
	"specsimp/internal/sim"
	"specsimp/internal/stats"
	"specsimp/internal/workload"
)

// AccessFunc issues one memory access to the protocol; done fires at
// completion.
type AccessFunc func(node coherence.NodeID, addr coherence.Addr, kind coherence.AccessType, done func())

// Processor is one blocking core driven by a workload generator.
type Processor struct {
	pool  *Pool
	node  coherence.NodeID
	k     *sim.Kernel // the owning shard's kernel
	shard int
	gen   workload.Generator

	// Instret counts retired instructions (think cycles + 1 per memory
	// reference), the numerator of the performance metric.
	instret uint64

	epoch   uint64 // invalidates scheduled steps after restore
	pending bool   // an access is outstanding
	holding bool   // waiting for an outstanding-limit token

	// issueEpoch is the epoch captured when the outstanding access was
	// issued; doneFn ignores completions from a rolled-back epoch.
	issueEpoch uint64
	// doneFn is the completion callback handed to the protocol, built
	// once so issuing an access allocates nothing.
	doneFn func()
}

// Snapshot is one core's architectural state at a checkpoint.
type Snapshot struct {
	Gen     workload.Snapshot
	Instret uint64
}

// Pool owns all processors of a system.
//
// Sharded systems (PartitionOnShards) run each core on its shard's
// kernel; everything cross-core — the outstanding-transaction limit's
// token queue, pause/resume, snapshot/restore — then happens only at
// window edges, from single-threaded control context, so cores never
// read another shard's in-flight state mid-window. Per-shard counters
// (inflight, limitStalls, waiting) keep the hot path race-free and the
// merged totals shard-count-independent.
type Pool struct {
	k      *sim.Kernel // shard 0's kernel (the only kernel when serial)
	access AccessFunc
	procs  []*Processor

	sharded bool

	limit    int   // 0 = unlimited (slow-start sets 1, then restores)
	inflight []int // per shard
	// waiting holds cores stalled on the limit: one FIFO in serial mode
	// (grants follow arrival order), one queue per shard in sharded
	// mode (grants happen at window edges in node order — arrival order
	// across shards is not defined).
	waiting [][]*Processor

	paused   bool
	resumeAt sim.Time

	limitStalls []stats.Counter // per shard

	// degradedUntil marks the end of the current post-recovery degraded
	// window (recovery stall plus the slow-start window). It is written
	// only from control context (the recovery path); cores read it
	// mid-window to classify retirements. degraded counts instructions
	// retired inside degraded windows, striped per shard like
	// limitStalls so the merged total is shard-count-independent.
	degradedUntil sim.Time
	degraded      []stats.Counter // per shard
}

// NewPool builds n processors driven by per-node generators.
func NewPool(k *sim.Kernel, n int, access AccessFunc, gens []workload.Generator) *Pool {
	if len(gens) != n {
		panic("processor: generator count mismatch")
	}
	p := &Pool{k: k, access: access}
	p.inflight = make([]int, 1)
	p.waiting = make([][]*Processor, 1)
	p.limitStalls = make([]stats.Counter, 1)
	p.degraded = make([]stats.Counter, 1)
	for i := 0; i < n; i++ {
		c := &Processor{pool: p, node: coherence.NodeID(i), k: k, gen: gens[i]}
		c.doneFn = c.complete
		p.procs = append(p.procs, c)
	}
	return p
}

// PartitionOnShards re-homes each core onto its shard's kernel. Call
// once before Start. Grants of limit tokens then move to GrantWaiting,
// which the system must invoke at every window edge.
func (p *Pool) PartitionOnShards(g *sim.Shards, shardOf []int) {
	if len(shardOf) != len(p.procs) {
		panic("processor: shard map size mismatch")
	}
	p.sharded = true
	p.k = g.Kernel(0)
	p.inflight = make([]int, g.N())
	p.waiting = make([][]*Processor, g.N())
	p.limitStalls = make([]stats.Counter, g.N())
	p.degraded = make([]stats.Counter, g.N())
	for i, c := range p.procs {
		c.shard = shardOf[i]
		c.k = g.Kernel(c.shard)
	}
}

// Start begins execution on every core.
func (p *Pool) Start() {
	for _, c := range p.procs {
		c.scheduleStep(0)
	}
}

// Instructions returns the total retired instructions across cores.
func (p *Pool) Instructions() uint64 {
	var total uint64
	for _, c := range p.procs {
		total += c.instret
	}
	return total
}

// NodeInstructions returns one core's retired instruction count.
func (p *Pool) NodeInstructions(i int) uint64 { return p.procs[i].instret }

// Outstanding returns the number of in-flight memory transactions
// (quiesced-state only in sharded mode).
func (p *Pool) Outstanding() int {
	total := 0
	for _, n := range p.inflight {
		total += n
	}
	return total
}

// SetOutstandingLimit implements core.OutstandingLimiter: it bounds
// concurrently outstanding coherence transactions across the machine
// (slow-start uses 1; 0 removes the bound). Sharded systems call it
// only from edge control; held cores are then granted by GrantWaiting
// at the same edge.
func (p *Pool) SetOutstandingLimit(n int) {
	p.limit = n
	if !p.sharded {
		p.drainWaiting()
	}
}

// Pause stops cores from issuing new accesses (checkpoint drain).
// In-flight accesses complete normally.
func (p *Pool) Pause() { p.paused = true }

// Resume restarts issuing at time at (now if earlier).
func (p *Pool) Resume(at sim.Time) {
	p.paused = false
	if at < p.k.Now() {
		at = p.k.Now()
	}
	p.resumeAt = at
	d := at - p.k.Now()
	for _, c := range p.procs {
		if !c.pending && !c.holding {
			c.scheduleStep(d)
		}
	}
	if !p.sharded {
		p.drainWaiting()
	}
}

// SnapshotAll captures every core's architectural state. Cores must be
// quiesced (no pending accesses) — the checkpoint drain guarantees it.
func (p *Pool) SnapshotAll() []Snapshot {
	out := make([]Snapshot, len(p.procs))
	for i, c := range p.procs {
		out[i] = Snapshot{Gen: c.gen.Snapshot(), Instret: c.instret}
	}
	return out
}

// RestoreAll rewinds every core to a snapshot and invalidates all
// scheduled work. The caller resumes execution via Resume.
func (p *Pool) RestoreAll(snaps []Snapshot) {
	for s := range p.inflight {
		p.inflight[s] = 0
		p.waiting[s] = nil
	}
	for i, c := range p.procs {
		c.gen.Restore(snaps[i].Gen)
		c.instret = snaps[i].Instret
		c.epoch++
		c.pending = false
		c.holding = false
	}
}

// MarkDegradedUntil extends the degraded window: instructions retired
// before at count as degraded-mode throughput. Called from the recovery
// path (control context) with the post-recovery resume time plus the
// slow-start window; overlapping recoveries simply extend the window.
func (p *Pool) MarkDegradedUntil(at sim.Time) {
	if at > p.degradedUntil {
		p.degradedUntil = at
	}
}

// DegradedInstructions returns the instructions retired inside
// post-recovery degraded windows (see MarkDegradedUntil).
func (p *Pool) DegradedInstructions() uint64 {
	var total uint64
	for i := range p.degraded {
		total += p.degraded[i].Value()
	}
	return total
}

// LimitStalls returns how many issue attempts were deferred by the
// outstanding limit (slow-start's visible cost).
func (p *Pool) LimitStalls() uint64 {
	var total uint64
	for i := range p.limitStalls {
		total += p.limitStalls[i].Value()
	}
	return total
}

// drainWaiting grants limit tokens in arrival order (serial mode only).
func (p *Pool) drainWaiting() {
	for len(p.waiting[0]) > 0 && (p.limit == 0 || p.inflight[0] < p.limit) && !p.paused {
		c := p.waiting[0][0]
		p.waiting[0] = p.waiting[0][1:]
		c.holding = false
		c.issue()
	}
}

// GrantWaiting issues cores held by the outstanding limit, in node-id
// order, until the limit is reached. Sharded systems call it at every
// window edge from control context (all shards quiesced): cores park
// unconditionally while a limit is active and receive their tokens
// here, which keeps grant order independent of how execution was
// partitioned. A no-op in serial mode, where drainWaiting grants
// immediately instead.
func (p *Pool) GrantWaiting() {
	if !p.sharded || p.paused {
		return
	}
	total := p.Outstanding()
	for {
		if p.limit != 0 && total >= p.limit {
			return
		}
		bestShard, bestIdx := -1, -1
		for s := range p.waiting {
			for i, c := range p.waiting[s] {
				if bestShard < 0 || c.node < p.waiting[bestShard][bestIdx].node {
					bestShard, bestIdx = s, i
				}
			}
		}
		if bestShard < 0 {
			return
		}
		c := p.waiting[bestShard][bestIdx]
		p.waiting[bestShard] = append(p.waiting[bestShard][:bestIdx], p.waiting[bestShard][bestIdx+1:]...)
		c.holding = false
		c.issue()
		total++
	}
}

// ---- per-core execution ----

// Typed-event opcodes, packed into the low bit of a0 beside the epoch.
const (
	procOpStep  = iota // retry/start the next reference
	procOpIssue        // think time elapsed: issue the memory access
)

// HandleEvent implements sim.Handler; events carrying a stale epoch
// (scheduled before a rollback) are dropped, as RestoreAll requires.
func (c *Processor) HandleEvent(a0, _ uint64, _ any) {
	if a0>>1 != c.epoch {
		return
	}
	if a0&1 == procOpStep {
		c.step()
		return
	}
	// Think time retired: hand the reference to the protocol. Peek is
	// stable until Advance, so re-reading it here re-yields the op that
	// was current when the think delay was scheduled.
	op := c.gen.Peek()
	c.issueEpoch = c.epoch
	c.pool.access(c.node, op.Addr, op.Kind, c.doneFn)
}

// complete is the protocol's completion callback (doneFn).
func (c *Processor) complete() {
	if c.epoch != c.issueEpoch {
		return
	}
	p := c.pool
	op := c.gen.Peek()
	c.pending = false
	p.inflight[c.shard]--
	retired := uint64(op.Think) + 1
	c.instret += retired
	if c.k.Now() < p.degradedUntil {
		p.degraded[c.shard].Add(retired)
	}
	c.gen.Advance()
	if !p.sharded {
		// Sharded mode defers grants to the window edge: a completion
		// here must not read other shards' in-flight counts.
		p.drainWaiting()
	}
	c.scheduleStep(0)
}

func (c *Processor) scheduleStep(d sim.Time) {
	c.k.AfterEvent(d, c, c.epoch<<1|procOpStep, 0, nil)
}

// step retires the current op's think time, then issues its memory
// reference (subject to pause and the outstanding limit).
func (c *Processor) step() {
	p := c.pool
	if p.paused || c.k.Now() < p.resumeAt {
		// Parked: Resume reschedules us.
		return
	}
	if p.limit != 0 {
		if p.sharded {
			// The limit is global but this core sees only its shard's
			// count mid-window: park unconditionally and take a token
			// at the next edge (GrantWaiting, in node order). The limit
			// is a post-recovery slow-start measure, so the extra
			// sub-window wait is rare and bounded by the lookahead.
			c.holding = true
			p.waiting[c.shard] = append(p.waiting[c.shard], c)
			p.limitStalls[c.shard].Inc()
			return
		}
		if p.inflight[0] >= p.limit {
			c.holding = true
			p.waiting[0] = append(p.waiting[0], c)
			p.limitStalls[0].Inc()
			return
		}
	}
	c.issue()
}

func (c *Processor) issue() {
	p := c.pool
	op := c.gen.Peek()
	p.inflight[c.shard]++
	c.pending = true
	c.k.AfterEvent(op.Think, c, c.epoch<<1|procOpIssue, 0, nil)
}
