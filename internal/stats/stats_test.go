package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("counter=%d want 10", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("reset failed")
	}
}

func TestSampleMeanStdDev(t *testing.T) {
	var s Sample
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Observe(v)
	}
	if got := s.Mean(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("mean=%v want 5", got)
	}
	// Sample (n-1) stddev of that classic set is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if got := s.StdDev(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("stddev=%v want %v", got, want)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max=%v/%v want 2/9", s.Min(), s.Max())
	}
	if math.Abs(s.Sum()-40) > 1e-9 {
		t.Fatalf("sum=%v want 40", s.Sum())
	}
}

func TestSampleEmptyAndSingle(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.StdDev() != 0 {
		t.Fatal("empty sample not zero")
	}
	s.Observe(3)
	if s.Mean() != 3 || s.StdDev() != 0 {
		t.Fatalf("single observation mean=%v stddev=%v", s.Mean(), s.StdDev())
	}
}

func TestHistogramPercentile(t *testing.T) {
	var h Histogram
	for i := uint64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	if h.N() != 1000 {
		t.Fatalf("N=%d", h.N())
	}
	p50 := h.Percentile(0.5)
	if p50 < 400 || p50 > 1100 {
		t.Fatalf("p50=%d far from 500 at bucket resolution", p50)
	}
	p100 := h.Percentile(1.0)
	if p100 < 1000 {
		t.Fatalf("p100=%d below max", p100)
	}
	if h.Percentile(0) > 1 {
		t.Fatalf("p0=%d", h.Percentile(0))
	}
}

func TestHistogramZero(t *testing.T) {
	var h Histogram
	if h.Percentile(0.5) != 0 {
		t.Fatal("empty histogram percentile != 0")
	}
	h.Observe(0)
	if h.N() != 1 || h.Percentile(1) != 0 {
		t.Fatal("zero observation mishandled")
	}
}

func TestUtilization(t *testing.T) {
	var u Utilization
	u.SetBusy(0, true)
	u.SetBusy(30, false)
	u.SetBusy(70, true)
	u.SetBusy(100, false)
	if got := u.Fraction(100); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("fraction=%v want 0.6", got)
	}
}

func TestUtilizationOpenInterval(t *testing.T) {
	var u Utilization
	u.SetBusy(10, true)
	if got := u.Fraction(20); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("open busy fraction=%v want 0.5", got)
	}
}

func TestUtilizationAddBusyClamped(t *testing.T) {
	var u Utilization
	u.AddBusy(500)
	if got := u.Fraction(100); got != 1 {
		t.Fatalf("fraction should clamp to 1, got %v", got)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("workload", "perf")
	tab.AddRow("oltp", "1.00")
	tab.AddRow("jbb", "0.97")
	out := tab.String()
	if !strings.Contains(out, "workload") || !strings.Contains(out, "jbb") {
		t.Fatalf("table output missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{2, 4, 6}, 2)
	if out[0] != 1 || out[1] != 2 || out[2] != 3 {
		t.Fatalf("normalize=%v", out)
	}
	zero := Normalize([]float64{1}, 0)
	if zero[0] != 0 {
		t.Fatal("divide by zero base must yield 0")
	}
}

func TestMedian(t *testing.T) {
	if Median(nil) != 0 {
		t.Fatal("empty median")
	}
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("odd median=%v", got)
	}
	if got := Median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Fatalf("even median=%v", got)
	}
}

// Property: Welford mean matches naive mean for arbitrary inputs.
func TestSampleMeanProperty(t *testing.T) {
	f := func(xs []float64) bool {
		var s Sample
		var sum float64
		finite := 0
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				continue
			}
			s.Observe(x)
			sum += x
			finite++
		}
		if finite == 0 {
			return s.Mean() == 0
		}
		naive := sum / float64(finite)
		return math.Abs(s.Mean()-naive) <= 1e-6*(1+math.Abs(naive))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram percentile is monotone in p.
func TestHistogramMonotoneProperty(t *testing.T) {
	f := func(vals []uint16) bool {
		var h Histogram
		for _, v := range vals {
			h.Observe(uint64(v))
		}
		prev := uint64(0)
		for p := 0.1; p <= 1.0; p += 0.1 {
			cur := h.Percentile(p)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestIntSampleMergeOrderIndependent pins the property sharded stats
// aggregation relies on: any partition of an observation stream merges
// to bit-identical state.
func TestIntSampleMergeOrderIndependent(t *testing.T) {
	vals := []uint64{5, 0, 17, 3, 3, 99, 42, 7, 1, 64}
	var whole IntSample
	for _, v := range vals {
		whole.Observe(v)
	}
	for split := 1; split < len(vals); split++ {
		var a, b, merged IntSample
		for _, v := range vals[:split] {
			a.Observe(v)
		}
		for _, v := range vals[split:] {
			b.Observe(v)
		}
		merged.Merge(b)
		merged.Merge(a)
		if merged != whole {
			t.Fatalf("split %d: merged %+v != whole %+v", split, merged, whole)
		}
	}
	if whole.Mean() != 24.1 || whole.Min() != 0 || whole.Max() != 99 || whole.N() != 10 {
		t.Fatalf("unexpected moments: %+v", whole)
	}
}

// TestHistogramMerge checks bucket counts and moments merge exactly.
func TestHistogramMerge(t *testing.T) {
	var a, b, whole Histogram
	for i := uint64(0); i < 100; i++ {
		whole.Observe(i * i)
		if i%3 == 0 {
			a.Observe(i * i)
		} else {
			b.Observe(i * i)
		}
	}
	a.Merge(&b)
	if a != whole {
		t.Fatalf("merged histogram differs from whole")
	}
}
