// Package stats provides the measurement primitives the evaluation
// harness uses: counters, samples with mean/stddev (the paper reports one
// standard deviation as error bars, §5.2), histograms, and utilization
// trackers for link-occupancy statistics.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	n uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds d.
func (c *Counter) Add(d uint64) { c.n += d }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

// Sample accumulates observations and reports mean and standard
// deviation using Welford's online algorithm, which is numerically
// stable for long runs.
type Sample struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Observe records one observation.
func (s *Sample) Observe(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// Of returns a Sample over the given values — the aggregation
// convenience the sweep engine's result processing uses.
func Of(values ...float64) Sample {
	var s Sample
	for _, v := range values {
		s.Observe(v)
	}
	return s
}

// N returns the number of observations.
func (s *Sample) N() uint64 { return s.n }

// Mean returns the sample mean, or 0 with no observations.
func (s *Sample) Mean() float64 { return s.mean }

// Min returns the smallest observation, or 0 with no observations.
func (s *Sample) Min() float64 { return s.min }

// Max returns the largest observation, or 0 with no observations.
func (s *Sample) Max() float64 { return s.max }

// StdDev returns the sample standard deviation (n-1 denominator), or 0
// with fewer than two observations.
func (s *Sample) StdDev() float64 {
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n-1))
}

// Sum returns n*mean, the total of all observations.
func (s *Sample) Sum() float64 { return float64(s.n) * s.mean }

// String formats the sample as "mean ± stddev (n=N)".
func (s *Sample) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", s.Mean(), s.StdDev(), s.n)
}

// IntSample accumulates integer observations with exact integer sums.
// Unlike Sample's Welford accumulator, its state is order-independent:
// merging per-shard IntSamples yields bit-identical results no matter
// how observations were partitioned, which is what keeps sharded
// simulations byte-reproducible at any shard count.
type IntSample struct {
	n, sum   uint64
	min, max uint64
}

// Observe records one observation.
func (s *IntSample) Observe(v uint64) {
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	s.sum += v
}

// Merge folds another IntSample into s. Because all state is exact,
// merge order does not affect the result.
func (s *IntSample) Merge(o IntSample) {
	if o.n == 0 {
		return
	}
	if s.n == 0 || o.min < s.min {
		s.min = o.min
	}
	if s.n == 0 || o.max > s.max {
		s.max = o.max
	}
	s.n += o.n
	s.sum += o.sum
}

// N returns the number of observations.
func (s *IntSample) N() uint64 { return s.n }

// Sum returns the exact total of all observations.
func (s *IntSample) Sum() uint64 { return s.sum }

// Mean returns the mean observation, or 0 with no observations.
func (s *IntSample) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return float64(s.sum) / float64(s.n)
}

// Min returns the smallest observation, or 0 with no observations.
func (s *IntSample) Min() uint64 { return s.min }

// Max returns the largest observation, or 0 with no observations.
func (s *IntSample) Max() uint64 { return s.max }

// Summary returns the sample's exact state as an exported value.
func (s *IntSample) Summary() IntSummary {
	return IntSummary{N: s.n, Sum: s.sum, Min: s.min, Max: s.max}
}

// IntSummary is the exported snapshot of an IntSample: exact integer
// moments that survive JSON encoding and deep-equality comparison.
// Result structs embed it so distribution columns (recovery latency,
// rollback distance) stay bit-identical across shard counts — the
// values are plain integers, never order-sensitive float folds.
type IntSummary struct {
	N, Sum   uint64
	Min, Max uint64
}

// Mean returns Sum/N, or 0 with no observations.
func (s IntSummary) Mean() float64 {
	if s.N == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.N)
}

// Histogram counts observations in power-of-two buckets, suitable for
// latency distributions spanning several orders of magnitude. Its
// moments come from an exact IntSample, so histograms merge without
// order sensitivity (see Merge).
type Histogram struct {
	buckets [64]uint64
	sample  IntSample
}

// Observe records a non-negative observation.
func (h *Histogram) Observe(v uint64) {
	h.sample.Observe(v)
	h.buckets[log2Bucket(v)]++
}

// Merge folds another histogram into h; all state is exact counts and
// sums, so the result is independent of how observations were split.
func (h *Histogram) Merge(o *Histogram) {
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
	h.sample.Merge(o.sample)
}

func log2Bucket(v uint64) int {
	b := 0
	for v > 0 {
		v >>= 1
		b++
	}
	if b >= 64 {
		b = 63
	}
	return b
}

// N returns the number of observations.
func (h *Histogram) N() uint64 { return h.sample.N() }

// Mean returns the mean observation.
func (h *Histogram) Mean() float64 { return h.sample.Mean() }

// Max returns the largest observation.
func (h *Histogram) Max() float64 { return float64(h.sample.Max()) }

// Percentile returns an upper bound on the p-th percentile (p in [0,1]),
// at power-of-two bucket resolution.
func (h *Histogram) Percentile(p float64) uint64 {
	total := h.sample.N()
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(p * float64(total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			if i == 0 {
				return 0
			}
			return 1<<uint(i) - 1
		}
	}
	return math.MaxUint64
}

// Utilization integrates a busy/idle signal over simulated time.
type Utilization struct {
	busySince uint64
	busy      bool
	busyTime  uint64
	start     uint64
}

// SetBusy transitions the tracked resource at time now.
func (u *Utilization) SetBusy(now uint64, busy bool) {
	if u.busy && !busy {
		u.busyTime += now - u.busySince
	}
	if !u.busy && busy {
		u.busySince = now
	}
	u.busy = busy
}

// AddBusy directly credits d cycles of busy time (for resources modeled
// as reservation windows rather than level signals).
func (u *Utilization) AddBusy(d uint64) { u.busyTime += d }

// Merge folds another tracker's accumulated busy time into u. Only
// meaningful for AddBusy-style trackers (reservation windows), which is
// how per-shard link-utilization stats aggregate.
func (u *Utilization) Merge(o Utilization) { u.busyTime += o.busyTime }

// Fraction returns the busy fraction over [start, now].
func (u *Utilization) Fraction(now uint64) float64 {
	b := u.busyTime
	if u.busy && now > u.busySince {
		b += now - u.busySince
	}
	dur := now - u.start
	if dur == 0 {
		return 0
	}
	f := float64(b) / float64(dur)
	if f > 1 {
		f = 1
	}
	return f
}

// Table is a minimal fixed-width text table writer used by cmd/tables
// and cmd/sweep to print paper-style rows.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells beyond the header width are dropped.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.header) {
		cells = cells[:len(t.header)]
	}
	t.rows = append(t.rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i := range t.header {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&b, "%-*s", width[i]+2, c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range width {
		b.WriteString(strings.Repeat("-", w))
		if i != len(width)-1 {
			b.WriteString("  ")
		}
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Normalize divides each value by base, returning 0 where base is 0.
// Used for "normalized performance" figures.
func Normalize(values []float64, base float64) []float64 {
	out := make([]float64, len(values))
	if base == 0 {
		return out
	}
	for i, v := range values {
		out[i] = v / base
	}
	return out
}

// Median returns the median of values (average of middle two for even n).
func Median(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
