package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strconv"
	"strings"
)

// AllowPrefix is the comment marker that suppresses one finding:
// //detlint:allow <analyzer> <reason...>
const AllowPrefix = "//detlint:allow"

// Finding is one contract violation (or one malformed suppression).
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// Suppression is one //detlint:allow annotation.
type Suppression struct {
	Analyzer string
	Pos      token.Position // position of the annotation itself
	Reason   string
	Matched  int // diagnostics it suppressed
}

// Report is the outcome of linting a set of packages.
type Report struct {
	// Findings are unsuppressed violations, sorted by position; any
	// entry here should fail CI.
	Findings []Finding
	// Suppressed are allow annotations that matched at least one
	// diagnostic, for the driver's summary table.
	Suppressed []Suppression
	// Unused are allow annotations that matched nothing — stale
	// suppressions worth cleaning up (reported, non-fatal).
	Unused []Suppression
}

// Ok reports whether the lint run found no violations.
func (r *Report) Ok() bool { return len(r.Findings) == 0 }

// allow is one parsed annotation bound to the source line it covers.
type allow struct {
	analyzer string
	reason   string
	pos      token.Position
	line     int // line whose diagnostics it suppresses
	matched  int
}

// Lint runs every analyzer over every package and applies
// //detlint:allow suppressions. Malformed annotations (missing
// reason, unknown analyzer name) surface as findings themselves, so a
// suppression can never silently widen.
func Lint(pkgs []*Package, analyzers []*Analyzer) *Report {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	rep := &Report{}
	var allows []*allow
	for _, pkg := range pkgs {
		var diags []Finding
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			name := a.Name
			pass.Report = func(d Diagnostic) {
				diags = append(diags, Finding{
					Analyzer: name,
					Pos:      pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			}
			a.Run(pass)
		}
		pkgAllows := collectAllows(pkg, known, rep)
		allows = append(allows, pkgAllows...)
		byLine := map[string][]*allow{}
		for _, al := range pkgAllows {
			key := allowKey(al.pos.Filename, al.line, al.analyzer)
			byLine[key] = append(byLine[key], al)
		}
		for _, d := range diags {
			matched := false
			for _, al := range byLine[allowKey(d.Pos.Filename, d.Pos.Line, d.Analyzer)] {
				al.matched++
				matched = true
			}
			if !matched {
				rep.Findings = append(rep.Findings, d)
			}
		}
	}
	for _, al := range allows {
		s := Suppression{Analyzer: al.analyzer, Pos: al.pos, Reason: al.reason, Matched: al.matched}
		if al.matched > 0 {
			rep.Suppressed = append(rep.Suppressed, s)
		} else {
			rep.Unused = append(rep.Unused, s)
		}
	}
	sortFindings(rep.Findings)
	sortSuppressions(rep.Suppressed)
	sortSuppressions(rep.Unused)
	return rep
}

func allowKey(file string, line int, analyzer string) string {
	return file + "\x00" + analyzer + "\x00" + strconv.Itoa(line)
}

// collectAllows parses every //detlint:allow comment in the package
// and binds each to the line it covers: its own line when it trails
// code, otherwise the next code line below it. Malformed annotations
// become findings on rep.
func collectAllows(pkg *Package, known map[string]bool, rep *Report) []*allow {
	var out []*allow
	for _, f := range pkg.Files {
		codeLines := codeLineSet(pkg.Fset, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, AllowPrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, AllowPrefix)
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					rep.Findings = append(rep.Findings, Finding{
						Analyzer: "allow", Pos: pos,
						Message: "detlint:allow without an analyzer name",
					})
					continue
				}
				name := fields[0]
				if !known[name] {
					rep.Findings = append(rep.Findings, Finding{
						Analyzer: "allow", Pos: pos,
						Message: "detlint:allow names unknown analyzer " + strconv.Quote(name),
					})
					continue
				}
				reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), name))
				if reason == "" {
					rep.Findings = append(rep.Findings, Finding{
						Analyzer: "allow", Pos: pos,
						Message: "detlint:allow " + name + " must carry a reason",
					})
					continue
				}
				line := pos.Line
				if !codeLines[line] {
					// Own-line annotation: cover the next code line.
					end := pkg.Fset.Position(c.End()).Line
					line = nextCodeLine(codeLines, end)
				}
				out = append(out, &allow{analyzer: name, reason: reason, pos: pos, line: line})
			}
		}
	}
	return out
}

// codeLineSet returns the lines on which non-comment syntax starts,
// so a trailing annotation can be told apart from one on its own
// line.
func codeLineSet(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := map[int]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup:
			return false
		}
		lines[fset.Position(n.Pos()).Line] = true
		return true
	})
	return lines
}

// nextCodeLine returns the first code line strictly after line, or 0.
func nextCodeLine(codeLines map[int]bool, line int) int {
	best := 0
	for l := range codeLines {
		if l > line && (best == 0 || l < best) {
			best = l
		}
	}
	return best
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

func sortSuppressions(ss []Suppression) {
	sort.Slice(ss, func(i, j int) bool {
		a, b := ss[i], ss[j]
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
}
