package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// walltimeScope lists the simulation packages (by path segment) where
// only virtual time (sim.Time) and the seeded sim.RNG are legal.
// runner is included because artifact naming and emission must be
// byte-reproducible under a fixed -run-id.
var walltimeScope = []string{
	"sim", "network", "directory", "snoop", "processor", "system",
	"safetynet", "explore", "workload", "experiments", "runner",
	"campaign",
}

// walltimeFuncs are the package time functions that read or depend on
// the wall clock. (time.Duration arithmetic and time.Time formatting
// are fine; observing the clock is not.)
var walltimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTicker": true, "NewTimer": true,
}

// Walltime forbids wall-clock reads and the global math/rand source in
// simulation packages. Simulated components must take time from their
// sim.Kernel and randomness from an explicitly seeded sim.RNG;
// anything else silently breaks run-to-run reproducibility.
var Walltime = &Analyzer{
	Name: "walltime",
	Doc: `forbids time.Now/Since/Sleep and global math/rand in simulation packages

Simulation code observes only virtual time (sim.Time) and draws
randomness only from a seeded sim.RNG, so identical seeds replay
identical runs. Wall-clock reads and the process-global rand source
break that contract invisibly.`,
	Run: runWalltime,
}

func runWalltime(pass *Pass) {
	if !inScope(pass.Pkg.Path(), walltimeScope) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if fn.Signature().Recv() != nil {
				// Methods (e.g. on an explicitly seeded
				// *rand.Rand) carry their own state; the
				// contract targets ambient globals.
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if walltimeFuncs[fn.Name()] {
					pass.Reportf(id.Pos(),
						"wall-clock time.%s in simulation package %s; use the kernel's virtual time (sim.Time)",
						fn.Name(), pass.Pkg.Path())
				}
			case "math/rand", "math/rand/v2":
				if strings.HasPrefix(fn.Name(), "New") {
					// rand.New/NewSource/NewZipf build explicitly
					// seeded local generators — deterministic, and
					// the only sanctioned use of the package here.
					return true
				}
				pass.Reportf(id.Pos(),
					"global %s.%s in simulation package %s; use a seeded sim.RNG",
					pkgLastSegment(fn.Pkg().Path()), fn.Name(), pass.Pkg.Path())
			}
			return true
		})
	}
}
