package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `for ... range m` over a map anywhere in the module
// unless the loop body is a pure collect: statements that only write
// into collections or locals and call nothing (other than append,
// len, cap, and type conversions). Go randomizes map iteration order
// per process, so a range body that emits bytes, mutates shared
// structures through calls, or panics makes behavior depend on the
// iteration order. Pure collect bodies are order-safe at the loop
// itself — writes keyed by distinct map keys commute — and the
// obligation to sort moves to wherever the collected slice is
// consumed:
//
//	for a := range c.served {
//		buf = append(buf, uint64(a))
//	}
//	sortU64(buf) // canonical order before use
//
// Anything else needs restructuring onto sorted keys, or an explicit
// //detlint:allow maporder annotation arguing the body is
// order-insensitive (e.g. a commutative set union through a pure
// predicate).
//
// The contract is deliberately module-wide rather than limited to the
// artifact sinks: canonical state encoding, invariant audits, and
// recovery paths all feed either artifacts or replay determinism, and
// reachability from them spans nearly every package.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: `flags map iteration whose body is not a pure collect

Map iteration order is randomized; a range over a map that feeds CSV
rows, JSON bytes, table cells, canonical encodings, or stateful calls
produces different behavior on every run. Collect keys, sort, then
index.`,
	Run: runMapOrder,
}

func runMapOrder(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if isPureCollectBody(pass, rng.Body.List) {
				return true
			}
			pass.Reportf(rng.For,
				"iteration over map has randomized order and the body is not a pure collect; gather keys and sort first")
			return true
		})
	}
}

// isPureCollectBody reports whether every statement only moves data
// into collections or locals without calling anything: assignments
// and declarations whose expressions are call-free (append, len, cap,
// and conversions excepted), if/continue/break filters, and nothing
// else. Such a body cannot emit bytes or mutate shared state through
// code the analyzer cannot see, and distinct-key writes commute.
func isPureCollectBody(pass *Pass, stmts []ast.Stmt) bool {
	for _, s := range stmts {
		switch st := s.(type) {
		case *ast.AssignStmt:
			for _, e := range append(append([]ast.Expr{}, st.Lhs...), st.Rhs...) {
				if !isCallFree(pass, e) {
					return false
				}
			}
		case *ast.DeclStmt:
			gd, ok := st.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return false
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					return false
				}
				for _, v := range vs.Values {
					if !isCallFree(pass, v) {
						return false
					}
				}
			}
		case *ast.IfStmt:
			if st.Init != nil && !isPureCollectBody(pass, []ast.Stmt{st.Init}) {
				return false
			}
			if !isCallFree(pass, st.Cond) {
				return false
			}
			if !isPureCollectBody(pass, st.Body.List) {
				return false
			}
			if st.Else != nil {
				var els []ast.Stmt
				switch e := st.Else.(type) {
				case *ast.BlockStmt:
					els = e.List
				default:
					els = []ast.Stmt{e}
				}
				if !isPureCollectBody(pass, els) {
					return false
				}
			}
		case *ast.BranchStmt:
			if st.Tok != token.CONTINUE && st.Tok != token.BREAK {
				return false
			}
		case *ast.IncDecStmt:
			if !isCallFree(pass, st.X) {
				return false
			}
		case *ast.ExprStmt:
			// Only effectful call-free expressions reach here:
			// delete(m, k) / clear(m), both commutative over
			// distinct keys.
			if !isCallFree(pass, st.X) {
				return false
			}
		case *ast.EmptyStmt:
		default:
			return false
		}
	}
	return true
}

// isCallFree reports whether evaluating e performs no function calls
// beyond append/len/cap and type conversions.
func isCallFree(pass *Pass, e ast.Expr) bool {
	pure := true
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fn := call.Fun.(type) {
		case *ast.Ident:
			switch pass.TypesInfo.Uses[fn].(type) {
			case *types.Builtin:
				switch fn.Name {
				case "append", "len", "cap", "delete", "clear", "min", "max":
					return true
				}
			case *types.TypeName:
				return true // conversion
			}
		case *ast.SelectorExpr:
			if _, ok := pass.TypesInfo.Uses[fn.Sel].(*types.TypeName); ok {
				return true // qualified conversion
			}
		case *ast.ParenExpr, *ast.ArrayType, *ast.MapType, *ast.StarExpr:
			return true // conversion to composite/pointer type
		}
		pure = false
		return false
	})
	return pure
}
