// Package lint turns the repo's hand-maintained determinism and
// allocation contracts into static analyzers, so a violating change
// fails `detlint` (and CI) instead of silently breaking the
// parallel-determinism lane in a way that bisects to nothing. The
// contracts it enforces are the ones every headline claim rests on:
// no wall clock or global RNG in simulation code, no unsorted map
// iteration feeding artifacts, exact integer stats on merge paths,
// pooled types allocated only through their free lists, and no
// package-level mutable state in shard-partitioned packages (see
// DESIGN.md "Determinism contracts").
//
// The framework deliberately mirrors the shape of
// golang.org/x/tools/go/analysis — Analyzer, Pass, Diagnostic — but is
// built entirely on the standard library (go/parser, go/types, the
// source importer): this module vendors no third-party dependencies,
// so x/tools is not available. If the repo ever grows a vendored
// x/tools, each analyzer's Run can be lifted verbatim onto the real
// API.
//
// Findings are suppressed, one line at a time, with an explicit
// annotation carrying a reason:
//
//	//detlint:allow <analyzer> <reason...>
//
// either trailing the offending line or on its own line directly
// above it. Suppressions without a reason are themselves findings;
// every suppression is counted and reported by cmd/detlint.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one contract checker. It mirrors
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name is the identifier used in findings and in
	// //detlint:allow annotations.
	Name string
	// Doc describes the contract the analyzer enforces. The first
	// line is the one-line summary.
	Doc string
	// Run inspects one package and reports findings via pass.Report.
	Run func(pass *Pass)
}

// Pass carries one type-checked package through one analyzer. It
// mirrors golang.org/x/tools/go/analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Diagnostic is one finding at one source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// All returns the full contract suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{Walltime, MapOrder, FloatDet, PoolAlloc, EdgeControl}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// inScope reports whether a package path names one of the packages a
// contract applies to: scope entries match whole path segments
// ("network" matches "specsimp/internal/network" and a fixture path
// "poolalloc/network", never "networkutil").
func inScope(pkgPath string, scope []string) bool {
	for _, seg := range strings.Split(pkgPath, "/") {
		for _, s := range scope {
			if seg == s {
				return true
			}
		}
	}
	return false
}

// funcFor resolves an expression that should name a function — a bare
// identifier or the field of a selector — to its types.Func, or nil.
func funcFor(info *types.Info, fun ast.Expr) *types.Func {
	switch e := fun.(type) {
	case *ast.Ident:
		f, _ := info.Uses[e].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[e.Sel].(*types.Func)
		return f
	}
	return nil
}

// namedType unwraps aliases and returns the named type of t, looking
// through one level of pointer, or nil.
func namedType(t types.Type) *types.Named {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// pkgLastSegment returns the final path segment of a package path
// ("specsimp/internal/network" -> "network").
func pkgLastSegment(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
