package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	Dir        string
	ImportPath string
	GoFiles    []string
	CgoFiles   []string
}

// Load resolves the given package patterns with `go list` and returns
// each matched package parsed (with comments, so suppression
// annotations survive) and type-checked from source. Test files are
// excluded: the contracts govern the simulator and its artifact
// paths, not test scaffolding, and tests legitimately use wall-clock
// timeouts.
//
// All packages share one file set and one caching source importer, so
// dependencies are type-checked once per Load even when many roots
// import them.
func Load(patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, errb.String())
	}
	var listed []listedPackage
	dec := json.NewDecoder(&out)
	for dec.More() {
		var lp listedPackage
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("lint: decode go list output: %v", err)
		}
		listed = append(listed, lp)
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, lp := range listed {
		files := append(append([]string(nil), lp.GoFiles...), lp.CgoFiles...)
		if len(files) == 0 {
			continue
		}
		pkg, err := Check(fset, imp, lp.ImportPath, lp.Dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// Check parses the named files (absolute, or relative to dir) of one
// package and type-checks them with the given importer. It is the
// building block the vet-tool driver uses when the go command hands it
// an explicit file list (via vet.cfg) instead of a package pattern.
func Check(fset *token.FileSet, imp types.Importer, path, dir string, files []string) (*Package, error) {
	var asts []*ast.File
	for _, name := range files {
		if !filepath.IsAbs(name) {
			name = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %v", name, err)
		}
		asts = append(asts, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-check %s: %v", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: asts, Types: tpkg, Info: info}, nil
}
