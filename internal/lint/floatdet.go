package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// floatdetScope lists the packages (by path segment) whose merge
// functions combine per-shard or per-worker results. Those merges
// must be exact — integer counters, stats.IntSample, integer-summed
// histograms — because floating-point accumulation is
// order-sensitive and the partition into shards/workers is exactly
// what varies.
var floatdetScope = []string{
	"sim", "network", "directory", "snoop", "processor", "system",
	"safetynet", "stats", "runner", "explore",
}

// FloatDet flags float accumulation inside merge functions: compound
// float assignment (+=, -=, *=, /=) and calls to float Observe
// methods (stats.Sample's Welford accumulator). Per-shard results
// merged through floats pick up rounding that depends on the shard
// count; the PR-5 contract routes all mergeable state through
// stats.IntSample and friends.
var FloatDet = &Analyzer{
	Name: "floatdet",
	Doc: `flags float64 accumulation on per-shard/per-worker merge paths

Floating-point addition is not associative: merging shard results
through float += or stats.Sample.Observe makes the totals depend on
the shard count. Merge paths use exact integer state (stats.IntSample,
integer-summed histograms) so every partition yields identical bytes.`,
	Run: runFloatDet,
}

func runFloatDet(pass *Pass) {
	if !inScope(pass.Pkg.Path(), floatdetScope) {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isMergeFunc(fd.Name.Name) {
				continue
			}
			checkMergeBody(pass, fd)
		}
	}
}

// isMergeFunc reports whether a function name marks a shard/worker
// result combiner.
func isMergeFunc(name string) bool {
	lower := strings.ToLower(name)
	return strings.Contains(lower, "merge") || strings.Contains(lower, "combine")
}

func checkMergeBody(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.AssignStmt:
			switch e.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				for _, lhs := range e.Lhs {
					if isFloat(pass.TypesInfo.Types[lhs].Type) {
						pass.Reportf(e.TokPos,
							"float accumulation (%s) in merge function %s; per-shard merges must use exact integer state (stats.IntSample)",
							e.Tok, fd.Name.Name)
					}
				}
			}
		case *ast.CallExpr:
			sel, ok := e.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Observe" {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true
			}
			params := fn.Signature().Params()
			if params.Len() == 1 && isFloat(params.At(0).Type()) {
				pass.Reportf(e.Pos(),
					"float Observe in merge function %s re-accumulates through Welford state; merge exact integer samples instead",
					fd.Name.Name)
			}
		}
		return true
	})
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
