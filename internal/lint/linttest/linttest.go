// Package linttest is an analysistest-style harness for the detlint
// analyzers, built on the standard library (this module vendors no
// x/tools). Fixture packages live under a testdata/src root; expected
// findings are declared in the fixture source with trailing
//
//	// want "regexp"
//
// comments on the offending line (several per line are allowed).
// Run loads the fixture packages, applies one analyzer through the
// full suppression pipeline, and fails the test on any unexpected,
// missing, or mismatched finding.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"specsimp/internal/lint"
)

// Run lints the fixture packages at the given import paths (relative
// to testdata/src) with a single analyzer and checks the findings
// against // want comments. It returns the report so callers can
// additionally assert suppression bookkeeping.
func Run(t *testing.T, testdata string, a *lint.Analyzer, paths ...string) *lint.Report {
	t.Helper()
	pkgs := Load(t, testdata, paths...)
	rep := lint.Lint(pkgs, []*lint.Analyzer{a})
	checkWants(t, pkgs, rep)
	return rep
}

// Load parses and type-checks fixture packages rooted at
// testdata/src, resolving fixture-to-fixture imports from the same
// tree and everything else (time, math/rand, ...) from the standard
// library.
func Load(t *testing.T, testdata string, paths ...string) []*lint.Package {
	t.Helper()
	im := &fixtureImporter{
		root: filepath.Join(testdata, "src"),
		fset: token.NewFileSet(),
		pkgs: map[string]*types.Package{},
	}
	im.std = importer.ForCompiler(im.fset, "source", nil)
	var pkgs []*lint.Package
	for _, path := range paths {
		pkg, err := im.load(path)
		if err != nil {
			t.Fatalf("load fixture %s: %v", path, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs
}

type fixtureImporter struct {
	root string
	fset *token.FileSet
	pkgs map[string]*types.Package
	std  types.Importer
}

// Import resolves an import path for the type checker: fixture tree
// first, standard library second.
func (im *fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := im.pkgs[path]; ok {
		return p, nil
	}
	if _, err := os.Stat(filepath.Join(im.root, path)); err == nil {
		pkg, err := im.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return im.std.Import(path)
}

// load parses and checks one fixture package, caching its type
// information for subsequent imports.
func (im *fixtureImporter) load(path string) (*lint.Package, error) {
	dir := filepath.Join(im.root, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(im.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: im}
	tpkg, err := conf.Check(path, im.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-check %s: %v", path, err)
	}
	im.pkgs[path] = tpkg
	return &lint.Package{Path: path, Dir: dir, Fset: im.fset, Files: files, Types: tpkg, Info: info}, nil
}

var wantRE = regexp.MustCompile(`// want (.*)$`)

// checkWants matches the report's findings against // want comments:
// every want needs a matching finding on its line and every finding
// needs a matching want.
func checkWants(t *testing.T, pkgs []*lint.Package, rep *lint.Report) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, pat := range splitQuoted(t, pos, m[1]) {
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
						}
						k := key{pos.Filename, pos.Line}
						wants[k] = append(wants[k], re)
					}
				}
			}
		}
	}
	matched := map[key]int{}
	for _, fd := range rep.Findings {
		k := key{fd.Pos.Filename, fd.Pos.Line}
		ok := false
		for _, re := range wants[k] {
			if re.MatchString(fd.Message) {
				ok = true
				matched[k]++
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected finding [%s] %s", fd.Pos, fd.Analyzer, fd.Message)
		}
	}
	// Report unmatched wants in file/line order (the fixture's own
	// maporder contract: stable output regardless of map iteration).
	keys := make([]key, 0, len(wants))
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		if matched[k] < len(wants[k]) {
			t.Errorf("%s:%d: %d want(s), %d finding(s) matched", k.file, k.line, len(wants[k]), matched[k])
		}
	}
}

// splitQuoted parses the sequence of quoted regexps after a want
// marker.
func splitQuoted(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' {
			t.Fatalf("%s: want arguments must be quoted regexps, got %q", pos, s)
		}
		end := 1
		for end < len(s) && (s[end] != '"' || s[end-1] == '\\') {
			end++
		}
		if end == len(s) {
			t.Fatalf("%s: unterminated want pattern %q", pos, s)
		}
		pat, err := strconv.Unquote(s[:end+1])
		if err != nil {
			t.Fatalf("%s: bad want pattern %q: %v", pos, s[:end+1], err)
		}
		out = append(out, pat)
		s = strings.TrimSpace(s[end+1:])
	}
	return out
}
