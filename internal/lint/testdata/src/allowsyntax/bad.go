// Package allowsyntax exercises malformed allow annotations; the
// harness asserts on the report rather than want comments because
// these findings land on the annotation lines themselves.
package allowsyntax

// Bogus names an unknown analyzer.
//
//detlint:allow nosuchanalyzer some reason
var bogus = 1

// NoReason omits the mandatory reason.
//
//detlint:allow maporder
var noreason = 2
