// Package network declares a pooled type and its free-list
// allocator.
package network

// Message is pooled: consumers must call Alloc, never allocate
// directly.
type Message struct {
	Src, Dst int
}

var free []*Message

// Alloc returns a recycled or new Message. In-package allocation is
// the pool's own business.
func Alloc() *Message {
	if n := len(free); n > 0 {
		m := free[n-1]
		free = free[:n-1]
		return m
	}
	return &Message{}
}

// Free recycles m.
func Free(m *Message) { free = append(free, m) }
