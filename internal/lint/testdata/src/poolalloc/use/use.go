// Package use consumes the pooled network.Message type.
package use

import "poolalloc/network"

// Fill allocates messages the ways the contract forbids, then the
// ways it allows.
func Fill() []*network.Message {
	a := &network.Message{Src: 1} // want "allocates pooled type"
	b := new(network.Message)     // want "allocates pooled type"
	c := network.Alloc()
	c.Src, c.Dst = 2, 3
	//detlint:allow poolalloc fixture: cold path setup
	d := &network.Message{Src: 4}
	return []*network.Message{a, b, c, d}
}

// ByValue overwrites pooled storage with a value literal: the
// recycling idiom itself, no heap allocation.
func ByValue(m *network.Message) {
	*m = network.Message{Src: 9}
}
