// Package tools is outside the simulation scope; wall-clock use is
// legal here.
package tools

import "time"

// Stamp may read the wall clock: "tools" is not a simulation package.
func Stamp() time.Time { return time.Now() }
