// Package sim is a fixture: its path segment "sim" puts it in the
// walltime contract's scope.
package sim

import (
	"math/rand"
	"time"
)

// Tick observes the wall clock and the global rand source — every
// flagged line violates the contract.
func Tick() (time.Time, time.Duration, int) {
	now := time.Now()            // want "wall-clock time\\.Now"
	el := time.Since(now)        // want "wall-clock time\\.Since"
	time.Sleep(time.Millisecond) // want "wall-clock time\\.Sleep"
	n := rand.Intn(10)           // want "global rand\\.Intn"
	_ = rand.Float64()           // want "global rand\\.Float64"
	return now, el, n
}

// Seeded uses an explicitly seeded local generator: legal.
func Seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// Allowed carries an annotated wall-clock read.
func Allowed() time.Time {
	//detlint:allow walltime fixture: sanctioned fallback path
	return time.Now()
}
