// Package stats is a fixture in the merge-path scope.
package stats

// Sample mimics a Welford accumulator with a float Observe.
type Sample struct {
	n    uint64
	mean float64
}

// Observe records one float observation. (Not a merge function, so
// its own float math is legal.)
func (s *Sample) Observe(x float64) {
	s.n++
	s.mean += (x - s.mean) / float64(s.n)
}

// Results carries one shard's totals.
type Results struct {
	ops   uint64
	score float64
	lat   Sample
}

// Merge folds another shard's results: the float paths violate the
// contract.
func (r *Results) Merge(o *Results) {
	r.ops += o.ops
	r.score += o.score     // want "float accumulation"
	r.lat.Observe(o.score) // want "float Observe"
}

// Scale is not a merge function; float arithmetic is fine here.
func (r *Results) Scale(f float64) {
	r.score *= f
}

// MergeAnnotated documents a deliberate float fold.
func (r *Results) MergeAnnotated(o *Results) {
	//detlint:allow floatdet fixture: deliberate float fold
	r.score += o.score
}
