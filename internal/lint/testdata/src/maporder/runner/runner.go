// Package runner is a maporder fixture (the contract is module-wide;
// the path is just descriptive).
package runner

import "sort"

// Emit feeds map contents straight to the artifact writer in map
// order: the body calls out, so it is not a pure collect.
func Emit(m map[string]int, out func(string)) {
	for k, v := range m { // want "iteration over map"
		_ = v
		out(k)
	}
}

// EmitSorted collects keys, sorts, then indexes: the sanctioned
// shape.
func EmitSorted(m map[string]int, out func(string)) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out(k)
	}
}

// CollectConverted appends a conversion of the key with an
// if/continue filter: still a pure collect.
func CollectConverted(m map[uint32]int) []uint64 {
	var buf []uint64
	for k, v := range m {
		if v == 0 {
			continue
		}
		buf = append(buf, uint64(k))
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	return buf
}

// CollectSet unions keys into a set and rekeys into another map:
// distinct-key writes commute, so both loops are pure collects.
func CollectSet(a, b map[string]int) map[string]bool {
	seen := map[string]bool{}
	for k := range a {
		seen[k] = true
	}
	for k, v := range b {
		seen[k] = v > 0
	}
	return seen
}

// EmitSlice ranges a slice: order is the slice's own.
func EmitSlice(s []string, out func(string)) {
	for _, v := range s {
		out(v)
	}
}

// Accumulate folds through a function call — impure for the analyzer
// — but is order-insensitive, and carries the annotation saying so.
func Accumulate(m map[string]int, weigh func(int) int) int {
	total := 0
	//detlint:allow maporder fixture: commutative integer sum through a pure weigh
	for _, v := range m {
		total += weigh(v)
	}
	return total
}
