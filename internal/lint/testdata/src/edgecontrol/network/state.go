// Package network is a fixture in the shard-partitioned scope.
package network

import "errors"

// Shared mutable state of every forbidden kind.
var (
	routes  = map[int]int{}    // want "package-level map var"
	queue   []int              // want "package-level slice var"
	current *int               // want "package-level pointer var"
	tick    chan int           // want "package-level chan var"
	locks   struct{ held int } // want "package-level struct var"
)

// Tolerated kinds: basics, arrays of basics, error sentinels (an
// interface value), and consts.
var (
	seq      int
	names    = [2]string{"a", "b"}
	ErrFault = errors.New("fault")
)

const width = 4

// Annotated: an init-time-only registration table.
//
//detlint:allow edgecontrol fixture: init-time-only lookup table
var table = map[string]int{}

// Touch keeps the vars referenced.
func Touch() int {
	_ = routes
	_ = queue
	_ = current
	_ = tick
	_ = locks
	_ = names
	_ = table
	_ = ErrFault
	return seq + width
}
