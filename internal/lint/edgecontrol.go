package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// edgecontrolScope lists the shard-partitioned packages (by path
// segment): the ones PR 5 re-homed onto per-shard kernels, where all
// cross-shard mutation must flow through boundary queues or edge
// control (sim.Shards ControlAt/After).
var edgecontrolScope = []string{
	"sim", "network", "directory", "snoop", "processor", "system", "safetynet",
}

// EdgeControl flags new package-level mutable state — non-const
// package vars of pointer, map, slice, chan, or struct type — in
// shard-partitioned packages. A package-level var is shared across
// every shard's kernel; mutating it from handler code races under
// parallel windows and, worse, makes results depend on shard
// interleaving even when the race is benign. State belongs on the
// per-shard component, and cross-shard effects belong in boundary
// queues or edge control. Init-time-only lookup tables need an
// explicit //detlint:allow edgecontrol annotation saying so.
var EdgeControl = &Analyzer{
	Name: "edgecontrol",
	Doc: `flags package-level mutable state in shard-partitioned packages

Shard-partitioned packages run one kernel per shard in parallel
windows; package vars are shared across all of them. Keep state on
per-shard components and route cross-shard mutation through boundary
queues or edge ControlAt/After.`,
	Run: runEdgeControl,
}

func runEdgeControl(pass *Pass) {
	if !inScope(pass.Pkg.Path(), edgecontrolScope) {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if name.Name == "_" {
						continue
					}
					obj := pass.TypesInfo.Defs[name]
					if obj == nil {
						continue
					}
					if kind := mutableKind(obj.Type()); kind != "" {
						pass.Reportf(name.Pos(),
							"package-level %s var %s is mutable state shared across shards; move it onto a per-shard component or route mutation through edge control",
							kind, name.Name)
					}
				}
			}
		}
	}
}

// mutableKind classifies types whose package-level vars the contract
// forbids, returning "" for permitted kinds. Basic values, arrays of
// basics, funcs, and interfaces (error sentinels) are tolerated; maps,
// slices, pointers, chans, and structs are shared mutable state.
func mutableKind(t types.Type) string {
	switch types.Unalias(t).Underlying().(type) {
	case *types.Map:
		return "map"
	case *types.Slice:
		return "slice"
	case *types.Pointer:
		return "pointer"
	case *types.Chan:
		return "chan"
	case *types.Struct:
		return "struct"
	}
	return ""
}
