package lint_test

import (
	"path/filepath"
	"strings"
	"testing"

	"specsimp/internal/lint"
	"specsimp/internal/lint/linttest"
)

func testdata(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

func TestWalltime(t *testing.T) {
	rep := linttest.Run(t, testdata(t), lint.Walltime, "walltime/sim", "walltime/tools")
	assertSuppressions(t, rep, 1)
}

func TestMapOrder(t *testing.T) {
	rep := linttest.Run(t, testdata(t), lint.MapOrder, "maporder/runner")
	assertSuppressions(t, rep, 1)
}

func TestFloatDet(t *testing.T) {
	rep := linttest.Run(t, testdata(t), lint.FloatDet, "floatdet/stats")
	assertSuppressions(t, rep, 1)
}

func TestPoolAlloc(t *testing.T) {
	rep := linttest.Run(t, testdata(t), lint.PoolAlloc, "poolalloc/network", "poolalloc/use")
	assertSuppressions(t, rep, 1)
}

func TestEdgeControl(t *testing.T) {
	rep := linttest.Run(t, testdata(t), lint.EdgeControl, "edgecontrol/network")
	assertSuppressions(t, rep, 1)
}

// assertSuppressions checks that the fixture's allow annotations all
// matched a real diagnostic (none unused, none stale).
func assertSuppressions(t *testing.T, rep *lint.Report, n int) {
	t.Helper()
	if len(rep.Suppressed) != n {
		t.Errorf("suppressions = %d, want %d (%v)", len(rep.Suppressed), n, rep.Suppressed)
	}
	for _, s := range rep.Suppressed {
		if s.Matched < 1 || s.Reason == "" {
			t.Errorf("suppression %v: want >=1 match and a reason", s)
		}
	}
	if len(rep.Unused) != 0 {
		t.Errorf("unused allows: %v", rep.Unused)
	}
}

// TestAllowSyntax pins the malformed-annotation findings: a missing
// reason and an unknown analyzer name each fail the lint run on their
// own.
func TestAllowSyntax(t *testing.T) {
	pkgs := linttest.Load(t, testdata(t), "allowsyntax")
	rep := lint.Lint(pkgs, lint.All())
	var unknown, noReason bool
	for _, f := range rep.Findings {
		if f.Analyzer != "allow" {
			t.Errorf("unexpected finding %v", f)
			continue
		}
		switch {
		case strings.Contains(f.Message, "unknown analyzer"):
			unknown = true
		case strings.Contains(f.Message, "must carry a reason"):
			noReason = true
		default:
			t.Errorf("unexpected allow finding %q", f.Message)
		}
	}
	if !unknown || !noReason {
		t.Errorf("want unknown-analyzer and missing-reason findings, got %v", rep.Findings)
	}
}

// TestRepoContractsClean runs the full suite over the real module —
// the acceptance criterion that detlint is clean over ./... with every
// suppression carrying a reason. It type-checks the whole tree from
// source, so it is skipped in -short runs.
func TestRepoContractsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the entire module from source")
	}
	pkgs, err := lint.Load("specsimp/...")
	if err != nil {
		t.Fatal(err)
	}
	rep := lint.Lint(pkgs, lint.All())
	for _, f := range rep.Findings {
		t.Errorf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
	}
	for _, s := range rep.Suppressed {
		if s.Reason == "" {
			t.Errorf("%s: suppression without reason", s.Pos)
		}
	}
	for _, s := range rep.Unused {
		t.Errorf("%s: unused //detlint:allow %s (%s)", s.Pos, s.Analyzer, s.Reason)
	}
}
