package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// pooledTypes names the hot-path types recycled through
// pool.FreeList, keyed "<declaring package's last path segment>.<type>".
// The unexported entries are already unreachable from other packages;
// they are listed so the contract survives a future export.
var pooledTypes = map[string]bool{
	"network.Message":    true, // network free list, AllocMessage/AllocMessageFor
	"coherence.Msg":      true, // protocol payload boxes, per-shard pools
	"directory.tbe":      true,
	"directory.busyInfo": true,
	"snoop.tbe":          true,
}

// PoolAlloc flags heap allocation (&T{...} or new(T)) of pooled types
// outside their declaring package. The simulator's hot paths are
// allocation-free because every Message and payload box cycles
// through a pool.FreeList; a stray literal in a consumer package
// silently regrows per-event garbage, and the benchmarks only catch
// it after the fact. Value literals (T{...} without &) stay legal —
// `*msg = coherence.Msg{...}` is the recycling idiom itself.
var PoolAlloc = &Analyzer{
	Name: "poolalloc",
	Doc: `flags heap allocation of pooled types outside their declaring package

network.Message and coherence.Msg recycle through free lists
(AllocMessage, per-shard payload pools). &T{} or new(T) in a consumer
package bypasses the pool and regrows hot-path allocations; request a
pooled object from the owning component instead.`,
	Run: runPoolAlloc,
}

func runPoolAlloc(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.UnaryExpr:
				if e.Op != token.AND {
					return true
				}
				cl, ok := e.X.(*ast.CompositeLit)
				if !ok {
					return true
				}
				tv, ok := pass.TypesInfo.Types[cl]
				if !ok {
					return true
				}
				reportPooled(pass, e.Pos(), tv.Type, "&%s{} allocates pooled type outside %s; use its free-list allocator")
			case *ast.CallExpr:
				id, ok := e.Fun.(*ast.Ident)
				if !ok || id.Name != "new" || len(e.Args) != 1 {
					return true
				}
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
					return true
				}
				tv, ok := pass.TypesInfo.Types[e.Args[0]]
				if !ok {
					return true
				}
				reportPooled(pass, e.Pos(), tv.Type, "new(%s) allocates pooled type outside %s; use its free-list allocator")
			}
			return true
		})
	}
}

func reportPooled(pass *Pass, pos token.Pos, t types.Type, format string) {
	named := namedType(t)
	if named == nil || named.Obj().Pkg() == nil {
		return
	}
	declPkg := named.Obj().Pkg()
	if declPkg == pass.Pkg {
		return // the owning package manages its own pool internals
	}
	key := pkgLastSegment(declPkg.Path()) + "." + named.Obj().Name()
	if !pooledTypes[key] {
		return
	}
	pass.Reportf(pos, format, key, declPkg.Path())
}
