package experiments

import (
	"fmt"

	"specsimp/internal/runner"
	"specsimp/internal/stats"
	"specsimp/internal/system"
	"specsimp/internal/workload"
)

// WorkloadsResult is one cell of the workload-realism study: a stream
// shape (base profile or sharing idiom × Zipf skew × phase length) on
// one speculative protocol.
type WorkloadsResult struct {
	Kind     string
	Workload string
	Idiom    string // "-" for the base profile stream
	Skew     float64
	Phase    uint64
	Err      string

	Perf          Cell
	Recoveries    float64
	MissLatency   float64
	MeanLinkUtil  float64
	Invalidations float64
	Transactions  float64
}

// wlVariant is one stream shape of the study grid.
type wlVariant struct {
	idiom string // "" = the base profile stream
	skew  float64
	phase uint64
}

// workloadsPhaseLen rotates the hot set every 384 references. A -quick
// point retires only ~1k references per node (Instructions counts
// think cycles, so refs ≈ instructions / (MeanThink+1)) — a longer
// phase would never fire at quick scale and the phase axis would be a
// no-op there.
const workloadsPhaseLen = 384

// workloadsGrid enumerates the stream shapes. The base profile and the
// object-choice idioms (migratory, broadcast) sweep Zipf skew across
// static and phase-shifting hot sets; ring and scan have no skew axis
// (their address sequences are structural) and sweep phases only. A
// trace replay has no knobs at all — it is a single shape.
func workloadsGrid(wl workload.Profile) []wlVariant {
	if wl.IsTrace() {
		return []wlVariant{{}}
	}
	var vs []wlVariant
	for _, idiom := range []string{"", workload.IdiomMigratory, workload.IdiomBroadcast} {
		skews := []float64{0, 0.8, 1.2}
		if idiom != "" {
			skews = []float64{0, 1.2}
		}
		for _, skew := range skews {
			for _, phase := range []uint64{0, workloadsPhaseLen} {
				vs = append(vs, wlVariant{idiom: idiom, skew: skew, phase: phase})
			}
		}
	}
	for _, idiom := range []string{workload.IdiomRing, workload.IdiomScan} {
		for _, phase := range []uint64{0, workloadsPhaseLen} {
			vs = append(vs, wlVariant{idiom: idiom, phase: phase})
		}
	}
	return vs
}

// profileFor materializes one variant's workload profile: the base
// stream or an idiom preset, with the variant's skew and phase applied.
func profileFor(wl workload.Profile, v wlVariant) workload.Profile {
	p := wl
	if v.idiom != "" {
		for _, ip := range workload.Idioms {
			if ip.Idiom == v.idiom {
				p = ip
				break
			}
		}
	}
	if !p.IsTrace() {
		p.ZipfSkew = v.skew
		p.PhaseLen = v.phase
	}
	return p
}

func (v wlVariant) idiomLabel() string {
	if v.idiom == "" {
		return "-"
	}
	return v.idiom
}

// workloadsExp runs the workload-realism study: every stream shape of
// workloadsGrid on both speculative protocols at the Table 2 geometry.
// The "workload" axis is the base profile (a trace replay collapses
// the grid to its single recorded stream). Directory points ride the
// windowed tile engine, so artifacts are byte-identical at every
// -shards value — CI diffs them, including a recorded-trace replay.
type workloadsExp struct{}

func (workloadsExp) Name() string { return "workloads" }
func (workloadsExp) Title(p Params) string {
	return "Workload realism: Zipf skew × phase length × sharing idiom, both Spec protocols (" +
		p.AxisProfile("workload").Name + " base)"
}
func (workloadsExp) Axes() []Axis { return []Axis{workloadAxis("oltp")} }

func (workloadsExp) Grid(p Params) []runner.Point {
	wl := p.AxisProfile("workload")
	grid := workloadsGrid(wl)
	var pts []runner.Point
	for _, kind := range scaleKinds {
		for _, v := range grid {
			cfg := system.DefaultConfigSized(kind, profileFor(wl, v), 4, 4)
			cfg.CheckpointInterval = p.CheckpointInterval
			cfg.CyclesPerSecond = p.CyclesPerSecond
			cfg.TimeoutCycles = 0
			if kind.IsDirectory() {
				cfg.Shards, cfg.ShardRows, cfg.ShardCols = effectiveTiles(p, 4, 4)
			}
			pts = repeats(pts, "workloads", cfg, p, map[string]string{
				"kind":  kind.String(),
				"idiom": v.idiomLabel(),
				"skew":  fmt.Sprintf("%g", v.skew),
				"phase": fmt.Sprintf("%d", v.phase),
			})
		}
	}
	return pts
}

func (workloadsExp) Aggregate(p Params, res []runner.Result) any {
	wl := p.AxisProfile("workload")
	grid := workloadsGrid(wl)
	var out []WorkloadsResult
	i := 0
	for _, kind := range scaleKinds {
		for _, v := range grid {
			r := WorkloadsResult{
				Kind:     kind.String(),
				Workload: profileFor(wl, v).Name,
				Idiom:    v.idiomLabel(),
				Skew:     v.skew,
				Phase:    v.phase,
			}
			if err := res[i].Err; err != nil {
				r.Err = err.Error()
				out = append(out, r)
				i += p.Runs
				continue
			}
			perf := sampleOf(res, i, p.Runs, "perf")
			r.Perf = Cell{perf.Mean(), perf.StdDev()}
			r.Recoveries = sampleOf(res, i, p.Runs, "recoveries").Mean()
			r.MissLatency = sampleOf(res, i, p.Runs, "miss_latency_mean").Mean()
			r.MeanLinkUtil = sampleOf(res, i, p.Runs, "mean_link_util").Mean()
			r.Invalidations = sampleOf(res, i, p.Runs, "invalidations").Mean()
			r.Transactions = sampleOf(res, i, p.Runs, "transactions").Mean()
			out = append(out, r)
			i += p.Runs
		}
	}
	return out
}

func (workloadsExp) Table(v any) string { return WorkloadsTable(v.([]WorkloadsResult)) }

// Workloads runs the registered workloads experiment on one base
// profile (historical signature).
func Workloads(p Params, wl workload.Profile) []WorkloadsResult {
	p.Workload = wl
	return mustRun(workloadsExp{}, p).([]WorkloadsResult)
}

// WorkloadsTable renders the workload-realism study.
func WorkloadsTable(results []WorkloadsResult) string {
	t := stats.NewTable("system", "stream", "idiom", "zipf s", "phase", "IPC", "recoveries", "miss latency", "invs", "txns", "link util")
	var notes []string
	seen := map[string]bool{}
	for _, r := range results {
		if r.Err != "" {
			t.AddRow(r.Kind, r.Workload, r.Idiom, fmt.Sprintf("%g", r.Skew), fmt.Sprintf("%d", r.Phase),
				"unsupported*", "-", "-", "-", "-", "-")
			if !seen[r.Err] {
				seen[r.Err] = true
				notes = append(notes, "* "+r.Err)
			}
			continue
		}
		t.AddRow(r.Kind, r.Workload, r.Idiom,
			fmt.Sprintf("%g", r.Skew), fmt.Sprintf("%d", r.Phase),
			r.Perf.String(),
			fmt.Sprintf("%.2f", r.Recoveries),
			fmt.Sprintf("%.1f", r.MissLatency),
			fmt.Sprintf("%.0f", r.Invalidations),
			fmt.Sprintf("%.0f", r.Transactions),
			fmt.Sprintf("%.1f%%", 100*r.MeanLinkUtil))
	}
	out := t.String()
	for _, n := range notes {
		out += n + "\n"
	}
	return out
}
