package experiments

import (
	"fmt"
	"strconv"

	"specsimp/internal/runner"
	"specsimp/internal/sim"
	"specsimp/internal/stats"
	"specsimp/internal/system"
)

// ---- availability: sustained fault load × checkpoint cadence ----

// AvailabilityRate is the aggregate fault arrival rate, in faults per
// second of the compressed clock, that every regime runs at — 40/s sits
// between Figure 4's 10/s and 100/s points, high enough that regimes
// overlap recoveries and the deferral path is exercised.
const AvailabilityRate = 40.0

// AvailabilityLogEntries shrinks the per-node checkpoint log to this
// many 72-byte entries so the sweep actually reaches the log-overflow
// backpressure path (Table 2's 512 KB ≈ 7281 entries would never fill
// at these run lengths). 32 entries sits between the base cadence's
// ~38-entry epoch peak and the fast cadence's ~17: the static base
// interval stalls on backpressure, the 4× cadence clears it, and the
// adaptive controller has a gradient to descend.
const AvailabilityLogEntries = 32

// AvailabilityResult is one regime × cadence point of the availability
// sweep.
type AvailabilityResult struct {
	Regime  string
	Cadence string

	Perf       Cell
	Recoveries float64
	// OutagePct and DegradedPct are the run fraction spent fully parked
	// in recovery and inside recovery+slow-start windows; DegradedIPC is
	// throughput inside the degraded windows (vs Perf overall).
	OutagePct   float64
	DegradedPct float64
	DegradedIPC float64
	// RecoveryLatMean/Max are the detection-to-resume latency moments
	// (deferral behind in-progress recoveries included); RollbackMean is
	// the mean rollback distance.
	RecoveryLatMean float64
	RecoveryLatMax  float64
	RollbackMean    float64
	// LogStallPct is the run fraction the overflow backpressure held the
	// machine; Overflows counts appends past capacity. FinalInterval is
	// the cadence controller's terminal interval.
	LogStallPct   float64
	Overflows     float64
	FinalInterval float64
}

type availabilityCadence struct {
	name     string
	interval sim.Time
	adaptive bool
}

// availabilityCadences returns the swept cadences: the base static
// interval, a 4× faster static interval, and the adaptive controller
// starting from the base.
func availabilityCadences(p Params) []availabilityCadence {
	base := p.CheckpointInterval
	fast := base / 4
	if fast < 1 {
		fast = 1
	}
	return []availabilityCadence{
		{"static", base, false},
		{"fast", fast, false},
		{"adaptive", base, true},
	}
}

// availabilityRegimes pairs the legacy periodic injector with the three
// sustained-fault regimes, all at AvailabilityRate.
var availabilityRegimes = []struct {
	name   string
	regime system.FaultRegime
}{
	{"periodic", system.FaultNone},
	{"storm", system.FaultStorm},
	{"regional", system.FaultRegional},
	{"repeat", system.FaultRepeat},
}

// availabilityExp sweeps fault regime × checkpoint cadence on the
// speculative directory system and reports degraded-mode throughput,
// recovery-latency and rollback-distance distributions, and the cost of
// log-overflow backpressure. One workload (OLTP by default) keeps the
// grid small; the regimes, not the workload mix, are the experiment's
// subject.
type availabilityExp struct{}

func (availabilityExp) Name() string { return "availability" }
func (availabilityExp) Title(p Params) string {
	return "Availability: sustained fault regimes × checkpoint cadence (" +
		p.AxisProfile("workload").Name + ")"
}
func (availabilityExp) Axes() []Axis { return []Axis{workloadAxis("oltp")} }

func (availabilityExp) Grid(p Params) []runner.Point {
	wl := p.AxisProfile("workload")
	var pts []runner.Point
	for _, reg := range availabilityRegimes {
		for _, cad := range availabilityCadences(p) {
			cfg := system.DefaultConfig(system.DirectorySpec, wl)
			cfg.CheckpointInterval = cad.interval
			cfg.AdaptiveCheckpoint = cad.adaptive
			cfg.TimeoutCycles = 0 // full-buffering adaptive net cannot deadlock
			cfg.CyclesPerSecond = p.CyclesPerSecond
			cfg.SlowStartWindow = 5 * p.CheckpointInterval
			cfg.LogBytes = AvailabilityLogEntries * 72
			// Intra-run tiling (resolved against the 4×4 torus): the
			// whole sweep must be byte-identical for every -shards value
			// and tile shape — the CI determinism lane diffs the CSVs.
			cfg.Shards, cfg.ShardRows, cfg.ShardCols = effectiveTiles(p, 4, 4)
			if reg.regime == system.FaultNone {
				cfg.InjectRecoveryEvery = sim.Time(p.CyclesPerSecond / AvailabilityRate)
			} else {
				cfg.FaultRegime = reg.regime
				cfg.FaultRate = AvailabilityRate
			}
			pts = repeats(pts, "availability", cfg, p, map[string]string{
				"regime":  reg.name,
				"cadence": cad.name,
			})
		}
	}
	return pts
}

func (availabilityExp) Aggregate(p Params, res []runner.Result) any {
	var out []AvailabilityResult
	i := 0
	for _, reg := range availabilityRegimes {
		for _, cad := range availabilityCadences(p) {
			perf := sampleOf(res, i, p.Runs, "perf")
			cycles := sampleOf(res, i, p.Runs, "cycles").Mean()
			r := AvailabilityResult{
				Regime:         reg.name,
				Cadence:        cad.name,
				Perf:           Cell{perf.Mean(), perf.StdDev()},
				Recoveries:     sampleOf(res, i, p.Runs, "recoveries").Mean(),
				RollbackMean:   ratio(sampleOf(res, i, p.Runs, "rollback_sum").Mean(), sampleOf(res, i, p.Runs, "rollback_n").Mean()),
				Overflows:      sampleOf(res, i, p.Runs, "log_overflows").Mean(),
				FinalInterval:  sampleOf(res, i, p.Runs, "checkpoint_interval_final").Mean(),
				RecoveryLatMax: sampleOf(res, i, p.Runs, "recovery_lat_max").Mean(),
			}
			r.RecoveryLatMean = ratio(sampleOf(res, i, p.Runs, "recovery_lat_sum").Mean(), sampleOf(res, i, p.Runs, "recovery_lat_n").Mean())
			r.DegradedIPC = ratio(sampleOf(res, i, p.Runs, "degraded_instructions").Mean(), sampleOf(res, i, p.Runs, "degraded_cycles").Mean())
			if cycles > 0 {
				r.OutagePct = sampleOf(res, i, p.Runs, "outage_cycles").Mean() / cycles
				r.DegradedPct = sampleOf(res, i, p.Runs, "degraded_cycles").Mean() / cycles
				r.LogStallPct = sampleOf(res, i, p.Runs, "log_stall_cycles").Mean() / cycles
			}
			out = append(out, r)
			i += p.Runs
		}
	}
	return out
}

func (availabilityExp) Table(v any) string { return AvailabilityTable(v.([]AvailabilityResult)) }

// Availability runs the registered availability experiment (historical
// signature; OLTP by default).
func Availability(p Params) []AvailabilityResult {
	return mustRun(availabilityExp{}, p).([]AvailabilityResult)
}

// ratio is a/b, or 0 when b is 0 (no observations).
func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// AvailabilityTable renders the availability sweep.
func AvailabilityTable(results []AvailabilityResult) string {
	t := stats.NewTable("regime", "cadence", "IPC", "degr IPC", "outage", "degraded", "log stall",
		"recoveries", "rec lat", "rollback", "overflows", "final ival")
	for _, r := range results {
		t.AddRow(r.Regime, r.Cadence,
			r.Perf.String(),
			fmt.Sprintf("%.3f", r.DegradedIPC),
			fmt.Sprintf("%.1f%%", 100*r.OutagePct),
			fmt.Sprintf("%.1f%%", 100*r.DegradedPct),
			fmt.Sprintf("%.1f%%", 100*r.LogStallPct),
			fmt.Sprintf("%.1f", r.Recoveries),
			fmt.Sprintf("%.0f", r.RecoveryLatMean),
			fmt.Sprintf("%.0f", r.RollbackMean),
			fmt.Sprintf("%.0f", r.Overflows),
			strconv.FormatFloat(r.FinalInterval, 'f', 0, 64))
	}
	return t.String()
}
