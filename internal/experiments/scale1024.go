package experiments

// The 1024-node scaling study: the scale64 curve (§5.5) extended past
// its 256-node ceiling to the 32×32 machine the 2D tile substrate and
// the segmented snoop address network open up. One sweep, both kinds,
// every geometry tier from the paper's 4×4 up — with the per-point
// error column still exercised by the one machine model that genuinely
// cannot scale there (snooping at 1024 nodes).

import (
	"fmt"

	"specsimp/internal/directory"
	"specsimp/internal/runner"
	"specsimp/internal/sim"
	"specsimp/internal/system"
)

// Scale1024Geometries are the 1024-node study's tiers: node count
// quadruples from the paper's target machine to the 32×32 torus.
var Scale1024Geometries = [][2]int{{4, 4}, {8, 8}, {16, 16}, {32, 32}}

// scale1024Variants lists one kind's design points for the 1024-node
// study. Directory systems ride the exact bitmap to its 64-node ceiling
// and the coarse vector beyond (the format whose per-entry state stays
// one flat word at 1024 nodes); the snooping system runs its segmented
// 16×16 point for real and keeps the 32×32 point in the grid even
// though it is past the segmented address network's ceiling — the sweep
// must report that through the error column, not die on it.
func scale1024Variants(kind system.Kind) []scaleVariant {
	if !kind.IsDirectory() {
		return []scaleVariant{
			{w: 16, h: 16, label: "-"},
			{w: 32, h: 32, label: "-"},
		}
	}
	return []scaleVariant{
		{4, 4, directory.FullBitmap, "bitmap"},
		{8, 8, directory.FullBitmap, "bitmap"},
		{16, 16, directory.CoarseVector, "coarse"},
		{32, 32, directory.CoarseVector, "coarse"},
	}
}

// scale1024Cycles holds per-point simulation work roughly constant
// across the curve: node count quadruples each tier, so simulated
// cycles shrink by the same factor, anchored at the 4×4 machine running
// the full p.Cycles. Without this the 32×32 point would cost 64× the
// 4×4 point and the CI determinism lane (which byte-diffs this sweep at
// five different tilings) would dominate the pipeline. A floor of four
// checkpoint intervals keeps every point long enough to checkpoint,
// validate and recover.
func scale1024Cycles(p Params, nodes int) sim.Time {
	c := p.Cycles * 16 / sim.Time(nodes)
	if min := 4 * p.CheckpointInterval; c < min {
		c = min
	}
	return c
}

// scale1024Exp runs the 1024-node scaling study, defaulting to the
// paper's primary workload (OLTP). Directory points run the windowed
// tile engine — auto-factored per geometry, or pinned via
// Params.ShardRows/ShardCols — so the CSV artifacts are byte-identical
// at every tile count and tile shape; snooping points run the classic
// serial path, with 16×16 a real run on the segmented address network
// and 32×32 a reported error row.
type scale1024Exp struct{}

func (scale1024Exp) Name() string { return "scale1024" }
func (scale1024Exp) Title(p Params) string {
	return "Scaling study: 4x4 -> 32x32 (1024 nodes) on 2D torus tiles (" +
		p.AxisProfile("workload").Name + ")"
}
func (scale1024Exp) Axes() []Axis { return []Axis{workloadAxis("oltp")} }

func (scale1024Exp) Grid(p Params) []runner.Point {
	wl := p.AxisProfile("workload")
	var pts []runner.Point
	for _, kind := range scaleKinds {
		for _, v := range scale1024Variants(kind) {
			cfg := system.DefaultConfigSized(kind, wl, v.w, v.h)
			cfg.CheckpointInterval = p.CheckpointInterval
			cfg.CyclesPerSecond = p.CyclesPerSecond
			cfg.TimeoutCycles = 0
			if kind.IsDirectory() {
				cfg.Sharers = v.sharers
				cfg.Shards, cfg.ShardRows, cfg.ShardCols = effectiveTiles(p, v.w, v.h)
			}
			cycles := scale1024Cycles(p, v.w*v.h)
			params := map[string]string{
				"kind":    kind.String(),
				"geom":    fmt.Sprintf("%dx%d", v.w, v.h),
				"sharers": v.label,
			}
			for rep := 0; rep < p.Runs; rep++ {
				pts = append(pts, sysPoint("scale1024", cfg, cycles, params, rep))
			}
		}
	}
	return pts
}

func (scale1024Exp) Aggregate(p Params, res []runner.Result) any {
	wl := p.AxisProfile("workload")
	var out []ScaleResult
	i := 0
	for _, kind := range scaleKinds {
		var base float64
		for vi, v := range scale1024Variants(kind) {
			r := ScaleResult{
				Kind:     kind.String(),
				Workload: wl.Name,
				Width:    v.w,
				Height:   v.h,
				Sharers:  v.label,
			}
			if err := res[i].Err; err != nil {
				r.Err = err.Error()
				out = append(out, r)
				i += p.Runs
				continue
			}
			perf := sampleOf(res, i, p.Runs, "perf")
			if vi == 0 {
				base = perf.Mean()
			}
			r.Perf = Cell{perf.Mean(), perf.StdDev()}
			r.PerfVs4x4 = cell(perf, base)
			r.Recoveries = sampleOf(res, i, p.Runs, "recoveries").Mean()
			r.MissLatency = sampleOf(res, i, p.Runs, "miss_latency_mean").Mean()
			r.MeanLinkUtil = sampleOf(res, i, p.Runs, "mean_link_util").Mean()
			r.Invalidations = sampleOf(res, i, p.Runs, "invalidations").Mean()
			r.InvBroadcasts = sampleOf(res, i, p.Runs, "inv_broadcasts").Mean()
			out = append(out, r)
			i += p.Runs
		}
	}
	return out
}

func (scale1024Exp) Table(v any) string { return Scale1024Table(v.([]ScaleResult)) }

// Scale1024Sweep runs the registered scale1024 experiment (historical
// signature; OLTP by default).
func Scale1024Sweep(p Params) []ScaleResult { return mustRun(scale1024Exp{}, p).([]ScaleResult) }

// Scale1024Table renders the 1024-node scaling study with the same
// layout as the scale64 table (unsupported points footnoted).
func Scale1024Table(results []ScaleResult) string {
	return ScaleTable(results)
}
