package experiments

// The registered-experiment API. Every driver is an Experiment: a
// named, axis-declaring pair of Grid (design points) and Aggregate
// (positional reduction of the grid's results into the paper's
// structured rows), plus a Table renderer. The sorted package-level
// registry mirrors the workload registry (internal/workload): cmd/sweep
// generates its -exp usage string, its "all" ordering, and its
// unknown-experiment error from Names(), and internal/campaign builds
// declarative multi-experiment plans from ByName — neither can drift
// from the compiled-in experiment set again.
//
// Axis values travel as strings (the CLI/spec surface) and are resolved
// once, by Normalize, into typed values on Params: the single place
// defaults apply, overrides win, and bad values become descriptive
// errors instead of panics deep in a grid builder.

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"specsimp/internal/runner"
	"specsimp/internal/sim"
	"specsimp/internal/workload"
)

// AxisKind types an experiment axis's values.
type AxisKind int

const (
	// AxisInt values are decimal integers (buffer sizes, limits).
	AxisInt AxisKind = iota
	// AxisTime values are simulated-cycle counts (sim.Time).
	AxisTime
	// AxisFloat values are decimal floats (link bandwidths).
	AxisFloat
	// AxisWorkload values are registered workload names or
	// "trace:<path>" replays (workload.Resolve).
	AxisWorkload
)

// String names the kind for usage text and error messages.
func (k AxisKind) String() string {
	switch k {
	case AxisInt:
		return "int"
	case AxisTime:
		return "cycles"
	case AxisFloat:
		return "float"
	case AxisWorkload:
		return "workload"
	}
	return "?"
}

// Axis declares one experiment knob: its name, value type, arity, and
// registry-level default. Defaults are declared here — not at call
// sites — so the CLI, campaign specs, and the legacy driver functions
// all resolve through one normalization path.
type Axis struct {
	Name string
	Kind AxisKind
	// List permits multiple values (a sweep dimension); single-valued
	// axes demand exactly one.
	List bool
	// Default is the declared default value set; DefaultOf computes it
	// from the run parameters instead (e.g. re-enable windows scaled by
	// the checkpoint interval). At most one of the two is set.
	Default   []string
	DefaultOf func(Params) []string
	// Help is one line for generated usage text.
	Help string
}

// defaults resolves the axis's default value set against p.
func (a Axis) defaults(p Params) []string {
	if a.DefaultOf != nil {
		return a.DefaultOf(p)
	}
	return a.Default
}

// Experiment is one registered driver: a named design-point grid and
// its aggregation. Grid and Aggregate take normalized Params (see
// Normalize) and pair positionally — Aggregate indexes the result
// slice by the same iteration order Grid emitted, p.Runs repeats per
// design point. Table renders the value Aggregate returned.
type Experiment interface {
	Name() string
	// Title is the human heading printed above the table (may read
	// normalized axis values, e.g. the workload name).
	Title(p Params) string
	Axes() []Axis
	Grid(p Params) []runner.Point
	Aggregate(p Params, res []runner.Result) any
	Table(v any) string
}

// Preambler experiments print an extra note above their table (e.g.
// fig4's compressed-clock line).
type Preambler interface {
	Preamble(p Params) string
}

// registry is the sorted experiment table. Registration happens in
// this package's init, so the slice is immutable afterwards — ByName
// binary-searches it.
var registry []Experiment

// Register adds an experiment, keeping the registry sorted by name.
// Duplicate names are a programming error.
func Register(e Experiment) {
	name := e.Name()
	i := sort.Search(len(registry), func(i int) bool { return registry[i].Name() >= name })
	if i < len(registry) && registry[i].Name() == name {
		panic("experiments: duplicate registration of " + name)
	}
	registry = append(registry, nil)
	copy(registry[i+1:], registry[i:])
	registry[i] = e
}

// Names returns every registered experiment name in sorted order.
func Names() []string {
	names := make([]string, len(registry))
	for i, e := range registry {
		names[i] = e.Name()
	}
	return names
}

// ByName returns the named experiment.
func ByName(name string) (Experiment, bool) {
	i := sort.Search(len(registry), func(i int) bool { return registry[i].Name() >= name })
	if i < len(registry) && registry[i].Name() == name {
		return registry[i], true
	}
	return nil, false
}

// All returns the registered experiments in name order.
func All() []Experiment { return append([]Experiment(nil), registry...) }

func init() {
	for _, e := range []Experiment{
		fig4Exp{}, fig5Exp{}, reorderExp{}, snoopExp{}, buffersExp{},
		scale64Exp{}, scale1024Exp{}, slowstartExp{}, deflectionExp{},
		reenableExp{}, checkpointExp{}, workloadsExp{}, availabilityExp{},
	} {
		Register(e)
	}
}

// ---- normalization ----

// Normalize resolves every axis the experiment declares into typed
// values on the returned Params — the single defaulting path. For each
// axis, precedence is: an explicit p.Axes override (strings, as from
// the CLI or a campaign spec), then the legacy profile fields
// (p.Workload for single-valued workload axes, p.Workloads for
// list-valued ones — already-resolved profiles, so trace replays and
// test-constructed profiles pass through untouched), then the axis's
// declared default. Values are validated and re-encoded canonically;
// any problem is a descriptive error naming the experiment and axis.
// Normalizing already-normalized Params is the identity.
func Normalize(e Experiment, p Params) (Params, error) {
	if p.normalized {
		return p, nil
	}
	axes := e.Axes()
	values := make(map[string][]string, len(axes))
	profiles := map[string][]workload.Profile{}
	for _, a := range axes {
		raw := p.Axes[a.Name]
		var prof []workload.Profile
		if len(raw) == 0 && a.Kind == AxisWorkload {
			if a.List && len(p.Workloads) > 0 {
				prof = append(prof, p.Workloads...)
			} else if !a.List && p.Workload.Name != "" {
				prof = []workload.Profile{p.Workload}
			}
		}
		if len(raw) == 0 && len(prof) == 0 {
			raw = a.defaults(p)
		}
		if len(prof) == 0 {
			canon := make([]string, len(raw))
			for i, v := range raw {
				cv, pr, err := parseAxisValue(a, v)
				if err != nil {
					return p, fmt.Errorf("experiment %s, axis %s: %v", e.Name(), a.Name, err)
				}
				canon[i] = cv
				if a.Kind == AxisWorkload {
					prof = append(prof, pr)
				}
			}
			raw = canon
		} else {
			names := make([]string, len(prof))
			for i, w := range prof {
				names[i] = w.Name
			}
			raw = names
		}
		if len(raw) == 0 {
			return p, fmt.Errorf("experiment %s, axis %s: no values (no default declared and none supplied)", e.Name(), a.Name)
		}
		if !a.List && len(raw) != 1 {
			return p, fmt.Errorf("experiment %s, axis %s: takes exactly one value, got %d (%s)",
				e.Name(), a.Name, len(raw), strings.Join(raw, ", "))
		}
		values[a.Name] = raw
		if a.Kind == AxisWorkload {
			profiles[a.Name] = prof
		}
	}
	for _, name := range sortedOverrideKeys(p.Axes) {
		if _, ok := values[name]; !ok {
			return p, fmt.Errorf("experiment %s has no axis %q (declared: %s)",
				e.Name(), name, strings.Join(axisNames(axes), ", "))
		}
	}
	p.axisValues = values
	p.axisProfiles = profiles
	p.normalized = true
	return p, nil
}

// parseAxisValue validates one raw value against the axis's kind and
// returns its canonical string form (plus the resolved profile for
// workload axes).
func parseAxisValue(a Axis, v string) (canon string, prof workload.Profile, err error) {
	v = strings.TrimSpace(v)
	switch a.Kind {
	case AxisInt:
		n, err := strconv.Atoi(v)
		if err != nil {
			return "", prof, fmt.Errorf("value %q is not an integer", v)
		}
		return strconv.Itoa(n), prof, nil
	case AxisTime:
		n, err := strconv.ParseUint(v, 10, 63)
		if err != nil {
			return "", prof, fmt.Errorf("value %q is not a cycle count (non-negative integer)", v)
		}
		return strconv.FormatUint(n, 10), prof, nil
	case AxisFloat:
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return "", prof, fmt.Errorf("value %q is not a number", v)
		}
		return strconv.FormatFloat(f, 'g', -1, 64), prof, nil
	case AxisWorkload:
		w, err := workload.Resolve(v)
		if err != nil {
			return "", prof, err
		}
		return w.Name, w, nil
	}
	panic("experiments: unknown axis kind")
}

func sortedOverrideKeys(m map[string][]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func axisNames(axes []Axis) []string {
	names := make([]string, len(axes))
	for i, a := range axes {
		names[i] = a.Name
	}
	return names
}

// ---- typed axis accessors (post-Normalize) ----

// axis returns the normalized value set; calling before Normalize or
// with an undeclared name is a programming error.
func (p Params) axis(name string) []string {
	if !p.normalized {
		panic("experiments: axis " + name + " read before Normalize")
	}
	vs, ok := p.axisValues[name]
	if !ok {
		panic("experiments: read of undeclared axis " + name)
	}
	return vs
}

// AxisInts returns an integer axis's normalized values.
func (p Params) AxisInts(name string) []int {
	vs := p.axis(name)
	out := make([]int, len(vs))
	for i, v := range vs {
		n, err := strconv.Atoi(v)
		if err != nil {
			panic("experiments: axis " + name + ": " + err.Error())
		}
		out[i] = n
	}
	return out
}

// AxisTimes returns a cycle-count axis's normalized values.
func (p Params) AxisTimes(name string) []sim.Time {
	vs := p.axis(name)
	out := make([]sim.Time, len(vs))
	for i, v := range vs {
		n, err := strconv.ParseUint(v, 10, 63)
		if err != nil {
			panic("experiments: axis " + name + ": " + err.Error())
		}
		out[i] = sim.Time(n)
	}
	return out
}

// AxisFloats returns a float axis's normalized values.
func (p Params) AxisFloats(name string) []float64 {
	vs := p.axis(name)
	out := make([]float64, len(vs))
	for i, v := range vs {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			panic("experiments: axis " + name + ": " + err.Error())
		}
		out[i] = f
	}
	return out
}

// AxisProfiles returns a workload axis's resolved profiles.
func (p Params) AxisProfiles(name string) []workload.Profile {
	if !p.normalized {
		panic("experiments: axis " + name + " read before Normalize")
	}
	ws, ok := p.axisProfiles[name]
	if !ok {
		panic("experiments: read of undeclared workload axis " + name)
	}
	return ws
}

// AxisProfile returns a single-valued workload axis's profile.
func (p Params) AxisProfile(name string) workload.Profile {
	ws := p.AxisProfiles(name)
	if len(ws) != 1 {
		panic("experiments: axis " + name + " is not single-valued")
	}
	return ws[0]
}

// withAxis returns p with one axis override set, copying the override
// map so callers' Params are untouched. Used by the legacy driver
// wrappers to funnel their historical list arguments through the one
// normalization path.
func (p Params) withAxis(name string, vals []string) Params {
	ax := make(map[string][]string, len(p.Axes)+1)
	for k, v := range p.Axes {
		ax[k] = v
	}
	ax[name] = vals
	p.Axes = ax
	return p
}

// ---- execution ----

// ErrInterrupted reports that an experiment's grid was interrupted
// before completion (see runner.Runner.Interrupt): no aggregate exists
// and no artifacts were written for it.
var ErrInterrupted = errors.New("experiment interrupted before grid completion")

// RunExperiment is the registry-path driver: normalize, build the
// grid, execute it on p's engine, aggregate, and persist the JSON
// summary. The returned value is what e.Table renders. An interrupted
// grid returns ErrInterrupted — its partial results are never
// aggregated or persisted (points already cached remain durable for
// resume).
func RunExperiment(e Experiment, p Params) (any, error) {
	p, err := Normalize(e, p)
	if err != nil {
		return nil, err
	}
	ex := p.exec()
	res := ex.Run(e.Grid(p))
	if ex.Interrupted() {
		return nil, ErrInterrupted
	}
	out := e.Aggregate(p, res)
	ex.Summarize(e.Name(), out)
	return out, nil
}

// mustRun backs the legacy driver functions (Fig4, ScaleSweep, ...):
// their fixed signatures predate axis errors, and the only failures
// possible through them are programming errors.
func mustRun(e Experiment, p Params) any {
	v, err := RunExperiment(e, p)
	if err != nil {
		panic("experiments: " + e.Name() + ": " + err.Error())
	}
	return v
}

// ---- shared axis constructors and encoders ----

// workloadsAxis is the five-workload suite sweep dimension shared by
// the figure-style experiments.
func workloadsAxis() Axis {
	return Axis{
		Name: "workloads", Kind: AxisWorkload, List: true,
		Default: workloadSuiteNames(),
		Help:    "workload profiles to evaluate",
	}
}

// workloadAxis is a single-profile axis with the given default.
func workloadAxis(def string) Axis {
	return Axis{
		Name: "workload", Kind: AxisWorkload,
		Default: []string{def},
		Help:    "workload profile",
	}
}

func workloadSuiteNames() []string {
	names := make([]string, len(workload.Suite))
	for i, w := range workload.Suite {
		names[i] = w.Name
	}
	return names
}

func intStrings(vs []int) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = strconv.Itoa(v)
	}
	return out
}

func timeStrings(vs []sim.Time) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = strconv.FormatUint(uint64(v), 10)
	}
	return out
}

func floatStrings(vs []float64) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = strconv.FormatFloat(v, 'g', -1, 64)
	}
	return out
}
