package experiments

import (
	"strings"
	"testing"

	"specsimp/internal/workload"
)

// TestRegistryComplete pins the registered experiment set: every paper
// driver is reachable through the registry, in sorted order, and
// lookups agree with the listing.
func TestRegistryComplete(t *testing.T) {
	want := []string{
		"availability", "buffers", "checkpoint", "deflection", "fig4",
		"fig5", "reenable", "reorder", "scale1024", "scale64",
		"slowstart", "snoop", "workloads",
	}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("registry lists %v, want %v", got, want)
	}
	for i, name := range want {
		if got[i] != name {
			t.Fatalf("registry lists %v, want %v", got, want)
		}
		e, ok := ByName(name)
		if !ok {
			t.Fatalf("ByName(%q) missed a listed experiment", name)
		}
		if e.Name() != name {
			t.Fatalf("ByName(%q) returned experiment %q", name, e.Name())
		}
		if len(e.Axes()) == 0 {
			t.Errorf("experiment %q declares no axes", name)
		}
	}
	if _, ok := ByName("fig9"); ok {
		t.Fatal("ByName invented an experiment")
	}
}

// TestAxisDeclarations checks every declared axis is well-formed: a
// name, a default (static or computed), and defaults that normalize
// cleanly under both standard and quick parameters.
func TestAxisDeclarations(t *testing.T) {
	for _, e := range All() {
		seen := map[string]bool{}
		for _, a := range e.Axes() {
			if a.Name == "" {
				t.Errorf("%s: axis without a name", e.Name())
			}
			if seen[a.Name] {
				t.Errorf("%s: axis %q declared twice", e.Name(), a.Name)
			}
			seen[a.Name] = true
			if len(a.Default) == 0 && a.DefaultOf == nil {
				t.Errorf("%s: axis %q has no default", e.Name(), a.Name)
			}
		}
		for _, p := range []Params{Standard(), Quick()} {
			np, err := Normalize(e, p)
			if err != nil {
				t.Errorf("%s: defaults do not normalize: %v", e.Name(), err)
				continue
			}
			if pts := e.Grid(np); len(pts) == 0 {
				t.Errorf("%s: default grid is empty", e.Name())
			}
		}
	}
}

// TestNormalizeOverrides pins the single normalization path: spec axis
// overrides beat profile fields beat declared defaults, values are
// canonicalized, and every bad override is a descriptive error.
func TestNormalizeOverrides(t *testing.T) {
	e, _ := ByName("checkpoint")
	p := Standard()
	np, err := Normalize(e, p)
	if err != nil {
		t.Fatal(err)
	}
	if got := np.AxisProfile("workload"); got.Name != "uniform" {
		t.Fatalf("checkpoint default workload = %q, want uniform", got.Name)
	}

	p = Standard()
	p.Workload = workload.OLTP
	np, err = Normalize(e, p)
	if err != nil {
		t.Fatal(err)
	}
	if got := np.AxisProfile("workload"); got.Name != "oltp" {
		t.Fatalf("profile-field override workload = %q, want oltp", got.Name)
	}

	p = Standard()
	p.Workload = workload.OLTP
	p.Axes = map[string][]string{"workload": {"jbb"}, "interval": {"2500"}}
	np, err = Normalize(e, p)
	if err != nil {
		t.Fatal(err)
	}
	if got := np.AxisProfile("workload"); got.Name != "jbb" {
		t.Fatalf("axis override workload = %q, want jbb (axis must beat profile field)", got.Name)
	}
	if got := np.AxisTimes("interval"); len(got) != 1 || got[0] != 2500 {
		t.Fatalf("interval override = %v, want [2500]", got)
	}

	for _, tc := range []struct {
		name string
		axes map[string][]string
		want string
	}{
		{"unknown axis", map[string][]string{"cadence": {"1"}}, "cadence"},
		{"bad int", map[string][]string{"interval": {"soon"}}, "interval"},
		{"arity", map[string][]string{"workload": {"oltp", "jbb"}}, "exactly one value"},
		{"unknown workload", map[string][]string{"workload": {"nope"}}, "nope"},
	} {
		p := Standard()
		p.Axes = tc.axes
		if _, err := Normalize(e, p); err == nil {
			t.Errorf("%s: bad override accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestNormalizeCanonicalizes checks numeric overrides re-encode to
// canonical strings, so equivalent spellings digest identically.
func TestNormalizeCanonicalizes(t *testing.T) {
	e, _ := ByName("reorder")
	p := Standard()
	p.Axes = map[string][]string{"bw": {"0.40", "1.6e0"}}
	np, err := Normalize(e, p)
	if err != nil {
		t.Fatal(err)
	}
	pts := e.Grid(np)
	var got []string
	for _, pt := range pts {
		if pt.Repeat == 0 {
			got = append(got, pt.Params["bw"])
		}
	}
	if len(got) != 2 || got[0] != "0.4" || got[1] != "1.6" {
		t.Fatalf("canonical bw values = %v, want [0.4 1.6]", got)
	}
}
