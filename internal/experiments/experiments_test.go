package experiments

import (
	"strings"
	"testing"

	"specsimp/internal/sim"
	"specsimp/internal/workload"
)

// tiny returns fast parameters for unit testing the drivers.
func tiny() Params {
	return Params{
		Cycles:             200_000,
		Runs:               2,
		CyclesPerSecond:    200_000,
		CheckpointInterval: 4_000,
		Workloads:          []workload.Profile{workload.Uniform, workload.Hotspot},
	}
}

func TestFig4Driver(t *testing.T) {
	res := Fig4(tiny())
	if len(res) != 2 {
		t.Fatalf("results=%d", len(res))
	}
	for _, r := range res {
		if r.PerfByRate[0].Mean != 1.0 {
			t.Fatalf("%s: base not normalized to 1: %v", r.Workload, r.PerfByRate[0])
		}
		if r.Recoveries[0] != 0 {
			t.Fatalf("%s: recoveries at rate 0", r.Workload)
		}
		if r.Recoveries[100] == 0 {
			t.Fatalf("%s: no recoveries at rate 100", r.Workload)
		}
		// Monotone-ish: rate 100 must not beat rate 0.
		if r.PerfByRate[100].Mean > 1.05 {
			t.Fatalf("%s: rate-100 perf %.3f exceeds baseline", r.Workload, r.PerfByRate[100].Mean)
		}
	}
	tab := Fig4Table(res)
	for _, want := range []string{"workload", "uniform", "hotspot", "projected@4GHz"} {
		if !strings.Contains(tab, want) {
			t.Errorf("Fig4 table missing %q:\n%s", want, tab)
		}
	}
}

func TestFig5Driver(t *testing.T) {
	p := tiny()
	p.Workloads = []workload.Profile{workload.Hotspot}
	res := Fig5(p)
	if len(res) != 1 {
		t.Fatal("no results")
	}
	r := res[0]
	if r.AdaptivePerf.Mean <= 0 {
		t.Fatalf("adaptive perf %v", r.AdaptivePerf)
	}
	t.Logf("fig5 %s: adaptive=%.3f recoveries=%.1f reorder=%.5f util=%.2f",
		r.Workload, r.AdaptivePerf.Mean, r.Recoveries, r.ReorderRate, r.MeanLinkUtil)
	if !strings.Contains(Fig5Table(res), "adaptive") {
		t.Error("table broken")
	}
}

func TestReorderDriver(t *testing.T) {
	p := tiny()
	res := ReorderRates(p, workload.Hotspot)
	if len(res) != len(ReorderBandwidths) {
		t.Fatal("missing bandwidth points")
	}
	for _, r := range res {
		if r.Total < 0 || r.Total > 0.5 {
			t.Fatalf("reorder rate %v implausible", r.Total)
		}
	}
	// The paper: reordering is rare (<1% of messages overall).
	if res[len(res)-1].Total > 0.05 {
		t.Logf("warning: high-bandwidth reorder rate %.4f above expectations", res[len(res)-1].Total)
	}
	if !strings.Contains(ReorderTable(res), "fwd vnet") {
		t.Error("table broken")
	}
}

func TestSnoopDriver(t *testing.T) {
	p := tiny()
	p.Workloads = []workload.Profile{workload.Uniform}
	res := SnoopRecoveries(p)
	if len(res) != 1 {
		t.Fatal("no results")
	}
	r := res[0]
	if r.Perf.Mean < 0.5 || r.Perf.Mean > 1.5 {
		t.Fatalf("spec snooping perf %.3f wildly off the full protocol", r.Perf.Mean)
	}
	// The §5.3 claim: recoveries essentially never happen.
	if r.CornerDetected > 1 {
		t.Fatalf("corner detected %.1f times; should be rare", r.CornerDetected)
	}
	if !strings.Contains(SnoopTable(res), "corner") {
		t.Error("table broken")
	}
}

func TestBufferSweepDriver(t *testing.T) {
	p := tiny()
	res := BufferSweep(p, workload.Hotspot)
	if len(res) != len(BufferSizes) {
		t.Fatal("missing sizes")
	}
	if res[0].Perf.Mean != 1.0 {
		t.Fatalf("worst-case baseline not 1.0: %v", res[0].Perf)
	}
	var at16, at8 float64
	for _, r := range res {
		switch r.BufferSize {
		case 16:
			at16 = r.Perf.Mean
		case 8:
			at8 = r.Perf.Mean
		}
	}
	t.Logf("buffer sweep: 16 -> %.3f, 8 -> %.3f", at16, at8)
	if at8 > at16*1.2 {
		t.Fatalf("8-entry buffers (%.3f) outperform 16 (%.3f)?", at8, at16)
	}
	if !strings.Contains(BufferTable(res), "worst-case") {
		t.Error("table broken")
	}
}

func TestSlowStartAblationDriver(t *testing.T) {
	p := tiny()
	res := SlowStartAblation(p, workload.Hotspot, []int{1, 4})
	if len(res) != 2 {
		t.Fatal("missing points")
	}
	for _, r := range res {
		if r.Perf.Mean <= 0 {
			t.Fatalf("limit %d: no progress", r.Limit)
		}
	}
}

func TestCheckpointAblationDriver(t *testing.T) {
	p := tiny()
	res := CheckpointAblation(p, workload.Uniform, []sim.Time{2_000, 16_000})
	if len(res) != 2 {
		t.Fatal("missing points")
	}
	if res[0].LogHighWater <= 0 || res[1].LogHighWater <= 0 {
		t.Fatal("no log occupancy measured")
	}
	// Longer intervals hold more uncommitted log state.
	if res[1].LogHighWater < res[0].LogHighWater {
		t.Logf("note: high water %0.f < %0.f despite longer interval (small run)", res[1].LogHighWater, res[0].LogHighWater)
	}
}

func TestSummary(t *testing.T) {
	s := Summary(map[string]string{"b": "2", "a": "1"})
	if s != "a=1 b=2" {
		t.Fatalf("summary %q", s)
	}
}
