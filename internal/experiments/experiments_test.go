package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"specsimp/internal/runner"
	"specsimp/internal/sim"
	"specsimp/internal/system"
	"specsimp/internal/workload"
)

// tiny returns fast parameters for unit testing the drivers.
func tiny() Params {
	return Params{
		Cycles:             200_000,
		Runs:               2,
		CyclesPerSecond:    200_000,
		CheckpointInterval: 4_000,
		Workloads:          []workload.Profile{workload.Uniform, workload.Hotspot},
	}
}

func TestFig4Driver(t *testing.T) {
	res := Fig4(tiny())
	if len(res) != 2 {
		t.Fatalf("results=%d", len(res))
	}
	for _, r := range res {
		if r.PerfByRate[0].Mean != 1.0 {
			t.Fatalf("%s: base not normalized to 1: %v", r.Workload, r.PerfByRate[0])
		}
		if r.Recoveries[0] != 0 {
			t.Fatalf("%s: recoveries at rate 0", r.Workload)
		}
		if r.Recoveries[100] == 0 {
			t.Fatalf("%s: no recoveries at rate 100", r.Workload)
		}
		// Monotone-ish: rate 100 must not beat rate 0.
		if r.PerfByRate[100].Mean > 1.05 {
			t.Fatalf("%s: rate-100 perf %.3f exceeds baseline", r.Workload, r.PerfByRate[100].Mean)
		}
	}
	tab := Fig4Table(res)
	for _, want := range []string{"workload", "uniform", "hotspot", "projected@4GHz"} {
		if !strings.Contains(tab, want) {
			t.Errorf("Fig4 table missing %q:\n%s", want, tab)
		}
	}
}

func TestFig5Driver(t *testing.T) {
	p := tiny()
	p.Workloads = []workload.Profile{workload.Hotspot}
	res := Fig5(p)
	if len(res) != 1 {
		t.Fatal("no results")
	}
	r := res[0]
	if r.AdaptivePerf.Mean <= 0 {
		t.Fatalf("adaptive perf %v", r.AdaptivePerf)
	}
	t.Logf("fig5 %s: adaptive=%.3f recoveries=%.1f reorder=%.5f util=%.2f",
		r.Workload, r.AdaptivePerf.Mean, r.Recoveries, r.ReorderRate, r.MeanLinkUtil)
	if !strings.Contains(Fig5Table(res), "adaptive") {
		t.Error("table broken")
	}
}

func TestReorderDriver(t *testing.T) {
	p := tiny()
	res := ReorderRates(p, workload.Hotspot)
	if len(res) != len(ReorderBandwidths) {
		t.Fatal("missing bandwidth points")
	}
	for _, r := range res {
		if r.Total < 0 || r.Total > 0.5 {
			t.Fatalf("reorder rate %v implausible", r.Total)
		}
	}
	// The paper: reordering is rare (<1% of messages overall).
	if res[len(res)-1].Total > 0.05 {
		t.Logf("warning: high-bandwidth reorder rate %.4f above expectations", res[len(res)-1].Total)
	}
	if !strings.Contains(ReorderTable(res), "fwd vnet") {
		t.Error("table broken")
	}
}

func TestSnoopDriver(t *testing.T) {
	p := tiny()
	p.Workloads = []workload.Profile{workload.Uniform}
	res := SnoopRecoveries(p)
	if len(res) != 1 {
		t.Fatal("no results")
	}
	r := res[0]
	if r.Perf.Mean < 0.5 || r.Perf.Mean > 1.5 {
		t.Fatalf("spec snooping perf %.3f wildly off the full protocol", r.Perf.Mean)
	}
	// The §5.3 claim: recoveries essentially never happen.
	if r.CornerDetected > 1 {
		t.Fatalf("corner detected %.1f times; should be rare", r.CornerDetected)
	}
	if !strings.Contains(SnoopTable(res), "corner") {
		t.Error("table broken")
	}
}

func TestBufferSweepDriver(t *testing.T) {
	p := tiny()
	res := BufferSweep(p, workload.Hotspot)
	if len(res) != len(BufferSizes) {
		t.Fatal("missing sizes")
	}
	if res[0].Perf.Mean != 1.0 {
		t.Fatalf("worst-case baseline not 1.0: %v", res[0].Perf)
	}
	var at16, at8 float64
	for _, r := range res {
		switch r.BufferSize {
		case 16:
			at16 = r.Perf.Mean
		case 8:
			at8 = r.Perf.Mean
		}
	}
	t.Logf("buffer sweep: 16 -> %.3f, 8 -> %.3f", at16, at8)
	if at8 > at16*1.2 {
		t.Fatalf("8-entry buffers (%.3f) outperform 16 (%.3f)?", at8, at16)
	}
	if !strings.Contains(BufferTable(res), "worst-case") {
		t.Error("table broken")
	}
}

// TestScaleSweepDriver covers the scaling study: the directory protocol
// runs the full 4×4 → 8×8 → 16×16 curve (bitmap where it fits, both
// wide sharer-set formats at 256 nodes), the snooping 16×16 point runs
// for real on the segmented address network, and — the acceptance
// property — the sweep's CSV artifacts are byte-identical across
// worker-pool sizes.
func TestScaleSweepDriver(t *testing.T) {
	p := tiny()
	p.Cycles = 60_000
	p.Runs = 1
	p.Workloads = []workload.Profile{workload.Uniform}
	dirs := [2]string{t.TempDir(), t.TempDir()}
	var results [2][]ScaleResult
	for i, workers := range []int{1, 4} {
		sink, err := runner.NewSink(dirs[i])
		if err != nil {
			t.Fatal(err)
		}
		p.Exec = &runner.Runner{Workers: workers, Sink: sink}
		results[i] = ScaleSweep(p)
		if err := sink.Err(); err != nil {
			t.Fatal(err)
		}
	}
	res := results[0]
	wantRows := 4 + 3 // directory: 4 variants; snoop: 3 geometries
	if len(res) != wantRows {
		t.Fatalf("results=%d, want %d", len(res), wantRows)
	}
	for _, r := range res {
		nodes := r.Width * r.Height
		if r.Err != "" {
			t.Errorf("%s/%s at %dx%d (%s) failed: %s", r.Kind, r.Workload, r.Width, r.Height, r.Sharers, r.Err)
			continue
		}
		if nodes >= 64 && r.Perf.Mean <= 0 {
			t.Errorf("%s/%s at %dx%d made no progress", r.Kind, r.Workload, r.Width, r.Height)
		}
		if r.Recoveries > 0 {
			t.Errorf("%s/%s at %dx%d recovered %.1f times on a race-free configuration",
				r.Kind, r.Workload, r.Width, r.Height, r.Recoveries)
		}
		// End-to-end plumbing of the new traffic counters: the 256-node
		// directory machine shares enough for the wide formats to
		// invalidate (snooping has no directory Inv traffic to count).
		if r.Kind == "directory-spec" && nodes > 64 && r.Invalidations == 0 {
			t.Errorf("%s at 16x16: no invalidation traffic reached the driver (counter plumbing broken?)", r.Sharers)
		}
	}
	for _, name := range []string{"scale64.csv", "scale64.json"} {
		a, err := os.ReadFile(filepath.Join(dirs[0], name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirs[1], name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s not byte-reproducible across -parallel settings", name)
		}
	}
}

// TestScale1024SweepDriver pins the 1024-node study's shape: every
// point succeeds except snooping at 32×32 (past the segmented address
// network's 256-node ceiling — the error column's standing exercise),
// the 32×32 directory machine makes real forward progress on the
// coarse-vector format, and artifacts are byte-reproducible across
// -parallel settings. Tile-count/shape independence is covered by the
// CI lane's -shards 1/2/4/4x1/2x2 diffs at sweep scale.
func TestScale1024SweepDriver(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-node builds are slow; CI runs the full lane")
	}
	p := tiny()
	p.Cycles = 60_000
	p.Runs = 1
	dirs := [2]string{t.TempDir(), t.TempDir()}
	var results [2][]ScaleResult
	for i, workers := range []int{1, 4} {
		sink, err := runner.NewSink(dirs[i])
		if err != nil {
			t.Fatal(err)
		}
		p.Exec = &runner.Runner{Workers: workers, Sink: sink}
		results[i] = Scale1024Sweep(p)
		if err := sink.Err(); err != nil {
			t.Fatal(err)
		}
	}
	res := results[0]
	wantRows := 4 + 2 // directory: 4 geometries; snoop: 16x16 + 32x32
	if len(res) != wantRows {
		t.Fatalf("results=%d, want %d", len(res), wantRows)
	}
	for _, r := range res {
		nodes := r.Width * r.Height
		if r.Kind == "snoop-spec" && nodes > system.MaxSegmentedSnoopNodes {
			if r.Err == "" {
				t.Errorf("snooping at %dx%d should be a reported error row", r.Width, r.Height)
			}
			continue
		}
		if r.Err != "" {
			t.Errorf("%s at %dx%d (%s) failed: %s", r.Kind, r.Width, r.Height, r.Sharers, r.Err)
			continue
		}
		if r.Perf.Mean <= 0 {
			t.Errorf("%s at %dx%d made no progress", r.Kind, r.Width, r.Height)
		}
		if r.Recoveries > 0 {
			t.Errorf("%s at %dx%d recovered %.1f times on a race-free configuration",
				r.Kind, r.Width, r.Height, r.Recoveries)
		}
	}
	for _, name := range []string{"scale1024.csv", "scale1024.json"} {
		a, err := os.ReadFile(filepath.Join(dirs[0], name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirs[1], name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s not byte-reproducible across -parallel settings", name)
		}
	}
}

func TestSlowStartAblationDriver(t *testing.T) {
	p := tiny()
	res := SlowStartAblation(p, workload.Hotspot, []int{1, 4})
	if len(res) != 2 {
		t.Fatal("missing points")
	}
	for _, r := range res {
		if r.Perf.Mean <= 0 {
			t.Fatalf("limit %d: no progress", r.Limit)
		}
	}
}

func TestCheckpointAblationDriver(t *testing.T) {
	p := tiny()
	res := CheckpointAblation(p, workload.Uniform, []sim.Time{2_000, 16_000})
	if len(res) != 2 {
		t.Fatal("missing points")
	}
	if res[0].LogHighWater <= 0 || res[1].LogHighWater <= 0 {
		t.Fatal("no log occupancy measured")
	}
	// Longer intervals hold more uncommitted log state.
	if res[1].LogHighWater < res[0].LogHighWater {
		t.Logf("note: high water %0.f < %0.f despite longer interval (small run)", res[1].LogHighWater, res[0].LogHighWater)
	}
}

// TestDriverArtifacts runs one driver with an artifact sink and checks
// the tentpole contract: one CSV row per run, a JSON summary per
// experiment, both matching the aggregated in-memory results.
func TestDriverArtifacts(t *testing.T) {
	p := tiny()
	dir := t.TempDir()
	sink, err := runner.NewSink(dir)
	if err != nil {
		t.Fatal(err)
	}
	p.Exec = &runner.Runner{Workers: 2, Sink: sink}
	res := Fig4(p)
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}

	csvData, err := os.ReadFile(filepath.Join(dir, "fig4.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(csvData), "\n"), "\n")
	wantRows := len(p.Workloads) * len(Fig4Rates) * p.Runs
	if len(lines) != 1+wantRows {
		t.Fatalf("fig4.csv has %d lines, want header + %d rows", len(lines), wantRows)
	}
	header := lines[0]
	for _, col := range []string{"experiment", "workload", "repeat", "seed", "rate", "perf", "recoveries"} {
		if !strings.Contains(header, col) {
			t.Errorf("fig4.csv header missing %q: %s", col, header)
		}
	}

	var summary []Fig4Result
	data, err := os.ReadFile(filepath.Join(dir, "fig4.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &summary); err != nil {
		t.Fatalf("fig4.json: %v", err)
	}
	if len(summary) != len(res) {
		t.Fatalf("summary has %d workloads, driver returned %d", len(summary), len(res))
	}
	for i := range summary {
		if summary[i].Workload != res[i].Workload || summary[i].PerfByRate[100] != res[i].PerfByRate[100] {
			t.Fatalf("summary[%d] %+v diverges from driver result %+v", i, summary[i], res[i])
		}
	}
}

// TestDriverDeterminism is the satellite reproducibility test: the same
// grid executed twice (different worker counts) emits byte-identical
// CSV and JSON artifacts.
func TestDriverDeterminism(t *testing.T) {
	p := tiny()
	p.Workloads = []workload.Profile{workload.Uniform}
	dirs := [2]string{t.TempDir(), t.TempDir()}
	for i, workers := range []int{1, 4} {
		sink, err := runner.NewSink(dirs[i])
		if err != nil {
			t.Fatal(err)
		}
		p.Exec = &runner.Runner{Workers: workers, Sink: sink}
		CheckpointAblation(p, workload.Uniform, []sim.Time{2_000, 8_000})
		if err := sink.Err(); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range []string{"checkpoint.csv", "checkpoint.json"} {
		a, err := os.ReadFile(filepath.Join(dirs[0], name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirs[1], name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s not reproducible across identical grids", name)
		}
	}
}

func TestSummary(t *testing.T) {
	s := Summary(map[string]string{"b": "2", "a": "1"})
	if s != "a=1 b=2" {
		t.Fatalf("summary %q", s)
	}
}

// TestScaleSweepShardDeterminism is the intra-run parallelism contract
// the CI parallel-determinism lane enforces: scale64 artifacts are
// byte-identical for every requested -shards value (directory points
// run the conservative-window engine at the clamped shard count;
// snooping points always run serial). The across-run worker count
// varies too, so both parallelism axes are exercised at once.
func TestScaleSweepShardDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("scale64 grid is slow; the CI lane runs it at full size")
	}
	p := tiny()
	p.Cycles = 20_000
	p.Workloads = []workload.Profile{workload.Uniform}
	shardCounts := []int{1, 2, 4}
	dirs := make([]string, len(shardCounts))
	for i, shards := range shardCounts {
		dirs[i] = t.TempDir()
		sink, err := runner.NewSink(dirs[i])
		if err != nil {
			t.Fatal(err)
		}
		p.Shards = shards
		p.Exec = &runner.Runner{Workers: 1 + i, Sink: sink}
		ScaleSweep(p)
		if err := sink.Err(); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range []string{"scale64.csv", "scale64.json"} {
		ref, err := os.ReadFile(filepath.Join(dirs[0], name))
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(dirs); i++ {
			got, err := os.ReadFile(filepath.Join(dirs[i], name))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ref, got) {
				t.Fatalf("%s differs between -shards %d and -shards %d", name, shardCounts[0], shardCounts[i])
			}
		}
	}
}

// TestAvailabilityDriver checks the availability sweep's shape and that
// the fault regimes actually stress the machine at unit-test scale:
// every regime x cadence point recovers, the rows expose the
// degraded-mode and distribution columns, and the adaptive controller
// reports a final interval.
func TestAvailabilityDriver(t *testing.T) {
	p := tiny()
	res := Availability(p)
	if len(res) != 12 {
		t.Fatalf("rows=%d, want 4 regimes x 3 cadences", len(res))
	}
	for _, r := range res {
		if r.Recoveries == 0 {
			t.Errorf("%s/%s: no recoveries", r.Regime, r.Cadence)
		}
		if r.RecoveryLatMean <= 0 || r.RecoveryLatMax <= 0 {
			t.Errorf("%s/%s: empty recovery-latency distribution (mean=%v max=%v)",
				r.Regime, r.Cadence, r.RecoveryLatMean, r.RecoveryLatMax)
		}
		if r.DegradedPct <= 0 {
			t.Errorf("%s/%s: no degraded time despite recoveries", r.Regime, r.Cadence)
		}
		if r.FinalInterval == 0 {
			t.Errorf("%s/%s: no final checkpoint interval", r.Regime, r.Cadence)
		}
		if r.Cadence == "adaptive" && r.FinalInterval > float64(p.CheckpointInterval) {
			t.Errorf("%s/adaptive: final interval %v above the base %d (controller must not relax past base)",
				r.Regime, r.FinalInterval, p.CheckpointInterval)
		}
	}
}

// TestAvailabilitySweepShardDeterminism extends the intra-run
// parallelism contract to the availability sweep: its CSV and JSON
// artifacts — which carry the new degraded-mode and distribution
// columns — are byte-identical for every -shards value, with the
// across-run worker count varied at the same time.
func TestAvailabilitySweepShardDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("availability grid is slow; the CI lane runs the full CLI variant")
	}
	p := tiny()
	shardCounts := []int{1, 2, 4}
	dirs := make([]string, len(shardCounts))
	for i, shards := range shardCounts {
		dirs[i] = t.TempDir()
		sink, err := runner.NewSink(dirs[i])
		if err != nil {
			t.Fatal(err)
		}
		p.Shards = shards
		p.Exec = &runner.Runner{Workers: 1 + i, Sink: sink}
		Availability(p)
		if err := sink.Err(); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range []string{"availability.csv", "availability.json"} {
		ref, err := os.ReadFile(filepath.Join(dirs[0], name))
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(dirs); i++ {
			got, err := os.ReadFile(filepath.Join(dirs[i], name))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ref, got) {
				t.Fatalf("%s differs between -shards %d and -shards %d", name, shardCounts[0], shardCounts[i])
			}
		}
	}
}

// TestWorkloadsDriver checks the workload-realism study's shape: the
// full grid runs on both speculative protocols, every cell lands, and
// the skew/phase axes show up in the rows.
func TestWorkloadsDriver(t *testing.T) {
	p := tiny()
	p.Cycles = 50_000
	p.Runs = 1
	res := Workloads(p, workload.OLTP)
	grid := workloadsGrid(workload.OLTP)
	if want := 2 * len(grid); len(res) != want {
		t.Fatalf("rows=%d, want %d (grid=%d x 2 kinds)", len(res), want, len(grid))
	}
	idioms, skewed, phased := map[string]bool{}, false, false
	for _, r := range res {
		if r.Err != "" {
			t.Fatalf("%s/%s idiom=%s skew=%g phase=%d errored: %s", r.Kind, r.Workload, r.Idiom, r.Skew, r.Phase, r.Err)
		}
		if r.Perf.Mean <= 0 {
			t.Fatalf("%s/%s idiom=%s: no forward progress", r.Kind, r.Workload, r.Idiom)
		}
		idioms[r.Idiom] = true
		skewed = skewed || r.Skew > 0
		phased = phased || r.Phase > 0
	}
	if len(idioms) != 5 || !skewed || !phased {
		t.Fatalf("grid axes incomplete: idioms=%v skewed=%v phased=%v", idioms, skewed, phased)
	}
	table := WorkloadsTable(res)
	for _, want := range []string{"oltp", "migratory", "ring", "scan", "broadcast", "zipf s"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
}

// TestWorkloadsTraceCollapsesGrid: a trace replay has no skew/phase/idiom
// knobs, so the study collapses to its single recorded stream per
// protocol (and the full grid keeps its documented 18 shapes).
func TestWorkloadsTraceCollapsesGrid(t *testing.T) {
	if got := len(workloadsGrid(workload.OLTP)); got != 18 {
		t.Fatalf("full grid has %d variants, want 18", got)
	}
	cfg := system.DefaultConfig(system.DirectorySpec, workload.Uniform)
	cfg.Recorder = workload.NewTraceRecorder(cfg.Workload.Name, cfg.Nodes)
	system.RunOne(cfg, 20_000)
	path := filepath.Join(t.TempDir(), "run.trace")
	if err := cfg.Recorder.Trace().WriteFile(path); err != nil {
		t.Fatal(err)
	}
	wl, err := workload.FromTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := workloadsGrid(wl); len(got) != 1 || got[0] != (wlVariant{}) {
		t.Fatalf("trace grid = %v, want the single recorded shape", got)
	}
	p := tiny()
	p.Cycles = 30_000
	p.Runs = 1
	res := Workloads(p, wl)
	if len(res) != 2 {
		t.Fatalf("trace study rows=%d, want 1 per protocol", len(res))
	}
	for _, r := range res {
		if r.Err != "" || r.Perf.Mean <= 0 {
			t.Fatalf("trace replay cell failed: %+v", r)
		}
		if r.Workload != wl.Name {
			t.Fatalf("row workload %q, want %q", r.Workload, wl.Name)
		}
	}
}

// TestWorkloadsSweepShardDeterminism: the workloads artifacts are
// byte-identical for every -shards value — the CI parallel-determinism
// lane's byte-diff in test form.
func TestWorkloadsSweepShardDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("workloads grid is slow; the CI lane runs it at full size")
	}
	p := tiny()
	p.Cycles = 20_000
	p.Runs = 1
	shardCounts := []int{1, 2, 4}
	dirs := make([]string, len(shardCounts))
	for i, shards := range shardCounts {
		dirs[i] = t.TempDir()
		sink, err := runner.NewSink(dirs[i])
		if err != nil {
			t.Fatal(err)
		}
		p.Shards = shards
		p.Exec = &runner.Runner{Workers: 1 + i, Sink: sink}
		Workloads(p, workload.OLTP)
		if err := sink.Err(); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range []string{"workloads.csv", "workloads.json"} {
		ref, err := os.ReadFile(filepath.Join(dirs[0], name))
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(dirs); i++ {
			got, err := os.ReadFile(filepath.Join(dirs[i], name))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(ref, got) {
				t.Fatalf("%s differs between -shards %d and -shards %d", name, shardCounts[0], shardCounts[i])
			}
		}
	}
}
