package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"specsimp/internal/runner"
	"specsimp/internal/system"
	"specsimp/internal/workload"
)

var updateErrGolden = flag.Bool("update", false, "rewrite golden files")

// TestUnsupportedDesignPointCSVGolden pins the artifact rendering of
// the PR-3 per-point error path byte for byte: a snooping design point
// beyond system.MaxSegmentedSnoopNodes (the 256-node segmented-bus
// ceiling; 16×16 snooping is a real run now) fails validation (fast,
// before any kernel exists), the grid keeps running, and the point's
// CSV row carries zero metrics plus the comma-sanitized error message
// in the trailing error column — next to a healthy point's row in the
// same artifact.
func TestUnsupportedDesignPointCSVGolden(t *testing.T) {
	dir := t.TempDir()
	sink, err := runner.NewSink(dir)
	if err != nil {
		t.Fatal(err)
	}
	wl := workload.Uniform

	good := system.DefaultConfigSized(system.SnoopSpec, wl, 2, 2)
	good.CheckpointInterval = 1_000
	good.CyclesPerSecond = 600_000
	good.TimeoutCycles = 0

	bad := system.DefaultConfigSized(system.SnoopSpec, wl, 32, 32)
	bad.CheckpointInterval = 1_000
	bad.CyclesPerSecond = 600_000
	bad.TimeoutCycles = 0

	pts := []runner.Point{
		sysPoint("scale64", good, 20_000, map[string]string{"geom": "2x2", "kind": "snoop-spec", "sharers": "n/a"}, 0),
		sysPoint("scale64", bad, 20_000, map[string]string{"geom": "32x32", "kind": "snoop-spec", "sharers": "n/a"}, 0),
	}
	ex := &runner.Runner{Workers: 1, Sink: sink}
	res := ex.Run(pts)
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	if res[0].Err != nil {
		t.Fatalf("healthy 2x2 point failed: %v", res[0].Err)
	}
	if res[1].Err == nil {
		t.Fatal("32x32 snooping point did not fail validation")
	}

	got, err := os.ReadFile(filepath.Join(dir, "scale64.csv"))
	if err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", "scale64-error.golden")
	if *updateErrGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden missing (run with -update to create): %v", err)
	}
	if string(got) != string(want) {
		t.Fatalf("scale64.csv drifted from golden.\n got: %q\nwant: %q", got, want)
	}
}
