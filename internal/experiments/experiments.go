// Package experiments implements the paper's evaluation (§5): one
// driver per table and figure, shared by cmd/sweep and the root
// benchmark suite. Each driver declares its design-point grid
// (experiment × workload × params × repeat), executes it on the sweep
// engine (internal/runner) — a bounded worker pool with deterministic
// per-point seeds — and aggregates the per-run metrics into structured
// results plus a formatted table in the paper's layout. When the engine
// carries an artifact sink, every run lands as a CSV row and every
// driver writes a JSON summary (see EXPERIMENTS.md "Artifact layout").
//
// Scale note: the paper's results are wall-clock rates at 4 GHz over
// seconds of simulated execution. This reproduction compresses the
// clock (Params.CyclesPerSecond) so a data point simulates in seconds of
// host time, and reports, alongside the compressed-clock measurement,
// an analytic projection at the paper's true 4 GHz scale computed from
// the *measured* mean lost work per recovery. EXPERIMENTS.md records
// both for every experiment.
package experiments

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"specsimp/internal/directory"
	"specsimp/internal/network"
	"specsimp/internal/runner"
	"specsimp/internal/sim"
	"specsimp/internal/stats"
	"specsimp/internal/system"
	"specsimp/internal/workload"
)

// Params sizes an experiment run.
type Params struct {
	// Cycles is the simulated run length per data point.
	Cycles sim.Time
	// Runs is the number of perturbed runs per data point (paper §5.2).
	Runs int
	// CyclesPerSecond defines the compressed clock for rate-based
	// experiments (Figure 4).
	CyclesPerSecond float64
	// CheckpointInterval scales SafetyNet's cadence with the compressed
	// clock so the validation window stays proportionate.
	CheckpointInterval sim.Time
	// Workloads are the profiles to evaluate (default: the paper's 5).
	// They resolve the list-valued "workloads" axis of the suite-sweep
	// experiments; see Normalize for the full precedence chain.
	Workloads []workload.Profile
	// Workload resolves the single-valued "workload" axis of the
	// experiments that run one profile (reorder, buffers, the
	// ablations, ...). The zero Profile means "use the axis default".
	// Carrying a resolved profile — not a name — lets trace replays and
	// test-constructed profiles flow through unchanged.
	Workload workload.Profile
	// Axes carries raw per-axis value overrides (CLI/campaign-spec
	// strings, validated by Normalize against the experiment's declared
	// axes). Overrides win over the profile fields above and over the
	// declared defaults.
	Axes map[string][]string
	// Shards requests intra-run parallelism for the design points that
	// support it (the scale64/scale1024 directory machines): each
	// single run partitions its torus into that many conservative-
	// window tiles. Orthogonal to the Runner's across-run worker bound.
	// Values <= 1 (including the zero default) run each point on one
	// tile — still the windowed engine for shard-capable points, so
	// artifacts are byte-identical across every Shards value and every
	// tile shape. Per point the effective count is clamped to the
	// largest count with a legal tile factorization of the point's
	// torus, and snooping points always run the classic serial path.
	Shards int
	// ShardRows and ShardCols optionally pin the tile-grid shape
	// (R rows × C columns; the -shards RxC CLI form). Zero means
	// auto-factor per point (system.TileGrid). A pinned shape that does
	// not divide a point's torus falls back to auto-factoring the same
	// count there.
	ShardRows, ShardCols int
	// Exec is the sweep engine the driver submits its grid to: it
	// bounds worker concurrency and optionally persists artifacts. Nil
	// uses a fresh engine bounded at GOMAXPROCS with no artifacts.
	Exec *runner.Runner

	// Normalized axis state (see Normalize in registry.go): the typed,
	// validated value set per declared axis. normalized makes Normalize
	// idempotent, so the legacy wrappers and RunExperiment compose.
	axisValues   map[string][]string
	axisProfiles map[string][]workload.Profile
	normalized   bool
}

// effectiveTiles resolves the requested intra-run tiling for one design
// point's w×h torus. A pinned ShardRows×ShardCols shape that divides the
// torus is honored exactly; otherwise the request degrades to a count
// and the largest count <= requested with a legal tile factorization
// (system.TileGrid) wins, auto-factored per point (rows/cols 0). The
// result is never an invalid config: every returned tiling validates on
// that torus, and the artifacts are byte-identical whichever tiling is
// picked.
func effectiveTiles(p Params, w, h int) (shards, rows, cols int) {
	requested := p.Shards
	if p.ShardRows > 0 && p.ShardCols > 0 {
		if requested == 0 {
			requested = p.ShardRows * p.ShardCols
		}
		if requested == p.ShardRows*p.ShardCols &&
			h%p.ShardRows == 0 && w%p.ShardCols == 0 {
			return requested, p.ShardRows, p.ShardCols
		}
	}
	if requested > w*h {
		requested = w * h
	}
	for s := requested; s > 1; s-- {
		if _, _, ok := system.TileGrid(w, h, s); ok {
			return s, 0, 0
		}
	}
	return 1, 0, 0
}

// exec returns the configured sweep engine or a bounded default.
func (p Params) exec() *runner.Runner {
	if p.Exec != nil {
		return p.Exec
	}
	return &runner.Runner{}
}

// Quick returns bench-sized parameters (seconds of host time).
func Quick() Params {
	return Params{
		Cycles:             600_000,
		Runs:               2,
		CyclesPerSecond:    600_000,
		CheckpointInterval: 1_000,
		Workloads:          workload.Suite,
	}
}

// Standard returns the parameters used for EXPERIMENTS.md. The
// checkpoint interval is scaled down with the compressed clock so the
// validation window (3 intervals) stays well below even the highest
// injection rate's period (100/s -> every 15,000 cycles here).
func Standard() Params {
	return Params{
		Cycles:             1_500_000,
		Runs:               3,
		CyclesPerSecond:    1_500_000,
		CheckpointInterval: 2_000,
		Workloads:          workload.Suite,
	}
}

// Cell is one mean ± stddev measurement.
type Cell struct {
	Mean, Std float64
}

func (c Cell) String() string { return fmt.Sprintf("%.3f ±%.3f", c.Mean, c.Std) }

// cell builds a Cell from a sample, normalized by base (0 disables
// normalization of the mean and suppresses the error bar).
func cell(s *stats.Sample, base float64) Cell {
	if base <= 0 {
		return Cell{}
	}
	return Cell{Mean: s.Mean() / base, Std: s.StdDev() / base}
}

// ---- grid construction ----

// sysPoint declares one design-point run: a full system simulation of
// cfg for cycles, seeded deterministically from cfg.Seed and the repeat
// index (the §5.2 perturbation scheme).
func sysPoint(exp string, cfg system.Config, cycles sim.Time, params map[string]string, repeat int) runner.Point {
	return runner.Point{
		Experiment: exp,
		Workload:   cfg.Workload.Name,
		Params:     params,
		Repeat:     repeat,
		Seed:       runner.PerturbSeed(cfg.Seed, repeat),
		Run: func(seed uint64) (runner.Metrics, error) {
			c := cfg
			c.Seed = seed
			r, err := system.RunOneChecked(c, cycles)
			if err != nil {
				// An unbuildable machine (e.g. snooping at 1024 nodes)
				// fails this design point only; the grid keeps running.
				return runner.Metrics{}, err
			}
			return metricsFrom(r), nil
		},
	}
}

// repeats appends one sysPoint per perturbed run of a design point.
func repeats(pts []runner.Point, exp string, cfg system.Config, p Params, params map[string]string) []runner.Point {
	for rep := 0; rep < p.Runs; rep++ {
		pts = append(pts, sysPoint(exp, cfg, p.Cycles, params, rep))
	}
	return pts
}

// metricsFrom flattens a run's Results into the fixed metric schema
// shared by every experiment's CSV artifact.
func metricsFrom(r system.Results) runner.Metrics {
	m := runner.Metrics{
		Perf:              r.Perf,
		Cycles:            float64(r.Cycles),
		Instructions:      float64(r.Instructions),
		Recoveries:        float64(r.Recoveries),
		Checkpoints:       float64(r.Checkpoints),
		CheckpointStall:   float64(r.CheckpointStall),
		MeanLostWork:      r.MeanLostWork,
		MeanLinkUtil:      r.MeanLinkUtil,
		ReorderTotal:      r.TotalReorderRate,
		Deflections:       float64(r.Deflections),
		Timeouts:          float64(r.Timeouts),
		CornerDetected:    float64(r.CornerDetected),
		CornerHandled:     float64(r.CornerHandled),
		LogHighWaterBytes: float64(r.LogHighWaterBytes),
		Writebacks:        float64(r.Writebacks),
		WBRaces:           float64(r.WBRaces),
		Invalidations:     float64(r.Invalidations),
		InvBroadcasts:     float64(r.InvBroadcasts),
		SharerOverflows:   float64(r.SharerOverflows),
		Transactions:      float64(r.Transactions),
		MissLatencyMean:   r.MissLatencyMean,
		LimitStalls:       float64(r.LimitStalls),
		OrderViolations:   float64(r.OrderViolations),

		OutageCycles:            float64(r.OutageCycles),
		DegradedCycles:          float64(r.DegradedCycles),
		DegradedInstructions:    float64(r.DegradedInstructions),
		LogStallCycles:          float64(r.LogStallCycles),
		LogOverflows:            float64(r.LogOverflows),
		CheckpointIntervalFinal: float64(r.CheckpointIntervalFinal),
		RecoveryLatN:            float64(r.RecoveryLatency.N),
		RecoveryLatSum:          float64(r.RecoveryLatency.Sum),
		RecoveryLatMin:          float64(r.RecoveryLatency.Min),
		RecoveryLatMax:          float64(r.RecoveryLatency.Max),
		RollbackN:               float64(r.RollbackDist.N),
		RollbackSum:             float64(r.RollbackDist.Sum),
		RollbackMin:             float64(r.RollbackDist.Min),
		RollbackMax:             float64(r.RollbackDist.Max),
	}
	for v := 0; v < 4 && v < len(r.ReorderRatePerVNet); v++ {
		m.ReorderVNet[v] = r.ReorderRatePerVNet[v]
	}
	return m
}

// sampleOf gathers one metric across n consecutive results starting at
// i0 — the perturbed repeats of a single design point.
func sampleOf(res []runner.Result, i0, n int, key string) *stats.Sample {
	vals := make([]float64, n)
	for j := 0; j < n; j++ {
		vals[j] = res[i0+j].Metrics.Get(key)
	}
	s := stats.Of(vals...)
	return &s
}

// ---- Figure 4: performance vs mis-speculation rate ----

// Fig4Result holds one workload row of Figure 4.
type Fig4Result struct {
	Workload string
	// PerfByRate maps recoveries-per-(compressed)-second to normalized
	// performance (base: rate 0).
	PerfByRate map[int]Cell
	// Recoveries actually performed at each rate.
	Recoveries map[int]float64
	// MeanLostWork is the measured rollback distance in cycles, used
	// for the true-scale projection.
	MeanLostWork float64
}

// Fig4Rates are the paper's injection rates (per second).
var Fig4Rates = []int{0, 1, 10, 100}

// fig4Exp reproduces Figure 4: inject periodic recoveries into the
// non-speculative directory system and measure normalized performance.
type fig4Exp struct{}

func (fig4Exp) Name() string { return "fig4" }
func (fig4Exp) Title(Params) string {
	return "Figure 4: normalized performance vs mis-speculation rate"
}
func (fig4Exp) Axes() []Axis { return []Axis{workloadsAxis()} }
func (fig4Exp) Preamble(p Params) string {
	return fmt.Sprintf("compressed clock: 1 second = %.0f cycles; projections at true 4 GHz\n", p.CyclesPerSecond)
}

func (fig4Exp) Grid(p Params) []runner.Point {
	var pts []runner.Point
	for _, wl := range p.AxisProfiles("workloads") {
		for _, rate := range Fig4Rates {
			cfg := system.DefaultConfig(system.DirectoryFull, wl)
			cfg.CheckpointInterval = p.CheckpointInterval
			cfg.CyclesPerSecond = p.CyclesPerSecond
			if rate > 0 {
				cfg.InjectRecoveryEvery = sim.Time(p.CyclesPerSecond / float64(rate))
			}
			pts = repeats(pts, "fig4", cfg, p, map[string]string{"rate": strconv.Itoa(rate)})
		}
	}
	return pts
}

func (fig4Exp) Aggregate(p Params, res []runner.Result) any {
	wls := p.AxisProfiles("workloads")
	out := make([]Fig4Result, len(wls))
	i := 0
	for wi, wl := range wls {
		r := Fig4Result{Workload: wl.Name, PerfByRate: map[int]Cell{}, Recoveries: map[int]float64{}}
		var base float64
		for _, rate := range Fig4Rates {
			perf := sampleOf(res, i, p.Runs, "perf")
			if rate == 0 {
				base = perf.Mean()
			}
			r.PerfByRate[rate] = cell(perf, base)
			r.Recoveries[rate] = sampleOf(res, i, p.Runs, "recoveries").Mean()
			if lost := sampleOf(res, i, p.Runs, "mean_lost_work").Max(); lost > 0 {
				r.MeanLostWork = lost
			}
			i += p.Runs
		}
		out[wi] = r
	}
	return out
}

func (fig4Exp) Table(v any) string { return Fig4Table(v.([]Fig4Result)) }

// Fig4 runs the registered fig4 experiment (historical signature, kept
// for the root facade and the benchmark suite).
func Fig4(p Params) []Fig4Result { return mustRun(fig4Exp{}, p).([]Fig4Result) }

// Fig4Table renders Figure 4 in the paper's layout plus the true-scale
// projection (4 GHz, Table 2 checkpoint interval).
func Fig4Table(results []Fig4Result) string {
	t := stats.NewTable("workload", "0/s", "1/s", "10/s", "100/s", "projected@4GHz 10/s", "projected@4GHz 100/s")
	for _, r := range results {
		// Projection: fractional loss = rate * lostWork / 4e9, with
		// lost work re-scaled to the paper's 100k-cycle interval
		// (rollback distance is ~4 checkpoint intervals).
		trueLost := 4.0 * 100_000
		proj := func(rate float64) string {
			return fmt.Sprintf("%.4f", 1-rate*trueLost/4e9)
		}
		t.AddRow(r.Workload,
			r.PerfByRate[0].String(), r.PerfByRate[1].String(),
			r.PerfByRate[10].String(), r.PerfByRate[100].String(),
			proj(10), proj(100))
	}
	return t.String()
}

// ---- Figure 5: static vs adaptive routing ----

// Fig5Result is one workload's static-vs-adaptive comparison at
// 400 MB/s links (0.1 bytes/cycle at 4 GHz).
type Fig5Result struct {
	Workload     string
	StaticPerf   Cell // normalized to itself: 1.0
	AdaptivePerf Cell // normalized to static
	Recoveries   float64
	ReorderRate  float64
	MeanLinkUtil float64 // static routing, paper reports 13-35%
}

// Fig5LinkBandwidth is 400 MB/s at the 4 GHz clock.
const Fig5LinkBandwidth = 0.1

// fig5Exp reproduces Figure 5: relative performance of static and
// adaptive routing under the speculatively simplified directory
// protocol.
type fig5Exp struct{}

func (fig5Exp) Name() string { return "fig5" }
func (fig5Exp) Title(Params) string {
	return "Figure 5: static vs adaptive routing (400 MB/s links)"
}
func (fig5Exp) Axes() []Axis { return []Axis{workloadsAxis()} }

func (fig5Exp) Grid(p Params) []runner.Point {
	var pts []runner.Point
	for _, wl := range p.AxisProfiles("workloads") {
		base := system.DefaultConfig(system.DirectorySpec, wl)
		base.CheckpointInterval = p.CheckpointInterval
		// Figure 5's networks (safe static; adaptive with full buffering)
		// cannot deadlock, and at 400 MB/s links a compressed-clock
		// timeout would only produce false positives: the experiment's
		// detector is the invalid-transition check, not the watchdog.
		base.TimeoutCycles = 0

		st := base
		st.Net = network.SafeStaticConfig(4, 4, Fig5LinkBandwidth)
		pts = repeats(pts, "fig5", st, p, map[string]string{"routing": "static"})

		ad := base
		ad.Net = network.AdaptiveConfig(4, 4, Fig5LinkBandwidth)
		ad.AdaptiveDisableWindow = 10 * p.CheckpointInterval
		pts = repeats(pts, "fig5", ad, p, map[string]string{"routing": "adaptive"})
	}
	return pts
}

func (fig5Exp) Aggregate(p Params, res []runner.Result) any {
	wls := p.AxisProfiles("workloads")
	out := make([]Fig5Result, len(wls))
	i := 0
	for wi, wl := range wls {
		static, adaptive := i, i+p.Runs
		i += 2 * p.Runs
		r := Fig5Result{Workload: wl.Name, StaticPerf: Cell{1, 0}}
		sm := sampleOf(res, static, p.Runs, "perf").Mean()
		r.AdaptivePerf = cell(sampleOf(res, adaptive, p.Runs, "perf"), sm)
		r.Recoveries = sampleOf(res, adaptive, p.Runs, "recoveries").Mean()
		r.ReorderRate = sampleOf(res, adaptive, p.Runs, "reorder_total").Mean()
		r.MeanLinkUtil = sampleOf(res, static, p.Runs, "mean_link_util").Mean()
		out[wi] = r
	}
	return out
}

func (fig5Exp) Table(v any) string { return Fig5Table(v.([]Fig5Result)) }

// Fig5 runs the registered fig5 experiment (historical signature).
func Fig5(p Params) []Fig5Result { return mustRun(fig5Exp{}, p).([]Fig5Result) }

// Fig5Table renders Figure 5.
func Fig5Table(results []Fig5Result) string {
	t := stats.NewTable("workload", "static", "adaptive", "recoveries", "reorder rate", "static link util")
	for _, r := range results {
		t.AddRow(r.Workload, "1.000",
			r.AdaptivePerf.String(),
			fmt.Sprintf("%.2f", r.Recoveries),
			fmt.Sprintf("%.5f", r.ReorderRate),
			fmt.Sprintf("%.1f%%", 100*r.MeanLinkUtil))
	}
	return t.String()
}

// ---- §5.3 text: reorder rates vs link bandwidth ----

// ReorderResult is one bandwidth point of the §5.3 reorder-rate study.
type ReorderResult struct {
	BandwidthBpc float64 // bytes/cycle
	BandwidthMBs float64 // at 4 GHz
	PerVNet      []float64
	Total        float64
	Recoveries   float64
	MeanLinkUtil float64
}

// ReorderBandwidths spans the paper's 400 MB/s – 3.2 GB/s (at 4 GHz).
var ReorderBandwidths = []float64{0.1, 0.2, 0.4, 0.8}

// reorderExp reproduces the §5.3 reorder-rate measurements on the
// speculative directory system with adaptive routing.
type reorderExp struct{}

func (reorderExp) Name() string { return "reorder" }
func (reorderExp) Title(p Params) string {
	return "§5.3: message reorder rates vs link bandwidth (" + p.AxisProfile("workload").Name + ")"
}
func (reorderExp) Axes() []Axis {
	return []Axis{
		workloadAxis("oltp"),
		{Name: "bw", Kind: AxisFloat, List: true,
			Default: floatStrings(ReorderBandwidths),
			Help:    "link bandwidths in bytes/cycle"},
	}
}

func (reorderExp) Grid(p Params) []runner.Point {
	wl := p.AxisProfile("workload")
	var pts []runner.Point
	for _, bw := range p.AxisFloats("bw") {
		cfg := system.DefaultConfig(system.DirectorySpec, wl)
		cfg.CheckpointInterval = p.CheckpointInterval
		cfg.TimeoutCycles = 0 // full-buffering adaptive net cannot deadlock
		cfg.Net = network.AdaptiveConfig(4, 4, bw)
		cfg.AdaptiveDisableWindow = 10 * p.CheckpointInterval
		pts = repeats(pts, "reorder", cfg, p, map[string]string{"bw": strconv.FormatFloat(bw, 'g', -1, 64)})
	}
	return pts
}

func (reorderExp) Aggregate(p Params, res []runner.Result) any {
	bws := p.AxisFloats("bw")
	out := make([]ReorderResult, len(bws))
	for bi, bw := range bws {
		i := bi * p.Runs
		r := ReorderResult{BandwidthBpc: bw, BandwidthMBs: bw * 4000}
		r.Total = sampleOf(res, i, p.Runs, "reorder_total").Mean()
		r.Recoveries = sampleOf(res, i, p.Runs, "recoveries").Mean()
		r.MeanLinkUtil = sampleOf(res, i, p.Runs, "mean_link_util").Mean()
		for v := 0; v < 4; v++ {
			r.PerVNet = append(r.PerVNet, sampleOf(res, i, p.Runs, "reorder_vnet"+strconv.Itoa(v)).Mean())
		}
		out[bi] = r
	}
	return out
}

func (reorderExp) Table(v any) string { return ReorderTable(v.([]ReorderResult)) }

// ReorderRates runs the registered reorder experiment on one workload
// (historical signature).
func ReorderRates(p Params, wl workload.Profile) []ReorderResult {
	p.Workload = wl
	return mustRun(reorderExp{}, p).([]ReorderResult)
}

// ReorderTable renders the reorder-rate study.
func ReorderTable(results []ReorderResult) string {
	t := stats.NewTable("link bw (MB/s)", "req vnet", "fwd vnet", "resp vnet", "final vnet", "total", "recoveries", "link util")
	for _, r := range results {
		row := []string{fmt.Sprintf("%.0f", r.BandwidthMBs)}
		for v := 0; v < 4; v++ {
			row = append(row, fmt.Sprintf("%.5f", r.PerVNet[v]))
		}
		row = append(row,
			fmt.Sprintf("%.5f", r.Total),
			fmt.Sprintf("%.2f", r.Recoveries),
			fmt.Sprintf("%.1f%%", 100*r.MeanLinkUtil))
		t.AddRow(row...)
	}
	return t.String()
}

// ---- §5.3: snooping recoveries ----

// SnoopResult is one workload's speculative-snooping outcome.
type SnoopResult struct {
	Workload       string
	Perf           Cell // normalized to the full protocol
	CornerDetected float64
	FullCornerHit  float64 // how often the full protocol exercised it
}

// snoopExp reproduces the §5.3 snooping result: all workloads run to
// completion with (essentially) no recoveries, and performance mirrors
// the fully designed protocol.
type snoopExp struct{}

func (snoopExp) Name() string { return "snoop" }
func (snoopExp) Title(Params) string {
	return "§5.3: speculatively simplified snooping protocol"
}
func (snoopExp) Axes() []Axis { return []Axis{workloadsAxis()} }

func (snoopExp) Grid(p Params) []runner.Point {
	var pts []runner.Point
	for _, wl := range p.AxisProfiles("workloads") {
		full := system.DefaultConfig(system.SnoopFull, wl)
		full.CheckpointInterval = p.CheckpointInterval
		pts = repeats(pts, "snoop", full, p, map[string]string{"variant": "full"})
		spec := system.DefaultConfig(system.SnoopSpec, wl)
		spec.CheckpointInterval = p.CheckpointInterval
		pts = repeats(pts, "snoop", spec, p, map[string]string{"variant": "spec"})
	}
	return pts
}

func (snoopExp) Aggregate(p Params, res []runner.Result) any {
	wls := p.AxisProfiles("workloads")
	out := make([]SnoopResult, len(wls))
	i := 0
	for wi, wl := range wls {
		full, spec := i, i+p.Runs
		i += 2 * p.Runs
		r := SnoopResult{Workload: wl.Name}
		r.Perf = cell(sampleOf(res, spec, p.Runs, "perf"), sampleOf(res, full, p.Runs, "perf").Mean())
		r.CornerDetected = sampleOf(res, spec, p.Runs, "corner_detected").Mean()
		r.FullCornerHit = sampleOf(res, full, p.Runs, "corner_handled").Mean()
		out[wi] = r
	}
	return out
}

func (snoopExp) Table(v any) string { return SnoopTable(v.([]SnoopResult)) }

// SnoopRecoveries runs the registered snoop experiment (historical
// signature).
func SnoopRecoveries(p Params) []SnoopResult { return mustRun(snoopExp{}, p).([]SnoopResult) }

// SnoopTable renders the snooping study.
func SnoopTable(results []SnoopResult) string {
	t := stats.NewTable("workload", "spec perf (vs full)", "recoveries", "full-protocol corner hits")
	for _, r := range results {
		t.AddRow(r.Workload, r.Perf.String(),
			fmt.Sprintf("%.2f", r.CornerDetected),
			fmt.Sprintf("%.2f", r.FullCornerHit))
	}
	return t.String()
}

// ---- §5.3: interconnect buffer sweep ----

// BufferResult is one buffer-size point of the §5.3 network study.
type BufferResult struct {
	BufferSize int // 0 = worst-case (unlimited) buffering baseline
	Perf       Cell
	Recoveries float64
	Timeouts   float64
}

// BufferSizes are the sweep points; 0 is the worst-case baseline. The
// paper's crossover is between 16 and 8 entries; with this model's
// smaller in-flight message census the same cliff appears between 4 and
// 2 (see EXPERIMENTS.md R3), so the sweep extends below 8.
var BufferSizes = []int{0, 16, 8, 4, 2}

// BufferSweepBandwidth loads the network enough for buffer occupancy to
// matter without saturating it (800 MB/s at 4 GHz).
const BufferSweepBandwidth = 0.2

// buffersExp reproduces the §5.3 network results: the simplified
// interconnect (no virtual networks/channels, one shared buffer pool
// per switch) holds steady performance until buffers get very small,
// then drops sharply once deadlocks appear and are resolved by
// timeout-triggered recovery. Normalization against the worst-case
// baseline happens at aggregation time, so the whole grid — baseline
// included — runs on one worker pool.
type buffersExp struct{}

func (buffersExp) Name() string { return "buffers" }
func (buffersExp) Title(p Params) string {
	return "§5.3: simplified interconnect buffer sweep (" + p.AxisProfile("workload").Name + ")"
}
func (buffersExp) Axes() []Axis {
	return []Axis{
		workloadAxis("oltp"),
		{Name: "bufsize", Kind: AxisInt, List: true,
			Default: intStrings(BufferSizes),
			Help:    "per-switch buffer entries (0 = worst-case baseline)"},
	}
}

func (buffersExp) Grid(p Params) []runner.Point {
	wl := p.AxisProfile("workload")
	var pts []runner.Point
	for _, size := range p.AxisInts("bufsize") {
		cfg := system.DefaultConfig(system.DirectorySpec, wl)
		cfg.CheckpointInterval = p.CheckpointInterval
		cfg.TimeoutCycles = 3 * p.CheckpointInterval
		cfg.SlowStartWindow = 5 * p.CheckpointInterval
		cfg.Net = network.SimplifiedConfig(4, 4, BufferSweepBandwidth, size)
		pts = repeats(pts, "buffers", cfg, p, map[string]string{"bufsize": strconv.Itoa(size)})
	}
	return pts
}

func (buffersExp) Aggregate(p Params, res []runner.Result) any {
	sizes := p.AxisInts("bufsize")
	out := make([]BufferResult, len(sizes))
	var base float64
	for si, size := range sizes {
		i := si * p.Runs
		perf := sampleOf(res, i, p.Runs, "perf")
		if size == 0 {
			base = perf.Mean()
		}
		out[si] = BufferResult{
			BufferSize: size,
			Perf:       cell(perf, base),
			Recoveries: sampleOf(res, i, p.Runs, "recoveries").Mean(),
			Timeouts:   sampleOf(res, i, p.Runs, "timeouts").Mean(),
		}
	}
	return out
}

func (buffersExp) Table(v any) string { return BufferTable(v.([]BufferResult)) }

// BufferSweep runs the registered buffers experiment on one workload
// (historical signature).
func BufferSweep(p Params, wl workload.Profile) []BufferResult {
	p.Workload = wl
	return mustRun(buffersExp{}, p).([]BufferResult)
}

// BufferTable renders the buffer sweep.
func BufferTable(results []BufferResult) string {
	t := stats.NewTable("buffer size", "normalized perf", "recoveries", "timeouts")
	for _, r := range results {
		name := fmt.Sprintf("%d", r.BufferSize)
		if r.BufferSize == 0 {
			name = "worst-case"
		}
		t.AddRow(name, r.Perf.String(),
			fmt.Sprintf("%.2f", r.Recoveries),
			fmt.Sprintf("%.2f", r.Timeouts))
	}
	return t.String()
}

// ---- scaling study: 16 → 256 nodes ----

// ScaleResult is one (kind, geometry, sharer format, workload) cell of
// the scaling study: both speculatively simplified protocols on the
// paper's 4×4 target machine and the 8×8 (64-node) machine, and — where
// the protocol scales — the 16×16 (256-node) machine, where the
// directory runs once per wide sharer-set format.
type ScaleResult struct {
	Kind     string
	Workload string
	Width    int
	Height   int
	// Sharers names the directory sharer-set format of this design
	// point ("bitmap", "limited", "coarse"; "-" for snooping systems).
	Sharers string
	// Perf is absolute aggregate IPC; PerfVs4x4 normalizes it to the
	// same kind and workload at the 4×4 geometry.
	Perf       Cell
	PerfVs4x4  Cell
	Recoveries float64
	// MissLatency is the mean coherence miss latency in cycles — the
	// quantity the torus diameter stretches.
	MissLatency  float64
	MeanLinkUtil float64
	// Invalidations counts directory Inv messages (mean per run); the
	// limited-pointer format's overflow broadcasts surface here as
	// extra invalidation traffic. InvBroadcasts counts the Dir_i_B
	// broadcast fan-outs behind that extra traffic.
	Invalidations float64
	InvBroadcasts float64
	// Err marks a design point the machine model does not support (e.g.
	// snooping at 1024 nodes, past even the segmented address network's
	// ceiling); the sweep reports it and carries on.
	Err string `json:",omitempty"`
}

// ScaleGeometries are the scaling design points: the paper's target
// machine, the 64-node full-bitmap ceiling, and the 256-node machine
// the wide sharer-set formats open up.
var ScaleGeometries = [][2]int{{4, 4}, {8, 8}, {16, 16}}

// scaleKinds are the scaled systems: both speculatively simplified
// variants (the paper's proposal is exactly that these stay correct and
// fast as the machine grows).
var scaleKinds = []system.Kind{system.DirectorySpec, system.SnoopSpec}

// scaleVariant is one geometry × sharer-format design point of a kind's
// scaling curve.
type scaleVariant struct {
	w, h    int
	sharers directory.SharerFormat
	label   string
}

// scaleVariants lists a kind's design points. Directory systems run the
// exact bitmap where it fits and both wide formats at 16×16 (so the
// precision-vs-traffic trade is directly visible in one table); the
// snooping system runs every geometry, riding the segmented address
// network (snoop.ScaledBusConfig) past the 64-node flat-bus ceiling.
func scaleVariants(kind system.Kind) []scaleVariant {
	if !kind.IsDirectory() {
		var vs []scaleVariant
		for _, g := range ScaleGeometries {
			vs = append(vs, scaleVariant{w: g[0], h: g[1], label: "-"})
		}
		return vs
	}
	return []scaleVariant{
		{4, 4, directory.FullBitmap, "bitmap"},
		{8, 8, directory.FullBitmap, "bitmap"},
		{16, 16, directory.LimitedPointer, "limited"},
		{16, 16, directory.CoarseVector, "coarse"},
	}
}

// scale64Exp runs the scaling study. The directory system keeps its
// adaptive full-buffered network (deadlock-free, so the watchdog stays
// off as in Fig5); the snooping system's address network scales with
// the geometry (ScaledBusConfig): flat through 64 nodes, segmented at
// 16×16. Points past a machine model's ceiling (see scale1024's 32×32
// snooping point) land in the results as reported errors rather than
// killing the sweep.
type scale64Exp struct{}

func (scale64Exp) Name() string { return "scale64" }
func (scale64Exp) Title(Params) string {
	return "Scaling study: 4x4 -> 8x8 -> 16x16, both Spec protocols (directory-only at 256 nodes)"
}
func (scale64Exp) Axes() []Axis { return []Axis{workloadsAxis()} }

func (scale64Exp) Grid(p Params) []runner.Point {
	var pts []runner.Point
	for _, kind := range scaleKinds {
		for _, wl := range p.AxisProfiles("workloads") {
			for _, v := range scaleVariants(kind) {
				cfg := system.DefaultConfigSized(kind, wl, v.w, v.h)
				cfg.CheckpointInterval = p.CheckpointInterval
				cfg.CyclesPerSecond = p.CyclesPerSecond
				cfg.TimeoutCycles = 0
				if kind.IsDirectory() {
					cfg.Sharers = v.sharers
					// Intra-run tiling, resolved per point; snooping
					// points stay on the classic serial path (Shards 0).
					// Directory points always use the windowed engine
					// (Shards >= 1), so the CSVs are byte-identical for
					// every requested -shards value and tile shape —
					// CI diffs them.
					cfg.Shards, cfg.ShardRows, cfg.ShardCols = effectiveTiles(p, v.w, v.h)
				}
				pts = repeats(pts, "scale64", cfg, p, map[string]string{
					"kind":    kind.String(),
					"geom":    fmt.Sprintf("%dx%d", v.w, v.h),
					"sharers": v.label,
				})
			}
		}
	}
	return pts
}

func (scale64Exp) Aggregate(p Params, res []runner.Result) any {
	var out []ScaleResult
	i := 0
	for _, kind := range scaleKinds {
		for _, wl := range p.AxisProfiles("workloads") {
			var base float64
			for vi, v := range scaleVariants(kind) {
				r := ScaleResult{
					Kind:     kind.String(),
					Workload: wl.Name,
					Width:    v.w,
					Height:   v.h,
					Sharers:  v.label,
				}
				if err := res[i].Err; err != nil {
					r.Err = err.Error()
					out = append(out, r)
					i += p.Runs
					continue
				}
				perf := sampleOf(res, i, p.Runs, "perf")
				if vi == 0 {
					base = perf.Mean()
				}
				r.Perf = Cell{perf.Mean(), perf.StdDev()}
				r.PerfVs4x4 = cell(perf, base)
				r.Recoveries = sampleOf(res, i, p.Runs, "recoveries").Mean()
				r.MissLatency = sampleOf(res, i, p.Runs, "miss_latency_mean").Mean()
				r.MeanLinkUtil = sampleOf(res, i, p.Runs, "mean_link_util").Mean()
				r.Invalidations = sampleOf(res, i, p.Runs, "invalidations").Mean()
				r.InvBroadcasts = sampleOf(res, i, p.Runs, "inv_broadcasts").Mean()
				out = append(out, r)
				i += p.Runs
			}
		}
	}
	return out
}

func (scale64Exp) Table(v any) string { return ScaleTable(v.([]ScaleResult)) }

// ScaleSweep runs the registered scale64 experiment (historical
// signature).
func ScaleSweep(p Params) []ScaleResult { return mustRun(scale64Exp{}, p).([]ScaleResult) }

// ScaleTable renders the scaling study. Unsupported design points show
// as "unsupported*" rows with the (deduplicated) reasons footnoted
// below the table.
func ScaleTable(results []ScaleResult) string {
	t := stats.NewTable("system", "workload", "geometry", "sharers", "IPC", "vs 4x4", "recoveries", "miss latency", "invs", "bcasts", "link util")
	var notes []string
	seen := map[string]bool{}
	for _, r := range results {
		geom := fmt.Sprintf("%dx%d (%d nodes)", r.Width, r.Height, r.Width*r.Height)
		if r.Err != "" {
			t.AddRow(r.Kind, r.Workload, geom, r.Sharers,
				"unsupported*", "-", "-", "-", "-", "-", "-")
			if !seen[r.Err] {
				seen[r.Err] = true
				notes = append(notes, "* "+r.Err)
			}
			continue
		}
		t.AddRow(r.Kind, r.Workload, geom, r.Sharers,
			r.Perf.String(), r.PerfVs4x4.String(),
			fmt.Sprintf("%.2f", r.Recoveries),
			fmt.Sprintf("%.1f", r.MissLatency),
			fmt.Sprintf("%.0f", r.Invalidations),
			fmt.Sprintf("%.0f", r.InvBroadcasts),
			fmt.Sprintf("%.1f%%", 100*r.MeanLinkUtil))
	}
	out := t.String()
	for _, n := range notes {
		out += n + "\n"
	}
	return out
}

// ---- ablations ----

// DeflectionResult compares deadlock-recovery against deflection
// routing on identical (tiny-buffer) fabric pressure — the paper's
// footnote-3 alternative.
type DeflectionResult struct {
	Name        string
	Perf        Cell
	Recoveries  float64
	Deflections float64
}

// deflectionNets are the A4 ablation's fixed fabric pair.
var deflectionNets = []struct {
	name string
	net  func() network.Config
}{
	{"simplified-2buf", func() network.Config { return network.SimplifiedConfig(4, 4, BufferSweepBandwidth, 2) }},
	{"deflection", func() network.Config { return network.DeflectionConfig(4, 4, BufferSweepBandwidth) }},
}

// deflectionExp runs the speculative directory system on (a) the
// simplified waiting network at the deadlock-prone buffer size and (b)
// the deflection network, both guarded by the transaction timeout.
type deflectionExp struct{}

func (deflectionExp) Name() string { return "deflection" }
func (deflectionExp) Title(p Params) string {
	return "Ablation A4: deadlock-recovery vs deflection routing (" + p.AxisProfile("workload").Name + ")"
}
func (deflectionExp) Axes() []Axis { return []Axis{workloadAxis("oltp")} }

func (deflectionExp) Grid(p Params) []runner.Point {
	wl := p.AxisProfile("workload")
	var pts []runner.Point
	for _, c := range deflectionNets {
		cfg := system.DefaultConfig(system.DirectorySpec, wl)
		cfg.CheckpointInterval = p.CheckpointInterval
		cfg.TimeoutCycles = 3 * p.CheckpointInterval
		cfg.SlowStartWindow = 5 * p.CheckpointInterval
		cfg.Net = c.net()
		pts = repeats(pts, "deflection", cfg, p, map[string]string{"net": c.name})
	}
	return pts
}

func (deflectionExp) Aggregate(p Params, res []runner.Result) any {
	out := make([]DeflectionResult, len(deflectionNets))
	for ci, c := range deflectionNets {
		i := ci * p.Runs
		perf := sampleOf(res, i, p.Runs, "perf")
		out[ci] = DeflectionResult{
			Name:        c.name,
			Perf:        Cell{perf.Mean(), perf.StdDev()},
			Recoveries:  sampleOf(res, i, p.Runs, "recoveries").Mean(),
			Deflections: sampleOf(res, i, p.Runs, "deflections").Mean(),
		}
	}
	return out
}

func (deflectionExp) Table(v any) string { return DeflectionTable(v.([]DeflectionResult)) }

// DeflectionTable renders the A4 ablation.
func DeflectionTable(results []DeflectionResult) string {
	var b strings.Builder
	for _, r := range results {
		fmt.Fprintf(&b, "  %-16s perf %s, recoveries %.2f, deflections %.0f\n",
			r.Name, r.Perf, r.Recoveries, r.Deflections)
	}
	return strings.TrimSuffix(b.String(), "\n")
}

// DeflectionAblation runs the registered deflection experiment on one
// workload (historical signature).
func DeflectionAblation(p Params, wl workload.Profile) []DeflectionResult {
	p.Workload = wl
	return mustRun(deflectionExp{}, p).([]DeflectionResult)
}

// SlowStartResult is one limit point of the A2 ablation.
type SlowStartResult struct {
	Limit      int
	Perf       Cell
	Recoveries float64
}

// SlowStartLimits are the default swept outstanding limits.
var SlowStartLimits = []int{1, 2, 4, 8}

// slowstartExp measures post-recovery throughput and recurrence as a
// function of the slow-start outstanding limit, on the deadlock-prone
// simplified network (2-entry shared pools, where deadlocks actually
// occur — see buffersExp).
type slowstartExp struct{}

func (slowstartExp) Name() string { return "slowstart" }
func (slowstartExp) Title(p Params) string {
	return "Ablation A2: slow-start outstanding limit (" + p.AxisProfile("workload").Name + ", 2-entry buffers)"
}
func (slowstartExp) Axes() []Axis {
	return []Axis{
		workloadAxis("oltp"),
		{Name: "limit", Kind: AxisInt, List: true,
			Default: intStrings(SlowStartLimits),
			Help:    "slow-start outstanding-transaction limits"},
	}
}

func (slowstartExp) Grid(p Params) []runner.Point {
	wl := p.AxisProfile("workload")
	var pts []runner.Point
	for _, limit := range p.AxisInts("limit") {
		cfg := system.DefaultConfig(system.DirectorySpec, wl)
		cfg.CheckpointInterval = p.CheckpointInterval
		cfg.TimeoutCycles = 3 * p.CheckpointInterval
		cfg.Net = network.SimplifiedConfig(4, 4, BufferSweepBandwidth, 2)
		cfg.SlowStartWindow = 10 * p.CheckpointInterval
		cfg.SlowStartLimit = limit
		pts = repeats(pts, "slowstart", cfg, p, map[string]string{"limit": strconv.Itoa(limit)})
	}
	return pts
}

func (slowstartExp) Aggregate(p Params, res []runner.Result) any {
	limits := p.AxisInts("limit")
	out := make([]SlowStartResult, len(limits))
	for li, limit := range limits {
		i := li * p.Runs
		perf := sampleOf(res, i, p.Runs, "perf")
		out[li] = SlowStartResult{
			Limit:      limit,
			Perf:       Cell{perf.Mean(), perf.StdDev()},
			Recoveries: sampleOf(res, i, p.Runs, "recoveries").Mean(),
		}
	}
	return out
}

func (slowstartExp) Table(v any) string { return SlowStartTable(v.([]SlowStartResult)) }

// SlowStartTable renders the A2 ablation.
func SlowStartTable(results []SlowStartResult) string {
	var b strings.Builder
	for _, r := range results {
		fmt.Fprintf(&b, "  limit %d: perf %s, recoveries %.2f\n", r.Limit, r.Perf, r.Recoveries)
	}
	return strings.TrimSuffix(b.String(), "\n")
}

// SlowStartAblation runs the registered slowstart experiment with the
// given limits (historical signature).
func SlowStartAblation(p Params, wl workload.Profile, limits []int) []SlowStartResult {
	p.Workload = wl
	p = p.withAxis("limit", intStrings(limits))
	return mustRun(slowstartExp{}, p).([]SlowStartResult)
}

// ReenableResult is one point of the A5 ablation: the paper §3.1 notes
// "the choice of when to re-enable adaptive routing provides an
// adjustable knob for setting the worst-case lower bound on
// performance". With reordering amplified so recoveries actually occur,
// the knob's effect becomes measurable: never re-enabling (the
// conservative extreme) forfeits adaptive routing's speedup after the
// first recovery; short windows recover it at the cost of repeated
// mis-speculations.
type ReenableResult struct {
	Window     sim.Time // 0 = never re-enable
	Perf       Cell
	Recoveries float64
}

// ReenableWindows are the default swept re-enable windows, scaled by
// the run's checkpoint interval (0 = never re-enable).
func ReenableWindows(p Params) []sim.Time {
	return []sim.Time{0, 2 * p.CheckpointInterval, 10 * p.CheckpointInterval, 50 * p.CheckpointInterval}
}

// reenableExp sweeps the adaptive-routing re-enable window under
// amplified reordering.
type reenableExp struct{}

func (reenableExp) Name() string { return "reenable" }
func (reenableExp) Title(p Params) string {
	return "Ablation A5: adaptive-routing re-enable window (" + p.AxisProfile("workload").Name + ", amplified reordering)"
}
func (reenableExp) Axes() []Axis {
	return []Axis{
		workloadAxis("oltp"),
		{Name: "window", Kind: AxisTime, List: true,
			DefaultOf: func(p Params) []string { return timeStrings(ReenableWindows(p)) },
			Help:      "re-enable windows in cycles (0 = never)"},
	}
}

func (reenableExp) Grid(p Params) []runner.Point {
	wl := p.AxisProfile("workload")
	var pts []runner.Point
	for _, w := range p.AxisTimes("window") {
		cfg := system.DefaultConfig(system.DirectorySpec, wl)
		cfg.CheckpointInterval = p.CheckpointInterval
		cfg.TimeoutCycles = 0
		cfg.Net = network.AdaptiveConfig(4, 4, BufferSweepBandwidth)
		cfg.AdaptiveDisableWindow = w
		cfg.SlowStartWindow = 5 * p.CheckpointInterval
		cfg.ReorderInjectProb = 0.3
		cfg.ReorderInjectDelay = 3_000
		// Tiny caches keep writebacks frequent enough to race.
		cfg.L2Bytes, cfg.L2Ways = 16*64, 2
		cfg.L1Bytes, cfg.L1Ways = 2*64, 1
		pts = repeats(pts, "reenable", cfg, p, map[string]string{"window": strconv.FormatUint(uint64(w), 10)})
	}
	return pts
}

func (reenableExp) Aggregate(p Params, res []runner.Result) any {
	windows := p.AxisTimes("window")
	out := make([]ReenableResult, len(windows))
	for wi, w := range windows {
		i := wi * p.Runs
		perf := sampleOf(res, i, p.Runs, "perf")
		out[wi] = ReenableResult{
			Window:     w,
			Perf:       Cell{perf.Mean(), perf.StdDev()},
			Recoveries: sampleOf(res, i, p.Runs, "recoveries").Mean(),
		}
	}
	return out
}

func (reenableExp) Table(v any) string { return ReenableTable(v.([]ReenableResult)) }

// ReenableTable renders the A5 ablation.
func ReenableTable(results []ReenableResult) string {
	var b strings.Builder
	for _, r := range results {
		name := fmt.Sprintf("%d cycles", r.Window)
		if r.Window == 0 {
			name = "never (conservative)"
		}
		fmt.Fprintf(&b, "  re-enable after %-22s perf %s, recoveries %.2f\n", name+":", r.Perf, r.Recoveries)
	}
	return strings.TrimSuffix(b.String(), "\n")
}

// ReenableAblation runs the registered reenable experiment with the
// given windows (historical signature).
func ReenableAblation(p Params, wl workload.Profile, windows []sim.Time) []ReenableResult {
	p.Workload = wl
	p = p.withAxis("window", timeStrings(windows))
	return mustRun(reenableExp{}, p).([]ReenableResult)
}

// CheckpointResult is one interval point of the A3 ablation.
type CheckpointResult struct {
	Interval        sim.Time
	Perf            Cell
	LogHighWater    float64
	CheckpointStall float64
}

// CheckpointIntervals are the default swept intervals.
var CheckpointIntervals = []sim.Time{2_000, 5_000, 20_000, 50_000}

// checkpointExp measures checkpoint-interval effects: log occupancy
// grows with the interval while checkpoint stalls shrink. It defaults
// to the uniform workload — the interval, not the sharing pattern, is
// the subject.
type checkpointExp struct{}

func (checkpointExp) Name() string { return "checkpoint" }
func (checkpointExp) Title(Params) string {
	return "Ablation A3: checkpoint interval vs log occupancy"
}
func (checkpointExp) Axes() []Axis {
	return []Axis{
		workloadAxis("uniform"),
		{Name: "interval", Kind: AxisTime, List: true,
			Default: timeStrings(CheckpointIntervals),
			Help:    "checkpoint intervals in cycles"},
	}
}

func (checkpointExp) Grid(p Params) []runner.Point {
	wl := p.AxisProfile("workload")
	var pts []runner.Point
	for _, ival := range p.AxisTimes("interval") {
		cfg := system.DefaultConfig(system.DirectoryFull, wl)
		cfg.CheckpointInterval = ival
		pts = repeats(pts, "checkpoint", cfg, p, map[string]string{"interval": strconv.FormatUint(uint64(ival), 10)})
	}
	return pts
}

func (checkpointExp) Aggregate(p Params, res []runner.Result) any {
	intervals := p.AxisTimes("interval")
	out := make([]CheckpointResult, len(intervals))
	for ii, ival := range intervals {
		i := ii * p.Runs
		perf := sampleOf(res, i, p.Runs, "perf")
		out[ii] = CheckpointResult{
			Interval:        ival,
			Perf:            Cell{perf.Mean(), perf.StdDev()},
			LogHighWater:    sampleOf(res, i, p.Runs, "log_high_water_bytes").Mean(),
			CheckpointStall: sampleOf(res, i, p.Runs, "checkpoint_stall").Mean(),
		}
	}
	return out
}

func (checkpointExp) Table(v any) string { return CheckpointTable(v.([]CheckpointResult)) }

// CheckpointTable renders the A3 ablation.
func CheckpointTable(results []CheckpointResult) string {
	var b strings.Builder
	for _, r := range results {
		fmt.Fprintf(&b, "  interval %6d: perf %s, log high water %.0f B, ckpt stall %.0f cyc\n",
			r.Interval, r.Perf, r.LogHighWater, r.CheckpointStall)
	}
	return strings.TrimSuffix(b.String(), "\n")
}

// CheckpointAblation runs the registered checkpoint experiment with
// the given intervals (historical signature).
func CheckpointAblation(p Params, wl workload.Profile, intervals []sim.Time) []CheckpointResult {
	p.Workload = wl
	p = p.withAxis("interval", timeStrings(intervals))
	return mustRun(checkpointExp{}, p).([]CheckpointResult)
}

// ---- helpers ----

// Summary formats any experiment's key-value pairs sorted by key, for
// stable log output.
func Summary(kv map[string]string) string {
	keys := make([]string, 0, len(kv))
	for k := range kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%s ", k, kv[k])
	}
	return strings.TrimSpace(b.String())
}
