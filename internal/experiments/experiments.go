// Package experiments implements the paper's evaluation (§5): one
// driver per table and figure, shared by cmd/sweep and the root
// benchmark suite. Each driver returns structured results plus a
// formatted table in the paper's layout.
//
// Scale note: the paper's results are wall-clock rates at 4 GHz over
// seconds of simulated execution. This reproduction compresses the
// clock (Params.CyclesPerSecond) so a data point simulates in seconds of
// host time, and reports, alongside the compressed-clock measurement,
// an analytic projection at the paper's true 4 GHz scale computed from
// the *measured* mean lost work per recovery. EXPERIMENTS.md records
// both for every experiment.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"specsimp/internal/network"
	"specsimp/internal/sim"
	"specsimp/internal/stats"
	"specsimp/internal/system"
	"specsimp/internal/workload"
)

// Params sizes an experiment run.
type Params struct {
	// Cycles is the simulated run length per data point.
	Cycles sim.Time
	// Runs is the number of perturbed runs per data point (paper §5.2).
	Runs int
	// CyclesPerSecond defines the compressed clock for rate-based
	// experiments (Figure 4).
	CyclesPerSecond float64
	// CheckpointInterval scales SafetyNet's cadence with the compressed
	// clock so the validation window stays proportionate.
	CheckpointInterval sim.Time
	// Workloads are the profiles to evaluate (default: the paper's 5).
	Workloads []workload.Profile
}

// Quick returns bench-sized parameters (seconds of host time).
func Quick() Params {
	return Params{
		Cycles:             600_000,
		Runs:               2,
		CyclesPerSecond:    600_000,
		CheckpointInterval: 1_000,
		Workloads:          workload.Suite,
	}
}

// Standard returns the parameters used for EXPERIMENTS.md. The
// checkpoint interval is scaled down with the compressed clock so the
// validation window (3 intervals) stays well below even the highest
// injection rate's period (100/s -> every 15,000 cycles here).
func Standard() Params {
	return Params{
		Cycles:             1_500_000,
		Runs:               3,
		CyclesPerSecond:    1_500_000,
		CheckpointInterval: 2_000,
		Workloads:          workload.Suite,
	}
}

// Cell is one mean ± stddev measurement.
type Cell struct {
	Mean, Std float64
}

func (c Cell) String() string { return fmt.Sprintf("%.3f ±%.3f", c.Mean, c.Std) }

// ---- Figure 4: performance vs mis-speculation rate ----

// Fig4Result holds one workload row of Figure 4.
type Fig4Result struct {
	Workload string
	// PerfByRate maps recoveries-per-(compressed)-second to normalized
	// performance (base: rate 0).
	PerfByRate map[int]Cell
	// Recoveries actually performed at each rate.
	Recoveries map[int]float64
	// MeanLostWork is the measured rollback distance in cycles, used
	// for the true-scale projection.
	MeanLostWork float64
}

// Fig4Rates are the paper's injection rates (per second).
var Fig4Rates = []int{0, 1, 10, 100}

// Fig4 reproduces Figure 4: inject periodic recoveries into the
// non-speculative directory system and measure normalized performance.
func Fig4(p Params) []Fig4Result {
	out := make([]Fig4Result, len(p.Workloads))
	parallelFor(len(p.Workloads), func(i int) {
		wl := p.Workloads[i]
		res := Fig4Result{Workload: wl.Name, PerfByRate: map[int]Cell{}, Recoveries: map[int]float64{}}
		var base float64
		for _, rate := range Fig4Rates {
			cfg := system.DefaultConfig(system.DirectoryFull, wl)
			cfg.CheckpointInterval = p.CheckpointInterval
			cfg.CyclesPerSecond = p.CyclesPerSecond
			if rate > 0 {
				cfg.InjectRecoveryEvery = sim.Time(p.CyclesPerSecond / float64(rate))
			}
			pr := system.RunPerturbed(cfg, p.Runs, p.Cycles)
			mean := pr.Perf.Mean()
			if rate == 0 {
				base = mean
			}
			norm, std := 1.0, 0.0
			if base > 0 {
				norm = mean / base
				std = pr.Perf.StdDev() / base
			}
			res.PerfByRate[rate] = Cell{Mean: norm, Std: std}
			res.Recoveries[rate] = pr.Recoveries.Mean()
			for _, r := range pr.Runs {
				if r.MeanLostWork > 0 {
					res.MeanLostWork = r.MeanLostWork
				}
			}
		}
		out[i] = res
	})
	return out
}

// Fig4Table renders Figure 4 in the paper's layout plus the true-scale
// projection (4 GHz, Table 2 checkpoint interval).
func Fig4Table(results []Fig4Result) string {
	t := stats.NewTable("workload", "0/s", "1/s", "10/s", "100/s", "projected@4GHz 10/s", "projected@4GHz 100/s")
	for _, r := range results {
		// Projection: fractional loss = rate * lostWork / 4e9, with
		// lost work re-scaled to the paper's 100k-cycle interval
		// (rollback distance is ~4 checkpoint intervals).
		trueLost := 4.0 * 100_000
		proj := func(rate float64) string {
			return fmt.Sprintf("%.4f", 1-rate*trueLost/4e9)
		}
		t.AddRow(r.Workload,
			r.PerfByRate[0].String(), r.PerfByRate[1].String(),
			r.PerfByRate[10].String(), r.PerfByRate[100].String(),
			proj(10), proj(100))
	}
	return t.String()
}

// ---- Figure 5: static vs adaptive routing ----

// Fig5Result is one workload's static-vs-adaptive comparison at
// 400 MB/s links (0.1 bytes/cycle at 4 GHz).
type Fig5Result struct {
	Workload     string
	StaticPerf   Cell // normalized to itself: 1.0
	AdaptivePerf Cell // normalized to static
	Recoveries   float64
	ReorderRate  float64
	MeanLinkUtil float64 // static routing, paper reports 13-35%
}

// Fig5LinkBandwidth is 400 MB/s at the 4 GHz clock.
const Fig5LinkBandwidth = 0.1

// Fig5 reproduces Figure 5: relative performance of static and adaptive
// routing under the speculatively simplified directory protocol.
func Fig5(p Params) []Fig5Result {
	out := make([]Fig5Result, len(p.Workloads))
	parallelFor(len(p.Workloads), func(i int) {
		wl := p.Workloads[i]
		base := system.DefaultConfig(system.DirectorySpec, wl)
		base.CheckpointInterval = p.CheckpointInterval
		// Figure 5's networks (safe static; adaptive with full buffering)
		// cannot deadlock, and at 400 MB/s links a compressed-clock
		// timeout would only produce false positives: the experiment's
		// detector is the invalid-transition check, not the watchdog.
		base.TimeoutCycles = 0

		st := base
		st.Net = network.SafeStaticConfig(4, 4, Fig5LinkBandwidth)
		staticPR := system.RunPerturbed(st, p.Runs, p.Cycles)

		ad := base
		ad.Net = network.AdaptiveConfig(4, 4, Fig5LinkBandwidth)
		ad.AdaptiveDisableWindow = 10 * p.CheckpointInterval
		adaptPR := system.RunPerturbed(ad, p.Runs, p.Cycles)

		sm := staticPR.Perf.Mean()
		r := Fig5Result{Workload: wl.Name, StaticPerf: Cell{1, 0}}
		if sm > 0 {
			r.AdaptivePerf = Cell{adaptPR.Perf.Mean() / sm, adaptPR.Perf.StdDev() / sm}
		}
		r.Recoveries = adaptPR.Recoveries.Mean()
		var reorder, util stats.Sample
		for _, run := range adaptPR.Runs {
			reorder.Observe(run.TotalReorderRate)
		}
		for _, run := range staticPR.Runs {
			util.Observe(run.MeanLinkUtil)
		}
		r.ReorderRate = reorder.Mean()
		r.MeanLinkUtil = util.Mean()
		out[i] = r
	})
	return out
}

// Fig5Table renders Figure 5.
func Fig5Table(results []Fig5Result) string {
	t := stats.NewTable("workload", "static", "adaptive", "recoveries", "reorder rate", "static link util")
	for _, r := range results {
		t.AddRow(r.Workload, "1.000",
			r.AdaptivePerf.String(),
			fmt.Sprintf("%.2f", r.Recoveries),
			fmt.Sprintf("%.5f", r.ReorderRate),
			fmt.Sprintf("%.1f%%", 100*r.MeanLinkUtil))
	}
	return t.String()
}

// ---- §5.3 text: reorder rates vs link bandwidth ----

// ReorderResult is one bandwidth point of the §5.3 reorder-rate study.
type ReorderResult struct {
	BandwidthBpc float64 // bytes/cycle
	BandwidthMBs float64 // at 4 GHz
	PerVNet      []float64
	Total        float64
	Recoveries   float64
	MeanLinkUtil float64
}

// ReorderBandwidths spans the paper's 400 MB/s – 3.2 GB/s (at 4 GHz).
var ReorderBandwidths = []float64{0.1, 0.2, 0.4, 0.8}

// ReorderRates reproduces the §5.3 reorder-rate measurements on the
// speculative directory system with adaptive routing.
func ReorderRates(p Params, wl workload.Profile) []ReorderResult {
	out := make([]ReorderResult, len(ReorderBandwidths))
	parallelFor(len(ReorderBandwidths), func(i int) {
		bw := ReorderBandwidths[i]
		cfg := system.DefaultConfig(system.DirectorySpec, wl)
		cfg.CheckpointInterval = p.CheckpointInterval
		cfg.TimeoutCycles = 0 // full-buffering adaptive net cannot deadlock
		cfg.Net = network.AdaptiveConfig(4, 4, bw)
		cfg.AdaptiveDisableWindow = 10 * p.CheckpointInterval
		pr := system.RunPerturbed(cfg, p.Runs, p.Cycles)
		r := ReorderResult{BandwidthBpc: bw, BandwidthMBs: bw * 4000}
		var total, rec, util stats.Sample
		per := make([]stats.Sample, 4)
		for _, run := range pr.Runs {
			total.Observe(run.TotalReorderRate)
			rec.Observe(float64(run.Recoveries))
			util.Observe(run.MeanLinkUtil)
			for v := 0; v < len(run.ReorderRatePerVNet) && v < 4; v++ {
				per[v].Observe(run.ReorderRatePerVNet[v])
			}
		}
		r.Total = total.Mean()
		r.Recoveries = rec.Mean()
		r.MeanLinkUtil = util.Mean()
		for v := range per {
			r.PerVNet = append(r.PerVNet, per[v].Mean())
		}
		out[i] = r
	})
	return out
}

// ReorderTable renders the reorder-rate study.
func ReorderTable(results []ReorderResult) string {
	t := stats.NewTable("link bw (MB/s)", "req vnet", "fwd vnet", "resp vnet", "final vnet", "total", "recoveries", "link util")
	for _, r := range results {
		row := []string{fmt.Sprintf("%.0f", r.BandwidthMBs)}
		for v := 0; v < 4; v++ {
			row = append(row, fmt.Sprintf("%.5f", r.PerVNet[v]))
		}
		row = append(row,
			fmt.Sprintf("%.5f", r.Total),
			fmt.Sprintf("%.2f", r.Recoveries),
			fmt.Sprintf("%.1f%%", 100*r.MeanLinkUtil))
		t.AddRow(row...)
	}
	return t.String()
}

// ---- §5.3: snooping recoveries ----

// SnoopResult is one workload's speculative-snooping outcome.
type SnoopResult struct {
	Workload       string
	Perf           Cell // normalized to the full protocol
	CornerDetected float64
	FullCornerHit  float64 // how often the full protocol exercised it
}

// SnoopRecoveries reproduces the §5.3 snooping result: all workloads
// run to completion with (essentially) no recoveries, and performance
// mirrors the fully designed protocol.
func SnoopRecoveries(p Params) []SnoopResult {
	out := make([]SnoopResult, len(p.Workloads))
	parallelFor(len(p.Workloads), func(i int) {
		wl := p.Workloads[i]
		full := system.DefaultConfig(system.SnoopFull, wl)
		full.CheckpointInterval = p.CheckpointInterval
		spec := system.DefaultConfig(system.SnoopSpec, wl)
		spec.CheckpointInterval = p.CheckpointInterval
		fullPR := system.RunPerturbed(full, p.Runs, p.Cycles)
		specPR := system.RunPerturbed(spec, p.Runs, p.Cycles)
		r := SnoopResult{Workload: wl.Name}
		if m := fullPR.Perf.Mean(); m > 0 {
			r.Perf = Cell{specPR.Perf.Mean() / m, specPR.Perf.StdDev() / m}
		}
		var det, hit stats.Sample
		for _, run := range specPR.Runs {
			det.Observe(float64(run.CornerDetected))
		}
		for _, run := range fullPR.Runs {
			hit.Observe(float64(run.CornerHandled))
		}
		r.CornerDetected = det.Mean()
		r.FullCornerHit = hit.Mean()
		out[i] = r
	})
	return out
}

// SnoopTable renders the snooping study.
func SnoopTable(results []SnoopResult) string {
	t := stats.NewTable("workload", "spec perf (vs full)", "recoveries", "full-protocol corner hits")
	for _, r := range results {
		t.AddRow(r.Workload, r.Perf.String(),
			fmt.Sprintf("%.2f", r.CornerDetected),
			fmt.Sprintf("%.2f", r.FullCornerHit))
	}
	return t.String()
}

// ---- §5.3: interconnect buffer sweep ----

// BufferResult is one buffer-size point of the §5.3 network study.
type BufferResult struct {
	BufferSize int // 0 = worst-case (unlimited) buffering baseline
	Perf       Cell
	Recoveries float64
	Timeouts   float64
}

// BufferSizes are the sweep points; 0 is the worst-case baseline. The
// paper's crossover is between 16 and 8 entries; with this model's
// smaller in-flight message census the same cliff appears between 4 and
// 2 (see EXPERIMENTS.md R3), so the sweep extends below 8.
var BufferSizes = []int{0, 16, 8, 4, 2}

// BufferSweepBandwidth loads the network enough for buffer occupancy to
// matter without saturating it (800 MB/s at 4 GHz).
const BufferSweepBandwidth = 0.2

// BufferSweep reproduces the §5.3 network results: the simplified
// interconnect (no virtual networks/channels, one shared buffer pool
// per switch) holds steady performance until buffers get very small,
// then drops sharply once deadlocks appear and are resolved by
// timeout-triggered recovery.
func BufferSweep(p Params, wl workload.Profile) []BufferResult {
	out := make([]BufferResult, len(BufferSizes))
	var base float64
	// The worst-case baseline must run first to normalize the rest.
	run := func(i int) {
		size := BufferSizes[i]
		cfg := system.DefaultConfig(system.DirectorySpec, wl)
		cfg.CheckpointInterval = p.CheckpointInterval
		cfg.TimeoutCycles = 3 * p.CheckpointInterval
		cfg.SlowStartWindow = 5 * p.CheckpointInterval
		cfg.Net = network.SimplifiedConfig(4, 4, BufferSweepBandwidth, size)
		pr := system.RunPerturbed(cfg, p.Runs, p.Cycles)
		r := BufferResult{BufferSize: size}
		mean := pr.Perf.Mean()
		if size == 0 {
			base = mean
		}
		if base > 0 {
			r.Perf = Cell{mean / base, pr.Perf.StdDev() / base}
		}
		var rec, to stats.Sample
		for _, rr := range pr.Runs {
			rec.Observe(float64(rr.Recoveries))
			to.Observe(float64(rr.Timeouts))
		}
		r.Recoveries = rec.Mean()
		r.Timeouts = to.Mean()
		out[i] = r
	}
	run(0)
	parallelFor(len(BufferSizes)-1, func(i int) { run(i + 1) })
	return out
}

// BufferTable renders the buffer sweep.
func BufferTable(results []BufferResult) string {
	t := stats.NewTable("buffer size", "normalized perf", "recoveries", "timeouts")
	for _, r := range results {
		name := fmt.Sprintf("%d", r.BufferSize)
		if r.BufferSize == 0 {
			name = "worst-case"
		}
		t.AddRow(name, r.Perf.String(),
			fmt.Sprintf("%.2f", r.Recoveries),
			fmt.Sprintf("%.2f", r.Timeouts))
	}
	return t.String()
}

// ---- ablations ----

// DeflectionResult compares deadlock-recovery against deflection
// routing on identical (tiny-buffer) fabric pressure — the paper's
// footnote-3 alternative.
type DeflectionResult struct {
	Name        string
	Perf        Cell
	Recoveries  float64
	Deflections float64
}

// DeflectionAblation runs the speculative directory system on (a) the
// simplified waiting network at the deadlock-prone buffer size and (b)
// the deflection network, both guarded by the transaction timeout.
func DeflectionAblation(p Params, wl workload.Profile) []DeflectionResult {
	configs := []struct {
		name string
		net  network.Config
	}{
		{"simplified-2buf", network.SimplifiedConfig(4, 4, BufferSweepBandwidth, 2)},
		{"deflection", network.DeflectionConfig(4, 4, BufferSweepBandwidth)},
	}
	out := make([]DeflectionResult, len(configs))
	parallelFor(len(configs), func(i int) {
		cfg := system.DefaultConfig(system.DirectorySpec, wl)
		cfg.CheckpointInterval = p.CheckpointInterval
		cfg.TimeoutCycles = 3 * p.CheckpointInterval
		cfg.SlowStartWindow = 5 * p.CheckpointInterval
		cfg.Net = configs[i].net
		pr := system.RunPerturbed(cfg, p.Runs, p.Cycles)
		var rec, defl stats.Sample
		for _, rr := range pr.Runs {
			rec.Observe(float64(rr.Recoveries))
			defl.Observe(float64(rr.Deflections))
		}
		out[i] = DeflectionResult{
			Name:        configs[i].name,
			Perf:        Cell{pr.Perf.Mean(), pr.Perf.StdDev()},
			Recoveries:  rec.Mean(),
			Deflections: defl.Mean(),
		}
	})
	return out
}

// SlowStartResult is one limit point of the A2 ablation.
type SlowStartResult struct {
	Limit      int
	Perf       Cell
	Recoveries float64
}

// SlowStartAblation measures post-recovery throughput and recurrence as
// a function of the slow-start outstanding limit, on the deadlock-prone
// simplified network (2-entry shared pools, where deadlocks actually
// occur — see BufferSweep).
func SlowStartAblation(p Params, wl workload.Profile, limits []int) []SlowStartResult {
	out := make([]SlowStartResult, len(limits))
	parallelFor(len(limits), func(i int) {
		cfg := system.DefaultConfig(system.DirectorySpec, wl)
		cfg.CheckpointInterval = p.CheckpointInterval
		cfg.TimeoutCycles = 3 * p.CheckpointInterval
		cfg.Net = network.SimplifiedConfig(4, 4, BufferSweepBandwidth, 2)
		cfg.SlowStartWindow = 10 * p.CheckpointInterval
		cfg.SlowStartLimit = limits[i]
		pr := system.RunPerturbed(cfg, p.Runs, p.Cycles)
		var rec stats.Sample
		for _, rr := range pr.Runs {
			rec.Observe(float64(rr.Recoveries))
		}
		out[i] = SlowStartResult{
			Limit:      limits[i],
			Perf:       Cell{pr.Perf.Mean(), pr.Perf.StdDev()},
			Recoveries: rec.Mean(),
		}
	})
	return out
}

// ReenableResult is one point of the A5 ablation: the paper §3.1 notes
// "the choice of when to re-enable adaptive routing provides an
// adjustable knob for setting the worst-case lower bound on
// performance". With reordering amplified so recoveries actually occur,
// the knob's effect becomes measurable: never re-enabling (the
// conservative extreme) forfeits adaptive routing's speedup after the
// first recovery; short windows recover it at the cost of repeated
// mis-speculations.
type ReenableResult struct {
	Window     sim.Time // 0 = never re-enable
	Perf       Cell
	Recoveries float64
}

// ReenableAblation sweeps the adaptive-routing re-enable window under
// amplified reordering.
func ReenableAblation(p Params, wl workload.Profile, windows []sim.Time) []ReenableResult {
	out := make([]ReenableResult, len(windows))
	parallelFor(len(windows), func(i int) {
		cfg := system.DefaultConfig(system.DirectorySpec, wl)
		cfg.CheckpointInterval = p.CheckpointInterval
		cfg.TimeoutCycles = 0
		cfg.Net = network.AdaptiveConfig(4, 4, BufferSweepBandwidth)
		cfg.AdaptiveDisableWindow = windows[i]
		cfg.SlowStartWindow = 5 * p.CheckpointInterval
		cfg.ReorderInjectProb = 0.3
		cfg.ReorderInjectDelay = 3_000
		// Tiny caches keep writebacks frequent enough to race.
		cfg.L2Bytes, cfg.L2Ways = 16*64, 2
		cfg.L1Bytes, cfg.L1Ways = 2*64, 1
		pr := system.RunPerturbed(cfg, p.Runs, p.Cycles)
		var rec stats.Sample
		for _, rr := range pr.Runs {
			rec.Observe(float64(rr.Recoveries))
		}
		out[i] = ReenableResult{
			Window:     windows[i],
			Perf:       Cell{pr.Perf.Mean(), pr.Perf.StdDev()},
			Recoveries: rec.Mean(),
		}
	})
	return out
}

// CheckpointResult is one interval point of the A3 ablation.
type CheckpointResult struct {
	Interval        sim.Time
	Perf            Cell
	LogHighWater    float64
	CheckpointStall float64
}

// CheckpointAblation measures checkpoint-interval effects: log
// occupancy grows with the interval while checkpoint stalls shrink.
func CheckpointAblation(p Params, wl workload.Profile, intervals []sim.Time) []CheckpointResult {
	out := make([]CheckpointResult, len(intervals))
	parallelFor(len(intervals), func(i int) {
		cfg := system.DefaultConfig(system.DirectoryFull, wl)
		cfg.CheckpointInterval = intervals[i]
		pr := system.RunPerturbed(cfg, p.Runs, p.Cycles)
		var hw, stall stats.Sample
		for _, rr := range pr.Runs {
			hw.Observe(float64(rr.LogHighWaterBytes))
			stall.Observe(float64(rr.CheckpointStall))
		}
		out[i] = CheckpointResult{
			Interval:        intervals[i],
			Perf:            Cell{pr.Perf.Mean(), pr.Perf.StdDev()},
			LogHighWater:    hw.Mean(),
			CheckpointStall: stall.Mean(),
		}
	})
	return out
}

// ---- helpers ----

// parallelFor runs fn(0..n-1) concurrently, each on its own kernel.
func parallelFor(n int, fn func(i int)) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn(i)
		}()
	}
	wg.Wait()
}

// Summary formats any experiment's key-value pairs sorted by key, for
// stable log output.
func Summary(kv map[string]string) string {
	keys := make([]string, 0, len(kv))
	for k := range kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%s ", k, kv[k])
	}
	return strings.TrimSpace(b.String())
}
