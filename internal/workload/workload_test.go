package workload

import (
	"sort"
	"testing"
	"testing/quick"

	"specsimp/internal/coherence"
)

func TestSuiteProfilesValid(t *testing.T) {
	for _, p := range Suite {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	if len(Suite) != 5 {
		t.Fatalf("suite has %d workloads, want the paper's 5", len(Suite))
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{
		"oltp", "jbb", "apache", "slashcode", "barnes", "uniform", "hotspot",
		"migratory", "ring", "scan", "broadcast",
	} {
		if _, ok := ByName(name); !ok {
			t.Errorf("profile %q missing", name)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("unknown profile resolved")
	}
	if _, ok := ByName("trace:/nonexistent/path"); ok {
		t.Error("missing trace file resolved")
	}
	if _, err := Resolve("nope"); err == nil {
		t.Error("Resolve(nope) did not error")
	}
}

func TestRegistrySortedAndComplete(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("registry not sorted: %v", names)
	}
	want := len(Suite) + len(Idioms) + 2 // + uniform, hotspot
	if len(names) != want {
		t.Fatalf("registry has %d profiles, want %d: %v", len(names), want, names)
	}
	for _, name := range names {
		p, ok := ByName(name)
		if !ok || p.Name != name {
			t.Fatalf("registry entry %q does not round-trip", name)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := New(OLTP, 3, 16, 42)
	b := New(OLTP, 3, 16, 42)
	for i := 0; i < 5000; i++ {
		if a.Peek() != b.Peek() {
			t.Fatalf("streams diverged at %d", i)
		}
		a.Advance()
		b.Advance()
	}
	c := New(OLTP, 4, 16, 42) // different node: different stream
	same := 0
	for i := 0; i < 100; i++ {
		if a.Peek() == c.Peek() {
			same++
		}
		a.Advance()
		c.Advance()
	}
	if same == 100 {
		t.Fatal("different nodes produced identical streams")
	}
}

func TestSnapshotRestoreReplaysExactly(t *testing.T) {
	g := New(Apache, 0, 16, 7)
	for i := 0; i < 137; i++ {
		g.Advance()
	}
	snap := g.Snapshot()
	var ops []Op
	for i := 0; i < 500; i++ {
		ops = append(ops, g.Peek())
		g.Advance()
	}
	g.Restore(snap)
	for i, want := range ops {
		if got := g.Peek(); got != want {
			t.Fatalf("replay diverged at %d: %+v vs %+v", i, got, want)
		}
		g.Advance()
	}
}

func TestPrivateRegionsDisjoint(t *testing.T) {
	p := JBB
	seen := map[int]map[coherence.Addr]bool{}
	sharedTop := coherence.Addr(p.SharedBlocks * coherence.BlockBytes)
	for node := 0; node < 4; node++ {
		g := New(p, node, 4, 1)
		seen[node] = map[coherence.Addr]bool{}
		for i := 0; i < 3000; i++ {
			op := g.Peek()
			if op.Addr >= sharedTop {
				seen[node][op.Addr] = true
			}
			g.Advance()
		}
	}
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			for addr := range seen[a] {
				if seen[b][addr] {
					t.Fatalf("private address %#x appears at nodes %d and %d", uint64(addr), a, b)
				}
			}
		}
	}
}

func TestStoreFractionRoughlyMatches(t *testing.T) {
	g := New(Uniform, 0, 16, 3)
	stores := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if g.Peek().Kind == coherence.Store {
			stores++
		}
		g.Advance()
	}
	frac := float64(stores) / n
	if frac < 0.40 || frac > 0.60 {
		t.Fatalf("store fraction %.3f, expected ~0.5", frac)
	}
}

func TestMigratoryPairsAreLoadThenStore(t *testing.T) {
	g := New(Hotspot, 0, 16, 9).(*gen)
	pairs := 0
	for i := 0; i < 20000 && pairs < 50; i++ {
		op := g.Peek()
		if op.Kind == coherence.Load && g.migrLeft == 1 {
			addr := op.Addr
			g.Advance()
			next := g.Peek()
			if next.Kind != coherence.Store || next.Addr != addr {
				t.Fatalf("migratory pair broken: %+v then %+v", op, next)
			}
			pairs++
			continue
		}
		g.Advance()
	}
	if pairs == 0 {
		t.Fatal("no migratory pairs observed in hotspot profile")
	}
}

func TestMeanThinkApproximatesProfile(t *testing.T) {
	p := Uniform // no bursts: think is purely geometric
	g := New(p, 0, 16, 11)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += float64(g.Peek().Think)
		g.Advance()
	}
	mean := sum / n
	if mean < p.MeanThink*0.85 || mean > p.MeanThink*1.15 {
		t.Fatalf("mean think %.2f, profile says %.1f", mean, p.MeanThink)
	}
}

// Property: snapshot/restore is exact for arbitrary prefix lengths.
func TestSnapshotProperty(t *testing.T) {
	f := func(prefix uint16, seed uint64) bool {
		g := New(Slash, 1, 16, seed)
		for i := 0; i < int(prefix%2000); i++ {
			g.Advance()
		}
		snap := g.Snapshot()
		first := make([]Op, 50)
		for i := range first {
			first[i] = g.Peek()
			g.Advance()
		}
		g.Restore(snap)
		for i := range first {
			if g.Peek() != first[i] {
				return false
			}
			g.Advance()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: every generated address is block-aligned and within the
// profile's address space.
func TestAddressBoundsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		p := OLTP
		g := New(p, 2, 16, seed)
		limit := coherence.Addr((p.SharedBlocks + 16*p.PrivateBlocks) * coherence.BlockBytes)
		for i := 0; i < 2000; i++ {
			op := g.Peek()
			if op.Addr%coherence.BlockBytes != 0 || op.Addr >= limit {
				return false
			}
			g.Advance()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
