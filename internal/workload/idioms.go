// Sharing-idiom generators: reference streams with one sharing pattern
// each, instead of the profiles' calibrated mixes. The protocols have
// never seen these shapes — migratory ownership chains, producer-
// consumer rings, all-to-all scans, single-writer broadcast — which is
// the point: each is a row in the cross-kind invariant stress matrix
// and an axis of the `workloads` experiment.
//
// Every idiom reuses the Profile knobs where they are meaningful:
// SharedFrac mixes idiom references with private-region filler,
// MeanThink/Burstiness/BurstLen shape timing, ZipfSkew skews the idiom's
// object choice (migratory objects, broadcast reads), and PhaseLen
// migrates the idiom's working window per phase. All streams stay
// inside the usual address layout — shared blocks low, per-node private
// regions above — so the address-bounds and disjointness properties
// hold for every generator.
package workload

import (
	"specsimp/internal/coherence"
	"specsimp/internal/sim"
)

// Idiom names accepted by Profile.Idiom.
const (
	IdiomMigratory = "migratory"
	IdiomRing      = "ring"
	IdiomScan      = "scan"
	IdiomBroadcast = "broadcast"
)

// IdiomNames lists the idiom selectors in registry order.
var IdiomNames = []string{IdiomBroadcast, IdiomMigratory, IdiomRing, IdiomScan}

// The idiom preset profiles, registered alongside the Table 3 suite.
var (
	// MigratoryChain: every shared reference is a read-modify-write
	// pair on an object that then migrates — nodes walk the same object
	// sequence from staggered starts, so ownership chains from cache to
	// cache.
	MigratoryChain = Profile{
		Name:         IdiomMigratory,
		Description:  "migratory sharing chains: RMW object sequence walked by every node",
		Idiom:        IdiomMigratory,
		SharedBlocks: 2048, PrivateBlocks: 1024,
		SharedFrac: 0.5, HotBlocks: 16,
		PrivateStoreFrac: 0.30,
		MeanThink:        10, Burstiness: 0.03, BurstLen: 16,
	}
	// Ring: node i streams stores through its own ring segment while
	// reading the segment node i-1 produces (so node i's writes are
	// node i+1's reads).
	Ring = Profile{
		Name:         IdiomRing,
		Description:  "producer-consumer ring: node i writes a segment node i+1 reads",
		Idiom:        IdiomRing,
		SharedBlocks: 4096, PrivateBlocks: 1024,
		SharedFrac: 0.6, HotBlocks: 8,
		PrivateStoreFrac: 0.30,
		MeanThink:        8, Burstiness: 0.02, BurstLen: 12,
	}
	// Scan: phases of an all-to-all sequential read scan over the whole
	// shared region alternating with private compute phases.
	Scan = Profile{
		Name:         IdiomScan,
		Description:  "all-to-all scan phases: sequential shared reads alternating with private compute",
		Idiom:        IdiomScan,
		SharedBlocks: 4096, PrivateBlocks: 2048,
		SharedFrac: 0.7, HotBlocks: 8,
		StoreFrac: 0.05, PrivateStoreFrac: 0.35,
		MeanThink: 8, Burstiness: 0.02, BurstLen: 24,
		PhaseLen: 4096,
	}
	// Broadcast: node 0 rotates stores through a small block set that
	// every other node reads — single-writer, many-reader.
	Broadcast = Profile{
		Name:         IdiomBroadcast,
		Description:  "single-writer broadcast: node 0 writes a hot set all other nodes read",
		Idiom:        IdiomBroadcast,
		SharedBlocks: 1024, PrivateBlocks: 1024,
		SharedFrac: 0.5, HotBlocks: 8,
		PrivateStoreFrac: 0.30,
		MeanThink:        10, Burstiness: 0.02, BurstLen: 16,
	}
)

// Idioms is the sharing-idiom evaluation set in name order.
var Idioms = []Profile{Broadcast, MigratoryChain, Ring, Scan}

// idiomGen implements Generator for the four sharing idioms. One type
// with a mode switch keeps Snapshot flat: obj and aux are the only
// idiom-specific cursors (chain position; ring produce/consume; scan
// index; broadcast rotation).
type idiomGen struct {
	p     Profile
	node  int
	nodes int
	rng   *sim.RNG

	zipf    zipf      // object-choice skew when p.ZipfSkew > 0
	perm    blockPerm // seed-keyed rank → block permutation for the zipf path
	permKey uint64

	cur      Op
	burst    int
	migrAddr coherence.Addr
	migrLeft int    // migratory idiom: store half pending
	pos      uint64 // references consumed
	obj      uint64 // primary cursor (chain object / ring produce / scan / broadcast slot)
	aux      uint64 // secondary cursor (ring consume)
}

func newIdiomGen(p Profile, node, nodes int, seed uint64) *idiomGen {
	if nodes < 1 {
		nodes = 1
	}
	g := &idiomGen{p: p, node: node, nodes: nodes, rng: sim.NewRNG(mixSeed(seed, node))}
	g.permKey = mix64(seed ^ 0x5eedb10c)
	if p.ZipfSkew > 0 {
		g.zipf = newZipf(p.ZipfSkew, p.SharedBlocks)
		g.perm = newBlockPerm(p.SharedBlocks, g.permKey)
	}
	// Stagger the chain/scan starting points so nodes are spread across
	// the shared region rather than stampeding block 0 together.
	g.obj = uint64(node) * uint64(p.SharedBlocks) / uint64(nodes)
	g.generate()
	return g
}

// Name implements Generator.
func (g *idiomGen) Name() string { return g.p.Name }

// Peek implements Generator.
func (g *idiomGen) Peek() Op { return g.cur }

// Advance implements Generator.
func (g *idiomGen) Advance() {
	g.pos++
	g.generate()
}

// phase returns the current phase index (0 while phases are disabled).
func (g *idiomGen) phase() uint64 {
	if g.p.PhaseLen == 0 {
		return 0
	}
	return g.pos / g.p.PhaseLen
}

// objectBlock picks the idiom's next shared object: Zipf-skewed through
// the seed permutation when configured, otherwise the primary cursor
// walking the region sequentially. The phase offset migrates the
// working window each phase.
func (g *idiomGen) objectBlock(cursor *uint64) int {
	p := g.p
	off := phaseOffset(g.permKey, p.PhaseLen, g.pos, p.SharedBlocks)
	if p.ZipfSkew > 0 {
		rank := (g.zipf.sample(g.rng) + off) % p.SharedBlocks
		return g.perm.apply(rank)
	}
	blk := int((*cursor + uint64(off)) % uint64(p.SharedBlocks))
	*cursor++
	return blk
}

// private fills a non-idiom reference from the node's private region.
func (g *idiomGen) private(think sim.Time) Op {
	p := g.p
	base := p.SharedBlocks + g.node*p.PrivateBlocks
	addr := coherence.Addr(base+g.rng.Intn(p.PrivateBlocks)) * coherence.BlockBytes
	kind := coherence.Load
	if g.rng.Bool(p.PrivateStoreFrac) {
		kind = coherence.Store
	}
	return Op{Addr: addr, Kind: kind, Think: think}
}

func (g *idiomGen) generate() {
	p := g.p
	// Migratory store half first — a reference like any other, so it
	// consumes a burst slot (see gen.generate).
	if g.migrLeft > 0 {
		g.migrLeft = 0
		if g.burst > 0 {
			g.burst--
		}
		g.cur = Op{Addr: g.migrAddr, Kind: coherence.Store, Think: 1 + sim.Time(g.rng.Intn(3))}
		return
	}
	think := nextThink(g.rng, p, &g.burst)
	if !g.rng.Bool(p.SharedFrac) {
		g.cur = g.private(think)
		return
	}

	switch p.Idiom {
	case IdiomMigratory:
		// RMW pair on the next chain object; the store half follows.
		addr := coherence.Addr(g.objectBlock(&g.obj)) * coherence.BlockBytes
		g.migrAddr = addr
		g.migrLeft = 1
		g.cur = Op{Addr: addr, Kind: coherence.Load, Think: think}

	case IdiomRing:
		// Strict produce/consume alternation: produce (store) walks the
		// node's own segment, consume (load) walks the predecessor's —
		// node i's stores are exactly node i+1's loads, one segment
		// behind. The phase offset rotates every segment identically so
		// the pairing survives phase shifts.
		seg := p.SharedBlocks / g.nodes
		if seg < 1 {
			seg = 1
		}
		off := phaseOffset(g.permKey, p.PhaseLen, g.pos, p.SharedBlocks)
		if g.obj <= g.aux { // produce
			blk := (g.node*seg + int(g.obj%uint64(seg)) + off) % p.SharedBlocks
			g.obj++
			g.cur = Op{Addr: coherence.Addr(blk) * coherence.BlockBytes, Kind: coherence.Store, Think: think}
		} else { // consume the upstream neighbor's segment
			prev := (g.node + g.nodes - 1) % g.nodes
			blk := (prev*seg + int(g.aux%uint64(seg)) + off) % p.SharedBlocks
			g.aux++
			g.cur = Op{Addr: coherence.Addr(blk) * coherence.BlockBytes, Kind: coherence.Load, Think: think}
		}

	case IdiomScan:
		// Even phases scan the shared region sequentially (reads, with
		// StoreFrac-rare updates); odd phases are private compute.
		if p.PhaseLen > 0 && g.phase()%2 == 1 {
			g.cur = g.private(think)
			return
		}
		blk := int(g.obj % uint64(p.SharedBlocks))
		g.obj++
		kind := coherence.Load
		if g.rng.Bool(p.StoreFrac) {
			kind = coherence.Store
		}
		g.cur = Op{Addr: coherence.Addr(blk) * coherence.BlockBytes, Kind: kind, Think: think}

	case IdiomBroadcast:
		// Node 0 rotates stores through the hot window; everyone else
		// reads it (Zipf-skewed toward the window's head when
		// configured). The window itself migrates per phase.
		hot := p.HotBlocks
		if hot < 1 {
			hot = 1
		}
		off := phaseOffset(g.permKey, p.PhaseLen, g.pos, p.SharedBlocks)
		var slot int
		var kind coherence.AccessType
		if g.node == 0 {
			slot = int(g.obj % uint64(hot))
			g.obj++
			kind = coherence.Store
		} else {
			if p.ZipfSkew > 0 {
				slot = g.zipf.sample(g.rng) % hot
			} else {
				slot = g.rng.Intn(hot)
			}
			kind = coherence.Load
		}
		blk := (slot + off) % p.SharedBlocks
		g.cur = Op{Addr: coherence.Addr(blk) * coherence.BlockBytes, Kind: kind, Think: think}
	}
}

// Snapshot implements Generator.
func (g *idiomGen) Snapshot() Snapshot {
	return Snapshot{
		rng: g.rng.Snapshot(), cur: g.cur,
		burst: g.burst, migrAddr: g.migrAddr, migrLeft: g.migrLeft, pos: g.pos,
		aux0: g.obj, aux1: g.aux,
	}
}

// Restore implements Generator.
func (g *idiomGen) Restore(s Snapshot) {
	g.rng.Restore(s.rng)
	g.cur = s.cur
	g.burst = s.burst
	g.migrAddr = s.migrAddr
	g.migrLeft = s.migrLeft
	g.pos = s.pos
	g.obj = s.aux0
	g.aux = s.aux1
}
