package workload

import (
	"math"

	"specsimp/internal/sim"
)

// zipf samples ranks in [0, n) with P(k) ∝ 1/(k+1)^s by
// rejection-inversion (Hörmann & Derflinger's method for monotone
// discrete distributions, the same scheme as math/rand's Zipf but over
// a finite support, which admits any skew s > 0 rather than only
// s > 1). Sampling is O(1) expected, allocation-free, and draws all of
// its randomness from the caller's sim.RNG — so generator
// snapshot/restore needs no sampler state beyond the RNG word.
//
// All quantities below are fixed at construction; with v = 1:
//
//	h(x)    = (1+x)^(1-s) / (1-s)        (ln(1+x) at s = 1)
//	hinv(y) = ((1-s) y)^(1/(1-s)) - 1    (e^y - 1 at s = 1)
type zipf struct {
	s      float64
	n      float64 // rank count as float (imax = n-1)
	one    bool    // s == 1: logarithmic h/hinv
	q1     float64 // 1 - s
	q1inv  float64 // 1 / (1 - s)
	hxm    float64 // h(imax + 0.5)
	hx0Hxm float64 // h(0.5) - 1 - hxm (v^-s = 1 at v = 1)
	accept float64 // the cheap acceptance cut: 1 - hinv(h(1.5) - 2^-s)
}

func newZipf(s float64, n int) zipf {
	z := zipf{s: s, n: float64(n), one: s == 1, q1: 1 - s}
	if !z.one {
		z.q1inv = 1 / z.q1
	}
	z.hxm = z.h(z.n - 0.5)
	z.hx0Hxm = z.h(0.5) - 1 - z.hxm
	z.accept = 1 - z.hinv(z.h(1.5)-math.Exp(-s*math.Ln2))
	return z
}

func (z *zipf) h(x float64) float64 {
	if z.one {
		return math.Log1p(x)
	}
	return math.Exp(z.q1*math.Log1p(x)) * z.q1inv
}

func (z *zipf) hinv(y float64) float64 {
	if z.one {
		return math.Expm1(y)
	}
	return math.Exp(z.q1inv*math.Log(z.q1*y)) - 1
}

// sample draws one rank in [0, n).
func (z *zipf) sample(rng *sim.RNG) int {
	for {
		ur := z.hxm + rng.Float64()*z.hx0Hxm
		x := z.hinv(ur)
		k := math.Floor(x + 0.5)
		if k-x <= z.accept {
			return int(k)
		}
		if ur >= z.h(k+0.5)-math.Exp(-z.s*math.Log(k+1)) {
			return int(k)
		}
	}
}

// blockPerm is a pseudo-random permutation of [0, n), computed on the
// fly: a 4-round Feistel network over the smallest even-width power-of-
// two domain covering n, cycle-walked back into range. O(1) per apply
// with no table (a materialized permutation would cost 8·SharedBlocks
// bytes per generator — 64 KB × 1024 nodes at the OLTP footprint), and
// the same key yields the same permutation on every node, which is what
// makes the Zipf hot ranks machine-wide contention points.
type blockPerm struct {
	n        uint64
	halfBits uint
	halfMask uint64
	keys     [4]uint32
}

func newBlockPerm(n int, key uint64) blockPerm {
	p := blockPerm{n: uint64(n), halfBits: 1}
	for (uint64(1) << (2 * p.halfBits)) < p.n {
		p.halfBits++
	}
	p.halfMask = (uint64(1) << p.halfBits) - 1
	for i := range p.keys {
		p.keys[i] = uint32(mix64(key + uint64(i)*0x9e3779b97f4a7c15))
	}
	return p
}

// round is the Feistel round function: a 32-bit avalanche of the half
// word and the round key.
func (p blockPerm) round(half uint64, key uint32) uint64 {
	x := uint32(half) ^ key
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	x *= 0x846ca68b
	x ^= x >> 16
	return uint64(x)
}

// apply maps i to its permuted image in [0, n). The Feistel domain is
// at most 4n (the next even-width power of two), so the cycle walk
// terminates in a handful of steps.
func (p blockPerm) apply(i int) int {
	x := uint64(i)
	for {
		l, r := x>>p.halfBits, x&p.halfMask
		for _, k := range p.keys {
			l, r = r, l^(p.round(r, k)&p.halfMask)
		}
		x = l<<p.halfBits | r
		if x < p.n {
			return int(x)
		}
	}
}
